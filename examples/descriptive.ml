(* Descriptive complexity playground (Section 7.5): monadic Σ¹₁
   sentences in local normal form compile mechanically to LogLCP
   schemes. Write a formula, get a certified distributed verifier.

     dune exec examples/descriptive.exe
*)

let show_sentence (s : Formula.sentence) =
  Format.printf "@.%s  (k=%d monadic sets, locality r=%d%s)@." s.Formula.name
    s.Formula.k s.Formula.locality
    (if s.Formula.uses_x then ", uses the ∃x witness" else "");
  Format.printf "  φ = %a@." Formula.pp s.Formula.phi

let try_on s g desc =
  let scheme = Sigma11.scheme s in
  let inst = Instance.of_graph g in
  match Scheme.prove_and_check scheme inst with
  | `Accepted proof ->
      Format.printf "  %-24s holds — certified with %d bits/node@." desc
        (Proof.size proof)
  | `No_proof -> Format.printf "  %-24s does not hold — prover refuses@." desc
  | `Rejected _ -> Format.printf "  %-24s INTERNAL ERROR@." desc

let () =
  Format.printf
    "monadic Σ¹₁ sentences (Schwentick–Barthelmann local normal form)@.";
  Format.printf "compiled to LogLCP proof labelling schemes:@.";

  let s = Sentences.two_colourable in
  show_sentence s;
  try_on s (Builders.cycle 8) "C8 (even cycle)";
  try_on s (Builders.cycle 7) "C7 (odd cycle)";
  try_on s (Builders.grid 3 4) "3x4 grid";

  let s = Sentences.three_colourable in
  show_sentence s;
  try_on s (Builders.cycle 5) "C5";
  try_on s (Builders.complete 4) "K4";

  let s = Sentences.has_triangle in
  show_sentence s;
  try_on s (Builders.wheel 5) "wheel W5";
  try_on s (Builders.cycle 9) "C9";

  let s = Sentences.is_cycle in
  show_sentence s;
  try_on s (Builders.cycle 6) "C6";
  try_on s (Builders.path 6) "P6";

  (* The compilation recipe, spelled out on one instance. *)
  Format.printf "@.anatomy of a compiled proof (has-triangle on W5):@.";
  let scheme = Sigma11.scheme Sentences.has_triangle in
  let inst = Instance.of_graph (Builders.wheel 5) in
  (match Scheme.prove_and_check scheme inst with
  | `Accepted proof ->
      Format.printf
        "  per node: k set-membership bits ++ spanning-tree certificate@.";
      Format.printf
        "  rooted at the ∃x witness ++ the witness's own set bits.@.";
      List.iter
        (fun (v, b) -> Format.printf "    node %d: %s@." v (Bits.to_string b))
        (Proof.bindings proof)
  | _ -> ());
  Format.printf
    "@.(soundness: the tree certificate pins a unique witness; locality@.";
  Format.printf
    "of φ around y makes every node's check a radius-r computation.)@."
