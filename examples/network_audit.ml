(* A self-verifying network (Table 1(b): spanning tree and leader
   election, both Θ(log n)).

   Scenario: a management plane has installed a spanning tree and
   elected a leader in a data-centre-ish random topology. Every switch
   stores an O(log n)-bit certificate; a constant-time distributed
   audit then confirms the control state — and pinpoints faults when a
   certificate or the elected state is corrupted.

     dune exec examples/network_audit.exe
*)

let () =
  let st = Random.State.make [| 2026 |] in
  let g = Random_graphs.connected_gnp st 40 0.08 in
  Format.printf "topology: %d switches, %d links, diameter %d@." (Graph.n g)
    (Graph.m g) (Traversal.diameter g);

  (* The control plane picks a spanning tree (here: BFS from switch 7)
     and labels the links. *)
  let root = 7 in
  let tree_links =
    List.map (fun (v, p) -> (min v p, max v p)) (Traversal.spanning_tree g root)
  in
  let inst = Instance.flag_edges (Instance.of_graph g) tree_links in

  (match Scheme.prove_and_check Spanning_tree_scheme.scheme inst with
  | `Accepted proof ->
      Format.printf "spanning-tree audit: PASS (certificates of %d bits/node)@."
        (Proof.size proof);

      (* Fault injection: corrupt one switch's certificate. *)
      let victim = 23 in
      let corrupted = Proof.set proof victim (Bits.flip (Proof.get proof victim) 3) in
      (match Scheme.decide Spanning_tree_scheme.scheme inst corrupted with
      | Scheme.Accept -> Format.printf "corruption not detected!?@."
      | Scheme.Reject alarms ->
          Format.printf "corrupted switch %d's certificate -> alarms at [%s]@."
            victim
            (String.concat "; " (List.map string_of_int alarms)));

      (* Fault injection: cut a tree link out of the labelling. *)
      let u, v = List.hd tree_links in
      let broken =
        Instance.flag_edges (Instance.of_graph g) (List.tl tree_links)
      in
      (match Scheme.decide Spanning_tree_scheme.scheme broken proof with
      | Scheme.Accept -> Format.printf "missing link not detected!?@."
      | Scheme.Reject alarms ->
          Format.printf "dropped tree link %d-%d -> alarms at [%s]@." u v
            (String.concat "; " (List.map string_of_int alarms)))
  | _ -> Format.printf "spanning-tree audit: could not certify@.");

  (* Leader election: certify, then forge a second leader. *)
  let leader_inst = Leader_election.mark_leader (Instance.of_graph g) root in
  (match Scheme.prove_and_check Leader_election.strong leader_inst with
  | `Accepted proof ->
      Format.printf "leader audit: PASS (leader = switch %d)@." root;
      let usurper = 31 in
      let two_leaders =
        Instance.with_node_labels leader_inst
          [ (usurper, Bits.one_bit true) ]
      in
      (match Scheme.decide Leader_election.strong two_leaders proof with
      | Scheme.Accept -> Format.printf "second leader not detected!?@."
      | Scheme.Reject alarms ->
          Format.printf "switch %d also claims leadership -> alarms at [%s]@."
            usurper
            (String.concat "; " (List.map string_of_int alarms)));
      (* An adversary with the full proof space cannot do better. *)
      (match
         Adversary.forge ~restarts:5 ~steps:200 Leader_election.strong two_leaders
           ~max_bits:(Proof.size proof)
       with
      | Adversary.Fooled _ -> Format.printf "adversary forged a certificate!?@."
      | Adversary.Resisted { best_rejections; attempts } ->
          Format.printf
            "adversarial forging: resisted (%d attempts, best still had %d alarms)@."
            attempts best_rejections)
  | _ -> Format.printf "leader audit: could not certify@.");

  (* Global facts through local counters: the network convinces itself
     of its own size. *)
  let size_inst = Instance.of_graph g in
  match Scheme.prove_and_check (Counting.exact_n (Graph.n g)) size_inst with
  | `Accepted _ -> Format.printf "size audit: all switches agree n = %d@." (Graph.n g)
  | _ -> Format.printf "size audit failed@."
