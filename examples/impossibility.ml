(* The Figure-1 gluing attack, end to end (Section 5.3).

   Leader election needs Θ(log n)-bit certificates. This example runs
   the paper's lower-bound construction as an actual exploit against an
   undersized-but-complete scheme (cyclic position counters, O(1)
   bits): it collects yes-instances C(a, b), finds a monochromatic
   rectangle of proof signatures, glues two 8-cycles into a 16-cycle
   with TWO leaders, and shows that every node of the forged instance
   accepts. The honest Θ(log n) scheme run on the same family has fully
   distinct signatures — the attack cannot even start.

     dune exec examples/impossibility.exe
*)

let describe_outcome name = function
  | Gluing.Fooled { instance; proof; quad = (a1, b1), (a2, b2); genuinely_no } ->
      Format.printf "%s: FOOLED@." name;
      Format.printf "  monochromatic rectangle: C(%d,%d), C(%d,%d)@." a1 b1 a2 b2;
      let g = Instance.graph instance in
      Format.printf "  glued instance: a %d-cycle, genuinely a no-instance = %b@."
        (Graph.n g) genuinely_no;
      let leaders =
        Graph.fold_nodes
          (fun v acc ->
            let l = Instance.node_label instance v in
            if Bits.length l >= 1 && Bits.get l 0 then v :: acc else acc)
          g []
      in
      Format.printf "  leaders in the glued cycle: [%s] — and yet:@."
        (String.concat "; " (List.map string_of_int (List.rev leaders)));
      Format.printf "  every node accepts the inherited proof: %b@."
        (match Scheme.decide (Truncated.leader_cycle ~bits:2) instance proof with
        | Scheme.Accept -> true
        | Scheme.Reject _ -> false)
  | Gluing.Resisted { pairs; distinct_signatures } ->
      Format.printf "%s: RESISTED — %d instances, %d distinct signatures@." name
        pairs distinct_signatures
  | Gluing.Prover_failed (a, b) ->
      Format.printf "%s: prover failed on C(%d,%d)@." name a b

let () =
  let n = 8 in
  let family = Gluing.leader_cycles ~n in

  Format.printf "=== Figure 1: gluing cycles against leader election ===@.";
  Format.printf "family: %d-cycles C(a,b) with a marked leader at a@.@." n;

  (* The undersized scheme: 2-bit cyclic counters. Complete… *)
  let cheap = Truncated.leader_cycle ~bits:2 in
  let demo = family.Gluing.make ~a:1 ~b:(n + 1) in
  (match Scheme.prove_and_check cheap demo with
  | `Accepted proof ->
      Format.printf "undersized scheme (%d bits/node) accepts C(1,%d): %a@."
        (Proof.size proof) (n + 1) Proof.pp proof
  | _ -> Format.printf "unexpected: prover failed@.");

  (* …but unsound, constructively: *)
  Format.printf "@.running the gluing attack against the 2-bit scheme:@.";
  describe_outcome "  2-bit counters" (Gluing.attack ~rows:4 cheap family);

  (* The honest scheme survives: identifiers in the tree certificates
     make every signature unique, so no rectangle exists. *)
  Format.printf "@.running the same attack against the honest Θ(log n) scheme:@.";
  describe_outcome "  tree certificates" (Gluing.attack ~rows:4 Leader_election.strong family);

  (* The same machinery, for the "odd number of nodes" property:
     glue two odd 9-cycles into an even 18-cycle. *)
  Format.printf "@.=== same attack, odd-n property (two odd cycles -> even) ===@.";
  let odd_family = Gluing.odd_cycles ~n:9 in
  (match Gluing.attack ~rows:4 (Truncated.odd_n_cycle ~bits:2) odd_family with
  | Gluing.Fooled { instance; genuinely_no; _ } ->
      Format.printf
        "  2-bit parity counters fooled: accepted %d-cycle (no-instance = %b)@."
        (Instance.n instance) genuinely_no
  | _ -> Format.printf "  unexpected resistance@.");
  describe_outcome "  honest odd-n" (Gluing.attack ~rows:4 Counting.odd_n odd_family);

  Format.printf
    "@.moral: completeness with o(log n) bits forces colliding signatures,@.";
  Format.printf
    "and colliding signatures let an adversary glue yes-instances into@.";
  Format.printf "accepted no-instances — exactly the paper's Theorem of §5.3.@."
