(* Quickstart: locally checkable proofs in five minutes.

   We build a graph, prove it is bipartite with a 1-bit-per-node
   locally checkable proof, run the verifier at every node, then tamper
   with the proof and watch a node raise the alarm — the defining
   behaviour of the model: all nodes accept valid proofs of
   yes-instances, at least one node rejects anything else.

     dune exec examples/quickstart.exe
*)

let () =
  (* A 6-cycle with two chords — still bipartite. *)
  let g =
    Graph.of_edges [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0); (0, 3); (1, 4) ]
  in
  let inst = Instance.of_graph g in
  Format.printf "graph: %a@." Graph.pp g;

  (* Ask the prover (the "oracle" of the nondeterministic model) for a
     locally checkable proof of bipartiteness. *)
  match Scheme.prove_and_check Bipartite_scheme.scheme inst with
  | `No_proof -> Format.printf "not bipartite — no proof exists@."
  | `Rejected _ -> assert false
  | `Accepted proof ->
      Format.printf "bipartiteness proof (%d bit/node): %a@." (Proof.size proof)
        Proof.pp proof;

      (* Every node runs the same constant-radius verifier. *)
      Graph.iter_nodes
        (fun v ->
          Format.printf "  node %d verifies: %b@." v
            (Scheme.verifier_output Bipartite_scheme.scheme inst proof v))
        g;

      (* The verifier is also a genuine distributed algorithm: gather
         radius-1 views in one synchronous round and re-check. *)
      let verdicts, transcript =
        Simulator.run_verifier inst proof ~radius:1
          Bipartite_scheme.scheme.Scheme.verifier
      in
      Format.printf
        "LOCAL simulation: %d round(s), %d messages, all accept = %b@."
        transcript.Simulator.rounds transcript.Simulator.messages_sent
        (List.for_all snd verdicts);

      (* Tamper with one bit: some neighbour must notice. *)
      let corrupted = Proof.set proof 2 (Bits.flip (Proof.get proof 2) 0) in
      (match Scheme.decide Bipartite_scheme.scheme inst corrupted with
      | Scheme.Accept -> Format.printf "tampering went unnoticed!?@."
      | Scheme.Reject nodes ->
          Format.printf "flipped node 2's bit -> rejected by nodes [%s]@."
            (String.concat "; " (List.map string_of_int nodes)));

      (* And on a genuinely odd cycle there is no proof at all: every
         candidate proof is rejected somewhere (exhaustively checked). *)
      let odd = Instance.of_graph (Builders.cycle 5) in
      Format.printf
        "C5: prover refuses = %b; every 1-bit proof rejected somewhere = %b@."
        (Checker.prover_refuses Bipartite_scheme.scheme odd)
        (Checker.soundness_exhaustive Bipartite_scheme.scheme odd ~max_bits:1)
