(* An assignment market with locally checkable price certificates
   (Section 2.3, Table 1(b): maximum-weight matching in bipartite
   graphs ∈ LCP(O(log W))).

   Scenario: workers and jobs form a weighted bipartite graph; a
   central solver computes an assignment. Rather than trusting the
   solver, each participant holds an O(log W)-bit LP-dual "price";
   complementary slackness is a purely local condition, so a one-round
   distributed audit certifies global optimality.

     dune exec examples/matching_market.exe
*)

let () =
  let st = Random.State.make [| 7 |] in
  let workers = 8 and jobs = 10 in
  let g = Random_graphs.bipartite st workers jobs 0.45 in
  let weights (u, v) = 1 + ((17 * u) + (31 * v)) mod 12 in
  Format.printf "market: %d workers, %d jobs, %d admissible pairs@." workers jobs
    (Graph.m g);

  let matching = Weighted_matching.maximum_weight g weights in
  Format.printf "optimal assignment (total value %d):@."
    (Weighted_matching.weight_of_matching weights matching);
  List.iter
    (fun (u, v) -> Format.printf "  worker %d -> job %d (value %d)@." u v (weights (u, v)))
    matching;

  let inst = Matching_schemes.weighted_instance g weights matching in
  (match Scheme.prove_and_check Matching_schemes.maximum_weight_bipartite inst with
  | `Accepted proof ->
      Format.printf "price certificates issued (%d bits/node max):@."
        (Proof.size proof);
      List.iter
        (fun (v, b) ->
          if Bits.length b > 0 then
            Format.printf "  node %2d: y = %d@." v (Bits.decode_int b))
        (Proof.bindings proof);
      Format.printf "local audit at every participant: PASS@."
  | _ -> Format.printf "certification failed!?@.");

  (* A plausible-looking but suboptimal assignment cannot be certified:
     the dual system is infeasible, and no forged prices survive. *)
  let greedy = Matching.greedy_maximal g in
  let value = Weighted_matching.weight_of_matching weights greedy in
  if value < Weighted_matching.weight_of_matching weights matching then begin
    let bad = Matching_schemes.weighted_instance g weights greedy in
    Format.printf
      "greedy assignment (value %d) offered instead: prover refuses = %b@." value
      (Checker.prover_refuses Matching_schemes.maximum_weight_bipartite bad);
    match
      Adversary.forge ~restarts:6 ~steps:250
        Matching_schemes.maximum_weight_bipartite bad ~max_bits:8
    with
    | Adversary.Fooled _ -> Format.printf "forged prices accepted!?@."
    | Adversary.Resisted { best_rejections; _ } ->
        Format.printf
          "price forging resisted: every attempt left >= %d participants unconvinced@."
          (max 1 best_rejections)
  end;

  (* The unweighted special case (König): a cardinality-maximum
     matching is certified by a 1-bit vertex cover. *)
  let m = Matching.maximum_bipartite g in
  let card_inst = Instance.flag_edges (Instance.of_graph g) m in
  match Scheme.prove_and_check Matching_schemes.maximum_bipartite card_inst with
  | `Accepted proof ->
      Format.printf
        "cardinality audit (König): matching of size %d certified with %d bit/node@."
        (List.length m) (Proof.size proof)
  | _ -> Format.printf "König certification failed!?@."
