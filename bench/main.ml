(* Benchmark harness: regenerates every row of Table 1(a) and 1(b) and
   the Figure 1 / Section 6 lower-bound experiments.

     dune exec bench/main.exe              (proof-size + attack harness)
     dune exec bench/main.exe -- --timing  (Bechamel verifier timings)
     dune exec bench/main.exe -- --smoke   (tiny CI sweep, < 10 s)

   Flags: --jobs N  fan the per-node verifier loop over N domains
                    (0 = all recommended cores);
          --reference  verify on the seed View.make-per-node path
                    instead of the compiled CSR engine (for
                    before/after speedup measurements);
          --metrics  enable the observability counters and embed a
                    per-row metrics object (balls extracted, max ball
                    size, verifier calls, forgeries tried) in
                    BENCH_lcp.json;
          --trace FILE  record structured spans and export them as
                    Chrome trace-event JSON (chrome://tracing,
                    Perfetto);
          --prom FILE  write the run's telemetry as a Prometheus text
                    exposition (per-row wall-time gauges plus, with
                    --metrics, the full cumulative registry) — lets a
                    CI job push bench health into the same dashboards
                    that scrape `lcp serve`.

   All timing uses the monotonic Obs.Clock (the seed harness used
   Unix.gettimeofday, which NTP can skew mid-run). Sweep runs write a
   machine-readable BENCH_lcp.json (per-row wall time, largest
   parameter reached, fit, verdict) next to the table.

   For each upper-bound row we run the scheme's prover over a sweep of
   instance sizes, check that every proof is accepted by all nodes,
   record the maximum proof size in bits per node, and fit the measured
   series against the growth models {0, Θ(1), Θ(log), Θ(n), Θ(n²),
   Θ(n²/log n)}; the verdict column compares the fit against the
   paper's claim. For each lower-bound row we run the corresponding
   attack: undersized-but-complete schemes are fooled (an accepted
   no-instance is constructed), honest schemes resist (signatures stay
   distinct). *)

let st seed = Random.State.make [| seed |]

(* --- measurement ---------------------------------------------------- *)

type row = {
  id : string;
  what : string;
  family : string;
  paper : string;
  ok_classes : Complexity.growth list;
  param : string;
  series : unit -> (int * int) list;
}

exception Measure_failure of string

(* Engine selection, set from the command line in [main]. *)
let jobs = ref 1
let use_reference = ref false
let collect_metrics = ref false

(* Prove and fully verify; return bits per node. Verification runs on
   the compiled CSR engine (optionally multicore) unless --reference
   asks for the seed View.make-per-node path. *)
let measured scheme inst =
  match scheme.Scheme.prover inst with
  | None ->
      raise (Measure_failure (scheme.Scheme.name ^ ": prover refused a yes-instance"))
  | Some proof -> (
      let rejecting =
        if !use_reference then
          match Scheme.decide scheme inst proof with
          | Scheme.Accept -> []
          | Scheme.Reject vs -> vs
        else
          let verdicts, _ =
            Simulator.run_verifier ~jobs:!jobs inst proof
              ~radius:scheme.Scheme.radius scheme.Scheme.verifier
          in
          List.filter_map (fun (v, ok) -> if ok then None else Some v) verdicts
      in
      match rejecting with
      | [] -> Proof.size proof
      | vs ->
          raise
            (Measure_failure
               (Printf.sprintf "%s: own proof rejected at [%s]" scheme.Scheme.name
                  (String.concat "," (List.map string_of_int vs)))))

(* Prove only (for the O(n²) rows, where running the verifier at every
   node of every sweep point would dominate the harness). *)
let measured_prover_only scheme inst =
  match scheme.Scheme.prover inst with
  | Some proof -> Proof.size proof
  | None ->
      raise (Measure_failure (scheme.Scheme.name ^ ": prover refused a yes-instance"))

let sweep ?(measure = measured) scheme mk ns () =
  List.map (fun n -> (n, measure scheme (mk n))) ns

let ns_log = [ 8; 16; 32; 64; 128; 256 ]
let ns_small = [ 8; 16; 32; 64 ]

(* --- instance makers ------------------------------------------------ *)

let of_g g = Instance.of_graph g
let even n = if n mod 2 = 0 then n else n + 1
let odd n = if n mod 2 = 1 then n else n + 1

let spanning_tree_inst g =
  let pairs = Traversal.spanning_tree g (List.hd (Graph.nodes g)) in
  Instance.flag_edges (of_g g) (List.map (fun (v, p) -> (min v p, max v p)) pairs)

(* s and t joined by k internally-disjoint paths of length 3:
   vertex connectivity exactly k. *)
let theta_graph k =
  let s = 0 and t = 1 in
  let g = ref (Graph.add_node (Graph.add_node Graph.empty s) t) in
  for i = 0 to k - 1 do
    let a = 2 + (2 * i) and b = 3 + (2 * i) in
    g := Graph.add_edge !g s a;
    g := Graph.add_edge !g a b;
    g := Graph.add_edge !g b t
  done;
  (!g, s, t)

let doubled_tree k seed =
  let t = Random_graphs.tree (st seed) k in
  let t' = Canonical.shifted t k in
  Graph.add_edge (Graph.union_disjoint t t') (List.hd (Graph.nodes t))
    (List.hd (Graph.nodes t'))

let two_components n =
  let half = max 3 (n / 2) in
  Graph.union_disjoint (Builders.cycle half)
    (Canonical.shifted (Builders.cycle half) (2 * half))

(* --- Table 1(a) ----------------------------------------------------- *)

let table_1a =
  [
    {
      id = "T1a-1";
      what = "Eulerian graph";
      family = "connected";
      paper = "0";
      ok_classes = [ Complexity.Zero ];
      param = "n";
      series = sweep Eulerian.scheme (fun n -> of_g (Builders.cycle n)) ns_log;
    };
    {
      id = "T1a-2";
      what = "line graph";
      family = "general";
      paper = "0";
      ok_classes = [ Complexity.Zero ];
      param = "n";
      series =
        sweep Line_graph_scheme.scheme
          (fun n -> of_g (Line_graph.of_root_graph (Builders.path (n + 1))))
          [ 8; 16; 32; 64 ];
    };
    {
      id = "T1a-3";
      what = "s-t reachability";
      family = "undirected";
      paper = "Θ(1)";
      ok_classes = [ Complexity.Constant ];
      param = "n";
      series =
        sweep Reachability.undirected_reach
          (fun n -> St.of_graph (Builders.cycle n) ~s:0 ~t:(n / 2))
          ns_log;
    };
    {
      id = "T1a-4";
      what = "s-t unreachability";
      family = "undirected";
      paper = "Θ(1)";
      ok_classes = [ Complexity.Constant ];
      param = "n";
      series =
        sweep Reachability.undirected_unreach
          (fun n ->
            let g = two_components n in
            St.of_graph g ~s:0 ~t:(Graph.max_id g))
          ns_log;
    };
    {
      id = "T1a-5";
      what = "s-t unreachability";
      family = "directed";
      paper = "Θ(1)";
      ok_classes = [ Complexity.Constant ];
      param = "n";
      series =
        sweep Reachability.directed_unreach
          (fun n ->
            (* a directed path plus a reversed tail: t unreachable *)
            let fwd = List.init (n / 2) (fun i -> (i, i + 1)) in
            let bwd = List.init (n / 2) (fun i -> (n - i, n - i - 1)) in
            St.of_digraph (Digraph.of_arcs (fwd @ bwd)) ~s:0 ~t:n)
          ns_log;
    };
    {
      id = "T1a-6";
      what = "s-t connectivity = k";
      family = "planar";
      paper = "Θ(1)";
      ok_classes = [ Complexity.Constant ];
      param = "n";
      series =
        sweep Connectivity.planar
          (fun rows ->
            let g = Builders.grid rows rows in
            Connectivity.instance g ~s:0 ~t:((rows * rows) - 1) ~k:2)
          [ 3; 4; 5; 6; 8 ];
    };
    {
      id = "T1a-7";
      what = "bipartite graph";
      family = "general";
      paper = "Θ(1)";
      ok_classes = [ Complexity.Constant ];
      param = "n";
      series = sweep Bipartite_scheme.scheme (fun n -> of_g (Builders.cycle (even n))) ns_log;
    };
    {
      id = "T1a-8";
      what = "even n(G)";
      family = "cycles";
      paper = "Θ(1)";
      ok_classes = [ Complexity.Constant ];
      param = "n";
      series = sweep Counting.even_cycle (fun n -> of_g (Builders.cycle (even n))) ns_log;
    };
    {
      id = "T1a-9";
      what = "s-t connectivity = k";
      family = "general";
      paper = "O(log k)";
      ok_classes = [ Complexity.Logarithmic; Complexity.Constant ];
      param = "k";
      series =
        sweep Connectivity.general
          (fun k ->
            let g, s, t = theta_graph k in
            Connectivity.instance g ~s ~t ~k)
          [ 2; 4; 8; 16; 32; 64 ];
    };
    {
      id = "T1a-10";
      what = "chromatic number <= k";
      family = "general";
      paper = "O(log k)";
      ok_classes = [ Complexity.Logarithmic ];
      param = "k";
      series =
        sweep Chromatic.scheme
          (fun k -> Chromatic.instance_with_k (Builders.complete k) k)
          [ 2; 4; 8; 16; 32 ];
    };
    {
      id = "T1a-11";
      what = "coLCP(0): non-Eulerian";
      family = "connected";
      paper = "O(log n)";
      ok_classes = [ Complexity.Logarithmic ];
      param = "n";
      series = sweep Colcp0.non_eulerian (fun n -> of_g (Builders.star (n - 1))) ns_log;
    };
    {
      id = "T1a-12";
      what = "monadic Σ¹₁: has-triangle";
      family = "connected";
      paper = "O(log n)";
      ok_classes = [ Complexity.Logarithmic ];
      param = "n";
      series =
        sweep
          (Sigma11.scheme Sentences.has_triangle)
          (fun n -> of_g (Builders.wheel (n - 1)))
          [ 8; 16; 32; 64 ];
    };
    {
      id = "T1a-13";
      what = "odd n(G)";
      family = "cycles";
      paper = "Θ(log n)";
      ok_classes = [ Complexity.Logarithmic ];
      param = "n";
      series = sweep Counting.odd_n (fun n -> of_g (Builders.cycle (odd n))) ns_log;
    };
    {
      id = "T1a-14";
      what = "chromatic number > 2";
      family = "connected";
      paper = "Θ(log n)";
      ok_classes = [ Complexity.Logarithmic ];
      param = "n";
      series = sweep Non_bipartite.scheme (fun n -> of_g (Builders.cycle (odd n))) ns_log;
    };
    {
      id = "T1a-15";
      what = "fixpoint-free symmetry";
      family = "trees";
      paper = "Θ(n)";
      ok_classes = [ Complexity.Linear ];
      param = "n";
      series =
        sweep Tree_universal.fixpoint_free_symmetry
          (fun n -> of_g (doubled_tree (n / 2) (100 + n)))
          ns_small;
    };
    {
      id = "T1a-16";
      what = "symmetric graph";
      family = "connected";
      paper = "Θ(n²)";
      ok_classes = [ Complexity.Quadratic; Complexity.Quadratic_over_log ];
      param = "n";
      series =
        sweep ~measure:measured_prover_only Universal.symmetric
          (fun n -> of_g (Builders.cycle n))
          ns_small;
    };
    {
      id = "T1a-17";
      what = "chromatic number > 3";
      family = "connected";
      paper = "Ω(n²/log n)..O(n²)";
      ok_classes = [ Complexity.Quadratic; Complexity.Quadratic_over_log ];
      param = "n";
      series =
        sweep ~measure:measured_prover_only Universal.non_3_colourable
          (fun n -> of_g (Builders.wheel (odd (n - 1))))
          ns_small;
    };
    {
      id = "T1a-18";
      what = "computable property";
      family = "connected";
      paper = "O(n²)";
      ok_classes = [ Complexity.Quadratic; Complexity.Quadratic_over_log ];
      param = "n";
      series =
        sweep ~measure:measured_prover_only
          (Universal.of_predicate ~name:"connected-universal" Traversal.is_connected)
          (fun n -> of_g (Random_graphs.connected_gnp (st n) n 0.2))
          ns_small;
    };
  ]

(* --- Table 1(b) ----------------------------------------------------- *)

let table_1b =
  [
    {
      id = "T1b-1";
      what = "maximal matching";
      family = "general";
      paper = "0";
      ok_classes = [ Complexity.Zero ];
      param = "n";
      series =
        sweep Matching_schemes.maximal
          (fun n ->
            let g = Builders.cycle n in
            Instance.flag_edges (of_g g) (Matching.greedy_maximal g))
          ns_log;
    };
    {
      id = "T1b-2";
      what = "LCL: maximal independent set";
      family = "general";
      paper = "0";
      ok_classes = [ Complexity.Zero ];
      param = "n";
      series =
        sweep Lcl.maximal_independent_set
          (fun n ->
            let g = Builders.cycle (even n) in
            Instance.with_node_labels (of_g g)
              (List.map (fun v -> (v, Bits.one_bit (v mod 2 = 0))) (Graph.nodes g)))
          ns_log;
    };
    {
      id = "T1b-3";
      what = "maximum matching";
      family = "bipartite";
      paper = "Θ(1)";
      ok_classes = [ Complexity.Constant ];
      param = "n";
      series =
        sweep Matching_schemes.maximum_bipartite
          (fun n ->
            let g = Builders.cycle (even n) in
            Instance.flag_edges (of_g g) (Matching.maximum_bipartite g))
          ns_log;
    };
    {
      id = "T1b-4";
      what = "max-weight matching";
      family = "bipartite";
      paper = "O(log W)";
      ok_classes = [ Complexity.Logarithmic ];
      param = "W";
      series =
        (fun () ->
          (* fixed topology, growing weight range *)
          let g = Builders.cycle 16 in
          List.map
            (fun w_max ->
              let weights (u, v) = 1 + (((u * 13) + (v * 7)) mod w_max) in
              let m = Weighted_matching.maximum_weight g weights in
              let inst = Matching_schemes.weighted_instance g weights m in
              (w_max, measured Matching_schemes.maximum_weight_bipartite inst))
            [ 2; 4; 16; 64; 256; 1024 ]);
    };
    {
      id = "T1b-5";
      what = "leader election";
      family = "connected";
      paper = "Θ(log n)";
      ok_classes = [ Complexity.Logarithmic ];
      param = "n";
      series =
        sweep Leader_election.strong
          (fun n -> Leader_election.mark_leader (of_g (Builders.cycle n)) 0)
          ns_log;
    };
    {
      id = "T1b-6";
      what = "spanning tree";
      family = "connected";
      paper = "Θ(log n)";
      ok_classes = [ Complexity.Logarithmic ];
      param = "n";
      series =
        sweep Spanning_tree_scheme.scheme
          (fun n -> spanning_tree_inst (Random_graphs.connected_gnp (st n) n 0.1))
          [ 8; 16; 32; 64; 128 ];
    };
    {
      id = "T1b-7";
      what = "maximum matching";
      family = "cycles";
      paper = "Θ(log n)";
      ok_classes = [ Complexity.Logarithmic ];
      param = "n";
      series =
        sweep Matching_schemes.maximum_on_cycle
          (fun n ->
            let g = Builders.cycle (odd n) in
            Instance.flag_edges (of_g g) (Matching.maximum_on_cycle g))
          ns_log;
    };
    {
      id = "T1b-8";
      what = "Hamiltonian cycle";
      family = "connected";
      paper = "Θ(log n)";
      ok_classes = [ Complexity.Logarithmic ];
      param = "n";
      series =
        sweep Hamiltonian_scheme.scheme
          (fun n ->
            let g = Builders.cycle n in
            Instance.flag_edges (of_g g) (Graph.edges g))
          ns_log;
    };
    {
      id = "T1b-9";
      what = "acyclicity";
      family = "general";
      paper = "O(log n)";
      ok_classes = [ Complexity.Logarithmic ];
      param = "n";
      series =
        sweep Acyclic.scheme (fun n -> of_g (Random_graphs.tree (st n) n)) ns_log;
    };
  ]

(* --- smoke sweep (CI) ------------------------------------------------ *)

(* A representative, verifier-bound subset that finishes in seconds on
   the CSR engine: the largest rows are exactly where per-node
   View.make extraction used to go quadratic. *)
let smoke_table =
  [
    {
      id = "S-1";
      what = "Eulerian graph";
      family = "connected";
      paper = "0";
      ok_classes = [ Complexity.Zero ];
      param = "n";
      series =
        sweep Eulerian.scheme (fun n -> of_g (Builders.cycle n)) [ 128; 256; 512 ];
    };
    {
      id = "S-2";
      what = "bipartite graph";
      family = "general";
      paper = "Θ(1)";
      ok_classes = [ Complexity.Constant ];
      param = "n";
      series =
        sweep Bipartite_scheme.scheme
          (fun n -> of_g (Builders.cycle (even n)))
          [ 128; 256; 512 ];
    };
    {
      id = "S-3";
      what = "odd n(G)";
      family = "cycles";
      paper = "Θ(log n)";
      ok_classes = [ Complexity.Logarithmic ];
      param = "n";
      series =
        sweep Counting.odd_n (fun n -> of_g (Builders.cycle (odd n)))
          [ 129; 257; 513 ];
    };
    {
      id = "S-4";
      what = "leader election";
      family = "connected";
      paper = "Θ(log n)";
      ok_classes = [ Complexity.Logarithmic ];
      param = "n";
      series =
        sweep Leader_election.strong
          (fun n -> Leader_election.mark_leader (of_g (Builders.cycle n)) 0)
          [ 128; 256; 512 ];
    };
    {
      id = "S-5";
      what = "spanning tree";
      family = "connected";
      paper = "Θ(log n)";
      ok_classes = [ Complexity.Logarithmic ];
      param = "n";
      series =
        sweep Spanning_tree_scheme.scheme
          (fun n -> spanning_tree_inst (Random_graphs.connected_gnp (st n) n 0.1))
          [ 32; 64; 128 ];
    };
    {
      id = "S-6";
      what = "s-t reachability";
      family = "undirected";
      paper = "Θ(1)";
      ok_classes = [ Complexity.Constant ];
      param = "n";
      series =
        sweep Reachability.undirected_reach
          (fun n -> St.of_graph (Builders.cycle n) ~s:0 ~t:(n / 2))
          [ 512; 1024; 2048; 4096 ];
    };
  ]

(* --- printing + JSON ------------------------------------------------- *)

type row_outcome =
  | Failed of string
  | Fitted of (int * int) list * Complexity.growth * bool (* series, fit, match *)

type row_result = {
  row : row;
  outcome : row_outcome;
  wall_s : float;
  metrics : string option;  (* pre-rendered JSON object, with --metrics *)
  profile : string option;  (* per-row GC deltas, with --profile-hz/-dir *)
}

(* One row: monotonic wall time, an optional trace span, and — with
   --metrics — a per-row snapshot of the deterministic engine counters
   (the metrics registry is reset at row entry, so each row sees only
   its own work). *)
let eval_row r =
  if !collect_metrics then Obs.Metrics.reset ();
  let measure () =
    match r.series () with
    | exception Measure_failure msg -> Failed msg
    | series ->
        let fit = Complexity.classify series in
        Fitted (series, fit, List.mem fit r.ok_classes)
  in
  (* With the profiler on, bracket the row with the coordinating
     domain's GC counters — worker-domain allocations show up in the
     pool.task_alloc_bytes metric instead. *)
  let prof_on = !Obs.Profile.enabled in
  let gc0 = if prof_on then Some (Gc.quick_stat ()) else None in
  let alloc0 = if prof_on then Gc.allocated_bytes () else 0.0 in
  let t0 = Obs.Clock.now_ns () in
  let outcome =
    if Obs.Trace.on () then Obs.Trace.span ("bench.row:" ^ r.id) measure
    else measure ()
  in
  let wall_s = Obs.Clock.ns_to_s (Obs.Clock.elapsed_ns t0) in
  let profile =
    match gc0 with
    | None -> None
    | Some g0 ->
        let g1 = Gc.quick_stat () in
        Some
          (Printf.sprintf
             "{\"alloc_bytes\":%.0f,\"minor_collections\":%d,\"major_collections\":%d}"
             (Gc.allocated_bytes () -. alloc0)
             (g1.Gc.minor_collections - g0.Gc.minor_collections)
             (g1.Gc.major_collections - g0.Gc.major_collections))
  in
  let metrics =
    if not !collect_metrics then None
    else begin
      let snap = Obs.Metrics.deterministic (Obs.Metrics.snapshot ()) in
      Some
        (Printf.sprintf
           "{\"balls_extracted\":%d,\"max_ball_size\":%d,\"verifier_calls\":%d,\"verifier_rejects\":%d,\"forgeries_tried\":%d,\"decode_errors\":%d,\"compiles\":%d}"
           (Obs.Metrics.count snap "simulator.balls_extracted")
           (Obs.Metrics.max_value snap "simulator.ball_size")
           (Obs.Metrics.count snap "simulator.verifier_calls")
           (Obs.Metrics.count snap "simulator.verifier_rejects")
           (Obs.Metrics.count snap "checker.samples"
           + Obs.Metrics.count snap "adversary.attempts")
           (Obs.Metrics.count snap "simulator.decode_errors")
           (Obs.Metrics.count snap "simulator.compiles"))
    end
  in
  { row = r; outcome; wall_s; metrics; profile }

let print_header title =
  Format.printf "@.=== %s ===@." title;
  Format.printf "%-7s %-28s %-10s %-18s %-32s %-12s %-8s %s@." "id"
    "property/problem" "family" "paper" "measured bits per node" "fit" "verdict"
    "wall";
  Format.printf "%s@." (String.make 126 '-')

let print_result { row = r; outcome; wall_s; metrics = _; profile = _ } =
  match outcome with
  | Failed msg ->
      Format.printf "%-7s %-28s %-10s %-18s MEASUREMENT FAILED: %s@." r.id r.what
        r.family r.paper msg
  | Fitted (series, fit, matches) ->
      let verdict = if matches then "MATCH" else "DIFFERS" in
      let series_str =
        String.concat " "
          (List.map (fun (n, b) -> Printf.sprintf "%s=%d:%d" r.param n b) series)
      in
      let series_str =
        if String.length series_str <= 32 then series_str
        else String.sub series_str 0 29 ^ "..."
      in
      Format.printf "%-7s %-28s %-10s %-18s %-32s %-12s %-8s %.3fs@." r.id r.what
        r.family r.paper series_str (Complexity.label fit) verdict wall_s

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_result { row = r; outcome; wall_s; metrics; profile } =
  let common =
    Printf.sprintf
      "\"id\":\"%s\",\"what\":\"%s\",\"family\":\"%s\",\"paper\":\"%s\",\"param\":\"%s\",\"wall_s\":%.6f"
      (json_escape r.id) (json_escape r.what) (json_escape r.family)
      (json_escape r.paper) (json_escape r.param) wall_s
  in
  let common =
    match metrics with
    | Some m -> Printf.sprintf "%s,\"metrics\":%s" common m
    | None -> common
  in
  let common =
    match profile with
    | Some pr -> Printf.sprintf "%s,\"profile\":%s" common pr
    | None -> common
  in
  match outcome with
  | Failed msg -> Printf.sprintf "    {%s,\"error\":\"%s\"}" common (json_escape msg)
  | Fitted (series, fit, matches) ->
      let n_max = List.fold_left (fun acc (n, _) -> max acc n) 0 series in
      let series_str =
        String.concat ","
          (List.map (fun (n, b) -> Printf.sprintf "[%d,%d]" n b) series)
      in
      Printf.sprintf
        "    {%s,\"n_max\":%d,\"series\":[%s],\"fit\":\"%s\",\"verdict\":\"%s\"}"
        common n_max series_str
        (json_escape (Complexity.label fit))
        (if matches then "MATCH" else "DIFFERS")

let write_json path ~smoke ~total_wall_s ?service ?partition ?randomized
    ?profile results =
  let fresh =
    Printf.sprintf
      "{\n\
      \  \"bench\": \"lcp\",\n\
      \  \"engine\": \"%s\",\n\
      \  \"jobs\": %d,\n\
      \  \"smoke\": %b,\n\
      \  \"metrics\": %b,\n\
      \  \"total_wall_s\": %.6f,\n\
       %s\
       %s\
       %s\
       %s\
      \  \"rows\": [\n%s\n  ]\n\
       }\n"
      (if !use_reference then "reference" else "csr")
      !jobs smoke !collect_metrics total_wall_s
      (match service with
      | None -> ""
      | Some s -> Printf.sprintf "  \"service\": %s,\n" s)
      (match partition with
      | None -> ""
      | Some p -> Printf.sprintf "  \"partition\": %s,\n" p)
      (match randomized with
      | None -> ""
      | Some r -> Printf.sprintf "  \"randomized\": %s,\n" r)
      (match profile with
      | None -> ""
      | Some p -> Printf.sprintf "  \"profile\": %s,\n" p)
      (String.concat ",\n" (List.map json_of_result results))
  in
  (* A run that skips a section (say, --service without --partition)
     must not clobber the section a previous run wrote: merge the
     fresh document over the file's current top level, fresh keys
     winning. An unreadable or unparsable old file degrades to a
     plain overwrite. *)
  let out =
    match
      (try
         let ic = open_in_bin path in
         let n = in_channel_length ic in
         let s = really_input_string ic n in
         close_in ic;
         Obs.Json.parse s
       with Sys_error _ | End_of_file -> Error "unreadable")
    with
    | Error _ -> fresh
    | Ok old -> (
        match Obs.Json.parse fresh with
        | Error _ -> fresh
        | Ok fresh_doc ->
            Obs.Json.to_string (Obs.Json.merge_objects ~old ~fresh:fresh_doc)
            ^ "\n")
  in
  let oc = open_out path in
  output_string oc out;
  close_out oc;
  Format.printf "@.machine-readable results written to %s@." path

(* Prometheus text exposition of the same run — through the exact
   renderer the server's /metrics endpoint uses, so CI can validate
   both with one scraper. Per-row wall time and verdicts become
   labelled gauges; with --metrics the cumulative registry (including
   trace.dropped) rides along. *)
let write_prom path ~total_wall_s results =
  let e = Obs.Export.create () in
  Obs.Export.gauge e ~help:"total bench wall time" "bench.wall_seconds"
    total_wall_s;
  Obs.Export.counter e ~help:"rows attempted" "bench.rows"
    (List.length results);
  List.iter
    (fun { row = r; outcome; wall_s; metrics = _; profile = _ } ->
      let labels = [ ("id", r.id) ] in
      Obs.Export.gauge e ~help:"per-row wall time" ~labels
        "bench.row_wall_seconds" wall_s;
      let verdict =
        match outcome with
        | Failed _ -> 0.0
        | Fitted (_, _, matches) -> if matches then 1.0 else 0.0
      in
      Obs.Export.gauge e ~help:"1 = fit matches the paper's bound" ~labels
        "bench.row_verdict" verdict)
    results;
  if !collect_metrics then
    Obs.Export.metrics_snapshot e (Obs.Metrics.snapshot ());
  Obs.Profile.exposition e;
  let oc = open_out path in
  output_string oc (Obs.Export.contents e);
  close_out oc;
  Format.printf "prometheus exposition written to %s@." path

(* --- service bench (--service) --------------------------------------- *)

(* The serving-path benchmark behind the "service" section of
   BENCH_lcp.json: spin the verification daemon in-process on an
   ephemeral port, drive it with the CI mix (eulerian 1:4 over cycle
   sizes 64/128/256) through the real loadgen — once with plain
   per-request frames, once with 64-op Batch frames — and record
   req-equivalent throughput plus warm latency percentiles for both.
   The loadgen setup pass warms the compiled-verifier cache, so every
   measured request is warm. *)
let service_bench () =
  let config =
    {
      Server.default_config with
      Server.port = 0;
      jobs = 1;
      cache_size = 128;
    }
  in
  let server = Server.create config in
  let th = Server.start server in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Thread.join th)
  @@ fun () ->
  let port = Server.port server in
  let sizes = [ 64; 128; 256 ] in
  let run ~batch ~requests =
    match
      Client.loadgen ~port ~batch ~connections:2 ~requests ~mix:(1, 4, 0)
        ~scheme:"eulerian" ~sizes ()
    with
    | Error m -> failwith ("service bench: " ^ m)
    | Ok r -> r
  in
  Format.printf "@.=== service bench (in-process daemon, port %d) ===@." port;
  let plain = run ~batch:1 ~requests:400 in
  let batched = run ~batch:64 ~requests:25 in
  let pcts (s : Client.lat_summary) =
    match s.Client.latency with
    | None -> (0.0, 0.0, 0.0)
    | Some l -> (l.Client.p50_us, l.Client.p95_us, l.Client.p99_us)
  in
  let leg_json name (r : Client.report) =
    let p50, p95, p99 = pcts r.Client.overall in
    Printf.sprintf
      "\"%s\":{\"batch\":%d,\"ops\":%d,\"errors\":%d,\"total_s\":%.4f,\"throughput_rps\":%.1f,\"throughput_ops\":%.1f,\"p50_us\":%.1f,\"p95_us\":%.1f,\"p99_us\":%.1f}"
      name r.Client.batch
      (r.Client.ok + r.Client.errors)
      r.Client.errors r.Client.total_s r.Client.throughput_rps
      r.Client.throughput_ops p50 p95 p99
  in
  let speedup =
    if plain.Client.throughput_ops > 0.0 then
      batched.Client.throughput_ops /. plain.Client.throughput_ops
    else 0.0
  in
  let describe name (r : Client.report) =
    let p50, p95, p99 = pcts r.Client.overall in
    Format.printf
      "%-10s %6d ops in %6.3fs  %9.1f op/s  p50 %8.1f us  p95 %8.1f us  p99 \
       %8.1f us  (%d error(s))@."
      name
      (r.Client.ok + r.Client.errors)
      r.Client.total_s r.Client.throughput_ops p50 p95 p99 r.Client.errors
  in
  describe "unbatched" plain;
  describe "batch-64" batched;
  Format.printf "speedup:   %.1fx req-equivalent throughput@." speedup;
  let st = Server.stats server in
  Printf.sprintf
    "{\"scheme\":\"eulerian\",\"mix\":\"1:4\",\"sizes\":[%s],\"connections\":2,%s,%s,\"speedup_ops\":%.2f,\"server\":{\"requests\":%d,\"batch_ops\":%d,\"cache_hits\":%d,\"cache_misses\":%d}}"
    (String.concat "," (List.map string_of_int sizes))
    (leg_json "unbatched" plain)
    (leg_json "batch64" batched)
    speedup st.Server.requests st.Server.batch_ops st.Server.cache_hits
    st.Server.cache_misses

(* --- partition bench (--partition) ----------------------------------- *)

(* The partition-parallel serving path behind the "partition" section
   of BENCH_lcp.json: one whole-graph Verify against a single `lcp
   serve` daemon versus a 4-shard Fanout.verify scattered directly
   over two daemons, on the same cycle instances. The daemons
   are real child processes, not in-process Server values: separate
   runtimes mirror deployment and keep one leg's GC from stalling the
   other's — in-process, every live worker domain joins every minor
   collection, which taxes whichever leg happens to share the runtime.
   Caches are off (--cache-size 0) so every request pays the full
   graph6 decode + compile; that cold path is what partitioning
   attacks: graph6 costs O(n²) to encode and decode, so four quarter
   shards cost ~O(n²/16) each and the sharded run wins even when the
   backends time-share a core, and wins again on compute when they do
   not. Verdict equality against the single-daemon reply is
   asserted per row, on an accepting instance and on a rejecting
   one. *)
let partition_bench () =
  Format.printf
    "@.=== partition bench (1 whole-graph daemon vs 2 sharded backends) ===@.";
  (* eulerian: radius 1, LCP(0) — the proof is empty, so the rows
     measure exactly what partitioning targets: the O(n²) graph6
     encode + decode of the instance itself. A cycle accepts; a cycle
     plus one chord has two odd-degree endpoints and must reject at
     them, in both paths, with identical node ids. *)
  let scheme =
    match Registry.find "eulerian" with
    | Some e -> e.Registry.scheme
    | None -> failwith "partition bench: eulerian not registered"
  in
  let cycle ?chord n =
    let g =
      List.fold_left
        (fun g i -> Graph.add_edge g i ((i + 1) mod n))
        (List.fold_left
           (fun g i -> Graph.add_node g i)
           Graph.empty
           (List.init n (fun i -> i)))
        (List.init n (fun i -> i))
    in
    match chord with None -> g | Some (u, v) -> Graph.add_edge g u v
  in
  let reps = 5 in
  (* best-of-reps, not mean: the client and both daemons time-share
     one box, so any rep can eat an unrelated scheduler or GC stall —
     the minimum is the reproducible cost of the path itself *)
  let wall f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Obs.Clock.now_ns () in
      f ();
      let s = Obs.Clock.ns_to_s (Obs.Clock.elapsed_ns t0) in
      if s < !best then best := s
    done;
    !best
  in
  let proof = Proof.empty in
  (* the largest row is sized just under the 16 MiB frame cap:
     graph6 at n=13312 is ~14.8 MiB whole, ~3.7 MiB per half shard *)
  let sizes = [ 4096; 8192; 13312 ] in
  let graphs =
    List.map
      (fun n ->
        let g = cycle n in
        (n, g, Csr.of_graph g, cycle ~chord:(2, n / 2) n))
      sizes
  in
  (* child-process plumbing: the lcp binary lives next to this bench
     inside _build, so resolve it relative to the running executable
     rather than the cwd *)
  let lcp =
    Filename.concat (Filename.dirname Sys.executable_name) "../bin/lcp.exe"
  in
  if not (Sys.file_exists lcp) then
    failwith ("partition bench: lcp binary not found at " ^ lcp);
  let spawn args =
    let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    let pid =
      Unix.create_process lcp (Array.of_list (lcp :: args)) Unix.stdin null null
    in
    Unix.close null;
    pid
  in
  let wait_ready port =
    let deadline = Obs.Clock.now_ns () in
    let rec go () =
      match Client.connect ~port () with
      | Ok c -> Client.close c
      | Error _ ->
          if Obs.Clock.ns_to_s (Obs.Clock.elapsed_ns deadline) > 10.0 then
            failwith
              (Printf.sprintf "partition bench: daemon on port %d never came up"
                 port)
          else (
            Thread.delay 0.05;
            go ())
    in
    go ()
  in
  let shutdown pid =
    Unix.kill pid Sys.sigint;
    ignore (Unix.waitpid [] pid)
  in
  let serve port =
    let pid =
      spawn
        [
          "serve"; "--port"; string_of_int port; "--jobs"; "1"; "--cache-size";
          "0";
        ]
    in
    wait_ready port;
    pid
  in
  let p_single = 7471 and p_b1 = 7472 and p_b2 = 7473 in
  (* phase 1: whole-graph requests against one daemon *)
  let call_whole port g =
    match Client.connect ~port () with
    | Error m -> failwith ("partition bench: " ^ m)
    | Ok c -> (
        let r =
          Client.call c
            (Wire.Verify { scheme = "eulerian"; graph6 = Graph6.encode g; proof })
        in
        Client.close c;
        match r with
        | Ok (Wire.Verified { accepted; rejecting }) -> (accepted, rejecting)
        | Ok _ -> failwith "partition bench: unexpected reply"
        | Error m -> failwith ("partition bench: " ^ m))
  in
  let whole_rows =
    let pid = serve p_single in
    Fun.protect ~finally:(fun () -> shutdown pid) @@ fun () ->
    List.map
      (fun (n, g, _, bad) ->
        let verdict = call_whole p_single g
        and bad_verdict = call_whole p_single bad in
        ( n,
          verdict,
          bad_verdict,
          wall (fun () -> ignore (call_whole p_single g)) ))
      graphs
  in
  (* phase 2: the same instances sharded 2-way, one shard per backend *)
  let call_sharded csr =
    match
      Fanout.verify ~port:p_b1
        ~endpoints:[ ("127.0.0.1", p_b1); ("127.0.0.1", p_b2) ]
        ~scheme:"eulerian" ~csr ~proof ~radius:scheme.Scheme.radius ~k:4 ()
    with
    | Ok v -> (v.Fanout.all_accept, v.Fanout.rejecting)
    | Error m -> failwith ("partition bench: fanout: " ^ m)
  in
  let counter text name =
    List.fold_left
      (fun acc line ->
        match String.split_on_char ' ' line with
        | [ n; v ] when n = name -> (
            match float_of_string_opt v with
            | Some f -> int_of_float f
            | None -> acc)
        | _ -> acc)
      0
      (String.split_on_char '\n' text)
  in
  let metrics port =
    match Client.connect ~port () with
    | Error m -> failwith ("partition bench: " ^ m)
    | Ok c -> (
        let r = Client.call c Wire.Metrics_text in
        Client.close c;
        match r with
        | Ok (Wire.Metrics_text_reply s) -> s
        | _ -> failwith "partition bench: metrics scrape failed")
  in
  let sharded_rows, shards1, rej1, shards2, rej2 =
    let b1 = serve p_b1 in
    let b2 = serve p_b2 in
    Fun.protect ~finally:(fun () -> List.iter shutdown [ b1; b2 ])
    @@ fun () ->
    let rows =
      List.map
        (fun (n, _, csr, bad) ->
          let verdict = call_sharded csr
          and bad_verdict = call_sharded (Csr.of_graph bad) in
          (n, verdict, bad_verdict, wall (fun () -> ignore (call_sharded csr))))
        graphs
    in
    let m1 = metrics p_b1 and m2 = metrics p_b2 in
    ( rows,
      counter m1 "lcp_partition_shards_total",
      counter m1 "lcp_partition_reject_total",
      counter m2 "lcp_partition_shards_total",
      counter m2 "lcp_partition_reject_total" )
  in
  let rows =
    List.map2
      (fun (n, wv, wb, single_s) (n', sv, sb, sharded_s) ->
        assert (n = n');
        let equal = wv = sv && wb = sb in
        let ratio = if single_s > 0.0 then sharded_s /. single_s else 0.0 in
        Format.printf
          "n=%-5d whole %8.2f ms   4-shard %8.2f ms   ratio %.2fx   verdicts \
           %s@."
          n (single_s *. 1000.0) (sharded_s *. 1000.0) ratio
          (if equal then "equal" else "DIFFER");
        (n, single_s, sharded_s, ratio, equal))
      whole_rows sharded_rows
  in
  Format.printf "backend shards: %d + %d, rejects %d + %d@." shards1 shards2
    rej1 rej2;
  let largest_ratio =
    match List.rev rows with (_, _, _, r, _) :: _ -> r | [] -> 0.0
  in
  Printf.sprintf
    "{\"scheme\":\"eulerian\",\"partitions\":4,\"backends\":2,\"transport\":\"direct\",\"reps\":%d,\"rows\":[%s],\"largest_ratio\":%.3f,\"backend_shards\":[%d,%d]}"
    reps
    (String.concat ","
       (List.map
          (fun (n, single_s, sharded_s, ratio, equal) ->
            Printf.sprintf
              "{\"n\":%d,\"single_s\":%.6f,\"sharded_s\":%.6f,\"ratio\":%.3f,\"verdict_equal\":%b}"
              n single_s sharded_s ratio equal)
          rows))
    largest_ratio shards1 shards2

(* --- randomized bench (--randomized) --------------------------------- *)

(* The sampled-verification subsystem behind the "randomized" section
   of BENCH_lcp.json. Two halves:

   - an in-process table over every catalog sampled variant: honest
     proof size, sampled vs full verification wall at each size, and
     the measured one-sided error of the sampler over the checker's
     forgery distribution (Wilson interval) — the declared ε is a
     tested claim, and this is the test;

   - a serving gate on the wire path: an in-process daemon serves warm
     bipartite instances under always-full Verify and under
     Verify_sampled (sampled fast path, escalate on rejection); the
     sampled leg must win req-equivalent throughput on the largest row
     while agreeing with the full verdict on both a valid proof and an
     all-ones corruption (which every node rejects, so the sampled run
     escalates with certainty). *)
let randomized_bench () =
  Format.printf "@.=== randomized bench (sampled verification) ===@.";
  let reps = 5 in
  (* best-of-reps for the same reason the partition bench uses it: the
     minimum is the reproducible cost of the path itself *)
  let wall f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Obs.Clock.now_ns () in
      f ();
      let s = Obs.Clock.ns_to_s (Obs.Clock.elapsed_ns t0) in
      if s < !best then best := s
    done;
    !best
  in
  let cycle ?(base = 0) n =
    let ids = List.init n (fun i -> base + i) in
    let g = List.fold_left Graph.add_node Graph.empty ids in
    List.fold_left
      (fun g i -> Graph.add_edge g (base + i) (base + ((i + 1) mod n)))
      g
      (List.init n (fun i -> i))
  in
  (* even-cycle yes-instances per sampled scheme: bipartite plain, a
     flagged hamiltonian path as the spanning tree, and s/t dropped
     into two separate components for unreachability *)
  let instance name n =
    match name with
    | "bipartite" -> Instance.of_graph (cycle n)
    | "spanning-tree" ->
        Instance.flag_edges
          (Instance.of_graph (cycle n))
          (List.init (n - 1) (fun i -> (i, i + 1)))
    | "st-unreach" ->
        let h = n / 2 in
        let g =
          Graph.union_disjoint (cycle h) (cycle ~base:h h)
        in
        St.of_graph g ~s:0 ~t:h
    | _ -> failwith ("randomized bench: no instance builder for " ^ name)
  in
  let sizes = [ 256; 1024; 4096 ] in
  let scheme_json (name, rs) =
    let base = rs.Randomized_scheme.base in
    let rows =
      List.map
        (fun n ->
          let inst = instance name n in
          let proof =
            match base.Scheme.prover inst with
            | Some p -> p
            | None ->
                failwith
                  (Printf.sprintf "randomized bench: %s prover refused n=%d"
                     name n)
          in
          let compiled = Simulator.compile inst in
          let queries = rs.Randomized_scheme.queries in
          let o = Randomized_scheme.run rs compiled proof ~seed:1 ~queries in
          if not o.Randomized_scheme.accepted then
            failwith
              (Printf.sprintf
                 "randomized bench: %s sampled run rejected a valid proof \
                  (n=%d)"
                 name n);
          let sampled_s =
            wall (fun () ->
                ignore (Randomized_scheme.run rs compiled proof ~seed:1 ~queries))
          in
          let full_s =
            wall (fun () ->
                ignore
                  (Simulator.run_verifier ~compiled inst proof
                     ~radius:base.Scheme.radius base.Scheme.verifier))
          in
          let speedup = if sampled_s > 0.0 then full_s /. sampled_s else 0.0 in
          Format.printf
            "%-14s n=%-5d proof %2d bit(s)  sampled %8.3f ms (%d probes, %d \
             bits)  full %8.3f ms  speedup %6.2fx@."
            name n (Proof.size proof) (sampled_s *. 1000.0)
            o.Randomized_scheme.nodes_checked o.Randomized_scheme.bits_read
            (full_s *. 1000.0) speedup;
          Printf.sprintf
            "{\"n\":%d,\"proof_bits\":%d,\"queries\":%d,\"nodes_checked\":%d,\"bits_read\":%d,\"sampled_s\":%.6f,\"full_s\":%.6f,\"speedup\":%.3f}"
            n (Proof.size proof) queries o.Randomized_scheme.nodes_checked
            o.Randomized_scheme.bits_read sampled_s full_s speedup)
        sizes
    in
    (* measured one-sided error at the smallest size: forge, keep what
       the base verifier rejects, count sampled acceptances *)
    let e =
      Randomized_scheme.soundness rs
        (instance name (List.hd sizes))
        ~samples:400 ~max_bits:4
    in
    let within = e.Checker.wilson_low <= rs.Randomized_scheme.epsilon in
    Format.printf
      "%-14s soundness: %d of %d invalid forgeries fooled the sampler (rate \
       %.4f, wilson [%.4f, %.4f], ε %g: %s)@."
      name e.Checker.fooled e.Checker.invalid e.Checker.rate
      e.Checker.wilson_low e.Checker.wilson_high rs.Randomized_scheme.epsilon
      (if within then "within budget" else "EXCEEDED");
    Printf.sprintf
      "{\"scheme\":\"%s\",\"epsilon\":%g,\"queries\":%d,\"probes\":%d,\"budget\":\"%s\",\"soundness\":{\"n\":%d,\"samples\":400,\"trials\":%d,\"invalid\":%d,\"fooled\":%d,\"rate\":%.6f,\"wilson_low\":%.6f,\"wilson_high\":%.6f,\"within_budget\":%b},\"rows\":[%s]}"
      name rs.Randomized_scheme.epsilon rs.Randomized_scheme.queries
      rs.Randomized_scheme.probes rs.Randomized_scheme.budget (List.hd sizes)
      e.Checker.trials e.Checker.invalid e.Checker.fooled e.Checker.rate
      e.Checker.wilson_low e.Checker.wilson_high within
      (String.concat "," rows)
  in
  let schemes = List.map scheme_json Sampled.all in
  (* serving gate: the wire path, always-full vs sampled + escalate *)
  let serving =
    let rs =
      match Sampled.find "bipartite" with
      | Some rs -> rs
      | None -> failwith "randomized bench: bipartite has no sampled variant"
    in
    let config =
      { Server.default_config with Server.port = 0; jobs = 1; cache_size = 128 }
    in
    let server = Server.create config in
    let th = Server.start server in
    Fun.protect
      ~finally:(fun () ->
        Server.stop server;
        Thread.join th)
    @@ fun () ->
    let port = Server.port server in
    let queries = rs.Randomized_scheme.queries in
    let reqs = 40 in
    let rows =
      List.map
        (fun n ->
          let g = cycle n in
          let g6 = Graph6.encode g in
          let inst = Instance.of_graph g in
          let proof =
            match rs.Randomized_scheme.base.Scheme.prover inst with
            | Some p -> p
            | None -> failwith "randomized bench: bipartite prover refused"
          in
          (* all-ones: both endpoints of every edge claim the same
             colour, so every node rejects — full verify says REJECT
             and any probed node trips the sampled run into the
             escalation path *)
          let ones =
            Proof.map
              (fun _ b ->
                Bits.of_bools (List.init (Bits.length b) (fun _ -> true)))
              proof
          in
          match Client.connect ~port () with
          | Error m -> failwith ("randomized bench: " ^ m)
          | Ok c ->
              Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
              let call req =
                match Client.call c req with
                | Ok r -> r
                | Error m -> failwith ("randomized bench: " ^ m)
              in
              let full p =
                call (Wire.Verify { scheme = "bipartite"; graph6 = g6; proof = p })
              in
              let sampled ~seed p =
                call
                  (Wire.Verify_sampled
                     {
                       scheme = "bipartite";
                       graph6 = g6;
                       proof = p;
                       seed;
                       queries;
                       budget_id = "";
                     })
              in
              let verdict_equal =
                (match (full proof, sampled ~seed:1 proof) with
                | ( Wire.Verified { accepted = true; _ },
                    Wire.Sampled_verified
                      { accepted = true; escalated = false; _ } ) ->
                    true
                | _ -> false)
                &&
                match (full ones, sampled ~seed:1 ones) with
                | ( Wire.Verified { accepted = false; _ },
                    Wire.Sampled_verified
                      { accepted = false; escalated = true; _ } ) ->
                    true
                | _ -> false
              in
              let leg make =
                ignore (make 0);
                (* warm the compiled-graph cache *)
                let t0 = Obs.Clock.now_ns () in
                for i = 1 to reqs do
                  ignore (make i)
                done;
                float_of_int reqs /. Obs.Clock.ns_to_s (Obs.Clock.elapsed_ns t0)
              in
              let full_rps = leg (fun _ -> full proof) in
              let sampled_rps = leg (fun i -> sampled ~seed:(i + 1) proof) in
              let speedup =
                if full_rps > 0.0 then sampled_rps /. full_rps else 0.0
              in
              Format.printf
                "serving n=%-5d full %8.1f req/s   sampled %8.1f req/s   \
                 speedup %5.2fx   verdicts %s@."
                n full_rps sampled_rps speedup
                (if verdict_equal then "equal" else "DIFFER");
              Printf.sprintf
                "{\"n\":%d,\"full_rps\":%.1f,\"sampled_rps\":%.1f,\"speedup\":%.3f,\"verdict_equal\":%b}"
                n full_rps sampled_rps speedup verdict_equal)
        [ 512; 2048 ]
    in
    let st = Server.stats server in
    Printf.sprintf
      "{\"scheme\":\"bipartite\",\"queries\":%d,\"reqs_per_leg\":%d,\"rows\":[%s],\"server\":{\"sampled_requests\":%d,\"sampled_escalations\":%d,\"sampled_bits_read\":%d}}"
      queries reqs (String.concat "," rows)
      st.Server.sampled_requests st.Server.sampled_escalations
      st.Server.sampled_bits_read
  in
  Printf.sprintf "{\"schemes\":[%s],\"serving\":%s}"
    (String.concat "," schemes)
    serving

(* --- lower-bound attack experiments --------------------------------- *)

let gluing_outcome name scheme family =
  match Gluing.attack ~rows:4 scheme family with
  | Gluing.Fooled { instance; genuinely_no; quad = (a1, b1), (a2, b2); _ } ->
      Format.printf
        "%-34s FOOLED: glued C(%d,%d)+C(%d,%d) -> accepted %d-node no-instance (no=%b)@."
        name a1 b1 a2 b2 (Instance.n instance) genuinely_no
  | Gluing.Resisted { pairs; distinct_signatures } ->
      Format.printf "%-34s resisted: %d/%d signatures distinct@." name
        distinct_signatures pairs
  | Gluing.Prover_failed (a, b) ->
      Format.printf "%-34s prover failed on C(%d,%d)@." name a b

let symmetry_outcome name outcome =
  match outcome with
  | Symmetry_lb.Fooled { glued; genuinely_no; _ } ->
      Format.printf "%-34s FOOLED: accepted %d-node spliced graph (no=%b)@." name
        (Graph.n glued) genuinely_no
  | Symmetry_lb.Resisted { family_size; distinct_windows } ->
      Format.printf "%-34s resisted: %d/%d windows distinct@." name distinct_windows
        family_size
  | Symmetry_lb.Prover_failed _ -> Format.printf "%-34s prover failed@." name

let non3col_outcome name outcome =
  match outcome with
  | Non3col_lb.Fooled { instance; genuinely_no; _ } ->
      Format.printf "%-34s FOOLED: accepted %d-node spliced gadget (3-colourable=%b)@."
        name (Instance.n instance) genuinely_no
  | Non3col_lb.Resisted { family_size; distinct_windows } ->
      Format.printf "%-34s resisted: %d/%d windows distinct@." name distinct_windows
        family_size
  | Non3col_lb.Prover_failed _ -> Format.printf "%-34s prover failed@." name

let lower_bounds () =
  Format.printf "@.=== Figure 1 / Section 5.3: gluing cycles ===@.";
  Format.printf "(undersized-but-complete schemes must be FOOLED; honest Θ(log n) schemes must resist)@.";
  gluing_outcome "odd-n, 2-bit counters" (Truncated.odd_n_cycle ~bits:2)
    (Gluing.odd_cycles ~n:9);
  gluing_outcome "odd-n, honest Θ(log n)" Counting.odd_n (Gluing.odd_cycles ~n:9);
  gluing_outcome "leader, 2-bit counters" (Truncated.leader_cycle ~bits:2)
    (Gluing.leader_cycles ~n:8);
  gluing_outcome "leader, honest Θ(log n)" Leader_election.strong
    (Gluing.leader_cycles ~n:8);
  gluing_outcome "max-matching, 2-bit counters" (Truncated.max_matching_cycle ~bits:2)
    (Gluing.matching_cycles ~n:9);
  gluing_outcome "max-matching, honest Θ(log n)" Matching_schemes.maximum_on_cycle
    (Gluing.matching_cycles ~n:9);

  Format.printf "@.--- general k (the paper's arbitrary constant) ---@.";
  List.iter
    (fun k ->
      match
        Gluing.attack_k ~rows:(2 * k) ~k (Truncated.odd_n_cycle ~bits:2)
          (Gluing.odd_cycles ~n:9)
      with
      | Gluing.Fooled_k { instance; genuinely_no; _ } ->
          Format.printf
            "odd-n, k=%d: glued %d-cycle accepted; genuine no-instance = %b %s@." k
            (Instance.n instance) genuinely_no
            (if genuinely_no then "(parity flipped: refutation)"
             else "(odd k keeps parity: pick even k)")
      | Gluing.Resisted_k _ -> Format.printf "odd-n, k=%d: resisted@." k
      | Gluing.Prover_failed_k _ -> Format.printf "odd-n, k=%d: prover failed@." k)
    [ 2; 3; 4 ];

  Format.printf "@.--- budget sweep: where does the attack stop working? ---@.";
  List.iter
    (fun bits ->
      match Gluing.attack ~rows:4 (Truncated.leader_cycle ~bits) (Gluing.leader_cycles ~n:8) with
      | Gluing.Fooled _ -> Format.printf "leader election, %d-bit counters: FOOLED@." bits
      | Gluing.Resisted { pairs; distinct_signatures } ->
          Format.printf "leader election, %d-bit counters: resisted (%d/%d distinct)@."
            bits distinct_signatures pairs
      | Gluing.Prover_failed _ -> Format.printf "%d bits: prover failed@." bits)
    [ 2; 3; 4 ];

  Format.printf "@.=== Section 6.1: symmetric graphs need Ω(n²) bits ===@.";
  let family = Enumerate.asymmetric_connected 6 in
  Format.printf "family F_6: %d pairwise non-isomorphic asymmetric connected graphs@."
    (List.length family);
  symmetry_outcome "claims scheme, O(Δ log n) bits"
    (Symmetry_lb.attack_symmetric Truncated.symmetric_claims ~family);
  symmetry_outcome "universal scheme, Θ(n²) bits"
    (Symmetry_lb.attack_symmetric Universal.symmetric ~family);

  Format.printf "@.=== Section 6.2: fixpoint-free tree symmetry needs Ω(n) ===@.";
  let trees = Tree_enum.rooted_trees 6 in
  Format.printf "family: %d rooted trees on 6 nodes (A000081)@." (List.length trees);
  symmetry_outcome "claims scheme, O(Δ log n) bits"
    (Symmetry_lb.attack_trees Truncated.fixpoint_free_claims ~family:trees);
  symmetry_outcome "tree-universal scheme, Θ(n) bits"
    (Symmetry_lb.attack_trees Tree_universal.fixpoint_free_symmetry ~family:trees);

  Format.printf "@.=== Section 6.3: non-3-colourability needs Ω(n²/log n) ===@.";
  let sets =
    Some [ [ (0, 1) ]; [ (1, 0) ]; [ (0, 0); (1, 1) ]; [ (0, 1); (1, 0) ] ]
  in
  let ball_claims =
    Truncated.ball_claims ~name:"non3col-ball-claims" (fun g ->
        not (Coloring.is_k_colourable g 3))
  in
  non3col_outcome "ball-claims scheme, O(Δ² log n)"
    (Non3col_lb.attack ~k:1 ~r:1 ~sets ball_claims);
  non3col_outcome "universal scheme, Θ(n²)"
    (Non3col_lb.attack ~k:1 ~r:1 ~sets Universal.non_3_colourable);

  Format.printf
    "@.=== Table 1(a) dash row: connectivity has NO scheme of any size ===@.";
  let conn_universal =
    Universal.of_predicate ~name:"connected-universal" Traversal.is_connected
  in
  Format.printf
    "disjoint-union attack vs the universal O(n²) scheme: fooled = %b@."
    (No_scheme.connectivity_has_no_scheme conn_universal)

(* --- design ablations ------------------------------------------------- *)

let ablations () =
  Format.printf "@.=== design ablations ===@.";
  (* 1. mutual vs one-sided pointers (directed reachability) *)
  let inst, forged = Truncated.one_sided_fooling () in
  Format.printf
    "one-sided pointers accept the unreachable 3-cycle instance: %b (FOOLED)@."
    (Scheme.accepts Truncated.directed_reach_one_sided inst forged);
  (match
     Adversary.forge ~restarts:6 ~steps:200 Reachability.directed_reach_pointer
       inst ~max_bits:8
   with
  | Adversary.Fooled _ -> Format.printf "mutual pointers: FOOLED (bug!)@."
  | Adversary.Resisted { attempts; _ } ->
      Format.printf
        "mutual pointers: resisted %d forging attempts on the same instance@."
        attempts);
  (* 2. weak vs strong leader election proof sizes *)
  Format.printf "weak vs strong leader-election bits:";
  List.iter
    (fun n ->
      let g = Builders.cycle n in
      let s =
        measured Leader_election.strong
          (Leader_election.mark_leader (of_g g) 0)
      in
      let w = measured Leader_election.weak (of_g g) in
      Format.printf " n=%d:%d/%d" n s w)
    [ 8; 32; 128 ];
  Format.printf "  (strong/weak — within a constant, Section 7.2)@.";
  (* 3. attack budget vs window capacity (the counting inequality) *)
  Format.printf
    "window capacity 2^(bits·(2r+1)) at r=1: bits=1:%d bits=2:%d bits=4:%d — vs |F_6| = 8, |trees_6| = 20@."
    (Symmetry_lb.forced_collision_bound ~bits:1 ~radius:1)
    (Symmetry_lb.forced_collision_bound ~bits:2 ~radius:1)
    (Symmetry_lb.forced_collision_bound ~bits:4 ~radius:1)

(* --- hierarchy summary ----------------------------------------------- *)

let hierarchy () =
  Format.printf "@.=== The LCP hierarchy at n = 64 (bits per node, measured) ===@.";
  let entries =
    [
      ("LCP(0)     eulerian", measured Eulerian.scheme (of_g (Builders.cycle 64)));
      ("LCP(1)     bipartite", measured Bipartite_scheme.scheme (of_g (Builders.cycle 64)));
      ( "LogLCP     leader election",
        measured Leader_election.strong
          (Leader_election.mark_leader (of_g (Builders.cycle 64)) 0) );
      ( "LCP(n)     tree symmetry",
        measured Tree_universal.fixpoint_free_symmetry (of_g (doubled_tree 32 7)) );
      ( "LCP(n²)    symmetric graph",
        measured_prover_only Universal.symmetric (of_g (Builders.cycle 64)) );
    ]
  in
  List.iter (fun (name, bits) -> Format.printf "  %-28s %6d bits@." name bits) entries;
  Format.printf "  (each level separated by the lower-bound attacks above)@."

(* --- Bechamel timing ------------------------------------------------- *)

module Lcp_instance = Instance

let timing () =
  let open Bechamel in
  let open Toolkit in
  let verifier_test name scheme inst =
    match Scheme.prove_and_check scheme inst with
    | `Accepted proof ->
        let g = Lcp_instance.graph inst in
        let nodes = Graph.nodes g in
        Test.make ~name
          (Staged.stage (fun () ->
               List.iter
                 (fun v -> ignore (Scheme.verifier_output scheme inst proof v))
                 nodes))
    | _ -> failwith ("prover failed for " ^ name)
  in
  let n = 64 in
  let tests =
    Test.make_grouped ~name:"verifiers"
      [
        verifier_test "eulerian-C64" Eulerian.scheme (of_g (Builders.cycle n));
        verifier_test "bipartite-C64" Bipartite_scheme.scheme (of_g (Builders.cycle n));
        verifier_test "leader-C64" Leader_election.strong
          (Leader_election.mark_leader (of_g (Builders.cycle n)) 0);
        verifier_test "spanning-tree-G64"
          Spanning_tree_scheme.scheme
          (spanning_tree_inst (Random_graphs.connected_gnp (st 5) n 0.1));
        verifier_test "odd-n-C65" Counting.odd_n (of_g (Builders.cycle 65));
        verifier_test "non-bipartite-C65" Non_bipartite.scheme (of_g (Builders.cycle 65));
        verifier_test "maxw-matching-C16"
          Matching_schemes.maximum_weight_bipartite
          (let g = Builders.cycle 16 in
           let w (u, v) = 1 + ((u + v) mod 7) in
           Matching_schemes.weighted_instance g w (Weighted_matching.maximum_weight g w));
      ]
  in
  let prover_test name scheme inst =
    Test.make ~name
      (Staged.stage (fun () ->
           match scheme.Scheme.prover inst with
           | Some _ -> ()
           | None -> failwith "prover refused"))
  in
  let prover_tests =
    Test.make_grouped ~name:"provers"
      [
        prover_test "bipartite-C64" Bipartite_scheme.scheme (of_g (Builders.cycle n));
        prover_test "leader-C64" Leader_election.strong
          (Leader_election.mark_leader (of_g (Builders.cycle n)) 0);
        prover_test "non-bipartite-C65" Non_bipartite.scheme (of_g (Builders.cycle 65));
        prover_test "menger-grid5x5"
          Connectivity.general
          (Connectivity.instance (Builders.grid 5 5) ~s:0 ~t:24 ~k:2);
        prover_test "universal-symmetric-C24" Universal.symmetric
          (of_g (Builders.cycle 24));
      ]
  in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let report title raw =
    let results = Analyze.all ols Instance.monotonic_clock raw in
    Format.printf "=== %s (ns/run) ===@." title;
    Hashtbl.iter
      (fun name ols_result ->
        let estimate =
          match Analyze.OLS.estimates ols_result with
          | Some (e :: _) -> Printf.sprintf "%12.0f ns" e
          | _ -> "?"
        in
        Format.printf "  %-44s %s@." name estimate)
      results
  in
  report "verifier timings (all nodes of one instance)"
    (Benchmark.all cfg Instance.[ monotonic_clock ] tests);
  report "prover timings (one instance)"
    (Benchmark.all cfg Instance.[ monotonic_clock ] prover_tests)

(* --- main ------------------------------------------------------------ *)

let run_table title rows =
  print_header title;
  List.map
    (fun r ->
      let result = eval_row r in
      print_result result;
      result)
    rows

let usage () =
  prerr_endline
    "usage: main.exe [--smoke] [--timing] [--service] [--partition] \
     [--randomized] [--reference] [--jobs N] [--metrics] [--trace FILE] \
     [--prom FILE] [--profile-hz HZ] [--profile-dir DIR] (N=0: all cores)";
  exit 2

(* Wrap a whole bench section in a trace span when tracing is on. *)
let section name f = if !Obs.Trace.enabled then Obs.Trace.span name f else f ()

let () =
  let args = Array.to_list Sys.argv in
  let rec find_jobs = function
    | "--jobs" :: v :: _ -> (
        match int_of_string_opt v with
        | Some j when j >= 0 -> j
        | _ ->
            Printf.eprintf "--jobs: expected a non-negative integer, got %S\n" v;
            usage ())
    | [ "--jobs" ] ->
        prerr_endline "--jobs needs an argument";
        usage ()
    | _ :: rest -> find_jobs rest
    | [] -> 1
  in
  let rec find_file flag = function
    | f :: v :: _ when f = flag ->
        if String.length v > 0 && v.[0] = '-' then begin
          prerr_endline (flag ^ " needs a file argument");
          usage ()
        end;
        Some v
    | [ f ] when f = flag ->
        prerr_endline (flag ^ " needs a file argument");
        usage ()
    | _ :: rest -> find_file flag rest
    | [] -> None
  in
  let find_trace = find_file "--trace" in
  let find_prom = find_file "--prom" in
  jobs := (match find_jobs args with 0 -> Pool.default_jobs () | j -> j);
  let trace_file = find_trace args in
  let prom_file = find_prom args in
  let profile_hz =
    match find_file "--profile-hz" args with
    | None -> 0
    | Some v -> (
        match int_of_string_opt v with
        | Some hz when hz > 0 -> hz
        | _ ->
            Printf.eprintf "--profile-hz: expected a positive integer, got %S\n"
              v;
            usage ())
  in
  let profile_dir = find_file "--profile-dir" args in
  let profile_on = profile_hz > 0 || profile_dir <> None in
  (* Drop option arguments (the values after --jobs / --trace / --prom)
     before scanning for unknown flags. *)
  let rec flags_only = function
    | ("--jobs" | "--trace" | "--prom" | "--profile-hz" | "--profile-dir")
      :: _ :: rest ->
        flags_only rest
    | a :: rest -> a :: flags_only rest
    | [] -> []
  in
  (match
     List.filter
       (fun a ->
         String.length a > 1 && a.[0] = '-'
         && not
              (List.mem a
                 [ "--smoke"; "--timing"; "--service"; "--partition";
                   "--randomized"; "--reference"; "--jobs"; "--metrics";
                   "--trace"; "--prom"; "--profile-hz"; "--profile-dir" ]))
       (flags_only (List.tl args))
   with
  | [] -> ()
  | bad :: _ ->
      Printf.eprintf "unknown option %S\n" bad;
      usage ());
  use_reference := List.mem "--reference" args;
  collect_metrics := List.mem "--metrics" args;
  let with_service = List.mem "--service" args in
  let with_partition = List.mem "--partition" args in
  let with_randomized = List.mem "--randomized" args in
  if !collect_metrics || trace_file <> None then
    Obs.enable ~metrics:!collect_metrics ~trace:(trace_file <> None) ();
  if profile_on then begin
    Obs.Trace.process := Printf.sprintf "bench-%d" (Unix.getpid ());
    Obs.Profile.start ~hz:(if profile_hz > 0 then profile_hz else 97) ()
  end;
  (* The profiler must stop before the JSON/spool reads so the counts
     are final; returns the "profile" section for BENCH_lcp.json. *)
  let finish_profile () =
    if not profile_on then None
    else begin
      Obs.Profile.stop ();
      let section = Obs.Profile.export_string () in
      (match profile_dir with
      | None -> ()
      | Some dir ->
          let path = Obs.Profile.spool ~dir in
          Format.printf "profile (%d sample(s), %d stack(s)) spooled to %s@."
            (Obs.Profile.samples ())
            (Obs.Profile.stack_samples ())
            path);
      Some section
    end
  in
  let finish () =
    match trace_file with
    | Some path ->
        Obs.Trace.export path;
        Format.printf "trace (%d events%s) written to %s@." (Obs.Trace.recorded ())
          (match Obs.Trace.dropped () with
          | 0 -> ""
          | d -> Printf.sprintf ", %d dropped" d)
          path
    | None -> ()
  in
  if List.mem "--timing" args then timing ()
  else if List.mem "--smoke" args then begin
    Format.printf
      "Locally Checkable Proofs: smoke sweep (engine=%s, jobs=%d)@."
      (if !use_reference then "reference" else "csr")
      !jobs;
    let t0 = Obs.Clock.now_ns () in
    let results = run_table "smoke sweep" smoke_table in
    let service = if with_service then Some (service_bench ()) else None in
    let partition =
      if with_partition then Some (partition_bench ()) else None
    in
    let randomized =
      if with_randomized then Some (randomized_bench ()) else None
    in
    let total = Obs.Clock.ns_to_s (Obs.Clock.elapsed_ns t0) in
    Format.printf "@.total wall time: %.3fs@." total;
    let profile = finish_profile () in
    write_json "BENCH_lcp.json" ~smoke:true ~total_wall_s:total ?service
      ?partition ?randomized ?profile results;
    Option.iter (fun p -> write_prom p ~total_wall_s:total results) prom_file;
    finish ()
  end
  else begin
    Format.printf
      "Locally Checkable Proofs (Göös & Suomela, PODC 2011): experiment harness \
       (engine=%s, jobs=%d)@."
      (if !use_reference then "reference" else "csr")
      !jobs;
    let t0 = Obs.Clock.now_ns () in
    let results_a = run_table "Table 1(a): graph properties" table_1a in
    let results_b =
      run_table "Table 1(b): graph problems (solution verification)" table_1b
    in
    section "bench.lower_bounds" lower_bounds;
    section "bench.ablations" ablations;
    section "bench.hierarchy" hierarchy;
    let service =
      if with_service then Some (section "bench.service" service_bench)
      else None
    in
    let partition =
      if with_partition then Some (section "bench.partition" partition_bench)
      else None
    in
    let randomized =
      if with_randomized then Some (section "bench.randomized" randomized_bench)
      else None
    in
    let total = Obs.Clock.ns_to_s (Obs.Clock.elapsed_ns t0) in
    let profile = finish_profile () in
    write_json "BENCH_lcp.json" ~smoke:false ~total_wall_s:total ?service
      ?partition ?randomized ?profile (results_a @ results_b);
    Option.iter
      (fun p -> write_prom p ~total_wall_s:total (results_a @ results_b))
      prom_file;
    finish ();
    Format.printf
      "@.run with --timing for Bechamel verifier micro-benchmarks, --smoke for \
       the CI sweep.@."
  end
