(* A small text format for LCP instances, one directive per line:

     # comment
     edge U V          an undirected edge (also just "U V")
     node U            an isolated node
     arc U V           a directed edge (stored in the of_digraph layout)
     s U / t U         the distinguished terminals of Section 4
     leader U          mark U with the 1-bit leader label
     label U BITS      raw node label, e.g. "label 3 101"
     flag U V          set edge label bit 1 (solutions: matchings, trees…)
     weight U V W      weighted edge (flag + gamma-coded weight layout)
     k N               global input (gamma-coded), e.g. the k of χ ≤ k

   and for proof files:

     V BITS            proof string of node V ("-" for the empty string)
*)

let fail fmt = Printf.ksprintf (fun s -> raise (Failure s)) fmt

type directive =
  | Edge of int * int
  | Node of int
  | Arc of int * int
  | S of int
  | T of int
  | Leader of int
  | Label of int * string
  | Flag of int * int
  | Weight of int * int * int
  | K of int

let parse_line lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun w -> w <> "")
  in
  let int w =
    match int_of_string_opt w with
    | Some v -> v
    | None -> fail "line %d: expected an integer, got %S" lineno w
  in
  match words with
  | [] -> None
  | [ "edge"; u; v ] -> Some (Edge (int u, int v))
  | [ u; v ] when int_of_string_opt u <> None -> Some (Edge (int u, int v))
  | [ "node"; u ] -> Some (Node (int u))
  | [ "arc"; u; v ] -> Some (Arc (int u, int v))
  | [ "s"; u ] -> Some (S (int u))
  | [ "t"; u ] -> Some (T (int u))
  | [ "leader"; u ] -> Some (Leader (int u))
  | [ "label"; u; bits ] -> Some (Label (int u, bits))
  | [ "flag"; u; v ] -> Some (Flag (int u, int v))
  | [ "weight"; u; v; w ] -> Some (Weight (int u, int v, int w))
  | [ "k"; n ] -> Some (K (int n))
  | w :: _ -> fail "line %d: unknown directive %S" lineno w

let read_lines path =
  let ic = open_in path in
  let rec go acc lineno =
    match input_line ic with
    | line -> go ((lineno, line) :: acc) (lineno + 1)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go [] 1

let load_instance path =
  let directives = List.filter_map (fun (no, l) -> parse_line no l) (read_lines path) in
  let graph =
    List.fold_left
      (fun g -> function
        | Edge (u, v) | Flag (u, v) | Weight (u, v, _) | Arc (u, v) ->
            Graph.add_edge g u v
        | Node u | S u | T u | Leader u | Label (u, _) -> Graph.add_node g u
        | K _ -> g)
      Graph.empty directives
  in
  let has_arcs = List.exists (function Arc _ -> true | _ -> false) directives in
  let base =
    if has_arcs then begin
      let d =
        List.fold_left
          (fun d -> function
            | Arc (u, v) -> Digraph.add_arc d u v
            | Edge (u, v) -> Digraph.add_arc (Digraph.add_arc d u v) v u
            | _ -> d)
          (List.fold_left Digraph.add_node Digraph.empty (Graph.nodes graph))
          directives
      in
      Instance.of_digraph d
    end
    else Instance.of_graph graph
  in
  let weighted =
    List.exists (function Weight _ -> true | _ -> false) directives
  in
  let inst =
    if weighted then
      (* weighted layout everywhere: flag bit + gamma weight *)
      Graph.fold_edges
        (fun u v acc ->
          let flagged =
            List.exists
              (function
                | Flag (a, b) -> (min a b, max a b) = (min u v, max u v)
                | _ -> false)
              directives
          in
          let weight =
            List.fold_left
              (fun acc -> function
                | Weight (a, b, w) when (min a b, max a b) = (min u v, max u v) -> w
                | _ -> acc)
              0 directives
          in
          let buf = Bits.Writer.create () in
          Bits.Writer.bool buf flagged;
          Bits.Writer.int_gamma buf weight;
          Instance.with_edge_label acc u v (Bits.Writer.contents buf))
        graph base
    else
      List.fold_left
        (fun acc -> function
          | Flag (u, v) -> Instance.with_edge_label acc u v (Bits.one_bit true)
          | _ -> acc)
        base directives
  in
  (* unflagged edges get an explicit 0 bit when any flag is present *)
  let any_flag = List.exists (function Flag _ -> true | _ -> false) directives in
  let inst =
    if any_flag && not weighted then
      Graph.fold_edges
        (fun u v acc ->
          if Bits.length (Instance.edge_label acc u v) = 0 then
            Instance.with_edge_label acc u v (Bits.one_bit false)
          else acc)
        graph inst
    else inst
  in
  let inst =
    List.fold_left
      (fun acc -> function
        | S u -> Instance.with_node_label acc u St.s_label
        | T u -> Instance.with_node_label acc u St.t_label
        | Leader u -> Instance.with_node_label acc u (Bits.one_bit true)
        | Label (u, bits) -> Instance.with_node_label acc u (Bits.of_string bits)
        | K n -> Instance.with_globals acc (Bits.encode_int n)
        | Edge _ | Node _ | Flag _ | Weight _ | Arc _ -> acc)
      inst directives
  in
  inst

let load_proof path =
  let entries =
    List.filter_map
      (fun (lineno, line) ->
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        match
          String.split_on_char ' ' (String.trim line)
          |> List.filter (fun w -> w <> "")
        with
        | [] -> None
        | [ v; "-" ] -> Some (int_of_string v, Bits.empty)
        | [ v; bits ] -> Some (int_of_string v, Bits.of_string bits)
        | _ -> fail "proof line %d: expected 'NODE BITS'" lineno)
      (read_lines path)
  in
  Proof.of_list entries

let save_proof path proof =
  let oc = open_out path in
  List.iter
    (fun (v, b) ->
      Printf.fprintf oc "%d %s\n" v
        (if Bits.length b = 0 then "-" else Bits.to_string b))
    (Proof.bindings proof);
  close_out oc
