(* The lcp command-line tool.

     lcp schemes                          list available schemes
     lcp prove  -s NAME -g FILE [-o OUT]  run the prover, print/save the proof
     lcp verify -s NAME -g FILE -p PROOF  run the verifier at every node
                [--cluster HOST:PORT --partitions K]  shard + scatter-gather
     lcp partition -g FILE -o PREFIX      cut a graph into shard files
     lcp forge  -s NAME -g FILE [-b BITS] adversarial proof forging
     lcp stats  -s NAME -g FILE           prove+verify+soundness with metrics
     lcp attack ATTACK [...]              run a lower-bound attack
     lcp info   -g FILE                   instance statistics
     lcp serve   [--port ...]             run the TCP verification daemon
     lcp route   [--backend ...]          run the cluster routing frontend
     lcp loadgen [--port|--connect ...]   drive daemon(s) with a request mix
     lcp top     [--port ...]             live telemetry dashboard for a daemon
     lcp trace fetch HOST:PORT            pull a live process's trace ring
     lcp trace merge FILES -o OUT         join per-process lanes, align clocks

   prove/verify/forge/stats accept [--metrics] (print engine counters on
   exit) and [--trace FILE] (write a Chrome trace-event JSON timeline).
   Graph files are described in [Graph_file]; the by-name scheme
   registry lives in [Registry], shared with the daemon. *)

open Cmdliner

(* --- arguments -------------------------------------------------------- *)

let scheme_arg =
  let scheme_conv =
    Arg.enum
      (List.map (fun e -> (e.Registry.name, e.Registry.scheme)) Registry.all)
  in
  Arg.(
    required
    & opt (some scheme_conv) None
    & info [ "s"; "scheme" ] ~docv:"SCHEME" ~doc:"Scheme name (see 'lcp schemes').")

let graph_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "g"; "graph" ] ~docv:"FILE" ~doc:"Instance file (see FORMATS).")

let proof_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "p"; "proof" ] ~docv:"FILE" ~doc:"Proof file: one 'NODE BITS' per line.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the proof here.")

let bits_arg default =
  Arg.(
    value
    & opt int default
    & info [ "b"; "bits" ] ~docv:"BITS" ~doc:"Adversary's per-node bit budget.")

let jobs_arg =
  (* Not [Arg.int]: a plain int converter would accept "--jobs -3" and
     let it reach [Pool.create]. Same contract as the bench driver:
     0 means "all recommended cores", anything negative is an error. *)
  let jobs_conv =
    let parse s =
      match int_of_string_opt s with
      | Some j when j >= 0 -> Ok j
      | Some _ -> Error (`Msg "JOBS must be >= 0 (0 = all recommended cores)")
      | None -> Error (`Msg (Printf.sprintf "invalid JOBS value %S" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(
    value
    & opt jobs_conv 1
    & info [ "j"; "jobs" ] ~docv:"JOBS"
        ~doc:
          "Worker domains for the verification engine: 1 runs \
           sequentially (default), 0 uses all recommended cores.")

let resolve_jobs j = if j = 0 then Pool.default_jobs () else j

let hostport_conv =
  let parse s =
    let fail () =
      Error (`Msg (Printf.sprintf "invalid target %S (want HOST:PORT)" s))
    in
    match String.rindex_opt s ':' with
    | None -> fail ()
    | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 && host <> "" -> Ok (host, p)
        | _ -> fail ())
  in
  let print ppf (h, p) = Format.fprintf ppf "%s:%d" h p in
  Arg.conv (parse, print)

let cluster_arg =
  Arg.(
    value
    & opt (some hostport_conv) None
    & info [ "cluster" ] ~docv:"HOST:PORT"
        ~doc:
          "Verify over the network instead of in-process: partition the \
           graph into --partitions radius-r shards and scatter them to \
           $(docv) — an 'lcp route' frontend (shards spread over its \
           backends and run in parallel) or a single 'lcp serve' daemon.")

let partitions_arg =
  Arg.(
    value
    & opt int 2
    & info [ "partitions" ] ~docv:"K"
        ~doc:"Shards to cut the graph into for --cluster (default 2).")

(* scheme_arg converts the name to the scheme itself; the wire wants
   the name back. Entries are unique and the conv only ever hands out
   registry values, so physical equality recovers it. *)
let scheme_name scheme =
  match
    List.find_opt (fun e -> e.Registry.scheme == scheme) Registry.all
  with
  | Some e -> e.Registry.name
  | None -> invalid_arg "scheme not in registry"

(* --- observability ---------------------------------------------------- *)

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Collect engine metrics and print them when the command exits.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a structured trace and write it to $(docv) as Chrome \
           trace-event JSON (open in chrome://tracing or Perfetto).")

let trace_sample_arg =
  Arg.(
    value
    & opt int 0
    & info [ "trace-sample" ] ~docv:"N"
        ~doc:
          "Distributed tracing: trace 1 in $(docv) requests. Sampling is \
           head-based and deterministic in the correlation id, so client, \
           router and backend all keep the same requests; a request \
           arriving with a trace context on the wire is always traced. \
           Implies tracing is on. 0 (the default) disables sampling.")

let trace_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-dir" ] ~docv:"DIR"
        ~doc:
          "On exit, spool this process's trace ring to \
           $(docv)/trace-<process>.json — one lane per process; join the \
           lanes of a cluster run with 'lcp trace merge'. Implies tracing \
           is on.")

let profile_hz_arg =
  Arg.(
    value
    & opt int 0
    & info [ "profile-hz" ] ~docv:"HZ"
        ~doc:
          "Continuous profiling: sample every domain's active-span stack \
           $(docv) times per second and track GC/runtime telemetry. Fetch \
           the live profile with 'lcp profile fetch'. 0 (the default) \
           disables the profiler; 97 is a good prime choice.")

let profile_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-dir" ] ~docv:"DIR"
        ~doc:
          "On exit, spool the accumulated profile to \
           $(docv)/profile-<process>.json (collapsed stacks, speedscope \
           JSON, GC and per-scheme accounts). Implies profiling is on at \
           97 Hz unless --profile-hz overrides the rate.")

(* Distributed-tracing setup shared by serve / route / loadgen: name
   this process's lane, turn the ring on when sampling or spooling was
   requested, and spool on the way out. *)
let with_trace_spool ~process ~trace_sample ~trace_dir f =
  Obs.Trace.process := process;
  if trace_sample > 0 || trace_dir <> None then
    Obs.enable ~metrics:false ~trace:true ();
  let code = f () in
  (match trace_dir with
  | None -> ()
  | Some dir ->
      let path = Obs.Trace.spool ~dir in
      Format.printf "trace lane %S (%d events%s) spooled to %s@."
        !Obs.Trace.process (Obs.Trace.recorded ())
        (match Obs.Trace.dropped () with
        | 0 -> ""
        | d -> Printf.sprintf ", %d dropped" d)
        path);
  code

(* Profiler lifecycle shared by serve / route / loadgen: start the
   sampler when either flag asks for it, stop and spool on the way
   out. Runs inside [with_trace_spool] so the lane name is set. *)
let with_profile ~profile_hz ~profile_dir f =
  let on = profile_hz > 0 || profile_dir <> None in
  if on then
    Obs.Profile.start ~hz:(if profile_hz > 0 then profile_hz else 97) ();
  let code = f () in
  if on then begin
    Obs.Profile.stop ();
    match profile_dir with
    | None -> ()
    | Some dir ->
        let path = Obs.Profile.spool ~dir in
        Format.printf "profile (%d sample(s), %d stack(s)) spooled to %s@."
          (Obs.Profile.samples ())
          (Obs.Profile.stack_samples ())
          path
  end;
  code

(* Enable the requested observability, run the command body, then export
   the trace / print the metrics table. Exit codes pass through; the
   extra output goes last so the command's own output stays first. *)
let with_obs ~metrics ~trace f =
  if metrics || trace <> None then
    Obs.enable ~metrics ~trace:(trace <> None) ();
  let code = f () in
  (match trace with
  | Some path ->
      Obs.Trace.export path;
      Format.printf "trace (%d events%s) written to %s@."
        (Obs.Trace.recorded ())
        (match Obs.Trace.dropped () with
        | 0 -> ""
        | d -> Printf.sprintf ", %d dropped" d)
        path
  | None -> ());
  if metrics then
    Format.printf "@.metrics:@.%a" Obs.Metrics.pp (Obs.Metrics.snapshot ());
  code

(* --- commands --------------------------------------------------------- *)

let schemes_cmd =
  let run () =
    List.iter
      (fun e ->
        Format.printf "%-20s r=%d  %s@." e.Registry.name
          e.Registry.scheme.Scheme.radius e.Registry.doc)
      Registry.all;
    0
  in
  Cmd.v (Cmd.info "schemes" ~doc:"List the available proof labelling schemes")
    Term.(const run $ const ())

let load_instance path =
  try Ok (Graph_file.load_instance path) with
  | Failure msg -> Error (`Msg msg)
  | Sys_error msg -> Error (`Msg msg)

let prove_cmd =
  let run scheme graph output jobs metrics trace =
    match load_instance graph with
    | Error (`Msg m) -> prerr_endline m; 1
    | Ok inst ->
        with_obs ~metrics ~trace @@ fun () ->
        (
        let prove_and_check inst =
          match scheme.Scheme.prover inst with
          | None -> `No_proof
          | Some proof -> (
              let verdicts, _ =
                Simulator.run_verifier ~jobs:(resolve_jobs jobs) inst proof
                  ~radius:scheme.Scheme.radius scheme.Scheme.verifier
              in
              match
                List.filter_map
                  (fun (v, ok) -> if ok then None else Some v)
                  verdicts
              with
              | [] -> `Accepted proof
              | vs -> `Rejected (proof, vs))
        in
        match prove_and_check inst with
        | `No_proof ->
            Format.printf
              "no-instance: the prover found no locally checkable proof@.";
            2
        | `Rejected (_, vs) ->
            Format.printf "internal error: own proof rejected at [%s]@."
              (String.concat ";" (List.map string_of_int vs));
            3
        | `Accepted proof ->
            Format.printf "yes-instance: proof of %d bits per node@."
              (Proof.size proof);
            (match output with
            | Some path ->
                Graph_file.save_proof path proof;
                Format.printf "proof written to %s@." path
            | None ->
                List.iter
                  (fun (v, b) ->
                    Format.printf "  %d %s@." v
                      (if Bits.length b = 0 then "-" else Bits.to_string b))
                  (Proof.bindings proof));
            0)
  in
  Cmd.v
    (Cmd.info "prove" ~doc:"Run a scheme's prover on an instance")
    Term.(
      const run $ scheme_arg $ graph_arg $ out_arg $ jobs_arg $ metrics_arg
      $ trace_arg)

let verify_cmd =
  let sampled_arg =
    Arg.(
      value & flag
      & info [ "sampled" ]
          ~doc:
            "Run the scheme's error-budgeted sampled verifier instead of \
             checking every node; a sampled rejection escalates to the \
             full verifier, so a printed REJECT is always exact.")
  in
  let queries_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "queries" ] ~docv:"Q"
          ~doc:
            "Per-node query bound for --sampled (default: the scheme's \
             configured bound).")
  in
  let seed_arg =
    Arg.(
      value
      & opt int 1
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "PRG seed for --sampled; the probe set and every charged read \
             are a pure function of it.")
  in
  let run_sampled scheme inst proof jobs queries seed =
    match Sampled.find (scheme_name scheme) with
    | None ->
        Format.eprintf "scheme %s has no sampled variant@."
          (scheme_name scheme);
        1
    | Some rs -> (
        let queries =
          Option.value queries ~default:rs.Randomized_scheme.queries
        in
        if queries < 1 then begin
          prerr_endline "--queries must be positive";
          1
        end
        else
          let compiled = Simulator.compile inst in
          match
            Randomized_scheme.run ~jobs rs compiled proof ~seed ~queries
          with
          | exception Invalid_argument m -> prerr_endline m; 1
          | o when o.Randomized_scheme.accepted ->
              Format.printf
                "ACCEPT (sampled): %d of %d node(s) probed, %d bit(s) \
                 read, budget %s, seed %d@."
                o.Randomized_scheme.nodes_checked (Instance.n inst)
                o.Randomized_scheme.bits_read rs.Randomized_scheme.budget
                seed;
              0
          | o -> (
              (* A sampled rejection is only a suspicion — escalate to
                 the full verifier so the verdict is exact. *)
              Format.printf
                "sampled REJECT at [%s] (%d probed, %d bit(s) read) — \
                 escalating to a full verification@."
                (String.concat "; "
                   (List.map string_of_int o.Randomized_scheme.rejecting))
                o.Randomized_scheme.nodes_checked
                o.Randomized_scheme.bits_read;
              let verdicts, _ =
                Simulator.run_verifier ~jobs inst proof
                  ~radius:scheme.Scheme.radius scheme.Scheme.verifier
              in
              match
                List.filter_map
                  (fun (v, ok) -> if ok then None else Some v)
                  verdicts
              with
              | [] ->
                  Format.printf
                    "ACCEPT: all %d nodes accept (sampled suspicion not \
                     confirmed)@."
                    (Instance.n inst);
                  0
              | vs ->
                  Format.printf "REJECT at nodes [%s]@."
                    (String.concat "; " (List.map string_of_int vs));
                  2))
  in
  let run scheme graph proof jobs metrics trace cluster partitions sampled
      queries seed =
    match load_instance graph with
    | Error (`Msg m) -> prerr_endline m; 1
    | Ok inst ->
        with_obs ~metrics ~trace @@ fun () ->
        (
        let proof =
          try Ok (Graph_file.load_proof proof)
          with Failure m | Sys_error m -> Error m
        in
        match proof with
        | Error m -> prerr_endline m; 1
        | Ok proof when sampled -> (
            match cluster with
            | Some _ ->
                prerr_endline
                  "--sampled runs in-process; drop --cluster (the daemon \
                   path is 'lcp loadgen --mix P:V:S')";
                1
            | None ->
                run_sampled scheme inst proof (resolve_jobs jobs) queries
                  seed)
        | Ok proof -> (
            match cluster with
            | Some (host, port) -> (
                let csr = Csr.of_graph (Instance.graph inst) in
                match
                  Fanout.verify ~host ~port ~scheme:(scheme_name scheme) ~csr
                    ~proof ~radius:scheme.Scheme.radius ~k:partitions ()
                with
                | Error m ->
                    prerr_endline m;
                    1
                | Ok v when v.Fanout.all_accept ->
                    Format.printf "ACCEPT: all %d nodes accept (%d shards)@."
                      v.Fanout.owned v.Fanout.shards;
                    0
                | Ok v ->
                    Format.printf "REJECT at nodes [%s]%s@."
                      (String.concat "; "
                         (List.map string_of_int v.Fanout.rejecting))
                      (if v.Fanout.rejected > List.length v.Fanout.rejecting
                       then
                         Printf.sprintf " (%d rejecting in total)"
                           v.Fanout.rejected
                       else "");
                    2)
            | None -> (
                let verdicts, _ =
                  Simulator.run_verifier ~jobs:(resolve_jobs jobs) inst proof
                    ~radius:scheme.Scheme.radius scheme.Scheme.verifier
                in
                match
                  List.filter_map
                    (fun (v, ok) -> if ok then None else Some v)
                    verdicts
                with
                | [] ->
                    Format.printf "ACCEPT: all %d nodes accept@."
                      (Instance.n inst);
                    0
                | vs ->
                    Format.printf "REJECT at nodes [%s]@."
                      (String.concat "; " (List.map string_of_int vs));
                    2)))
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Run a scheme's verifier at every node")
    Term.(
      const run $ scheme_arg $ graph_arg $ proof_arg $ jobs_arg $ metrics_arg
      $ trace_arg $ cluster_arg $ partitions_arg $ sampled_arg $ queries_arg
      $ seed_arg)

let partition_cmd =
  let radius_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "r"; "radius" ] ~docv:"R"
          ~doc:
            "Ghost-halo radius; defaults to the scheme's radius when \
             --scheme is given. One of the two is required.")
  in
  let scheme_opt_arg =
    let scheme_conv =
      Arg.enum
        (List.map (fun e -> (e.Registry.name, e.Registry.scheme)) Registry.all)
    in
    Arg.(
      value
      & opt (some scheme_conv) None
      & info [ "s"; "scheme" ] ~docv:"SCHEME"
          ~doc:"Scheme whose radius to cut for (see 'lcp schemes').")
  in
  let prefix_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"PREFIX"
          ~doc:"Write one $(docv).I-of-K.shard file per shard.")
  in
  let run graph partitions radius scheme prefix =
    match
      match (radius, scheme) with
      | Some r, _ -> Ok r
      | None, Some s -> Ok s.Scheme.radius
      | None, None -> Error "one of --radius or --scheme is required"
    with
    | Error m ->
        prerr_endline m;
        1
    | Ok radius -> (
        match load_instance graph with
        | Error (`Msg m) ->
            prerr_endline m;
            1
        | Ok inst -> (
            let csr = Csr.of_graph (Instance.graph inst) in
            match Partition.make csr ~k:partitions ~radius with
            | exception Invalid_argument m ->
                prerr_endline m;
                1
            | shards -> (
                match Partition.check csr shards with
                | Error m ->
                    Format.eprintf "partition check failed: %s@." m;
                    1
                | Ok () ->
                    Array.iter
                      (fun (s : Partition.shard) ->
                        let path =
                          Printf.sprintf "%s.%d-of-%d.shard" prefix
                            s.Partition.index s.Partition.count
                        in
                        let oc = open_out path in
                        output_string oc (Partition.to_string s);
                        close_out oc;
                        Format.printf
                          "%s: %d owned + %d ghost node(s), radius %d@." path
                          (Partition.owned_count s)
                          (Partition.shard_n s - Partition.owned_count s)
                          radius)
                      shards;
                    Format.printf
                      "%d shard(s), ghost closure verified exact@."
                      (Array.length shards);
                    0)))
  in
  Cmd.v
    (Cmd.info "partition"
       ~doc:
         "Cut a graph into balanced shards with radius-r ghost halos for \
          partition-parallel verification")
    Term.(
      const run $ graph_arg $ partitions_arg $ radius_arg $ scheme_opt_arg
      $ prefix_arg)

let forge_cmd =
  let run scheme graph bits metrics trace =
    match load_instance graph with
    | Error (`Msg m) -> prerr_endline m; 1
    | Ok inst ->
        with_obs ~metrics ~trace @@ fun () ->
        (
        match Adversary.forge scheme inst ~max_bits:bits with
        | Adversary.Fooled proof ->
            Format.printf
              "FOOLED: found a proof of <= %d bits accepted by every node!@." bits;
            List.iter
              (fun (v, b) ->
                Format.printf "  %d %s@." v
                  (if Bits.length b = 0 then "-" else Bits.to_string b))
              (Proof.bindings proof);
            2
        | Adversary.Resisted { best_rejections; attempts } ->
            Format.printf
              "resisted: %d attempts; best forgery still rejected at %d node(s)@."
              attempts best_rejections;
            0)
  in
  Cmd.v
    (Cmd.info "forge"
       ~doc:"Try to forge an accepted proof (soundness stress test)")
    Term.(const run $ scheme_arg $ graph_arg $ bits_arg 4 $ metrics_arg $ trace_arg)

let stats_cmd =
  let samples_arg =
    Arg.(
      value
      & opt int 200
      & info [ "samples" ] ~docv:"N"
          ~doc:"Random forgeries for the soundness probe.")
  in
  let run scheme graph jobs samples bits trace =
    match load_instance graph with
    | Error (`Msg m) -> prerr_endline m; 1
    | Ok inst -> (
        (* The whole point of this command is the metrics table, so
           metrics are always on here; --trace is still opt-in. *)
        with_obs ~metrics:true ~trace @@ fun () ->
        let jobs = resolve_jobs jobs in
        let g = Instance.graph inst in
        Format.printf "scheme:    %s (radius %d)@." scheme.Scheme.name
          scheme.Scheme.radius;
        Format.printf "instance:  %d nodes, %d edges, max degree %d, jobs %d@."
          (Instance.n inst) (Graph.m g) (Graph.max_degree g) jobs;
        let probe () =
          (* Stops at the first accepted proof; the sample counter says
             how far it got. *)
          let t = Obs.Clock.now_ns () in
          let sound =
            Checker.soundness_random ~jobs scheme inst ~samples ~max_bits:bits
          in
          let ms = Obs.Clock.ns_to_us (Obs.Clock.elapsed_ns t) /. 1000. in
          let tried =
            Obs.Metrics.count (Obs.Metrics.snapshot ()) "checker.samples"
          in
          (sound, tried, ms)
        in
        let budget_line () =
          (* Error budget of the scheme's sampled variant, measured
             against the same forgery distribution the probe uses. *)
          match Sampled.find (scheme_name scheme) with
          | None -> ()
          | Some rs ->
              let t = Obs.Clock.now_ns () in
              let e =
                Randomized_scheme.soundness ~jobs rs inst ~samples
                  ~max_bits:bits
              in
              let ms = Obs.Clock.ns_to_us (Obs.Clock.elapsed_ns t) /. 1000. in
              Format.printf
                "budget:    %.3f ms, %s — sampler fooled on %d of %d \
                 invalid forgeries (err %.4f, wilson [%.4f, %.4f], ε %g: \
                 %s)@."
                ms rs.Randomized_scheme.budget e.Checker.fooled
                e.Checker.invalid e.Checker.rate e.Checker.wilson_low
                e.Checker.wilson_high rs.Randomized_scheme.epsilon
                (if e.Checker.wilson_low <= rs.Randomized_scheme.epsilon then
                   "within budget"
                 else "EXCEEDED")
        in
        let t0 = Obs.Clock.now_ns () in
        match scheme.Scheme.prover inst with
        | None ->
            (* The prover refuses: a no-instance — the one case where an
               accepted random proof is a genuine soundness violation. *)
            Format.printf "prove:     no proof — no-instance@.";
            let sound, tried, ms = probe () in
            if sound then begin
              Format.printf
                "soundness: %.3f ms, %d random proofs (<= %d bits): all \
                 rejected@."
                ms samples bits;
              budget_line ();
              0
            end
            else begin
              Format.printf
                "soundness: %.3f ms, FOOLED — random proof %d of %d (<= %d \
                 bits) accepted on a no-instance@."
                ms tried samples bits;
              3
            end
        | Some proof ->
            Format.printf "prove:     %.3f ms, proof of %d bits@."
              (Obs.Clock.ns_to_us (Obs.Clock.elapsed_ns t0) /. 1000.)
              (Proof.size proof);
            let t1 = Obs.Clock.now_ns () in
            let verdicts, _ =
              Simulator.run_verifier ~jobs inst proof
                ~radius:scheme.Scheme.radius scheme.Scheme.verifier
            in
            let rejecting =
              List.filter_map (fun (v, ok) -> if ok then None else Some v) verdicts
            in
            Format.printf "verify:    %.3f ms, %s@."
              (Obs.Clock.ns_to_us (Obs.Clock.elapsed_ns t1) /. 1000.)
              (if rejecting = [] then "all nodes accept"
               else
                 Printf.sprintf "REJECTED at [%s]"
                   (String.concat ";" (List.map string_of_int rejecting)));
            (* On a yes-instance valid proofs exist, so an accepted random
               proof is legitimate — report it neutrally. *)
            let sound, tried, ms = probe () in
            if sound then
              Format.printf
                "probe:     %.3f ms, %d random proofs (<= %d bits): all \
                 rejected@."
                ms samples bits
            else
              Format.printf
                "probe:     %.3f ms, random proof %d of %d accepted \
                 (yes-instance: valid proofs exist)@."
                ms tried samples;
            budget_line ();
            if rejecting = [] then 0 else 3)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Prove, verify and soundness-probe one instance, then print the \
          engine metrics")
    Term.(
      const run $ scheme_arg $ graph_arg $ jobs_arg $ samples_arg $ bits_arg 4
      $ trace_arg)

let info_cmd =
  let run graph =
    match load_instance graph with
    | Error (`Msg m) -> prerr_endline m; 1
    | Ok inst ->
        let g = Instance.graph inst in
        Format.printf "nodes: %d, edges: %d, max degree: %d@." (Graph.n g)
          (Graph.m g) (Graph.max_degree g);
        Format.printf "connected: %b, bipartite: %b, eulerian: %b@."
          (Traversal.is_connected g) (Bipartite.is_bipartite g)
          (Euler.is_eulerian g);
        (match St.find inst with
        | Some (s, t) -> Format.printf "terminals: s=%d t=%d@." s t
        | None -> ());
        (match Instance.marked_exactly_one inst with
        | Some l -> Format.printf "leader: %d@." l
        | None -> ());
        let flagged = Instance.flagged_edges inst in
        if flagged <> [] then
          Format.printf "flagged edges: %s@."
            (String.concat " "
               (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) flagged));
        0
  in
  Cmd.v (Cmd.info "info" ~doc:"Show instance statistics") Term.(const run $ graph_arg)

let dot_cmd =
  let proof_opt =
    Arg.(
      value
      & opt (some file) None
      & info [ "p"; "proof" ] ~docv:"FILE"
          ~doc:"Optional proof file; proof bits become node labels.")
  in
  let run graph proof =
    match load_instance graph with
    | Error (`Msg m) -> prerr_endline m; 1
    | Ok inst ->
        let g = Instance.graph inst in
        let proof =
          match proof with
          | None -> Proof.empty
          | Some path -> Graph_file.load_proof path
        in
        let node_attrs v =
          let bits = Proof.get proof v in
          let label = Instance.node_label inst v in
          let text =
            Printf.sprintf "%d%s%s" v
              (if Bits.length label > 0 then "\nL:" ^ Bits.to_string label else "")
              (if Bits.length bits > 0 then "\nP:" ^ Bits.to_string bits else "")
          in
          ("label", text)
          :: (if Bits.length label > 0 && Bits.get label 0 then
                [ ("style", "filled"); ("fillcolor", "lightblue") ]
              else [])
        in
        let edge_attrs u v =
          let l = Instance.edge_label inst u v in
          if Bits.length l >= 1 && Bits.get l 0 then
            [ ("penwidth", "3"); ("color", "blue") ]
          else []
        in
        print_string (Dot.of_graph ~name:(Filename.basename graph) ~node_attrs ~edge_attrs g);
        0
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export an instance (and optional proof) as Graphviz DOT")
    Term.(const run $ graph_arg $ proof_opt)

let attack_cmd =
  let attack_conv =
    Arg.enum
      [ ("gluing-odd", `Gluing_odd); ("gluing-leader", `Gluing_leader);
        ("gluing-matching", `Gluing_matching); ("symmetry", `Symmetry);
        ("trees", `Trees); ("non3col", `Non3col) ]
  in
  let attack_arg =
    Arg.(
      required
      & pos 0 (some attack_conv) None
      & info [] ~docv:"ATTACK"
          ~doc:
            "One of: gluing-odd, gluing-leader, gluing-matching, symmetry, \
             trees, non3col.")
  in
  let honest_arg =
    Arg.(
      value & flag
      & info [ "honest" ]
          ~doc:"Attack the honest scheme instead of the undersized one.")
  in
  let n_arg =
    Arg.(value & opt int 9 & info [ "n" ] ~docv:"N" ~doc:"Cycle length (gluing).")
  in
  let run attack honest n =
    let gluing_report = function
      | Gluing.Fooled { instance; quad = (a1, b1), (a2, b2); genuinely_no; _ } ->
          Format.printf
            "FOOLED: glued C(%d,%d) and C(%d,%d) into an accepted %d-node \
             no-instance (genuinely no: %b)@."
            a1 b1 a2 b2 (Instance.n instance) genuinely_no;
          2
      | Gluing.Resisted { pairs; distinct_signatures } ->
          Format.printf "resisted: %d/%d signatures distinct@." distinct_signatures
            pairs;
          0
      | Gluing.Prover_failed (a, b) ->
          Format.printf "prover failed on C(%d,%d)@." a b;
          1
    in
    let sym_report = function
      | Symmetry_lb.Fooled { glued; genuinely_no; _ } ->
          Format.printf "FOOLED: accepted spliced %d-node graph (genuinely no: %b)@."
            (Graph.n glued) genuinely_no;
          2
      | Symmetry_lb.Resisted { family_size; distinct_windows } ->
          Format.printf "resisted: %d/%d windows distinct@." distinct_windows
            family_size;
          0
      | Symmetry_lb.Prover_failed _ ->
          Format.printf "prover failed@.";
          1
    in
    match attack with
    | `Gluing_odd ->
        let n = if n mod 2 = 0 then n + 1 else n in
        let scheme = if honest then Counting.odd_n else Truncated.odd_n_cycle ~bits:2 in
        gluing_report (Gluing.attack ~rows:4 scheme (Gluing.odd_cycles ~n))
    | `Gluing_leader ->
        let scheme =
          if honest then Leader_election.strong else Truncated.leader_cycle ~bits:2
        in
        gluing_report (Gluing.attack ~rows:4 scheme (Gluing.leader_cycles ~n))
    | `Gluing_matching ->
        let n = if n mod 2 = 0 then n + 1 else n in
        let scheme =
          if honest then Matching_schemes.maximum_on_cycle
          else Truncated.max_matching_cycle ~bits:2
        in
        gluing_report (Gluing.attack ~rows:4 scheme (Gluing.matching_cycles ~n))
    | `Symmetry ->
        let scheme =
          if honest then Universal.symmetric else Truncated.symmetric_claims
        in
        sym_report
          (Symmetry_lb.attack_symmetric scheme ~family:(Enumerate.asymmetric_connected 6))
    | `Trees ->
        let scheme =
          if honest then Tree_universal.fixpoint_free_symmetry
          else Truncated.fixpoint_free_claims
        in
        sym_report (Symmetry_lb.attack_trees scheme ~family:(Tree_enum.rooted_trees 6))
    | `Non3col -> (
        let scheme =
          if honest then Universal.non_3_colourable
          else
            Truncated.ball_claims ~name:"non3col-ball-claims" (fun g ->
                not (Coloring.is_k_colourable g 3))
        in
        let sets =
          Some [ [ (0, 1) ]; [ (1, 0) ]; [ (0, 0); (1, 1) ]; [ (0, 1); (1, 0) ] ]
        in
        match Non3col_lb.attack ~k:1 ~r:1 ~sets scheme with
        | Non3col_lb.Fooled { instance; genuinely_no; _ } ->
            Format.printf
              "FOOLED: accepted spliced %d-node gadget (3-colourable: %b)@."
              (Instance.n instance) genuinely_no;
            2
        | Non3col_lb.Resisted { family_size; distinct_windows } ->
            Format.printf "resisted: %d/%d windows distinct@." distinct_windows
              family_size;
            0
        | Non3col_lb.Prover_failed _ ->
            Format.printf "prover failed@.";
            1)
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Run one of the paper's lower-bound attacks")
    Term.(const run $ attack_arg $ honest_arg $ n_arg)

let table_cmd =
  let run () =
    let st = Random.State.make [| 0xCAFE |] in
    Format.printf "%-8s %-38s %-14s %s@." "id" "scheme" "paper" "bits/node at n=8,12,16";
    Format.printf "%s@." (String.make 80 '-');
    List.iter
      (fun (e : Catalog.entry) ->
        let bits_at size =
          match e.Catalog.yes st size with
          | None -> "-"
          | Some inst -> (
              match Scheme.prove_and_check e.Catalog.scheme inst with
              | `Accepted proof -> string_of_int (Proof.size proof)
              | _ -> "!")
        in
        Format.printf "%-8s %-38s %-14s %s@." e.Catalog.id
          e.Catalog.scheme.Scheme.name e.Catalog.paper_class
          (String.concat ", " (List.map bits_at [ 8; 12; 16 ])))
      Catalog.all;
    Format.printf
      "@.(the full sweep with growth fits and attacks: dune exec bench/main.exe)@.";
    0
  in
  Cmd.v
    (Cmd.info "table" ~doc:"Measured proof sizes for every Table 1 row")
    Term.(const run $ const ())

(* --- network service --------------------------------------------------- *)

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Address to listen on / connect to.")

let port_arg =
  Arg.(
    value
    & opt int 7411
    & info [ "port" ] ~docv:"PORT"
        ~doc:"TCP port (server: 0 picks an ephemeral one).")

let serve_cmd =
  let cache_arg =
    Arg.(
      value
      & opt int 128
      & info [ "cache-size" ] ~docv:"N"
          ~doc:"Compiled-verifier cache capacity (0 disables caching).")
  in
  let deadline_arg =
    Arg.(
      value
      & opt int 0
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Per-request deadline, measured from arrival (queue wait \
             counts); 0 disables.")
  in
  let queue_arg =
    Arg.(
      value
      & opt int 256
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Pending-task bound: beyond it requests are shed with an \
             Overloaded response.")
  in
  let http_port_arg =
    Arg.(
      value
      & opt int (-1)
      & info [ "http-port" ] ~docv:"PORT"
          ~doc:
            "Also serve plain-HTTP telemetry on $(docv): /metrics (Prometheus \
             text), /metrics.json, /healthz and /readyz. 0 picks an ephemeral \
             port; negative (the default) disables the sidecar.")
  in
  let log_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "log" ] ~docv:"FILE"
          ~doc:
            "Write one structured JSON log line per request to $(docv) \
             ('-' means stderr).")
  in
  let log_sample_arg =
    Arg.(
      value
      & opt int 0
      & info [ "log-sample" ] ~docv:"N"
          ~doc:
            "At most $(docv) log lines per second (excess lines are dropped \
             and counted); 0 logs every request.")
  in
  let slow_ms_arg =
    Arg.(
      value
      & opt int 0
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Flag requests slower than $(docv) ms; with --trace, each dumps \
             its trace-ring slice to --slow-dir/slow-<id>.json. 0 disables.")
  in
  let slow_dir_arg =
    Arg.(
      value
      & opt string "."
      & info [ "slow-dir" ] ~docv:"DIR"
          ~doc:"Directory for slow-request trace slices.")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt string ""
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Persist compiled verifier images to $(docv) and mmap them back \
             on cache misses, so a restarted daemon serves known graphs warm \
             without recompiling. Empty (the default) disables the disk \
             tier.")
  in
  let run host port jobs cache_size deadline_ms max_queue http_port log_path
      log_sample slow_ms slow_dir cache_dir trace_sample trace_dir profile_hz
      profile_dir metrics trace =
    with_obs ~metrics ~trace @@ fun () ->
    with_trace_spool
      ~process:(Printf.sprintf "serve-%d-%d" port (Unix.getpid ()))
      ~trace_sample ~trace_dir
    @@ fun () ->
    with_profile ~profile_hz ~profile_dir @@ fun () ->
    let log =
      match log_path with
      | None -> None
      | Some "-" -> Some (Obs.Log.to_stderr ~max_per_sec:log_sample ())
      | Some path -> Some (Obs.Log.to_file ~max_per_sec:log_sample path)
    in
    let config =
      {
        Server.host;
        port;
        jobs = max 1 (resolve_jobs jobs);
        cache_size;
        deadline_ms;
        max_queue;
        http_port;
        slow_ms;
        slow_dir;
        cache_dir;
        log;
        trace_sample;
      }
    in
    match Server.create config with
    | exception Unix.Unix_error (e, _, _) ->
        Format.eprintf "cannot listen on %s:%d: %s@." host port
          (Unix.error_message e);
        Option.iter Obs.Log.close log;
        1
    | exception Invalid_argument m ->
        prerr_endline m;
        Option.iter Obs.Log.close log;
        1
    | server ->
        (* re-stamp the lane with the bound port once it is known
           (port 0 picks an ephemeral one) *)
        Obs.Trace.process :=
          Printf.sprintf "serve-%d-%d" (Server.port server) (Unix.getpid ());
        let stop _ = Server.stop server in
        Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
        Format.printf
          "lcp: serving %d schemes on %s:%d (jobs %d, cache %d, deadline %s, \
           queue bound %d%s) — ctrl-c stops@."
          (List.length Registry.all) host (Server.port server) config.Server.jobs
          config.Server.cache_size
          (if deadline_ms <= 0 then "off" else Printf.sprintf "%d ms" deadline_ms)
          max_queue
          (if Server.http_port server < 0 then ""
           else Printf.sprintf ", telemetry on http://%s:%d/metrics" host
               (Server.http_port server));
        Server.run server;
        Option.iter Obs.Log.close log;
        let st = Server.stats server in
        Format.printf
          "served %d request(s) on %d connection(s): cache %d hit(s) / %d \
           miss(es), %d shed, %d past deadline, %d bad frame(s), %d slow@."
          st.Server.requests st.Server.connections st.Server.cache_hits
          st.Server.cache_misses st.Server.overloaded
          st.Server.deadline_exceeded st.Server.bad_frames
          st.Server.slow_requests;
        0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the TCP verification daemon (amortises graph parsing and \
          verifier compilation across requests)")
    Term.(
      const run $ host_arg $ port_arg $ jobs_arg $ cache_arg $ deadline_arg
      $ queue_arg $ http_port_arg $ log_arg $ log_sample_arg $ slow_ms_arg
      $ slow_dir_arg $ cache_dir_arg $ trace_sample_arg $ trace_dir_arg
      $ profile_hz_arg $ profile_dir_arg $ metrics_arg $ trace_arg)

let route_cmd =
  let backend_arg =
    Arg.(
      value
      & opt_all hostport_conv []
      & info [ "backend" ] ~docv:"HOST:PORT"
          ~doc:"Backend daemon to route to (repeatable; at least one).")
  in
  let route_port_arg =
    Arg.(
      value
      & opt int 7412
      & info [ "port" ] ~docv:"PORT"
          ~doc:"TCP port to listen on (0 picks an ephemeral one).")
  in
  let retries_arg =
    Arg.(
      value
      & opt int 2
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Extra forwarding attempts after the first, each on a backend \
             that has not failed the request yet, separated by jittered \
             exponential backoff.")
  in
  let hedge_arg =
    Arg.(
      value
      & opt int 0
      & info [ "hedge-ms" ] ~docv:"MS"
          ~doc:
            "Hedge delay: if the first backend is silent for $(docv) ms, \
             race the request on a second backend and take the first reply. \
             0 (the default) disables hedging.")
  in
  let probe_arg =
    Arg.(
      value
      & opt int 200
      & info [ "probe-interval-ms" ] ~docv:"MS"
          ~doc:"Health-probe period; 0 disables active probing.")
  in
  let load_factor_arg =
    Arg.(
      value
      & opt float 1.25
      & info [ "load-factor" ] ~docv:"F"
          ~doc:
            "Bounded-load spill threshold: a backend may run at most $(docv) \
             times the mean in-flight load before its keys spill to the next \
             ring node.")
  in
  let vnodes_arg =
    Arg.(
      value
      & opt int 64
      & info [ "vnodes" ] ~docv:"N"
          ~doc:"Consistent-hash ring points per backend.")
  in
  let fail_threshold_arg =
    Arg.(
      value
      & opt int 3
      & info [ "fail-threshold" ] ~docv:"N"
          ~doc:"Consecutive failures before a backend is ejected.")
  in
  let cooldown_arg =
    Arg.(
      value
      & opt int 1000
      & info [ "cooldown-ms" ] ~docv:"MS"
          ~doc:"How long an ejected backend stays out before a successful \
                probe may reinstate it.")
  in
  let http_port_arg =
    Arg.(
      value
      & opt int (-1)
      & info [ "http-port" ] ~docv:"PORT"
          ~doc:
            "Serve router telemetry over plain HTTP on $(docv): /metrics \
             (Prometheus text), /healthz and /readyz. 0 picks an ephemeral \
             port; negative (the default) disables the sidecar.")
  in
  let log_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "log" ] ~docv:"FILE"
          ~doc:
            "Write one structured JSON log line per routed request to \
             $(docv) ('-' means stderr).")
  in
  let run host port backends retries hedge_ms probe_interval_ms load_factor
      vnodes fail_threshold cooldown_ms http_port log_path trace_sample
      trace_dir profile_hz profile_dir =
    if backends = [] then begin
      prerr_endline "lcp route: need at least one --backend HOST:PORT";
      1
    end
    else begin
      with_trace_spool
        ~process:(Printf.sprintf "route-%d-%d" port (Unix.getpid ()))
        ~trace_sample ~trace_dir
      @@ fun () ->
      with_profile ~profile_hz ~profile_dir @@ fun () ->
      let log =
        match log_path with
        | None -> None
        | Some "-" -> Some (Obs.Log.to_stderr ())
        | Some path -> Some (Obs.Log.to_file path)
      in
      let config =
        {
          Router.default_config with
          Router.host;
          port;
          backends;
          vnodes;
          load_factor;
          retries;
          hedge_ms;
          probe_interval_ms;
          fail_threshold;
          cooldown_ms;
          http_port;
          log;
          trace_sample;
        }
      in
      match Router.create config with
      | exception Unix.Unix_error (e, _, _) ->
          Format.eprintf "cannot listen on %s:%d: %s@." host port
            (Unix.error_message e);
          Option.iter Obs.Log.close log;
          1
      | exception Invalid_argument m ->
          prerr_endline m;
          Option.iter Obs.Log.close log;
          1
      | router ->
          Obs.Trace.process :=
            Printf.sprintf "route-%d-%d" (Router.port router) (Unix.getpid ());
          let stop _ = Router.stop router in
          Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
          Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
          Format.printf
            "lcp: routing %s:%d over %d backend(s) [%s] (retries %d, hedge \
             %s, probe every %d ms%s) — ctrl-c stops@."
            host (Router.port router) (List.length backends)
            (String.concat "; "
               (List.map (fun (h, p) -> Printf.sprintf "%s:%d" h p) backends))
            retries
            (if hedge_ms <= 0 then "off" else Printf.sprintf "%d ms" hedge_ms)
            probe_interval_ms
            (if Router.http_port router < 0 then ""
             else
               Printf.sprintf ", telemetry on http://%s:%d/metrics" host
                 (Router.http_port router));
          Router.run router;
          Option.iter Obs.Log.close log;
          let st = Router.stats router in
          Format.printf
            "routed %d request(s) on %d connection(s): %d retried, %d \
             hedged (%d hedge wins), %d with no backend@."
            st.Router.requests st.Router.connections st.Router.retries
            st.Router.hedges st.Router.hedge_wins st.Router.no_backend;
          List.iter
            (fun b ->
              Format.printf
                "backend %s: %d attempt(s), %d error(s), %d retr%s caused, \
                 last state %s@."
                b.Router.name b.Router.requests b.Router.errors
                b.Router.retries
                (if b.Router.retries = 1 then "y" else "ies")
                (Health.state_to_string b.Router.state))
            st.Router.per_backend;
          0
    end
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "Run the cluster routing frontend: one wire-protocol endpoint over \
          several daemons, with consistent-hash cache affinity, health \
          checks, retries and hedged requests")
    Term.(
      const run $ host_arg $ route_port_arg $ backend_arg $ retries_arg
      $ hedge_arg $ probe_arg $ load_factor_arg $ vnodes_arg
      $ fail_threshold_arg $ cooldown_arg $ http_port_arg $ log_arg
      $ trace_sample_arg $ trace_dir_arg $ profile_hz_arg $ profile_dir_arg)

let loadgen_cmd =
  let connections_arg =
    Arg.(
      value
      & opt int 4
      & info [ "connections" ] ~docv:"N" ~doc:"Concurrent client connections.")
  in
  let requests_arg =
    Arg.(
      value
      & opt int 100
      & info [ "requests" ] ~docv:"N" ~doc:"Requests per connection.")
  in
  let mix_arg =
    (* "P:V" or "P:V:S" — e.g. the default 1:4 sends one prove per
       four verifies; 1:2:2 adds two sampled verifies per cycle *)
    let parse s =
      let ints = List.map int_of_string_opt (String.split_on_char ':' s) in
      match ints with
      | [ Some p; Some v ] when p >= 0 && v >= 0 && p + v > 0 -> Ok (p, v, 0)
      | [ Some p; Some v; Some sm ]
        when p >= 0 && v >= 0 && sm >= 0 && p + v + sm > 0 ->
          Ok (p, v, sm)
      | [ _; _ ] | [ _; _; _ ] ->
          Error (`Msg "MIX needs non-negative weights, e.g. 1:4 or 1:2:2")
      | _ -> Error (`Msg (Printf.sprintf "invalid MIX %S (want P:V[:S])" s))
    in
    let print ppf (p, v, sm) = Format.fprintf ppf "%d:%d:%d" p v sm in
    Arg.(
      value
      & opt (conv (parse, print)) (1, 4, 0)
      & info [ "mix" ] ~docv:"MIX"
          ~doc:
            "prove:verify[:sampled] weights of the request mix, e.g. 1:4 \
             or 1:2:2. Sampled ops send Verify_sampled frames over the \
             proofs the setup pass stored.")
  in
  let queries_arg =
    Arg.(
      value
      & opt int 4
      & info [ "queries" ] ~docv:"Q"
          ~doc:"Per-node query bound carried by sampled-verify ops.")
  in
  let scheme_name_arg =
    Arg.(
      value
      & opt string "eulerian"
      & info [ "s"; "scheme" ] ~docv:"SCHEME"
          ~doc:"Scheme to exercise (see 'lcp schemes').")
  in
  let sizes_arg =
    Arg.(
      value
      & opt (list int) [ 64; 96; 128; 160 ]
      & info [ "sizes" ] ~docv:"N,N,..."
          ~doc:
            "Cycle-graph sizes to replay; repeats of the same size hit the \
             server's compiled-verifier cache.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Also write the summary as JSON to $(docv).")
  in
  let connect_arg =
    Arg.(
      value
      & opt_all hostport_conv []
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:
            "Target endpoint — a daemon or a router (repeatable: worker \
             connections round-robin over the targets and the summary gains \
             a per-target breakdown). Overrides --host/--port.")
  in
  let batch_arg =
    Arg.(
      value
      & opt int 1
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Pack $(docv) operations into each Batch wire frame (1 sends \
             plain requests). The mix and graph rotation are identical per \
             operation, so ops/s is directly comparable across batch sizes.")
  in
  let run host port targets connections requests batch mix queries scheme
      sizes out trace_sample trace_dir profile_hz profile_dir =
    let targets = match targets with [] -> None | l -> Some l in
    with_trace_spool
      ~process:(Printf.sprintf "loadgen-%d" (Unix.getpid ()))
      ~trace_sample ~trace_dir
    @@ fun () ->
    with_profile ~profile_hz ~profile_dir @@ fun () ->
    match
      Client.loadgen ~host ?targets ~batch ~trace_sample ~queries ~port
        ~connections ~requests ~mix ~scheme ~sizes ()
    with
    | Error m -> prerr_endline m; 1
    | Ok report ->
        Format.printf "%a" Client.pp_report report;
        (match out with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            output_string oc (Client.report_json report);
            output_char oc '\n';
            close_out oc;
            Format.printf "summary written to %s@." path);
        if report.Client.errors = 0 then 0 else 2
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive a running daemon (or several, or a router) with a \
          prove/verify mix and report throughput and latency percentiles")
    Term.(
      const run $ host_arg $ port_arg $ connect_arg $ connections_arg
      $ requests_arg $ batch_arg $ mix_arg $ queries_arg $ scheme_name_arg
      $ sizes_arg $ out_arg $ trace_sample_arg $ trace_dir_arg
      $ profile_hz_arg $ profile_dir_arg)

let trace_cmd =
  let merge_cmd =
    let files_arg =
      Arg.(
        non_empty & pos_all file []
        & info [] ~docv:"FILE"
            ~doc:
              "Per-process trace spools — the Chrome trace-event JSON files \
               written by --trace-dir or fetched with 'lcp trace fetch'.")
    in
    let out_arg =
      Arg.(
        value
        & opt string "trace-merged.json"
        & info [ "o"; "output" ] ~docv:"FILE"
            ~doc:"Write the merged timeline here.")
    in
    let id_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "trace-id" ] ~docv:"HEX"
            ~doc:
              "Keep only the events of this trace (the 32-hex id from a \
               slow-request log line or a span's args).")
    in
    let run files out trace_id =
      let slurp path =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let named =
        List.map
          (fun path ->
            (Filename.remove_extension (Filename.basename path), slurp path))
          files
      in
      match Obs.Trace_merge.merge ?trace_id named with
      | Error m ->
          prerr_endline ("lcp trace merge: " ^ m);
          1
      | Ok (json, stats) ->
          let oc = open_out out in
          output_string oc json;
          close_out oc;
          Obs.Trace_merge.pp_stats stdout stats;
          Format.printf "merged timeline written to %s@." out;
          0
    in
    Cmd.v
      (Cmd.info "merge"
         ~doc:
           "Join per-process trace spools into one timeline, aligning each \
            process's clock from cross-process span parent links (no NTP \
            assumption)")
      Term.(const run $ files_arg $ out_arg $ id_arg)
  in
  let fetch_cmd =
    let target_arg =
      Arg.(
        required
        & pos 0 (some hostport_conv) None
        & info [] ~docv:"HOST:PORT"
            ~doc:"Daemon or router to fetch the trace ring from.")
    in
    let out_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "o"; "output" ] ~docv:"FILE"
            ~doc:"Output file (default trace-HOST-PORT.json).")
    in
    let run (host, port) out =
      match Client.connect ~host ~port () with
      | Error m ->
          prerr_endline m;
          1
      | Ok c -> (
          Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
          match Client.call c Wire.Trace_export with
          | Ok (Wire.Trace_export_reply json) ->
              let path =
                match out with
                | Some p -> p
                | None -> Printf.sprintf "trace-%s-%d.json" host port
              in
              let oc = open_out path in
              output_string oc json;
              close_out oc;
              Format.printf "trace lane from %s:%d written to %s@." host port
                path;
              0
          | Ok (Wire.Error_reply { message; _ }) ->
              prerr_endline ("server said: " ^ message);
              1
          | Ok _ ->
              prerr_endline "unexpected response type";
              1
          | Error m ->
              prerr_endline m;
              1)
    in
    Cmd.v
      (Cmd.info "fetch"
         ~doc:
           "Fetch a live process's trace ring over the wire protocol \
            (Trace_export) without restarting it")
      Term.(const run $ target_arg $ out_arg)
  in
  Cmd.group
    (Cmd.info "trace"
       ~doc:
         "Distributed-tracing utilities: fetch per-process trace rings and \
          merge spooled lanes into one cross-process timeline")
    [ merge_cmd; fetch_cmd ]

let profile_cmd =
  let slurp path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (* Shared by fetch's summary and diff: the collapsed-stack text of a
     profile export, parsed back to (stack, count) rows. *)
  let collapsed_rows json =
    match Obs.Json.parse json with
    | Error m -> Error ("malformed profile JSON: " ^ m)
    | Ok doc -> (
        match
          Option.bind (Obs.Json.member "collapsed" doc) Obs.Json.to_string_opt
        with
        | None -> Error "profile JSON has no \"collapsed\" member"
        | Some text ->
            Ok
              (List.filter_map
                 (fun line ->
                   match String.rindex_opt line ' ' with
                   | None -> None
                   | Some i ->
                       Option.map
                         (fun c -> (String.sub line 0 i, c))
                         (int_of_string_opt
                            (String.sub line (i + 1)
                               (String.length line - i - 1))))
                 (String.split_on_char '\n' text)))
  in
  let fetch_cmd =
    let target_arg =
      Arg.(
        required
        & pos 0 (some hostport_conv) None
        & info [] ~docv:"HOST:PORT"
            ~doc:"Daemon or router to fetch the live profile from.")
    in
    let out_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "o"; "output" ] ~docv:"FILE"
            ~doc:"Output file (default profile-HOST-PORT.json).")
    in
    let collapsed_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "collapsed" ] ~docv:"FILE"
            ~doc:
              "Also extract the collapsed-stack text to $(docv) — ready \
               for flamegraph.pl.")
    in
    let speedscope_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "speedscope" ] ~docv:"FILE"
            ~doc:
              "Also extract the speedscope profile to $(docv) — open it at \
               https://www.speedscope.app.")
    in
    let run (host, port) out collapsed_out speedscope_out =
      match Client.connect ~host ~port () with
      | Error m ->
          prerr_endline m;
          1
      | Ok c -> (
          Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
          match Client.call c Wire.Profile_export with
          | Ok (Wire.Profile_export_reply json) -> (
              let path =
                match out with
                | Some p -> p
                | None -> Printf.sprintf "profile-%s-%d.json" host port
              in
              let oc = open_out path in
              output_string oc json;
              close_out oc;
              match Obs.Json.parse json with
              | Error m ->
                  prerr_endline ("malformed profile JSON: " ^ m);
                  1
              | Ok doc ->
                  let num name =
                    match
                      Option.bind (Obs.Json.member name doc)
                        Obs.Json.to_float_opt
                    with
                    | Some f -> int_of_float f
                    | None -> 0
                  in
                  Format.printf
                    "profile from %s:%d written to %s (%d sample(s), %d \
                     stack(s), %d Hz)@."
                    host port path (num "samples") (num "stack_samples")
                    (num "hz");
                  (match collapsed_out with
                  | None -> ()
                  | Some p -> (
                      match
                        Option.bind
                          (Obs.Json.member "collapsed" doc)
                          Obs.Json.to_string_opt
                      with
                      | None -> ()
                      | Some text ->
                          let oc = open_out p in
                          output_string oc text;
                          close_out oc;
                          Format.printf "collapsed stacks written to %s@." p));
                  (match speedscope_out with
                  | None -> ()
                  | Some p -> (
                      match Obs.Json.member "speedscope" doc with
                      | None -> ()
                      | Some ss ->
                          let oc = open_out p in
                          output_string oc (Obs.Json.to_string ss);
                          close_out oc;
                          Format.printf
                            "speedscope profile written to %s (open at \
                             https://www.speedscope.app)@."
                            p));
                  (match collapsed_rows json with
                  | Error _ -> ()
                  | Ok rows ->
                      let total =
                        List.fold_left (fun a (_, c) -> a + c) 0 rows
                      in
                      if total > 0 then begin
                        Format.printf "top stacks:@.";
                        List.iteri
                          (fun i (stack, c) ->
                            if i < 10 then
                              Format.printf "  %5.1f%% %6d  %s@."
                                (100.0 *. float_of_int c /. float_of_int total)
                                c stack)
                          rows
                      end);
                  (match
                     Option.bind (Obs.Json.member "schemes" doc)
                       Obs.Json.to_list
                   with
                  | Some (_ :: _ as rows) ->
                      Format.printf "schemes:@.";
                      List.iter
                        (fun r ->
                          let str name =
                            Option.bind (Obs.Json.member name r)
                              Obs.Json.to_string_opt
                          in
                          let fl name =
                            Option.bind (Obs.Json.member name r)
                              Obs.Json.to_float_opt
                          in
                          match
                            ( str "scheme", fl "cpu_ns", fl "alloc_bytes",
                              fl "requests" )
                          with
                          | Some sc, Some cpu, Some alloc, Some n ->
                              Format.printf
                                "  %-16s %9.1f ms cpu %10.1f KB %7.0f \
                                 request(s)@."
                                sc (cpu /. 1e6) (alloc /. 1024.0) n
                          | _ -> ())
                        rows
                  | _ -> ());
                  0)
          | Ok (Wire.Error_reply { message; _ }) ->
              prerr_endline ("server said: " ^ message);
              1
          | Ok _ ->
              prerr_endline "unexpected response type";
              1
          | Error m ->
              prerr_endline m;
              1)
    in
    Cmd.v
      (Cmd.info "fetch"
         ~doc:
           "Fetch a live process's accumulated profile over the wire \
            protocol (Profile_export) without restarting it")
      Term.(const run $ target_arg $ out_arg $ collapsed_arg $ speedscope_arg)
  in
  let diff_cmd =
    let a_arg =
      Arg.(
        required
        & pos 0 (some file) None
        & info [] ~docv:"BEFORE" ~doc:"Baseline profile export (JSON).")
    in
    let b_arg =
      Arg.(
        required
        & pos 1 (some file) None
        & info [] ~docv:"AFTER" ~doc:"Comparison profile export (JSON).")
    in
    let limit_arg =
      Arg.(
        value
        & opt int 20
        & info [ "limit" ] ~docv:"N" ~doc:"Show the top $(docv) movers.")
    in
    (* Each side is normalised to its own total before differencing, so
       runs of different lengths compare on time share, not raw ticks. *)
    let run a b limit =
      match (collapsed_rows (slurp a), collapsed_rows (slurp b)) with
      | Error m, _ | _, Error m ->
          prerr_endline ("lcp profile diff: " ^ m);
          1
      | Ok ra, Ok rb ->
          let total r =
            float_of_int
              (max 1 (List.fold_left (fun acc (_, c) -> acc + c) 0 r))
          in
          let ta = total ra and tb = total rb in
          let tbl = Hashtbl.create 64 in
          List.iter
            (fun (st, c) -> Hashtbl.replace tbl st (float_of_int c /. ta, 0.0))
            ra;
          List.iter
            (fun (st, c) ->
              let before =
                match Hashtbl.find_opt tbl st with
                | Some (x, _) -> x
                | None -> 0.0
              in
              Hashtbl.replace tbl st (before, float_of_int c /. tb))
            rb;
          let rows = Hashtbl.fold (fun st xy l -> (st, xy) :: l) tbl [] in
          let rows =
            List.sort
              (fun (s1, (x1, y1)) (s2, (x2, y2)) ->
                match
                  compare (Float.abs (y2 -. x2)) (Float.abs (y1 -. x1))
                with
                | 0 -> compare s1 s2
                | c -> c)
              rows
          in
          Format.printf "%8s %8s %9s  stack@." "before%" "after%" "delta";
          List.iteri
            (fun i (st, (x, y)) ->
              if i < limit then
                Format.printf "%8.2f %8.2f %+9.2f  %s@." (100.0 *. x)
                  (100.0 *. y)
                  (100.0 *. (y -. x))
                  st)
            rows;
          if List.length rows > limit then
            Format.printf "(%d more stack(s) not shown)@."
              (List.length rows - limit);
          0
    in
    Cmd.v
      (Cmd.info "diff"
         ~doc:
           "Compare two fetched profiles: time share per stack before vs \
            after, biggest movers first")
      Term.(const run $ a_arg $ b_arg $ limit_arg)
  in
  Cmd.group
    (Cmd.info "profile"
       ~doc:
         "Continuous-profiling utilities: fetch a live process's \
          attribution tree (collapsed stacks + speedscope) and diff two \
          captures")
    [ fetch_cmd; diff_cmd ]

let top_cmd =
  let interval_arg =
    Arg.(
      value
      & opt float 1.0
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Seconds between samples.")
  in
  let iterations_arg =
    Arg.(
      value
      & opt int 0
      & info [ "iterations" ] ~docv:"N"
          ~doc:"Stop after $(docv) samples; 0 runs until interrupted.")
  in
  (* vmstat-style dashboard: one row per sample, scraped over the wire
     protocol's Metrics_text request and read back through the same
     parser `lcp top`'s tests use — the exposition is the contract. *)
  let header () =
    Format.printf "%9s %9s %9s %9s %9s %9s %6s %6s %6s %8s %8s %6s %s@."
      "frame/s" "ops/s" "reqs" "p50_us" "p95_us" "p99_us" "hit%" "queue"
      "shed" "alloc/s" "heap" "maj/s" "ready"
  in
  let human_bytes v =
    if v >= 1_073_741_824.0 then Printf.sprintf "%.1fG" (v /. 1_073_741_824.0)
    else if v >= 1_048_576.0 then Printf.sprintf "%.1fM" (v /. 1_048_576.0)
    else if v >= 1024.0 then Printf.sprintf "%.1fK" (v /. 1024.0)
    else Printf.sprintf "%.0f" v
  in
  (* Pointed at a router, expand each sample into per-backend rows —
     the labelled lcp_router_backend_* series are already in the same
     exposition text. *)
  let backend_rows text =
    List.iter
      (fun line ->
        match Obs.Export.parse_sample line with
        | Some ("lcp_router_backend_requests_total", labels, reqs) -> (
            match List.assoc_opt "backend" labels with
            | None -> ()
            | Some name ->
                let fl metric =
                  Option.value ~default:0.0
                    (Obs.Export.find_sample text ~name:metric
                       ~labels:[ ("backend", name) ])
                in
                Format.printf
                  "  %-21s %9.0f attempts %6.0f err %4.0f inflight %s@."
                  name reqs
                  (fl "lcp_router_backend_errors_total")
                  (fl "lcp_router_backend_inflight")
                  (match fl "lcp_router_backend_state" with
                  | 0. -> "ready"
                  | 1. -> "saturated"
                  | _ -> "dead"))
        | _ -> ())
      (String.split_on_char '\n' text)
  in
  let sample gc_prev samp_prev text =
    let f ?(labels = []) name =
      Option.value ~default:0.0 (Obs.Export.find_sample text ~name ~labels)
    in
    let opt name = Obs.Export.find_sample text ~name ~labels:[] in
    (* GC columns come from the lcp_gc_* families the profiling layer
       exposes; a pre-profiling server has none and renders "-". Rates
       are diffed across our own samples (guarding against counter
       resets on daemon restart); the allocation rate prefers the
       server's own 10 s window when the sampler is running there. *)
    let now = Unix.gettimeofday () in
    let gc_alloc = opt "lcp_gc_allocated_bytes_total" in
    let gc_major = opt "lcp_gc_major_collections_total" in
    let rates =
      match (gc_alloc, gc_major, !gc_prev) with
      | Some a, Some m, Some (t0, a0, m0)
        when now -. t0 > 0.01 && a >= a0 && m >= m0 ->
          let dt = now -. t0 in
          Some ((a -. a0) /. dt, (m -. m0) /. dt)
      | _ -> None
    in
    (match (gc_alloc, gc_major) with
    | Some a, Some m -> gc_prev := Some (now, a, m)
    | _ -> gc_prev := None);
    let alloc_col =
      match opt "lcp_gc_alloc_bytes_per_s" with
      | Some r -> human_bytes r
      | None -> (
          match rates with Some (r, _) -> human_bytes r | None -> "-")
    in
    let heap_col =
      match opt "lcp_gc_heap_bytes" with
      | Some h -> human_bytes h
      | None -> "-"
    in
    let major_col =
      match rates with Some (_, r) -> Printf.sprintf "%.1f" r | None -> "-"
    in
    let w10 = [ ("window", "10s") ] in
    let q v = ("quantile", v) :: w10 in
    (* the same dashboard reads a daemon or a router — the router has
       no compile cache (hit% renders as "-"), and its queue / shed
       columns are in-flight forwards / unroutable requests. frame/s
       counts wire frames, ops/s counts batch sub-ops — they diverge
       exactly when --batch is doing its job *)
    let router =
      Obs.Export.find_sample text ~name:"lcp_router_ready" ~labels:[] <> None
    in
    let p name = (if router then "lcp_router_" else "lcp_server_") ^ name in
    Format.printf
      "%9.1f %9.1f %9.0f %9.0f %9.0f %9.0f %6s %6.0f %6.0f %8s %8s %6s %s@."
      (f ~labels:w10 (p "request_rate"))
      (f ~labels:w10 (p "op_rate"))
      (f (p "requests_total"))
      (f ~labels:(q "0.5") (p "request_us"))
      (f ~labels:(q "0.95") (p "request_us"))
      (f ~labels:(q "0.99") (p "request_us"))
      (if router then "-"
       else
         Printf.sprintf "%.1f"
           (100.0 *. f ~labels:w10 "lcp_server_cache_hit_ratio"))
      (f (if router then "lcp_router_inflight" else "lcp_server_pool_pending"))
      (f
         (if router then "lcp_router_no_backend_total"
          else "lcp_server_overloaded_total"))
      alloc_col heap_col major_col
      (if f (p "ready") > 0.5 then "yes" else "NO");
    if router then backend_rows text;
    (* partitioned-verification traffic gets its own row once any
       shard has been seen: the daemon counts shards executed (plus
       rejecting owned nodes), the router counts shards forwarded *)
    let shards =
      if router then f "lcp_router_partition_shards_total"
      else f "lcp_partition_shards_total"
    in
    if shards > 0.0 then
      Format.printf "  partition: %9.0f shard(s) %9.0f reject(s)@." shards
        (f "lcp_partition_reject_total");
    (* sampled-verify traffic likewise appears once the daemon has
       served any Verify_sampled frame: rate is diffed across our own
       samples, escalation %% and bits/req are lifetime averages *)
    let sreq = f "lcp_sampled_requests_total" in
    (if sreq > 0.0 then
       let rate =
         match !samp_prev with
         | Some (t0, r0) when now -. t0 > 0.01 && sreq >= r0 ->
             Printf.sprintf "%.1f" ((sreq -. r0) /. (now -. t0))
         | _ -> "-"
       in
       Format.printf
         "  sampled: %9.0f req(s) %8s req/s %5.1f%% escalated %8.0f \
          bits/req@."
         sreq rate
         (100.0 *. f "lcp_sampled_escalations_total" /. sreq)
         (f "lcp_sampled_bits_read_total" /. sreq));
    samp_prev := Some (now, sreq)
  in
  (* A lost daemon renders as a status row and `top` keeps sampling:
     the next connect (itself retried with backoff) picks the daemon
     back up when it returns. The exit code only says whether any
     sample ever succeeded. *)
  let disconnected_row reason =
    Format.printf
      "%9s %9s %9s %9s %9s %9s %6s %6s %6s %8s %8s %6s disconnected (%s)@."
      "-" "-" "-" "-" "-" "-" "-" "-" "-" "-" "-" "-" reason
  in
  let run host port interval iterations =
    let stop = ref false in
    (try Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true))
     with Invalid_argument _ | Sys_error _ -> ());
    let successes = ref 0 and rows = ref 0 in
    let gc_prev = ref None in
    let samp_prev = ref None in
    let conn = ref None in
    let drop_conn () =
      Option.iter Client.close !conn;
      conn := None
    in
    let get_conn () =
      match !conn with
      | Some c -> Ok c
      | None -> (
          match Client.connect ~host ~port ~retries:2 () with
          | Ok c ->
              conn := Some c;
              Ok c
          | Error _ as e -> e)
    in
    let row line =
      if !rows mod 20 = 0 then header ();
      incr rows;
      line ()
    in
    let rec loop i =
      if !stop || (iterations > 0 && i >= iterations) then ()
      else begin
        (match get_conn () with
        | Error m -> row (fun () -> disconnected_row m)
        | Ok c -> (
            match Client.call c Wire.Metrics_text with
            | Ok (Wire.Metrics_text_reply text) ->
                incr successes;
                row (fun () -> sample gc_prev samp_prev text)
            | Ok (Wire.Error_reply { message; _ }) ->
                drop_conn ();
                row (fun () -> disconnected_row ("server said: " ^ message))
            | Ok _ ->
                drop_conn ();
                row (fun () -> disconnected_row "unexpected response type")
            | Error m ->
                drop_conn ();
                row (fun () -> disconnected_row m)));
        if (not !stop) && (iterations = 0 || i + 1 < iterations) then
          Unix.sleepf (max 0.05 interval);
        loop (i + 1)
      end
    in
    loop 0;
    drop_conn ();
    if !successes > 0 then 0 else 1
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live telemetry dashboard for a running daemon: request rate, \
          rolling latency quantiles, cache hit ratio, queue depth")
    Term.(const run $ host_arg $ port_arg $ interval_arg $ iterations_arg)

let main =
  let doc = "locally checkable proofs (Göös & Suomela, PODC 2011)" in
  Cmd.group
    (Cmd.info "lcp" ~doc ~version:"1.0.0")
    [
      schemes_cmd; prove_cmd; verify_cmd; partition_cmd; forge_cmd; stats_cmd;
      info_cmd; dot_cmd; attack_cmd; table_cmd; serve_cmd; route_cmd;
      loadgen_cmd; trace_cmd; profile_cmd; top_cmd;
    ]

let () = exit (Cmd.eval' main)
