(* Table-driven metatests: every catalogue entry must be complete on
   its yes-generator and reject its no-generator (prover refusal plus
   randomised soundness). One sweep covers the whole of Table 1. *)

let check = Alcotest.(check bool)

let completeness_sweep () =
  let st = Random.State.make [| 11 |] in
  List.iter
    (fun (e : Catalog.entry) ->
      List.iter
        (fun size ->
          match e.Catalog.yes st size with
          | None -> ()
          | Some inst -> (
              match Scheme.prove_and_check e.Catalog.scheme inst with
              | `Accepted proof ->
                  check
                    (Printf.sprintf "%s (%s): size bound at %d" e.Catalog.id
                       e.Catalog.scheme.Scheme.name size)
                    true
                    (Proof.size proof
                    <= e.Catalog.scheme.Scheme.size_bound (Instance.n inst))
              | `No_proof ->
                  Alcotest.fail
                    (Printf.sprintf "%s: prover refused its own yes-instance (size %d)"
                       e.Catalog.id size)
              | `Rejected (_, vs) ->
                  Alcotest.fail
                    (Printf.sprintf "%s: own proof rejected at [%s] (size %d)"
                       e.Catalog.id
                       (String.concat "," (List.map string_of_int vs))
                       size)))
        [ 6; 10; 14 ])
    Catalog.all

let soundness_sweep () =
  let st = Random.State.make [| 13 |] in
  List.iter
    (fun (e : Catalog.entry) ->
      match e.Catalog.no st 8 with
      | None -> ()
      | Some inst ->
          (* LCP(0) provers are trivial (there is nothing to produce),
             so the right invariant is: proving a no-instance never
             ends in acceptance. *)
          check
            (Printf.sprintf "%s: no-instance never accepted via prover" e.Catalog.id)
            false
            (match Scheme.prove_and_check e.Catalog.scheme inst with
            | `Accepted _ -> true
            | `No_proof | `Rejected _ -> false);
          check
            (Printf.sprintf "%s: random proofs rejected" e.Catalog.id)
            true
            (Checker.soundness_random e.Catalog.scheme inst ~samples:120 ~max_bits:5))
    Catalog.all

let ids_unique () =
  let ids = List.map (fun (e : Catalog.entry) -> e.Catalog.id) Catalog.all in
  check "unique ids" true (List.sort_uniq compare ids = List.sort compare ids);
  check "lookup" true (Catalog.find "T1a-7" <> None);
  check "missing lookup" true (Catalog.find "T9z-0" = None)

let suite =
  ( "catalog",
    [
      Alcotest.test_case "ids unique" `Quick ids_unique;
      Alcotest.test_case "completeness sweep over Table 1" `Slow completeness_sweep;
      Alcotest.test_case "soundness sweep over Table 1" `Slow soundness_sweep;
    ] )
