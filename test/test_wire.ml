(* The wire layer is the service's trust boundary, so the tests come
   in two flavours: round-trip properties (decode (encode m) = m over
   random messages, and graph6 across the multi-byte size-header
   boundary) and adversarial totality (truncated, oversized and
   garbage bytes must come back as [Error _], never as an
   exception). *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let ok_or_fail what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: unexpected Error %S" what msg

(* ------------------------------------------------------------------ *)
(* graph6: the multi-byte size header (satellite: bench graphs have
   n up to 4096, far past the 62-node single-byte form). *)

let graph6_known_vectors () =
  (* the n <= 62 fast path must stay byte-identical to the original
     single-byte implementation *)
  let k2 = Graph.create ~nodes:[ 0; 1 ] ~edges:[ (0, 1) ] in
  check_str "K2" "A_" (Graph6.encode k2);
  let k3 = Graph.create ~nodes:[ 0; 1; 2 ] ~edges:[ (0, 1); (0, 2); (1, 2) ] in
  check_str "K3" "Bw" (Graph6.encode k3);
  (* first multi-byte n: header is '~' + 18 bits of n *)
  let g63 = Graph.create ~nodes:(List.init 63 Fun.id) ~edges:[] in
  let s = Graph6.encode g63 in
  check_str "n=63 header" "~??~" (String.sub s 0 4);
  check_int "n=63 length" (4 + (((63 * 62 / 2) + 5) / 6)) (String.length s)

let graph6_roundtrip_sizes () =
  (* straddle the single-byte / 3-byte header boundary, then go well
     past it with a wire-sized graph *)
  List.iter
    (fun n ->
      let g = Builders.cycle n in
      let g' = ok_or_fail "decode" (Graph6.decode_res (Graph6.encode g)) in
      check (Printf.sprintf "cycle %d roundtrips" n) true (Graph.equal g g'))
    [ 3; 61; 62; 63; 64; 100; 1024 ]

let graph6_roundtrip_prop =
  QCheck.Test.make ~name:"graph6 roundtrip across header boundary" ~count:60
    QCheck.(
      make
        Gen.(
          let* n = int_range 1 80 in
          let* edges =
            list_size (int_bound 120)
              (let* i = int_bound (n - 1) in
               let* j = int_bound (n - 1) in
               return (i, j))
          in
          return (n, List.filter (fun (i, j) -> i <> j) edges)))
    (fun (n, edges) ->
      let g = Graph.create ~nodes:(List.init n Fun.id) ~edges in
      match Graph6.decode_res (Graph6.encode g) with
      | Ok g' -> Graph.equal g g'
      | Error _ -> false)

let graph6_rejects () =
  let reject what s =
    match Graph6.decode_res s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: expected rejection of %S" what s
  in
  reject "empty" "";
  reject "truncated 3-byte header" "~?";
  reject "truncated data" "D";
  reject "trailing data" "A_?";
  reject "byte below alphabet" "B\x01\x02";
  reject "non-minimal 3-byte header" "~??A";
  (* a 9-byte header announcing a graph too large to allocate must be
     rejected before any O(n^2) work *)
  reject "n over cap" "~~??~?????";
  check "decode_opt mirrors decode_res" true (Graph6.decode_opt "~?" = None)

let graph6_total_prop =
  QCheck.Test.make ~name:"graph6 decode_res never raises" ~count:300
    QCheck.(string_of_size (Gen.int_bound 40))
    (fun s ->
      match Graph6.decode_res s with
      | Ok _ | Error _ -> true
      | exception e ->
          QCheck.Test.fail_reportf "decode_res raised %s on %S"
            (Printexc.to_string e) s)

(* ------------------------------------------------------------------ *)
(* Frame round-trips over random messages. *)

let gen_bits =
  QCheck.Gen.(
    let* bools = list_size (int_bound 24) bool in
    return (Bits.of_bools bools))

let gen_proof =
  QCheck.Gen.(
    let* bindings =
      list_size (int_bound 8)
        (let* v = int_bound 1000 in
         let* b = gen_bits in
         return (v, b))
    in
    return (Proof.of_list bindings))

let gen_name = QCheck.Gen.(string_size ~gen:printable (int_bound 16))

(* payload strings are raw bytes on the wire — use the full char
   range, not just printables *)
let gen_blob = QCheck.Gen.(string_size ~gen:char (int_bound 32))

(* batch ops must reference graph- and proof-table slots — the
   decoder rejects out-of-range indices, so the generator keeps them
   in range *)
let gen_batch_op n_graphs n_proofs =
  QCheck.Gen.(
    let* graph = int_bound (n_graphs - 1) in
    oneof
      [
        (let* scheme = gen_name in
         return (Wire.Op_prove { scheme; graph }));
        (let* scheme = gen_name in
         let* proof = int_bound (n_proofs - 1) in
         return (Wire.Op_verify { scheme; graph; proof }));
        (let* scheme = gen_name in
         let* max_bits = int_bound 0xffff in
         return (Wire.Op_forge { scheme; graph; max_bits }));
      ])

let gen_batch =
  QCheck.Gen.(
    let* graphs = list_size (int_range 1 4) gen_blob in
    let* proofs = list_size (int_range 1 3) gen_proof in
    let* ops =
      list_size (int_bound 6)
        (gen_batch_op (List.length graphs) (List.length proofs))
    in
    return (Wire.Batch { graphs; proofs; ops }))

let gen_batch_item =
  QCheck.Gen.(
    oneof
      [
        (let* p = opt gen_proof in
         return (Wire.Item_proved p));
        (let* accepted = bool in
         let* rejecting = list_size (int_bound 6) (int_bound 5000) in
         return (Wire.Item_verified { accepted; rejecting }));
        (let* fooled = opt gen_proof in
         let* attempts = int_bound 100000 in
         let* best_rejections = int_bound 5000 in
         return (Wire.Item_forged { fooled; attempts; best_rejections }));
        (let* code =
           oneofl [ Wire.Unknown_scheme; Wire.Deadline_exceeded; Wire.Internal ]
         in
         let* message = gen_blob in
         return (Wire.Item_error { code; message }));
      ])

let gen_request =
  QCheck.Gen.(
    oneof
      [
        gen_batch;
        (let* scheme = gen_name in
         let* graph6 = gen_blob in
         return (Wire.Prove { scheme; graph6 }));
        (let* scheme = gen_name in
         let* graph6 = gen_blob in
         let* proof = gen_proof in
         return (Wire.Verify { scheme; graph6; proof }));
        (let* scheme = gen_name in
         let* graph6 = gen_blob in
         let* max_bits = int_bound 0xffff in
         return (Wire.Forge { scheme; graph6; max_bits }));
        return Wire.Stats;
        return Wire.Catalog;
        return Wire.Metrics_text;
        return Wire.Health;
        return Wire.Trace_export;
        return Wire.Profile_export;
        (let* enable = bool in
         return (Wire.Drain { enable }));
      ])

let gen_response =
  QCheck.Gen.(
    oneof
      [
        (let* p = opt gen_proof in
         return (Wire.Proved p));
        (let* accepted = bool in
         let* rejecting = list_size (int_bound 10) (int_bound 5000) in
         return (Wire.Verified { accepted; rejecting }));
        (let* fooled = opt gen_proof in
         let* attempts = int_bound 100000 in
         let* best_rejections = int_bound 5000 in
         return (Wire.Forged { fooled; attempts; best_rejections }));
        (let* requests = int_bound 1_000_000 in
         let* cache_hits = int_bound 1_000_000 in
         let* cache_misses = int_bound 1_000_000 in
         let* cache_entries = int_bound 4096 in
         let* overloaded = int_bound 1_000_000 in
         let* deadline_exceeded = int_bound 1_000_000 in
         let* uptime_ms = int_bound 1_000_000 in
         let* metrics_json = gen_blob in
         return
           (Wire.Stats_reply
              {
                Wire.requests;
                cache_hits;
                cache_misses;
                cache_entries;
                overloaded;
                deadline_exceeded;
                uptime_ms;
                metrics_json;
              }));
        (let* entries =
           list_size (int_bound 6)
             (let* name = gen_name in
              let* radius = int_bound 0xffff in
              let* doc = gen_blob in
              return { Wire.name; radius; doc })
         in
         return (Wire.Catalog_reply entries));
        (let* text = gen_blob in
         return (Wire.Metrics_text_reply text));
        (let* ready = bool in
         let* pending = int_bound 10_000 in
         let* max_queue = int_bound 10_000 in
         let* uptime_ms = int_bound 1_000_000 in
         return (Wire.Health_reply { Wire.ready; pending; max_queue; uptime_ms }));
        (let* draining = bool in
         let* pending = int_bound 10_000 in
         return (Wire.Drain_reply { draining; pending }));
        (let* json = gen_blob in
         return (Wire.Trace_export_reply json));
        (let* json = gen_blob in
         return (Wire.Profile_export_reply json));
        (let* items = list_size (int_bound 6) gen_batch_item in
         return (Wire.Batch_reply items));
        (let* code =
           oneofl
             [
               Wire.Bad_frame;
               Wire.Unsupported_version;
               Wire.Unknown_scheme;
               Wire.Bad_graph;
               Wire.Bad_request;
               Wire.Overloaded;
               Wire.Deadline_exceeded;
               Wire.Internal;
               Wire.Unavailable;
             ]
         in
         let* message = gen_blob in
         return (Wire.Error_reply { code; message }));
      ])

(* every message round-trips in both protocol versions; the
   correlation id survives on v2 and is elided (decoding as 0) on v1,
   and an attached trace context survives on v2 and is dropped
   (degrading the hop to unsampled) on v1 *)
let gen_trace =
  QCheck.Gen.(
    let* trace_hi = int_bound 0x3FFF_FFFF_FFFF in
    let* trace_lo = int_bound 0x3FFF_FFFF_FFFF in
    let* parent_span = int_bound 0x3FFF_FFFF_FFFF in
    return { Wire.trace_hi; trace_lo; parent_span })

let gen_version_id =
  QCheck.Gen.(
    let* version = oneofl [ 1; 2 ] in
    let* id = if version = 1 then return 0 else int_bound 0x3FFF_FFFF in
    let* trace = opt gen_trace in
    return (version, id, trace))

let check_trace_echo ~version ~trace trace' =
  match (version, trace, trace') with
  | 1, _, None -> true (* v1 never carries a context *)
  | 2, None, None -> true
  | 2, Some t, Some t' -> Wire.equal_trace_context t t'
  | _ -> false

let request_roundtrip_prop =
  QCheck.Test.make ~name:"request roundtrip (v1 and v2)" ~count:300
    (QCheck.make QCheck.Gen.(pair gen_version_id gen_request))
    (fun ((version, id, trace), r) ->
      match
        Wire.decode_request (Wire.encode_request ~version ~id ?trace r)
      with
      | Ok (id', trace', r') ->
          id' = (if version = 1 then 0 else id)
          && check_trace_echo ~version ~trace trace'
          && Wire.equal_request r r'
      | Error msg -> QCheck.Test.fail_reportf "decode failed: %s" msg)

let response_roundtrip_prop =
  QCheck.Test.make ~name:"response roundtrip (v1 and v2)" ~count:300
    (QCheck.make QCheck.Gen.(pair gen_version_id gen_response))
    (fun ((version, id, trace), r) ->
      match
        Wire.decode_response (Wire.encode_response ~version ~id ?trace r)
      with
      | Ok (id', trace', r') ->
          id' = (if version = 1 then 0 else id)
          && check_trace_echo ~version ~trace trace'
          && Wire.equal_response r r'
      | Error msg -> QCheck.Test.fail_reportf "decode failed: %s" msg)

(* ------------------------------------------------------------------ *)
(* Adversarial frames. *)

let header_rejects () =
  let reject what s =
    match Wire.decode_header s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: header accepted" what
  in
  let frame = Wire.encode_request Wire.Stats in
  check "sanity: real frame parses" true
    (Result.is_ok (Wire.decode_header frame));
  reject "short" (String.sub frame 0 (Wire.header_bytes - 1));
  reject "bad magic" ("XC" ^ String.sub frame 2 (Wire.header_bytes - 2));
  let bad_version = Bytes.of_string (String.sub frame 0 Wire.header_bytes) in
  Bytes.set bad_version 2 '\x63';
  reject "unsupported version" (Bytes.to_string bad_version);
  (* length field claiming more than max_payload: must die at the
     header, before anyone allocates the payload *)
  let huge = Bytes.of_string (String.sub frame 0 Wire.header_bytes) in
  Bytes.set huge 4 '\xff';
  Bytes.set huge 5 '\xff';
  Bytes.set huge 6 '\xff';
  Bytes.set huge 7 '\xff';
  reject "oversized length" (Bytes.to_string huge)

let truncated_frames () =
  let frame =
    Wire.encode_request
      (Wire.Verify
         {
           scheme = "eulerian";
           graph6 = Graph6.encode (Builders.cycle 8);
           proof = Proof.of_list [ (0, Bits.of_bools [ true; false ]) ];
         })
  in
  for i = 0 to String.length frame - 1 do
    match Wire.decode_request (String.sub frame 0 i) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncation at %d bytes accepted" i
  done;
  (* trailing garbage after a complete frame must also be rejected *)
  check "trailing byte rejected" true
    (Result.is_error (Wire.decode_request (frame ^ "\x00")))

let payload_garbage_total_prop =
  QCheck.Test.make ~name:"payload decoders never raise" ~count:300
    QCheck.(
      triple (int_range 1 2) (int_range 0 255)
        (string_of_size (Gen.int_bound 64)))
    (fun (version, tag, payload) ->
      let no_raise what f =
        match f () with
        | (_ : (_, string) result) -> true
        | exception e ->
            QCheck.Test.fail_reportf "%s raised %s on v%d tag %d payload %S"
              what
              (Printexc.to_string e) version tag payload
      in
      no_raise "request" (fun () ->
          Wire.decode_request_payload ~version ~tag payload)
      && no_raise "response" (fun () ->
             Wire.decode_response_payload ~version ~tag payload))

(* hand-rolled frame: 'L' 'C' version tag u32-length payload *)
let raw_frame ~version ~tag payload =
  let b = Buffer.create (Wire.header_bytes + String.length payload) in
  Buffer.add_char b 'L';
  Buffer.add_char b 'C';
  Buffer.add_char b (Char.chr version);
  Buffer.add_char b (Char.chr tag);
  let len = String.length payload in
  Buffer.add_char b (Char.chr ((len lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((len lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((len lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (len land 0xff));
  Buffer.add_string b payload;
  Buffer.contents b

let cross_version_matrix () =
  (* a v2 endpoint accepts v1 frames: every request kind encodes and
     decodes in both versions, the id surviving only on v2 *)
  let requests =
    [
      Wire.Stats;
      Wire.Catalog;
      Wire.Metrics_text;
      Wire.Health;
      Wire.Drain { enable = true };
      Wire.Drain { enable = false };
      Wire.Prove { scheme = "eulerian"; graph6 = "A_" };
      Wire.Verify
        {
          scheme = "eulerian";
          graph6 = "A_";
          proof = Proof.of_list [ (0, Bits.of_bools [ true ]) ];
        };
      Wire.Forge { scheme = "eulerian"; graph6 = "A_"; max_bits = 4 };
    ]
  in
  List.iter
    (fun req ->
      List.iter
        (fun version ->
          let id = if version = 1 then 0 else 0x1234_5678_9abc in
          let frame = Wire.encode_request ~version ~id req in
          check_int "version byte on the wire" version (Char.code frame.[2]);
          match Wire.decode_request frame with
          | Error m -> Alcotest.failf "v%d decode failed: %s" version m
          | Ok (id', trace', req') ->
              check_int "echoed id" (if version = 1 then 0 else id) id';
              check "context-less frame decodes to no trace" true
                (trace' = None);
              check "request survives" true (Wire.equal_request req req'))
        [ 1; 2 ])
    requests;
  (* a v1 frame is byte-identical to what a v2 encoder emits minus the
     id prefix: same body, 8 fewer payload bytes *)
  let v1 = Wire.encode_request ~version:1 Wire.Stats in
  let v2 = Wire.encode_request ~version:2 ~id:5 Wire.Stats in
  check_int "v2 payload = v1 payload + id" (String.length v1 + Wire.id_bytes)
    (String.length v2)

let id_codec_edges () =
  let tag = Wire.request_tag Wire.Stats in
  let expect_error what frame =
    match Wire.decode_request frame with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: accepted" what
    | exception e ->
        Alcotest.failf "%s: raised %s" what (Printexc.to_string e)
  in
  (* a v2 payload shorter than the 8-byte id is a typed error *)
  expect_error "truncated request id" (raw_frame ~version:2 ~tag "\x00\x00\x01");
  (* the sign bit is not representable in a 63-bit OCaml int: reject *)
  expect_error "id out of the 63-bit range"
    (raw_frame ~version:2 ~tag "\xff\xff\xff\xff\xff\xff\xff\xff");
  (* unknown tags stay typed errors in both versions *)
  expect_error "unknown tag v1" (raw_frame ~version:1 ~tag:0x55 "");
  expect_error "unknown tag v2"
    (raw_frame ~version:2 ~tag:0x55 "\x00\x00\x00\x00\x00\x00\x00\x01");
  (* encoding guards are caller bugs, not wire input: they raise *)
  check "negative id raises" true
    (match Wire.encode_request ~version:2 ~id:(-1) Wire.Stats with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check "unknown version raises" true
    (match Wire.encode_request ~version:3 Wire.Stats with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* the largest representable id survives a v2 round trip *)
  let big = max_int in
  match Wire.decode_request (Wire.encode_request ~version:2 ~id:big Wire.Stats) with
  | Ok (id, _, Wire.Stats) -> check_int "max_int id" big id
  | Ok _ -> Alcotest.fail "wrong request back"
  | Error m -> Alcotest.failf "max_int id rejected: %s" m

let trace_context_edges () =
  let ctx =
    {
      Wire.trace_hi = 0x0123_4567_89ab;
      trace_lo = 0x0fed_cba9_8765;
      parent_span = 42;
    }
  in
  (* the context survives a v2 round trip in both directions *)
  (match
     Wire.decode_request (Wire.encode_request ~version:2 ~id:9 ~trace:ctx Wire.Stats)
   with
  | Ok (id, Some ctx', Wire.Stats) ->
      check_int "traced request id" 9 id;
      check "request context survives" true (Wire.equal_trace_context ctx ctx')
  | Ok _ -> Alcotest.fail "request trace context lost"
  | Error m -> Alcotest.failf "traced request rejected: %s" m);
  (match
     Wire.decode_response
       (Wire.encode_response ~version:2 ~id:9 ~trace:ctx
          (Wire.Trace_export_reply "{}"))
   with
  | Ok (id, Some ctx', Wire.Trace_export_reply "{}") ->
      check_int "traced response id" 9 id;
      check "response context survives" true (Wire.equal_trace_context ctx ctx')
  | Ok _ -> Alcotest.fail "response trace context lost"
  | Error m -> Alcotest.failf "traced response rejected: %s" m);
  (* the context costs exactly 24 payload bytes on v2 — and nothing on
     v1, whose frames stay byte-identical whether or not the caller
     attached one (old peers cannot tell tracing exists) *)
  let plain = Wire.encode_request ~version:2 ~id:9 Wire.Stats in
  let traced = Wire.encode_request ~version:2 ~id:9 ~trace:ctx Wire.Stats in
  check_int "context adds 24 bytes" (String.length plain + 24)
    (String.length traced);
  check "v1 drops the context byte-for-byte" true
    (String.equal
       (Wire.encode_request ~version:1 Wire.Stats)
       (Wire.encode_request ~version:1 ~trace:ctx Wire.Stats));
  (* adversarial frames: a flagged id word promising a context that is
     truncated, absent or out of range is a typed error, never a raise *)
  let tag = Wire.request_tag Wire.Stats in
  let expect_error what frame =
    match Wire.decode_request frame with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: accepted" what
    | exception e ->
        Alcotest.failf "%s: raised %s" what (Printexc.to_string e)
  in
  let flagged_id = "\x80\x00\x00\x00\x00\x00\x00\x07" in
  expect_error "flag set with no context bytes"
    (raw_frame ~version:2 ~tag flagged_id);
  expect_error "truncated trace context"
    (raw_frame ~version:2 ~tag (flagged_id ^ "\x00\x01"));
  expect_error "trace field with the sign bit set"
    (raw_frame ~version:2 ~tag
       (flagged_id ^ "\xff\xff\xff\xff\xff\xff\xff\xff"
      ^ String.make 16 '\x00'));
  (* encoder guard: negative trace fields are caller bugs and raise *)
  check "negative trace field raises" true
    (match
       Wire.encode_request ~version:2 ~id:1
         ~trace:{ Wire.trace_hi = -1; trace_lo = 0; parent_span = 0 }
         Wire.Stats
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Batch frames. *)

let c8 = lazy (Graph6.encode (Builders.cycle 8))

let mixed_batch () =
  Wire.Batch
    {
      graphs = [ Lazy.force c8; "A_" ];
      proofs = [ Proof.of_list [ (0, Bits.of_bools [ true; false ]) ] ];
      ops =
        [
          Wire.Op_prove { scheme = "eulerian"; graph = 0 };
          Wire.Op_verify { scheme = "eulerian"; graph = 1; proof = 0 };
          Wire.Op_forge { scheme = "bipartite"; graph = 0; max_bits = 4 };
          Wire.Op_prove { scheme = "eulerian"; graph = 0 };
        ];
    }

let batch_roundtrip () =
  let req = mixed_batch () in
  List.iter
    (fun version ->
      let id = if version = 1 then 0 else 42 in
      match Wire.decode_request (Wire.encode_request ~version ~id req) with
      | Error m -> Alcotest.failf "v%d batch decode failed: %s" version m
      | Ok (id', _, req') ->
          check_int "batch id" id id';
          check "batch survives" true (Wire.equal_request req req'))
    [ 1; 2 ];
  (* an empty batch is legal: zero graphs, zero ops *)
  let empty = Wire.Batch { graphs = []; proofs = []; ops = [] } in
  check "empty batch roundtrips" true
    (match Wire.decode_request (Wire.encode_request empty) with
    | Ok (_, _, r) -> Wire.equal_request empty r
    | Error _ -> false);
  (* and the reply side, one item of each kind *)
  let reply =
    Wire.Batch_reply
      [
        Wire.Item_proved (Some (Proof.of_list [ (3, Bits.of_bools [ true ]) ]));
        Wire.Item_verified { accepted = false; rejecting = [ 1; 4 ] };
        Wire.Item_forged { fooled = None; attempts = 7; best_rejections = 2 };
        Wire.Item_error { code = Wire.Deadline_exceeded; message = "late" };
      ]
  in
  check "batch reply roundtrips" true
    (match Wire.decode_response (Wire.encode_response reply) with
    | Ok (_, _, r) -> Wire.equal_response reply r
    | Error _ -> false)

let batch_truncations () =
  let frame = Wire.encode_request (mixed_batch ()) in
  for i = 0 to String.length frame - 1 do
    match Wire.decode_request (String.sub frame 0 i) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "batch truncation at %d bytes accepted" i
  done;
  check "batch trailing byte rejected" true
    (Result.is_error (Wire.decode_request (frame ^ "\x00")))

let batch_rejects () =
  let reject what frame =
    match Wire.decode_request frame with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: accepted" what
    | exception e -> Alcotest.failf "%s: raised %s" what (Printexc.to_string e)
  in
  (* an op pointing past the graph table must die in the decoder, not
     reach dispatch *)
  reject "graph index out of range"
    (Wire.encode_request
       (Wire.Batch
          {
            graphs = [ "A_" ];
            proofs = [];
            ops = [ Wire.Op_prove { scheme = "eulerian"; graph = 1 } ];
          }));
  (* likewise an op pointing past the proof table *)
  reject "proof index out of range"
    (Wire.encode_request
       (Wire.Batch
          {
            graphs = [ "A_" ];
            proofs = [];
            ops = [ Wire.Op_verify { scheme = "eulerian"; graph = 0; proof = 0 } ];
          }));
  let tag = Wire.request_tag (Wire.Batch { graphs = []; proofs = []; ops = [] }) in
  (* unknown op kind byte: 1 graph "A_", 0 proofs, 1 op of kind 9 *)
  reject "unknown op kind"
    (raw_frame ~version:1 ~tag
       "\x00\x01\x00\x00\x00\x02A_\x00\x00\x00\x01\x09\x00\x00\x00\x01x\x00\x00");
  (* inflated op count with no op bytes: the count guard must reject
     before any allocation *)
  reject "inflated op count"
    (raw_frame ~version:1 ~tag "\x00\x00\x00\x00\xff\xff");
  (* inflated proof count likewise *)
  reject "inflated proof count" (raw_frame ~version:1 ~tag "\x00\x00\xff\xff");
  (* and the graph count *)
  reject "inflated graph count" (raw_frame ~version:1 ~tag "\xff\xff");
  (* reply side: unknown per-op status byte *)
  let rtag = Wire.response_tag (Wire.Batch_reply []) in
  check "unknown item status rejected" true
    (Result.is_error
       (Wire.decode_response (raw_frame ~version:1 ~tag:rtag "\x00\x01\x09")))

(* Pin the profile-export frames deterministically (the QCheck
   roundtrips also draw them, but a shrunk seed could skip the arm):
   request 0x0C carries no payload, the reply carries one JSON blob,
   and both work on v1 — profiling predates no wire capability. *)
let profile_export_roundtrip () =
  List.iter
    (fun version ->
      (match
         Wire.decode_request
           (Wire.encode_request ~version ~id:7 Wire.Profile_export)
       with
      | Ok (_, _, Wire.Profile_export) -> ()
      | Ok _ -> Alcotest.failf "v%d: decoded to a different request" version
      | Error m -> Alcotest.failf "v%d: decode failed: %s" version m);
      let json = {|{"samples":3,"collapsed":"a;b 3\n"}|} in
      match
        Wire.decode_response
          (Wire.encode_response ~version ~id:7 (Wire.Profile_export_reply json))
      with
      | Ok (_, _, Wire.Profile_export_reply j) ->
          check_str "reply json survives" json j
      | Ok _ -> Alcotest.failf "v%d: decoded to a different response" version
      | Error m -> Alcotest.failf "v%d: reply decode failed: %s" version m)
    [ 1; 2 ]

let count_mismatch () =
  (* a Verify payload whose binding count claims more entries than the
     payload can hold must be rejected by the count guard, not by
     attempting a giant allocation *)
  let frame =
    Wire.encode_request
      (Wire.Verify
         { scheme = "x"; graph6 = "A_"; proof = Proof.of_list [] })
  in
  let b = Bytes.of_string frame in
  (* the binding count is the last u32 of this payload; inflate it *)
  Bytes.set b (Bytes.length b - 4) '\xff';
  Bytes.set b (Bytes.length b - 3) '\xff';
  check "inflated count rejected" true
    (Result.is_error (Wire.decode_request (Bytes.to_string b)))

let suite =
  ( "wire",
    [
      Alcotest.test_case "graph6 known vectors" `Quick graph6_known_vectors;
      Alcotest.test_case "graph6 roundtrip sizes" `Quick graph6_roundtrip_sizes;
      QCheck_alcotest.to_alcotest graph6_roundtrip_prop;
      Alcotest.test_case "graph6 rejects malformed" `Quick graph6_rejects;
      QCheck_alcotest.to_alcotest graph6_total_prop;
      QCheck_alcotest.to_alcotest request_roundtrip_prop;
      QCheck_alcotest.to_alcotest response_roundtrip_prop;
      Alcotest.test_case "header rejects malformed" `Quick header_rejects;
      Alcotest.test_case "truncated frames rejected" `Quick truncated_frames;
      QCheck_alcotest.to_alcotest payload_garbage_total_prop;
      Alcotest.test_case "cross-version matrix" `Quick cross_version_matrix;
      Alcotest.test_case "correlation id edge cases" `Quick id_codec_edges;
      Alcotest.test_case "trace context edge cases" `Quick trace_context_edges;
      Alcotest.test_case "batch roundtrip" `Quick batch_roundtrip;
      Alcotest.test_case "batch truncations rejected" `Quick batch_truncations;
      Alcotest.test_case "batch rejects malformed" `Quick batch_rejects;
      Alcotest.test_case "inflated count rejected" `Quick count_mismatch;
      Alcotest.test_case "profile export roundtrip" `Quick
        profile_export_roundtrip;
    ] )
