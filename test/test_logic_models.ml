(* Monadic Σ¹₁ (Section 7.5) and the model translations (Section 7.1),
   plus the weak/strong distinction (7.2). *)

open Test_util

let check = Alcotest.(check bool)
let of_g g = Instance.of_graph g

(* --- formulas --- *)

let well_formedness () =
  List.iter
    (fun s -> check (s.Formula.name ^ " well-formed") true (Formula.well_formed s))
    [ Sentences.two_colourable; Sentences.has_triangle;
      Sentences.has_degree_three; Sentences.is_cycle ];
  let bad = { Sentences.two_colourable with Formula.k = 0 } in
  check "set index out of range" false (Formula.well_formed bad)

let eval_agreement () =
  (* local evaluation on a big-enough view agrees with global *)
  let g = Random_graphs.connected_gnp (st 1) 9 0.35 in
  let sets _ v = v mod 2 = 0 in
  List.iter
    (fun (s : Formula.sentence) ->
      Graph.iter_nodes
        (fun y ->
          let x = if s.Formula.uses_x then Some (List.hd (Graph.nodes g)) else None in
          let view =
            View.make (of_g g) Proof.empty ~centre:y ~radius:s.Formula.locality
          in
          check
            (Printf.sprintf "%s local=global at %d" s.Formula.name y)
            (Eval.eval_global g sets ~x ~y s.Formula.phi)
            (Eval.eval_local view sets ~x s.Formula.phi))
        g)
    [ Sentences.two_colourable; Sentences.has_degree_three; Sentences.is_cycle ]

let holds_matches_reference () =
  let graphs =
    [
      Builders.cycle 5; Builders.cycle 6; Builders.path 4; Builders.star 3;
      Builders.complete 4; Random_graphs.connected_gnp (st 2) 6 0.4;
      Random_graphs.tree (st 3) 6;
    ]
  in
  List.iter
    (fun g ->
      check "two-colourable" (Sentences.two_colourable_ref g)
        (Sigma11.holds Sentences.two_colourable g);
      check "has-triangle" (Sentences.has_triangle_ref g)
        (Sigma11.holds Sentences.has_triangle g);
      check "degree-three" (Sentences.has_degree_three_ref g)
        (Sigma11.holds Sentences.has_degree_three g);
      check "is-cycle" (Sentences.is_cycle_ref g)
        (Sigma11.holds Sentences.is_cycle g);
      if Graph.n g <= 6 then
        check "three-colourable" (Sentences.three_colourable_ref g)
          (Sigma11.holds Sentences.three_colourable g))
    graphs

(* --- T1a-12: compiled Σ¹₁ schemes --- *)

let sigma11_schemes () =
  let sch_2col = Sigma11.scheme Sentences.two_colourable in
  assert_complete sch_2col [ of_g (Builders.cycle 6); of_g (Builders.path 5) ];
  assert_refuses sch_2col [ of_g (Builders.cycle 5) ];
  assert_sound_random ~max_bits:4 sch_2col [ of_g (Builders.cycle 5) ];
  let sch_tri = Sigma11.scheme Sentences.has_triangle in
  assert_complete sch_tri [ of_g (Builders.complete 4); of_g (Builders.wheel 5) ];
  assert_refuses sch_tri [ of_g (Builders.cycle 6) ];
  assert_sound_random ~max_bits:6 sch_tri [ of_g (Builders.cycle 6) ];
  assert_sound_adversarial ~max_bits:6 sch_tri [ of_g (Builders.cycle 6) ];
  let sch_cycle = Sigma11.scheme Sentences.is_cycle in
  assert_complete sch_cycle [ of_g (Builders.cycle 7) ];
  assert_refuses sch_cycle [ of_g (Builders.path 6) ];
  (* 3-colourability needs two monadic sets: instances stay tiny
     because the witness search is 2^(2n) *)
  let sch_3col = Sigma11.scheme Sentences.three_colourable in
  assert_complete sch_3col [ of_g (Builders.cycle 5); of_g (Builders.complete 3) ];
  assert_refuses sch_3col [ of_g (Builders.complete 4) ];
  assert_sound_random ~max_bits:2 sch_3col [ of_g (Builders.complete 4) ]

(* --- Section 7.3 is covered in the LogLCP suite; Section 7.1: --- *)

let ports_basic () =
  let g = Builders.star 3 in
  let port = Ports.assignment g in
  Alcotest.(check int) "centre port 1" 1 (port 0 1);
  Alcotest.(check int) "centre port 3" 3 (port 0 3);
  Alcotest.(check int) "port_of inverts" 2 (Ports.port_of g 0 (port 0 2))

let relabelling_invariance () =
  (* Schemes whose proofs carry all id-dependence are verdict-invariant
     under renaming (the proof is renamed along). *)
  let g = Builders.cycle 8 in
  let inst = of_g g in
  List.iter
    (fun (scheme : Scheme.t) ->
      match Scheme.prove_and_check scheme inst with
      | `Accepted proof ->
          check (scheme.Scheme.name ^ " invariant") true
            (Ports.invariant_under_relabelling (st 4) scheme inst proof ~factor:3)
      | _ -> Alcotest.fail "prover failed")
    [ Bipartite_scheme.scheme; Counting.even_cycle ]
(* Note: id-carrying schemes (tree certificates) are deliberately NOT
   invariant — their proofs embed identifiers that a renaming leaves
   stale. That asymmetry is the M1/M2 gap of Section 7.1; the
   [m2_of_m1] translation below removes it. *)

let m1_of_m2 () =
  (* The inner scheme needs a leader: leader election's strong scheme
     consumes leader-marked instances; lifting it yields a scheme for
     plain connected graphs. *)
  let lifted = Translate.m1_of_m2 Leader_election.strong in
  assert_complete ~sizes_ok:false lifted
    [ of_g (Builders.cycle 8); of_g (Builders.grid 3 3);
      of_g (Random_graphs.tree (st 5) 9) ];
  assert_sound_random ~max_bits:10 lifted
    [ of_g (Graph.union_disjoint (Builders.cycle 3) (Canonical.shifted (Builders.cycle 3) 5)) ]

let m2_of_m1 () =
  (* Lift the M1 odd-n scheme into the port-numbering model: instances
     carry a leader mark, proofs carry DFS-interval identifiers. *)
  let lifted = Translate.m2_of_m1 Counting.odd_n in
  let with_leader g = Leader_election.mark_leader (of_g g) (List.hd (Graph.nodes g)) in
  assert_complete ~sizes_ok:false lifted
    [ with_leader (Builders.cycle 7); with_leader (Builders.grid 3 3);
      with_leader (Random_graphs.tree (st 6) 9) ];
  assert_refuses lifted [ with_leader (Builders.cycle 8) ];
  assert_sound_random ~max_bits:10 lifted [ with_leader (Builders.cycle 6) ];
  (* The lifted verifier never *reads* true identifiers: renaming the
     instance while keeping the proof's DFS ids gives the same verdict
     vector. *)
  let inst = with_leader (Builders.cycle 7) in
  (match Scheme.prove_and_check lifted inst with
  | `Accepted proof ->
      check "verdicts invariant under renaming" true
        (Ports.invariant_under_relabelling (st 7) lifted inst proof ~factor:4)
  | _ -> Alcotest.fail "lifted prover failed")

let dfs_labels_local_checks () =
  let g = Random_graphs.tree (st 8) 10 in
  let root = List.hd (Graph.nodes g) in
  let intervals = Dfs_labels.assign g ~root in
  let interval v = List.assoc v intervals in
  let parent = Hashtbl.create 16 in
  List.iter (fun (v, p) -> Hashtbl.replace parent v p) (Traversal.spanning_tree g root);
  Graph.iter_nodes
    (fun v ->
      let children =
        List.filter (fun u -> Hashtbl.find_opt parent u = Some v) (Graph.neighbours g v)
      in
      check
        (Printf.sprintf "dfs consistency at %d" v)
        true
        (Dfs_labels.check_locally ~mine:(interval v)
           ~children:(List.map interval children)
           ~is_root:(v = root)))
    g;
  (* uniqueness of the derived identifiers *)
  let ids = List.map (fun (_, i) -> Dfs_labels.to_id i) intervals in
  check "ids distinct" true (List.length (List.sort_uniq compare ids) = List.length ids)

let dfs_labels_reject_tampering () =
  let g = Builders.path 3 in
  let intervals = Dfs_labels.assign g ~root:0 in
  let interval v = List.assoc v intervals in
  (* shifting a leaf interval breaks the chain rule at its parent *)
  let fake = { Dfs_labels.disc = (interval 2).Dfs_labels.disc + 1;
               fin = (interval 2).Dfs_labels.fin + 1 } in
  check "tampered child caught" false
    (Dfs_labels.check_locally ~mine:(interval 1) ~children:[ fake ] ~is_root:false)

(* --- Section 7.2: weak vs strong --- *)

let weak_vs_strong () =
  let g = Builders.cycle 9 in
  (* strong: every choice of leader is certifiable *)
  List.iter
    (fun leader ->
      assert_complete Leader_election.strong
        [ Leader_election.mark_leader (of_g g) leader ])
    (Graph.nodes g);
  (* weak: the prover picks its own leader on the unlabelled instance *)
  assert_complete Leader_election.weak [ of_g g ];
  (* and weak proofs are within a constant of strong ones *)
  let s = proof_size Leader_election.strong (Leader_election.mark_leader (of_g g) 0) in
  let w = proof_size Leader_election.weak (of_g g) in
  check "weak ~ strong size" true (abs (w - s) <= 8)

(* --- the M1-only triangle-freeness verifier (7.1's example) --- *)

let triangle_free_m1 () =
  assert_complete Ports.triangle_free_m1
    [ of_g (Builders.cycle 9); of_g (Builders.grid 3 3) ];
  assert_refuses Ports.triangle_free_m1 [ of_g (Builders.complete 3) ];
  check "triangle rejected locally" false
    (Scheme.accepts Ports.triangle_free_m1 (of_g (Builders.wheel 5)) Proof.empty)

let suite =
  ( "logic-models",
    [
      Alcotest.test_case "formula well-formedness" `Quick well_formedness;
      Alcotest.test_case "local = global evaluation" `Quick eval_agreement;
      Alcotest.test_case "Sigma11.holds matches references" `Slow holds_matches_reference;
      Alcotest.test_case "T1a-12 compiled sigma11 schemes" `Slow sigma11_schemes;
      Alcotest.test_case "port numbering" `Quick ports_basic;
      Alcotest.test_case "relabelling invariance" `Quick relabelling_invariance;
      Alcotest.test_case "7.1 m1-of-m2" `Quick m1_of_m2;
      Alcotest.test_case "7.1 m2-of-m1" `Quick m2_of_m1;
      Alcotest.test_case "DFS labels consistent" `Quick dfs_labels_local_checks;
      Alcotest.test_case "DFS labels reject tampering" `Quick dfs_labels_reject_tampering;
      Alcotest.test_case "7.2 weak vs strong" `Quick weak_vs_strong;
      Alcotest.test_case "7.1 triangle-freeness in M1" `Quick triangle_free_m1;
    ] )
