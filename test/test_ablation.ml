(* Design ablations recorded in DESIGN.md: what breaks when a scheme
   drops one of its checks. *)

open Test_util

let check = Alcotest.(check bool)

let one_sided_pointers () =
  (* complete on genuine yes-instances *)
  let chain = Digraph.of_arcs [ (0, 1); (1, 2); (2, 3) ] in
  assert_complete Truncated.directed_reach_one_sided
    [ St.of_digraph chain ~s:0 ~t:3 ];
  (* the explicit counterexample: s feeds a 3-cycle, t unreachable *)
  let inst, forged = Truncated.one_sided_fooling () in
  (match St.find inst with
  | Some (s, t) ->
      let g = Instance.graph inst in
      let d =
        Graph.fold_edges
          (fun u v acc ->
            let acc = if Instance.arc_exists inst u v then Digraph.add_arc acc u v else acc in
            if Instance.arc_exists inst v u then Digraph.add_arc acc v u else acc)
          g
          (List.fold_left Digraph.add_node Digraph.empty (Graph.nodes g))
      in
      check "t is genuinely unreachable" false (List.mem t (Digraph.reachable d s))
  | None -> Alcotest.fail "instance lost its terminals");
  check "one-sided scheme is FOOLED" true
    (Scheme.accepts Truncated.directed_reach_one_sided inst forged);
  (* the mutual-pointer scheme is not fooled: prover refuses, random
     and hill-climbing forging fail *)
  assert_refuses Reachability.directed_reach_pointer [ inst ];
  assert_sound_random ~samples:300 ~max_bits:8 Reachability.directed_reach_pointer
    [ inst ];
  assert_sound_adversarial ~max_bits:6 Reachability.directed_reach_pointer [ inst ]

let weak_vs_strong_sizes () =
  (* ablation: letting the prover choose the solution does not buy more
     than a constant number of bits for leader election *)
  List.iter
    (fun n ->
      let g = Builders.cycle n in
      let strong_bits =
        proof_size Leader_election.strong
          (Leader_election.mark_leader (Instance.of_graph g) 0)
      in
      let weak_bits = proof_size Leader_election.weak (Instance.of_graph g) in
      check
        (Printf.sprintf "weak within constant of strong at n=%d" n)
        true
        (abs (weak_bits - strong_bits) <= 8))
    [ 8; 32; 128 ]

let counter_modulus_parity () =
  (* ablation: the odd-n counter scheme needs an even modulus — with
     2 bits (m = 4) parity survives; the scheme built on an odd-ish
     modulus cannot even be expressed here (mod_of_bits rejects < 2),
     but the even-m completeness across cycle lengths is worth pinning
     down, including lengths not divisible by m. *)
  List.iter
    (fun n ->
      assert_complete (Truncated.odd_n_cycle ~bits:2)
        [ Instance.of_graph (Builders.cycle n) ])
    [ 7; 9; 11; 13; 15; 17 ];
  List.iter
    (fun n ->
      assert_refuses (Truncated.odd_n_cycle ~bits:2)
        [ Instance.of_graph (Builders.cycle n) ])
    [ 8; 10; 12 ]

let chordless_paths_matter () =
  (* ablation: the s-t reachability verifier counts marked neighbours,
     which only works because the prover marks a *chordless* path. A
     path with a chord is rejected — the honest prover never emits
     one, but this pins the invariant down. *)
  let g = Graph.of_edges [ (0, 1); (1, 2); (2, 3); (0, 2) ] in
  let inst = St.of_graph g ~s:0 ~t:3 in
  (* mark the chorded path 0-1-2-3: node 2 sees three marked
     neighbours? no — 0,1,3 marked and adjacent: 2 has marked
     neighbours {1, 3, 0} = 3 ≠ 2: reject *)
  let chorded =
    Proof.of_list
      [ (0, Bits.one_bit true); (1, Bits.one_bit true); (2, Bits.one_bit true);
        (3, Bits.one_bit true) ]
  in
  check "chorded marking rejected" false
    (Scheme.accepts Reachability.undirected_reach inst chorded);
  (* the prover's shortest path avoids the trap *)
  assert_complete Reachability.undirected_reach [ inst ]

let suite =
  ( "ablations",
    [
      Alcotest.test_case "one-sided vs mutual pointers" `Quick one_sided_pointers;
      Alcotest.test_case "weak vs strong proof sizes" `Quick weak_vs_strong_sizes;
      Alcotest.test_case "counter modulus parity" `Quick counter_modulus_parity;
      Alcotest.test_case "chordless paths matter" `Quick chordless_paths_matter;
    ] )
