let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let st seed = Random.State.make [| seed |]

let automorphism_counts () =
  check_int "path P4" 2 (Automorphism.count_automorphisms (Builders.path 4));
  check_int "cycle C5 (dihedral)" 10 (Automorphism.count_automorphisms (Builders.cycle 5));
  check_int "K4 (symmetric group)" 24 (Automorphism.count_automorphisms (Builders.complete 4));
  check_int "star K1,3" 6 (Automorphism.count_automorphisms (Builders.star 3));
  check_int "petersen" 120 (Automorphism.count_automorphisms Builders.petersen)

let asymmetric_graphs () =
  (* The smallest asymmetric tree has 7 nodes. *)
  check "paths are symmetric" true (Automorphism.is_symmetric (Builders.path 5));
  let smallest_asymmetric_tree =
    (* node 1 carries three pairwise non-isomorphic branches: a leaf,
       a 2-path, and a 3-path *)
    Graph.of_edges [ (0, 1); (1, 2); (2, 3); (3, 4); (1, 5); (5, 6) ]
  in
  check "7-node asymmetric tree" true
    (Automorphism.is_asymmetric smallest_asymmetric_tree)

let automorphism_validity () =
  List.iter
    (fun g ->
      match Automorphism.nontrivial_automorphism g with
      | None -> ()
      | Some mapping ->
          check "valid automorphism" true (Automorphism.is_automorphism g mapping);
          check "non-trivial" true (List.exists (fun (u, v) -> u <> v) mapping))
    [ Builders.cycle 6; Builders.grid 2 3; Random_graphs.tree (st 3) 9 ]

let fixpoint_free () =
  check "C6 has fixpoint-free" true
    (Automorphism.has_fixpoint_free_symmetry (Builders.cycle 6));
  check "P3 has none (centre fixed)" false
    (Automorphism.has_fixpoint_free_symmetry (Builders.path 3));
  check "P2 swaps" true (Automorphism.has_fixpoint_free_symmetry (Builders.path 2));
  check "star fixes centre" false
    (Automorphism.has_fixpoint_free_symmetry (Builders.star 4))

let canonical_forms () =
  let g1 = Builders.cycle 5 in
  let g2 = Graph.relabel g1 (fun v -> ((v * 3) mod 5) + 20) in
  check "isomorphic keys equal" true
    (Canonical.canonical_key g1 = Canonical.canonical_key g2);
  check "canonical forms equal" true
    (Graph.equal (Canonical.canonical_form g1) (Canonical.canonical_form g2));
  check "different graphs differ" false
    (Canonical.canonical_key (Builders.cycle 6) = Canonical.canonical_key (Builders.path 6));
  Alcotest.(check (list int))
    "canonical ids are 1..n" [ 1; 2; 3; 4; 5 ]
    (Graph.nodes (Canonical.canonical_form g1))

let qcheck_canonical =
  QCheck.Test.make ~name:"canonical key is relabelling-invariant" ~count:60
    QCheck.(pair (int_range 2 7) (int_bound 1_000_000))
    (fun (n, seed) ->
      let rnd = Random.State.make [| seed |] in
      let g = Random_graphs.gnp rnd n 0.5 in
      let g' = Random_graphs.permuted_ids rnd ~factor:3 g in
      Canonical.canonical_key g = Canonical.canonical_key g')

let enumeration_counts () =
  (* numbers of graphs up to isomorphism: 1, 2, 4, 11, 34, 156 *)
  check_int "graphs on 1" 1 (List.length (Enumerate.all_graphs 1));
  check_int "graphs on 2" 2 (List.length (Enumerate.all_graphs 2));
  check_int "graphs on 3" 4 (List.length (Enumerate.all_graphs 3));
  check_int "graphs on 4" 11 (List.length (Enumerate.all_graphs 4));
  check_int "graphs on 5" 34 (List.length (Enumerate.all_graphs 5));
  (* connected: 1, 1, 2, 6, 21 *)
  check_int "connected on 4" 6 (List.length (Enumerate.connected_graphs 4));
  check_int "connected on 5" 21 (List.length (Enumerate.connected_graphs 5));
  (* asymmetric connected: none below 6 nodes, eight on 6 *)
  check_int "asymmetric on 5" 0 (List.length (Enumerate.asymmetric_connected 5));
  check_int "asymmetric on 6" 8 (List.length (Enumerate.asymmetric_connected 6))

let sampled_asymmetric () =
  let sample = Enumerate.sample_asymmetric_connected (st 5) ~n:7 ~count:20 ~attempts:4000 in
  check "found some" true (List.length sample >= 10);
  List.iter
    (fun g ->
      check "connected" true (Traversal.is_connected g);
      check "asymmetric" true (Automorphism.is_asymmetric g))
    sample;
  let keys = List.map Canonical.canonical_key sample in
  check "pairwise non-isomorphic" true
    (List.length (List.sort_uniq compare keys) = List.length keys)

let rooted_tree_counts () =
  (* OEIS A000081: 1 1 2 4 9 20 48 115 286 *)
  List.iter
    (fun (k, expected) ->
      check_int (Printf.sprintf "rooted trees %d" k) expected
        (Tree_enum.count_rooted_trees k))
    [ (1, 1); (2, 1); (3, 2); (4, 4); (5, 9); (6, 20); (7, 48); (8, 115) ]

let rooted_tree_structures () =
  List.iter
    (fun (t : Tree_enum.rooted) ->
      check "is tree" true (Tree_enum.is_tree t.tree);
      check_int "root is 0" 0 t.root)
    (Tree_enum.rooted_trees 6);
  let codes =
    List.map
      (fun (t : Tree_enum.rooted) -> Tree_enum.canonical_code t.tree t.root)
      (Tree_enum.rooted_trees 7)
  in
  check "codes distinct" true
    (List.length (List.sort_uniq compare codes) = List.length codes)

let beineke () =
  let fs = Line_graph.forbidden_subgraphs () in
  check_int "exactly nine" 9 (List.length fs);
  (* the first (smallest) is the claw *)
  check "claw present" true
    (List.exists (fun g -> Subgraph_iso.are_isomorphic g (Builders.star 3)) fs);
  (* every forbidden graph is minimal: removing any node leaves a line graph *)
  List.iter
    (fun g ->
      check "not a line graph" false (Line_graph.is_line_graph_krausz g);
      List.iter
        (fun v ->
          check "minimal" true (Line_graph.is_line_graph_krausz (Graph.remove_node g v)))
        (Graph.nodes g))
    fs

let line_graph_agreement () =
  (* Krausz test and Beineke test agree. *)
  let cases =
    [
      Builders.cycle 6;
      Builders.star 3;
      Builders.complete 4;
      Builders.path 5;
      Line_graph.of_root_graph (Builders.star 4);
      Line_graph.of_root_graph Builders.petersen;
      Builders.wheel 5;
      Random_graphs.gnp (st 17) 8 0.4;
      Random_graphs.gnp (st 18) 9 0.3;
    ]
  in
  List.iter
    (fun g ->
      check "Krausz = Beineke" true
        (Bool.equal (Line_graph.is_line_graph_krausz g) (Line_graph.is_line_graph g)))
    cases

let line_graphs_of_roots () =
  (* L(G) of any root graph is a line graph. *)
  List.iter
    (fun root ->
      check "line graph recognised" true
        (Line_graph.is_line_graph (Line_graph.of_root_graph root)))
    [ Builders.cycle 5; Builders.path 6; Builders.star 4; Builders.complete 4;
      Random_graphs.tree (st 23) 8 ]

let graph_codec () =
  List.iter
    (fun g ->
      let g' = Graph_code.decode (Graph_code.encode g) in
      check "codec roundtrip" true (Graph.equal g g'))
    [
      Builders.cycle 9;
      Builders.complete 5;
      Random_graphs.permuted_ids (st 3) ~factor:5 (Builders.grid 3 3);
      Graph.add_node Graph.empty 0;
    ]

let qcheck_graph_codec =
  QCheck.Test.make ~name:"graph codec roundtrips" ~count:80
    QCheck.(pair (int_range 1 10) (int_bound 1_000_000))
    (fun (n, seed) ->
      let rnd = Random.State.make [| seed |] in
      let g = Random_graphs.permuted_ids rnd ~factor:4 (Random_graphs.gnp rnd n 0.4) in
      Graph.equal g (Graph_code.decode (Graph_code.encode g)))

let tree_codec () =
  List.iter
    (fun k ->
      List.iter
        (fun (t : Tree_enum.rooted) ->
          let code = Tree_code.encode_structure t.tree ~root:t.root in
          check_int "code length" (2 * (Graph.n t.tree - 1)) (Bits.length code);
          let t' = Tree_code.decode_structure code in
          (* decoded tree is isomorphic as a rooted tree *)
          check "rooted-isomorphic" true
            (Tree_enum.canonical_code t.tree t.root
            = Tree_enum.canonical_code t'.tree t'.root))
        (Tree_enum.rooted_trees k))
    [ 1; 2; 5; 7 ]

let tree_positions () =
  let t = Random_graphs.tree (st 31) 12 in
  let order = Tree_code.traversal t ~root:(List.hd (Graph.nodes t)) in
  check_int "traversal covers" 12 (List.length order);
  check "positions invert traversal" true
    (List.for_all
       (fun v ->
         List.nth order (Tree_code.position_of t ~root:(List.hd (Graph.nodes t)) v) = v)
       (Graph.nodes t))

let suite =
  ( "symmetry-enumeration",
    [
      Alcotest.test_case "automorphism counts" `Quick automorphism_counts;
      Alcotest.test_case "asymmetric graphs" `Quick asymmetric_graphs;
      Alcotest.test_case "automorphism validity" `Quick automorphism_validity;
      Alcotest.test_case "fixpoint-free" `Quick fixpoint_free;
      Alcotest.test_case "canonical forms" `Quick canonical_forms;
      QCheck_alcotest.to_alcotest qcheck_canonical;
      Alcotest.test_case "enumeration counts" `Quick enumeration_counts;
      Alcotest.test_case "sampled asymmetric" `Quick sampled_asymmetric;
      Alcotest.test_case "rooted tree counts (A000081)" `Quick rooted_tree_counts;
      Alcotest.test_case "rooted tree structures" `Quick rooted_tree_structures;
      Alcotest.test_case "Beineke's nine graphs, derived" `Slow beineke;
      Alcotest.test_case "line-graph tests agree" `Slow line_graph_agreement;
      Alcotest.test_case "line graphs of roots" `Slow line_graphs_of_roots;
      Alcotest.test_case "graph codec" `Quick graph_codec;
      QCheck_alcotest.to_alcotest qcheck_graph_codec;
      Alcotest.test_case "tree codec" `Quick tree_codec;
      Alcotest.test_case "tree positions" `Quick tree_positions;
    ] )
