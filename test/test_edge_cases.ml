(* Degenerate instances, malformed proofs, and API invariants. A
   malformed proof must be *rejected*, never crash the verifier — the
   adversary controls every proof bit. *)

let check = Alcotest.(check bool)

let garbage_proofs_rejected_not_crashing () =
  let st = Random.State.make [| 99 |] in
  List.iter
    (fun (e : Catalog.entry) ->
      match e.Catalog.yes st 8 with
      | None -> ()
      | Some inst ->
          let g = Instance.graph inst in
          (* long random garbage at every node *)
          for trial = 1 to 5 do
            let proof =
              Graph.fold_nodes
                (fun v p -> Proof.set p v (Bits.random st (20 + trial)))
                g Proof.empty
            in
            (* must return a verdict (never raise) *)
            match Scheme.decide e.Catalog.scheme inst proof with
            | Scheme.Accept | Scheme.Reject _ -> ()
          done)
    Catalog.all;
  check "no verifier crashed on garbage" true true

let truncated_proofs_rejected () =
  (* cutting a valid proof mid-field must be caught by the decoder *)
  let inst = Instance.of_graph (Builders.cycle 9) in
  match Scheme.prove_and_check Counting.odd_n inst with
  | `Accepted proof ->
      let truncated = Proof.truncate 3 proof in
      check "truncated proof rejected" false
        (Scheme.accepts Counting.odd_n inst truncated)
  | _ -> Alcotest.fail "prover failed"

let single_node () =
  let k1 = Instance.of_graph (Graph.add_node Graph.empty 5) in
  (* Eulerian: degree 0 is even *)
  check "K1 eulerian" true (Scheme.accepts Eulerian.scheme k1 Proof.empty);
  (* bipartite: trivially *)
  (match Scheme.prove_and_check Bipartite_scheme.scheme k1 with
  | `Accepted _ -> ()
  | _ -> Alcotest.fail "K1 should be bipartite");
  (* counting: n = 1 is odd *)
  (match Scheme.prove_and_check Counting.odd_n k1 with
  | `Accepted _ -> ()
  | _ -> Alcotest.fail "K1 has odd n");
  (* leader: the node itself *)
  match
    Scheme.prove_and_check Leader_election.strong (Leader_election.mark_leader k1 5)
  with
  | `Accepted _ -> ()
  | _ -> Alcotest.fail "K1 leader election"

let two_nodes () =
  let p2 = Instance.of_graph (Builders.path 2) in
  (match Scheme.prove_and_check Bipartite_scheme.scheme p2 with
  | `Accepted proof -> check "1 bit" true (Proof.size proof <= 1)
  | _ -> Alcotest.fail "P2 bipartite");
  (* P2 is a tree with a fixpoint-free swap *)
  match Scheme.prove_and_check Tree_universal.fixpoint_free_symmetry p2 with
  | `Accepted _ -> ()
  | _ -> Alcotest.fail "P2 has the swap"

let instance_invariants () =
  let g = Builders.path 3 in
  let inst = Instance.of_graph g in
  Alcotest.check_raises "unknown node label"
    (Invalid_argument "Instance.with_node_label: unknown node") (fun () ->
      ignore (Instance.with_node_label inst 99 (Bits.of_string "1")));
  Alcotest.check_raises "non-edge label"
    (Invalid_argument "Instance.with_edge_label: not an edge") (fun () ->
      ignore (Instance.with_edge_label inst 0 2 (Bits.of_string "1")));
  Alcotest.check_raises "flagging a non-edge"
    (Invalid_argument "Instance.flag_edges: not an edge") (fun () ->
      ignore (Instance.flag_edges inst [ (0, 2) ]))

let view_radius_zero () =
  let g = Builders.cycle 5 in
  let view = View.make (Instance.of_graph g) Proof.empty ~centre:2 ~radius:0 in
  check "alone" true (Graph.nodes (View.graph view) = [ 2 ]);
  check "no neighbours" true (View.neighbours view 2 = []);
  check "boundary" true (View.on_boundary view 2)

let relabel_digraph_orientation () =
  (* relabelling must keep arc orientations straight even when the
     (min, max) normalisation flips *)
  let d = Digraph.of_arcs [ (1, 2) ] in
  let inst = Instance.of_digraph d in
  (* swap ids so 1 < 2 becomes 10 > 5 *)
  let inst' = Instance.relabel inst (fun v -> if v = 1 then 10 else 5) in
  check "arc follows relabelling" true (Instance.arc_exists inst' 10 5);
  check "no reverse arc" false (Instance.arc_exists inst' 5 10)

let empty_proof_is_total () =
  let g = Builders.cycle 4 in
  let view = View.make (Instance.of_graph g) Proof.empty ~centre:0 ~radius:1 in
  check "empty everywhere" true (Bits.equal (View.proof_of view 1) Bits.empty)

let gluing_guards () =
  Alcotest.check_raises "odd_cycles needs odd n"
    (Invalid_argument "Gluing.odd_cycles: need odd n >= 7") (fun () ->
      ignore (Gluing.odd_cycles ~n:8));
  Alcotest.check_raises "matching_cycles needs odd n"
    (Invalid_argument "Gluing.matching_cycles: need odd n >= 7") (fun () ->
      ignore (Gluing.matching_cycles ~n:8))

let scheme_guards () =
  Alcotest.check_raises "colcp0 wants LCP(0)"
    (Invalid_argument "Colcp0.complement: inner scheme must be LCP(0)") (fun () ->
      ignore (Colcp0.complement Bipartite_scheme.scheme));
  Alcotest.check_raises "negative radius"
    (Invalid_argument "Scheme.make: negative radius") (fun () ->
      ignore
        (Scheme.make ~name:"x" ~radius:(-1)
           ~size_bound:(fun _ -> 0)
           ~prover:(fun _ -> None)
           ~verifier:(fun _ -> true)))

let suite =
  ( "edge-cases",
    [
      Alcotest.test_case "garbage proofs never crash" `Slow
        garbage_proofs_rejected_not_crashing;
      Alcotest.test_case "truncated proofs rejected" `Quick truncated_proofs_rejected;
      Alcotest.test_case "single node" `Quick single_node;
      Alcotest.test_case "two nodes" `Quick two_nodes;
      Alcotest.test_case "instance invariants" `Quick instance_invariants;
      Alcotest.test_case "radius-0 views" `Quick view_radius_zero;
      Alcotest.test_case "digraph relabelling" `Quick relabel_digraph_orientation;
      Alcotest.test_case "empty proof is total" `Quick empty_proof_is_total;
      Alcotest.test_case "gluing guards" `Quick gluing_guards;
      Alcotest.test_case "scheme guards" `Quick scheme_guards;
    ] )
