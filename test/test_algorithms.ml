let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let st seed = Random.State.make [| seed |]

let arb_graph =
  QCheck.make
    ~print:(fun g -> Format.asprintf "%a" Graph.pp g)
    QCheck.Gen.(
      let* n = int_range 1 12 in
      let* p = float_range 0.1 0.7 in
      let* seed = int_bound 1_000_000 in
      return (Random_graphs.gnp (Random.State.make [| seed |]) n p))

let arb_bipartite =
  QCheck.make
    ~print:(fun g -> Format.asprintf "%a" Graph.pp g)
    QCheck.Gen.(
      let* a = int_range 1 7 in
      let* b = int_range 1 7 in
      let* p = float_range 0.2 0.8 in
      let* seed = int_bound 1_000_000 in
      return (Random_graphs.bipartite (Random.State.make [| seed |]) a b p))

(* --- bipartiteness --- *)

let bipartite_basic () =
  check "even cycle" true (Bipartite.is_bipartite (Builders.cycle 8));
  check "odd cycle" false (Bipartite.is_bipartite (Builders.cycle 7));
  check "tree" true (Bipartite.is_bipartite (Random_graphs.tree (st 1) 20));
  check "petersen" false (Bipartite.is_bipartite Builders.petersen);
  check "K33" true (Bipartite.is_bipartite (Builders.complete_bipartite 3 3))

let odd_cycle_witness () =
  List.iter
    (fun g ->
      match Bipartite.odd_cycle g with
      | None -> check "is bipartite" true (Bipartite.is_bipartite g)
      | Some cycle ->
          check "odd length" true (List.length cycle mod 2 = 1);
          check "at least 3" true (List.length cycle >= 3);
          (* distinct nodes, consecutive adjacency, closing edge *)
          check "distinct" true
            (List.length (List.sort_uniq Int.compare cycle) = List.length cycle);
          let arr = Array.of_list cycle in
          let n = Array.length arr in
          for i = 0 to n - 1 do
            check "edge" true (Graph.mem_edge g arr.(i) arr.((i + 1) mod n))
          done)
    [
      Builders.cycle 9;
      Builders.petersen;
      Builders.wheel 5;
      Builders.complete 5;
      Random_graphs.connected_gnp (st 7) 15 0.3;
    ]

(* --- euler --- *)

let euler_basic () =
  check "cycle eulerian" true (Euler.is_eulerian (Builders.cycle 6));
  check "path not" false (Euler.is_eulerian (Builders.path 4));
  check "K5 eulerian" true (Euler.is_eulerian (Builders.complete 5));
  check "K4 not" false (Euler.is_eulerian (Builders.complete 4))

let euler_circuit () =
  List.iter
    (fun g ->
      match Euler.eulerian_circuit g with
      | None -> check "not eulerian" false (Euler.is_eulerian g)
      | Some walk ->
          check_int "walk length" (Graph.m g + 1) (List.length walk);
          let rec edges_ok = function
            | a :: (b :: _ as rest) -> Graph.mem_edge g a b && edges_ok rest
            | _ -> true
          in
          check "consecutive edges" true (edges_ok walk);
          check "closed" true (List.hd walk = List.nth walk (Graph.m g));
          (* every edge used exactly once *)
          let used = Hashtbl.create 16 in
          let rec record = function
            | a :: (b :: _ as rest) ->
                let k = (min a b, max a b) in
                check "edge unused" false (Hashtbl.mem used k);
                Hashtbl.replace used k ();
                record rest
            | _ -> ()
          in
          record walk;
          check_int "all edges" (Graph.m g) (Hashtbl.length used))
    [ Builders.cycle 5; Builders.complete 5; Random_graphs.regular_even (st 3) 9 2 ]

(* --- matching --- *)

let matching_basic () =
  let g = Builders.cycle 6 in
  let m = Matching.greedy_maximal g in
  check "valid" true (Matching.is_matching g m);
  check "maximal" true (Matching.is_maximal g m);
  check "not maximal" false (Matching.is_maximal g [ (0, 1) ])

let bipartite_maximum () =
  let g = Builders.complete_bipartite 4 6 in
  check_int "K46 matching" 4 (List.length (Matching.maximum_bipartite g));
  let g = Builders.cycle 8 in
  check_int "C8 matching" 4 (List.length (Matching.maximum_bipartite g));
  let g = Builders.path 5 in
  check_int "P5 matching" 2 (List.length (Matching.maximum_bipartite g))

let koenig () =
  List.iter
    (fun g ->
      let m = Matching.maximum_bipartite g in
      let c = Matching.koenig_cover g m in
      check "cover valid" true (Matching.is_vertex_cover g c);
      check_int "König equality" (List.length m) (List.length c);
      (* each matched edge has exactly one endpoint in the cover *)
      List.iter
        (fun (u, v) ->
          check "exactly one covered" true
            (List.mem u c <> List.mem v c))
        m;
      (* every cover node is matched *)
      let matched = Matching.matched_nodes m in
      List.iter (fun v -> check "cover node matched" true (List.mem v matched)) c)
    [
      Builders.complete_bipartite 3 5;
      Builders.cycle 10;
      Builders.path 7;
      Random_graphs.bipartite (st 5) 6 6 0.4;
      Random_graphs.bipartite (st 9) 7 3 0.6;
      Random_graphs.tree (st 11) 15;
    ]

let qcheck_koenig =
  QCheck.Test.make ~name:"König: |max matching| = |min cover| on bipartite"
    ~count:100 arb_bipartite (fun g ->
      let m = Matching.maximum_bipartite g in
      let c = Matching.koenig_cover g m in
      Matching.is_vertex_cover g c && List.length c = List.length m)

let cycle_matching () =
  let g = Builders.cycle 9 in
  let m = Matching.maximum_on_cycle g in
  check_int "C9" 4 (List.length m);
  check "maximum" true (Matching.is_maximum_on_cycle g m);
  let g = Builders.cycle 8 in
  check_int "C8" 4 (List.length (Matching.maximum_on_cycle g))

(* --- weighted matching --- *)

let weights_of_table tbl (u, v) =
  match List.assoc_opt (min u v, max u v) tbl with Some w -> w | None -> 0

let weighted_basic () =
  (* Square with one heavy diagonal pair of edges. *)
  let g = Builders.cycle 4 in
  let w = weights_of_table [ ((0, 1), 5); ((1, 2), 1); ((2, 3), 5); ((0, 3), 1) ] in
  let m = Weighted_matching.maximum_weight g w in
  check_int "weight" 10 (Weighted_matching.weight_of_matching w m);
  match Weighted_matching.dual_certificate g w m with
  | None -> Alcotest.fail "no dual certificate"
  | Some dual -> check "certificate valid" true (Weighted_matching.check_certificate g w m dual)

let weighted_rejects_suboptimal () =
  let g = Builders.cycle 4 in
  let w = weights_of_table [ ((0, 1), 5); ((1, 2), 1); ((2, 3), 5); ((0, 3), 1) ] in
  (* matching of weight 2 < 10: must yield no certificate *)
  check "no cert for bad matching" true
    (Weighted_matching.dual_certificate g w [ (1, 2); (0, 3) ] = None)

let brute_force_max_weight g w =
  (* all matchings by recursion over the edge list *)
  let edges = Graph.edges g in
  let rec go acc best = function
    | [] -> max best (Weighted_matching.weight_of_matching w acc)
    | (u, v) :: rest ->
        let best = go acc best rest in
        let used = Matching.matched_nodes acc in
        if List.mem u used || List.mem v used then best
        else go ((u, v) :: acc) best rest
  in
  go [] 0 edges

let qcheck_weighted =
  QCheck.Test.make
    ~name:"max-weight matching matches brute force; dual certifies it" ~count:60
    QCheck.(pair arb_bipartite (int_bound 1_000_000))
    (fun (g, seed) ->
      QCheck.assume (Graph.n g <= 10);
      let rnd = Random.State.make [| seed |] in
      let tbl =
        Graph.fold_edges (fun u v acc -> ((u, v), Random.State.int rnd 8) :: acc) g []
      in
      let w = weights_of_table tbl in
      let m = Weighted_matching.maximum_weight g w in
      let value = Weighted_matching.weight_of_matching w m in
      value = brute_force_max_weight g w
      &&
      match Weighted_matching.dual_certificate g w m with
      | None -> false
      | Some dual -> Weighted_matching.check_certificate g w m dual)

(* --- flow / Menger --- *)

let flow_basic () =
  let net =
    Flow.network ~nodes:[ 0; 1; 2; 3 ]
      ~arcs:[ (0, 1, 3); (0, 2, 2); (1, 3, 2); (2, 3, 3); (1, 2, 1) ]
  in
  let v, _ = Flow.max_flow net ~source:0 ~sink:3 in
  check_int "flow value" 5 v

let menger_grid () =
  let g = Builders.grid 3 3 in
  (* opposite corners of a 3x3 grid: connectivity 2 *)
  check_int "connectivity" 2 (Flow.vertex_connectivity g ~s:0 ~t:8);
  let paths = Flow.vertex_disjoint_paths g ~s:0 ~t:8 in
  check_int "paths" 2 (List.length paths);
  (* internal disjointness *)
  let internals = List.map (fun p -> List.tl (List.rev (List.tl (List.rev p)))) paths in
  let all = List.concat internals in
  check "disjoint" true (List.length all = List.length (List.sort_uniq Int.compare all));
  let sep = Flow.vertex_separator g ~s:0 ~t:8 in
  check_int "separator size" 2 (List.length sep);
  (* removing the separator disconnects *)
  let g' = List.fold_left Graph.remove_node g sep in
  check "separated" true (Traversal.distance g' 0 8 = None)

let menger_structure () =
  List.iter
    (fun (g, s, t) ->
      match Flow.menger_certificate g ~s ~t with
      | None -> check "disconnected" true (Traversal.distance g s t = None)
      | Some (paths, sep) ->
          check_int "Menger equality" (List.length paths) (List.length sep);
          List.iter
            (fun p ->
              check "path starts at s" true (List.hd p = s);
              check "path ends at t" true (List.nth p (List.length p - 1) = t);
              (* consecutive edges *)
              let rec ok = function
                | a :: (b :: _ as rest) -> Graph.mem_edge g a b && ok rest
                | _ -> true
              in
              check "real path" true (ok p);
              (* exactly one separator node per path *)
              check_int "crosses separator once" 1
                (List.length (List.filter (fun v -> List.mem v sep) p)))
            paths;
          (* chordless *)
          List.iter
            (fun p ->
              let arr = Array.of_list p in
              let n = Array.length arr in
              for i = 0 to n - 3 do
                for j = i + 2 to n - 1 do
                  if not (i = 0 && j = n - 1) then
                    check "chordless" false (Graph.mem_edge g arr.(i) arr.(j))
                done
              done)
            paths)
    [
      (Builders.grid 3 3, 0, 8);
      (Builders.grid 4 4, 0, 15);
      (Builders.hypercube 3, 0, 7);
      (Builders.cycle 9, 0, 4);
      (Random_graphs.connected_gnp (st 21) 14 0.25, 0, 13);
    ]

let qcheck_menger =
  QCheck.Test.make ~name:"Menger: #disjoint paths = min separator" ~count:60
    QCheck.(pair arb_graph (int_bound 1_000_000))
    (fun (g, _) ->
      QCheck.assume (Graph.n g >= 2);
      let nodes = Graph.nodes g in
      let s = List.hd nodes and t = List.nth nodes (List.length nodes - 1) in
      QCheck.assume (s <> t && not (Graph.mem_edge g s t));
      let k = Flow.vertex_connectivity g ~s ~t in
      let paths = Flow.vertex_disjoint_paths g ~s ~t in
      let sep = Flow.vertex_separator g ~s ~t in
      List.length paths = k && List.length sep = k)

(* --- coloring --- *)

let coloring_basic () =
  check "C5 not 2col" false (Coloring.is_k_colourable (Builders.cycle 5) 2);
  check "C5 3col" true (Coloring.is_k_colourable (Builders.cycle 5) 3);
  check_int "chi C5" 3 (Coloring.chromatic_number (Builders.cycle 5));
  check_int "chi K5" 5 (Coloring.chromatic_number (Builders.complete 5));
  check_int "chi petersen" 3 (Coloring.chromatic_number Builders.petersen);
  check_int "chi W5" 4 (Coloring.chromatic_number (Builders.wheel 5));
  check_int "chi W6" 3 (Coloring.chromatic_number (Builders.wheel 6));
  check_int "chi grid" 2 (Coloring.chromatic_number (Builders.grid 3 4))

let coloring_with_pre () =
  let g = Builders.path 3 in
  (match Coloring.k_colouring_with g 2 ~pre:[ (0, 0); (2, 0) ] with
  | Some c -> check "proper" true (Coloring.is_proper g c)
  | None -> Alcotest.fail "should extend");
  check "conflicting pre" true
    (Coloring.k_colouring_with g 2 ~pre:[ (0, 0); (1, 0) ] = None)

let qcheck_coloring =
  QCheck.Test.make ~name:"chromatic number colourings are proper and minimal"
    ~count:40 arb_graph (fun g ->
      QCheck.assume (not (Graph.is_empty g));
      let k = Coloring.chromatic_number g in
      (match Coloring.k_colouring g k with
      | Some c -> Coloring.is_proper g c
      | None -> false)
      && (k = 0 || k = 1 || not (Coloring.is_k_colourable g (k - 1))))

(* --- hamiltonian --- *)

let hamiltonian_basic () =
  (match Hamiltonian.hamiltonian_cycle (Builders.cycle 7) with
  | Some seq -> check "cycle is HC" true (Hamiltonian.is_hamiltonian_cycle (Builders.cycle 7) seq)
  | None -> Alcotest.fail "C7 has HC");
  check "petersen has no HC" true (Hamiltonian.hamiltonian_cycle Builders.petersen = None);
  check "petersen has HP" true (Hamiltonian.hamiltonian_path Builders.petersen <> None);
  check "K5 has HC" true (Hamiltonian.hamiltonian_cycle (Builders.complete 5) <> None);
  check "tree has no HC" true
    (Hamiltonian.hamiltonian_cycle (Random_graphs.tree (st 2) 8) = None);
  (match Hamiltonian.hamiltonian_cycle (Builders.hypercube 3) with
  | Some seq -> check "Q3 HC valid" true (Hamiltonian.is_hamiltonian_cycle (Builders.hypercube 3) seq)
  | None -> Alcotest.fail "Q3 has HC")

let suite =
  ( "algorithms",
    [
      Alcotest.test_case "bipartite basics" `Quick bipartite_basic;
      Alcotest.test_case "odd cycle witness" `Quick odd_cycle_witness;
      Alcotest.test_case "euler basics" `Quick euler_basic;
      Alcotest.test_case "euler circuit" `Quick euler_circuit;
      Alcotest.test_case "matching basics" `Quick matching_basic;
      Alcotest.test_case "bipartite maximum matching" `Quick bipartite_maximum;
      Alcotest.test_case "König cover" `Quick koenig;
      QCheck_alcotest.to_alcotest qcheck_koenig;
      Alcotest.test_case "cycle matching" `Quick cycle_matching;
      Alcotest.test_case "weighted matching" `Quick weighted_basic;
      Alcotest.test_case "weighted rejects suboptimal" `Quick weighted_rejects_suboptimal;
      QCheck_alcotest.to_alcotest qcheck_weighted;
      Alcotest.test_case "flow basics" `Quick flow_basic;
      Alcotest.test_case "Menger on grid" `Quick menger_grid;
      Alcotest.test_case "Menger structure" `Quick menger_structure;
      QCheck_alcotest.to_alcotest qcheck_menger;
      Alcotest.test_case "coloring basics" `Quick coloring_basic;
      Alcotest.test_case "coloring with preassignment" `Quick coloring_with_pre;
      QCheck_alcotest.to_alcotest qcheck_coloring;
      Alcotest.test_case "hamiltonian basics" `Quick hamiltonian_basic;
    ] )
