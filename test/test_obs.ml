(* Observability layer: monotonic clock, sharded metrics semantics
   (counter / gauge / histogram, enable gating, reset, multi-domain
   merge) and the trace ring buffer with its Chrome trace-event JSON
   export.

   Obs state is global, so every test that flips [enabled] or records
   events runs under [with_obs_reset], which restores the disabled
   default even on failure — the rest of the alcotest binary must keep
   seeing the zero-cost path. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_obs_reset f =
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.Metrics.reset ();
      Obs.Trace.set_capacity 65536)
    f

(* --- clock ------------------------------------------------------------ *)

let clock_monotonic () =
  let a = Obs.Clock.now_ns () in
  check "clock is up" true (a > 0);
  (* Busy-wait a little: CLOCK_MONOTONIC must never step backwards. *)
  let prev = ref a in
  for _ = 1 to 1000 do
    let t = Obs.Clock.now_ns () in
    check "non-decreasing" true (t >= !prev);
    prev := t
  done;
  check "elapsed >= 0" true (Obs.Clock.elapsed_ns a >= 0);
  check "ns_to_s" true (Obs.Clock.ns_to_s 1_500_000_000 = 1.5);
  check "ns_to_us" true (Obs.Clock.ns_to_us 1_500 = 1.5);
  let (), dt = Obs.Clock.time (fun () -> ignore (Sys.opaque_identity 0)) in
  check "time >= 0" true (dt >= 0.)

(* --- metrics ---------------------------------------------------------- *)

let m_c = Obs.Metrics.counter "test.counter"
let m_g = Obs.Metrics.gauge_max "test.gauge"
let m_h = Obs.Metrics.histogram "test.hist"

let metrics_semantics () =
  with_obs_reset @@ fun () ->
  Obs.enable ();
  Obs.Metrics.reset ();
  Obs.Metrics.incr m_c;
  Obs.Metrics.add m_c 9;
  Obs.Metrics.observe_max m_g 7;
  Obs.Metrics.observe_max m_g 3;
  (* log₂ buckets: 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2
     ([2,4)); 8 → bucket 4 ([8,16)). *)
  List.iter (Obs.Metrics.observe m_h) [ 0; 1; 2; 3; 8 ];
  let snap = Obs.Metrics.snapshot () in
  check_int "counter sums" 10 (Obs.Metrics.count snap "test.counter");
  check_int "gauge keeps max" 7 (Obs.Metrics.max_value snap "test.gauge");
  (match List.assoc_opt "test.hist" snap with
  | Some (Obs.Metrics.Hist h) ->
      check_int "hist count" 5 h.Obs.Metrics.count;
      check_int "hist sum" 14 h.Obs.Metrics.sum;
      check_int "hist max" 8 h.Obs.Metrics.max;
      check "hist buckets" true
        (h.Obs.Metrics.buckets = [ (0, 1); (1, 1); (2, 2); (4, 1) ])
  | _ -> Alcotest.fail "test.hist missing from snapshot");
  (* count/max also read through to histograms *)
  check_int "hist via count" 5 (Obs.Metrics.count snap "test.hist");
  check_int "hist via max_value" 8 (Obs.Metrics.max_value snap "test.hist");
  check_int "absent metric counts 0" 0 (Obs.Metrics.count snap "test.nope");
  (* reset really zeroes *)
  Obs.Metrics.reset ();
  let snap = Obs.Metrics.snapshot () in
  check_int "reset counter" 0 (Obs.Metrics.count snap "test.counter");
  check_int "reset gauge" 0 (Obs.Metrics.max_value snap "test.gauge");
  check_int "reset hist" 0 (Obs.Metrics.count snap "test.hist")

let metrics_disabled_is_inert () =
  with_obs_reset @@ fun () ->
  Obs.Metrics.reset ();
  check "disabled by default" false (Obs.enabled ());
  Obs.Metrics.incr m_c;
  Obs.Metrics.add m_c 5;
  Obs.Metrics.observe_max m_g 9;
  Obs.Metrics.observe m_h 4;
  let snap = Obs.Metrics.snapshot () in
  check_int "no counter recorded" 0 (Obs.Metrics.count snap "test.counter");
  check_int "no gauge recorded" 0 (Obs.Metrics.max_value snap "test.gauge");
  check_int "no hist recorded" 0 (Obs.Metrics.count snap "test.hist")

let metrics_registration () =
  (* Same name, same kind: same slot (recording through either handle
     hits one metric). Same name, different kind: refused. *)
  with_obs_reset @@ fun () ->
  Obs.enable ();
  Obs.Metrics.reset ();
  let again = Obs.Metrics.counter "test.counter" in
  Obs.Metrics.incr m_c;
  Obs.Metrics.incr again;
  check_int "idempotent registration shares the slot" 2
    (Obs.Metrics.count (Obs.Metrics.snapshot ()) "test.counter");
  check "kind conflict refused" true
    (match Obs.Metrics.histogram "test.counter" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let metrics_multidomain_merge () =
  (* Four domains hammer the same metrics through their own DLS shards;
     the snapshot must see the commutative merge of all of them. *)
  with_obs_reset @@ fun () ->
  Obs.enable ();
  Obs.Metrics.reset ();
  let per_domain = 10_000 in
  let doms =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Obs.Metrics.incr m_c;
              Obs.Metrics.observe m_h (i land 7)
            done;
            Obs.Metrics.observe_max m_g (100 + d)))
  in
  List.iter Domain.join doms;
  let snap = Obs.Metrics.snapshot () in
  check_int "counters sum across shards" (4 * per_domain)
    (Obs.Metrics.count snap "test.counter");
  check_int "gauge maxes across shards" 103
    (Obs.Metrics.max_value snap "test.gauge");
  check_int "histogram counts sum" (4 * per_domain)
    (Obs.Metrics.count snap "test.hist")

let deterministic_filter () =
  with_obs_reset @@ fun () ->
  Obs.enable ();
  Obs.Metrics.reset ();
  let ns = Obs.Metrics.counter "test.elapsed_ns" in
  let pl = Obs.Metrics.counter "pool.test_tasks" in
  Obs.Metrics.add ns 123;
  Obs.Metrics.incr pl;
  Obs.Metrics.incr m_c;
  let det = Obs.Metrics.deterministic (Obs.Metrics.snapshot ()) in
  check "keeps plain counters" true (List.mem_assoc "test.counter" det);
  check "drops _ns timings" false (List.mem_assoc "test.elapsed_ns" det);
  check "drops pool.* scheduling" false (List.mem_assoc "pool.test_tasks" det)

(* --- a minimal JSON reader, enough to validate the exports ------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Alcotest.fail (Printf.sprintf "JSON %s at %d" msg !pos) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let next () = let c = peek () in incr pos; c in
  let rec skip_ws () =
    match peek () with ' ' | '\t' | '\n' | '\r' -> incr pos; skip_ws () | _ -> ()
  in
  let expect c = if next () <> c then fail (Printf.sprintf "expected %c" c) in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' -> (
          match next () with
          | ('"' | '\\' | '/') as c -> Buffer.add_char b c; go ()
          | 'n' -> Buffer.add_char b '\n'; go ()
          | 't' -> Buffer.add_char b '\t'; go ()
          | 'u' ->
              pos := !pos + 4;
              Buffer.add_char b '?';
              go ()
          | _ -> fail "bad escape")
      | '\000' -> fail "unterminated string"
      | c -> Buffer.add_char b c; go ()
    in
    go ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '"' -> Str (parse_string ())
    | '{' ->
        expect '{';
        skip_ws ();
        if peek () = '}' then (incr pos; Obj [])
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match next () with
            | ',' -> members ((k, v) :: acc)
            | '}' -> Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          members []
        end
    | '[' ->
        expect '[';
        skip_ws ();
        if peek () = ']' then (incr pos; Arr [])
        else begin
          let rec elems acc =
            let v = value () in
            skip_ws ();
            match next () with
            | ',' -> elems (v :: acc)
            | ']' -> Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          elems []
        end
    | 't' -> pos := !pos + 4; Bool true
    | 'f' -> pos := !pos + 5; Bool false
    | 'n' -> pos := !pos + 4; Null
    | _ ->
        let start = !pos in
        let is_num c =
          (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e'
          || c = 'E'
        in
        while is_num (peek ()) do incr pos done;
        if !pos = start then fail "unexpected character"
        else Num (float_of_string (String.sub s start (!pos - start)))
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- trace ------------------------------------------------------------ *)

let assoc name = function
  | Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let trace_export_is_chrome_json () =
  with_obs_reset @@ fun () ->
  Obs.enable ~metrics:false ~trace:true ();
  let r = Obs.Trace.span "test.outer" (fun () ->
      Obs.Trace.span_arg "test.inner" "node" 17 (fun () -> 41 + 1))
  in
  check_int "span returns the thunk's value" 42 r;
  Obs.Trace.instant ~arg_name:"hits" ~arg:3 "test.instant";
  Obs.Trace.counter_event "test.depth" 5;
  check_int "four events recorded" 4 (Obs.Trace.recorded ());
  check_int "none dropped" 0 (Obs.Trace.dropped ());
  (* A span must survive (and re-raise) an exception in its thunk. *)
  check "span re-raises" true
    (match Obs.Trace.span "test.raises" (fun () -> raise Exit) with
    | exception Exit -> true
    | _ -> false);
  let path = Filename.temp_file "lcp_trace" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Obs.Trace.export path;
  let events =
    match assoc "traceEvents" (parse_json (read_file path)) with
    | Some (Arr evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  check_int "all events exported" 5 (List.length events);
  List.iter
    (fun e ->
      check "has name" true
        (match assoc "name" e with Some (Str _) -> true | _ -> false);
      check "has ts" true
        (match assoc "ts" e with Some (Num t) -> t >= 0. | _ -> false);
      match assoc "ph" e with
      | Some (Str "X") ->
          check "X has dur" true
            (match assoc "dur" e with Some (Num d) -> d >= 0. | _ -> false)
      | Some (Str ("i" | "C")) -> ()
      | _ -> Alcotest.fail "unexpected ph")
    events;
  (* sorted by timestamp *)
  let ts =
    List.map
      (fun e -> match assoc "ts" e with Some (Num t) -> t | _ -> 0.)
      events
  in
  check "sorted by ts" true (List.sort compare ts = ts);
  (* the inner span nests within the outer one *)
  let find name =
    List.find
      (fun e -> assoc "name" e = Some (Str name))
      events
  in
  let span_bounds e =
    match (assoc "ts" e, assoc "dur" e) with
    | Some (Num t), Some (Num d) -> (t, t +. d)
    | _ -> Alcotest.fail "span without ts/dur"
  in
  let o0, o1 = span_bounds (find "test.outer") in
  let i0, i1 = span_bounds (find "test.inner") in
  check "inner nested in outer" true (o0 <= i0 && i1 <= o1);
  (match assoc "args" (find "test.inner") with
  | Some (Obj [ ("node", Num 17.) ]) -> ()
  | _ -> Alcotest.fail "span_arg argument lost")

let trace_ring_wraps () =
  with_obs_reset @@ fun () ->
  Obs.Trace.set_capacity 16;
  Obs.enable ~metrics:false ~trace:true ();
  for i = 1 to 100 do
    Obs.Trace.instant ~arg_name:"i" ~arg:i "test.tick"
  done;
  check_int "ring holds capacity" 16 (Obs.Trace.recorded ());
  check_int "rest counted as dropped" 84 (Obs.Trace.dropped ());
  let path = Filename.temp_file "lcp_trace" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Obs.Trace.export path;
  (match assoc "traceEvents" (parse_json (read_file path)) with
  | Some (Arr evs) ->
      check_int "export holds the survivors" 16 (List.length evs);
      (* the survivors are the newest events: args 85..100 *)
      let args =
        List.filter_map
          (fun e ->
            match assoc "args" e with
            | Some (Obj [ ("i", Num v) ]) -> Some (int_of_float v)
            | _ -> None)
          evs
      in
      check "oldest overwritten" true
        (List.sort compare args = List.init 16 (fun i -> 85 + i))
  | _ -> Alcotest.fail "no traceEvents array");
  Obs.Trace.clear ();
  check_int "clear empties the ring" 0 (Obs.Trace.recorded ());
  check_int "clear resets dropped" 0 (Obs.Trace.dropped ())

let trace_disabled_is_passthrough () =
  with_obs_reset @@ fun () ->
  check_int "span runs the thunk" 7 (Obs.Trace.span "test.off" (fun () -> 7));
  Obs.Trace.instant "test.off";
  check_int "nothing recorded" 0 (Obs.Trace.recorded ())

(* --- distributed-tracing identity ------------------------------------- *)

let trace_sampler () =
  (* every=1 samples everything; <= 0 samples nothing *)
  for rid = 0 to 99 do
    check "every=1 samples all" true (Obs.Trace.sample ~every:1 rid);
    check "every=0 samples none" false (Obs.Trace.sample ~every:0 rid)
  done;
  check "negative rate samples none" false (Obs.Trace.sample ~every:(-4) 7);
  (* the verdict is a pure function of the rid — what keeps the
     client's, router's and backend's decisions aligned *)
  for rid = 0 to 999 do
    check "verdict stable" true
      (Obs.Trace.sample ~every:8 rid = Obs.Trace.sample ~every:8 rid)
  done;
  (* 1-in-8 sampling over sequential rids lands near 1/8 — the hash,
     not the rid's low bits, decides *)
  let n = 100_000 in
  let hits = ref 0 in
  for rid = 1 to n do
    if Obs.Trace.sample ~every:8 rid then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check "rate near 1/8" true (rate > 0.10 && rate < 0.15);
  (* rid-derived trace ids are deterministic, nonzero, 32 hex digits *)
  let h1, l1 = Obs.Trace.trace_of_rid 42 in
  let h2, l2 = Obs.Trace.trace_of_rid 42 in
  check "trace id deterministic" true (h1 = h2 && l1 = l2);
  check "trace id nonzero" true (h1 <> 0 || l1 <> 0);
  check "trace id halves non-negative" true (h1 >= 0 && l1 >= 0);
  check_int "hex id is 32 digits" 32 (String.length (Obs.Trace.hex_id h1 l1));
  let c1 = Obs.Trace.ctx_of_rid 42 in
  let c2 = Obs.Trace.ctx_of_rid ~parent:9 42 in
  check "ctx keeps the rid's trace id" true
    (c1.Obs.Trace.t_hi = h1 && c1.Obs.Trace.t_lo = l1);
  check "span ids are fresh per ctx" true
    (c1.Obs.Trace.span <> 0 && c2.Obs.Trace.span <> 0
    && c1.Obs.Trace.span <> c2.Obs.Trace.span);
  check_int "default parent is root" 0 c1.Obs.Trace.parent;
  check_int "explicit parent kept" 9 c2.Obs.Trace.parent

let trace_ctx_args_export () =
  with_obs_reset @@ fun () ->
  Obs.enable ~metrics:false ~trace:true ();
  let ctx = Obs.Trace.ctx_of_rid ~parent:77 42 in
  check_int "span_ctx returns the thunk's value" 5
    (Obs.Trace.span_ctx "test.traced" "rid" 42 ctx (fun () -> 5));
  Obs.Trace.span "test.untraced" (fun () -> ());
  let j = parse_json (Obs.Trace.export_string ()) in
  let events =
    match assoc "traceEvents" j with
    | Some (Arr e) -> e
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let find name =
    match List.find_opt (fun e -> assoc "name" e = Some (Str name)) events with
    | Some e -> e
    | None -> Alcotest.failf "event %s lost" name
  in
  (match assoc "args" (find "test.traced") with
  | Some (Obj kvs) ->
      check "rid arg kept" true (List.assoc_opt "rid" kvs = Some (Num 42.));
      check "trace arg is the rid's hex id" true
        (List.assoc_opt "trace" kvs
        = Some (Str (Obs.Trace.hex_id ctx.Obs.Trace.t_hi ctx.Obs.Trace.t_lo)));
      check "span arg" true
        (List.assoc_opt "span" kvs
        = Some (Num (float_of_int ctx.Obs.Trace.span)));
      check "parent arg" true (List.assoc_opt "parent" kvs = Some (Num 77.))
  | _ -> Alcotest.fail "traced span lost its args");
  (* untraced events must NOT grow identity args — exact-match
     consumers (and sheer ring size) depend on it *)
  check "untraced span carries no identity" true
    (match assoc "args" (find "test.untraced") with
    | None -> true
    | Some (Obj kvs) -> not (List.mem_assoc "trace" kvs)
    | _ -> false);
  check "export names the process lane" true
    (match assoc "process" j with Some (Str _) -> true | _ -> false)

let tid_main = "000102030405060708090a0b0c0d0e0f"

let trace_merge_aligns_clocks () =
  let ev name ts dur ~span ~parent ~extra =
    Printf.sprintf
      "{\"name\":\"%s\",\"cat\":\"lcp\",\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":%.3f,\"dur\":%.3f,\"args\":{%s\"trace\":\"%s\",\"span\":%d,\"parent\":%d}}"
      name ts dur extra tid_main span parent
  in
  let spool process evs =
    Printf.sprintf "{\"traceEvents\":[%s],\"dropped\":0,\"process\":%S}"
      (String.concat "," evs) process
  in
  (* one request crossing three processes, each spool on its own clock:
     the router's clock runs 2000us ahead of the loadgen's and the
     backend's 5000us ahead — the parent links must recover both
     (loadgen<->backend never talk directly; the BFS chains through
     the router) *)
  let loadgen =
    spool "loadgen"
      [ ev "client.request" 100. 300. ~span:100 ~parent:0 ~extra:"\"rid\":7," ]
  in
  let router =
    spool "router"
      [
        ev "router.request" 2150. 200. ~span:200 ~parent:100 ~extra:"";
        ev "router.upstream" 2160. 180. ~span:300 ~parent:200 ~extra:"";
        "{\"name\":\"router.tick\",\"ph\":\"i\",\"pid\":0,\"tid\":1,\"ts\":2100.0}";
      ]
  in
  let backend =
    spool "backend"
      [ ev "server.request" 5200. 100. ~span:400 ~parent:300 ~extra:"" ]
  in
  let files =
    [ ("loadgen", loadgen); ("router", router); ("backend", backend) ]
  in
  (match Obs.Trace_merge.merge files with
  | Error m -> Alcotest.failf "merge failed: %s" m
  | Ok (json, st) ->
      check_int "all events merged" 5 st.Obs.Trace_merge.events;
      check_int "one trace id" 1 st.Obs.Trace_merge.traces;
      check_int "it crosses processes" 1 st.Obs.Trace_merge.cross_process;
      check_int "over three lanes" 3 st.Obs.Trace_merge.max_lanes;
      (match st.Obs.Trace_merge.processes with
      | [ ("loadgen", o0); ("router", o1); ("backend", o2) ] ->
          check "reference lane unshifted" true (abs_float o0 < 1e-9);
          check "router offset recovered" true (abs_float (o1 +. 2000.) < 1e-6);
          check "backend offset chained through the router" true
            (abs_float (o2 +. 5000.) < 1e-6)
      | _ -> Alcotest.fail "unexpected lane list");
      let events =
        match assoc "traceEvents" (parse_json json) with
        | Some (Arr e) -> e
        | _ -> Alcotest.fail "merged traceEvents missing"
      in
      let ts_of name =
        match
          List.find_opt (fun e -> assoc "name" e = Some (Str name)) events
        with
        | Some e -> (
            match assoc "ts" e with
            | Some (Num t) -> t
            | _ -> Alcotest.failf "%s has no ts" name)
        | None -> Alcotest.failf "merged output lost %s" name
      in
      (* after alignment every span sits on the loadgen's clock and
         nests where the true timeline put it *)
      check "router span lands inside the client span" true
        (abs_float (ts_of "router.request" -. 150.) < 1e-6);
      check "backend span lands inside the upstream span" true
        (abs_float (ts_of "server.request" -. 200.) < 1e-6);
      check_int "one process_name metadata event per lane" 3
        (List.length
           (List.filter (fun e -> assoc "ph" e = Some (Str "M")) events)));
  (* ?trace_id keeps only that trace (case-insensitively) *)
  (match Obs.Trace_merge.merge ~trace_id:(String.uppercase_ascii tid_main) files with
  | Error m -> Alcotest.failf "filtered merge failed: %s" m
  | Ok (_, st) ->
      check_int "untraced tick filtered out" 4 st.Obs.Trace_merge.events);
  (* a garbage spool is a typed error naming the file, not a raise *)
  match Obs.Trace_merge.merge [ ("bad-spool", "{nope") ] with
  | Error m ->
      check "error names the file" true
        (String.length m >= 9 && String.sub m 0 9 = "bad-spool")
  | Ok _ -> Alcotest.fail "garbage spool accepted"

let metrics_json_parses () =
  with_obs_reset @@ fun () ->
  Obs.enable ();
  Obs.Metrics.reset ();
  Obs.Metrics.add m_c 3;
  Obs.Metrics.observe m_h 5;
  match parse_json (Obs.Metrics.to_json (Obs.Metrics.snapshot ())) with
  | Obj kvs ->
      check "counter is a number" true
        (match List.assoc_opt "test.counter" kvs with
        | Some (Num 3.) -> true
        | _ -> false);
      check "histogram is an object with buckets" true
        (match List.assoc_opt "test.hist" kvs with
        | Some (Obj h) -> (
            match List.assoc_opt "buckets" h with Some (Arr _) -> true | _ -> false)
        | _ -> false)
  | _ -> Alcotest.fail "to_json did not produce an object"

(* --- Json edge cases -------------------------------------------------- *)

(* The parser is the read side of every export in the system (trace
   spools, profile exports, bench JSON), so its totality contract —
   malformed input is an [Error], never an exception — gets pinned
   directly. *)
let json_edge_cases () =
  let parse s = Obs.Json.parse s in
  (* string escapes, including \uXXXX decoded to UTF-8 *)
  (match parse {|{"a":"q\" b\\ s\/ n\n t\t u\u0041 e\u00e9"}|} with
  | Ok (Obs.Json.Obj [ ("a", Obs.Json.Str v) ]) ->
      Alcotest.(check string)
        "escapes decode" "q\" b\\ s/ n\n t\t uA e\xc3\xa9" v
  | Ok j -> Alcotest.failf "unexpected shape: %s" (Obs.Json.to_string j)
  | Error m -> Alcotest.failf "escapes: %s" m);
  (* deep nesting of arrays and objects *)
  (match parse {|[[[{"x":[1,[2],{"y":null,"z":[{}]}]}]]]|} with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "nesting: %s" m);
  (* exponent forms all land on the same float *)
  List.iter
    (fun (txt, want) ->
      match parse txt with
      | Ok (Obs.Json.Num v) ->
          check (Printf.sprintf "number %s" txt) true
            (Float.abs (v -. want) < 1e-9)
      | Ok j -> Alcotest.failf "%s: unexpected %s" txt (Obs.Json.to_string j)
      | Error m -> Alcotest.failf "%s: %s" txt m)
    [
      ("1e3", 1000.0); ("-2.5E-2", -0.025); ("0.125e+2", 12.5);
      ("-0", 0.0); ("1234567890123", 1234567890123.0);
    ];
  (* truncated / malformed inputs: Error with an offset, not an
     exception, and trailing bytes after a complete value are refused *)
  List.iter
    (fun txt ->
      match parse txt with
      | Error _ -> ()
      | Ok j ->
          Alcotest.failf "%S should not parse (got %s)" txt
            (Obs.Json.to_string j))
    [
      {|{"a":|}; "[1,2"; {|"abc|}; {|{"a":1|}; "tru"; "-"; "1e"; "";
      {|{"a" 1}|}; "[1 2]"; {|{} x|}; {|"bad \q escape"|}; {|"\u00g1"|};
    ]

(* --- profile ----------------------------------------------------------- *)

let with_profile_reset f =
  Fun.protect
    ~finally:(fun () ->
      Obs.Profile.enabled := false;
      Obs.Trace.stacks_on := false;
      Obs.Profile.reset ();
      Obs.disable ())
    f

(* Drive the sampler synchronously: stacks_on makes span push frames
   even with the trace ring off, and sample_now folds whatever is
   open on this domain into the attribution table. *)
let profile_attribution () =
  with_profile_reset @@ fun () ->
  Obs.Profile.reset ();
  Obs.Profile.enabled := true;
  Obs.Trace.stacks_on := true;
  check "Trace.on sees stacks_on" true (Obs.Trace.on ());
  Obs.Trace.span "outer" (fun () ->
      Obs.Trace.span "inner" (fun () ->
          Obs.Profile.sample_now ();
          Obs.Profile.sample_now ());
      Obs.Profile.sample_now ());
  check_int "ticks counted" 3 (Obs.Profile.samples ());
  check_int "non-idle stacks" 3 (Obs.Profile.stack_samples ());
  let collapsed = Obs.Profile.collapsed () in
  check "outer;inner weighted 2" true
    (List.mem "outer;inner 2" (String.split_on_char '\n' collapsed));
  check "outer alone weighted 1" true
    (List.mem "outer 1" (String.split_on_char '\n' collapsed));
  (* frames pop on the way out: sampling outside the spans adds
     nothing *)
  Obs.Profile.sample_now ();
  check_int "idle tick adds no stack" 3 (Obs.Profile.stack_samples ());
  (* exception safety: a raising span must still pop its frame *)
  (try Obs.Trace.span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Obs.Profile.sample_now ();
  check_int "frame popped on raise" 3 (Obs.Profile.stack_samples ())

let profile_exports_parse () =
  with_profile_reset @@ fun () ->
  Obs.Profile.reset ();
  Obs.Profile.enabled := true;
  Obs.Trace.stacks_on := true;
  Obs.Trace.span "compile" (fun () -> Obs.Profile.sample_now ());
  Obs.Profile.account ~scheme:"eulerian" ~cpu_ns:5000 ~alloc_bytes:2048.0;
  Obs.Profile.account ~scheme:"eulerian" ~cpu_ns:3000 ~alloc_bytes:1024.0;
  Obs.Profile.account ~scheme:"bipartite" ~cpu_ns:100 ~alloc_bytes:64.0;
  (match Obs.Profile.schemes () with
  | [ ("eulerian", 8000, a, 2); ("bipartite", 100, b, 1) ] ->
      check "eulerian alloc summed" true (a = 3072.0);
      check "bipartite alloc" true (b = 64.0)
  | rows ->
      Alcotest.failf "unexpected scheme rows (%d)" (List.length rows));
  (* the full wire-reply document parses with our own parser... *)
  let doc =
    match Obs.Json.parse (Obs.Profile.export_string ()) with
    | Ok d -> d
    | Error m -> Alcotest.failf "export_string unparseable: %s" m
  in
  let member name = Obs.Json.member name doc in
  check "has gc object" true
    (match member "gc" with Some (Obs.Json.Obj _) -> true | _ -> false);
  check "collapsed mentions compile" true
    (match Option.bind (member "collapsed") Obs.Json.to_string_opt with
    | Some c ->
        let re = "compile 1" in
        List.mem re (String.split_on_char '\n' c)
    | None -> false);
  (* ...and so does the embedded speedscope profile, with consistent
     frame indices and one weight per sample *)
  (match member "speedscope" with
  | Some ss -> (
      check "schema url" true
        (match
           Option.bind (Obs.Json.member "$schema" ss) Obs.Json.to_string_opt
         with
        | Some u -> u = "https://www.speedscope.app/file-format-schema.json"
        | None -> false);
      match
        Option.bind (Obs.Json.member "profiles" ss) Obs.Json.to_list
      with
      | Some [ prof ] ->
          let n_samples =
            match
              Option.bind (Obs.Json.member "samples" prof) Obs.Json.to_list
            with
            | Some l -> List.length l
            | None -> -1
          in
          let n_weights =
            match
              Option.bind (Obs.Json.member "weights" prof) Obs.Json.to_list
            with
            | Some l -> List.length l
            | None -> -2
          in
          check "one weight per sample" true (n_samples = n_weights)
      | _ -> Alcotest.fail "speedscope.profiles should hold one profile")
  | None -> Alcotest.fail "export has no speedscope member");
  (* a reset-and-disabled profiler still exports a valid document *)
  Obs.Profile.enabled := false;
  Obs.Trace.stacks_on := false;
  Obs.Profile.reset ();
  match Obs.Json.parse (Obs.Profile.export_string ()) with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "zero-sample export unparseable: %s" m

(* Satellite: every spool directory option means mkdir -p. A nested
   path that does not exist yet must be created, and spooling into an
   existing directory must stay idempotent. *)
let spool_mkdir_p () =
  with_profile_reset @@ fun () ->
  let base =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lcp_obs_%d" (Unix.getpid ()))
  in
  let nested = Filename.concat (Filename.concat base "a") "b" in
  check "nested dir absent before" false (Sys.file_exists nested);
  Obs.Trace.mkdir_p nested;
  check "nested dir created" true
    (Sys.file_exists nested && Sys.is_directory nested);
  Obs.Trace.mkdir_p nested (* idempotent *);
  let saved = !Obs.Trace.process in
  Obs.Trace.process := "spool-test";
  Fun.protect ~finally:(fun () -> Obs.Trace.process := saved) @@ fun () ->
  let deeper = Filename.concat nested "c" in
  let tpath = Obs.Trace.spool ~dir:deeper in
  check "trace spool created its dir" true (Sys.file_exists tpath);
  let ppath = Obs.Profile.spool ~dir:(Filename.concat nested "d") in
  check "profile spool created its dir" true (Sys.file_exists ppath);
  check "profile spool named after process" true
    (Filename.basename ppath = "profile-spool-test.json")

let suite =
  ( "obs",
    [
      Alcotest.test_case "clock is monotonic" `Quick clock_monotonic;
      Alcotest.test_case "metrics semantics" `Quick metrics_semantics;
      Alcotest.test_case "disabled metrics record nothing" `Quick
        metrics_disabled_is_inert;
      Alcotest.test_case "registration idempotent, kind-checked" `Quick
        metrics_registration;
      Alcotest.test_case "multi-domain shard merge" `Quick
        metrics_multidomain_merge;
      Alcotest.test_case "deterministic filter" `Quick deterministic_filter;
      Alcotest.test_case "trace export is chrome JSON" `Quick
        trace_export_is_chrome_json;
      Alcotest.test_case "trace ring wraps, newest survive" `Quick
        trace_ring_wraps;
      Alcotest.test_case "disabled trace is pass-through" `Quick
        trace_disabled_is_passthrough;
      Alcotest.test_case "trace sampler deterministic" `Quick trace_sampler;
      Alcotest.test_case "trace ctx rides the export" `Quick
        trace_ctx_args_export;
      Alcotest.test_case "trace merge aligns clocks" `Quick
        trace_merge_aligns_clocks;
      Alcotest.test_case "metrics to_json parses" `Quick metrics_json_parses;
      Alcotest.test_case "json edge cases" `Quick json_edge_cases;
      Alcotest.test_case "profile attribution tree" `Quick profile_attribution;
      Alcotest.test_case "profile exports parse" `Quick profile_exports_parse;
      Alcotest.test_case "spool dirs are mkdir -p" `Quick spool_mkdir_p;
    ] )
