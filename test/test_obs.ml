(* Observability layer: monotonic clock, sharded metrics semantics
   (counter / gauge / histogram, enable gating, reset, multi-domain
   merge) and the trace ring buffer with its Chrome trace-event JSON
   export.

   Obs state is global, so every test that flips [enabled] or records
   events runs under [with_obs_reset], which restores the disabled
   default even on failure — the rest of the alcotest binary must keep
   seeing the zero-cost path. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_obs_reset f =
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.Metrics.reset ();
      Obs.Trace.set_capacity 65536)
    f

(* --- clock ------------------------------------------------------------ *)

let clock_monotonic () =
  let a = Obs.Clock.now_ns () in
  check "clock is up" true (a > 0);
  (* Busy-wait a little: CLOCK_MONOTONIC must never step backwards. *)
  let prev = ref a in
  for _ = 1 to 1000 do
    let t = Obs.Clock.now_ns () in
    check "non-decreasing" true (t >= !prev);
    prev := t
  done;
  check "elapsed >= 0" true (Obs.Clock.elapsed_ns a >= 0);
  check "ns_to_s" true (Obs.Clock.ns_to_s 1_500_000_000 = 1.5);
  check "ns_to_us" true (Obs.Clock.ns_to_us 1_500 = 1.5);
  let (), dt = Obs.Clock.time (fun () -> ignore (Sys.opaque_identity 0)) in
  check "time >= 0" true (dt >= 0.)

(* --- metrics ---------------------------------------------------------- *)

let m_c = Obs.Metrics.counter "test.counter"
let m_g = Obs.Metrics.gauge_max "test.gauge"
let m_h = Obs.Metrics.histogram "test.hist"

let metrics_semantics () =
  with_obs_reset @@ fun () ->
  Obs.enable ();
  Obs.Metrics.reset ();
  Obs.Metrics.incr m_c;
  Obs.Metrics.add m_c 9;
  Obs.Metrics.observe_max m_g 7;
  Obs.Metrics.observe_max m_g 3;
  (* log₂ buckets: 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2
     ([2,4)); 8 → bucket 4 ([8,16)). *)
  List.iter (Obs.Metrics.observe m_h) [ 0; 1; 2; 3; 8 ];
  let snap = Obs.Metrics.snapshot () in
  check_int "counter sums" 10 (Obs.Metrics.count snap "test.counter");
  check_int "gauge keeps max" 7 (Obs.Metrics.max_value snap "test.gauge");
  (match List.assoc_opt "test.hist" snap with
  | Some (Obs.Metrics.Hist h) ->
      check_int "hist count" 5 h.Obs.Metrics.count;
      check_int "hist sum" 14 h.Obs.Metrics.sum;
      check_int "hist max" 8 h.Obs.Metrics.max;
      check "hist buckets" true
        (h.Obs.Metrics.buckets = [ (0, 1); (1, 1); (2, 2); (4, 1) ])
  | _ -> Alcotest.fail "test.hist missing from snapshot");
  (* count/max also read through to histograms *)
  check_int "hist via count" 5 (Obs.Metrics.count snap "test.hist");
  check_int "hist via max_value" 8 (Obs.Metrics.max_value snap "test.hist");
  check_int "absent metric counts 0" 0 (Obs.Metrics.count snap "test.nope");
  (* reset really zeroes *)
  Obs.Metrics.reset ();
  let snap = Obs.Metrics.snapshot () in
  check_int "reset counter" 0 (Obs.Metrics.count snap "test.counter");
  check_int "reset gauge" 0 (Obs.Metrics.max_value snap "test.gauge");
  check_int "reset hist" 0 (Obs.Metrics.count snap "test.hist")

let metrics_disabled_is_inert () =
  with_obs_reset @@ fun () ->
  Obs.Metrics.reset ();
  check "disabled by default" false (Obs.enabled ());
  Obs.Metrics.incr m_c;
  Obs.Metrics.add m_c 5;
  Obs.Metrics.observe_max m_g 9;
  Obs.Metrics.observe m_h 4;
  let snap = Obs.Metrics.snapshot () in
  check_int "no counter recorded" 0 (Obs.Metrics.count snap "test.counter");
  check_int "no gauge recorded" 0 (Obs.Metrics.max_value snap "test.gauge");
  check_int "no hist recorded" 0 (Obs.Metrics.count snap "test.hist")

let metrics_registration () =
  (* Same name, same kind: same slot (recording through either handle
     hits one metric). Same name, different kind: refused. *)
  with_obs_reset @@ fun () ->
  Obs.enable ();
  Obs.Metrics.reset ();
  let again = Obs.Metrics.counter "test.counter" in
  Obs.Metrics.incr m_c;
  Obs.Metrics.incr again;
  check_int "idempotent registration shares the slot" 2
    (Obs.Metrics.count (Obs.Metrics.snapshot ()) "test.counter");
  check "kind conflict refused" true
    (match Obs.Metrics.histogram "test.counter" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let metrics_multidomain_merge () =
  (* Four domains hammer the same metrics through their own DLS shards;
     the snapshot must see the commutative merge of all of them. *)
  with_obs_reset @@ fun () ->
  Obs.enable ();
  Obs.Metrics.reset ();
  let per_domain = 10_000 in
  let doms =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Obs.Metrics.incr m_c;
              Obs.Metrics.observe m_h (i land 7)
            done;
            Obs.Metrics.observe_max m_g (100 + d)))
  in
  List.iter Domain.join doms;
  let snap = Obs.Metrics.snapshot () in
  check_int "counters sum across shards" (4 * per_domain)
    (Obs.Metrics.count snap "test.counter");
  check_int "gauge maxes across shards" 103
    (Obs.Metrics.max_value snap "test.gauge");
  check_int "histogram counts sum" (4 * per_domain)
    (Obs.Metrics.count snap "test.hist")

let deterministic_filter () =
  with_obs_reset @@ fun () ->
  Obs.enable ();
  Obs.Metrics.reset ();
  let ns = Obs.Metrics.counter "test.elapsed_ns" in
  let pl = Obs.Metrics.counter "pool.test_tasks" in
  Obs.Metrics.add ns 123;
  Obs.Metrics.incr pl;
  Obs.Metrics.incr m_c;
  let det = Obs.Metrics.deterministic (Obs.Metrics.snapshot ()) in
  check "keeps plain counters" true (List.mem_assoc "test.counter" det);
  check "drops _ns timings" false (List.mem_assoc "test.elapsed_ns" det);
  check "drops pool.* scheduling" false (List.mem_assoc "pool.test_tasks" det)

(* --- a minimal JSON reader, enough to validate the exports ------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Alcotest.fail (Printf.sprintf "JSON %s at %d" msg !pos) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let next () = let c = peek () in incr pos; c in
  let rec skip_ws () =
    match peek () with ' ' | '\t' | '\n' | '\r' -> incr pos; skip_ws () | _ -> ()
  in
  let expect c = if next () <> c then fail (Printf.sprintf "expected %c" c) in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' -> (
          match next () with
          | ('"' | '\\' | '/') as c -> Buffer.add_char b c; go ()
          | 'n' -> Buffer.add_char b '\n'; go ()
          | 't' -> Buffer.add_char b '\t'; go ()
          | 'u' ->
              pos := !pos + 4;
              Buffer.add_char b '?';
              go ()
          | _ -> fail "bad escape")
      | '\000' -> fail "unterminated string"
      | c -> Buffer.add_char b c; go ()
    in
    go ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '"' -> Str (parse_string ())
    | '{' ->
        expect '{';
        skip_ws ();
        if peek () = '}' then (incr pos; Obj [])
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match next () with
            | ',' -> members ((k, v) :: acc)
            | '}' -> Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          members []
        end
    | '[' ->
        expect '[';
        skip_ws ();
        if peek () = ']' then (incr pos; Arr [])
        else begin
          let rec elems acc =
            let v = value () in
            skip_ws ();
            match next () with
            | ',' -> elems (v :: acc)
            | ']' -> Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          elems []
        end
    | 't' -> pos := !pos + 4; Bool true
    | 'f' -> pos := !pos + 5; Bool false
    | 'n' -> pos := !pos + 4; Null
    | _ ->
        let start = !pos in
        let is_num c =
          (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e'
          || c = 'E'
        in
        while is_num (peek ()) do incr pos done;
        if !pos = start then fail "unexpected character"
        else Num (float_of_string (String.sub s start (!pos - start)))
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- trace ------------------------------------------------------------ *)

let assoc name = function
  | Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let trace_export_is_chrome_json () =
  with_obs_reset @@ fun () ->
  Obs.enable ~metrics:false ~trace:true ();
  let r = Obs.Trace.span "test.outer" (fun () ->
      Obs.Trace.span_arg "test.inner" "node" 17 (fun () -> 41 + 1))
  in
  check_int "span returns the thunk's value" 42 r;
  Obs.Trace.instant ~arg_name:"hits" ~arg:3 "test.instant";
  Obs.Trace.counter_event "test.depth" 5;
  check_int "four events recorded" 4 (Obs.Trace.recorded ());
  check_int "none dropped" 0 (Obs.Trace.dropped ());
  (* A span must survive (and re-raise) an exception in its thunk. *)
  check "span re-raises" true
    (match Obs.Trace.span "test.raises" (fun () -> raise Exit) with
    | exception Exit -> true
    | _ -> false);
  let path = Filename.temp_file "lcp_trace" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Obs.Trace.export path;
  let events =
    match assoc "traceEvents" (parse_json (read_file path)) with
    | Some (Arr evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  check_int "all events exported" 5 (List.length events);
  List.iter
    (fun e ->
      check "has name" true
        (match assoc "name" e with Some (Str _) -> true | _ -> false);
      check "has ts" true
        (match assoc "ts" e with Some (Num t) -> t >= 0. | _ -> false);
      match assoc "ph" e with
      | Some (Str "X") ->
          check "X has dur" true
            (match assoc "dur" e with Some (Num d) -> d >= 0. | _ -> false)
      | Some (Str ("i" | "C")) -> ()
      | _ -> Alcotest.fail "unexpected ph")
    events;
  (* sorted by timestamp *)
  let ts =
    List.map
      (fun e -> match assoc "ts" e with Some (Num t) -> t | _ -> 0.)
      events
  in
  check "sorted by ts" true (List.sort compare ts = ts);
  (* the inner span nests within the outer one *)
  let find name =
    List.find
      (fun e -> assoc "name" e = Some (Str name))
      events
  in
  let span_bounds e =
    match (assoc "ts" e, assoc "dur" e) with
    | Some (Num t), Some (Num d) -> (t, t +. d)
    | _ -> Alcotest.fail "span without ts/dur"
  in
  let o0, o1 = span_bounds (find "test.outer") in
  let i0, i1 = span_bounds (find "test.inner") in
  check "inner nested in outer" true (o0 <= i0 && i1 <= o1);
  (match assoc "args" (find "test.inner") with
  | Some (Obj [ ("node", Num 17.) ]) -> ()
  | _ -> Alcotest.fail "span_arg argument lost")

let trace_ring_wraps () =
  with_obs_reset @@ fun () ->
  Obs.Trace.set_capacity 16;
  Obs.enable ~metrics:false ~trace:true ();
  for i = 1 to 100 do
    Obs.Trace.instant ~arg_name:"i" ~arg:i "test.tick"
  done;
  check_int "ring holds capacity" 16 (Obs.Trace.recorded ());
  check_int "rest counted as dropped" 84 (Obs.Trace.dropped ());
  let path = Filename.temp_file "lcp_trace" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Obs.Trace.export path;
  (match assoc "traceEvents" (parse_json (read_file path)) with
  | Some (Arr evs) ->
      check_int "export holds the survivors" 16 (List.length evs);
      (* the survivors are the newest events: args 85..100 *)
      let args =
        List.filter_map
          (fun e ->
            match assoc "args" e with
            | Some (Obj [ ("i", Num v) ]) -> Some (int_of_float v)
            | _ -> None)
          evs
      in
      check "oldest overwritten" true
        (List.sort compare args = List.init 16 (fun i -> 85 + i))
  | _ -> Alcotest.fail "no traceEvents array");
  Obs.Trace.clear ();
  check_int "clear empties the ring" 0 (Obs.Trace.recorded ());
  check_int "clear resets dropped" 0 (Obs.Trace.dropped ())

let trace_disabled_is_passthrough () =
  with_obs_reset @@ fun () ->
  check_int "span runs the thunk" 7 (Obs.Trace.span "test.off" (fun () -> 7));
  Obs.Trace.instant "test.off";
  check_int "nothing recorded" 0 (Obs.Trace.recorded ())

let metrics_json_parses () =
  with_obs_reset @@ fun () ->
  Obs.enable ();
  Obs.Metrics.reset ();
  Obs.Metrics.add m_c 3;
  Obs.Metrics.observe m_h 5;
  match parse_json (Obs.Metrics.to_json (Obs.Metrics.snapshot ())) with
  | Obj kvs ->
      check "counter is a number" true
        (match List.assoc_opt "test.counter" kvs with
        | Some (Num 3.) -> true
        | _ -> false);
      check "histogram is an object with buckets" true
        (match List.assoc_opt "test.hist" kvs with
        | Some (Obj h) -> (
            match List.assoc_opt "buckets" h with Some (Arr _) -> true | _ -> false)
        | _ -> false)
  | _ -> Alcotest.fail "to_json did not produce an object"

let suite =
  ( "obs",
    [
      Alcotest.test_case "clock is monotonic" `Quick clock_monotonic;
      Alcotest.test_case "metrics semantics" `Quick metrics_semantics;
      Alcotest.test_case "disabled metrics record nothing" `Quick
        metrics_disabled_is_inert;
      Alcotest.test_case "registration idempotent, kind-checked" `Quick
        metrics_registration;
      Alcotest.test_case "multi-domain shard merge" `Quick
        metrics_multidomain_merge;
      Alcotest.test_case "deterministic filter" `Quick deterministic_filter;
      Alcotest.test_case "trace export is chrome JSON" `Quick
        trace_export_is_chrome_json;
      Alcotest.test_case "trace ring wraps, newest survive" `Quick
        trace_ring_wraps;
      Alcotest.test_case "disabled trace is pass-through" `Quick
        trace_disabled_is_passthrough;
      Alcotest.test_case "metrics to_json parses" `Quick metrics_json_parses;
    ] )
