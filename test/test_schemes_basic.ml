(* Schemes at the bottom of the hierarchy: LCP(0), LCP(O(1)),
   LCP(O(log k)) — Table 1 rows T1a-1..T1a-10, T1b-1..T1b-4. *)

open Test_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let of_g g = Instance.of_graph g

(* --- Eulerian: LCP(0) --- *)

let eulerian () =
  assert_complete Eulerian.scheme
    [ of_g (Builders.cycle 6); of_g (Builders.complete 5); of_g (Builders.complete 7) ];
  (* no-instances rejected with the only possible (empty) proof *)
  List.iter
    (fun g ->
      check "rejects" false (Scheme.accepts Eulerian.scheme (of_g g) Proof.empty))
    [ Builders.path 4; Builders.complete 4; Builders.star 3 ];
  check_int "zero bits" 0 (proof_size Eulerian.scheme (of_g (Builders.cycle 8)))

(* --- line graphs: LCP(0) --- *)

let line_graphs () =
  assert_complete Line_graph_scheme.scheme
    [
      of_g (Line_graph.of_root_graph (Builders.star 4));
      of_g (Line_graph.of_root_graph (Builders.cycle 6));
      of_g (Builders.complete 3);
      of_g (Line_graph.of_root_graph (Random_graphs.tree (st 2) 7));
    ];
  List.iter
    (fun g ->
      check "rejects non-line-graph" false
        (Scheme.accepts Line_graph_scheme.scheme (of_g g) Proof.empty))
    [ Builders.star 3; Builders.complete_bipartite 1 3; Builders.wheel 5 ]

(* --- bipartite: LCP(1) --- *)

let bipartite () =
  assert_complete Bipartite_scheme.scheme
    [
      of_g (Builders.cycle 8);
      of_g (Builders.grid 4 5);
      of_g (Builders.complete_bipartite 3 4);
      of_g (Random_graphs.tree (st 3) 20);
      of_g (Builders.hypercube 4);
    ];
  assert_refuses Bipartite_scheme.scheme
    [ of_g (Builders.cycle 5); of_g Builders.petersen ];
  assert_sound_random Bipartite_scheme.scheme
    [ of_g (Builders.cycle 9); of_g (Builders.wheel 5) ];
  assert_sound_exhaustive ~max_bits:1 Bipartite_scheme.scheme
    [ of_g (Builders.cycle 5) ];
  assert_tamper_sensitive Bipartite_scheme.scheme (of_g (Builders.grid 3 3))

let qcheck_bipartite =
  QCheck.Test.make ~name:"bipartite scheme decides random graphs" ~count:60
    QCheck.(pair (int_range 2 12) (int_bound 1_000_000))
    (fun (n, seed) ->
      let g = Random_graphs.gnp (Random.State.make [| seed |]) n 0.3 in
      let inst = Instance.of_graph g in
      match Scheme.prove_and_check Bipartite_scheme.scheme inst with
      | `Accepted _ -> Bipartite.is_bipartite g
      | `No_proof -> not (Bipartite.is_bipartite g)
      | `Rejected _ -> false)

(* --- s-t reachability / unreachability: LCP(1) --- *)

let st_instances_reachable =
  [
    St.of_graph (Builders.grid 3 4) ~s:0 ~t:11;
    St.of_graph (Builders.cycle 10) ~s:0 ~t:5;
    St.of_graph (Random_graphs.connected_gnp (st 4) 14 0.2) ~s:0 ~t:13;
  ]

let disconnected_pair () =
  (* two components: s in one, t in the other *)
  let g =
    Graph.union_disjoint (Builders.cycle 5) (Canonical.shifted (Builders.cycle 5) 10)
  in
  St.of_graph g ~s:0 ~t:11

let st_reach () =
  assert_complete Reachability.undirected_reach st_instances_reachable;
  assert_refuses Reachability.undirected_reach [ disconnected_pair () ];
  assert_sound_random Reachability.undirected_reach [ disconnected_pair () ];
  assert_sound_exhaustive ~max_bits:1 Reachability.undirected_reach
    [
      (let g = Graph.union_disjoint (Builders.path 3) (Canonical.shifted (Builders.path 3) 5) in
       St.of_graph g ~s:0 ~t:7);
    ];
  check_int "1 bit" 1
    (proof_size Reachability.undirected_reach (List.hd st_instances_reachable))

let st_unreach () =
  assert_complete Reachability.undirected_unreach [ disconnected_pair () ];
  assert_refuses Reachability.undirected_unreach st_instances_reachable;
  assert_sound_random Reachability.undirected_unreach st_instances_reachable;
  assert_sound_exhaustive ~max_bits:1 Reachability.undirected_unreach
    [ St.of_graph (Builders.path 4) ~s:0 ~t:3 ]

let st_unreach_directed () =
  (* an arc-chain 0 -> 1 -> 2 and a lonely 3 -> 2 back-arc: t=3 is
     unreachable from s=0 although the underlying graph is connected *)
  let d = Digraph.of_arcs [ (0, 1); (1, 2); (3, 2) ] in
  let yes = St.of_digraph d ~s:0 ~t:3 in
  assert_complete Reachability.directed_unreach [ yes ];
  assert_sound_exhaustive ~max_bits:1 Reachability.directed_unreach
    [ St.of_digraph (Digraph.of_arcs [ (0, 1); (1, 2); (2, 3) ]) ~s:0 ~t:3 ];
  (* reachable: prover refuses *)
  assert_refuses Reachability.directed_unreach
    [ St.of_digraph (Digraph.of_arcs [ (0, 1); (1, 3) ]) ~s:0 ~t:3 ]

let st_reach_directed () =
  let chain = Digraph.of_arcs [ (0, 1); (1, 2); (2, 3); (3, 4); (0, 2) ] in
  assert_complete Reachability.directed_reach_pointer
    [ St.of_digraph chain ~s:0 ~t:4 ];
  (* back-edges: path must follow arc directions *)
  let back = Digraph.of_arcs [ (1, 0); (2, 1); (3, 2) ] in
  assert_refuses Reachability.directed_reach_pointer [ St.of_digraph back ~s:0 ~t:3 ];
  assert_sound_random ~max_bits:6 Reachability.directed_reach_pointer
    [ St.of_digraph back ~s:0 ~t:3 ];
  (* the classic soundness trap: a disjoint pointer cycle must not fool
     the verifier (this is why pointers are mutual) *)
  let with_cycle =
    Digraph.of_arcs [ (0, 1); (5, 6); (6, 7); (7, 5); (8, 3) ]
  in
  assert_sound_random ~max_bits:8 Reachability.directed_reach_pointer
    [ St.of_digraph with_cycle ~s:0 ~t:3 ]

(* --- s-t connectivity = k: LCP(O(log k)) / planar LCP(O(1)) --- *)

let conn_instance g s t =
  let k = Flow.vertex_connectivity g ~s ~t in
  (Connectivity.instance g ~s ~t ~k, k)

let connectivity_general () =
  List.iter
    (fun (g, s, t) ->
      let inst, k = conn_instance g s t in
      if k >= 1 then begin
        assert_complete Connectivity.general [ inst ];
        (* wrong k must be refused and unprovable *)
        let wrong = Connectivity.instance g ~s ~t ~k:(k + 1) in
        assert_refuses Connectivity.general [ wrong ];
        assert_sound_random ~samples:150 ~max_bits:6 Connectivity.general [ wrong ];
        let wrong2 = Connectivity.instance g ~s ~t ~k:(max 1 (k - 1)) in
        if k > 1 then assert_sound_random ~samples:150 ~max_bits:6 Connectivity.general [ wrong2 ]
      end)
    [
      (Builders.grid 3 3, 0, 8);
      (Builders.grid 4 4, 0, 15);
      (Builders.hypercube 3, 0, 7);
      (Builders.cycle 8, 0, 4);
      (Random_graphs.connected_gnp (st 6) 12 0.3, 0, 11);
    ]

let connectivity_planar () =
  List.iter
    (fun (g, s, t) ->
      let inst, k = conn_instance g s t in
      if k >= 1 then begin
        assert_complete Connectivity.planar [ inst ];
        let wrong = Connectivity.instance g ~s ~t ~k:(k + 1) in
        assert_sound_random ~samples:150 ~max_bits:6 Connectivity.planar [ wrong ]
      end)
    [ (Builders.grid 3 3, 0, 8); (Builders.grid 3 5, 0, 14); (Builders.cycle 9, 0, 4) ];
  (* constant proof size: the planar scheme's labels do not grow *)
  let size_at rows =
    let g = Builders.grid rows rows in
    let inst, _ = conn_instance g 0 ((rows * rows) - 1) in
    proof_size Connectivity.planar inst
  in
  check "planar size constant" true (size_at 5 <= 10 && size_at 3 <= 10)

(* --- chromatic number <= k: LCP(O(log k)) --- *)

let chromatic () =
  List.iter
    (fun (g, k) ->
      let inst = Chromatic.instance_with_k g k in
      assert_complete Chromatic.scheme [ inst ];
      (* k-1 colours must fail *)
      if k >= 2 then begin
        let tight = Chromatic.instance_with_k g (k - 1) in
        assert_refuses Chromatic.scheme [ tight ];
        assert_sound_random ~max_bits:4 Chromatic.scheme [ tight ]
      end)
    [
      (Builders.cycle 5, 3);
      (Builders.complete 5, 5);
      (Builders.petersen, 3);
      (Builders.wheel 5, 4);
      (Builders.grid 3 4, 2);
    ];
  assert_sound_exhaustive ~max_bits:2 Chromatic.scheme
    [ Chromatic.instance_with_k (Builders.complete 4) 3 ]

(* --- LCL problems: LCP(0) --- *)

let lcl () =
  let g = Builders.cycle 6 in
  (* proper colouring as labels *)
  let good =
    Instance.with_node_labels (of_g g)
      (List.map (fun v -> (v, Bits.encode_int (v mod 2))) (Graph.nodes g))
  in
  check "lcl colouring accepted" true
    (Scheme.accepts Lcl.proper_colouring good Proof.empty);
  let bad =
    Instance.with_node_labels (of_g g)
      (List.map (fun v -> (v, Bits.encode_int 0)) (Graph.nodes g))
  in
  check "lcl colouring rejected" false
    (Scheme.accepts Lcl.proper_colouring bad Proof.empty);
  (* maximal independent set *)
  let mis =
    Instance.with_node_labels (of_g g)
      (List.map (fun v -> (v, Bits.one_bit (v mod 2 = 0))) (Graph.nodes g))
  in
  check "mis accepted" true
    (Scheme.accepts Lcl.maximal_independent_set mis Proof.empty);
  let not_maximal =
    Instance.with_node_labels (of_g g)
      (List.map (fun v -> (v, Bits.one_bit false)) (Graph.nodes g))
  in
  check "empty set not maximal" false
    (Scheme.accepts Lcl.maximal_independent_set not_maximal Proof.empty);
  (* agreement *)
  let agree =
    Instance.with_node_labels (of_g g)
      (List.map (fun v -> (v, Bits.of_string "1011")) (Graph.nodes g))
  in
  check "agreement accepted" true (Scheme.accepts Lcl.agreement agree Proof.empty)

(* --- matchings: LCP(0) and LCP(1) --- *)

let maximal_matching () =
  let g = Builders.grid 3 4 in
  let m = Matching.greedy_maximal g in
  assert_complete Matching_schemes.maximal [ Instance.flag_edges (of_g g) m ];
  (* an empty matching on a graph with edges is not maximal *)
  check "empty not maximal" false
    (Scheme.accepts Matching_schemes.maximal (Instance.flag_edges (of_g g) []) Proof.empty);
  (* two adjacent flagged edges are not a matching *)
  let bad = Instance.flag_edges (of_g (Builders.path 3)) [ (0, 1); (1, 2) ] in
  check "overlapping rejected" false
    (Scheme.accepts Matching_schemes.maximal bad Proof.empty)

let maximum_matching_bipartite () =
  List.iter
    (fun g ->
      let m = Matching.maximum_bipartite g in
      let inst = Instance.flag_edges (of_g g) m in
      assert_complete Matching_schemes.maximum_bipartite [ inst ];
      check_int "1 bit" 1 (proof_size Matching_schemes.maximum_bipartite inst))
    [
      Builders.complete_bipartite 3 5;
      Builders.cycle 10;
      Builders.path 7;
      Random_graphs.bipartite (st 7) 5 6 0.5;
    ];
  (* a maximal-but-not-maximum matching must be refused and unprovable *)
  let g = Builders.path 4 in
  (* matching {1-2} is maximal but not maximum ({0-1, 2-3}) *)
  let submax = Instance.flag_edges (of_g g) [ (1, 2) ] in
  assert_refuses Matching_schemes.maximum_bipartite [ submax ];
  assert_sound_exhaustive ~max_bits:1 Matching_schemes.maximum_bipartite [ submax ]

let maximum_weight () =
  let g = Builders.cycle 8 in
  let weights (u, v) = ((u + v) mod 5) + 1 in
  let m = Weighted_matching.maximum_weight g weights in
  let inst = Matching_schemes.weighted_instance g weights m in
  assert_complete Matching_schemes.maximum_weight_bipartite [ inst ];
  (* a lighter matching is refused *)
  let m' = [ (0, 1) ] in
  let inst' = Matching_schemes.weighted_instance g weights m' in
  assert_refuses Matching_schemes.maximum_weight_bipartite [ inst' ];
  assert_sound_random ~samples:300 ~max_bits:5 Matching_schemes.maximum_weight_bipartite
    [ inst' ]

let qcheck_maximum_weight =
  QCheck.Test.make ~name:"weighted matching scheme: prove + verify random instances"
    ~count:40
    QCheck.(pair (pair (int_range 2 5) (int_range 2 5)) (int_bound 1_000_000))
    (fun ((a, b), seed) ->
      let rnd = Random.State.make [| seed |] in
      let g = Random_graphs.bipartite rnd a b 0.5 in
      let weights (u, v) = (u * 7 + v * 3) mod 6 in
      let m = Weighted_matching.maximum_weight g weights in
      let inst = Matching_schemes.weighted_instance g weights m in
      match Scheme.prove_and_check Matching_schemes.maximum_weight_bipartite inst with
      | `Accepted _ -> true
      | _ -> false)

(* --- even n on cycles: LCP(1) --- *)

let even_cycle () =
  assert_complete Counting.even_cycle
    [ of_g (Builders.cycle 6); of_g (Builders.cycle 12) ];
  assert_refuses Counting.even_cycle [ of_g (Builders.cycle 7) ];
  assert_sound_exhaustive ~max_bits:1 Counting.even_cycle [ of_g (Builders.cycle 5) ]

let suite =
  ( "schemes-constant",
    [
      Alcotest.test_case "T1a-1 eulerian" `Quick eulerian;
      Alcotest.test_case "T1a-2 line graphs" `Slow line_graphs;
      Alcotest.test_case "T1a-7 bipartite" `Quick bipartite;
      QCheck_alcotest.to_alcotest qcheck_bipartite;
      Alcotest.test_case "T1a-3 st-reachability" `Quick st_reach;
      Alcotest.test_case "T1a-4 st-unreachability" `Quick st_unreach;
      Alcotest.test_case "T1a-5 st-unreachability directed" `Quick st_unreach_directed;
      Alcotest.test_case "open: directed reachability pointer" `Quick st_reach_directed;
      Alcotest.test_case "T1a-9 connectivity general" `Slow connectivity_general;
      Alcotest.test_case "T1a-6 connectivity planar" `Slow connectivity_planar;
      Alcotest.test_case "T1a-10 chromatic <= k" `Quick chromatic;
      Alcotest.test_case "T1b-2 LCL problems" `Quick lcl;
      Alcotest.test_case "T1b-1 maximal matching" `Quick maximal_matching;
      Alcotest.test_case "T1b-3 maximum matching bipartite" `Quick maximum_matching_bipartite;
      Alcotest.test_case "T1b-4 maximum weight matching" `Quick maximum_weight;
      QCheck_alcotest.to_alcotest qcheck_maximum_weight;
      Alcotest.test_case "T1a-8 even n on cycles" `Quick even_cycle;
    ] )
