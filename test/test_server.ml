(* End-to-end tests for the verification daemon, all over a loopback
   socket on an ephemeral port: the compiled-verifier cache (warm
   requests must hit it and be measurably faster than cold ones),
   backpressure shedding, per-request deadlines, and the rule that a
   peer speaking garbage gets a typed error — never a hang, never a
   crash. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let with_server config f =
  let t = Server.create { config with Server.port = 0 } in
  let th = Server.start t in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      Thread.join th)
    (fun () -> f t (Server.port t))

let with_client port f =
  match Client.connect ~port () with
  | Error m -> Alcotest.failf "connect: %s" m
  | Ok c -> Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let call c req =
  match Client.call c req with
  | Ok resp -> resp
  | Error m -> Alcotest.failf "call: transport error %s" m

let expect_error code what = function
  | Wire.Error_reply e when e.code = code -> ()
  | resp ->
      Alcotest.failf "%s: expected %s error, got %s" what
        (Wire.error_code_to_string code)
        (match resp with
        | Wire.Error_reply e -> Wire.error_code_to_string e.code
        | Wire.Proved _ -> "Proved"
        | Wire.Verified _ -> "Verified"
        | Wire.Forged _ -> "Forged"
        | Wire.Stats_reply _ -> "Stats_reply"
        | Wire.Catalog_reply _ -> "Catalog_reply"
        | Wire.Metrics_text_reply _ -> "Metrics_text_reply"
        | Wire.Health_reply _ -> "Health_reply"
        | Wire.Drain_reply _ -> "Drain_reply"
        | Wire.Batch_reply _ -> "Batch_reply"
        | Wire.Partition_verified _ -> "Partition_verified"
        | Wire.Sampled_verified _ -> "Sampled_verified"
        | Wire.Trace_export_reply _ -> "Trace_export_reply"
        | Wire.Profile_export_reply _ -> "Profile_export_reply")

(* ------------------------------------------------------------------ *)
(* In-process units: the LRU and the scheme registry. *)

let lru_unit () =
  let l = Lru.create ~capacity:2 in
  Lru.put l "a" 1;
  Lru.put l "b" 2;
  check "a present" true (Lru.find l "a" = Some 1);
  (* b is now least recently used; inserting c must evict it *)
  Lru.put l "c" 3;
  check "b evicted" true (Lru.find l "b" = None);
  check "a survives" true (Lru.find l "a" = Some 1);
  check "c present" true (Lru.find l "c" = Some 3);
  check_int "length" 2 (Lru.length l);
  check_int "hits" 3 (Lru.hits l);
  check_int "misses" 1 (Lru.misses l);
  check_int "evictions" 1 (Lru.evictions l);
  (* capacity 0 is the cache-disabled mode the server maps
     --cache-size=0 to: put is a no-op, every find is a miss *)
  let z = Lru.create ~capacity:0 in
  Lru.put z "x" 1;
  check "capacity 0 never stores" true (Lru.find z "x" = None);
  check_int "capacity 0 stays empty" 0 (Lru.length z);
  check "negative capacity rejected" true
    (match Lru.create ~capacity:(-1) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let registry_unit () =
  check "eulerian registered" true
    (match Registry.find "eulerian" with
    | Some e -> e.Registry.name = "eulerian"
    | None -> false);
  check "unknown scheme absent" true (Registry.find "no-such-scheme" = None);
  let names = List.map (fun e -> e.Registry.name) Registry.all in
  check "names unique" true
    (List.length names = List.length (List.sort_uniq compare names))

(* ------------------------------------------------------------------ *)
(* Loopback: catalog, prove/verify, the compiled-verifier cache. *)

let loopback_cache () =
  with_server { Server.default_config with jobs = 2; cache_size = 8 }
  @@ fun t port ->
  with_client port @@ fun c ->
  (* catalog mirrors the registry *)
  (match call c Wire.Catalog with
  | Wire.Catalog_reply entries ->
      check_int "catalog size" (List.length Registry.all) (List.length entries);
      check "catalog has eulerian" true
        (List.exists (fun e -> e.Wire.name = "eulerian") entries)
  | r -> expect_error Wire.Internal "catalog" r);
  (* typed errors for bad scheme / bad graph *)
  expect_error Wire.Unknown_scheme "unknown scheme"
    (call c (Wire.Prove { scheme = "no-such-scheme"; graph6 = "A_" }));
  expect_error Wire.Bad_graph "bad graph"
    (call c (Wire.Prove { scheme = "eulerian"; graph6 = "~?" }));
  (* prove a yes-instance, then feed the proof back through verify;
     bipartite's proof is a 2-colouring, so corrupting it is visible
     (eulerian would accept any proof — its verifier reads no bits) *)
  let g6 = Graph6.encode (Builders.cycle 64) in
  let proof =
    match call c (Wire.Prove { scheme = "bipartite"; graph6 = g6 }) with
    | Wire.Proved (Some p) -> p
    | Wire.Proved None -> Alcotest.fail "prover called C64 a no-instance"
    | r ->
        expect_error Wire.Internal "prove" r;
        assert false
  in
  (match call c (Wire.Verify { scheme = "bipartite"; graph6 = g6; proof }) with
  | Wire.Verified { accepted; rejecting } ->
      check "honest proof accepted" true accepted;
      check "no rejecting nodes" true (rejecting = [])
  | r -> expect_error Wire.Internal "verify" r);
  (* flip one node's colour: it and its neighbours must reject *)
  let bad = Proof.set proof 0 (Bits.flip (Proof.get proof 0) 0) in
  (match
     call c (Wire.Verify { scheme = "bipartite"; graph6 = g6; proof = bad })
   with
  | Wire.Verified { accepted; rejecting } ->
      check "corrupt proof rejected" false accepted;
      check "some node rejects" true (rejecting <> [])
  | r -> expect_error Wire.Internal "verify corrupt" r);
  (* every request after the first prove reused the compiled image;
     the misses are the first C64 prove and the bad-graph request
     (its cache lookup happens before the graph6 bytes are parsed) *)
  let s = Server.stats t in
  check "cache hits counted" true (s.Server.cache_hits >= 2);
  check_int "two cache misses" 2 s.Server.cache_misses;
  check_int "one cached entry" 1 s.Server.cache_entries

(* Warm requests skip the graph6 decode and the compile; on a graph
   this size that is the bulk of the request, so the speedup must be
   visible even on a noisy CI box. *)
let warm_faster_than_cold () =
  with_server { Server.default_config with jobs = 1; cache_size = 8 }
  @@ fun t port ->
  with_client port @@ fun c ->
  let g6 = Graph6.encode (Builders.cycle 2048) in
  let verify () =
    let t0 = Unix.gettimeofday () in
    (match
       call c
         (Wire.Verify { scheme = "bipartite"; graph6 = g6; proof = Proof.empty })
     with
    | Wire.Verified { accepted; _ } ->
        (* the empty proof is rejected — only the timing matters here *)
        check "empty proof rejected" false accepted
    | r -> expect_error Wire.Internal "verify" r);
    Unix.gettimeofday () -. t0
  in
  let cold = verify () in
  let warm = List.fold_left min infinity (List.init 3 (fun _ -> verify ())) in
  let s = Server.stats t in
  check_int "cold run compiled once" 1 s.Server.cache_misses;
  check_int "warm runs all hit" 3 s.Server.cache_hits;
  check
    (Printf.sprintf "warm (%.1f ms) at least 2x faster than cold (%.1f ms)"
       (warm *. 1e3) (cold *. 1e3))
    true
    (warm *. 2. < cold)

(* ------------------------------------------------------------------ *)
(* Backpressure and deadlines: production failure modes must surface
   as typed errors, immediately, on a live connection. *)

let overload_sheds () =
  with_server { Server.default_config with jobs = 1; max_queue = 0 }
  @@ fun t port ->
  with_client port @@ fun c ->
  let g6 = Graph6.encode (Builders.cycle 16) in
  expect_error Wire.Overloaded "queue bound 0 sheds every prove"
    (call c (Wire.Prove { scheme = "eulerian"; graph6 = g6 }));
  (* stats is served inline on the connection thread, so it still
     answers while the compute path sheds *)
  (match call c Wire.Stats with
  | Wire.Stats_reply s -> check "shed counted in stats" true (s.overloaded >= 1)
  | r -> expect_error Wire.Internal "stats" r);
  check "server counter agrees" true ((Server.stats t).Server.overloaded >= 1)

let deadline_exceeded () =
  (* 1 ms is far below the cold decode+compile time of a 2048-node
     graph, so each request deterministically trips the completion
     checkpoint; distinct sizes keep the second request from riding
     the first one's cache entry *)
  with_server { Server.default_config with jobs = 1; deadline_ms = 1 }
  @@ fun t port ->
  with_client port @@ fun c ->
  List.iter
    (fun n ->
      expect_error Wire.Deadline_exceeded
        (Printf.sprintf "cold prove of C%d under a 1 ms deadline" n)
        (call c
           (Wire.Prove
              { scheme = "eulerian"; graph6 = Graph6.encode (Builders.cycle n) })))
    [ 2048; 2049 ];
  (* the connection survives and undeadlined endpoints still work *)
  (match call c Wire.Stats with
  | Wire.Stats_reply s ->
      check "deadline misses counted" true (s.deadline_exceeded >= 2)
  | r -> expect_error Wire.Internal "stats" r);
  check "server counter agrees" true
    ((Server.stats t).Server.deadline_exceeded >= 2)

(* ------------------------------------------------------------------ *)
(* Raw-socket abuse: garbage frames, wrong version, garbage payload. *)

let read_exact fd len =
  let buf = Bytes.create len in
  let rec go off =
    if off = len then Some (Bytes.to_string buf)
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> None
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let read_response fd =
  match read_exact fd Wire.header_bytes with
  | None -> Alcotest.fail "connection closed before a response"
  | Some raw -> (
      match Wire.decode_header raw with
      | Error m -> Alcotest.failf "bad response header: %s" m
      | Ok { Wire.version; tag; length } -> (
          match read_exact fd length with
          | None -> Alcotest.fail "truncated response"
          | Some payload -> (
              match Wire.decode_response_payload ~version ~tag payload with
              | Ok (_, _, r) -> r
              | Error m -> Alcotest.failf "bad response payload: %s" m)))

let with_raw_socket port f =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
  @@ fun () ->
  Unix.connect fd
    (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
  f fd

let raw_frame ~version ~tag payload =
  let len = String.length payload in
  let b = Buffer.create (8 + len) in
  Buffer.add_string b "LC";
  Buffer.add_char b (Char.chr version);
  Buffer.add_char b (Char.chr tag);
  Buffer.add_char b (Char.chr ((len lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((len lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((len lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (len land 0xff));
  Buffer.add_string b payload;
  Buffer.contents b

let garbage_frames () =
  with_server Server.default_config @@ fun t port ->
  (* pure noise: one Bad_frame reply, then the server drops the link *)
  with_raw_socket port (fun fd ->
      ignore (Unix.write_substring fd "GARBAGE!" 0 8);
      (match read_response fd with
      | Wire.Error_reply { code = Wire.Bad_frame; _ } -> ()
      | r -> expect_error Wire.Bad_frame "garbage" r);
      check "connection closed after garbage" true
        (read_exact fd 1 = None));
  (* right magic, future version: the typed answer, then drop *)
  with_raw_socket port (fun fd ->
      let frame = raw_frame ~version:(Wire.protocol_version + 1) ~tag:5 "" in
      ignore (Unix.write_substring fd frame 0 (String.length frame));
      (match read_response fd with
      | Wire.Error_reply { code = Wire.Unsupported_version; _ } -> ()
      | r -> expect_error Wire.Unsupported_version "version" r);
      check "connection closed after version mismatch" true
        (read_exact fd 1 = None));
  (* well-framed but undecodable payload: Bad_request, and the
     connection keeps working afterwards *)
  with_raw_socket port (fun fd ->
      let frame = raw_frame ~version:Wire.protocol_version ~tag:1 "abc" in
      ignore (Unix.write_substring fd frame 0 (String.length frame));
      (match read_response fd with
      | Wire.Error_reply { code = Wire.Bad_request; _ } -> ()
      | r -> expect_error Wire.Bad_request "payload" r);
      let stats = Wire.encode_request Wire.Stats in
      ignore (Unix.write_substring fd stats 0 (String.length stats));
      match read_response fd with
      | Wire.Stats_reply _ -> ()
      | r -> expect_error Wire.Internal "stats after bad payload" r);
  check "bad frames counted" true ((Server.stats t).Server.bad_frames >= 3)

(* ------------------------------------------------------------------ *)
(* The load generator against a live server: every response must be
   semantically ok and repeated graphs must hit the cache. *)

let loadgen_loopback () =
  with_server { Server.default_config with jobs = 2 } @@ fun _t port ->
  match
    Client.loadgen ~port ~connections:2 ~requests:10 ~mix:(1, 4, 0)
      ~scheme:"eulerian" ~sizes:[ 24; 32 ] ()
  with
  | Error m -> Alcotest.failf "loadgen: %s" m
  | Ok r ->
      check_int "all requests ok" 20 r.Client.ok;
      check_int "no errors" 0 r.Client.errors;
      check "throughput positive" true (r.Client.throughput_rps > 0.);
      (match r.Client.server with
      | None -> Alcotest.fail "loadgen fetched no server stats"
      | Some s ->
          check "repeated graphs hit the cache" true (s.Wire.cache_hits > 0);
          check_int "one compile per size" 2 s.Wire.cache_misses);
      (* the CI artifact must be one well-formed JSON object; a cheap
         structural sanity check keeps this test dependency-free *)
      let json = Client.report_json r in
      check "json nonempty object" true
        (String.length json > 2 && json.[0] = '{'
        && json.[String.length json - 1] = '}')

(* ------------------------------------------------------------------ *)
(* Telemetry: correlation ids, health/readiness, the Prometheus
   exposition, the HTTP sidecar, structured logs, the slow-request
   recorder and the reset guard. *)

let correlation_ids () =
  with_server Server.default_config @@ fun _t port ->
  with_client port @@ fun c ->
  (* an explicit id is echoed on the response *)
  (match Client.call_id c ~id:777 Wire.Stats with
  | Ok (id, Wire.Stats_reply _) -> check_int "explicit id echoed" 777 id
  | Ok (_, r) -> expect_error Wire.Internal "stats" r
  | Error m -> Alcotest.failf "call_id: %s" m);
  (* id 0 means "assign me one": the server picks a nonzero id *)
  (match Client.call_id c ~id:0 Wire.Catalog with
  | Ok (id, Wire.Catalog_reply _) ->
      check "server assigns a nonzero id" true (id > 0)
  | Ok (_, r) -> expect_error Wire.Internal "catalog" r
  | Error m -> Alcotest.failf "call_id: %s" m);
  (* a compute request's id survives the pool round trip too *)
  let g6 = Graph6.encode (Builders.cycle 16) in
  (match Client.call_id c ~id:4242 (Wire.Prove { scheme = "eulerian"; graph6 = g6 }) with
  | Ok (id, Wire.Proved _) -> check_int "compute id echoed" 4242 id
  | Ok (_, r) -> expect_error Wire.Internal "prove" r
  | Error m -> Alcotest.failf "call_id: %s" m);
  (* a v1 client on the same server: ids never touch the wire, the
     reply arrives in v1 and decodes with id 0 *)
  match Client.connect ~version:1 ~port () with
  | Error m -> Alcotest.failf "v1 connect: %s" m
  | Ok c1 ->
      Fun.protect ~finally:(fun () -> Client.close c1) @@ fun () ->
      (match Client.call_id c1 ~id:55 Wire.Stats with
      | Ok (id, Wire.Stats_reply _) -> check_int "v1 reply has no id" 0 id
      | Ok (_, r) -> expect_error Wire.Internal "v1 stats" r
      | Error m -> Alcotest.failf "v1 call: %s" m)

let health_readiness () =
  (* a normally-configured server is ready *)
  with_server Server.default_config (fun _t port ->
      with_client port @@ fun c ->
      match call c Wire.Health with
      | Wire.Health_reply h ->
          check "ready" true h.Wire.ready;
          check_int "nothing pending" 0 h.Wire.pending;
          check_int "max_queue" Server.default_config.Server.max_queue
            h.Wire.max_queue
      | r -> expect_error Wire.Internal "health" r);
  (* max_queue 0 means the next compute request would be shed: the
     readiness probe must say so deterministically *)
  with_server { Server.default_config with max_queue = 0 } (fun t port ->
      with_client port @@ fun c ->
      (match call c Wire.Health with
      | Wire.Health_reply h ->
          check "saturated server not ready" false h.Wire.ready
      | r -> expect_error Wire.Internal "health" r);
      check "Server.health agrees" false (Server.health t).Wire.ready)

let drain_cycle () =
  with_server Server.default_config @@ fun t port ->
  with_client port @@ fun c ->
  (* enabling drain is acknowledged and flips readiness... *)
  (match call c (Wire.Drain { enable = true }) with
  | Wire.Drain_reply { draining; _ } -> check "drain acknowledged" true draining
  | r -> expect_error Wire.Internal "drain" r);
  check "Server.draining agrees" true (Server.draining t);
  (match call c Wire.Health with
  | Wire.Health_reply h -> check "draining server not ready" false h.Wire.ready
  | r -> expect_error Wire.Internal "health while draining" r);
  (* ...but the server keeps serving compute — drain is advisory *)
  let g6 = Graph6.encode (Builders.cycle 16) in
  (match call c (Wire.Prove { scheme = "eulerian"; graph6 = g6 }) with
  | Wire.Proved _ -> ()
  | r -> expect_error Wire.Internal "prove while draining" r);
  (* disabling restores readiness *)
  (match call c (Wire.Drain { enable = false }) with
  | Wire.Drain_reply { draining; _ } -> check "drain cleared" false draining
  | r -> expect_error Wire.Internal "undrain" r);
  match call c Wire.Health with
  | Wire.Health_reply h -> check "ready again" true h.Wire.ready
  | r -> expect_error Wire.Internal "health after undrain" r

let metrics_text_endpoint () =
  with_server { Server.default_config with jobs = 2 } @@ fun t port ->
  with_client port @@ fun c ->
  let g6 = Graph6.encode (Builders.cycle 24) in
  (match call c (Wire.Prove { scheme = "eulerian"; graph6 = g6 }) with
  | Wire.Proved _ -> ()
  | r -> expect_error Wire.Internal "prove" r);
  (match call c (Wire.Prove { scheme = "eulerian"; graph6 = g6 }) with
  | Wire.Proved _ -> ()
  | r -> expect_error Wire.Internal "prove" r);
  let text =
    match call c Wire.Metrics_text with
    | Wire.Metrics_text_reply text -> text
    | r ->
        expect_error Wire.Internal "metrics_text" r;
        assert false
  in
  (* every line is either a comment or a parseable sample — validated
     line by line through the same parser lcp top uses *)
  List.iteri
    (fun i line ->
      if line <> "" && line.[0] <> '#' then
        match Obs.Export.parse_sample line with
        | Some _ -> ()
        | None -> Alcotest.failf "line %d unparseable: %S" i line)
    (String.split_on_char '\n' text);
  let find name labels = Obs.Export.find_sample text ~name ~labels in
  (match find "lcp_server_requests_total" [] with
  | Some v -> check "requests_total >= 2" true (v >= 2.0)
  | None -> Alcotest.fail "lcp_server_requests_total missing");
  (* the rolling window saw both requests *)
  (match find "lcp_server_request_us_count" [ ("window", "60s") ] with
  | Some v -> check "60s window count >= 2" true (v >= 2.0)
  | None -> Alcotest.fail "60s window summary missing");
  (* all three quantiles are exposed for every horizon *)
  List.iter
    (fun w ->
      List.iter
        (fun q ->
          if find "lcp_server_request_us" [ ("window", w); ("quantile", q) ]
             = None
          then Alcotest.failf "missing quantile %s for window %s" q w)
        [ "0.5"; "0.95"; "0.99" ])
    [ "1s"; "10s"; "60s" ];
  (* the second prove hit the cache, so the ratio is positive *)
  (match find "lcp_server_cache_hit_ratio" [ ("window", "60s") ] with
  | Some v -> check "hit ratio > 0" true (v > 0.0)
  | None -> Alcotest.fail "cache hit ratio missing");
  (match find "lcp_server_ready" [] with
  | Some v -> check "ready gauge" true (v = 1.0)
  | None -> Alcotest.fail "ready gauge missing");
  check "server renderer agrees with the wire reply" true
    (String.length (Server.metrics_text t) > 0)

(* one-shot HTTP GET against the sidecar; returns (status line, body) *)
let http_get port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
  let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
  ignore (Unix.write_substring fd req 0 (String.length req));
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 1024 in
  let rec drain () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        drain ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
  in
  drain ();
  let all = Buffer.contents buf in
  let status =
    match String.index_opt all '\r' with
    | Some i -> String.sub all 0 i
    | None -> all
  in
  let body =
    let rec split i =
      if i + 4 > String.length all then ""
      else if String.sub all i 4 = "\r\n\r\n" then
        String.sub all (i + 4) (String.length all - i - 4)
      else split (i + 1)
    in
    split 0
  in
  (status, body)

let http_sidecar () =
  with_server { Server.default_config with http_port = 0 } (fun t port ->
      check "sidecar got a port" true (Server.http_port t >= 0);
      let hp = Server.http_port t in
      (* issue one request so the counters are nonzero *)
      with_client port (fun c ->
          match call c Wire.Stats with
          | Wire.Stats_reply _ -> ()
          | r -> expect_error Wire.Internal "stats" r);
      let status, body = http_get hp "/metrics" in
      check "GET /metrics is 200" true
        (String.length status >= 12 && String.sub status 9 3 = "200");
      (match Obs.Export.find_sample body ~name:"lcp_server_requests_total" ~labels:[] with
      | Some v -> check "scraped requests_total >= 1" true (v >= 1.0)
      | None -> Alcotest.fail "requests_total not scraped over HTTP");
      let status, body = http_get hp "/metrics.json" in
      check "GET /metrics.json is 200" true (String.sub status 9 3 = "200");
      check "json body is an object" true
        (String.length body > 2 && body.[0] = '{');
      let status, _ = http_get hp "/healthz" in
      check "GET /healthz is 200" true (String.sub status 9 3 = "200");
      let status, _ = http_get hp "/readyz" in
      check "GET /readyz is 200 when ready" true (String.sub status 9 3 = "200");
      let status, _ = http_get hp "/no-such-path" in
      check "unknown path is 404" true (String.sub status 9 3 = "404"));
  (* saturated server: readiness must flip to 503 while liveness stays 200 *)
  with_server
    { Server.default_config with http_port = 0; max_queue = 0 }
    (fun t _port ->
      let hp = Server.http_port t in
      let status, _ = http_get hp "/readyz" in
      check "GET /readyz is 503 when saturated" true
        (String.sub status 9 3 = "503");
      let status, _ = http_get hp "/healthz" in
      check "liveness stays 200" true (String.sub status 9 3 = "200"))

let structured_log () =
  let path = Filename.temp_file "lcp_log" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let log = Obs.Log.to_file path in
  with_server
    { Server.default_config with log = Some log }
    (fun _t port ->
      with_client port @@ fun c ->
      let g6 = Graph6.encode (Builders.cycle 16) in
      (match Client.call_id c ~id:9001 (Wire.Prove { scheme = "eulerian"; graph6 = g6 }) with
      | Ok (_, Wire.Proved _) -> ()
      | Ok (_, r) -> expect_error Wire.Internal "prove" r
      | Error m -> Alcotest.failf "prove: %s" m);
      expect_error Wire.Unknown_scheme "unknown scheme"
        (call c (Wire.Prove { scheme = "nope"; graph6 = g6 })));
  Obs.Log.close log;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  check_int "one log line per request" 2 (List.length lines);
  let has sub line = contains ~sub line in
  let first = List.nth lines 0 and second = List.nth lines 1 in
  check "first line carries the request id" true (has "\"rid\":9001" first);
  check "first line is ok" true (has "\"outcome\":\"ok\"" first);
  check "first line records the cache miss" true (has "\"cache\":\"miss\"" first);
  check "first line has timings" true
    (has "\"queue_wait_ns\":" first && has "\"compute_ns\":" first);
  check "error line carries the code" true
    (has "\"outcome\":\"unknown-scheme\"" second)

let slow_recorder () =
  let dir = Filename.temp_file "lcp_slow" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let cleanup () =
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  Obs.enable ~metrics:false ~trace:true ();
  Fun.protect ~finally:(fun () -> Obs.disable ()) @@ fun () ->
  with_server
    { Server.default_config with slow_ms = 1; slow_dir = dir }
    (fun t port ->
      with_client port @@ fun c ->
      (* a cold prove of a 2048-cycle decodes + compiles for well over
         1 ms — deterministically the one offending request *)
      let g6 = Graph6.encode (Builders.cycle 2048) in
      (match Client.call_id c ~id:31337 (Wire.Prove { scheme = "eulerian"; graph6 = g6 }) with
      | Ok (_, Wire.Proved _) -> ()
      | Ok (_, r) -> expect_error Wire.Internal "prove" r
      | Error m -> Alcotest.failf "prove: %s" m);
      let s = Server.stats t in
      check "slow request counted" true (s.Server.slow_requests >= 1);
      check "slice dumped under the request's id" true
        (Sys.file_exists (Filename.concat dir "slow-31337.json"));
      (* exactly one dump per offending request: files and counter agree *)
      check_int "one file per slow request" s.Server.slow_requests
        (Array.length (Sys.readdir dir));
      (* the dump is a trace JSON with the dropped footer *)
      let ic = open_in (Filename.concat dir "slow-31337.json") in
      let len = in_channel_length ic in
      let body = really_input_string ic len in
      close_in ic;
      check "dump carries the dropped footer" true
        (contains ~sub:"\"dropped\":" body))

let reset_guard () =
  with_server Server.default_config (fun _t _port ->
      check "reset blocked while the pool is live" true
        (match Obs.Metrics.reset () with
        | exception Invalid_argument _ -> true
        | () -> false));
  (* with_server joined the accept loop: the guard is released *)
  match Obs.Metrics.reset () with
  | () -> ()
  | exception Invalid_argument m ->
      Alcotest.failf "reset still guarded after shutdown: %s" m

let loadgen_error_breakdown () =
  (* against a shedding server every compute request comes back
     Overloaded: the breakdown must name the code, and ids must line
     up (the loadgen checks every echo) *)
  with_server { Server.default_config with max_queue = 0 } @@ fun _t port ->
  match
    Client.loadgen ~port ~connections:2 ~requests:5 ~mix:(1, 0, 0)
      ~scheme:"eulerian" ~sizes:[ 16 ] ()
  with
  | Error m ->
      (* the setup pass itself is shed, which is also a fine outcome —
         it proves the typed error reached the client *)
      check "setup failed with the typed code" true
        (contains ~sub:"overloaded" m)
  | Ok r ->
      check_int "no request succeeded" 0 r.Client.ok;
      check "overloaded dominates the breakdown" true
        (match List.assoc_opt "overloaded" r.Client.errors_by_code with
        | Some n -> n = r.Client.errors
        | None -> false);
      check_int "ids all echoed" 0 r.Client.id_mismatches

(* ------------------------------------------------------------------ *)
(* Batch frames end to end, and the disk cache. *)

let batch_e2e () =
  with_server { Server.default_config with jobs = 1; cache_size = 8 }
  @@ fun t port ->
  with_client port @@ fun c ->
  let g6 = Graph6.encode (Builders.cycle 64) in
  let proof =
    match call c (Wire.Prove { scheme = "bipartite"; graph6 = g6 }) with
    | Wire.Proved (Some p) -> p
    | r ->
        expect_error Wire.Internal "prove" r;
        assert false
  in
  (* mixed kinds, repeated ops (the coalescing path), one shared
     graph and one shared proof-table entry *)
  let req =
    Wire.Batch
      {
        graphs = [ g6 ];
        proofs = [ proof ];
        ops =
          [
            Wire.Op_prove { scheme = "bipartite"; graph = 0 };
            Wire.Op_verify { scheme = "bipartite"; graph = 0; proof = 0 };
            Wire.Op_prove { scheme = "bipartite"; graph = 0 };
            Wire.Op_verify { scheme = "eulerian"; graph = 0; proof = 0 };
          ];
      }
  in
  (match call c req with
  | Wire.Batch_reply
      [
        Wire.Item_proved (Some p1);
        Wire.Item_verified { accepted = true; _ };
        Wire.Item_proved (Some p2);
        Wire.Item_verified { accepted = true; _ };
      ] ->
      (* proving is deterministic, so the coalesced duplicate agrees *)
      check "duplicate ops agree" true (Proof.equal p1 p2)
  | Wire.Batch_reply items ->
      Alcotest.failf "wrong batch shape (%d items)" (List.length items)
  | r -> expect_error Wire.Internal "batch" r);
  let s = Server.stats t in
  check_int "batch ops counted" 4 s.Server.batch_ops;
  (* a batch of one must answer exactly like the plain request *)
  let plain = call c (Wire.Verify { scheme = "bipartite"; graph6 = g6; proof }) in
  (match
     call c
       (Wire.Batch
          {
            graphs = [ g6 ];
            proofs = [ proof ];
            ops =
              [ Wire.Op_verify { scheme = "bipartite"; graph = 0; proof = 0 } ];
          })
   with
  | Wire.Batch_reply [ Wire.Item_verified { accepted; rejecting } ] ->
      check "batch-of-1 = plain request" true
        (Wire.equal_response plain (Wire.Verified { accepted; rejecting }))
  | r -> expect_error Wire.Internal "batch-of-1" r)

let batch_corrupt_op_isolated () =
  with_server { Server.default_config with jobs = 1 } @@ fun _t port ->
  with_client port @@ fun c ->
  let g6 = Graph6.encode (Builders.cycle 32) in
  let bad_slot = 13 in
  let ops =
    List.init 64 (fun i ->
        if i = bad_slot then
          Wire.Op_prove { scheme = "no-such-scheme"; graph = 0 }
        else Wire.Op_prove { scheme = "eulerian"; graph = 0 })
  in
  match call c (Wire.Batch { graphs = [ g6 ]; proofs = []; ops }) with
  | Wire.Batch_reply items ->
      check_int "64 items back" 64 (List.length items);
      List.iteri
        (fun i item ->
          match item with
          | Wire.Item_error { code; _ } when i = bad_slot ->
              check "bad op gets its own typed error" true
                (code = Wire.Unknown_scheme)
          | Wire.Item_proved (Some _) when i <> bad_slot -> ()
          | _ -> Alcotest.failf "item %d has the wrong shape" i)
        items
  | r -> expect_error Wire.Internal "corrupt-op batch" r

let with_tmp_dir prefix f =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let cleanup () =
    Array.iter
      (fun file ->
        try Sys.remove (Filename.concat dir file) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:cleanup (fun () -> f dir)

let diskcache_unit () =
  with_tmp_dir "lcp_cache" @@ fun dir ->
  let graph = Builders.cycle 48 in
  let g6 = Graph6.encode graph in
  let compiled = Simulator.compile (Instance.of_graph graph) in
  let key = "bipartite/" ^ Digest.to_hex (Digest.string g6) in
  check "miss before store" true
    (Diskcache.load ~dir ~key ~scheme:"bipartite" ~graph6:g6 = None);
  Diskcache.store ~dir ~key ~scheme:"bipartite" ~graph6:g6 compiled;
  (match Diskcache.load ~dir ~key ~scheme:"bipartite" ~graph6:g6 with
  | None -> Alcotest.fail "stored image failed to load"
  | Some c ->
      (* the reloaded image must drive the verifier identically *)
      let scheme =
        match Registry.find "bipartite" with
        | Some e -> e.Registry.scheme
        | None -> Alcotest.fail "bipartite unregistered"
      in
      let inst = Simulator.compiled_instance c in
      let proof =
        match scheme.Scheme.prover inst with
        | Some p -> p
        | None -> Alcotest.fail "bipartite rejected C48"
      in
      let run cc =
        Simulator.run_verifier ~compiled:cc inst proof
          ~radius:scheme.Scheme.radius scheme.Scheme.verifier
      in
      check "reloaded image verifies like the original" true
        (run c = run compiled));
  (* identity mismatch: same file, different requested graph *)
  check "identity mismatch falls back" true
    (Diskcache.load ~dir ~key ~scheme:"bipartite" ~graph6:"A_" = None);
  check "scheme mismatch falls back" true
    (Diskcache.load ~dir ~key ~scheme:"eulerian" ~graph6:g6 = None);
  (* flip one byte mid-file: the checksum must catch it *)
  let file = Diskcache.path ~dir key in
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let body = Bytes.of_string (really_input_string ic len) in
  close_in ic;
  Bytes.set body (len / 2) (Char.chr (Char.code (Bytes.get body (len / 2)) lxor 1));
  let oc = open_out_bin file in
  output_bytes oc body;
  close_out oc;
  check "corrupt image falls back" true
    (Diskcache.load ~dir ~key ~scheme:"bipartite" ~graph6:g6 = None)

let cache_dir_warm_restart () =
  with_tmp_dir "lcp_cache" @@ fun dir ->
  let g6 = Graph6.encode (Builders.cycle 256) in
  let config =
    { Server.default_config with jobs = 1; cache_size = 8; cache_dir = dir }
  in
  (* first daemon: cold compile, which persists the image *)
  let proof =
    with_server config @@ fun t port ->
    with_client port @@ fun c ->
    let p =
      match call c (Wire.Prove { scheme = "bipartite"; graph6 = g6 }) with
      | Wire.Proved (Some p) -> p
      | r ->
          expect_error Wire.Internal "prove" r;
          assert false
    in
    let s = Server.stats t in
    check_int "first daemon compiled" 1 s.Server.cache_misses;
    check_int "no disk hit yet" 0 s.Server.disk_hits;
    p
  in
  check "image persisted" true
    (Sys.file_exists
       (Diskcache.path ~dir
          ("bipartite/" ^ Digest.to_hex (Digest.string g6))));
  (* restarted daemon: the very first request must be served from the
     mmapped image — a disk hit, no compile *)
  with_server config @@ fun t port ->
  with_client port @@ fun c ->
  (match call c (Wire.Verify { scheme = "bipartite"; graph6 = g6; proof }) with
  | Wire.Verified { accepted; _ } -> check "warm verify accepted" true accepted
  | r -> expect_error Wire.Internal "warm verify" r);
  let s = Server.stats t in
  check_int "first request was a disk hit" 1 s.Server.disk_hits;
  check "disk hits count as cache hits" true (s.Server.cache_hits >= 1);
  (* the next request for the same graph hits the LRU, not the disk *)
  (match call c (Wire.Verify { scheme = "bipartite"; graph6 = g6; proof }) with
  | Wire.Verified _ -> ()
  | r -> expect_error Wire.Internal "second verify" r);
  let s = Server.stats t in
  check_int "disk tier consulted once" 1 s.Server.disk_hits;
  check "second request hit the LRU" true (s.Server.cache_hits >= 2)

let loadgen_batched () =
  with_server { Server.default_config with jobs = 1 } @@ fun t port ->
  match
    Client.loadgen ~port ~batch:8 ~connections:2 ~requests:5 ~mix:(1, 4, 0)
      ~scheme:"eulerian" ~sizes:[ 16; 24 ] ()
  with
  | Error m -> Alcotest.failf "batched loadgen: %s" m
  | Ok r ->
      check_int "all ops ok" (2 * 5 * 8) r.Client.ok;
      check_int "no errors" 0 r.Client.errors;
      check_int "ids all echoed" 0 r.Client.id_mismatches;
      check "frame latencies recorded" true
        (r.Client.batch_frames.Client.count = 2 * 5);
      check "ops/s = frames/s x batch" true
        (abs_float
           (r.Client.throughput_ops -. (8.0 *. r.Client.throughput_rps))
        < 1e-6 *. r.Client.throughput_ops);
      check_int "server saw the ops" (2 * 5 * 8)
        (Server.stats t).Server.batch_ops

let wire_trace_parentage () =
  (* a frame that arrives carrying a trace context must be traced even
     with sampling off (the head of the call chain decided), and the
     server's request span must parent under the caller's span *)
  Obs.enable ~metrics:false ~trace:true ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.Trace.clear ())
  @@ fun () ->
  with_server Server.default_config @@ fun _t port ->
  with_client port @@ fun c ->
  let rid = 4242 in
  let ctx = Obs.Trace.ctx_of_rid rid in
  let g6 = Graph6.encode (Builders.cycle 12) in
  (match
     Client.call_id ?trace:(Client.wire_trace ctx) c ~id:rid
       (Wire.Prove { scheme = "eulerian"; graph6 = g6 })
   with
  | Ok (id, Wire.Proved _) -> check_int "echoed rid" rid id
  | Ok (_, r) -> expect_error Wire.Internal "prove" r
  | Error m -> Alcotest.failf "prove: %s" m);
  (* the response frame echoes the request's context verbatim *)
  (match Client.send ~id:rid ?trace:(Client.wire_trace ctx) c Wire.Stats with
  | Ok () -> ()
  | Error m -> Alcotest.failf "send: %s" m);
  (match Client.recv_full c with
  | Ok (id, Some echoed, Wire.Stats_reply _) ->
      check_int "echoed rid" rid id;
      check "context echoed verbatim" true
        (echoed.Wire.trace_hi = ctx.Obs.Trace.t_hi
        && echoed.Wire.trace_lo = ctx.Obs.Trace.t_lo
        && echoed.Wire.parent_span = ctx.Obs.Trace.span)
  | Ok (_, None, _) -> Alcotest.fail "response dropped the trace context"
  | Ok _ -> Alcotest.fail "unexpected response"
  | Error m -> Alcotest.failf "recv: %s" m);
  (* fetch the ring over the wire: the request span must carry the
     caller's trace id and parent under the caller's span *)
  match call c Wire.Trace_export with
  | Wire.Trace_export_reply json ->
      check "server.request span exported" true
        (contains ~sub:"\"name\":\"server.request\"" json);
      check "span carries the caller's trace id" true
        (contains
           ~sub:
             (Printf.sprintf "\"trace\":\"%s\""
                (Obs.Trace.hex_id ctx.Obs.Trace.t_hi ctx.Obs.Trace.t_lo))
           json);
      check "a span parents under the client span" true
        (contains
           ~sub:(Printf.sprintf "\"parent\":%d}" ctx.Obs.Trace.span)
           json);
      check "compute child span exported" true
        (contains ~sub:"\"name\":\"server.compute\"" json)
  | r -> expect_error Wire.Internal "trace export" r

let trace_export_disabled () =
  (* with tracing off the endpoint still answers — an empty trace, not
     an error, so `lcp trace fetch` is always safe to point anywhere *)
  with_server Server.default_config @@ fun _t port ->
  with_client port @@ fun c ->
  match call c Wire.Trace_export with
  | Wire.Trace_export_reply json ->
      check "empty traceEvents" true (contains ~sub:"\"traceEvents\":[]" json)
  | r -> expect_error Wire.Internal "trace export" r

(* Continuous profiling end to end: with the sampler running, a
   served mix must produce per-scheme accounts (the exact channel is
   driven by every request, so this is deterministic), the
   Profile_export endpoint must answer with a document our own JSON
   parser accepts, and the GC / profiler / per-scheme families must
   appear on the same exposition `lcp top` scrapes. *)
let profile_export_e2e () =
  Obs.Profile.reset ();
  Obs.Profile.start ~hz:499 ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Profile.stop ();
      Obs.Profile.reset ())
  @@ fun () ->
  with_server { Server.default_config with jobs = 2 } @@ fun _t port ->
  with_client port @@ fun c ->
  let g6 = Graph6.encode (Builders.cycle 64) in
  for _ = 1 to 8 do
    match call c (Wire.Prove { scheme = "eulerian"; graph6 = g6 }) with
    | Wire.Proved _ -> ()
    | r -> expect_error Wire.Internal "prove" r
  done;
  (* exact channel: every request was accounted to its scheme *)
  (match Obs.Profile.schemes () with
  | [ ("eulerian", cpu, alloc, 8) ] ->
      check "cpu attributed" true (cpu > 0);
      check "alloc attributed" true (alloc >= 0.0)
  | rows -> Alcotest.failf "unexpected scheme rows (%d)" (List.length rows));
  (* sampler thread is live (it ticks even when the pool is idle) *)
  check "sampler ticked" true (Obs.Profile.samples () > 0);
  (match call c Wire.Profile_export with
  | Wire.Profile_export_reply json -> (
      match Obs.Json.parse json with
      | Error m -> Alcotest.failf "profile export unparseable: %s" m
      | Ok doc ->
          check "export says enabled" true
            (match Obs.Json.member "enabled" doc with
            | Some (Obs.Json.Bool b) -> b
            | _ -> false);
          check "export names the scheme" true
            (contains ~sub:"\"scheme\":\"eulerian\"" json);
          check "export embeds speedscope" true
            (match Obs.Json.member "speedscope" doc with
            | Some (Obs.Json.Obj _) -> true
            | _ -> false))
  | r -> expect_error Wire.Internal "profile export" r);
  match call c Wire.Metrics_text with
  | Wire.Metrics_text_reply text ->
      List.iter
        (fun family ->
          check (family ^ " exposed") true (contains ~sub:family text))
        [
          "lcp_gc_minor_collections_total"; "lcp_gc_major_collections_total";
          "lcp_gc_allocated_bytes_total"; "lcp_gc_heap_bytes";
          "lcp_profile_samples_total";
          "lcp_scheme_cpu_ns_total{scheme=\"eulerian\"}";
          "lcp_scheme_requests_total{scheme=\"eulerian\"}";
        ]
  | r -> expect_error Wire.Internal "metrics text" r

let profile_export_disabled () =
  (* with the profiler off the endpoint still answers a valid
     zero-sample document — `lcp profile fetch` is safe anywhere, and
     the GC families stay on the exposition (live Gc.quick_stat) *)
  with_server Server.default_config @@ fun _t port ->
  with_client port @@ fun c ->
  (match call c Wire.Profile_export with
  | Wire.Profile_export_reply json -> (
      match Obs.Json.parse json with
      | Error m -> Alcotest.failf "disabled export unparseable: %s" m
      | Ok doc ->
          check "disabled export says so" true
            (match Obs.Json.member "enabled" doc with
            | Some (Obs.Json.Bool b) -> not b
            | _ -> false))
  | r -> expect_error Wire.Internal "profile export" r);
  match call c Wire.Metrics_text with
  | Wire.Metrics_text_reply text ->
      check "gc telemetry present while off" true
        (contains ~sub:"lcp_gc_minor_collections_total" text);
      check "alloc-rate gauge absent while off" false
        (contains ~sub:"lcp_gc_alloc_bytes_per_s" text)
  | r -> expect_error Wire.Internal "metrics text" r

let suite =
  ( "server",
    [
      Alcotest.test_case "lru cache" `Quick lru_unit;
      Alcotest.test_case "scheme registry" `Quick registry_unit;
      Alcotest.test_case "loopback prove/verify + cache" `Quick loopback_cache;
      Alcotest.test_case "warm verify faster than cold" `Quick
        warm_faster_than_cold;
      Alcotest.test_case "backpressure sheds with typed error" `Quick
        overload_sheds;
      Alcotest.test_case "deadline returns typed error" `Quick deadline_exceeded;
      Alcotest.test_case "garbage frames get typed errors" `Quick garbage_frames;
      Alcotest.test_case "loadgen loopback mix" `Quick loadgen_loopback;
      Alcotest.test_case "correlation ids echo end to end" `Quick
        correlation_ids;
      Alcotest.test_case "health and readiness probes" `Quick health_readiness;
      Alcotest.test_case "drain toggles readiness, keeps serving" `Quick
        drain_cycle;
      Alcotest.test_case "metrics_text exposition" `Quick metrics_text_endpoint;
      Alcotest.test_case "http sidecar endpoints" `Quick http_sidecar;
      Alcotest.test_case "structured request log" `Quick structured_log;
      Alcotest.test_case "slow-request flight recorder" `Quick slow_recorder;
      Alcotest.test_case "metrics reset guarded while serving" `Quick
        reset_guard;
      Alcotest.test_case "loadgen per-code error breakdown" `Quick
        loadgen_error_breakdown;
      Alcotest.test_case "batch frames end to end" `Quick batch_e2e;
      Alcotest.test_case "corrupt batch op isolated" `Quick
        batch_corrupt_op_isolated;
      Alcotest.test_case "disk cache store/load/corrupt" `Quick diskcache_unit;
      Alcotest.test_case "cache-dir restart serves warm" `Quick
        cache_dir_warm_restart;
      Alcotest.test_case "loadgen batched mode" `Quick loadgen_batched;
      Alcotest.test_case "wire trace context parents spans" `Quick
        wire_trace_parentage;
      Alcotest.test_case "trace export while disabled" `Quick
        trace_export_disabled;
      Alcotest.test_case "profile export end to end" `Quick profile_export_e2e;
      Alcotest.test_case "profile export while disabled" `Quick
        profile_export_disabled;
    ] )
