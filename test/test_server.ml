(* End-to-end tests for the verification daemon, all over a loopback
   socket on an ephemeral port: the compiled-verifier cache (warm
   requests must hit it and be measurably faster than cold ones),
   backpressure shedding, per-request deadlines, and the rule that a
   peer speaking garbage gets a typed error — never a hang, never a
   crash. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_server config f =
  let t = Server.create { config with Server.port = 0 } in
  let th = Server.start t in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      Thread.join th)
    (fun () -> f t (Server.port t))

let with_client port f =
  match Client.connect ~port () with
  | Error m -> Alcotest.failf "connect: %s" m
  | Ok c -> Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let call c req =
  match Client.call c req with
  | Ok resp -> resp
  | Error m -> Alcotest.failf "call: transport error %s" m

let expect_error code what = function
  | Wire.Error_reply e when e.code = code -> ()
  | resp ->
      Alcotest.failf "%s: expected %s error, got %s" what
        (Wire.error_code_to_string code)
        (match resp with
        | Wire.Error_reply e -> Wire.error_code_to_string e.code
        | Wire.Proved _ -> "Proved"
        | Wire.Verified _ -> "Verified"
        | Wire.Forged _ -> "Forged"
        | Wire.Stats_reply _ -> "Stats_reply"
        | Wire.Catalog_reply _ -> "Catalog_reply")

(* ------------------------------------------------------------------ *)
(* In-process units: the LRU and the scheme registry. *)

let lru_unit () =
  let l = Lru.create ~capacity:2 in
  Lru.put l "a" 1;
  Lru.put l "b" 2;
  check "a present" true (Lru.find l "a" = Some 1);
  (* b is now least recently used; inserting c must evict it *)
  Lru.put l "c" 3;
  check "b evicted" true (Lru.find l "b" = None);
  check "a survives" true (Lru.find l "a" = Some 1);
  check "c present" true (Lru.find l "c" = Some 3);
  check_int "length" 2 (Lru.length l);
  check_int "hits" 3 (Lru.hits l);
  check_int "misses" 1 (Lru.misses l);
  check_int "evictions" 1 (Lru.evictions l);
  (* capacity 0 is the cache-disabled mode the server maps
     --cache-size=0 to: put is a no-op, every find is a miss *)
  let z = Lru.create ~capacity:0 in
  Lru.put z "x" 1;
  check "capacity 0 never stores" true (Lru.find z "x" = None);
  check_int "capacity 0 stays empty" 0 (Lru.length z);
  check "negative capacity rejected" true
    (match Lru.create ~capacity:(-1) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let registry_unit () =
  check "eulerian registered" true
    (match Registry.find "eulerian" with
    | Some e -> e.Registry.name = "eulerian"
    | None -> false);
  check "unknown scheme absent" true (Registry.find "no-such-scheme" = None);
  let names = List.map (fun e -> e.Registry.name) Registry.all in
  check "names unique" true
    (List.length names = List.length (List.sort_uniq compare names))

(* ------------------------------------------------------------------ *)
(* Loopback: catalog, prove/verify, the compiled-verifier cache. *)

let loopback_cache () =
  with_server { Server.default_config with jobs = 2; cache_size = 8 }
  @@ fun t port ->
  with_client port @@ fun c ->
  (* catalog mirrors the registry *)
  (match call c Wire.Catalog with
  | Wire.Catalog_reply entries ->
      check_int "catalog size" (List.length Registry.all) (List.length entries);
      check "catalog has eulerian" true
        (List.exists (fun e -> e.Wire.name = "eulerian") entries)
  | r -> expect_error Wire.Internal "catalog" r);
  (* typed errors for bad scheme / bad graph *)
  expect_error Wire.Unknown_scheme "unknown scheme"
    (call c (Wire.Prove { scheme = "no-such-scheme"; graph6 = "A_" }));
  expect_error Wire.Bad_graph "bad graph"
    (call c (Wire.Prove { scheme = "eulerian"; graph6 = "~?" }));
  (* prove a yes-instance, then feed the proof back through verify;
     bipartite's proof is a 2-colouring, so corrupting it is visible
     (eulerian would accept any proof — its verifier reads no bits) *)
  let g6 = Graph6.encode (Builders.cycle 64) in
  let proof =
    match call c (Wire.Prove { scheme = "bipartite"; graph6 = g6 }) with
    | Wire.Proved (Some p) -> p
    | Wire.Proved None -> Alcotest.fail "prover called C64 a no-instance"
    | r ->
        expect_error Wire.Internal "prove" r;
        assert false
  in
  (match call c (Wire.Verify { scheme = "bipartite"; graph6 = g6; proof }) with
  | Wire.Verified { accepted; rejecting } ->
      check "honest proof accepted" true accepted;
      check "no rejecting nodes" true (rejecting = [])
  | r -> expect_error Wire.Internal "verify" r);
  (* flip one node's colour: it and its neighbours must reject *)
  let bad = Proof.set proof 0 (Bits.flip (Proof.get proof 0) 0) in
  (match
     call c (Wire.Verify { scheme = "bipartite"; graph6 = g6; proof = bad })
   with
  | Wire.Verified { accepted; rejecting } ->
      check "corrupt proof rejected" false accepted;
      check "some node rejects" true (rejecting <> [])
  | r -> expect_error Wire.Internal "verify corrupt" r);
  (* every request after the first prove reused the compiled image;
     the misses are the first C64 prove and the bad-graph request
     (its cache lookup happens before the graph6 bytes are parsed) *)
  let s = Server.stats t in
  check "cache hits counted" true (s.Server.cache_hits >= 2);
  check_int "two cache misses" 2 s.Server.cache_misses;
  check_int "one cached entry" 1 s.Server.cache_entries

(* Warm requests skip the graph6 decode and the compile; on a graph
   this size that is the bulk of the request, so the speedup must be
   visible even on a noisy CI box. *)
let warm_faster_than_cold () =
  with_server { Server.default_config with jobs = 1; cache_size = 8 }
  @@ fun t port ->
  with_client port @@ fun c ->
  let g6 = Graph6.encode (Builders.cycle 2048) in
  let verify () =
    let t0 = Unix.gettimeofday () in
    (match
       call c
         (Wire.Verify { scheme = "bipartite"; graph6 = g6; proof = Proof.empty })
     with
    | Wire.Verified { accepted; _ } ->
        (* the empty proof is rejected — only the timing matters here *)
        check "empty proof rejected" false accepted
    | r -> expect_error Wire.Internal "verify" r);
    Unix.gettimeofday () -. t0
  in
  let cold = verify () in
  let warm = List.fold_left min infinity (List.init 3 (fun _ -> verify ())) in
  let s = Server.stats t in
  check_int "cold run compiled once" 1 s.Server.cache_misses;
  check_int "warm runs all hit" 3 s.Server.cache_hits;
  check
    (Printf.sprintf "warm (%.1f ms) at least 2x faster than cold (%.1f ms)"
       (warm *. 1e3) (cold *. 1e3))
    true
    (warm *. 2. < cold)

(* ------------------------------------------------------------------ *)
(* Backpressure and deadlines: production failure modes must surface
   as typed errors, immediately, on a live connection. *)

let overload_sheds () =
  with_server { Server.default_config with jobs = 1; max_queue = 0 }
  @@ fun t port ->
  with_client port @@ fun c ->
  let g6 = Graph6.encode (Builders.cycle 16) in
  expect_error Wire.Overloaded "queue bound 0 sheds every prove"
    (call c (Wire.Prove { scheme = "eulerian"; graph6 = g6 }));
  (* stats is served inline on the connection thread, so it still
     answers while the compute path sheds *)
  (match call c Wire.Stats with
  | Wire.Stats_reply s -> check "shed counted in stats" true (s.overloaded >= 1)
  | r -> expect_error Wire.Internal "stats" r);
  check "server counter agrees" true ((Server.stats t).Server.overloaded >= 1)

let deadline_exceeded () =
  (* 1 ms is far below the cold decode+compile time of a 2048-node
     graph, so each request deterministically trips the completion
     checkpoint; distinct sizes keep the second request from riding
     the first one's cache entry *)
  with_server { Server.default_config with jobs = 1; deadline_ms = 1 }
  @@ fun t port ->
  with_client port @@ fun c ->
  List.iter
    (fun n ->
      expect_error Wire.Deadline_exceeded
        (Printf.sprintf "cold prove of C%d under a 1 ms deadline" n)
        (call c
           (Wire.Prove
              { scheme = "eulerian"; graph6 = Graph6.encode (Builders.cycle n) })))
    [ 2048; 2049 ];
  (* the connection survives and undeadlined endpoints still work *)
  (match call c Wire.Stats with
  | Wire.Stats_reply s ->
      check "deadline misses counted" true (s.deadline_exceeded >= 2)
  | r -> expect_error Wire.Internal "stats" r);
  check "server counter agrees" true
    ((Server.stats t).Server.deadline_exceeded >= 2)

(* ------------------------------------------------------------------ *)
(* Raw-socket abuse: garbage frames, wrong version, garbage payload. *)

let read_exact fd len =
  let buf = Bytes.create len in
  let rec go off =
    if off = len then Some (Bytes.to_string buf)
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> None
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let read_response fd =
  match read_exact fd Wire.header_bytes with
  | None -> Alcotest.fail "connection closed before a response"
  | Some raw -> (
      match Wire.decode_header raw with
      | Error m -> Alcotest.failf "bad response header: %s" m
      | Ok { Wire.tag; length } -> (
          match read_exact fd length with
          | None -> Alcotest.fail "truncated response"
          | Some payload -> (
              match Wire.decode_response_payload ~tag payload with
              | Ok r -> r
              | Error m -> Alcotest.failf "bad response payload: %s" m)))

let with_raw_socket port f =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
  @@ fun () ->
  Unix.connect fd
    (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
  f fd

let raw_frame ~version ~tag payload =
  let len = String.length payload in
  let b = Buffer.create (8 + len) in
  Buffer.add_string b "LC";
  Buffer.add_char b (Char.chr version);
  Buffer.add_char b (Char.chr tag);
  Buffer.add_char b (Char.chr ((len lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((len lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((len lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (len land 0xff));
  Buffer.add_string b payload;
  Buffer.contents b

let garbage_frames () =
  with_server Server.default_config @@ fun t port ->
  (* pure noise: one Bad_frame reply, then the server drops the link *)
  with_raw_socket port (fun fd ->
      ignore (Unix.write_substring fd "GARBAGE!" 0 8);
      (match read_response fd with
      | Wire.Error_reply { code = Wire.Bad_frame; _ } -> ()
      | r -> expect_error Wire.Bad_frame "garbage" r);
      check "connection closed after garbage" true
        (read_exact fd 1 = None));
  (* right magic, future version: the typed answer, then drop *)
  with_raw_socket port (fun fd ->
      let frame = raw_frame ~version:(Wire.protocol_version + 1) ~tag:5 "" in
      ignore (Unix.write_substring fd frame 0 (String.length frame));
      (match read_response fd with
      | Wire.Error_reply { code = Wire.Unsupported_version; _ } -> ()
      | r -> expect_error Wire.Unsupported_version "version" r);
      check "connection closed after version mismatch" true
        (read_exact fd 1 = None));
  (* well-framed but undecodable payload: Bad_request, and the
     connection keeps working afterwards *)
  with_raw_socket port (fun fd ->
      let frame = raw_frame ~version:Wire.protocol_version ~tag:1 "abc" in
      ignore (Unix.write_substring fd frame 0 (String.length frame));
      (match read_response fd with
      | Wire.Error_reply { code = Wire.Bad_request; _ } -> ()
      | r -> expect_error Wire.Bad_request "payload" r);
      let stats = Wire.encode_request Wire.Stats in
      ignore (Unix.write_substring fd stats 0 (String.length stats));
      match read_response fd with
      | Wire.Stats_reply _ -> ()
      | r -> expect_error Wire.Internal "stats after bad payload" r);
  check "bad frames counted" true ((Server.stats t).Server.bad_frames >= 3)

(* ------------------------------------------------------------------ *)
(* The load generator against a live server: every response must be
   semantically ok and repeated graphs must hit the cache. *)

let loadgen_loopback () =
  with_server { Server.default_config with jobs = 2 } @@ fun _t port ->
  match
    Client.loadgen ~port ~connections:2 ~requests:10 ~mix:(1, 4)
      ~scheme:"eulerian" ~sizes:[ 24; 32 ] ()
  with
  | Error m -> Alcotest.failf "loadgen: %s" m
  | Ok r ->
      check_int "all requests ok" 20 r.Client.ok;
      check_int "no errors" 0 r.Client.errors;
      check "throughput positive" true (r.Client.throughput_rps > 0.);
      (match r.Client.server with
      | None -> Alcotest.fail "loadgen fetched no server stats"
      | Some s ->
          check "repeated graphs hit the cache" true (s.Wire.cache_hits > 0);
          check_int "one compile per size" 2 s.Wire.cache_misses);
      (* the CI artifact must be one well-formed JSON object; a cheap
         structural sanity check keeps this test dependency-free *)
      let json = Client.report_json r in
      check "json nonempty object" true
        (String.length json > 2 && json.[0] = '{'
        && json.[String.length json - 1] = '}')

let suite =
  ( "server",
    [
      Alcotest.test_case "lru cache" `Quick lru_unit;
      Alcotest.test_case "scheme registry" `Quick registry_unit;
      Alcotest.test_case "loopback prove/verify + cache" `Quick loopback_cache;
      Alcotest.test_case "warm verify faster than cold" `Quick
        warm_faster_than_cold;
      Alcotest.test_case "backpressure sheds with typed error" `Quick
        overload_sheds;
      Alcotest.test_case "deadline returns typed error" `Quick deadline_exceeded;
      Alcotest.test_case "garbage frames get typed errors" `Quick garbage_frames;
      Alcotest.test_case "loadgen loopback mix" `Quick loadgen_loopback;
    ] )
