(* Section 7.4: LogLCP verifiers on bounded-degree graphs read O(log n)
   bits and tabulate polynomially. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fingerprint_faithful () =
  (* equal views, equal fingerprints; different views, different ones *)
  let g = Builders.cycle 8 in
  let inst = Instance.of_graph g in
  let proof =
    Graph.fold_nodes (fun v p -> Proof.set p v (Bits.encode_int v)) g Proof.empty
  in
  let view v = View.make inst proof ~centre:v ~radius:1 in
  check "same view same print" true
    (Bits.equal (Lookup.fingerprint (view 3)) (Lookup.fingerprint (view 3)));
  check "different centre different print" false
    (Bits.equal (Lookup.fingerprint (view 3)) (Lookup.fingerprint (view 4)));
  (* proof change flips the print *)
  let proof' = Proof.set proof 3 (Bits.of_string "111") in
  let view' = View.make inst proof' ~centre:3 ~radius:1 in
  check "proof change changes print" false
    (Bits.equal (Lookup.fingerprint (view 3)) (Lookup.fingerprint view'))

let table_agrees_with_direct () =
  let st = Random.State.make [| 17 |] in
  let table = Lookup.tabulate Bipartite_scheme.scheme in
  for _ = 1 to 10 do
    let g = Random_graphs.connected_gnp st 10 0.25 in
    let inst = Instance.of_graph g in
    match Scheme.prove_and_check Bipartite_scheme.scheme inst with
    | `Accepted proof ->
        check "tabulated accept" true (Lookup.decide table inst proof = Scheme.Accept);
        (* and on a corrupted proof both reject in the same places *)
        let bad = Proof.set proof (List.hd (Graph.nodes g)) (Bits.of_string "1") in
        check "tabulated = direct on corrupted" true
          (Lookup.decide table inst bad = Scheme.decide Bipartite_scheme.scheme inst bad)
    | _ -> ()
  done;
  check "table not empty" true (Lookup.entries table > 0)

let input_bits_logarithmic () =
  (* On degree-2 graphs (cycles), the per-view input is O(log n) bits:
     ids dominate, everything else is constant. *)
  let bits_at n =
    let g = Builders.cycle n in
    let inst = Instance.of_graph g in
    match Scheme.prove_and_check Counting.odd_n inst with
    | `Accepted proof ->
        Graph.fold_nodes
          (fun v acc ->
            max acc
              (Lookup.fingerprint_bits (View.make inst proof ~centre:v ~radius:1)))
          g 0
    | _ -> Alcotest.fail "prover failed"
  in
  let series = List.map (fun n -> (n, bits_at n)) [ 9; 17; 33; 65; 129 ] in
  check "view input is O(log n)" true
    (Complexity.classify series = Complexity.Logarithmic)

let table_polynomial () =
  (* One cycle of size n: exactly n distinct views (ids differ), so the
     table grows linearly in n on this family — comfortably 2^O(log n). *)
  let table = Lookup.tabulate Bipartite_scheme.scheme in
  let g = Builders.cycle 32 in
  let inst = Instance.of_graph g in
  (match Scheme.prove_and_check Bipartite_scheme.scheme inst with
  | `Accepted proof -> ignore (Lookup.decide table inst proof)
  | _ -> Alcotest.fail "prover failed");
  check_int "one entry per node" 32 (Lookup.entries table);
  (* running the same instance again adds nothing *)
  (match Scheme.prove_and_check Bipartite_scheme.scheme inst with
  | `Accepted proof -> ignore (Lookup.decide table inst proof)
  | _ -> ());
  check_int "memoised" 32 (Lookup.entries table)

let suite =
  ( "lookup-np-poly",
    [
      Alcotest.test_case "fingerprints are faithful" `Quick fingerprint_faithful;
      Alcotest.test_case "table agrees with direct" `Quick table_agrees_with_direct;
      Alcotest.test_case "input bits are O(log n)" `Quick input_bits_logarithmic;
      Alcotest.test_case "table size is polynomial" `Quick table_polynomial;
    ] )
