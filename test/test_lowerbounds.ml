(* The paper's lower bounds, demonstrated mechanically:
   - Section 5.3 / Figure 1: gluing cycles fools every complete scheme
     with o(log n) bits (our undersized counter schemes), while the
     honest Θ(log n) schemes resist with fully diverse signatures.
   - Section 6.1/6.2: the ⊙-splice fools the O(Δ log n) "claims"
     schemes; the universal encodings resist.
   - Section 6.3: the wire-window fooling set fools the ball-claims
     scheme on the 3-colouring gadgets. *)

open Test_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- the undersized schemes are complete --- *)

let truncated_complete () =
  assert_complete ~sizes_ok:true (Truncated.odd_n_cycle ~bits:2)
    [ Instance.of_graph (Builders.cycle 7); Instance.of_graph (Builders.cycle 13) ];
  assert_refuses (Truncated.odd_n_cycle ~bits:2) [ Instance.of_graph (Builders.cycle 8) ];
  let leader_inst n =
    Leader_election.mark_leader (Instance.of_graph (Builders.cycle n)) 0
  in
  assert_complete (Truncated.leader_cycle ~bits:2) [ leader_inst 8; leader_inst 11 ];
  let matching_inst n =
    let g = Builders.cycle n in
    Instance.flag_edges (Instance.of_graph g) (Matching.maximum_on_cycle g)
  in
  assert_complete (Truncated.max_matching_cycle ~bits:2)
    [ matching_inst 7; matching_inst 9 ]

(* --- F1: the gluing attack fools the undersized schemes --- *)

let gluing_fools_odd_n () =
  let family = Gluing.odd_cycles ~n:9 in
  match Gluing.attack ~rows:3 (Truncated.odd_n_cycle ~bits:2) family with
  | Gluing.Fooled { instance; genuinely_no; quad = _; proof = _ } ->
      check "glued instance is even" true genuinely_no;
      check_int "glued size 2n" 18 (Instance.n instance)
  | Gluing.Resisted _ -> Alcotest.fail "undersized odd-n scheme must be fooled"
  | Gluing.Prover_failed (a, b) ->
      Alcotest.fail (Printf.sprintf "prover failed on C(%d,%d)" a b)

let gluing_fools_leader () =
  let family = Gluing.leader_cycles ~n:8 in
  match Gluing.attack ~rows:3 (Truncated.leader_cycle ~bits:2) family with
  | Gluing.Fooled { instance; genuinely_no; _ } ->
      check "two leaders in glued instance" true genuinely_no;
      check "marked twice" true (Instance.marked_exactly_one instance = None)
  | _ -> Alcotest.fail "undersized leader scheme must be fooled"

let gluing_fools_matching () =
  let family = Gluing.matching_cycles ~n:9 in
  match Gluing.attack ~rows:3 (Truncated.max_matching_cycle ~bits:2) family with
  | Gluing.Fooled { instance; genuinely_no; _ } ->
      check "glued matching not maximum" true genuinely_no;
      (* two unmatched nodes in an even cycle *)
      let g = Instance.graph instance in
      let matched = Matching.matched_nodes (Instance.flagged_edges instance) in
      check_int "two unmatched" 2 (Graph.n g - List.length matched)
  | _ -> Alcotest.fail "undersized matching scheme must be fooled"

(* --- the honest Θ(log n) schemes resist the same attack --- *)

let gluing_resists_honest () =
  let family = Gluing.odd_cycles ~n:9 in
  (match Gluing.attack ~rows:3 Counting.odd_n family with
  | Gluing.Resisted { distinct_signatures; pairs } ->
      (* identifiers make every signature unique *)
      check_int "all signatures distinct" pairs distinct_signatures
  | Gluing.Fooled _ -> Alcotest.fail "honest odd-n scheme fooled: soundness bug!"
  | Gluing.Prover_failed _ -> Alcotest.fail "honest prover failed");
  let family = Gluing.leader_cycles ~n:8 in
  (match Gluing.attack ~rows:3 Leader_election.strong family with
  | Gluing.Resisted _ -> ()
  | _ -> Alcotest.fail "honest leader scheme must resist");
  let family = Gluing.matching_cycles ~n:9 in
  match Gluing.attack ~rows:3 Matching_schemes.maximum_on_cycle family with
  | Gluing.Resisted _ -> ()
  | _ -> Alcotest.fail "honest matching scheme must resist"

(* --- the general-k construction --- *)

let gluing_k3_leader () =
  (* three glued cycles: three leaders *)
  let family = Gluing.leader_cycles ~n:8 in
  match Gluing.attack_k ~rows:6 ~k:3 (Truncated.leader_cycle ~bits:2) family with
  | Gluing.Fooled_k { instance; genuinely_no; cycle; _ } ->
      check "three cycles used" true (List.length cycle = 3);
      check "glued instance is a no-instance" true genuinely_no;
      check_int "3n nodes" 24 (Instance.n instance);
      let leaders =
        Graph.fold_nodes
          (fun v acc ->
            let l = Instance.node_label instance v in
            if Bits.length l >= 1 && Bits.get l 0 then acc + 1 else acc)
          (Instance.graph instance) 0
      in
      check_int "three leaders" 3 leaders
  | _ -> Alcotest.fail "k=3 gluing must fool the 2-bit scheme"

let gluing_k3_odd_parity () =
  (* parameter choice matters: three odd cycles glue into an ODD cycle —
     a yes-instance; the attack reports genuinely_no = false, exactly as
     the paper's "choose an odd n and an even k" instructs. *)
  let family = Gluing.odd_cycles ~n:9 in
  (match Gluing.attack_k ~rows:6 ~k:3 (Truncated.odd_n_cycle ~bits:2) family with
  | Gluing.Fooled_k { genuinely_no; instance; _ } ->
      check "27-cycle is still odd: not a counterexample" false genuinely_no;
      check_int "3n nodes" 27 (Instance.n instance)
  | _ -> Alcotest.fail "collision expected");
  (* k = 4 restores the refutation *)
  match Gluing.attack_k ~rows:8 ~k:4 (Truncated.odd_n_cycle ~bits:2) family with
  | Gluing.Fooled_k { genuinely_no; instance; _ } ->
      check "36-cycle is even: genuine counterexample" true genuinely_no;
      check_int "4n nodes" 36 (Instance.n instance)
  | _ -> Alcotest.fail "k=4 gluing must fool the 2-bit scheme"

let gluing_k3_honest_resists () =
  let family = Gluing.leader_cycles ~n:8 in
  match Gluing.attack_k ~rows:4 ~k:3 Leader_election.strong family with
  | Gluing.Resisted_k { pairs; distinct_signatures } ->
      check_int "all distinct" pairs distinct_signatures
  | _ -> Alcotest.fail "honest scheme must resist k=3 gluing"

(* --- direct sanity of the glued construction --- *)

let cycle_ids_structure () =
  let ids = Gluing.cycle_ids ~n:9 ~a:2 ~b:11 in
  check_int "nine nodes" 9 (List.length ids);
  check "starts at a" true (List.hd ids = 2);
  check "ends at b" true (List.nth ids 8 = 11);
  check "distinct" true (List.length (List.sort_uniq compare ids) = 9);
  (* disjointness across different (a, b) pairs *)
  let ids' = Gluing.cycle_ids ~n:9 ~a:3 ~b:12 in
  check "disjoint" true
    (List.for_all (fun v -> not (List.mem v ids')) ids)

(* --- 6.1: symmetric graphs --- *)

let odot_properties () =
  let f6 = Enumerate.asymmetric_connected 6 in
  let g1 = List.nth f6 0 and g2 = List.nth f6 1 in
  check "G(x)G same is symmetric" true (Automorphism.is_symmetric (Symmetry_lb.odot g1 g1));
  check "G(x)H different is asymmetric" true
    (Automorphism.is_asymmetric (Symmetry_lb.odot g1 g2));
  check_int "3k nodes" 18 (Graph.n (Symmetry_lb.odot g1 g1))

let symmetry_attack_fools_claims () =
  let family = Enumerate.asymmetric_connected 6 in
  match Symmetry_lb.attack_symmetric Truncated.symmetric_claims ~family with
  | Symmetry_lb.Fooled { genuinely_no; glued; _ } ->
      check "spliced graph is asymmetric" true genuinely_no;
      check_int "size 3k" 18 (Graph.n glued)
  | Symmetry_lb.Resisted { family_size; distinct_windows } ->
      Alcotest.fail
        (Printf.sprintf "claims scheme resisted (%d graphs, %d windows)" family_size
           distinct_windows)
  | Symmetry_lb.Prover_failed _ -> Alcotest.fail "claims prover failed"

let symmetry_attack_resisted_by_universal () =
  let family = Enumerate.asymmetric_connected 6 in
  match Symmetry_lb.attack_symmetric Universal.symmetric ~family with
  | Symmetry_lb.Resisted { family_size; distinct_windows } ->
      check_int "every window distinct" family_size distinct_windows
  | Symmetry_lb.Fooled _ -> Alcotest.fail "universal scheme fooled: soundness bug!"
  | Symmetry_lb.Prover_failed _ -> Alcotest.fail "universal prover failed"

(* --- 6.2: fixpoint-free symmetry on trees --- *)

let odot_rooted_properties () =
  let trees = Tree_enum.rooted_trees 6 in
  let t1 = List.nth trees 0 and t2 = List.nth trees 1 in
  check "t(x)t has fixpoint-free symmetry" true
    (Automorphism.has_fixpoint_free_symmetry (Symmetry_lb.odot_rooted t1 t1));
  check "t1(x)t2 does not" false
    (Automorphism.has_fixpoint_free_symmetry (Symmetry_lb.odot_rooted t1 t2))

let tree_attack_fools_claims () =
  let family = Tree_enum.rooted_trees 6 in
  match Symmetry_lb.attack_trees Truncated.fixpoint_free_claims ~family with
  | Symmetry_lb.Fooled { genuinely_no; _ } ->
      check "spliced tree has no fixpoint-free symmetry" true genuinely_no
  | Symmetry_lb.Resisted _ -> Alcotest.fail "claims scheme resisted on trees"
  | Symmetry_lb.Prover_failed _ -> Alcotest.fail "claims prover failed on trees"

let tree_attack_resisted_by_universal () =
  let family = Tree_enum.rooted_trees 6 in
  match Symmetry_lb.attack_trees Tree_universal.fixpoint_free_symmetry ~family with
  | Symmetry_lb.Resisted { family_size; distinct_windows } ->
      check_int "every window distinct" family_size distinct_windows
  | Symmetry_lb.Fooled _ -> Alcotest.fail "tree-universal scheme fooled!"
  | Symmetry_lb.Prover_failed _ -> Alcotest.fail "tree-universal prover failed"

(* --- 6.3: non-3-colourability gadgets --- *)

let gadget_properties () =
  let k = 1 in
  let a = [ (0, 1); (1, 0) ] in
  let pg = Gadgets.pair_graph ~k ~r:1 a a in
  (* palette forced *)
  check "combined connected" true (Traversal.is_connected pg.Gadgets.combined);
  (* A∩A ≠ ∅: 3-colourable, and the encoding-colouring exists for a
     pair in the intersection *)
  (match Gadgets.encode_colouring pg (0, 1) with
  | Some c -> check "proper" true (Coloring.is_proper pg.Gadgets.combined c)
  | None -> Alcotest.fail "G_{A,A} must be colourable at (0,1)");
  (* pairs outside A are not encodable *)
  check "pair outside A not encodable" true
    (Gadgets.encode_colouring pg (0, 0) = None);
  (* G_{A, co-A} is not 3-colourable at all *)
  let coa = Non3col_lb.complement ~k a in
  let hard = Gadgets.pair_graph ~k ~r:1 a coa in
  check "G_{A,coA} not 3-colourable" false
    (Coloring.is_k_colourable hard.Gadgets.combined 3)

let gadget_k2_smoke () =
  (* k = 2: I×I has 16 pairs; the gadgets grow to Θ(2^k) but stay
     uniform, with the wires landing on A-independent identifiers.
     (Colouring semantics are exercised at k = 1, where the exhaustive
     3-colouring searches stay small.) *)
  let a = [ (0, 3); (2, 1); (3, 3) ] in
  let g1 = Gadgets.build ~k:2 a in
  let g2 = Gadgets.build ~k:2 (Non3col_lb.complement ~k:2 a) in
  Alcotest.(check int) "uniform size" g1.Gadgets.size g2.Gadgets.size;
  check "same node ids" true (Graph.nodes g1.Gadgets.graph = Graph.nodes g2.Gadgets.graph);
  let pg = Gadgets.pair_graph ~k:2 ~r:2 a a in
  let pg' = Gadgets.pair_graph ~k:2 ~r:2 (Non3col_lb.complement ~k:2 a) a in
  check "connected" true (Traversal.is_connected pg.Gadgets.combined);
  check "window ids A-independent" true
    (pg.Gadgets.wire_window = pg'.Gadgets.wire_window);
  (* wire distance: any left-gadget node is >= 3r - 1 hops from any
     right-gadget node *)
  let left_t = pg.Gadgets.left.Gadgets.t_node in
  let right_t = pg.Gadgets.right.Gadgets.t_node in
  match Traversal.distance pg.Gadgets.combined left_t right_t with
  | Some d -> check "gadgets are far apart" true (d >= (3 * 2) - 1)
  | None -> Alcotest.fail "disconnected pair graph"

let gadget_uniform_layout () =
  let k = 1 in
  let g1 = Gadgets.build ~k [ (0, 0) ] in
  let g2 = Gadgets.build ~k [ (1, 1); (0, 1) ] in
  check_int "same size" g1.Gadgets.size g2.Gadgets.size;
  check "same nodes" true
    (Graph.nodes g1.Gadgets.graph = Graph.nodes g2.Gadgets.graph)

let non3col_attack_fools_ball_claims () =
  let scheme =
    Truncated.ball_claims ~name:"non3col-ball-claims" (fun g ->
        not (Coloring.is_k_colourable g 3))
  in
  (* a handful of subsets is enough: ball claims collide immediately *)
  let sets =
    Some [ [ (0, 1) ]; [ (1, 0) ]; [ (0, 0); (1, 1) ]; [ (0, 1); (1, 0) ] ]
  in
  match Non3col_lb.attack ~k:1 ~r:1 ~sets scheme with
  | Non3col_lb.Fooled { genuinely_no; _ } ->
      check "spliced gadget is 3-colourable" true genuinely_no
  | Non3col_lb.Resisted _ -> Alcotest.fail "ball-claims scheme resisted"
  | Non3col_lb.Prover_failed _ -> Alcotest.fail "ball-claims prover failed"

let non3col_attack_resisted_by_universal () =
  let sets = Some [ [ (0, 1) ]; [ (1, 0) ]; [ (0, 0); (1, 1) ] ] in
  match Non3col_lb.attack ~k:1 ~r:1 ~sets Universal.non_3_colourable with
  | Non3col_lb.Resisted { family_size; distinct_windows } ->
      check_int "every window distinct" family_size distinct_windows
  | Non3col_lb.Fooled _ -> Alcotest.fail "universal non-3-col scheme fooled!"
  | Non3col_lb.Prover_failed _ -> Alcotest.fail "universal prover failed on gadgets"

(* --- counting bound sanity --- *)

let counting_bounds () =
  check "window capacity bound" true
    (Symmetry_lb.forced_collision_bound ~bits:1 ~radius:1 = 8);
  check "huge budgets saturate" true
    (Symmetry_lb.forced_collision_bound ~bits:30 ~radius:3 = max_int)

let suite =
  ( "lowerbounds",
    [
      Alcotest.test_case "undersized schemes are complete" `Quick truncated_complete;
      Alcotest.test_case "F1 gluing fools odd-n" `Quick gluing_fools_odd_n;
      Alcotest.test_case "F1 gluing fools leader election" `Quick gluing_fools_leader;
      Alcotest.test_case "F1 gluing fools matching" `Quick gluing_fools_matching;
      Alcotest.test_case "honest schemes resist gluing" `Slow gluing_resists_honest;
      Alcotest.test_case "F1 general k: three leaders" `Quick gluing_k3_leader;
      Alcotest.test_case "F1 general k: parity parameters" `Quick gluing_k3_odd_parity;
      Alcotest.test_case "F1 general k: honest resists" `Quick gluing_k3_honest_resists;
      Alcotest.test_case "cycle id layout" `Quick cycle_ids_structure;
      Alcotest.test_case "6.1 odot properties" `Slow odot_properties;
      Alcotest.test_case "6.1 claims scheme fooled" `Slow symmetry_attack_fools_claims;
      Alcotest.test_case "6.1 universal resists" `Slow symmetry_attack_resisted_by_universal;
      Alcotest.test_case "6.2 rooted odot properties" `Quick odot_rooted_properties;
      Alcotest.test_case "6.2 claims scheme fooled" `Quick tree_attack_fools_claims;
      Alcotest.test_case "6.2 tree-universal resists" `Quick tree_attack_resisted_by_universal;
      Alcotest.test_case "6.3 gadget properties" `Slow gadget_properties;
      Alcotest.test_case "6.3 gadgets at k=2" `Slow gadget_k2_smoke;
      Alcotest.test_case "6.3 uniform layout" `Quick gadget_uniform_layout;
      Alcotest.test_case "6.3 ball-claims fooled" `Slow non3col_attack_fools_ball_claims;
      Alcotest.test_case "6.3 universal resists" `Slow non3col_attack_resisted_by_universal;
      Alcotest.test_case "counting bounds" `Quick counting_bounds;
    ] )
