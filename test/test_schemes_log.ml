(* The LogLCP level: Table 1 rows T1a-11..T1a-14, T1b-5..T1b-9. *)

open Test_util

let check = Alcotest.(check bool)
let of_g g = Instance.of_graph g

(* --- spanning tree certificates (the shared tool) --- *)

let tree_cert_roundtrip () =
  let c = { Tree_cert.root = 42; dist = 7; parent = Some 13 } in
  check "roundtrip" true (Tree_cert.decode (Tree_cert.encode c) = c);
  let r = { Tree_cert.root = 42; dist = 0; parent = None } in
  check "root roundtrip" true (Tree_cert.decode (Tree_cert.encode r) = r)

let tree_cert_prove () =
  let g = Random_graphs.connected_gnp (st 5) 15 0.2 in
  let certs = Tree_cert.prove g ~root:0 in
  check "all nodes" true (List.length certs = Graph.n g);
  List.iter
    (fun (v, c) ->
      check "same root" true (c.Tree_cert.root = 0);
      match c.Tree_cert.parent with
      | None -> check "root at dist 0" true (v = 0 && c.Tree_cert.dist = 0)
      | Some p -> check "parent is neighbour" true (Graph.mem_edge g v p))
    certs

(* --- T1b-6 spanning tree --- *)

let spanning_tree_instances g =
  let pairs = Traversal.spanning_tree g (List.hd (Graph.nodes g)) in
  Instance.flag_edges (of_g g) (List.map (fun (v, p) -> (min v p, max v p)) pairs)

let spanning_tree () =
  List.iter
    (fun g -> assert_complete Spanning_tree_scheme.scheme [ spanning_tree_instances g ])
    [
      Builders.cycle 9;
      Builders.grid 3 4;
      Random_graphs.connected_gnp (st 6) 12 0.25;
      Random_graphs.tree (st 7) 10;
    ];
  (* strong scheme: an adversarially chosen different spanning tree *)
  let g = Builders.complete 5 in
  let star_tree = Instance.flag_edges (of_g g) [ (0, 1); (0, 2); (0, 3); (0, 4) ] in
  let path_tree = Instance.flag_edges (of_g g) [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  assert_complete Spanning_tree_scheme.scheme [ star_tree; path_tree ];
  (* not a spanning tree: a cycle among the flagged edges *)
  let bad = Instance.flag_edges (of_g g) [ (0, 1); (1, 2); (0, 2); (3, 4) ] in
  assert_refuses Spanning_tree_scheme.scheme [ bad ];
  assert_sound_random ~max_bits:8 Spanning_tree_scheme.scheme [ bad ];
  (* disconnected flagged forest with the right count is also bad *)
  let g6 = Builders.cycle 6 in
  let forest =
    Instance.flag_edges (of_g g6) [ (0, 1); (1, 2); (3, 4); (4, 5); (2, 3) ]
  in
  assert_complete Spanning_tree_scheme.scheme [ forest ];
  (* dropping one edge leaves two paths: not spanning *)
  let broken = Instance.flag_edges (of_g g6) [ (0, 1); (1, 2); (3, 4); (4, 5) ] in
  assert_refuses Spanning_tree_scheme.scheme [ broken ];
  assert_sound_random ~max_bits:8 Spanning_tree_scheme.scheme [ broken ];
  assert_tamper_sensitive Spanning_tree_scheme.scheme
    (spanning_tree_instances (Builders.grid 3 3))

(* --- T1b-5 leader election --- *)

let leader () =
  List.iter
    (fun g ->
      (* strong: adversary picks any leader *)
      List.iter
        (fun leader ->
          let inst = Leader_election.mark_leader (of_g g) leader in
          assert_complete Leader_election.strong [ inst ])
        [ List.hd (Graph.nodes g); Graph.max_id g ])
    [ Builders.cycle 8; Builders.grid 3 3; Random_graphs.tree (st 9) 9 ];
  (* two leaders: refused and unforgeable *)
  let g = Builders.cycle 6 in
  let two =
    Instance.with_node_labels (of_g g)
      (List.map (fun v -> (v, Bits.one_bit (v = 0 || v = 3))) (Graph.nodes g))
  in
  assert_refuses Leader_election.strong [ two ];
  assert_sound_random ~max_bits:8 Leader_election.strong [ two ];
  assert_sound_adversarial ~max_bits:6 Leader_election.strong [ two ];
  (* zero leaders *)
  let zero =
    Instance.with_node_labels (of_g g)
      (List.map (fun v -> (v, Bits.one_bit false)) (Graph.nodes g))
  in
  assert_refuses Leader_election.strong [ zero ];
  assert_sound_random ~max_bits:8 Leader_election.strong [ zero ];
  (* weak flavour: solves unlabelled instances *)
  assert_complete Leader_election.weak [ of_g g; of_g (Builders.grid 3 4) ]

(* --- T1a-13 counting (odd n) --- *)

let counting () =
  assert_complete Counting.odd_n
    [ of_g (Builders.cycle 7); of_g (Builders.grid 3 3);
      of_g (Random_graphs.tree (st 10) 11) ];
  assert_refuses Counting.odd_n [ of_g (Builders.cycle 8) ];
  assert_sound_random ~max_bits:8 Counting.odd_n
    [ of_g (Builders.cycle 6); of_g (Builders.grid 3 4) ];
  assert_sound_adversarial ~max_bits:8 Counting.odd_n [ of_g (Builders.cycle 6) ];
  assert_complete Counting.even_n [ of_g (Builders.cycle 8) ];
  assert_complete (Counting.exact_n 9) [ of_g (Builders.grid 3 3) ];
  assert_refuses (Counting.exact_n 9) [ of_g (Builders.grid 3 4) ];
  assert_tamper_sensitive Counting.odd_n (of_g (Builders.cycle 9))

(* --- T1a-14 non-bipartiteness (chromatic number > 2) --- *)

let non_bipartite () =
  assert_complete Non_bipartite.scheme
    [
      of_g (Builders.cycle 7);
      of_g Builders.petersen;
      of_g (Builders.wheel 5);
      of_g (Builders.complete 4);
      of_g (Random_graphs.connected_gnp (st 11) 13 0.35);
    ];
  assert_refuses Non_bipartite.scheme
    [ of_g (Builders.cycle 8); of_g (Builders.grid 3 4) ];
  assert_sound_random ~max_bits:8 Non_bipartite.scheme
    [ of_g (Builders.cycle 6); of_g (Builders.grid 3 3) ];
  assert_sound_adversarial ~max_bits:6 Non_bipartite.scheme
    [ of_g (Builders.cycle 6) ];
  assert_tamper_sensitive Non_bipartite.scheme (of_g (Builders.cycle 9))

(* --- T1b-8 Hamiltonian cycle --- *)

let hamiltonian () =
  List.iter
    (fun g ->
      match Hamiltonian.hamiltonian_cycle g with
      | None -> ()
      | Some seq ->
          let arr = Array.of_list seq in
          let n = Array.length arr in
          let edges =
            List.init n (fun i ->
                let u = arr.(i) and v = arr.((i + 1) mod n) in
                (min u v, max u v))
          in
          assert_complete Hamiltonian_scheme.scheme
            [ Instance.flag_edges (of_g g) edges ])
    [ Builders.cycle 8; Builders.complete 5; Builders.hypercube 3; Builders.grid 2 4 ];
  (* two disjoint triangles inside K6: 2-regular, spanning, but not a cycle *)
  let k6 = Builders.complete 6 in
  let two_triangles =
    Instance.flag_edges (of_g k6)
      [ (0, 1); (1, 2); (0, 2); (3, 4); (4, 5); (3, 5) ]
  in
  assert_refuses Hamiltonian_scheme.scheme [ two_triangles ];
  assert_sound_random ~max_bits:10 Hamiltonian_scheme.scheme [ two_triangles ];
  assert_sound_adversarial ~max_bits:8 Hamiltonian_scheme.scheme [ two_triangles ];
  (* a non-spanning cycle *)
  let short = Instance.flag_edges (of_g k6) [ (0, 1); (1, 2); (0, 2) ] in
  assert_refuses Hamiltonian_scheme.scheme [ short ];
  assert_sound_random ~max_bits:10 Hamiltonian_scheme.scheme [ short ]

(* --- T1b-7 maximum matching on cycles --- *)

let matching_on_cycles () =
  List.iter
    (fun n ->
      let g = Builders.cycle n in
      let m = Matching.maximum_on_cycle g in
      assert_complete Matching_schemes.maximum_on_cycle
        [ Instance.flag_edges (of_g g) m ])
    [ 6; 7; 9; 12 ];
  (* sub-maximum: skip two nodes *)
  let g = Builders.cycle 8 in
  let submax = Instance.flag_edges (of_g g) [ (1, 2); (4, 5) ] in
  assert_refuses Matching_schemes.maximum_on_cycle [ submax ];
  assert_sound_random ~max_bits:8 Matching_schemes.maximum_on_cycle [ submax ];
  assert_sound_adversarial ~max_bits:8 Matching_schemes.maximum_on_cycle [ submax ]

(* --- T1b-9 acyclicity --- *)

let acyclic () =
  assert_complete Acyclic.scheme
    [
      of_g (Random_graphs.tree (st 12) 12);
      of_g (Builders.path 6);
      of_g (Graph.union_disjoint (Builders.path 4) (Canonical.shifted (Builders.path 5) 10));
      of_g (Graph.add_node Graph.empty 3);
    ];
  assert_refuses Acyclic.scheme [ of_g (Builders.cycle 5) ];
  assert_sound_random ~max_bits:10 Acyclic.scheme
    [ of_g (Builders.cycle 6);
      of_g (Graph.union_disjoint (Builders.path 3) (Canonical.shifted (Builders.cycle 4) 10)) ];
  assert_sound_adversarial ~max_bits:8 Acyclic.scheme [ of_g (Builders.cycle 6) ]

(* --- T1a-11 coLCP(0): non-Eulerian graphs --- *)

let colcp0 () =
  assert_complete Colcp0.non_eulerian
    [ of_g (Builders.path 5); of_g (Builders.complete 4); of_g Builders.petersen ];
  assert_refuses Colcp0.non_eulerian
    [ of_g (Builders.cycle 6); of_g (Builders.complete 5) ];
  assert_sound_random ~max_bits:8 Colcp0.non_eulerian
    [ of_g (Builders.cycle 6) ];
  assert_sound_adversarial ~max_bits:8 Colcp0.non_eulerian [ of_g (Builders.cycle 5) ];
  (* generic transformer on another LCP(0) scheme: non-line-graphs *)
  let co_line = Colcp0.complement Line_graph_scheme.scheme in
  assert_complete co_line [ of_g (Builders.star 3); of_g (Builders.wheel 5) ];
  assert_refuses co_line [ of_g (Builders.complete 3) ]

(* --- proof sizes scale as Θ(log n) --- *)

let log_growth () =
  let sizes scheme mk =
    List.map (fun n -> (n, proof_size scheme (mk n))) [ 8; 16; 32; 64; 128 ]
  in
  let spanning n = spanning_tree_instances (Builders.cycle n) in
  let leader n = Leader_election.mark_leader (of_g (Builders.cycle n)) 0 in
  let odd n = of_g (Builders.cycle (n + 1)) in
  List.iter
    (fun (name, s) ->
      check (name ^ " grows logarithmically") true
        (Complexity.classify s = Complexity.Logarithmic))
    [
      ("spanning tree", sizes Spanning_tree_scheme.scheme spanning);
      ("leader election", sizes Leader_election.strong leader);
      ("odd n", sizes Counting.odd_n odd);
    ]

let suite =
  ( "schemes-loglcp",
    [
      Alcotest.test_case "tree certificate roundtrip" `Quick tree_cert_roundtrip;
      Alcotest.test_case "tree certificate prover" `Quick tree_cert_prove;
      Alcotest.test_case "T1b-6 spanning tree" `Quick spanning_tree;
      Alcotest.test_case "T1b-5 leader election" `Quick leader;
      Alcotest.test_case "T1a-13 counting" `Quick counting;
      Alcotest.test_case "T1a-14 non-bipartite" `Quick non_bipartite;
      Alcotest.test_case "T1b-8 hamiltonian cycle" `Quick hamiltonian;
      Alcotest.test_case "T1b-7 matching on cycles" `Quick matching_on_cycles;
      Alcotest.test_case "T1b-9 acyclic" `Quick acyclic;
      Alcotest.test_case "T1a-11 coLCP(0)" `Quick colcp0;
      Alcotest.test_case "log-size growth" `Slow log_growth;
    ] )
