(* Cross-validation of the graph substrate against brute force on
   small instances — the algorithms the schemes' correctness rides on. *)

let check = Alcotest.(check bool)

let arb_small_graph =
  QCheck.make
    ~print:(fun g -> Format.asprintf "%a" Graph.pp g)
    QCheck.Gen.(
      let* n = int_range 2 7 in
      let* p = float_range 0.2 0.8 in
      let* seed = int_bound 1_000_000 in
      return (Random_graphs.gnp (Random.State.make [| seed |]) n p))

(* --- vertex connectivity vs brute-force separators --- *)

let rec subsets = function
  | [] -> [ [] ]
  | x :: rest ->
      let s = subsets rest in
      s @ List.map (fun l -> x :: l) s

let brute_vertex_connectivity g s t =
  (* minimum size of a vertex set (excluding s, t) whose removal
     disconnects s from t *)
  let others = List.filter (fun v -> v <> s && v <> t) (Graph.nodes g) in
  subsets others
  |> List.filter (fun cut ->
         let g' = List.fold_left Graph.remove_node g cut in
         Traversal.distance g' s t = None)
  |> List.fold_left (fun acc cut -> min acc (List.length cut)) max_int

let qcheck_connectivity_brute =
  QCheck.Test.make ~name:"vertex connectivity matches brute-force min cut"
    ~count:60 arb_small_graph (fun g ->
      let nodes = Graph.nodes g in
      let s = List.hd nodes and t = List.nth nodes (List.length nodes - 1) in
      QCheck.assume (s <> t && not (Graph.mem_edge g s t));
      Flow.vertex_connectivity g ~s ~t = brute_vertex_connectivity g s t)

(* --- maximum matching vs brute force --- *)

let brute_max_matching g =
  let edges = Graph.edges g in
  let rec go acc best = function
    | [] -> max best (List.length acc)
    | (u, v) :: rest ->
        let best = go acc best rest in
        let used = Matching.matched_nodes acc in
        if List.mem u used || List.mem v used then best
        else go ((u, v) :: acc) best rest
  in
  go [] 0 edges

let qcheck_matching_brute =
  QCheck.Test.make ~name:"bipartite maximum matching matches brute force"
    ~count:60
    QCheck.(triple (int_range 1 5) (int_range 1 5) (int_bound 1_000_000))
    (fun (a, b, seed) ->
      let g = Random_graphs.bipartite (Random.State.make [| seed |]) a b 0.5 in
      List.length (Matching.maximum_bipartite g) = brute_max_matching g)

(* --- chromatic number vs brute force --- *)

let brute_chromatic g =
  let n = Graph.n g in
  if n = 0 then 0
  else begin
    let nodes = Array.of_list (Graph.nodes g) in
    let rec try_k k =
      let colours = Hashtbl.create 8 in
      let rec go i =
        if i = Array.length nodes then true
        else
          let v = nodes.(i) in
          let rec attempt c =
            c < k
            && ((not
                   (List.exists
                      (fun u -> Hashtbl.find_opt colours u = Some c)
                      (Graph.neighbours g v)))
                && begin
                     Hashtbl.replace colours v c;
                     if go (i + 1) then true
                     else begin
                       Hashtbl.remove colours v;
                       attempt (c + 1)
                     end
                   end
               || attempt (c + 1))
          in
          attempt 0
      in
      if go 0 then k else try_k (k + 1)
    in
    try_k 1
  end

let qcheck_chromatic_brute =
  QCheck.Test.make ~name:"chromatic number matches naive search" ~count:40
    arb_small_graph (fun g -> Coloring.chromatic_number g = brute_chromatic g)

(* --- automorphism count vs all permutations --- *)

let brute_automorphisms g =
  let nodes = Array.of_list (Graph.nodes g) in
  let n = Array.length nodes in
  let rec perms acc available =
    match available with
    | [] -> [ List.rev acc ]
    | _ -> List.concat_map (fun x -> perms (x :: acc) (List.filter (( <> ) x) available)) available
  in
  perms [] (Array.to_list nodes)
  |> List.filter (fun perm ->
         let map = Hashtbl.create 8 in
         List.iteri (fun i img -> Hashtbl.replace map nodes.(i) img) perm;
         let ok = ref true in
         for i = 0 to n - 1 do
           for j = i + 1 to n - 1 do
             let u = nodes.(i) and v = nodes.(j) in
             if
               Bool.equal (Graph.mem_edge g u v)
                 (Graph.mem_edge g (Hashtbl.find map u) (Hashtbl.find map v))
               = false
             then ok := false
           done
         done;
         !ok)
  |> List.length

let qcheck_automorphisms_brute =
  QCheck.Test.make ~name:"automorphism count matches n! enumeration" ~count:25
    QCheck.(pair (int_range 2 5) (int_bound 1_000_000))
    (fun (n, seed) ->
      let g = Random_graphs.gnp (Random.State.make [| seed |]) n 0.5 in
      Automorphism.count_automorphisms g = brute_automorphisms g)

(* --- canonical form properties --- *)

let qcheck_canonical_idempotent =
  QCheck.Test.make ~name:"canonical form is idempotent and isomorphic" ~count:60
    arb_small_graph (fun g ->
      let c = Canonical.canonical_form g in
      Graph.equal c (Canonical.canonical_form c) && Subgraph_iso.are_isomorphic g c)

(* --- Euler circuits on constructed Eulerian graphs --- *)

let qcheck_euler =
  QCheck.Test.make ~name:"Hierholzer succeeds on unions of cycles" ~count:40
    QCheck.(pair (int_range 1 3) (int_bound 1_000_000))
    (fun (layers, seed) ->
      let st = Random.State.make [| seed |] in
      let g = Random_graphs.regular_even st 7 layers in
      (* regular_even may merge parallel edges; keep only genuinely
         even-degree connected results *)
      QCheck.assume (Euler.is_eulerian g);
      match Euler.eulerian_circuit g with
      | Some walk -> List.length walk = Graph.m g + 1
      | None -> false)

(* --- tree codec on random trees --- *)

let qcheck_tree_codec =
  QCheck.Test.make ~name:"tree structure codec preserves rooted shape" ~count:60
    QCheck.(pair (int_range 2 14) (int_bound 1_000_000))
    (fun (n, seed) ->
      let t = Random_graphs.tree (Random.State.make [| seed |]) n in
      let root = List.hd (Graph.nodes t) in
      let code = Tree_code.encode_structure t ~root in
      let t' = Tree_code.decode_structure code in
      Bits.length code = 2 * (n - 1)
      && Tree_enum.canonical_code t root
         = Tree_enum.canonical_code t'.Tree_enum.tree t'.Tree_enum.root)

(* --- tree certificates resist random corruption --- *)

let qcheck_tree_cert_tamper =
  QCheck.Test.make ~name:"corrupted spanning-tree certificates are rejected"
    ~count:40
    QCheck.(pair (int_range 4 10) (int_bound 1_000_000))
    (fun (n, seed) ->
      let st = Random.State.make [| seed |] in
      let g = Random_graphs.connected_gnp st n 0.3 in
      let inst = Leader_election.mark_leader (Instance.of_graph g) 0 in
      match Scheme.prove_and_check Leader_election.strong inst with
      | `Accepted proof ->
          let victim =
            List.nth (Graph.nodes g) (Random.State.int st (Graph.n g))
          in
          let bits = Proof.get proof victim in
          QCheck.assume (Bits.length bits > 0);
          let corrupted =
            Proof.set proof victim
              (Bits.flip bits (Random.State.int st (Bits.length bits)))
          in
          (* Tree certificates are not unique: a flip can legally land
             on a *different* valid certificate (e.g. an alternative
             parent at the same BFS distance). The sound property is
             that anything accepted still decodes, node by node, to a
             consistent assignment — root fields all name the leader
             and parent pointers follow graph edges with strictly
             decreasing distance, which forces a spanning tree rooted
             at the leader. *)
          let consistent_assignment proof =
            List.for_all
              (fun v ->
                match Tree_cert.decode (Proof.get proof v) with
                | exception Bits.Reader.Decode_error _ -> false
                | c ->
                    c.Tree_cert.root = 0
                    &&
                    if c.Tree_cert.dist = 0 then
                      v = 0 && c.Tree_cert.parent = None
                    else (
                      match c.Tree_cert.parent with
                      | None -> false
                      | Some p ->
                          Graph.mem_edge g v p
                          && (Tree_cert.decode (Proof.get proof p))
                               .Tree_cert.dist
                             = c.Tree_cert.dist - 1))
              (Graph.nodes g)
          in
          (match Scheme.decide Leader_election.strong inst corrupted with
          | Scheme.Reject _ -> true
          | Scheme.Accept -> consistent_assignment corrupted)
      | _ -> false)

let suite =
  ( "properties",
    [
      QCheck_alcotest.to_alcotest qcheck_connectivity_brute;
      QCheck_alcotest.to_alcotest qcheck_matching_brute;
      QCheck_alcotest.to_alcotest qcheck_chromatic_brute;
      QCheck_alcotest.to_alcotest qcheck_automorphisms_brute;
      QCheck_alcotest.to_alcotest qcheck_canonical_idempotent;
      QCheck_alcotest.to_alcotest qcheck_euler;
      QCheck_alcotest.to_alcotest qcheck_tree_codec;
      QCheck_alcotest.to_alcotest qcheck_tree_cert_tamper;
    ] )
