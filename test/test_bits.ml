let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let roundtrip_gamma () =
  List.iter
    (fun v -> check_int (Printf.sprintf "gamma %d" v) v (Bits.decode_int (Bits.encode_int v)))
    [ 0; 1; 2; 3; 7; 8; 100; 1023; 1024; 999999 ]

let gamma_size () =
  (* Elias gamma of v+1 costs 2·⌊log2(v+1)⌋ + 1 bits. *)
  List.iter
    (fun v ->
      let expected = (2 * (Bits.int_width (v + 1) - 1)) + 1 in
      check_int (Printf.sprintf "gamma size %d" v) expected
        (Bits.length (Bits.encode_int v)))
    [ 0; 1; 3; 7; 100 ]

let fixed_roundtrip () =
  let buf = Bits.Writer.create () in
  Bits.Writer.int_fixed buf ~width:7 93;
  Bits.Writer.int_fixed buf ~width:3 5;
  let cur = Bits.Reader.of_bits (Bits.Writer.contents buf) in
  check_int "first" 93 (Bits.Reader.int_fixed cur ~width:7);
  check_int "second" 5 (Bits.Reader.int_fixed cur ~width:3);
  check "end" true (Bits.Reader.at_end cur)

let list_roundtrip () =
  let buf = Bits.Writer.create () in
  Bits.Writer.list buf Bits.Writer.int_gamma [ 4; 0; 17; 3 ];
  let cur = Bits.Reader.of_bits (Bits.Writer.contents buf) in
  Alcotest.(check (list int))
    "list" [ 4; 0; 17; 3 ]
    (Bits.Reader.list cur Bits.Reader.int_gamma)

let truncation_raises () =
  let b = Bits.take 3 (Bits.encode_int 1000) in
  Alcotest.check_raises "decode error" (Bits.Reader.Decode_error "truncated")
    (fun () -> ignore (Bits.decode_int b))

let string_ops () =
  let b = Bits.of_string "01101" in
  check_int "length" 5 (Bits.length b);
  check "bit 1" true (Bits.get b 1);
  check "bit 0" false (Bits.get b 0);
  check_str "flip" "01001" (Bits.to_string (Bits.flip b 2));
  check_str "sub" "110" (Bits.to_string (Bits.sub b 1 3));
  check_str "append" "0110101101"
    (Bits.to_string (Bits.append b b));
  check_str "take" "011" (Bits.to_string (Bits.take 3 b));
  check_str "take over" "01101" (Bits.to_string (Bits.take 99 b))

let int_width () =
  List.iter
    (fun (n, w) -> check_int (Printf.sprintf "width %d" n) w (Bits.int_width n))
    [ (0, 1); (1, 1); (2, 2); (3, 2); (4, 3); (255, 8); (256, 9) ]

let qcheck_gamma =
  QCheck.Test.make ~name:"gamma roundtrips" ~count:500
    QCheck.(int_bound 1_000_000)
    (fun v -> Bits.decode_int (Bits.encode_int v) = v)

let qcheck_bools =
  QCheck.Test.make ~name:"of_bools/to_bools roundtrips" ~count:200
    QCheck.(list bool)
    (fun bs -> Bits.to_bools (Bits.of_bools bs) = bs)

let qcheck_writer_reader =
  QCheck.Test.make ~name:"mixed writer/reader roundtrips" ~count:200
    QCheck.(pair (list (int_bound 1000)) (list bool))
    (fun (ints, bools) ->
      let buf = Bits.Writer.create () in
      Bits.Writer.list buf Bits.Writer.int_gamma ints;
      Bits.Writer.list buf Bits.Writer.bool bools;
      let cur = Bits.Reader.of_bits (Bits.Writer.contents buf) in
      let ints' = Bits.Reader.list cur Bits.Reader.int_gamma in
      let bools' = Bits.Reader.list cur Bits.Reader.bool in
      Bits.Reader.expect_end cur;
      ints' = ints && bools' = bools)

let suite =
  ( "bits",
    [
      Alcotest.test_case "gamma roundtrip" `Quick roundtrip_gamma;
      Alcotest.test_case "gamma size formula" `Quick gamma_size;
      Alcotest.test_case "fixed-width roundtrip" `Quick fixed_roundtrip;
      Alcotest.test_case "list roundtrip" `Quick list_roundtrip;
      Alcotest.test_case "truncation raises" `Quick truncation_raises;
      Alcotest.test_case "string operations" `Quick string_ops;
      Alcotest.test_case "int_width" `Quick int_width;
      QCheck_alcotest.to_alcotest qcheck_gamma;
      QCheck_alcotest.to_alcotest qcheck_bools;
      QCheck_alcotest.to_alcotest qcheck_writer_reader;
    ] )
