(* Closure of LCP classes under conjunction and (connected)
   disjunction, as executable combinators. *)

open Test_util

let check = Alcotest.(check bool)
let of_g g = Instance.of_graph g

let conj_scheme =
  Combinators.conj ~name:"bipartite-and-eulerian" Bipartite_scheme.scheme
    Eulerian.scheme

let conjunction () =
  (* even cycles satisfy both *)
  assert_complete conj_scheme [ of_g (Builders.cycle 6); of_g (Builders.cycle 10) ];
  (* odd cycle: eulerian but not bipartite *)
  assert_refuses conj_scheme [ of_g (Builders.cycle 7) ];
  assert_sound_random ~max_bits:4 conj_scheme [ of_g (Builders.cycle 7) ];
  (* path: bipartite but not eulerian *)
  assert_refuses conj_scheme [ of_g (Builders.path 5) ];
  assert_sound_random ~max_bits:4 conj_scheme [ of_g (Builders.path 5) ];
  assert_sound_exhaustive ~max_bits:2 conj_scheme [ of_g (Builders.cycle 5) ]

let conj_log_level () =
  (* conjunction at the LogLCP level: odd n AND non-bipartite *)
  let s =
    Combinators.conj ~name:"odd-and-non-bipartite" Counting.odd_n
      Non_bipartite.scheme
  in
  assert_complete s [ of_g (Builders.cycle 7); of_g (Builders.cycle 9) ];
  assert_refuses s [ of_g (Builders.cycle 8) ];
  (* C8 even AND bipartite: both fail *)
  assert_sound_random ~max_bits:8 s [ of_g (Builders.cycle 8) ];
  (* grid 3x3: odd n but bipartite *)
  assert_refuses s [ of_g (Builders.grid 3 3) ];
  assert_sound_random ~max_bits:8 s [ of_g (Builders.grid 3 3) ]

let disj_scheme =
  Combinators.disj ~name:"eulerian-or-bipartite" Eulerian.scheme
    Bipartite_scheme.scheme

let disjunction () =
  (* C5: eulerian, not bipartite *)
  assert_complete disj_scheme [ of_g (Builders.cycle 5) ];
  (* P4: bipartite, not eulerian *)
  assert_complete disj_scheme [ of_g (Builders.path 4) ];
  (* C6: both *)
  assert_complete disj_scheme [ of_g (Builders.cycle 6) ];
  (* wheel W5: hub degree 5 (odd) and chromatic number 4: neither *)
  assert_refuses disj_scheme [ of_g (Builders.wheel 5) ];
  assert_sound_random ~max_bits:4 disj_scheme [ of_g (Builders.wheel 5) ];
  assert_sound_exhaustive ~max_bits:2 disj_scheme [ of_g (Builders.wheel 5) ]

let disj_selector_agreement () =
  (* forged proofs with disagreeing selectors are rejected even when
     both payloads would locally pass *)
  let g = Builders.cycle 6 in
  let inst = of_g g in
  match Scheme.prove_and_check disj_scheme inst with
  | `Accepted proof ->
      let flipped =
        Proof.set proof 0 (Bits.flip (Proof.get proof 0) 0)
      in
      check "selector disagreement caught" false
        (Scheme.accepts disj_scheme inst flipped)
  | _ -> Alcotest.fail "prover failed"

let restriction () =
  let s =
    Combinators.restrict ~name:"bipartite-on-cycles"
      (fun inst ->
        let g = Instance.graph inst in
        Graph.n g >= 3
        && Graph.m g = Graph.n g
        && Graph.fold_nodes (fun v acc -> acc && Graph.degree g v = 2) g true)
      Bipartite_scheme.scheme
  in
  assert_complete s [ of_g (Builders.cycle 6) ];
  (* outside the promise the prover refuses, even on a yes-instance of
     the unrestricted property *)
  assert_refuses s [ of_g (Builders.path 4) ]

let sizes_add_up () =
  let bits inst = proof_size conj_scheme inst in
  (* 1 bit (bipartite) + 0 (eulerian) + small frame *)
  check "conj size is sum plus frame" true (bits (of_g (Builders.cycle 8)) <= 8);
  let d = proof_size disj_scheme (of_g (Builders.cycle 5)) in
  check "disj size is max plus selector" true (d <= 2)

let suite =
  ( "combinators",
    [
      Alcotest.test_case "conjunction" `Quick conjunction;
      Alcotest.test_case "conjunction at LogLCP level" `Quick conj_log_level;
      Alcotest.test_case "disjunction" `Quick disjunction;
      Alcotest.test_case "selector agreement" `Quick disj_selector_agreement;
      Alcotest.test_case "restriction" `Quick restriction;
      Alcotest.test_case "combined sizes" `Quick sizes_add_up;
    ] )
