(* Table 1(a)'s dash row: "connected graph / general" — no locally
   checkable proof of ANY size. The disjoint-union attack defeats every
   complete scheme, including the all-powerful universal one. *)

let check = Alcotest.(check bool)

let universal_connectivity_fooled () =
  let scheme =
    Universal.of_predicate ~name:"connected-universal" Traversal.is_connected
  in
  check "even the universal scheme is fooled" true
    (No_scheme.connectivity_has_no_scheme scheme)

let logn_connectivity_fooled () =
  (* a Θ(log n) attempt: certify a spanning tree of "the" graph — the
     classic broken idea, fooled the same way (each component gets its
     own root). *)
  let attempt =
    Scheme.make ~name:"connected-via-tree" ~radius:1
      ~size_bound:Tree_cert.size_bound
      ~prover:(fun inst ->
        let g = Instance.graph inst in
        if Graph.is_empty g || not (Traversal.is_connected g) then None
        else
          Some
            (List.fold_left
               (fun p (v, c) -> Proof.set p v (Tree_cert.encode c))
               Proof.empty
               (Tree_cert.prove g ~root:(List.hd (Graph.nodes g)))))
      ~verifier:(fun view ->
        Tree_cert.check_at view ~cert_of:(fun u ->
            Tree_cert.decode (View.proof_of view u)))
  in
  check "tree-certificate connectivity is fooled" true
    (No_scheme.connectivity_has_no_scheme attempt)

let fooled_instance_structure () =
  let scheme =
    Universal.of_predicate ~name:"connected-universal" Traversal.is_connected
  in
  let st = Random.State.make [| 5 |] in
  let component () = Instance.of_graph (Random_graphs.connected_gnp st 7 0.4) in
  let other () =
    Instance.of_graph (Canonical.shifted (Random_graphs.connected_gnp st 6 0.4) 50)
  in
  match No_scheme.attack scheme ~component ~other with
  | No_scheme.Fooled { instance; proof } ->
      check "disconnected" false (Traversal.is_connected (Instance.graph instance));
      check "accepted everywhere" true (Scheme.accepts scheme instance proof)
  | No_scheme.Prover_failed -> Alcotest.fail "prover failed on a component"
  | No_scheme.Unexpectedly_rejected _ ->
      Alcotest.fail "a local verifier cannot reject the union"

let sound_on_promise_family () =
  (* The same universal scheme is perfectly sound when the family is
     promised connected — the impossibility is about the family, not
     the scheme. On a single connected no-instance of some property it
     still works; here: "is a tree" over connected inputs. *)
  let scheme = Universal.of_predicate ~name:"tree-universal-check" Tree_enum.is_tree in
  let yes = Instance.of_graph (Random_graphs.tree (Random.State.make [| 2 |]) 9) in
  (match Scheme.prove_and_check scheme yes with
  | `Accepted _ -> ()
  | _ -> Alcotest.fail "tree accepted");
  let no = Instance.of_graph (Builders.cycle 8) in
  check "cycle refused" true (scheme.Scheme.prover no = None);
  check "cycle unforgeable" true
    (Checker.soundness_random scheme no ~samples:60 ~max_bits:10)

let suite =
  ( "no-scheme",
    [
      Alcotest.test_case "universal connectivity fooled" `Quick universal_connectivity_fooled;
      Alcotest.test_case "log-size connectivity fooled" `Quick logn_connectivity_fooled;
      Alcotest.test_case "fooled instance structure" `Quick fooled_instance_structure;
      Alcotest.test_case "sound under the connectivity promise" `Quick sound_on_promise_family;
    ] )
