(* Partition-parallel verification, bottom-up: the region-growth
   partitioner's structural invariants (exact ownership cover, the
   ⌈n/k⌉ balance cap, ghost-closure exactness), the central
   bit-identity property — merged shard verdicts equal a whole-graph
   {!Simulator.run_verifier} for k ∈ {2,4} and radius ∈ {1,2}, pinned
   with a verifier that fingerprints the entire view so any halo
   corruption flips a verdict — the shard file and wire codecs with
   their validation, the daemon's shard execution path (verdicts,
   counters, caching), the oversized-frame guardrail, and the full
   scatter-gather: Fanout through a router over two backends, both of
   which must see work. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let st seed = Random.State.make [| seed |]

let family =
  [
    ("C9", Builders.cycle 9);
    ("C48", Builders.cycle 48);
    ("path17", Builders.path 17);
    ("star9", Builders.star 9);
    ("grid5x6", Builders.grid 5 6);
    ("tree80", Random_graphs.tree (st 11) 80);
    ("gnp60", Random_graphs.connected_gnp (st 12) 60 0.06);
    ("sparse-ids",
     Random_graphs.permuted_ids (st 13) ~factor:7
       (Random_graphs.gnp (st 14) 40 0.1));
    ("two-cycles",
     Graph.union_disjoint (Builders.cycle 7)
       (Canonical.shifted (Builders.cycle 9) 20));
  ]

(* ------------------------------------------------------------------ *)
(* Partitioner invariants *)

let partition_structure () =
  List.iter
    (fun (name, g) ->
      let c = Csr.of_graph g in
      let n = Csr.n c in
      List.iter
        (fun k ->
          List.iter
            (fun radius ->
              let tag = Printf.sprintf "%s k=%d r=%d" name k radius in
              let shards = Partition.make c ~k ~radius in
              (match Partition.check c shards with
              | Ok () -> ()
              | Error m -> Alcotest.failf "%s: check: %s" tag m);
              let count = Array.length shards in
              check_int (tag ^ " clamped shard count") (min k (max 1 n)) count;
              let cap = (n + count - 1) / count in
              let total = ref 0 in
              Array.iter
                (fun s ->
                  let o = Partition.owned_count s in
                  total := !total + o;
                  check (tag ^ " balance cap") true (o <= cap);
                  check_int
                    (tag ^ " local graph size")
                    (Partition.shard_n s)
                    (Graph.n s.Partition.graph);
                  Array.iteri
                    (fun i v ->
                      if i > 0 then
                        check (tag ^ " ids increasing") true
                          (v > s.Partition.ids.(i - 1)))
                    s.Partition.ids)
                shards;
              check_int (tag ^ " every node owned once") n !total)
            [ 0; 1; 2 ])
        [ 1; 2; 3; 5 ])
    family

let closure_tamper_detected () =
  (* closure_ok must be a real check, not a tautology: pretend a shard
     was cut for a larger radius than its halo actually covers and it
     has to fail (on a cycle every radius-2 ball leaves a radius-1
     halo) *)
  let c = Csr.of_graph (Builders.cycle 24) in
  let shards = Partition.make c ~k:2 ~radius:1 in
  Array.iter
    (fun s ->
      check "honest shard closes" true (Partition.closure_ok c s);
      check "deeper radius does not" false
        (Partition.closure_ok c { s with Partition.radius = 2 }))
    shards

(* ------------------------------------------------------------------ *)
(* Bit-identity: merged shard verdicts = whole-graph run_verifier.
   The verifier fingerprints everything it can see — node ids, degrees
   and proof bits across the whole view — so a single wrong or missing
   halo node, edge or proof bit flips some owned verdict. *)

let fingerprint_verifier view =
  let g = View.graph view in
  let acc = ref (View.centre view + (31 * View.radius view)) in
  Graph.iter_nodes
    (fun v ->
      acc :=
        (!acc * 1_000_003)
        + v
        + (17 * Graph.degree g v)
        + Hashtbl.hash (Bits.to_bools (View.proof_of view v)))
    g;
  !acc land 7 <> 0

let random_proof rng g =
  Graph.nodes g
  |> List.fold_left
       (fun p v ->
         Proof.set p v
           (Bits.of_bools
              (List.init
                 (1 + Random.State.int rng 6)
                 (fun _ -> Random.State.bool rng))))
       Proof.empty

let shard_verdicts c proof ~k ~radius =
  let shards = Partition.make c ~k ~radius in
  (match Partition.check c shards with
  | Ok () -> ()
  | Error m -> Alcotest.failf "check: %s" m);
  Array.to_list shards
  |> List.concat_map (fun s ->
         (* mirror the daemon: relabel the local shard graph back to
            original identifiers, rekey the sliced proof, verify the
            owned nodes only *)
         let g = Graph.relabel s.Partition.graph (fun i -> s.Partition.ids.(i)) in
         let compiled = Simulator.compile (Instance.of_graph g) in
         let proof' =
           Proof.of_list
             (List.map
                (fun (v, b) -> (s.Partition.ids.(v), b))
                (Proof.bindings (Partition.proof_slice s proof)))
         in
         Simulator.run_verifier_on compiled proof' ~radius
           ~nodes:(Partition.owned_nodes s) fingerprint_verifier)

let verdict_bit_identity () =
  let rng = st 42 in
  List.iter
    (fun (name, g) ->
      let inst = Instance.of_graph g in
      let c = Csr.of_graph g in
      let proof = random_proof rng g in
      List.iter
        (fun radius ->
          let whole, _ =
            Simulator.run_verifier inst proof ~radius fingerprint_verifier
          in
          let whole = List.sort compare whole in
          List.iter
            (fun k ->
              let merged =
                List.sort compare (shard_verdicts c proof ~k ~radius)
              in
              check
                (Printf.sprintf "%s k=%d r=%d verdicts bit-identical" name k
                   radius)
                true (merged = whole))
            [ 2; 4 ])
        [ 1; 2 ])
    family

(* ------------------------------------------------------------------ *)
(* Shard files *)

let shard_file_roundtrip () =
  let c = Csr.of_graph (Random_graphs.connected_gnp (st 21) 40 0.08) in
  let shards = Partition.make c ~k:3 ~radius:2 in
  Array.iter
    (fun s ->
      match Partition.of_string (Partition.to_string s) with
      | Error m -> Alcotest.failf "roundtrip: %s" m
      | Ok s' ->
          check_int "index" s.Partition.index s'.Partition.index;
          check_int "count" s.Partition.count s'.Partition.count;
          check_int "radius" s.Partition.radius s'.Partition.radius;
          check "ids" true (s.Partition.ids = s'.Partition.ids);
          check "owned" true (s.Partition.owned = s'.Partition.owned);
          check "graph" true (Graph.equal s.Partition.graph s'.Partition.graph))
    shards

let shard_file_malformed () =
  let c = Csr.of_graph (Builders.cycle 12) in
  let good = Partition.to_string (Partition.make c ~k:2 ~radius:1).(0) in
  let expect_err what text =
    match Partition.of_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: malformed shard file parsed" what
  in
  expect_err "empty" "";
  expect_err "bad magic" ("lcp-shard 9\n" ^ good);
  expect_err "truncated"
    (String.concat "\n"
       (List.filteri (fun i _ -> i < 3) (String.split_on_char '\n' good)));
  (* surgically corrupt single fields of the good file *)
  let swap ~from ~to_ =
    let re_lines = String.split_on_char '\n' good in
    String.concat "\n"
      (List.map
         (fun l ->
           if String.length l >= String.length from
              && String.sub l 0 (String.length from) = from
           then to_
           else l)
         re_lines)
  in
  expect_err "ids not increasing" (swap ~from:"ids" ~to_:"ids 3 2 1");
  expect_err "owned length" (swap ~from:"owned" ~to_:"owned 1");
  expect_err "owned alphabet" (swap ~from:"owned" ~to_:"owned 10xx011011");
  expect_err "index range" (swap ~from:"shard" ~to_:"shard 5/2");
  expect_err "negative radius" (swap ~from:"radius" ~to_:"radius -1");
  expect_err "graph size" (swap ~from:"graph6" ~to_:"graph6 C~")

(* ------------------------------------------------------------------ *)
(* Wire codec *)

let wire_shard_request c =
  let s = (Partition.make c ~k:2 ~radius:1).(0) in
  Wire.Verify_partition
    {
      scheme = "eulerian";
      graph6 = Graph6.encode s.Partition.graph;
      ids = s.Partition.ids;
      owned = Bits.of_bools (Array.to_list s.Partition.owned);
      proof = Proof.set Proof.empty 0 (Bits.of_bools [ true; false ]);
      radius = 1;
      shard_index = 0;
      shard_count = 2;
    }

let wire_partition_roundtrip () =
  let req = wire_shard_request (Csr.of_graph (Builders.cycle 20)) in
  (match Wire.decode_request (Wire.encode_request ~version:2 ~id:77 req) with
  | Ok (id, _, req') ->
      check_int "rid echoed" 77 id;
      check "request roundtrips on v2" true (Wire.equal_request req req')
  | Error m -> Alcotest.failf "request decode: %s" m);
  let resp =
    Wire.Partition_verified
      { all_accept = false; owned = 10; rejected = 2; rejecting = [ 3; 17 ] }
  in
  match Wire.decode_response (Wire.encode_response ~version:2 resp) with
  | Ok (_, _, resp') ->
      check "response roundtrips on v2" true (Wire.equal_response resp resp')
  | Error m -> Alcotest.failf "response decode: %s" m

let wire_partition_v1_rejected () =
  (* the version gate fires before any field is read, so any payload
     presented as v1 under tag 0x0B must be refused *)
  match Wire.decode_request_payload ~version:1 ~tag:0x0B "" with
  | Error m -> check "v1 rejection is explained" true (String.length m > 0)
  | Ok _ -> Alcotest.fail "a v1 Verify_partition frame decoded"

let wire_partition_validation () =
  let encode_with ~ids ~owned =
    Wire.encode_request ~version:2
      (Wire.Verify_partition
         {
           scheme = "eulerian";
           graph6 = Graph6.encode (Builders.cycle 3);
           ids;
           owned;
           proof = Proof.empty;
           radius = 1;
           shard_index = 0;
           shard_count = 1;
         })
  in
  let expect_reject what frame =
    match Wire.decode_request frame with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: invalid shard frame decoded" what
  in
  expect_reject "non-increasing ids"
    (encode_with ~ids:[| 4; 2; 7 |]
       ~owned:(Bits.of_bools [ true; true; true ]));
  expect_reject "owned bitmap length"
    (encode_with ~ids:[| 1; 2; 3 |] ~owned:(Bits.of_bools [ true ]))

(* ------------------------------------------------------------------ *)
(* Daemon execution path *)

let with_server config f =
  let t = Server.create { config with Server.port = 0 } in
  let th = Server.start t in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      Thread.join th)
    (fun () -> f t (Server.port t))

let with_client port f =
  match Client.connect ~port () with
  | Error m -> Alcotest.failf "connect: %s" m
  | Ok c -> Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let call c req =
  match Client.call c req with
  | Ok resp -> resp
  | Error m -> Alcotest.failf "call: transport error %s" m

(* a cycle accepts eulerian everywhere; adding one chord leaves
   exactly two odd-degree nodes that must reject, in both paths *)
let chorded n = Graph.add_edge (Builders.cycle n) 2 (n / 2)

let send_shards port scheme proof shards =
  Array.to_list shards
  |> List.concat_map (fun s ->
         let req =
           Wire.Verify_partition
             {
               scheme;
               graph6 = Graph6.encode s.Partition.graph;
               ids = s.Partition.ids;
               owned = Bits.of_bools (Array.to_list s.Partition.owned);
               proof = Partition.proof_slice s proof;
               radius = 1;
               shard_index = s.Partition.index;
               shard_count = s.Partition.count;
             }
         in
         with_client port @@ fun c ->
         match call c req with
         | Wire.Partition_verified { rejecting; _ } -> rejecting
         | Wire.Error_reply { message; _ } ->
             Alcotest.failf "shard reply: %s" message
         | _ -> Alcotest.fail "shard reply: unexpected response")

let server_shard_execution () =
  with_server { Server.default_config with jobs = 2; cache_size = 8 }
  @@ fun t port ->
  let g = chorded 30 in
  let c = Csr.of_graph g in
  let shards = Partition.make c ~k:3 ~radius:1 in
  let whole =
    with_client port @@ fun cl ->
    match
      call cl
        (Wire.Verify
           { scheme = "eulerian"; graph6 = Graph6.encode g; proof = Proof.empty })
    with
    | Wire.Verified { rejecting; _ } -> rejecting
    | _ -> Alcotest.fail "whole verify"
  in
  let merged =
    List.sort_uniq compare (send_shards port "eulerian" Proof.empty shards)
  in
  check "sharded rejects = whole rejects" true
    (merged = List.sort compare whole);
  check_int "exactly the two chord endpoints reject" 2 (List.length merged);
  let stats = Server.stats t in
  check_int "shards counted" 3 stats.Server.partition_shards;
  check_int "rejects counted" 2 stats.Server.partition_reject;
  (* a second pass hits the compiled-shard cache: identical verdicts,
     no new compiles *)
  let misses = stats.Server.cache_misses in
  let again =
    List.sort_uniq compare (send_shards port "eulerian" Proof.empty shards)
  in
  check "cached pass agrees" true (again = merged);
  check_int "shard cache reused" misses (Server.stats t).Server.cache_misses;
  (* shard/scheme mismatches answer typed errors, not drops *)
  with_client port @@ fun cl ->
  let s = shards.(0) in
  (match
     call cl
       (Wire.Verify_partition
          {
            scheme = "eulerian";
            graph6 = Graph6.encode s.Partition.graph;
            ids = s.Partition.ids;
            owned = Bits.of_bools (Array.to_list s.Partition.owned);
            proof = Proof.empty;
            radius = 2;
            shard_index = 0;
            shard_count = 3;
          })
   with
  | Wire.Error_reply { code = Wire.Bad_request; _ } -> ()
  | _ -> Alcotest.fail "radius mismatch must be Bad_request");
  match
    call cl
      (Wire.Verify_partition
         {
           scheme = "no-such-scheme";
           graph6 = Graph6.encode s.Partition.graph;
           ids = s.Partition.ids;
           owned = Bits.of_bools (Array.to_list s.Partition.owned);
           proof = Proof.empty;
           radius = 1;
           shard_index = 0;
           shard_count = 3;
         })
  with
  | Wire.Error_reply { code = Wire.Unknown_scheme; _ } -> ()
  | _ -> Alcotest.fail "unknown scheme must be typed"

(* ------------------------------------------------------------------ *)
(* Oversized frames: a header whose length exceeds the 16 MiB cap gets
   a typed error naming the size, the payload is drained, and the
   connection keeps working — previously the link was just dropped. *)

let read_exact fd len =
  let buf = Bytes.create len in
  let rec go off =
    if off = len then Some (Bytes.to_string buf)
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> None
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let read_response fd =
  match read_exact fd Wire.header_bytes with
  | None -> Alcotest.fail "connection closed before a response"
  | Some raw -> (
      match Wire.decode_header raw with
      | Error m -> Alcotest.failf "bad response header: %s" m
      | Ok { Wire.version; tag; length } -> (
          match read_exact fd length with
          | None -> Alcotest.fail "truncated response"
          | Some payload -> (
              match Wire.decode_response_payload ~version ~tag payload with
              | Ok (_, _, r) -> r
              | Error m -> Alcotest.failf "bad response payload: %s" m)))

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then go (off + Unix.write_substring fd s off (len - off))
  in
  go 0

let oversized_frame_is_survivable () =
  with_server { Server.default_config with jobs = 1 } @@ fun _ port ->
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
  let len = Wire.max_payload + 1 in
  let header = Bytes.create Wire.header_bytes in
  Bytes.blit_string "LC" 0 header 0 2;
  Bytes.set header 2 (Char.chr Wire.protocol_version);
  Bytes.set header 3 '\x0B';
  Bytes.set header 4 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set header 5 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set header 6 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set header 7 (Char.chr (len land 0xff));
  write_all fd (Bytes.to_string header);
  (* the server answers from the header alone and then drains; stream
     the bogus payload in chunks while it does *)
  let chunk = String.make 65536 '\x00' in
  let rec flood sent =
    if sent < len then begin
      let k = min (String.length chunk) (len - sent) in
      write_all fd (String.sub chunk 0 k);
      flood (sent + k)
    end
  in
  flood 0;
  (match read_response fd with
  | Wire.Error_reply { code = Wire.Bad_request; message } ->
      check "error names the offending size" true
        (let needle = string_of_int len in
         let n = String.length message and m = String.length needle in
         let rec has i =
           i + m <= n && (String.sub message i m = needle || has (i + 1))
         in
         has 0)
  | Wire.Error_reply { code; _ } ->
      Alcotest.failf "oversized frame: expected Bad_request, got %s"
        (Wire.error_code_to_string code)
  | _ -> Alcotest.fail "oversized frame: expected Bad_request, got success");
  (* same connection, next frame: still alive and well *)
  write_all fd (Wire.encode_request ~version:2 Wire.Stats);
  match read_response fd with
  | Wire.Stats_reply _ -> ()
  | _ -> Alcotest.fail "connection did not survive the oversized frame"

(* ------------------------------------------------------------------ *)
(* Scatter-gather end to end: Fanout through a router over two
   backends — verdicts equal the whole-graph path, every backend sees
   at least one shard, and rejects land on the right daemons. *)

let fanout_through_router () =
  let mk () =
    Server.create { Server.default_config with port = 0; jobs = 2 }
  in
  let s1 = mk () in
  let th1 = Server.start s1 in
  let s2 = mk () in
  let th2 = Server.start s2 in
  let r =
    Router.create
      {
        Router.default_config with
        port = 0;
        backends =
          [ ("127.0.0.1", Server.port s1); ("127.0.0.1", Server.port s2) ];
        probe_interval_ms = 0;
      }
  in
  let rth = Router.start r in
  Fun.protect
    ~finally:(fun () ->
      Router.stop r;
      Thread.join rth;
      Server.stop s1;
      Thread.join th1;
      Server.stop s2;
      Thread.join th2)
  @@ fun () ->
  let g = chorded 40 in
  let run k =
    match
      Fanout.verify ~port:(Router.port r) ~scheme:"eulerian"
        ~csr:(Csr.of_graph g) ~proof:Proof.empty ~radius:1 ~k ()
    with
    | Ok v -> v
    | Error m -> Alcotest.failf "fanout: %s" m
  in
  List.iter
    (fun k ->
      let v = run k in
      check_int (Printf.sprintf "k=%d shards sent" k) k v.Fanout.shards;
      check_int (Printf.sprintf "k=%d all nodes verified" k) (Graph.n g)
        v.Fanout.owned;
      check (Printf.sprintf "k=%d rejects at the chord" k) true
        (v.Fanout.rejecting = [ 2; 20 ] && v.Fanout.rejected = 2);
      check (Printf.sprintf "k=%d not all-accept" k) false v.Fanout.all_accept)
    [ 2; 4 ];
  (* an accepting instance through the same cluster *)
  let ok =
    match
      Fanout.verify ~port:(Router.port r) ~scheme:"eulerian"
        ~csr:(Csr.of_graph (Builders.cycle 40)) ~proof:Proof.empty ~radius:1
        ~k:2 ()
    with
    | Ok v -> v
    | Error m -> Alcotest.failf "fanout accept: %s" m
  in
  check "accepting instance accepts" true
    (ok.Fanout.all_accept && ok.Fanout.rejecting = []);
  (* the router spread siblings: both backends executed shards *)
  let sh1 = (Server.stats s1).Server.partition_shards
  and sh2 = (Server.stats s2).Server.partition_shards in
  check_int "every shard landed on a backend" 8 (sh1 + sh2);
  check "both backends saw work" true (sh1 >= 1 && sh2 >= 1);
  (* direct multi-endpoint scatter, no router: same verdict *)
  match
    Fanout.verify ~port:(Server.port s1)
      ~endpoints:
        [ ("127.0.0.1", Server.port s1); ("127.0.0.1", Server.port s2) ]
      ~scheme:"eulerian" ~csr:(Csr.of_graph g) ~proof:Proof.empty ~radius:1
      ~k:2 ()
  with
  | Ok v ->
      check "direct scatter agrees" true
        (v.Fanout.rejecting = [ 2; 20 ] && not v.Fanout.all_accept)
  | Error m -> Alcotest.failf "direct fanout: %s" m

let suite =
  ( "partition",
    [
      Alcotest.test_case "partitioner invariants" `Quick partition_structure;
      Alcotest.test_case "closure check detects tampering" `Quick
        closure_tamper_detected;
      Alcotest.test_case "merged verdicts bit-identical (k ∈ {2,4}, r ∈ {1,2})"
        `Quick verdict_bit_identity;
      Alcotest.test_case "shard file roundtrip" `Quick shard_file_roundtrip;
      Alcotest.test_case "shard file rejects malformed input" `Quick
        shard_file_malformed;
      Alcotest.test_case "wire roundtrip (v2)" `Quick wire_partition_roundtrip;
      Alcotest.test_case "wire rejects v1 shard frames" `Quick
        wire_partition_v1_rejected;
      Alcotest.test_case "wire validates shard frames" `Quick
        wire_partition_validation;
      Alcotest.test_case "daemon executes shards" `Quick server_shard_execution;
      Alcotest.test_case "oversized frame: typed error, link survives" `Quick
        oversized_frame_is_survivable;
      Alcotest.test_case "fanout through a router (2 backends)" `Quick
        fanout_through_router;
    ] )
