(* Pool edge cases the equivalence suite does not exercise: more
   workers than work, exception propagation without losing in-flight
   tasks, the submit-after-shutdown contract, and — the property the
   metrics layer is designed around — snapshots that are identical no
   matter how many workers recorded them. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let more_workers_than_work () =
  let p = Pool.create 8 in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  check_int "size" 8 (Pool.size p);
  let hits = Array.make 3 0 in
  Pool.parallel_for p ~chunks:8 ~n:3 (fun _c lo hi ->
      for i = lo to hi - 1 do
        hits.(i) <- hits.(i) + 1
      done);
  check "3 items over 8 workers: each exactly once" true
    (Array.for_all (( = ) 1) hits);
  (* empty range: no task may run, wait must return *)
  let ran = Atomic.make false in
  Pool.parallel_for p ~chunks:8 ~n:0 (fun _ _ _ -> Atomic.set ran true);
  check "n=0 runs nothing" false (Atomic.get ran);
  (* single worker pool still drains a deep queue *)
  let q = Pool.create 1 in
  Fun.protect ~finally:(fun () -> Pool.shutdown q) @@ fun () ->
  let total = Atomic.make 0 in
  for _ = 1 to 500 do
    Pool.submit q (fun () -> ignore (Atomic.fetch_and_add total 1))
  done;
  Pool.wait q;
  check_int "500 submits all ran" 500 (Atomic.get total)

exception Boom

let exception_does_not_lose_tasks () =
  let p = Pool.create 4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  let done_count = Atomic.make 0 in
  let raised =
    try
      for i = 1 to 64 do
        Pool.submit p (fun () ->
            if i = 13 then raise Boom
            else ignore (Atomic.fetch_and_add done_count 1))
      done;
      Pool.wait p;
      false
    with Boom -> true
  in
  check "wait re-raises the task's exception" true raised;
  (* the other 63 tasks must still have completed: wait drains the
     queue before propagating *)
  check_int "remaining tasks completed" 63 (Atomic.get done_count);
  (* and the pool remains usable for the next batch *)
  let again = Atomic.make 0 in
  Pool.parallel_for p ~chunks:4 ~n:40 (fun _ lo hi ->
      ignore (Atomic.fetch_and_add again (hi - lo)));
  check_int "pool usable after exception" 40 (Atomic.get again)

let submit_after_shutdown () =
  let p = Pool.create 2 in
  Pool.parallel_for p ~chunks:2 ~n:10 (fun _ _ _ -> ());
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *);
  check "submit after shutdown raises" true
    (match Pool.submit p (fun () -> ()) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check "submit_opt after shutdown declines" false
    (Pool.submit_opt p (fun () -> ()));
  check "submit_res names the shutdown" true
    (Pool.submit_res p (fun () -> ()) = Error Pool.Shutting_down)

(* submit_res is submit_opt with the decline reason made typed: the
   server maps Queue_full to Overloaded and Shutting_down to
   Unavailable, so the two must stay distinguishable. *)
let submit_res_reasons () =
  let p = Pool.create 1 in
  let gate = Atomic.make false in
  let ran = Atomic.make 0 in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set gate true;
      Pool.shutdown p)
  @@ fun () ->
  check "first task accepted" true
    (Pool.submit_res ~max_pending:1 p (fun () ->
         while not (Atomic.get gate) do
           Domain.cpu_relax ()
         done;
         Atomic.incr ran)
    = Ok ());
  check "saturated bound is Queue_full" true
    (Pool.submit_res ~max_pending:1 p (fun () -> Atomic.incr ran)
    = Error Pool.Queue_full);
  Atomic.set gate true;
  Pool.wait p;
  check_int "declined task never ran" 1 (Atomic.get ran);
  Pool.shutdown p;
  (* after shutdown even a saturated-looking bound reports the
     shutdown, not the queue *)
  check "stopped pool is Shutting_down" true
    (Pool.submit_res ~max_pending:0 p (fun () -> Atomic.incr ran)
    = Error Pool.Shutting_down)

(* submit_opt with ~max_pending is the server's backpressure valve:
   while [max_pending] tasks are submitted-but-unfinished it must
   decline, and a declined task must never run. *)
let submit_opt_bound () =
  let p = Pool.create 1 in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  let gate = Atomic.make false in
  let ran = Atomic.make 0 in
  check "first task accepted" true
    (Pool.submit_opt ~max_pending:1 p (fun () ->
         while not (Atomic.get gate) do
           Domain.cpu_relax ()
         done;
         Atomic.incr ran));
  (* pending = 1 from the moment of submission (queued or running),
     so the bound is already saturated *)
  check "bound saturated: declined" false
    (Pool.submit_opt ~max_pending:1 p (fun () -> Atomic.incr ran));
  (* without a bound the same pool still accepts *)
  check "unbounded submit accepted" true
    (Pool.submit_opt p (fun () -> Atomic.incr ran));
  Atomic.set gate true;
  Pool.wait p;
  check_int "declined task never ran" 2 (Atomic.get ran);
  check "bound clears once pending drains" true
    (Pool.submit_opt ~max_pending:1 p (fun () -> Atomic.incr ran));
  Pool.wait p;
  check_int "accepted task ran" 3 (Atomic.get ran)

(* The same verification workload, metrics on, at jobs=1 and jobs=4:
   after Obs.Metrics.deterministic (which drops timing and scheduling
   metrics) the two snapshots must be structurally identical — the
   shard merge is commutative, so how the work was split cannot show. *)
let snapshot_of_workload jobs =
  Obs.Metrics.reset ();
  let inst = Instance.of_graph (Builders.cycle 24) in
  let scheme = Bipartite_scheme.scheme in
  (match scheme.Scheme.prover inst with
  | None -> Alcotest.fail "bipartite prover failed on C24"
  | Some proof ->
      let verdicts, _ =
        Simulator.run_verifier ~jobs inst proof ~radius:scheme.Scheme.radius
          scheme.Scheme.verifier
      in
      check "honest proof accepted" true
        (List.for_all snd verdicts));
  check "sound on C24" true
    (Checker.soundness_random ~jobs scheme inst ~samples:120 ~max_bits:3);
  Obs.Metrics.deterministic (Obs.Metrics.snapshot ())

let snapshots_jobs_invariant () =
  Fun.protect ~finally:(fun () ->
      Obs.disable ();
      Obs.Metrics.reset ())
  @@ fun () ->
  Obs.enable ();
  let s1 = snapshot_of_workload 1 in
  let s4 = snapshot_of_workload 4 in
  (* guard against the test passing vacuously on an empty snapshot *)
  check_int "all soundness samples counted" 120
    (Obs.Metrics.count s1 "checker.samples");
  check "verifier ran" true (Obs.Metrics.count s1 "simulator.verifier_calls" >= 24);
  check "jobs=1 and jobs=4 snapshots identical" true (s1 = s4)

let suite =
  ( "pool-edges",
    [
      Alcotest.test_case "more workers than work" `Quick more_workers_than_work;
      Alcotest.test_case "exception completes remaining tasks" `Quick
        exception_does_not_lose_tasks;
      Alcotest.test_case "submit after shutdown" `Quick submit_after_shutdown;
      Alcotest.test_case "submit_opt backpressure bound" `Quick
        submit_opt_bound;
      Alcotest.test_case "submit_res decline reasons" `Quick
        submit_res_reasons;
      Alcotest.test_case "metrics snapshots jobs-invariant" `Quick
        snapshots_jobs_invariant;
    ] )
