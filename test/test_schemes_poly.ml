(* The top of the hierarchy: universal O(n²) proofs, the Θ(n) tree
   scheme, symmetric graphs, non-3-colourability — Table 1 rows
   T1a-15..T1a-18. *)

open Test_util

let check = Alcotest.(check bool)
let of_g g = Instance.of_graph g

(* --- universal scheme on arbitrary computable properties --- *)

let universal_generic () =
  let has_triangle g =
    Graph.fold_edges
      (fun u v acc ->
        acc
        || List.exists (fun w -> Graph.mem_edge g u w && Graph.mem_edge g v w)
             (Graph.nodes g))
      g false
  in
  let scheme = Universal.of_predicate ~name:"has-triangle-universal" has_triangle in
  assert_complete scheme
    [ of_g (Builders.complete 4); of_g (Builders.wheel 6);
      of_g (Random_graphs.connected_gnp (st 1) 10 0.5) ];
  assert_refuses scheme [ of_g (Builders.cycle 8); of_g (Builders.grid 3 3) ];
  assert_sound_random ~samples:100 ~max_bits:12 scheme [ of_g (Builders.cycle 6) ];
  assert_tamper_sensitive scheme (of_g (Builders.complete 4))

let universal_rejects_wrong_graph () =
  (* All nodes agreeing on a *different* graph must fail the local
     neighbourhood check. *)
  let g = Builders.cycle 6 in
  let fake = Builders.cycle 6 |> fun c -> Graph.add_edge c 0 3 in
  let scheme = Universal.of_predicate ~name:"always-true" (fun _ -> true) in
  let code = Graph_code.encode fake in
  let proof = Graph.fold_nodes (fun v p -> Proof.set p v code) g Proof.empty in
  check "wrong encoding rejected" false (Scheme.accepts scheme (of_g g) proof);
  (* encoding a disconnected supergraph is also rejected *)
  let super = Graph.union_disjoint g (Canonical.shifted (Builders.cycle 3) 20) in
  let code = Graph_code.encode super in
  let proof = Graph.fold_nodes (fun v p -> Proof.set p v code) g Proof.empty in
  check "supergraph encoding rejected" false (Scheme.accepts scheme (of_g g) proof)

(* --- T1a-16 symmetric graphs --- *)

let symmetric () =
  assert_complete Universal.symmetric
    [
      of_g (Builders.cycle 7);
      of_g (Builders.complete_bipartite 2 3);
      of_g (Builders.grid 2 3);
      of_g (Builders.star 4);
    ];
  (* asymmetric graphs refused *)
  let asym = List.hd (Enumerate.asymmetric_connected 6) in
  assert_refuses Universal.symmetric [ of_g asym ];
  assert_sound_random ~samples:60 ~max_bits:10 Universal.symmetric [ of_g asym ]

(* --- T1a-17 non-3-colourability --- *)

let non_3_colourable () =
  assert_complete Universal.non_3_colourable
    [ of_g (Builders.complete 4); of_g (Builders.wheel 5); of_g (Builders.complete 5) ];
  assert_refuses Universal.non_3_colourable
    [ of_g Builders.petersen; of_g (Builders.cycle 7); of_g (Builders.wheel 6) ];
  assert_sound_random ~samples:60 ~max_bits:10 Universal.non_3_colourable
    [ of_g (Builders.cycle 5) ]

(* --- T1a-18 quadratic growth of the universal proof --- *)

let quadratic_growth () =
  let sizes =
    List.map
      (fun n ->
        (n, proof_size Universal.symmetric (of_g (Builders.cycle n))))
      [ 8; 16; 32; 64 ]
  in
  (* At laptop-scale n the fits for n² and n²/log n are within noise of
     each other (the paper's own gap for non-3-colourability!); accept
     either, reject anything slower. *)
  check "universal proofs grow quadratically" true
    (match Complexity.classify sizes with
    | Complexity.Quadratic | Complexity.Quadratic_over_log -> true
    | _ -> false)

(* --- T1a-15 fixpoint-free symmetry on trees (Θ(n)) --- *)

let tree_universal () =
  (* yes-instances: trees made of two copies of an arbitrary tree,
     joined at their roots — the swap is fixpoint-free. *)
  let doubled k seed =
    let t = Random_graphs.tree (st seed) k in
    let t' = Canonical.shifted t k in
    Graph.add_edge (Graph.union_disjoint t t') (List.hd (Graph.nodes t))
      (List.hd (Graph.nodes t'))
  in
  assert_complete Tree_universal.fixpoint_free_symmetry
    [
      of_g (Builders.path 2);
      of_g (Builders.path 6);
      of_g (doubled 5 21);
      of_g (doubled 7 22);
    ];
  (* a star fixes its centre: refused *)
  assert_refuses Tree_universal.fixpoint_free_symmetry
    [ of_g (Builders.star 4); of_g (Builders.path 5) ];
  assert_sound_random ~samples:100 ~max_bits:10 Tree_universal.fixpoint_free_symmetry
    [ of_g (Builders.star 3); of_g (Builders.path 7) ];
  (* linear growth *)
  let sizes =
    List.map
      (fun k -> (2 * k, proof_size Tree_universal.fixpoint_free_symmetry (of_g (doubled k (100 + k)))))
      [ 8; 16; 32; 64 ]
  in
  check "tree proofs grow linearly" true
    (Complexity.classify sizes = Complexity.Linear)

let tree_universal_rejects_impostor () =
  (* all nodes claim the structure of a *different* tree: the local
     bijection check must fail somewhere. *)
  let g = Builders.path 4 in
  let star = Builders.star 3 in
  let structure = Tree_code.encode_structure star ~root:0 in
  let proof =
    List.fold_left
      (fun (p, i) v -> (Proof.set p v (Tree_universal.encode_node structure i), i + 1))
      (Proof.empty, 0) (Graph.nodes g)
    |> fst
  in
  let scheme = Tree_universal.scheme ~name:"any-tree" (fun _ -> true) in
  check "impostor structure rejected" false (Scheme.accepts scheme (of_g g) proof)

let suite =
  ( "schemes-poly",
    [
      Alcotest.test_case "universal generic" `Quick universal_generic;
      Alcotest.test_case "universal rejects wrong graph" `Quick universal_rejects_wrong_graph;
      Alcotest.test_case "T1a-16 symmetric graphs" `Quick symmetric;
      Alcotest.test_case "T1a-17 non-3-colourability" `Quick non_3_colourable;
      Alcotest.test_case "T1a-18 quadratic growth" `Slow quadratic_growth;
      Alcotest.test_case "T1a-15 fixpoint-free trees" `Quick tree_universal;
      Alcotest.test_case "tree impostor rejected" `Quick tree_universal_rejects_impostor;
    ] )
