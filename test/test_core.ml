let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let st seed = Random.State.make [| seed |]

let proof_basics () =
  let p = Proof.of_list [ (1, Bits.of_string "101"); (2, Bits.of_string "1") ] in
  check_int "size" 3 (Proof.size p);
  check "get" true (Bits.equal (Proof.get p 1) (Bits.of_string "101"));
  check "missing is empty" true (Bits.equal (Proof.get p 99) Bits.empty);
  check_int "truncate" 2 (Proof.size (Proof.truncate 2 p));
  let q = Proof.restrict p [ 2 ] in
  check "restrict drops" true (Bits.equal (Proof.get q 1) Bits.empty);
  check "restrict keeps" true (Bits.equal (Proof.get q 2) (Bits.of_string "1"))

let proof_union () =
  let p1 = Proof.of_list [ (1, Bits.of_string "1") ] in
  let p2 = Proof.of_list [ (2, Bits.of_string "0") ] in
  let u = Proof.union_disjoint p1 p2 in
  check_int "union size" 1 (Proof.size u);
  Alcotest.check_raises "conflict"
    (Invalid_argument "Proof.union_disjoint: node 1 assigned twice") (fun () ->
      ignore (Proof.union_disjoint p1 (Proof.of_list [ (1, Bits.of_string "0") ])))

let view_extraction () =
  let g = Builders.cycle 8 in
  let inst = Instance.of_graph g in
  let proof =
    Graph.fold_nodes (fun v p -> Proof.set p v (Bits.encode_int v)) g Proof.empty
  in
  let view = View.make inst proof ~centre:0 ~radius:2 in
  check_int "ball nodes" 5 (Graph.n (View.graph view));
  check_int "centre" 0 (View.centre view);
  check_int "dist to centre" 2 (View.dist_to_centre view 6);
  check "boundary" true (View.on_boundary view 2);
  check "not boundary" false (View.on_boundary view 1);
  check "proof visible" true (Bits.equal (View.proof_of view 7) (Bits.encode_int 7));
  (* nodes outside the ball are invisible *)
  check "outside invisible" false (Graph.mem_node (View.graph view) 4)

let view_sees_ball_edges () =
  (* An edge between two boundary nodes of the ball must be visible
     (G[v,r] is the induced subgraph). *)
  let g = Graph.of_edges [ (0, 1); (0, 2); (1, 2) ] in
  let view = View.make (Instance.of_graph g) Proof.empty ~centre:0 ~radius:1 in
  check "edge between boundary nodes" true (Graph.mem_edge (View.graph view) 1 2)

let simulator_agreement () =
  List.iter
    (fun (g, radius) ->
      let inst = Instance.of_graph g in
      let inst =
        (* decorate with labels to exercise label transport *)
        Instance.with_node_labels inst
          (List.map (fun v -> (v, Bits.encode_int (v mod 3))) (Graph.nodes g))
      in
      let proof =
        Graph.fold_nodes (fun v p -> Proof.set p v (Bits.encode_int (v * 7))) g
          Proof.empty
      in
      check
        (Printf.sprintf "simulator = direct (n=%d, r=%d)" (Graph.n g) radius)
        true
        (Simulator.agrees_with_direct inst proof ~radius))
    [
      (Builders.cycle 9, 2);
      (Builders.grid 3 4, 1);
      (Builders.grid 3 4, 3);
      (Random_graphs.connected_gnp (st 4) 15 0.2, 2);
      (Builders.star 5, 1);
      (Random_graphs.tree (st 8) 12, 4);
    ]

let simulator_transcript () =
  let g = Builders.cycle 6 in
  let _, tr = Simulator.gather (Instance.of_graph g) Proof.empty ~radius:2 in
  check_int "rounds" 2 tr.Simulator.rounds;
  (* 6 nodes, degree 2, 2 rounds: 24 messages *)
  check_int "messages" 24 tr.Simulator.messages_sent

let qcheck_simulator =
  QCheck.Test.make ~name:"simulator equals direct extraction" ~count:25
    QCheck.(triple (int_range 2 10) (int_range 1 3) (int_bound 1_000_000))
    (fun (n, radius, seed) ->
      let rnd = Random.State.make [| seed |] in
      let g = Random_graphs.connected_gnp rnd n 0.3 in
      let proof =
        Graph.fold_nodes
          (fun v p -> Proof.set p v (Bits.random rnd (Random.State.int rnd 5)))
          g Proof.empty
      in
      Simulator.agrees_with_direct (Instance.of_graph g) proof ~radius)

let scheme_machinery () =
  let inst = Instance.of_graph (Builders.cycle 6) in
  match Scheme.prove_and_check Bipartite_scheme.scheme inst with
  | `Accepted proof ->
      check_int "1 bit" 1 (Proof.size proof);
      (* decide with an adversarial proof: flipping one bit must be
         detected by one of the endpoints *)
      let bad = Proof.set proof 0 (Bits.one_bit (not (Bits.get (Proof.get proof 0) 0))) in
      (match Scheme.decide Bipartite_scheme.scheme inst bad with
      | Scheme.Accept -> Alcotest.fail "tampering undetected"
      | Scheme.Reject vs -> check "neighbours reject" true (List.length vs >= 1))
  | _ -> Alcotest.fail "bipartite prover failed on C6"

let checker_completeness () =
  let instances =
    List.map (fun n -> Instance.of_graph (Builders.cycle n)) [ 4; 6; 8; 10 ]
  in
  let report = Checker.completeness Bipartite_scheme.scheme instances in
  check "all accepted" true report.Checker.all_accepted;
  check "bound" true report.Checker.bound_respected;
  check_int "max bits" 1 report.Checker.max_proof_bits;
  check_int "instances" 4 report.Checker.instances_checked

let checker_soundness_exhaustive () =
  (* C5 is not bipartite: no proof of <= 2 bits/node convinces all. *)
  let inst = Instance.of_graph (Builders.cycle 5) in
  check "prover refuses" true (Checker.prover_refuses Bipartite_scheme.scheme inst);
  check "exhaustively sound at 1 bit" true
    (Checker.soundness_exhaustive Bipartite_scheme.scheme inst ~max_bits:1);
  check "exhaustively sound at 2 bits" true
    (Checker.soundness_exhaustive Bipartite_scheme.scheme inst ~max_bits:2)

let checker_soundness_random () =
  let inst = Instance.of_graph (Builders.cycle 7) in
  check "random proofs rejected" true
    (Checker.soundness_random Bipartite_scheme.scheme inst ~samples:300 ~max_bits:3)

let checker_catches_bad_scheme () =
  (* A verifier that accepts everything is caught by exhaustive
     soundness on a no-instance. *)
  let bogus =
    Scheme.make ~name:"bogus" ~radius:1
      ~size_bound:(fun _ -> 0)
      ~prover:(fun _ -> Some Proof.empty)
      ~verifier:(fun _ -> true)
  in
  let inst = Instance.of_graph (Builders.cycle 5) in
  check "bogus scheme exposed" false
    (Checker.soundness_exhaustive bogus inst ~max_bits:0)

let adversary_forges_against_bogus () =
  (* The all-ones verifier is trivially fooled. *)
  let accept_iff_one =
    Scheme.make ~name:"needs-one" ~radius:1
      ~size_bound:(fun _ -> 1)
      ~prover:(fun _ -> None)
      ~verifier:(fun view ->
        let b = View.proof_of view (View.centre view) in
        Bits.length b >= 1 && Bits.get b 0)
  in
  let inst = Instance.of_graph (Builders.cycle 6) in
  match Adversary.forge accept_iff_one inst ~max_bits:1 with
  | Adversary.Fooled proof ->
      check "forged proof accepted" true (Scheme.accepts accept_iff_one inst proof)
  | Adversary.Resisted _ -> Alcotest.fail "hill climbing should fool the trivial scheme"

let adversary_resists_sound_scheme () =
  let inst = Instance.of_graph (Builders.cycle 7) in
  match Adversary.forge ~restarts:6 ~steps:150 Bipartite_scheme.scheme inst ~max_bits:2 with
  | Adversary.Fooled _ -> Alcotest.fail "soundness violated!"
  | Adversary.Resisted { attempts; _ } -> check "tried" true (attempts > 0)

let adversary_tamper () =
  let inst = Instance.of_graph (Builders.grid 3 3) in
  match Scheme.prove_and_check Bipartite_scheme.scheme inst with
  | `Accepted proof ->
      let results = Adversary.tamper Bipartite_scheme.scheme inst proof ~trials:20 in
      check_int "trials" 20 (List.length results);
      (* On a connected bipartite graph with >= 2 nodes every single
         bit flip breaks the 2-colouring locally. *)
      List.iter
        (fun (_, rejecting) -> check "detected" true (rejecting <> []))
        results
  | _ -> Alcotest.fail "prover failed"

let complexity_classification () =
  let series f = List.map (fun n -> (n, f n)) [ 16; 32; 64; 128; 256; 512 ] in
  let open Complexity in
  check "zero" true (classify (series (fun _ -> 0)) = Zero);
  check "constant" true (classify (series (fun _ -> 3)) = Constant);
  check "log" true (classify (series (fun n -> 2 * Bits.int_width n)) = Logarithmic);
  check "linear" true (classify (series (fun n -> (3 * n) + 2)) = Linear);
  check "quadratic" true (classify (series (fun n -> n * n / 2)) = Quadratic);
  check "labels" true (label Logarithmic = "Θ(log n)")

let suite =
  ( "core",
    [
      Alcotest.test_case "proof basics" `Quick proof_basics;
      Alcotest.test_case "proof union" `Quick proof_union;
      Alcotest.test_case "view extraction" `Quick view_extraction;
      Alcotest.test_case "view sees ball edges" `Quick view_sees_ball_edges;
      Alcotest.test_case "simulator agreement" `Quick simulator_agreement;
      Alcotest.test_case "simulator transcript" `Quick simulator_transcript;
      QCheck_alcotest.to_alcotest qcheck_simulator;
      Alcotest.test_case "scheme machinery" `Quick scheme_machinery;
      Alcotest.test_case "checker completeness" `Quick checker_completeness;
      Alcotest.test_case "checker exhaustive soundness" `Slow checker_soundness_exhaustive;
      Alcotest.test_case "checker random soundness" `Quick checker_soundness_random;
      Alcotest.test_case "checker catches bogus scheme" `Quick checker_catches_bad_scheme;
      Alcotest.test_case "adversary forges vs weak scheme" `Quick adversary_forges_against_bogus;
      Alcotest.test_case "adversary resists sound scheme" `Quick adversary_resists_sound_scheme;
      Alcotest.test_case "adversary tamper detection" `Quick adversary_tamper;
      Alcotest.test_case "complexity classification" `Quick complexity_classification;
    ] )
