(* The asynchronous gather converges to exactly the radius-r views, in
   any delivery order. *)

let check = Alcotest.(check bool)

let agreement_cases () =
  List.iter
    (fun (g, radius, seed) ->
      let inst =
        Instance.with_node_labels (Instance.of_graph g)
          (List.map (fun v -> (v, Bits.encode_int (v mod 3))) (Graph.nodes g))
      in
      let proof =
        Graph.fold_nodes
          (fun v p -> Proof.set p v (Bits.encode_int (v * 5)))
          g Proof.empty
      in
      check
        (Printf.sprintf "async = direct (n=%d, r=%d, seed=%d)" (Graph.n g) radius seed)
        true
        (Async_simulator.agrees_with_synchronous ~seed inst proof ~radius))
    [
      (Builders.cycle 9, 2, 1);
      (Builders.cycle 9, 2, 2);
      (Builders.grid 3 4, 1, 3);
      (Builders.grid 3 4, 3, 4);
      (Builders.star 5, 1, 5);
      (Random_graphs.connected_gnp (Random.State.make [| 9 |]) 12 0.25, 2, 6);
    ]

let qcheck_async =
  QCheck.Test.make ~name:"async gather is delivery-order independent" ~count:20
    QCheck.(triple (int_range 3 9) (int_range 1 3) (int_bound 1_000_000))
    (fun (n, radius, seed) ->
      let g = Random_graphs.connected_gnp (Random.State.make [| seed |]) n 0.35 in
      let proof =
        Graph.fold_nodes (fun v p -> Proof.set p v (Bits.encode_int v)) g Proof.empty
      in
      let inst = Instance.of_graph g in
      Async_simulator.agrees_with_synchronous ~seed inst proof ~radius)

let costs_more_messages () =
  (* asynchrony without rounds costs extra deliveries vs the
     synchronous schedule on the same task *)
  let g = Builders.cycle 12 in
  let inst = Instance.of_graph g in
  let _, sync = Simulator.gather inst Proof.empty ~radius:2 in
  let _, async = Async_simulator.gather inst Proof.empty ~radius:2 in
  check "async quiescent" true async.Async_simulator.quiescent;
  check "async >= sync messages" true
    (async.Async_simulator.deliveries >= sync.Simulator.messages_sent)

let suite =
  ( "async-simulator",
    [
      Alcotest.test_case "async agrees with direct" `Quick agreement_cases;
      QCheck_alcotest.to_alcotest qcheck_async;
      Alcotest.test_case "async message cost" `Quick costs_more_messages;
    ] )
