let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let st () = Random.State.make [| 42 |]

(* A small generator of random graphs for qcheck properties. *)
let arb_graph =
  QCheck.make
    ~print:(fun g -> Format.asprintf "%a" Graph.pp g)
    QCheck.Gen.(
      let* n = int_range 1 12 in
      let* p = float_range 0.1 0.8 in
      let* seed = int_bound 1_000_000 in
      return (Random_graphs.gnp (Random.State.make [| seed |]) n p))

let construction () =
  let g = Graph.create ~nodes:[ 1; 2; 3 ] ~edges:[ (1, 2); (2, 3) ] in
  check_int "n" 3 (Graph.n g);
  check_int "m" 2 (Graph.m g);
  check "edge" true (Graph.mem_edge g 2 1);
  check "no edge" false (Graph.mem_edge g 1 3);
  Alcotest.(check (list int)) "neighbours" [ 1; 3 ] (Graph.neighbours g 2);
  check_int "degree" 2 (Graph.degree g 2)

let invalid_construction () =
  Alcotest.check_raises "self-loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> ignore (Graph.of_edges [ (1, 1) ]));
  Alcotest.check_raises "unknown endpoint"
    (Invalid_argument "Graph.create: edge (1, 9) has unknown endpoint") (fun () ->
      ignore (Graph.create ~nodes:[ 1; 2 ] ~edges:[ (1, 9) ]))

let removal () =
  let g = Builders.cycle 5 in
  let g' = Graph.remove_node g 0 in
  check_int "n after removal" 4 (Graph.n g');
  check_int "m after removal" 3 (Graph.m g');
  let g'' = Graph.remove_edge g 0 1 in
  check_int "m after edge removal" 4 (Graph.m g'')

let relabel () =
  let g = Builders.path 4 in
  let g' = Graph.relabel g (fun v -> (v * 10) + 5 ) in
  Alcotest.(check (list int)) "nodes" [ 5; 15; 25; 35 ] (Graph.nodes g');
  check "edge" true (Graph.mem_edge g' 5 15)

let builders () =
  check_int "cycle m" 7 (Graph.m (Builders.cycle 7));
  check_int "complete m" 10 (Graph.m (Builders.complete 5));
  check_int "grid n" 12 (Graph.n (Builders.grid 3 4));
  check_int "grid m" 17 (Graph.m (Builders.grid 3 4));
  check_int "hypercube m" 12 (Graph.m (Builders.hypercube 3));
  check_int "petersen degree" 3 (Graph.max_degree Builders.petersen);
  check_int "star m" 6 (Graph.m (Builders.star 6));
  check_int "wheel m" 10 (Graph.m (Builders.wheel 5));
  check_int "binary tree n" 15 (Graph.n (Builders.binary_tree 3));
  check_int "caterpillar n" 9 (Graph.n (Builders.caterpillar 3 2))

let traversal () =
  let g = Builders.grid 3 3 in
  Alcotest.(check (option int)) "corner distance" (Some 4) (Traversal.distance g 0 8);
  check_int "ball size r1" 3 (List.length (Traversal.ball g 0 1));
  check_int "ball size r2" 6 (List.length (Traversal.ball g 0 2));
  check "connected" true (Traversal.is_connected g);
  check_int "diameter" 4 (Traversal.diameter g);
  let two = Graph.union_disjoint (Builders.cycle 3) (Canonical.shifted (Builders.cycle 4) 10) in
  check "disconnected" false (Traversal.is_connected two);
  check_int "components" 2 (List.length (Traversal.components two))

let shortest_paths () =
  let g = Builders.cycle 8 in
  match Traversal.shortest_path g 0 4 with
  | None -> Alcotest.fail "no path"
  | Some p ->
      check_int "path length" 5 (List.length p);
      check_int "starts" 0 (List.hd p);
      check_int "ends" 4 (List.nth p 4)

let spanning_tree () =
  let g = Random_graphs.connected_gnp (st ()) 20 0.15 in
  let pairs = Traversal.spanning_tree g (List.hd (Graph.nodes g)) in
  check_int "tree size" 19 (List.length pairs);
  List.iter (fun (v, p) -> check "tree edge real" true (Graph.mem_edge g v p)) pairs

let dfs_intervals () =
  let g = Builders.binary_tree 2 in
  let ivs = Traversal.dfs_intervals g 0 in
  check_int "count" 7 (List.length ivs);
  let root = List.assoc 0 ivs in
  check_int "root disc" 0 (fst root);
  check_int "root fin" 13 (snd root);
  (* Nesting: every child interval is inside its parent's. *)
  List.iter
    (fun (v, (x, y)) ->
      check (Printf.sprintf "interval %d" v) true (x < y))
    ivs

let line_graph_construction () =
  let lg, mapping = Graph.line_graph (Builders.star 3) in
  check_int "L(K1,3) = K3 nodes" 3 (Graph.n lg);
  check_int "L(K1,3) = K3 edges" 3 (Graph.m lg);
  check_int "mapping size" 3 (List.length mapping)

let complement () =
  let g = Builders.path 4 in
  let c = Graph.complement g in
  check_int "complement m" 3 (Graph.m c);
  check "non-edge becomes edge" true (Graph.mem_edge c 0 3)

let qcheck_handshake =
  QCheck.Test.make ~name:"handshake: sum of degrees = 2m" ~count:100 arb_graph
    (fun g ->
      Graph.fold_nodes (fun v acc -> acc + Graph.degree g v) g 0 = 2 * Graph.m g)

let qcheck_induced =
  QCheck.Test.make ~name:"induced subgraph edges are original edges" ~count:100
    arb_graph (fun g ->
      let nodes = List.filteri (fun i _ -> i mod 2 = 0) (Graph.nodes g) in
      let h = Graph.induced g nodes in
      Graph.fold_edges (fun u v acc -> acc && Graph.mem_edge g u v) h true
      && Graph.is_subgraph h ~of_:g)

let qcheck_relabel_involution =
  QCheck.Test.make ~name:"relabel by +k then -k is identity" ~count:100 arb_graph
    (fun g ->
      let g' = Graph.relabel (Graph.relabel g (fun v -> v + 7)) (fun v -> v - 7) in
      Graph.equal g g')

let qcheck_components_partition =
  QCheck.Test.make ~name:"components partition the nodes" ~count:100 arb_graph
    (fun g ->
      let comps = Traversal.components g in
      List.sort Int.compare (List.concat comps) = Graph.nodes g)

let qcheck_ball_monotone =
  QCheck.Test.make ~name:"balls grow with radius" ~count:100 arb_graph (fun g ->
      match Graph.nodes g with
      | [] -> true
      | v :: _ ->
          let b1 = Traversal.ball g v 1 and b2 = Traversal.ball g v 2 in
          List.for_all (fun u -> List.mem u b2) b1)

let graph6_known () =
  (* K2 = "A_", K3 = "Bw", empty triangle = "B?" *)
  Alcotest.(check string) "K2" "A_" (Graph6.encode (Builders.complete 2));
  Alcotest.(check string) "K3" "Bw" (Graph6.encode (Builders.complete 3));
  Alcotest.(check string)
    "empty 3" "B?"
    (Graph6.encode (List.fold_left Graph.add_node Graph.empty [ 0; 1; 2 ]));
  check "decode K3" true (Graph.equal (Graph6.decode "Bw") (Builders.complete 3))

let qcheck_graph6 =
  QCheck.Test.make ~name:"graph6 roundtrips" ~count:100
    QCheck.(pair (int_range 1 20) (int_bound 1_000_000))
    (fun (n, seed) ->
      let g = Random_graphs.gnp (Random.State.make [| seed |]) n 0.4 in
      Graph.equal g (Graph6.decode (Graph6.encode g)))

let dot_output () =
  let s = Dot.of_graph ~name:"test" (Builders.path 3) in
  check "has header" true (String.length s > 0 && String.sub s 0 5 = "graph");
  check "has edge" true
    (let rec contains i =
       i + 8 <= String.length s
       && (String.sub s i 6 = "0 -- 1" || contains (i + 1))
     in
     contains 0);
  let d = Dot.of_digraph (Digraph.of_arcs [ (0, 1) ]) in
  check "digraph arrow" true
    (let rec contains i =
       i + 6 <= String.length d
       && (String.sub d i 6 = "0 -> 1" || contains (i + 1))
     in
     contains 0)

let suite =
  ( "graph",
    [
      Alcotest.test_case "graph6 known values" `Quick graph6_known;
      QCheck_alcotest.to_alcotest qcheck_graph6;
      Alcotest.test_case "dot output" `Quick dot_output;
      Alcotest.test_case "construction" `Quick construction;
      Alcotest.test_case "invalid construction" `Quick invalid_construction;
      Alcotest.test_case "removal" `Quick removal;
      Alcotest.test_case "relabel" `Quick relabel;
      Alcotest.test_case "builders" `Quick builders;
      Alcotest.test_case "traversal" `Quick traversal;
      Alcotest.test_case "shortest paths" `Quick shortest_paths;
      Alcotest.test_case "spanning tree" `Quick spanning_tree;
      Alcotest.test_case "dfs intervals" `Quick dfs_intervals;
      Alcotest.test_case "line graph construction" `Quick line_graph_construction;
      Alcotest.test_case "complement" `Quick complement;
      QCheck_alcotest.to_alcotest qcheck_handshake;
      QCheck_alcotest.to_alcotest qcheck_induced;
      QCheck_alcotest.to_alcotest qcheck_relabel_involution;
      QCheck_alcotest.to_alcotest qcheck_components_partition;
      QCheck_alcotest.to_alcotest qcheck_ball_monotone;
    ] )
