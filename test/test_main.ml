let () =
  Alcotest.run "lcp"
    [
      Test_bits.suite;
      Test_graph.suite;
      Test_csr.suite;
      Test_obs.suite;
      Test_pool.suite;
      Test_algorithms.suite;
      Test_symmetry.suite;
      Test_core.suite;
      Test_schemes_basic.suite;
      Test_schemes_log.suite;
      Test_schemes_poly.suite;
      Test_logic_models.suite;
      Test_lowerbounds.suite;
      Test_kkp.suite;
      Test_cli.suite;
      Test_ablation.suite;
      Test_catalog.suite;
      Test_no_scheme.suite;
      Test_lookup.suite;
      Test_async.suite;
      Test_combinators.suite;
      Test_properties.suite;
      Test_edge_cases.suite;
    ]
