(* The instance file format behind bin/lcp. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let write_tmp content =
  let path = Filename.temp_file "lcp_test" ".lcp" in
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  path

let parse content = Graph_file.load_instance (write_tmp content)

let basic_edges () =
  let inst = parse "0 1\n1 2\nedge 2 3\nnode 9\n# comment\n" in
  let g = Instance.graph inst in
  check_int "nodes" 5 (Graph.n g);
  check_int "edges" 3 (Graph.m g);
  check "isolated node" true (Graph.mem_node g 9)

let marks () =
  let inst = parse "0 1\n1 2\ns 0\nt 2\n" in
  (match St.find inst with
  | Some (s, t) ->
      check_int "s" 0 s;
      check_int "t" 2 t
  | None -> Alcotest.fail "marks not found");
  let inst = parse "0 1\nleader 1\n" in
  check "leader" true (Instance.marked_exactly_one inst = Some 1)

let flags () =
  let inst = parse "0 1\n1 2\n2 3\nflag 1 2\n" in
  check "flagged" true (Instance.flagged_edges inst = [ (1, 2) ]);
  (* unflagged edges carry an explicit 0 *)
  check_int "label present" 1 (Bits.length (Instance.edge_label inst 0 1))

let weights () =
  let inst = parse "0 1\n1 2\nweight 0 1 5\nweight 1 2 3\nflag 0 1\n" in
  check_int "weight 0-1" 5 (Matching_schemes.instance_weights inst (0, 1));
  check_int "weight 1-2" 3 (Matching_schemes.instance_weights inst (1, 2));
  check "flagged" true (Instance.flagged_edges inst = [ (0, 1) ])

let arcs () =
  let inst = parse "arc 0 1\narc 1 2\narc 2 0\ns 0\nt 2\n" in
  check "arc 0->1" true (Instance.arc_exists inst 0 1);
  check "no arc 1->0" false (Instance.arc_exists inst 1 0)

let globals () =
  let inst = parse "0 1\n1 2\nk 3\n" in
  check_int "k" 3 (Bits.decode_int (Instance.globals inst))

let labels () =
  let inst = parse "0 1\nlabel 0 1011\n" in
  check "label" true (Bits.equal (Instance.node_label inst 0) (Bits.of_string "1011"))

let proof_roundtrip () =
  let proof =
    Proof.of_list [ (0, Bits.of_string "101"); (1, Bits.empty); (2, Bits.of_string "0") ]
  in
  let path = Filename.temp_file "lcp_test" ".proof" in
  Graph_file.save_proof path proof;
  let proof' = Graph_file.load_proof path in
  check "roundtrip" true (Proof.equal proof proof')

let bad_input () =
  Alcotest.check_raises "unknown directive"
    (Failure "line 1: unknown directive \"frobnicate\"") (fun () ->
      ignore (parse "frobnicate 3\n"));
  Alcotest.check_raises "bad int"
    (Failure "line 1: expected an integer, got \"x\"") (fun () ->
      ignore (parse "edge x 1\n"))

(* End-to-end: a file-driven prove/verify cycle. *)
let end_to_end () =
  let inst = parse "0 1\n1 2\n2 3\n3 0\n" in
  match Scheme.prove_and_check Bipartite_scheme.scheme inst with
  | `Accepted proof ->
      let path = Filename.temp_file "lcp_test" ".proof" in
      Graph_file.save_proof path proof;
      check "verify from file" true
        (Scheme.accepts Bipartite_scheme.scheme inst (Graph_file.load_proof path))
  | _ -> Alcotest.fail "prove failed"

let suite =
  ( "cli-format",
    [
      Alcotest.test_case "edges and nodes" `Quick basic_edges;
      Alcotest.test_case "s/t/leader marks" `Quick marks;
      Alcotest.test_case "edge flags" `Quick flags;
      Alcotest.test_case "weights" `Quick weights;
      Alcotest.test_case "arcs" `Quick arcs;
      Alcotest.test_case "globals" `Quick globals;
      Alcotest.test_case "raw labels" `Quick labels;
      Alcotest.test_case "proof file roundtrip" `Quick proof_roundtrip;
      Alcotest.test_case "bad input" `Quick bad_input;
      Alcotest.test_case "file-driven prove/verify" `Quick end_to_end;
    ] )
