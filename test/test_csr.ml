(* Equivalence suite for the CSR backend and the multicore verification
   engine: on sampled graph families the fast path must be
   bit-identical to the seed persistent-map path — same balls, same
   views, same verdicts, same transcripts — including with jobs > 1. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let st seed = Random.State.make [| seed |]

(* Graph families named by the issue: Erdős–Rényi, trees, cycles —
   with n up to ~200, plus non-contiguous identifiers, which the CSR
   id ↔ dense-index table must handle. *)
let family =
  [
    ("C9", Builders.cycle 9);
    ("C200", Builders.cycle 200);
    ("path1", Builders.path 1);
    ("star7", Builders.star 7);
    ("grid4x5", Builders.grid 4 5);
    ("tree60", Random_graphs.tree (st 1) 60);
    ("tree200", Random_graphs.tree (st 2) 200);
    ("gnp40", Random_graphs.gnp (st 3) 40 0.1);
    ("gnp200", Random_graphs.connected_gnp (st 4) 200 0.02);
    ("sparse-ids", Random_graphs.permuted_ids (st 5) ~factor:7 (Random_graphs.gnp (st 6) 50 0.08));
    ("two-cycles", Graph.union_disjoint (Builders.cycle 5) (Canonical.shifted (Builders.cycle 6) 10));
  ]

let csr_structure () =
  List.iter
    (fun (name, g) ->
      let c = Csr.of_graph g in
      check_int (name ^ " n") (Graph.n g) (Csr.n c);
      check_int (name ^ " m") (Graph.m g) (Csr.m c);
      Graph.iter_nodes
        (fun v ->
          let i = Csr.index c v in
          check_int (name ^ " id round-trip") v (Csr.node c i);
          check_int (name ^ " degree") (Graph.degree g v) (Csr.degree c i);
          let nbrs =
            List.rev (Csr.fold_neighbours c i (fun acc j -> Csr.node c j :: acc) [])
          in
          check (name ^ " neighbours") true (nbrs = Graph.neighbours g v))
        g)
    family

let csr_balls () =
  List.iter
    (fun (name, g) ->
      let c = Csr.of_graph g in
      let s = Csr.scratch c in
      Graph.iter_nodes
        (fun v ->
          List.iter
            (fun r ->
              check
                (Printf.sprintf "%s ball v=%d r=%d" name v r)
                true
                (Csr.ball_ids c s ~centre:v ~radius:r = Traversal.ball g v r))
            [ 0; 1; 2; 3 ])
        g)
    family

(* Decorated instance + proof, as in the seed simulator tests: node
   labels, edge labels, globals and proof bits all in transit. *)
let decorated g =
  let inst = Instance.of_graph g in
  let inst =
    Instance.with_node_labels inst
      (List.map (fun v -> (v, Bits.encode_int (v mod 5))) (Graph.nodes g))
  in
  let inst =
    Graph.fold_edges
      (fun u v acc ->
        if (u + v) mod 3 = 0 then
          Instance.with_edge_label acc u v (Bits.encode_int (u + v))
        else acc)
      g inst
  in
  let inst = Instance.with_globals inst (Bits.encode_int 42) in
  let proof =
    Graph.fold_nodes (fun v p -> Proof.set p v (Bits.encode_int (v * 7))) g
      Proof.empty
  in
  (inst, proof)

let fast_views_identical () =
  List.iter
    (fun (name, g) ->
      let inst, proof = decorated g in
      let c = Simulator.compile inst in
      List.iter
        (fun radius ->
          Graph.iter_nodes
            (fun v ->
              check
                (Printf.sprintf "%s view v=%d r=%d" name v radius)
                true
                (View.equal
                   (Simulator.view_at c proof ~radius v)
                   (View.make inst proof ~centre:v ~radius)))
            g)
        [ 0; 1; 2 ])
    (List.filter (fun (_, g) -> Graph.n g <= 60) family)

let run_verifier_matches_reference () =
  (* A verifier exercising graph structure, labels, proof bits and
     distances of the view. *)
  let verifier view =
    let c = View.centre view in
    let h = Hashtbl.hash
        ( Graph.edges (View.graph view),
          View.proof_of view c,
          View.label_of view c,
          List.map (fun u -> View.dist_to_centre view u)
            (Graph.nodes (View.graph view)) )
    in
    h mod 3 <> 0
  in
  List.iter
    (fun (name, g) ->
      let inst, proof = decorated g in
      List.iter
        (fun radius ->
          let ref_verdicts, ref_tr =
            Simulator.run_verifier_reference inst proof ~radius verifier
          in
          List.iter
            (fun jobs ->
              let verdicts, tr =
                Simulator.run_verifier ~jobs inst proof ~radius verifier
              in
              let label what =
                Printf.sprintf "%s %s r=%d jobs=%d" name what radius jobs
              in
              check (label "verdicts") true (verdicts = ref_verdicts);
              check_int (label "rounds") ref_tr.Simulator.rounds
                tr.Simulator.rounds;
              check_int (label "messages") ref_tr.Simulator.messages_sent
                tr.Simulator.messages_sent;
              check_int (label "max bits") ref_tr.Simulator.max_message_bits
                tr.Simulator.max_message_bits)
            [ 1; 4 ])
        [ 0; 1; 2 ])
    (List.filter (fun (_, g) -> Graph.n g <= 60) family)

let scheme_verdicts_identical () =
  (* Real schemes, honest and garbage proofs: the fast engine must
     reproduce Scheme.decide (the seed View.make-per-node path) and
     all_accept must agree with Scheme.accepts. *)
  let cases =
    [
      ("bipartite-C12", Bipartite_scheme.scheme, Instance.of_graph (Builders.cycle 12));
      ("bipartite-C9", Bipartite_scheme.scheme, Instance.of_graph (Builders.cycle 9));
      ("odd-n-C9", Counting.odd_n, Instance.of_graph (Builders.cycle 9));
      ( "leader-C16",
        Leader_election.strong,
        Leader_election.mark_leader (Instance.of_graph (Builders.cycle 16)) 0 );
      ("acyclic-T40", Acyclic.scheme, Instance.of_graph (Random_graphs.tree (st 9) 40)) ;
    ]
  in
  let rstate = st 11 in
  List.iter
    (fun (name, scheme, inst) ->
      let c = Simulator.compile inst in
      let proofs =
        (match scheme.Scheme.prover inst with Some p -> [ p ] | None -> [])
        @ [ Proof.empty ]
        @ List.init 8 (fun _ ->
              Graph.fold_nodes
                (fun v p ->
                  Proof.set p v
                    (Bits.random rstate (Random.State.int rstate 6)))
                (Instance.graph inst) Proof.empty)
      in
      List.iteri
        (fun k proof ->
          let seed_verdicts =
            Graph.fold_nodes
              (fun v acc -> (v, Scheme.verifier_output scheme inst proof v) :: acc)
              (Instance.graph inst) []
            |> List.rev
          in
          List.iter
            (fun jobs ->
              let verdicts, _ =
                Simulator.run_verifier ~jobs ~compiled:c inst proof
                  ~radius:scheme.Scheme.radius scheme.Scheme.verifier
              in
              check
                (Printf.sprintf "%s proof#%d jobs=%d" name k jobs)
                true (verdicts = seed_verdicts))
            [ 1; 4 ];
          check
            (Printf.sprintf "%s proof#%d all_accept" name k)
            (Scheme.accepts scheme inst proof)
            (Simulator.all_accept c proof ~radius:scheme.Scheme.radius
               scheme.Scheme.verifier))
        proofs)
    cases

let agrees_on_fast_path () =
  List.iter
    (fun (name, g) ->
      let inst, proof = decorated g in
      check (name ^ " agrees") true (Simulator.agrees_with_direct inst proof ~radius:2))
    (List.filter (fun (_, g) -> Graph.n g <= 60) family)

let soundness_random_parallel () =
  let inst = Instance.of_graph (Builders.cycle 12) in
  (* Honest scheme: never fooled, sequential or parallel. *)
  check "bipartite seq" true
    (Checker.soundness_random Bipartite_scheme.scheme inst ~samples:150 ~max_bits:3);
  check "bipartite jobs=4" true
    (Checker.soundness_random ~jobs:4 Bipartite_scheme.scheme inst ~samples:150
       ~max_bits:3);
  (* jobs > 1 verdict is independent of the worker count. *)
  let trivial =
    Scheme.make ~name:"accept-anything" ~radius:1
      ~size_bound:(fun _ -> 1)
      ~prover:(fun _ -> Some Proof.empty)
      ~verifier:(fun _ -> true)
  in
  List.iter
    (fun jobs ->
      check
        (Printf.sprintf "trivially fooled jobs=%d" jobs)
        false
        (Checker.soundness_random ~jobs trivial inst ~samples:10 ~max_bits:2))
    [ 1; 2; 4 ]

let pool_basics () =
  let p = Pool.create 3 in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  let n = 10_000 in
  let hits = Array.make n 0 in
  Pool.parallel_for p ~chunks:16 ~n (fun _c lo hi ->
      for i = lo to hi - 1 do
        hits.(i) <- hits.(i) + 1
      done);
  check "every index exactly once" true (Array.for_all (( = ) 1) hits);
  (* exceptions propagate out of wait *)
  Alcotest.check_raises "task exception" Exit (fun () ->
      Pool.parallel_for p ~chunks:4 ~n:4 (fun _ lo _ ->
          if lo = 0 then raise Exit));
  (* pool is still usable afterwards *)
  let total = Atomic.make 0 in
  Pool.parallel_for p ~chunks:8 ~n:100 (fun _ lo hi ->
      ignore (Atomic.fetch_and_add total (hi - lo)));
  check_int "pool survives exceptions" 100 (Atomic.get total)

(* extract_subgraph: the induced subgraph keeps original identifiers,
   keeps exactly the selected nodes' mutual edges, and returns the
   remap table sorted — against a reference computed with Graph
   operations. Rejects duplicate and out-of-range selections. *)
let extract_subgraph_induced () =
  List.iter
    (fun (name, g) ->
      let c = Csr.of_graph g in
      let n = Csr.n c in
      let rng = st 77 in
      List.iter
        (fun frac ->
          let sel =
            Array.of_list
              (List.filteri
                 (fun _ _ -> Random.State.float rng 1.0 < frac)
                 (List.init n Fun.id))
          in
          (* shuffle: selection order must not matter *)
          let sel = Array.copy sel in
          for i = Array.length sel - 1 downto 1 do
            let j = Random.State.int rng (i + 1) in
            let t = sel.(i) in
            sel.(i) <- sel.(j);
            sel.(j) <- t
          done;
          let sub, remap = Csr.extract_subgraph c sel in
          let sorted = Array.copy sel in
          Array.sort compare sorted;
          check (name ^ " remap is the sorted selection") true (remap = sorted);
          check_int (name ^ " node count") (Array.length sel) (Csr.n sub);
          let keep = Hashtbl.create 16 in
          Array.iter (fun i -> Hashtbl.replace keep (Csr.node c i) ()) sel;
          let m_ref = ref 0 in
          Graph.fold_edges
            (fun u v () ->
              if Hashtbl.mem keep u && Hashtbl.mem keep v then incr m_ref)
            g ();
          check_int (name ^ " induced edge count") !m_ref (Csr.m sub);
          for i = 0 to Csr.n sub - 1 do
            let v = Csr.node sub i in
            check (name ^ " keeps original identifiers") true
              (Hashtbl.mem keep v);
            Csr.iter_neighbours sub i (fun j ->
                let u = Csr.node sub j in
                check (name ^ " edges come from g") true
                  (List.mem u (Graph.neighbours g v)))
          done)
        [ 0.3; 0.7; 1.0 ])
    family

let extract_subgraph_rejects () =
  let c = Csr.of_graph (Builders.cycle 8) in
  Alcotest.check_raises "duplicate selection"
    (Invalid_argument "Csr.extract_subgraph: duplicate dense index 3")
    (fun () ->
      ignore (Csr.extract_subgraph c [| 1; 3; 3 |]));
  check "out of range raises" true
    (match Csr.extract_subgraph c [| 0; 99 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  ( "csr-engine",
    [
      Alcotest.test_case "csr structure mirrors graph" `Quick csr_structure;
      Alcotest.test_case "csr balls = Traversal.ball" `Quick csr_balls;
      Alcotest.test_case "fast views = View.make" `Quick fast_views_identical;
      Alcotest.test_case "run_verifier = reference (verdicts + transcript)"
        `Quick run_verifier_matches_reference;
      Alcotest.test_case "scheme verdicts identical (jobs 1 and 4)" `Quick
        scheme_verdicts_identical;
      Alcotest.test_case "gather agrees with fast direct extraction" `Quick
        agrees_on_fast_path;
      Alcotest.test_case "soundness_random parallel" `Quick
        soundness_random_parallel;
      Alcotest.test_case "pool basics" `Quick pool_basics;
      Alcotest.test_case "extract_subgraph = induced subgraph" `Quick
        extract_subgraph_induced;
      Alcotest.test_case "extract_subgraph validates selection" `Quick
        extract_subgraph_rejects;
    ] )
