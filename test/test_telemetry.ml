(* Units for the request-telemetry layer: rolling windows (bucket
   rotation and quantiles against a brute-force oracle, driven through
   a virtual clock), the Prometheus exposition (validated line by line
   and read back through its own parser), structured logs (sampling
   and the dropped_before gap marker) and the trace ring's dropped
   counter (in snapshots and in the export footer). *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let sec n = n * 1_000_000_000

(* ------------------------------------------------------------------ *)
(* Window: bucketing, rotation, quantile oracle. *)

let window_buckets () =
  (* bucket 0 holds non-positives; bucket b covers [2^(b-1), 2^b) *)
  check_int "bucket of 0" 0 (Obs.Window.bucket_of 0);
  check_int "bucket of -5" 0 (Obs.Window.bucket_of (-5));
  check_int "bucket of 1" 1 (Obs.Window.bucket_of 1);
  check_int "bucket of 2" 2 (Obs.Window.bucket_of 2);
  check_int "bucket of 3" 2 (Obs.Window.bucket_of 3);
  check_int "bucket of 4" 3 (Obs.Window.bucket_of 4);
  check_int "bucket of 1023" 10 (Obs.Window.bucket_of 1023);
  check_int "bucket of 1024" 11 (Obs.Window.bucket_of 1024);
  check_int "upper of 0" 0 (Obs.Window.bucket_upper 0);
  check_int "upper of 1" 1 (Obs.Window.bucket_upper 1);
  check_int "upper of 5" 31 (Obs.Window.bucket_upper 5);
  (* the bucket's upper edge really is the largest value it holds *)
  for b = 1 to 20 do
    let hi = Obs.Window.bucket_upper b in
    check_int "upper edge lands in its bucket" b (Obs.Window.bucket_of hi);
    check_int "upper edge + 1 spills over" (b + 1) (Obs.Window.bucket_of (hi + 1))
  done

let window_rotation () =
  let w = Obs.Window.create ~horizon:5 ~counters:1 () in
  (* one observation per second for 3 seconds *)
  Obs.Window.observe ~now_ns:(sec 100) w 10;
  Obs.Window.observe ~now_ns:(sec 101) w 20;
  Obs.Window.observe ~now_ns:(sec 102) w 30;
  Obs.Window.incr ~now_ns:(sec 102) w 0;
  let s = Obs.Window.stats ~now_ns:(sec 102) ~seconds:3 w in
  check_int "3s window sees all three" 3 s.Obs.Window.count;
  check_int "sum" 60 s.Obs.Window.sum;
  check_int "max" 30 s.Obs.Window.max;
  check_int "counter summed" 1 s.Obs.Window.counters.(0);
  (* a 1-second window sees only the current second *)
  let s1 = Obs.Window.stats ~now_ns:(sec 102) ~seconds:1 w in
  check_int "1s window sees one" 1 s1.Obs.Window.count;
  check_int "1s sum" 30 s1.Obs.Window.sum;
  (* advance the clock past the horizon: the ring slots are recycled
     and old observations vanish without any explicit reset *)
  Obs.Window.observe ~now_ns:(sec 200) w 40;
  let s' = Obs.Window.stats ~now_ns:(sec 200) ~seconds:5 w in
  check_int "old seconds aged out" 1 s'.Obs.Window.count;
  check_int "only the fresh value" 40 s'.Obs.Window.sum;
  (* a full-horizon query at second 205 covers 201..205: the second-200
     observation has just aged out and must not count *)
  Obs.Window.observe ~now_ns:(sec 205) w 50;
  let s'' = Obs.Window.stats ~now_ns:(sec 205) ~seconds:5 w in
  check_int "aged-out second excluded" 1 s''.Obs.Window.count;
  check_int "only the fresh value again" 50 s''.Obs.Window.sum;
  (* rate is count / window seconds *)
  check "rate" true (abs_float (s''.Obs.Window.rate -. (1.0 /. 5.0)) < 1e-9)

(* Oracle: quantiles computed from the raw values must agree with the
   window's log2-bucket answer, where "agree" means: the window
   reports the upper edge of the bucket holding the oracle's value. *)
let window_quantile_oracle () =
  let rand = Random.State.make [| 0x7e1e |] in
  for _trial = 0 to 19 do
    let n = 1 + Random.State.int rand 400 in
    let values =
      Array.init n (fun _ -> Random.State.int rand 100_000)
    in
    let w = Obs.Window.create ~horizon:10 () in
    Array.iter (fun v -> Obs.Window.observe ~now_ns:(sec 50) w v) values;
    let s = Obs.Window.stats ~now_ns:(sec 50) ~seconds:10 w in
    let sorted = Array.copy values in
    Array.sort compare sorted;
    List.iter
      (fun (q, got) ->
        let rank =
          let r = int_of_float (ceil (q *. float_of_int n)) in
          if r < 1 then 1 else if r > n then n else r
        in
        let oracle = sorted.(rank - 1) in
        let expect = Obs.Window.bucket_upper (Obs.Window.bucket_of oracle) in
        if got <> expect then
          Alcotest.failf
            "q=%.2f over %d values: window says %d, oracle value %d wants \
             bucket upper %d"
            q n got oracle expect)
      [ (0.50, s.Obs.Window.p50); (0.95, s.Obs.Window.p95); (0.99, s.Obs.Window.p99) ]
  done;
  (* empty window: all quantiles are 0, rate is 0 *)
  let w = Obs.Window.create () in
  let s = Obs.Window.stats ~now_ns:(sec 1) w in
  check_int "empty p50" 0 s.Obs.Window.p50;
  check_int "empty p99" 0 s.Obs.Window.p99;
  check "empty rate" true (s.Obs.Window.rate = 0.0)

let window_validation () =
  check "horizon < 1 rejected" true
    (match Obs.Window.create ~horizon:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let w = Obs.Window.create ~counters:1 () in
  check "counter index out of range rejected" true
    (match Obs.Window.incr ~now_ns:(sec 1) w 1 with
    | exception Invalid_argument _ -> true
    | () -> false)

(* ------------------------------------------------------------------ *)
(* Export: Prometheus text, validated line by line. *)

let export_renders () =
  let e = Obs.Export.create () in
  Obs.Export.counter e ~help:"requests served" "server.requests" 42;
  Obs.Export.gauge e ~labels:[ ("window", "10s") ] "server.request_rate" 3.5;
  let text = Obs.Export.contents e in
  check "HELP line present" true
    (contains ~sub:"# HELP lcp_server_requests_total requests served" text);
  check "TYPE counter" true
    (contains ~sub:"# TYPE lcp_server_requests_total counter" text);
  check "counter sample" true (contains ~sub:"lcp_server_requests_total 42" text);
  check "labelled gauge sample" true
    (contains ~sub:"lcp_server_request_rate{window=\"10s\"} 3.5" text);
  (* name sanitisation: bad chars become _, leading digit guarded,
     and an existing _total is not doubled *)
  check_str "sanitised" "lcp_a_b_c" (Obs.Export.full_name "a.b-c");
  check_str "leading digit" "lcp__9lives" (Obs.Export.full_name "9lives");
  let e2 = Obs.Export.create () in
  Obs.Export.counter e2 "x_total" 1;
  check "no double _total" true
    (contains ~sub:"lcp_x_total 1" (Obs.Export.contents e2));
  check "not doubled" false
    (contains ~sub:"x_total_total" (Obs.Export.contents e2))

let export_histogram () =
  (* drive a registry histogram through the renderer and check the
     cumulative le buckets by hand: values 1, 3, 3 land in buckets 1
     and 2, so le="1" sees 1, le="3" sees 3, +Inf sees 3 *)
  let h = { Obs.Metrics.count = 3; sum = 7; max = 3; buckets = [ (1, 1); (2, 2) ] } in
  let e = Obs.Export.create () in
  Obs.Export.histogram e "engine.ball_size" h;
  let text = Obs.Export.contents e in
  check "TYPE histogram" true
    (contains ~sub:"# TYPE lcp_engine_ball_size histogram" text);
  check "le=1 cumulative" true
    (contains ~sub:"lcp_engine_ball_size_bucket{le=\"1\"} 1" text);
  check "le=3 cumulative" true
    (contains ~sub:"lcp_engine_ball_size_bucket{le=\"3\"} 3" text);
  check "+Inf bucket" true
    (contains ~sub:"lcp_engine_ball_size_bucket{le=\"+Inf\"} 3" text);
  check "sum" true (contains ~sub:"lcp_engine_ball_size_sum 7" text);
  check "count" true (contains ~sub:"lcp_engine_ball_size_count 3" text);
  (* every non-comment line of the full render parses *)
  List.iter
    (fun line ->
      if line <> "" && line.[0] <> '#' then
        check (Printf.sprintf "parses: %s" line) true
          (Obs.Export.parse_sample line <> None))
    (String.split_on_char '\n' text)

let export_window_summary () =
  let w = Obs.Window.create ~horizon:10 () in
  List.iter (fun v -> Obs.Window.observe ~now_ns:(sec 7) w v) [ 10; 20; 400 ];
  let s = Obs.Window.stats ~now_ns:(sec 7) ~seconds:10 w in
  let e = Obs.Export.create () in
  Obs.Export.window_summary e "server.request_us" s;
  let text = Obs.Export.contents e in
  check "TYPE summary" true
    (contains ~sub:"# TYPE lcp_server_request_us summary" text);
  (* quantiles carry both the quantile and the window label, and agree
     with the stats record *)
  List.iter
    (fun (q, v) ->
      match
        Obs.Export.find_sample text ~name:"lcp_server_request_us"
          ~labels:[ ("quantile", q); ("window", "10s") ]
      with
      | Some got -> check (q ^ " matches stats") true (got = float_of_int v)
      | None -> Alcotest.failf "quantile %s missing" q)
    [ ("0.5", s.Obs.Window.p50); ("0.95", s.Obs.Window.p95); ("0.99", s.Obs.Window.p99) ];
  (match
     Obs.Export.find_sample text ~name:"lcp_server_request_us_count"
       ~labels:[ ("window", "10s") ]
   with
  | Some c -> check "count" true (c = 3.0)
  | None -> Alcotest.fail "summary count missing")

let export_parser () =
  (* parse_sample is total and strict enough to catch broken output *)
  let ok line expect =
    match Obs.Export.parse_sample line with
    | Some got -> check (Printf.sprintf "parse %S" line) true (got = expect)
    | None -> Alcotest.failf "failed to parse %S" line
  in
  ok "lcp_x 1" ("lcp_x", [], 1.0);
  ok "lcp_x{a=\"b\"} 2.5" ("lcp_x", [ ("a", "b") ], 2.5);
  ok "lcp_x{a=\"b\",c=\"d\"} -3" ("lcp_x", [ ("a", "b"); ("c", "d") ], -3.0);
  ok "x{l=\"quote \\\" slash \\\\\"} 0" ("x", [ ("l", "quote \" slash \\") ], 0.0);
  let bad line =
    check (Printf.sprintf "reject %S" line) true
      (Obs.Export.parse_sample line = None)
  in
  bad "";
  bad "# HELP x y";
  bad "{no_name=\"x\"} 1";
  bad "lcp_x{unterminated=\"} 1";
  bad "lcp_x not_a_number"

(* ------------------------------------------------------------------ *)
(* Log: JSON lines, sampling, the dropped_before marker. *)

let log_lines () =
  let path = Filename.temp_file "lcp_tlog" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let l = Obs.Log.to_file path in
  check "write accepted" true
    (Obs.Log.write ~now_ns:(sec 1) l
       [
         ("rid", Obs.Log.Int 7);
         ("req", Obs.Log.Str "prove");
         ("ok", Obs.Log.Bool true);
         ("ratio", Obs.Log.Float 0.5);
       ]);
  Obs.Log.close l;
  check "close is idempotent, writes after close refused" false
    (Obs.Log.write l [ ("x", Obs.Log.Int 1) ]);
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  check "has ts" true (contains ~sub:"\"ts_ns\":" line);
  check "int field" true (contains ~sub:"\"rid\":7" line);
  check "str field" true (contains ~sub:"\"req\":\"prove\"" line);
  check "bool field" true (contains ~sub:"\"ok\":true" line);
  check "float field" true (contains ~sub:"\"ratio\":0.5" line);
  check "object shape" true (line.[0] = '{' && line.[String.length line - 1] = '}')

let log_sampling () =
  let path = Filename.temp_file "lcp_tlog" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let l = Obs.Log.to_file ~max_per_sec:2 path in
  (* five writes in one second: 2 pass, 3 drop *)
  let passed = ref 0 in
  for i = 1 to 5 do
    if Obs.Log.write ~now_ns:(sec 10 + i) l [ ("i", Obs.Log.Int i) ] then
      incr passed
  done;
  check_int "two lines pass" 2 !passed;
  check_int "three dropped" 3 (Obs.Log.dropped l);
  (* next second: the first line through carries the gap marker *)
  check "next second passes" true
    (Obs.Log.write ~now_ns:(sec 11) l [ ("i", Obs.Log.Int 6) ]);
  Obs.Log.close l;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  check_int "three lines on disk" 3 (List.length lines);
  check "gap marker on the line after the drops" true
    (contains ~sub:"\"dropped_before\":3" (List.nth lines 2));
  check "earlier lines carry no marker" false
    (contains ~sub:"dropped_before" (List.nth lines 0))

(* ------------------------------------------------------------------ *)
(* trace.dropped: ring-wrap losses surface in metric snapshots and in
   the export footer. *)

let trace_dropped () =
  Obs.enable ~metrics:true ~trace:true ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.Trace.set_capacity 65536;
      Obs.Metrics.reset ())
  @@ fun () ->
  Obs.Trace.set_capacity 16;
  (* 28 instants into a 16-slot ring: 12 dropped *)
  for i = 1 to 28 do
    Obs.Trace.instant ~arg_name:"i" ~arg:i "telemetry.test"
  done;
  check_int "ring holds capacity" 16 (Obs.Trace.recorded ());
  check_int "dropped counted" 12 (Obs.Trace.dropped ());
  (* the external counter surfaces it in a snapshot without the trace
     module depending on metrics (wired in Obs's facade) *)
  let snap = Obs.Metrics.snapshot () in
  check_int "trace.dropped in snapshot" 12
    (Obs.Metrics.count snap "trace.dropped");
  (* and the export carries the footer *)
  let path = Filename.temp_file "lcp_trace" ".json" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Obs.Trace.export path;
  let ic = open_in path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  check "footer records the losses" true (contains ~sub:"\"dropped\":12" body);
  (* a quiet ring exports dropped 0 — a reader can tell the two apart *)
  Obs.Trace.clear ();
  Obs.Trace.instant "telemetry.calm";
  Obs.Trace.export path;
  let ic = open_in path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  check "quiet footer is 0" true (contains ~sub:"\"dropped\":0" body)

let trace_slice () =
  Obs.enable ~metrics:false ~trace:true ();
  Fun.protect ~finally:(fun () -> Obs.disable ())
  @@ fun () ->
  Obs.Trace.clear ();
  let t0 = Obs.Clock.now_ns () in
  Obs.Trace.complete ~arg_name:"rid" ~arg:1 "early" ~t0_ns:t0 ~dur_ns:10;
  let t1 = Obs.Clock.now_ns () in
  Obs.Trace.complete ~arg_name:"rid" ~arg:2 "late" ~t0_ns:(t1 + 5_000_000_000)
    ~dur_ns:10;
  let path = Filename.temp_file "lcp_slice" ".json" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  (* slice around the first event only *)
  Obs.Trace.export_slice path ~since_ns:(t0 - 1_000_000) ~until_ns:(t1 + 1_000_000);
  let ic = open_in path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  check "in-window event kept" true (contains ~sub:"\"early\"" body);
  check "out-of-window event filtered" false (contains ~sub:"\"late\"" body)

(* external counters: registered once, sampled at snapshot time,
   unaffected by reset *)
let external_counter () =
  Obs.enable ~metrics:true ~trace:false ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.Metrics.reset ())
  @@ fun () ->
  let v = ref 17 in
  Obs.Metrics.external_counter "telemetry.test_external" (fun () -> !v);
  Obs.Metrics.external_counter "telemetry.test_external" (fun () -> 999);
  (* idempotent: the first registration wins *)
  let snap = Obs.Metrics.snapshot () in
  check_int "external sampled" 17
    (Obs.Metrics.count snap "telemetry.test_external");
  v := 23;
  Obs.Metrics.reset ();
  let snap = Obs.Metrics.snapshot () in
  check_int "survives reset, re-sampled" 23
    (Obs.Metrics.count snap "telemetry.test_external")

let suite =
  ( "telemetry",
    [
      Alcotest.test_case "window bucket edges" `Quick window_buckets;
      Alcotest.test_case "window rotation under a virtual clock" `Quick
        window_rotation;
      Alcotest.test_case "window quantiles vs oracle" `Quick
        window_quantile_oracle;
      Alcotest.test_case "window argument validation" `Quick window_validation;
      Alcotest.test_case "prometheus counters and gauges" `Quick export_renders;
      Alcotest.test_case "prometheus histogram buckets" `Quick export_histogram;
      Alcotest.test_case "prometheus window summaries" `Quick
        export_window_summary;
      Alcotest.test_case "exposition parser" `Quick export_parser;
      Alcotest.test_case "structured log lines" `Quick log_lines;
      Alcotest.test_case "log sampling and gap markers" `Quick log_sampling;
      Alcotest.test_case "trace.dropped in snapshot and footer" `Quick
        trace_dropped;
      Alcotest.test_case "trace slice export" `Quick trace_slice;
      Alcotest.test_case "external counters" `Quick external_counter;
    ] )
