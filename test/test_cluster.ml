(* The cluster layer, bottom-up: ring placement properties, the
   bounded-load balancer's never-pick-a-dead-backend rule, the hedge
   cell's exactly-one-winner guarantee, the health eject/cooldown/
   reinstate cycle on a virtual clock, the deterministic backoff
   schedule — and then the router end-to-end over two in-process
   daemons: zero client-visible errors through a mid-run backend kill,
   and cluster-wide cache affinity (total misses match a single warmed
   daemon). *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Ring: deterministic placement, fair distribution, and the
   consistent-hashing stability bound — removing a backend moves only
   its own keys, about 1/n of the total. *)

let keys = List.init 2_000 (Printf.sprintf "key-%d")

let ring_distribution () =
  let n = 5 in
  let ring = Ring.create n in
  let counts = Array.make n 0 in
  List.iter (fun k -> counts.(Ring.owner ring k) <- counts.(Ring.owner ring k) + 1) keys;
  (* expectation is 400 each; 64 vnodes keeps the spread well inside
     a factor of two of fair *)
  Array.iteri
    (fun i c ->
      check (Printf.sprintf "backend %d owns a fair share (got %d)" i c) true
        (c > 150 && c < 800))
    counts

let ring_removal_stability () =
  let n = 5 in
  let ring = Ring.create n in
  let removed = 2 in
  (* "removal" is a filter over the walk order, so a key not owned by
     the removed backend must keep its owner... *)
  let moved =
    List.fold_left
      (fun moved k ->
        match Ring.order ring k with
        | o :: _ when o <> removed ->
            let o' =
              List.hd (List.filter (fun b -> b <> removed) (Ring.order ring k))
            in
            check_int "surviving key keeps its owner" o o';
            moved
        | _ -> moved + 1)
      0 keys
  in
  (* ...and only the removed backend's keys move: about 1/5 of them *)
  check (Printf.sprintf "about 1/5 of keys move (got %d/2000)" moved) true
    (moved > 100 && moved < 800)

let ring_order_prop =
  QCheck.Test.make ~name:"ring order is a deterministic permutation" ~count:200
    QCheck.(
      make
        Gen.(
          let* n = int_range 1 8 in
          let* key = string_size ~gen:printable (int_range 0 40) in
          return (n, key)))
    (fun (n, key) ->
      let r1 = Ring.create n and r2 = Ring.create n in
      let o = Ring.order r1 key in
      List.sort compare o = List.init n Fun.id
      && o = Ring.order r2 key
      && Ring.owner r1 key = List.hd o)

(* ------------------------------------------------------------------ *)
(* Balancer: bounded-load spill, the avoid list, and the hard rule
   that a Dead backend is never picked. *)

let balancer_spill () =
  let ring = Ring.create 2 in
  let health = Health.create 2 in
  let b = Balancer.create ~load_factor:1.0 ring health in
  let key = "hot-key" in
  let owner = Ring.owner ring key in
  let spill = 1 - owner in
  (* with load factor 1 and nothing else in flight, the cap is 1: the
     first acquire sticks to the owner, the second must spill *)
  check "first pick is the owner" true (Balancer.acquire b ~key ~avoid:[] = Some owner);
  check "hot key spills to the next ring node" true
    (Balancer.acquire b ~key ~avoid:[] = Some spill);
  check_int "accounting: two in flight" 2 (Balancer.total_inflight b);
  Balancer.release b owner;
  Balancer.release b spill;
  check_int "released down to zero" 0 (Balancer.total_inflight b);
  (* release never goes negative *)
  Balancer.release b owner;
  check_int "release is clamped" 0 (Balancer.total_inflight b)

let balancer_never_dead () =
  let ring = Ring.create 3 in
  let health = Health.create ~fail_threshold:1 3 in
  let b = Balancer.create ring health in
  Health.observe_failure health 0;
  check "threshold 1 ejects immediately" true (Health.state health 0 = Health.Dead);
  (* over many keys and even under heavy load pressure, backend 0 is
     never picked — the cap shapes load, Dead is absolute *)
  List.iter
    (fun k ->
      match Balancer.acquire b ~key:k ~avoid:[] with
      | Some 0 -> Alcotest.failf "dead backend picked for %s" k
      | Some _ -> () (* left in flight on purpose: pressure builds *)
      | None -> Alcotest.fail "no backend with two alive")
    keys;
  (* avoid carries a request's already-failed backends: with 1 dead
     and the other two avoided there is nothing left *)
  check "dead + avoided = None" true
    (Balancer.acquire b ~key:"k" ~avoid:[ 1; 2 ] = None);
  (* a Saturated backend is used only when no Ready one can take it *)
  let h2 = Health.create 2 in
  let b2 = Balancer.create ~load_factor:50.0 (Ring.create 2) h2 in
  Health.observe_ok h2 0 ~ready:false;
  Health.observe_ok h2 1 ~ready:true;
  List.iter
    (fun k ->
      match Balancer.acquire b2 ~key:k ~avoid:[] with
      | Some 1 -> Balancer.release b2 1
      | Some 0 -> Alcotest.failf "saturated backend preferred for %s" k
      | _ -> Alcotest.fail "no backend")
    keys

(* ------------------------------------------------------------------ *)
(* Hedge: exactly one offer wins, losers learn it synchronously, and
   a full set of failures surfaces as All_failed — never a hang. *)

let hedge_first_wins () =
  let c = Hedge.create ~rid:7 ~legs:2 in
  check "first offer wins" true (Hedge.offer c ~rid:7 "a");
  check "second offer loses" false (Hedge.offer c ~rid:7 "b");
  check "await sees the winner" true (Hedge.await c ~timeout_ms:0 = Hedge.Winner "a");
  Hedge.dispose c;
  check "offers after dispose are no-ops" false (Hedge.offer c ~rid:7 "c")

let hedge_rid_mismatch () =
  (* a stale leg carrying another request's rid can never win *)
  let c = Hedge.create ~rid:42 ~legs:1 in
  check "wrong rid rejected" false (Hedge.offer c ~rid:41 "stale");
  check "still undecided" true (Hedge.poll c = None);
  check "right rid wins" true (Hedge.offer c ~rid:42 "fresh");
  Hedge.dispose c

let hedge_all_failed_and_timeout () =
  let c = Hedge.create ~rid:1 ~legs:1 in
  (* add_leg before spawning the hedge: one failure is not yet final *)
  Hedge.add_leg c;
  Hedge.fail c;
  check "one failure of two legs: still racing" true (Hedge.poll c = None);
  check "await times out while racing" true
    (Hedge.await c ~timeout_ms:1 = Hedge.Timeout);
  Hedge.fail c;
  check "all legs failed" true (Hedge.await c ~timeout_ms:0 = Hedge.All_failed);
  Hedge.dispose c

let hedge_no_double_count () =
  (* the property the router's counters rely on: N racing threads,
     exactly one offer returns true, and await agrees with it *)
  let c = Hedge.create ~rid:9 ~legs:4 in
  let wins = Array.make 4 false in
  let ths =
    List.init 4 (fun i ->
        Thread.create (fun () -> wins.(i) <- Hedge.offer c ~rid:9 i) ())
  in
  let outcome = Hedge.await c ~timeout_ms:(-1) in
  List.iter Thread.join ths;
  let winners = Array.to_list wins |> List.filter Fun.id |> List.length in
  check_int "exactly one winner" 1 winners;
  (match outcome with
  | Hedge.Winner v -> check "await returns the winning leg's value" true wins.(v)
  | _ -> Alcotest.fail "expected a winner");
  Hedge.dispose c

(* ------------------------------------------------------------------ *)
(* Health: the eject / cooldown / reinstate cycle, entirely on a
   virtual clock. *)

let ms = 1_000_000

let health_cycle () =
  let h = Health.create ~fail_threshold:2 ~cooldown_ms:100 2 in
  check "starts ready" true (Health.state h 0 = Health.Ready);
  Health.observe_failure ~now_ns:(0 * ms) h 0;
  check "one failure under the threshold" true (Health.state h 0 = Health.Ready);
  Health.observe_failure ~now_ns:(1 * ms) h 0;
  check "second consecutive failure ejects" true (Health.state h 0 = Health.Dead);
  check_int "alive excludes the dead one" 1 (Health.alive h);
  (* flap suppression: a lucky probe inside the cooldown changes nothing *)
  Health.observe_ok ~now_ns:(50 * ms) h 0 ~ready:true;
  check "ok during cooldown ignored" true (Health.state h 0 = Health.Dead);
  (* a failure while dead restarts the cooldown *)
  Health.observe_failure ~now_ns:(80 * ms) h 0;
  Health.observe_ok ~now_ns:(150 * ms) h 0 ~ready:true;
  check "restarted cooldown still holds" true (Health.state h 0 = Health.Dead);
  (* first ok after the (restarted) cooldown reinstates *)
  Health.observe_ok ~now_ns:(185 * ms) h 0 ~ready:true;
  check "reinstated after cooldown" true (Health.state h 0 = Health.Ready);
  check_int "alive back to two" 2 (Health.alive h);
  (* an ok with ready=false is reachable-but-shedding: Saturated *)
  Health.observe_ok h 1 ~ready:false;
  check "not-ready probe saturates" true (Health.state h 1 = Health.Saturated);
  check_int "saturated still counts as alive" 2 (Health.alive h);
  (* a success resets the failure streak: two non-consecutive failures
     never eject *)
  Health.observe_failure ~now_ns:(200 * ms) h 1;
  Health.observe_ok ~now_ns:(201 * ms) h 1 ~ready:true;
  Health.observe_failure ~now_ns:(202 * ms) h 1;
  check "streak reset by success" true (Health.state h 1 <> Health.Dead)

(* ------------------------------------------------------------------ *)
(* Backoff: a pure function of (seed, attempt), bounded by the jitter
   band — and the connect retry loop drives it through the injectable
   sleep hook, so no wall time passes in the test. *)

let backoff_deterministic () =
  let b = Client.Backoff.default in
  List.iter
    (fun seed ->
      List.iter
        (fun attempt ->
          let d1 = Client.Backoff.delay_ms b ~seed ~attempt in
          let d2 = Client.Backoff.delay_ms b ~seed ~attempt in
          check "delay is deterministic" true (d1 = d2);
          let nominal =
            Float.min b.Client.Backoff.max_ms
              (b.Client.Backoff.base_ms
              *. (b.Client.Backoff.multiplier ** float_of_int (attempt - 1)))
          in
          let j = b.Client.Backoff.jitter in
          check
            (Printf.sprintf "delay %g within jitter band of %g" d1 nominal)
            true
            (d1 >= nominal *. (1.0 -. j) && d1 < nominal *. (1.0 +. j)))
        [ 1; 2; 3; 8; 20 ])
    [ 0; 1; 42 ];
  (* distinct seeds decorrelate: not every attempt-1 delay is equal *)
  let ds =
    List.map (fun seed -> Client.Backoff.delay_ms b ~seed ~attempt:1)
      [ 0; 1; 2; 3; 4; 5 ]
  in
  check "seeds decorrelate" true (List.sort_uniq compare ds |> List.length > 1)

(* a port that was just bound and released: nothing listens on it *)
let closed_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Unix.close fd;
  port

let connect_retry_schedule () =
  let sleeps = ref [] in
  let sleep_ms d = sleeps := d :: !sleeps in
  let port = closed_port () in
  (match Client.connect ~port ~retries:3 ~backoff_seed:42 ~sleep_ms () with
  | Ok c ->
      Client.close c;
      Alcotest.fail "connected to a closed port"
  | Error m -> check "error names the failure" true (String.length m > 0));
  let sleeps = List.rev !sleeps in
  check_int "one sleep per extra attempt" 3 (List.length sleeps);
  List.iteri
    (fun i d ->
      check_int "sleep matches the published schedule" 0
        (compare d
           (Client.Backoff.delay_ms Client.Backoff.default ~seed:42
              ~attempt:(i + 1))))
    sleeps;
  (* retries:0 is the old behaviour: fail immediately, no sleeps *)
  let count = ref 0 in
  (match Client.connect ~port ~sleep_ms:(fun _ -> incr count) () with
  | Ok c -> Client.close c; Alcotest.fail "connected to a closed port"
  | Error _ -> ());
  check_int "no retries by default" 0 !count

(* ------------------------------------------------------------------ *)
(* Router end-to-end over two in-process daemons. The probe thread is
   disabled (probe_interval_ms = 0): every health transition in these
   tests comes from passive forwarding failures or an explicit
   probe_once on a virtual clock, so nothing is timing-dependent. *)

let with_cluster ?(router = Fun.id) f =
  let mk () = Server.create { Server.default_config with port = 0; jobs = 2 } in
  let s1 = mk () in
  let th1 = Server.start s1 in
  let s2 = mk () in
  let th2 = Server.start s2 in
  let cfg =
    router
      {
        Router.default_config with
        port = 0;
        backends =
          [ ("127.0.0.1", Server.port s1); ("127.0.0.1", Server.port s2) ];
        probe_interval_ms = 0;
      }
  in
  let r = Router.create cfg in
  let rth = Router.start r in
  Fun.protect
    ~finally:(fun () ->
      Router.stop r;
      Thread.join rth;
      Server.stop s1;
      Thread.join th1;
      Server.stop s2;
      Thread.join th2)
    (fun () -> f r s1 s2)

let with_client port f =
  match Client.connect ~port () with
  | Error m -> Alcotest.failf "connect: %s" m
  | Ok c -> Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let call c req =
  match Client.call c req with
  | Ok resp -> resp
  | Error m -> Alcotest.failf "call: transport error %s" m

(* the ring the router builds for two backends — Ring placement is
   deterministic, so the test can predict every assignment *)
let two_ring = Ring.create ~vnodes:Router.default_config.Router.vnodes 2

(* the smallest cycle size >= from whose compute request is owned by
   [idx] on a two-backend ring *)
let cycle_owned_by idx ~from =
  let rec go n =
    let g6 = Graph6.encode (Builders.cycle n) in
    let key = Router.request_key (Wire.Prove { scheme = "eulerian"; graph6 = g6 }) in
    if Ring.owner two_ring key = idx then (n, g6) else go (n + 1)
  in
  go from

let router_loadgen_and_affinity () =
  with_cluster @@ fun r s1 s2 ->
  let sizes = [ 16; 24; 32 ] in
  (match
     Client.loadgen
       ~targets:[ ("127.0.0.1", Router.port r) ]
       ~port:0 ~connections:2 ~requests:10 ~mix:(1, 4, 0) ~scheme:"bipartite"
       ~sizes ()
   with
  | Error m -> Alcotest.failf "loadgen through router: %s" m
  | Ok rep ->
      check_int "every request ok" 20 rep.Client.ok;
      check_int "no client-visible errors" 0 rep.Client.errors;
      check_int "ids echo through the router" 0 rep.Client.id_mismatches;
      (* the router aggregates backend stats for the report *)
      (match rep.Client.server with
      | Some s -> check "aggregated stats show cache hits" true (s.Wire.cache_hits > 0)
      | None -> Alcotest.fail "no server stats through the router"));
  (* cache affinity: every instance of a size keeps hitting the same
     daemon, so the cluster-wide miss count equals a single warmed
     daemon's — one compile per size, however the sizes are spread *)
  let m1 = (Server.stats s1).Server.cache_misses
  and m2 = (Server.stats s2).Server.cache_misses in
  check_int
    (Printf.sprintf "one compile per size across the cluster (%d + %d)" m1 m2)
    (List.length sizes) (m1 + m2);
  let st = Router.stats r in
  check "router counted the requests" true (st.Router.requests >= 20);
  check_int "no retries on a healthy cluster" 0 st.Router.retries;
  check_int "nothing unroutable" 0 st.Router.no_backend

let router_failover () =
  with_cluster @@ fun r s1 _s2 ->
  (* kill backend 0 out from under the router — no probe will warn it *)
  Server.stop s1;
  with_client (Router.port r) @@ fun c ->
  (* three distinct graphs, all keyed to the dead backend: each first
     attempt fails over and succeeds on backend 1, invisibly *)
  let rec drive n remaining =
    if remaining > 0 then begin
      let n, g6 = cycle_owned_by 0 ~from:n in
      (match call c (Wire.Prove { scheme = "eulerian"; graph6 = g6 }) with
      | Wire.Proved _ -> ()
      | _ -> Alcotest.failf "prove C%d did not fail over" n);
      drive (n + 1) (remaining - 1)
    end
  in
  drive 10 3;
  let st = Router.stats r in
  check "each failover counted as a retry" true (st.Router.retries >= 3);
  let b0 = List.nth st.Router.per_backend 0 in
  check "dead backend accumulated the errors" true (b0.Router.errors >= 3);
  (* three consecutive passive failures ejected it *)
  check "three strikes ejected backend 0" true (b0.Router.state = Health.Dead);
  check "router still ready with one backend" true (Router.health r).Wire.ready;
  (* once ejected, requests keyed to it route straight to the
     survivor: no further retries accrue *)
  let before = (Router.stats r).Router.retries in
  let n, g6 = cycle_owned_by 0 ~from:200 in
  (match call c (Wire.Prove { scheme = "eulerian"; graph6 = g6 }) with
  | Wire.Proved _ -> ()
  | _ -> Alcotest.failf "prove C%d after ejection failed" n);
  check_int "ejected backend is routed around, not retried" before
    (Router.stats r).Router.retries

let router_probe_cycle () =
  with_cluster @@ fun r s1 s2 ->
  let state i = (List.nth (Router.stats r).Router.per_backend i).Router.state in
  (* a draining backend answers ready=false: the probe saturates it *)
  Server.set_draining s2 true;
  Router.probe_once ~now_ns:(1_000 * ms) r;
  check "probe marks draining backend saturated" true (state 1 = Health.Saturated);
  check "saturated is still alive: router ready" true (Router.health r).Wire.ready;
  Server.set_draining s2 false;
  Router.probe_once ~now_ns:(1_001 * ms) r;
  check "undrained backend back to ready" true (state 1 = Health.Ready);
  (* a stopped backend fails fail_threshold probes and is ejected —
     plus one grace sweep: the probe connection already pooled when
     the backend stopped gets one last answer before the server
     notices it is stopping and closes it *)
  Server.stop s1;
  List.iter
    (fun t -> Router.probe_once ~now_ns:(t * ms) r)
    [ 1_002; 1_003; 1_004; 1_005 ];
  check "failed probes eject the stopped backend" true (state 0 = Health.Dead);
  check "one alive backend keeps the router ready" true (Router.health r).Wire.ready;
  (* lose the last backend: readiness must flip *)
  Server.stop s2;
  List.iter
    (fun t -> Router.probe_once ~now_ns:(t * ms) r)
    [ 1_006; 1_007; 1_008; 1_009 ];
  check "no alive backend: router not ready" false (Router.health r).Wire.ready

let router_admin_endpoints () =
  with_cluster @@ fun r _s1 _s2 ->
  with_client (Router.port r) @@ fun c ->
  (* one compute request so the counters are nonzero *)
  let g6 = Graph6.encode (Builders.cycle 16) in
  (match call c (Wire.Prove { scheme = "eulerian"; graph6 = g6 }) with
  | Wire.Proved _ -> ()
  | _ -> Alcotest.fail "prove through router");
  (* Health is answered by the router itself *)
  (match call c Wire.Health with
  | Wire.Health_reply h ->
      check "router ready" true h.Wire.ready;
      check_int "router does not queue" 0 h.Wire.max_queue
  | _ -> Alcotest.fail "health through router");
  (* Stats aggregates the live backends *)
  (match call c Wire.Stats with
  | Wire.Stats_reply s -> check "aggregated requests > 0" true (s.Wire.requests > 0)
  | _ -> Alcotest.fail "stats through router");
  (* Catalog is forwarded verbatim *)
  (match call c Wire.Catalog with
  | Wire.Catalog_reply entries ->
      check "catalog forwarded" true
        (List.exists (fun e -> e.Wire.name = "eulerian") entries)
  | _ -> Alcotest.fail "catalog through router");
  (* Profile_export is answered by the router itself (its own
     attribution, not a backend's), valid even with the profiler off,
     and the GC families ride its exposition below *)
  (match call c Wire.Profile_export with
  | Wire.Profile_export_reply json ->
      check "router profile parses" true
        (Result.is_ok (Obs.Json.parse json))
  | _ -> Alcotest.fail "profile export through router");
  (* Drain is a backend-local admin operation: the router refuses it *)
  (match call c (Wire.Drain { enable = true }) with
  | Wire.Error_reply e ->
      check "drain refused with Bad_request" true (e.code = Wire.Bad_request)
  | _ -> Alcotest.fail "drain must not be forwarded");
  (* the router's own Prometheus exposition, with per-backend labels *)
  match call c Wire.Metrics_text with
  | Wire.Metrics_text_reply text ->
      List.iteri
        (fun i line ->
          if line <> "" && line.[0] <> '#' then
            match Obs.Export.parse_sample line with
            | Some _ -> ()
            | None -> Alcotest.failf "metrics line %d unparseable: %S" i line)
        (String.split_on_char '\n' text);
      let find name labels = Obs.Export.find_sample text ~name ~labels in
      (match find "lcp_router_requests_total" [] with
      | Some v -> check "router requests counted" true (v >= 1.0)
      | None -> Alcotest.fail "lcp_router_requests_total missing");
      (match find "lcp_router_alive_backends" [] with
      | Some v -> check "both backends alive" true (v = 2.0)
      | None -> Alcotest.fail "lcp_router_alive_backends missing");
      (match find "lcp_gc_minor_collections_total" [] with
      | Some v -> check "router gc telemetry" true (v >= 0.0)
      | None -> Alcotest.fail "lcp_gc_minor_collections_total missing");
      let b0 =
        List.nth (Router.stats r).Router.per_backend 0
      in
      (match find "lcp_router_backend_up" [ ("backend", b0.Router.name) ] with
      | Some v -> check "per-backend liveness gauge" true (v = 1.0)
      | None -> Alcotest.fail "per-backend up gauge missing")
  | _ -> Alcotest.fail "metrics_text through router"

let router_drain_reroutes () =
  with_cluster @@ fun r s1 s2 ->
  (* drain backend 0 directly (as an operator would before a deploy),
     let one probe see it, and route a request keyed to it: the work
     must land on backend 1 while backend 0 stays untouched *)
  Server.set_draining s1 true;
  Router.probe_once ~now_ns:(2_000 * ms) r;
  let n, g6 = cycle_owned_by 0 ~from:300 in
  let before = (Server.stats s1).Server.cache_misses in
  with_client (Router.port r) (fun c ->
      match call c (Wire.Prove { scheme = "eulerian"; graph6 = g6 }) with
      | Wire.Proved _ -> ()
      | _ -> Alcotest.failf "prove C%d via drained cluster" n);
  check_int "drained backend got no new work" before
    (Server.stats s1).Server.cache_misses;
  check "the other backend compiled it" true
    ((Server.stats s2).Server.cache_misses >= 1);
  check_int "rerouting is not a retry" 0 (Router.stats r).Router.retries

(* the smallest cycle size >= from whose *batch op* key is owned by
   [idx] — op keys hash the graph bytes, not the whole frame, so a
   single-op batch's request_key is exactly the op's routing key *)
let cycle_op_owned_by idx ~from =
  let rec go n =
    let g6 = Graph6.encode (Builders.cycle n) in
    let key =
      Router.request_key
        (Wire.Batch
           {
             graphs = [ g6 ];
             proofs = [];
             ops = [ Wire.Op_prove { scheme = "eulerian"; graph = 0 } ];
           })
    in
    if Ring.owner two_ring key = idx then (n, g6) else go (n + 1)
  in
  go from

let router_batch_split () =
  with_cluster @@ fun r s1 s2 ->
  (* two graphs keyed to different backends: the router must split the
     frame, fan the sub-batches out concurrently, and reassemble the
     per-op items in the original op order *)
  let _n0, g0 = cycle_op_owned_by 0 ~from:16 in
  let _n1, g1 = cycle_op_owned_by 1 ~from:16 in
  let ops =
    [
      Wire.Op_prove { scheme = "eulerian"; graph = 0 };
      Wire.Op_prove { scheme = "eulerian"; graph = 1 };
      Wire.Op_prove { scheme = "no-such-scheme"; graph = 0 };
      Wire.Op_prove { scheme = "eulerian"; graph = 0 };
      Wire.Op_prove { scheme = "eulerian"; graph = 1 };
    ]
  in
  with_client (Router.port r) (fun c ->
      match call c (Wire.Batch { graphs = [ g0; g1 ]; proofs = []; ops }) with
      | Wire.Batch_reply items ->
          check_int "one item per op" (List.length ops) (List.length items);
          List.iteri
            (fun i item ->
              match (i, item) with
              | (0 | 1 | 3 | 4), Wire.Item_proved (Some _) -> ()
              | 2, Wire.Item_error { code = Wire.Unknown_scheme; _ } -> ()
              | _, _ -> Alcotest.failf "item %d has the wrong shape" i)
            items
      | _ -> Alcotest.fail "batch through router");
  (* the split really spanned the cluster: each backend compiled
     exactly the graph keyed to it *)
  check_int "backend 0 compiled its graph" 1 (Server.stats s1).Server.cache_misses;
  check_int "backend 1 compiled its graph" 1 (Server.stats s2).Server.cache_misses;
  let st = Router.stats r in
  check_int "one client request, counted once" 1 st.Router.requests;
  check_int "no retries on a healthy cluster" 0 st.Router.retries;
  (* a single-key batch takes the fast path: forwarded as one frame to
     the owner, items still in order *)
  let before0 = (Server.stats s1).Server.batch_ops in
  with_client (Router.port r) (fun c ->
      match
        call c
          (Wire.Batch
             {
               graphs = [ g0 ];
               proofs = [];
               ops =
                 [
                   Wire.Op_prove { scheme = "eulerian"; graph = 0 };
                   Wire.Op_prove { scheme = "eulerian"; graph = 0 };
                 ];
             })
      with
      | Wire.Batch_reply [ Wire.Item_proved (Some _); Wire.Item_proved (Some _) ]
        -> ()
      | _ -> Alcotest.fail "single-key batch through router");
  check_int "single-key frame landed whole on its owner" (before0 + 2)
    (Server.stats s1).Server.batch_ops

let router_hedging () =
  (* hedge after 1 ms: a cold compile takes far longer, so the hedge
     leg fires; whichever leg wins, the client sees exactly one reply
     and the router counts exactly one request *)
  with_cluster ~router:(fun c -> { c with Router.hedge_ms = 1 }) @@ fun r _ _ ->
  with_client (Router.port r) @@ fun c ->
  let g6 = Graph6.encode (Builders.cycle 2048) in
  (match call c (Wire.Prove { scheme = "bipartite"; graph6 = g6 }) with
  | Wire.Proved (Some _) -> ()
  | _ -> Alcotest.fail "hedged prove");
  let st = Router.stats r in
  check_int "one client request, counted once" 1 st.Router.requests;
  check "the hedge leg fired" true (st.Router.hedges >= 1);
  check_int "no retries involved" 0 st.Router.retries;
  (* the reply is never double-counted: per-backend attempts may be 2,
     but request/win accounting stays at one *)
  check "at most one hedge win recorded" true (st.Router.hedge_wins <= 1)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let router_trace_propagation () =
  (* with 1-in-1 head sampling the router roots a trace for an
     untraced client frame and propagates the context to the backend;
     backends run in-process here so all lanes share one ring — the
     router's Trace_export must show its own spans AND the backend's
     server.request, all under the rid-derived trace id *)
  Obs.enable ~metrics:false ~trace:true ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.Trace.clear ())
  @@ fun () ->
  with_cluster ~router:(fun c -> { c with Router.trace_sample = 1 })
  @@ fun r _s1 _s2 ->
  with_client (Router.port r) @@ fun c ->
  let rid = 99991 in
  let g6 = Graph6.encode (Builders.cycle 16) in
  (match
     Client.call_id c ~id:rid (Wire.Prove { scheme = "eulerian"; graph6 = g6 })
   with
  | Ok (id, Wire.Proved _) -> check_int "echoed rid" rid id
  | Ok (_, _) -> Alcotest.fail "unexpected prove reply"
  | Error m -> Alcotest.failf "prove: %s" m);
  let hex =
    let h, l = Obs.Trace.trace_of_rid rid in
    Obs.Trace.hex_id h l
  in
  match call c Wire.Trace_export with
  | Wire.Trace_export_reply json ->
      check "router.request span traced" true
        (contains ~sub:"\"name\":\"router.request\"" json);
      check "router.upstream span traced" true
        (contains ~sub:"\"name\":\"router.upstream\"" json);
      check "backend server.request span traced" true
        (contains ~sub:"\"name\":\"server.request\"" json);
      check "spans share the rid-derived trace id" true
        (contains ~sub:(Printf.sprintf "\"trace\":\"%s\"" hex) json)
  | _ -> Alcotest.fail "unexpected Trace_export reply"

let suite =
  ( "cluster",
    [
      Alcotest.test_case "ring distribution" `Quick ring_distribution;
      Alcotest.test_case "ring removal stability" `Quick ring_removal_stability;
      QCheck_alcotest.to_alcotest ring_order_prop;
      Alcotest.test_case "balancer bounded-load spill" `Quick balancer_spill;
      Alcotest.test_case "balancer never picks dead" `Quick balancer_never_dead;
      Alcotest.test_case "hedge first offer wins" `Quick hedge_first_wins;
      Alcotest.test_case "hedge rid mismatch loses" `Quick hedge_rid_mismatch;
      Alcotest.test_case "hedge all-failed and timeout" `Quick
        hedge_all_failed_and_timeout;
      Alcotest.test_case "hedge never double-counts" `Quick hedge_no_double_count;
      Alcotest.test_case "health eject/cooldown/reinstate" `Quick health_cycle;
      Alcotest.test_case "backoff deterministic jitter band" `Quick
        backoff_deterministic;
      Alcotest.test_case "connect retry schedule" `Quick connect_retry_schedule;
      Alcotest.test_case "router loadgen + cache affinity" `Quick
        router_loadgen_and_affinity;
      Alcotest.test_case "router failover on dead backend" `Quick router_failover;
      Alcotest.test_case "router probe eject cycle" `Quick router_probe_cycle;
      Alcotest.test_case "router admin endpoints" `Quick router_admin_endpoints;
      Alcotest.test_case "router routes around a draining backend" `Quick
        router_drain_reroutes;
      Alcotest.test_case "router splits a batch across backends" `Quick
        router_batch_split;
      Alcotest.test_case "router hedged request wins once" `Quick router_hedging;
      Alcotest.test_case "router roots and propagates traces" `Quick
        router_trace_propagation;
    ] )
