(* Section 3.2: the LCP model strictly generalises the proof labelling
   schemes of Korman–Kutten–Peleg. *)

let check = Alcotest.(check bool)

let labelled g f =
  Instance.with_node_labels (Instance.of_graph g)
    (List.map (fun v -> (v, f v)) (Graph.nodes g))

let agreement_with_proofs () =
  (* yes-instances accepted with the echo proof *)
  List.iter
    (fun g ->
      let inst = labelled g (fun _ -> Bits.of_string "101") in
      match Kkp.agreement.Kkp.prover inst with
      | Some proof -> check "accepted" true (Kkp.accepts Kkp.agreement inst proof)
      | None -> Alcotest.fail "prover refused a yes-instance")
    [ Builders.cycle 6; Builders.grid 3 3; Builders.star 4 ];
  (* disagreement detected under the honest proof discipline: forge
     attempts through the LCP embedding *)
  let mixed = labelled (Builders.path 4) (fun v -> Bits.one_bit (v = 0)) in
  check "prover refuses" true (Kkp.agreement.Kkp.prover mixed = None);
  let as_lcp = Kkp.to_lcp Kkp.agreement in
  check "no small forged proof" true
    (Checker.soundness_random as_lcp mixed ~samples:300 ~max_bits:4)

let embedding_agrees () =
  (* KKP decisions coincide with the LCP embedding's decisions *)
  let inst = labelled (Builders.cycle 5) (fun _ -> Bits.of_string "1") in
  let proof = Option.get (Kkp.agreement.Kkp.prover inst) in
  let as_lcp = Kkp.to_lcp Kkp.agreement in
  check "embed accept" true (Scheme.accepts as_lcp inst proof);
  let tampered = Proof.set proof 2 (Bits.of_string "1010101") in
  check "both reject tampering"
    (Kkp.accepts Kkp.agreement inst tampered)
    (Scheme.accepts as_lcp inst tampered)

let lemma_2_1 () =
  (* With empty proofs, KKP views cannot separate mixed labellings from
     constant ones — on any graph where the marked node has a
     neighbour. *)
  List.iter
    (fun (g, u) ->
      check "indistinguishable" true (Kkp.agreement_indistinguishable g ~u))
    [
      (Builders.path 2, 0);
      (Builders.cycle 6, 3);
      (Builders.grid 3 3, 4);
      (Random_graphs.connected_gnp (Random.State.make [| 3 |]) 10 0.3, 5);
    ];
  (* …whereas the LCP(0) agreement verifier separates them instantly,
     because LCP views include neighbour labels. *)
  let g = Builders.cycle 6 in
  let mixed = labelled g (fun v -> Bits.one_bit (v = 3)) in
  check "LCP(0) rejects mixed" false
    (Scheme.accepts Lcl.agreement mixed Proof.empty);
  let const = labelled g (fun _ -> Bits.one_bit true) in
  check "LCP(0) accepts constant" true
    (Scheme.accepts Lcl.agreement const Proof.empty)

let suite =
  ( "kkp-model",
    [
      Alcotest.test_case "agreement with echo proofs" `Quick agreement_with_proofs;
      Alcotest.test_case "LCP embedding" `Quick embedding_agrees;
      Alcotest.test_case "Lemma 2.1 separation" `Quick lemma_2_1;
    ] )
