(* Shared helpers for scheme tests: completeness, soundness, and size
   measurement, with readable failure messages. *)

let check = Alcotest.(check bool)

let assert_complete ?(sizes_ok = true) scheme instances =
  let report = Checker.completeness scheme instances in
  List.iter (fun msg -> Alcotest.fail msg) report.Checker.failures;
  check (scheme.Scheme.name ^ ": all accepted") true report.Checker.all_accepted;
  if sizes_ok then
    check (scheme.Scheme.name ^ ": size bound") true report.Checker.bound_respected

let assert_refuses scheme instances =
  List.iter
    (fun inst ->
      check
        (Printf.sprintf "%s: prover refuses (n=%d)" scheme.Scheme.name
           (Instance.n inst))
        true
        (Checker.prover_refuses scheme inst))
    instances

let assert_sound_random ?(samples = 200) ?(max_bits = 4) scheme instances =
  List.iter
    (fun inst ->
      check
        (Printf.sprintf "%s: random soundness (n=%d)" scheme.Scheme.name
           (Instance.n inst))
        true
        (Checker.soundness_random scheme inst ~samples ~max_bits))
    instances

let assert_sound_adversarial ?(max_bits = 4) ?(restarts = 4) ?(steps = 120) scheme
    instances =
  List.iter
    (fun inst ->
      match Adversary.forge ~restarts ~steps scheme inst ~max_bits with
      | Adversary.Fooled proof ->
          Alcotest.fail
            (Format.asprintf "%s: adversary forged a proof on n=%d!@ %a"
               scheme.Scheme.name (Instance.n inst) Proof.pp proof)
      | Adversary.Resisted _ -> ())
    instances

let assert_sound_exhaustive ~max_bits scheme instances =
  List.iter
    (fun inst ->
      check
        (Printf.sprintf "%s: exhaustive soundness (n=%d, b=%d)" scheme.Scheme.name
           (Instance.n inst) max_bits)
        true
        (Checker.soundness_exhaustive scheme inst ~max_bits))
    instances

let proof_size scheme inst =
  match Scheme.prove_and_check scheme inst with
  | `Accepted proof -> Proof.size proof
  | `No_proof -> Alcotest.fail (scheme.Scheme.name ^ ": prover refused a yes-instance")
  | `Rejected (_, vs) ->
      Alcotest.fail
        (Printf.sprintf "%s: rejected own proof at [%s]" scheme.Scheme.name
           (String.concat "," (List.map string_of_int vs)))

(* Corrupting a valid proof at random; at least [frac] of single-bit
   corruptions should be caught (cheap regression guard against
   verifiers that ignore their proofs). *)
let assert_tamper_sensitive ?(trials = 30) ?(min_detected = 1) scheme inst =
  match Scheme.prove_and_check scheme inst with
  | `Accepted proof ->
      let results = Adversary.tamper scheme inst proof ~trials in
      let detected = List.length (List.filter (fun (_, r) -> r <> []) results) in
      check
        (Printf.sprintf "%s: tampering detected (%d/%d)" scheme.Scheme.name detected
           trials)
        true (detected >= min_detected)
  | _ -> Alcotest.fail (scheme.Scheme.name ^ ": prover failed")

let st seed = Random.State.make [| seed |]
