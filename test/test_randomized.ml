(* The randomized verification subsystem: wire totality for the
   Verify_sampled / Sampled_verified frames (v2-only tags, the 0x0B
   precedent), determinism of the sampled read set across worker
   counts, the query-budget hard failure, exact completeness of every
   catalog sampled variant, the measured error budget, the daemon's
   escalation path with its counters, and the BENCH_lcp.json section
   merge. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Shared fixtures *)

let sampled_request ?(seed = 7) ?(queries = 4) ?(budget_id = "") () =
  Wire.Verify_sampled
    {
      scheme = "bipartite";
      graph6 = Graph6.encode (Builders.cycle 8);
      proof = Proof.of_list [ (0, Bits.of_bools [ true ]) ];
      seed;
      queries;
      budget_id;
    }

let accept_reply =
  Wire.Sampled_verified
    {
      sampled_accept = true;
      escalated = false;
      accepted = true;
      bits_read = 72;
      nodes = 24;
      rejecting = [];
    }

let escalated_reply =
  Wire.Sampled_verified
    {
      sampled_accept = false;
      escalated = true;
      accepted = false;
      bits_read = 9;
      nodes = 3;
      rejecting = [ 2; 5 ];
    }

(* yes-instances per catalog sampled variant, mirroring the scheme
   test suites: an even cycle is bipartite, a BFS tree of its edges is
   a spanning tree, and s/t in different components are unreachable *)
let instance_for name =
  match name with
  | "bipartite" -> Instance.of_graph (Builders.cycle 12)
  | "spanning-tree" ->
      let g = Builders.cycle 12 in
      let pairs = Traversal.spanning_tree g (List.hd (Graph.nodes g)) in
      Instance.flag_edges (Instance.of_graph g)
        (List.map (fun (v, p) -> (min v p, max v p)) pairs)
  | "st-unreach" ->
      let g =
        Graph.union_disjoint (Builders.cycle 6)
          (Canonical.shifted (Builders.cycle 6) 6)
      in
      St.of_graph g ~s:0 ~t:7
  | _ -> Alcotest.failf "no fixture for sampled scheme %s" name

let proof_for (rs : Randomized_scheme.t) inst =
  match rs.Randomized_scheme.base.Scheme.prover inst with
  | Some p -> p
  | None -> Alcotest.fail "prover refused a yes-instance"

(* ------------------------------------------------------------------ *)
(* Wire codec *)

let wire_sampled_roundtrip () =
  (match
     Wire.decode_request
       (Wire.encode_request ~version:2 ~id:41 (sampled_request ()))
   with
  | Ok (id, _, req') ->
      check_int "rid echoed" 41 id;
      check "request roundtrips on v2" true
        (Wire.equal_request (sampled_request ()) req')
  | Error m -> Alcotest.failf "request decode: %s" m);
  List.iter
    (fun resp ->
      match Wire.decode_response (Wire.encode_response ~version:2 resp) with
      | Ok (_, _, resp') ->
          check "response roundtrips on v2" true
            (Wire.equal_response resp resp')
      | Error m -> Alcotest.failf "response decode: %s" m)
    [ accept_reply; escalated_reply ]

let wire_sampled_v1_rejected () =
  (* the version gate fires before any field is read, so any payload
     presented as v1 under tag 0x0D must be refused — the same
     contract Verify_partition pins for 0x0B *)
  match Wire.decode_request_payload ~version:1 ~tag:0x0D "" with
  | Error m -> check "v1 rejection is explained" true (String.length m > 0)
  | Ok _ -> Alcotest.fail "a v1 Verify_sampled frame decoded"

let wire_sampled_truncation () =
  let sweep what decode frame =
    for i = 0 to String.length frame - 1 do
      match decode (String.sub frame 0 i) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s: truncation at %d bytes accepted" what i
    done;
    check (what ^ ": trailing byte rejected") true
      (Result.is_error (decode (frame ^ "\x00")))
  in
  sweep "request" Wire.decode_request
    (Wire.encode_request ~version:2 ~id:3 (sampled_request ()));
  sweep "response" Wire.decode_response
    (Wire.encode_response ~version:2 escalated_reply)

(* Locate a field inside an encoded frame by diffing two encodings
   that differ only in that field, then corrupt it in place. *)
let first_diff a b =
  let rec go i =
    if i >= String.length a then Alcotest.fail "encodings identical"
    else if a.[i] <> b.[i] then i
    else go (i + 1)
  in
  go 0

let wire_sampled_bad_fields () =
  (* encoding guards are caller bugs: they raise *)
  check "negative seed raises" true
    (match
       Wire.encode_request ~version:2 (sampled_request ~seed:(-1) ())
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check "zero queries raises" true
    (match
       Wire.encode_request ~version:2 (sampled_request ~queries:0 ())
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check "oversized queries raises" true
    (match
       Wire.encode_request ~version:2 (sampled_request ~queries:0x10000 ())
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* wire input with the seed's sign bit set is a typed error: the
     seed is a u64 whose top bit cannot land in a 63-bit OCaml int *)
  let f0 = Wire.encode_request ~version:2 ~id:1 (sampled_request ~seed:0 ()) in
  let f1 = Wire.encode_request ~version:2 ~id:1 (sampled_request ~seed:1 ()) in
  let last = first_diff f0 f1 in
  (* seeds 0 and 1 differ exactly in the final byte of the big-endian
     u64, so the field starts 7 bytes earlier *)
  let evil = Bytes.of_string f0 in
  Bytes.set evil (last - 7) '\xff';
  (match Wire.decode_request (Bytes.to_string evil) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "sign-bit seed decoded");
  (* a zero query bound coming *from* the wire is also typed *)
  let q1 = Wire.encode_request ~version:2 ~id:1 (sampled_request ~queries:1 ()) in
  let q2 = Wire.encode_request ~version:2 ~id:1 (sampled_request ~queries:2 ()) in
  let qlast = first_diff q1 q2 in
  let zeroed = Bytes.of_string q1 in
  Bytes.set zeroed qlast '\x00';
  match Wire.decode_request (Bytes.to_string zeroed) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero query bound decoded"

let wire_sampled_reply_invariants () =
  (* the decoder refuses replies whose flags contradict the escalation
     protocol; bool bytes live right after the 8-byte v2 id *)
  let corrupt frame i v =
    let b = Bytes.of_string frame in
    Bytes.set b (8 + 8 + i) v;
    Bytes.to_string b
  in
  let expect_reject what frame =
    match Wire.decode_response frame with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: contradictory reply decoded" what
  in
  let accept_frame = Wire.encode_response ~version:2 ~id:0 accept_reply in
  let escalated_frame =
    Wire.encode_response ~version:2 ~id:0 escalated_reply
  in
  expect_reject "escalation on a sampled accept" (corrupt accept_frame 1 '\x01');
  expect_reject "sampled accept downgraded without escalation"
    (corrupt accept_frame 2 '\x00');
  expect_reject "accepted verdict with rejecting ids"
    (corrupt escalated_frame 2 '\x01');
  expect_reject "rejecting sample over the 64-id cap"
    (Wire.encode_response ~version:2
       (Wire.Sampled_verified
          {
            sampled_accept = false;
            escalated = true;
            accepted = false;
            bits_read = 1;
            nodes = 65;
            rejecting = List.init 65 Fun.id;
          }))

(* ------------------------------------------------------------------ *)
(* Determinism and the query budget *)

let sampled_run_deterministic_across_jobs () =
  List.iter
    (fun (name, rs) ->
      let inst = instance_for name in
      let compiled = Simulator.compile inst in
      let honest = proof_for rs inst in
      let corrupt =
        Proof.map
          (fun _ b -> Bits.of_bools (List.init (Bits.length b) (fun _ -> true)))
          honest
      in
      List.iter
        (fun proof ->
          let run jobs =
            Randomized_scheme.run ~jobs ~collect_reads:true rs compiled proof
              ~seed:0xBEEF ~queries:rs.Randomized_scheme.queries
          in
          let a = run 1 and b = run 4 in
          check (name ^ ": verdict independent of jobs") true
            (a.Randomized_scheme.accepted = b.Randomized_scheme.accepted);
          check (name ^ ": rejecting set independent of jobs") true
            (a.Randomized_scheme.rejecting = b.Randomized_scheme.rejecting);
          check_int
            (name ^ ": bits read independent of jobs")
            a.Randomized_scheme.bits_read b.Randomized_scheme.bits_read;
          check (name ^ ": identical charged-read log") true
            (a.Randomized_scheme.reads = b.Randomized_scheme.reads))
        [ honest; corrupt ])
    Sampled.all

let probe_nodes_deterministic () =
  let rs = Sampled.bipartite in
  let compiled = Simulator.compile (Instance.of_graph (Builders.cycle 120)) in
  let p1 = Randomized_scheme.probe_nodes rs compiled ~seed:5 in
  let p2 = Randomized_scheme.probe_nodes rs compiled ~seed:5 in
  check "probe set is a pure function of the seed" true (p1 = p2);
  let p3 = Randomized_scheme.probe_nodes rs compiled ~seed:6 in
  check "different seeds draw different probe sets" true (p1 <> p3);
  check_int "probe width honoured" rs.Randomized_scheme.probes
    (Array.length p1);
  (* a graph at most twice the probe width is checked exhaustively *)
  let small = Simulator.compile (Instance.of_graph (Builders.cycle 8)) in
  check_int "small graphs probe every node" 8
    (Array.length (Randomized_scheme.probe_nodes rs small ~seed:5))

let budget_exceeded_is_hard () =
  (* a verifier spending past its declared bound is a scheme bug: the
     counting view raises instead of returning a verdict *)
  let greedy =
    Randomized_scheme.make ~base:Bipartite_scheme.scheme ~epsilon:0.5
      ~queries:1 ~probes:0 ~sampled_verifier:(fun qv ->
        let c = Qview.centre qv in
        ignore (Qview.proof_cell qv c);
        ignore (Qview.proof_cell qv c);
        true)
  in
  let inst = Instance.of_graph (Builders.cycle 6) in
  let compiled = Simulator.compile inst in
  let proof = proof_for Sampled.bipartite inst in
  check "over-budget read raises" true
    (match
       Randomized_scheme.run greedy compiled proof ~seed:1 ~queries:1
     with
    | exception Qview.Budget_exceeded _ -> true
    | _ -> false)

let qview_accounting () =
  let inst = Instance.of_graph (Builders.cycle 6) in
  let compiled = Simulator.compile inst in
  let proof = proof_for Sampled.bipartite inst in
  let view = Simulator.view_at compiled proof ~radius:1 0 in
  let qv = Qview.make view ~seed:3 ~queries:4 in
  check_int "fresh view spent nothing" 0 (Qview.units_spent qv);
  ignore (Qview.proof_bit qv 0 0);
  check_int "one unit per bit read" 1 (Qview.units_spent qv);
  check_int "one bit obtained" 1 (Qview.bits_read qv);
  let cell = Qview.proof_cell qv 1 in
  check_int "two units after a cell" 2 (Qview.units_spent qv);
  check_int "cells add their length" (1 + Bits.length cell)
    (Qview.bits_read qv);
  check_int "units left" 2 (Qview.units_left qv);
  check_int "read log has both entries" 2 (List.length (Qview.reads qv));
  (* structure stays free *)
  ignore (Qview.neighbours qv);
  ignore (Qview.degree qv);
  ignore (Qview.my_label qv);
  check_int "structural reads cost nothing" 2 (Qview.units_spent qv)

(* ------------------------------------------------------------------ *)
(* Completeness and the error budget *)

let sampled_variants_complete () =
  List.iter
    (fun (name, rs) ->
      let inst = instance_for name in
      let compiled = Simulator.compile inst in
      let proof = proof_for rs inst in
      List.iter
        (fun seed ->
          let o =
            Randomized_scheme.run rs compiled proof ~seed
              ~queries:rs.Randomized_scheme.queries
          in
          check (name ^ ": valid proofs always accepted") true
            o.Randomized_scheme.accepted;
          check (name ^ ": accepted runs report no rejectors") true
            (o.Randomized_scheme.rejecting = []);
          check (name ^ ": probed nodes counted") true
            (o.Randomized_scheme.nodes_checked > 0);
          check (name ^ ": charged bits counted") true
            (o.Randomized_scheme.bits_read > 0))
        [ 0; 1; 0xDEAD; max_int / 3 ])
    Sampled.all

let sampled_variants_within_budget () =
  List.iter
    (fun (name, rs) ->
      let e =
        Randomized_scheme.soundness rs (instance_for name) ~samples:200
          ~max_bits:4
      in
      check (name ^ ": forgeries were generated") true (e.Checker.trials = 200);
      check (name ^ ": most forgeries are invalid") true
        (e.Checker.invalid > 100);
      check
        (Printf.sprintf "%s: wilson lower bound %.4f within ε %g" name
           e.Checker.wilson_low rs.Randomized_scheme.epsilon)
        true
        (e.Checker.wilson_low <= rs.Randomized_scheme.epsilon))
    Sampled.all

let empirical_counts_job_independent () =
  let rs = Sampled.bipartite in
  let inst = instance_for "bipartite" in
  let measure jobs =
    Checker.soundness_empirical ~jobs rs.Randomized_scheme.base inst
      ~samples:120 ~max_bits:3
      ~sampled:(fun ~seed compiled proof ->
        (Randomized_scheme.run rs compiled proof ~seed
           ~queries:rs.Randomized_scheme.queries)
          .Randomized_scheme.accepted)
  in
  let a = measure 1 and b = measure 3 in
  check_int "trials independent of jobs" a.Checker.trials b.Checker.trials;
  check_int "invalid independent of jobs" a.Checker.invalid b.Checker.invalid;
  check_int "fooled independent of jobs" a.Checker.fooled b.Checker.fooled

let wilson_interval () =
  let low0, high0 = Checker.wilson ~fooled:0 ~invalid:0 in
  check "no data: vacuous interval" true (low0 = 0.0 && high0 = 1.0);
  let low, high = Checker.wilson ~fooled:0 ~invalid:400 in
  check "0/400: lower bound at zero" true (low = 0.0);
  check "0/400: upper bound is tight but positive" true
    (high > 0.0 && high < 0.02);
  let low1, high1 = Checker.wilson ~fooled:400 ~invalid:400 in
  check "400/400: upper bound at one" true (high1 > 0.98 && high1 <= 1.0);
  check "400/400: lower bound close to one" true (low1 > 0.95);
  let low_a, _ = Checker.wilson ~fooled:10 ~invalid:100 in
  let low_b, _ = Checker.wilson ~fooled:20 ~invalid:100 in
  check "interval moves with the rate" true (low_a < low_b);
  let l, h = Checker.wilson ~fooled:5 ~invalid:50 in
  check "interval brackets the point estimate" true (l < 0.1 && h > 0.1)

(* ------------------------------------------------------------------ *)
(* Daemon escalation path *)

let with_server config f =
  let t = Server.create { config with Server.port = 0 } in
  let th = Server.start t in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      Thread.join th)
    (fun () -> f t (Server.port t))

let with_client port f =
  match Client.connect ~port () with
  | Error m -> Alcotest.failf "connect: %s" m
  | Ok c -> Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let call c req =
  match Client.call c req with
  | Ok resp -> resp
  | Error m -> Alcotest.failf "call: transport error %s" m

let server_sampled_fast_path () =
  with_server { Server.default_config with jobs = 2; cache_size = 8 }
  @@ fun t port ->
  let g = Builders.cycle 16 in
  let g6 = Graph6.encode g in
  let inst = Instance.of_graph g in
  let rs = Sampled.bipartite in
  let honest = proof_for rs inst in
  let corrupt =
    Proof.map
      (fun _ b -> Bits.of_bools (List.init (Bits.length b) (fun _ -> true)))
      honest
  in
  let sampled ?(budget_id = "") proof =
    Wire.Verify_sampled
      { scheme = "bipartite"; graph6 = g6; proof; seed = 11; queries = 4;
        budget_id }
  in
  with_client port @@ fun c ->
  (* a valid proof rides the fast path: no escalation *)
  (match call c (sampled honest) with
  | Wire.Sampled_verified
      { sampled_accept; escalated; accepted; bits_read; nodes; rejecting } ->
      check "valid proof sampled-accepts" true sampled_accept;
      check "no escalation on accept" false escalated;
      check "final verdict accepts" true accepted;
      check "rejecting empty" true (rejecting = []);
      check "bits charged" true (bits_read > 0);
      check "nodes probed" true (nodes > 0)
  | Wire.Error_reply { message; _ } -> Alcotest.failf "fast path: %s" message
  | _ -> Alcotest.fail "fast path: unexpected reply");
  (* an all-ones corruption rejects at every node, so the sampled run
     must catch it and the escalation produce the exact verdict *)
  (match call c (sampled corrupt) with
  | Wire.Sampled_verified { sampled_accept; escalated; accepted; rejecting; _ }
    ->
      check "corruption sampled-rejects" false sampled_accept;
      check "rejection escalates" true escalated;
      check "full verdict rejects" false accepted;
      check "rejectors reported" true (rejecting <> [])
  | _ -> Alcotest.fail "escalation: unexpected reply");
  (* pinning the server's exact budget id is accepted; any other is a
     typed refusal *)
  (match call c (sampled ~budget_id:rs.Randomized_scheme.budget honest) with
  | Wire.Sampled_verified { accepted = true; _ } -> ()
  | _ -> Alcotest.fail "matching budget id refused");
  (match call c (sampled ~budget_id:"eps0.5:q9:m1" honest) with
  | Wire.Error_reply { code = Wire.Bad_request; _ } -> ()
  | _ -> Alcotest.fail "budget mismatch must be Bad_request");
  (* a registered scheme without a sampled variant is Bad_request; an
     unknown scheme stays Unknown_scheme *)
  (match
     call c
       (Wire.Verify_sampled
          { scheme = "eulerian"; graph6 = g6; proof = Proof.empty; seed = 1;
            queries = 4; budget_id = "" })
   with
  | Wire.Error_reply { code = Wire.Bad_request; _ } -> ()
  | _ -> Alcotest.fail "unsampled scheme must be Bad_request");
  (match
     call c
       (Wire.Verify_sampled
          { scheme = "no-such"; graph6 = g6; proof = Proof.empty; seed = 1;
            queries = 4; budget_id = "" })
   with
  | Wire.Error_reply { code = Wire.Unknown_scheme; _ } -> ()
  | _ -> Alcotest.fail "unknown scheme must stay typed");
  (* counters: 3 served sampled verifications (the two typed refusals
     never reached the verifier), exactly 1 escalation *)
  let st = Server.stats t in
  check_int "sampled requests counted" 3 st.Server.sampled_requests;
  check_int "escalations counted" 1 st.Server.sampled_escalations;
  check "bits accounted" true (st.Server.sampled_bits_read > 0);
  (* the same counters are on the exposition the CI scraper checks *)
  match call c Wire.Metrics_text with
  | Wire.Metrics_text_reply text ->
      List.iter
        (fun family ->
          check (family ^ " exported") true
            (let re = family in
             let found = ref false in
             List.iter
               (fun line ->
                 if
                   String.length line >= String.length re
                   && String.sub line 0 (String.length re) = re
                 then found := true)
               (String.split_on_char '\n' text);
             !found))
        [
          "lcp_sampled_requests_total";
          "lcp_sampled_escalations_total";
          "lcp_sampled_bits_read_total";
          "lcp_sampled_error_budget";
        ]
  | _ -> Alcotest.fail "metrics scrape failed"

(* ------------------------------------------------------------------ *)
(* BENCH_lcp.json section merge *)

let json_merge_objects () =
  let parse s =
    match Obs.Json.parse s with
    | Ok v -> v
    | Error m -> Alcotest.failf "fixture parse: %s" m
  in
  let old =
    parse "{\"bench\":\"lcp\",\"partition\":{\"rows\":[1,2]},\"smoke\":true}"
  in
  let fresh = parse "{\"bench\":\"lcp\",\"randomized\":{\"ok\":true},\"smoke\":false}" in
  let merged = Obs.Json.merge_objects ~old ~fresh in
  (match merged with
  | Obs.Json.Obj kvs ->
      check "fresh keys first, old-only appended" true
        (List.map fst kvs = [ "bench"; "randomized"; "smoke"; "partition" ]);
      check "fresh wins on conflict" true
        (List.assoc "smoke" kvs = Obs.Json.Bool false);
      check "old-only section preserved" true
        (List.mem_assoc "partition" kvs)
  | _ -> Alcotest.fail "merge of two objects is an object");
  (* replacement is wholesale, never recursive *)
  let old2 = parse "{\"partition\":{\"rows\":[1,2],\"old\":1}}" in
  let fresh2 = parse "{\"partition\":{\"rows\":[3]}}" in
  (match Obs.Json.merge_objects ~old:old2 ~fresh:fresh2 with
  | Obs.Json.Obj [ ("partition", p) ] ->
      check "section replaced wholesale" true (p = parse "{\"rows\":[3]}")
  | _ -> Alcotest.fail "wholesale replacement");
  (* a corrupt old document degrades to the fresh one *)
  check "non-object old yields fresh" true
    (Obs.Json.merge_objects ~old:(Obs.Json.Str "junk") ~fresh = fresh);
  check "non-object fresh yields fresh" true
    (Obs.Json.merge_objects ~old ~fresh:Obs.Json.Null = Obs.Json.Null);
  (* round trip through the writer stays parseable and keeps values *)
  match Obs.Json.parse (Obs.Json.to_string merged) with
  | Ok reread -> check "merged document round-trips" true (reread = merged)
  | Error m -> Alcotest.failf "merged document unparseable: %s" m

let suite =
  ( "randomized",
    [
      Alcotest.test_case "wire: sampled frames roundtrip" `Quick
        wire_sampled_roundtrip;
      Alcotest.test_case "wire: v1 Verify_sampled rejected" `Quick
        wire_sampled_v1_rejected;
      Alcotest.test_case "wire: truncation and trailing bytes" `Quick
        wire_sampled_truncation;
      Alcotest.test_case "wire: seed and query field validation" `Quick
        wire_sampled_bad_fields;
      Alcotest.test_case "wire: reply invariants enforced" `Quick
        wire_sampled_reply_invariants;
      Alcotest.test_case "sampled run deterministic across jobs" `Quick
        sampled_run_deterministic_across_jobs;
      Alcotest.test_case "probe set pure in the seed" `Quick
        probe_nodes_deterministic;
      Alcotest.test_case "query budget is a hard failure" `Quick
        budget_exceeded_is_hard;
      Alcotest.test_case "qview charges reads, structure free" `Quick
        qview_accounting;
      Alcotest.test_case "catalog variants: exact completeness" `Quick
        sampled_variants_complete;
      Alcotest.test_case "catalog variants: within error budget" `Quick
        sampled_variants_within_budget;
      Alcotest.test_case "empirical counts independent of jobs" `Quick
        empirical_counts_job_independent;
      Alcotest.test_case "wilson score interval" `Quick wilson_interval;
      Alcotest.test_case "server: fast path, escalation, counters" `Quick
        server_sampled_fast_path;
      Alcotest.test_case "json: section merge for BENCH_lcp" `Quick
        json_merge_objects;
    ] )
