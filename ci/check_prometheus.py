#!/usr/bin/env python3
"""Validate a Prometheus text-exposition (v0.0.4) file.

Every non-comment line must parse as `name[{labels}] value`; HELP/TYPE
preambles must name a metric that actually appears, and TYPE must be
one of the spec's kinds. Optionally assert a counter's value, and that
specific metrics are present at all:

    check_prometheus.py FILE [--counter-at-least NAME MIN]
                             [--require NAME]...

Used by CI against both the bench --prom export and a live scrape of
`lcp serve --http-port`.
"""

import re
import sys

NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
VALUE = r"(?:[-+]?(?:\d+(?:\.\d+)?|\.\d+)(?:[eE][-+]?\d+)?|[-+]?Inf|NaN)"
SAMPLE = re.compile(rf"^({NAME})(?:\{{{LABEL}(?:,{LABEL})*\}})? {VALUE}$")
HELP = re.compile(rf"^# HELP ({NAME}) .*$")
TYPE = re.compile(rf"^# TYPE ({NAME}) (counter|gauge|histogram|summary|untyped)$")


def main():
    args = sys.argv[1:]
    if not args:
        sys.exit(__doc__)
    path = args[0]
    want_counter = None
    required = []
    i = 1
    while i < len(args):
        if args[i] == "--counter-at-least" and i + 2 < len(args):
            want_counter = (args[i + 1], float(args[i + 2]))
            i += 3
        elif args[i] == "--require" and i + 1 < len(args):
            required.append(args[i + 1])
            i += 2
        else:
            sys.exit(f"unknown or incomplete argument: {args[i]}")

    declared, seen, samples = set(), set(), {}
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("#"):
                m = HELP.match(line) or TYPE.match(line)
                if not m:
                    sys.exit(f"{path}:{lineno}: malformed comment: {line!r}")
                declared.add(m.group(1))
                continue
            m = SAMPLE.match(line)
            if not m:
                sys.exit(f"{path}:{lineno}: malformed sample: {line!r}")
            name = m.group(1)
            seen.add(name)
            if name not in samples:
                samples[name] = float(line.split()[-1])

    if not seen:
        sys.exit(f"{path}: no samples at all")
    # every HELP/TYPE must be followed by at least one sample of that
    # metric (histogram/summary samples carry _bucket/_sum/... suffixes)
    for name in declared:
        if not any(s == name or s.startswith(name + "_") for s in seen):
            sys.exit(f"{path}: declared but never sampled: {name}")

    for name in required:
        if name not in seen:
            sys.exit(f"{path}: required metric missing: {name}")

    if want_counter is not None:
        name, least = want_counter
        if name not in samples:
            sys.exit(f"{path}: counter {name} missing")
        if samples[name] < least:
            sys.exit(f"{path}: {name} = {samples[name]}, expected >= {least}")

    print(f"{path}: {len(seen)} metrics, all lines valid")


if __name__ == "__main__":
    main()
