(** Structured logs: one JSON object per line, mutex-serialised,
    sampled under load.

    The writer takes a flat field list and adds only a monotonic
    [ts_ns] timestamp (comparable with {!Trace} spans) and sampling
    bookkeeping: with [max_per_sec] set, at most that many lines are
    written in any one wall second; excess lines are dropped, counted,
    and the next line that gets through carries a ["dropped_before"]
    count plus a ["dropped_since_ns"] timestamp (the first dropped
    line's clock) so a reader can see the gap — and place it, even
    after merging logs from several processes. A request log therefore
    degrades gracefully into a sample when the service is saturated
    instead of making the log device the bottleneck. *)

type t

type field =
  | Int of int
  | Float of float  (** non-finite values render as [null] *)
  | Str of string
  | Bool of bool

val to_file : ?max_per_sec:int -> string -> t
(** Truncate-and-open [path]. [max_per_sec <= 0] (the default) writes
    every line. *)

val to_stderr : ?max_per_sec:int -> unit -> t

val write : ?now_ns:int -> t -> (string * field) list -> bool
(** Append one line; returns [false] when the line was sampled out (or
    the sink is closed). Lines are flushed immediately — a crash loses
    at most the line being formatted. *)

val dropped : t -> int
(** Total lines sampled out so far. *)

val close : t -> unit
(** Flush, and close the channel if {!to_file} opened it. Idempotent;
    subsequent {!write}s return [false]. *)
