(** Continuous wall-clock profiling: a dedicated sampler thread polls
    every domain's active-span stack (see {!Trace.stack_snapshot}) at
    a configurable rate, folds the observed stacks into a weighted
    attribution tree, and tracks GC/runtime telemetry alongside —
    minor/major collections, promoted words, heap size, and a rolling
    allocation-rate window. A second, exact channel attributes
    per-request CPU time and allocation deltas to the request's scheme
    label via {!account}.

    Everything is off by default. When off, the only residue at an
    instrumented site is a single [bool ref] check ({!Trace.stacks_on}
    inside the [span*] entry points, [!enabled] around {!account}
    bracketing); no thread exists and no memory beyond the empty
    tables is held. When on, the sampler costs one stack walk per
    domain per tick — at the default 97 Hz that is well under 1% of
    one core.

    Sampling weights are statistical (a stack observed at tick t is
    charged 1/hz seconds), so the attribution tree converges on the
    true time split as samples accumulate; 97 Hz is deliberately prime
    to avoid aliasing with millisecond-periodic work. *)

val enabled : bool ref
(** Master switch. Flipped by {!start}/{!stop}; tests may set it
    directly (with {!Trace.stacks_on}) to drive {!sample_now} without
    a sampler thread. *)

val start : ?hz:int -> unit -> unit
(** Enable profiling and spawn the sampler thread at [hz] (default 97,
    clamped to >= 1) polls per second. Idempotent while running. *)

val stop : unit -> unit
(** Stop the sampler thread (joins it, so at most one tick late),
    clear {!Trace.stacks_on} and disable. Accumulated samples and
    scheme accounts survive until {!reset}. *)

val reset : unit -> unit
(** Drop all accumulated samples, scheme accounts and GC baselines. *)

val sample_now : unit -> unit
(** Take one sampling tick synchronously: snapshot every domain's
    active-span stack into the attribution table and update the GC
    telemetry. The sampler thread calls this; tests call it directly
    for deterministic counts. *)

val hz : unit -> int
(** The configured sampling rate (what one sample is worth). *)

val samples : unit -> int
(** Total sampling ticks taken ([lcp_profile_samples_total]). *)

val stack_samples : unit -> int
(** Non-idle stack observations folded into the attribution tree
    (<= ticks × domains). *)

val account : scheme:string -> cpu_ns:int -> alloc_bytes:float -> unit
(** Attribute one request's measured CPU time and allocation delta to
    [scheme] — the exact (non-sampled) channel, called from the pool
    worker with [Gc.allocated_bytes] bracketing. No-op when disabled. *)

val schemes : unit -> (string * int * float * int) list
(** Per-scheme accounts, sorted by descending CPU:
    [(scheme, cpu_ns, alloc_bytes, requests)]. *)

val collapsed : unit -> string
(** The attribution tree as collapsed-stack text — one
    ["frame;frame;frame count"] line per distinct stack, sorted by
    descending count — ready for [flamegraph.pl] or speedscope. *)

val speedscope : unit -> string
(** The attribution tree as a speedscope-compatible JSON document
    ("sampled" profile, nanosecond weights at 1/hz per sample). *)

val export_string : unit -> string
(** The full profile as one JSON object — the
    {!Wire.request.Profile_export} reply body:
    [{"process","hz","samples","stack_samples","gc":{...},
    "schemes":[...],"collapsed":"...","speedscope":{...}}].
    Valid (with zero samples) even when profiling is off, so the wire
    endpoint always answers. *)

val exposition : Export.t -> unit
(** Append the GC/runtime telemetry ([lcp_gc_*]: collections,
    promoted words, allocated bytes, heap size, plus a 10 s windowed
    allocation rate when sampling), the profiler meta-counters
    ([lcp_profile_samples_total], [lcp_profile_stack_samples_total])
    and the per-scheme cost families ([lcp_scheme_cpu_ns_total],
    [lcp_scheme_alloc_bytes_total], [lcp_scheme_requests_total],
    labelled by scheme) to a Prometheus exposition. GC telemetry is
    live [Gc.quick_stat] — present and correct even when the sampler
    is off, so dashboards and [lcp top] can always read it. *)

val spool : dir:string -> string
(** Write {!export_string} to [dir/profile-<process>.json] (creating
    [dir], mkdir -p) and return the path — the [--profile-dir] exit
    hook, mirroring {!Trace.spool}. *)
