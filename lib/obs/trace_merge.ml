(* Joining per-process trace spools into one timeline.

   Each spool is a Chrome trace-event JSON written by {!Trace} — its
   timestamps are microseconds since *that process's* tracing epoch,
   so the files cannot be overlaid directly and the machines are not
   assumed NTP-disciplined. The aligner instead exploits the parent
   links the wire context gives us: when an event in file B declares a
   parent span that lives in file A, the child's interval (a backend's
   server.request) is bracketed by the parent's (the router's
   upstream-call span, which timed the request/response round trip on
   its own clock). Midpoint-matching the two intervals is the classic
   symmetric-delay estimate; the median over every such link of a
   process pair cancels queueing noise, and a BFS over the pair graph
   chains offsets for processes that never talk to each other
   directly (loadgen and backend both anchor to the router). *)

type event = {
  e_name : string;
  ph : string;
  ts : float;  (* us, in the source file's clock *)
  dur : float;
  tid : int;
  file : int;
  trace : string;  (* 32-hex trace id, or "" for untraced events *)
  span : int;
  parent : int;
  extra : (string * Json.t) list;  (* args minus the tracing keys *)
}

type spool = { p_name : string; sp_events : event list }

type stats = {
  events : int;
  processes : (string * float) list;
      (* lane name, clock offset applied (us, relative to the first file) *)
  traces : int;
  cross_process : int;  (* trace ids seen in >= 2 processes *)
  max_lanes : int;  (* most processes sharing one trace id *)
}

let num ?(default = 0.) j key =
  match Option.bind (Json.member key j) Json.to_float_opt with
  | Some v -> v
  | None -> default

let str ?(default = "") j key =
  match Option.bind (Json.member key j) Json.to_string_opt with
  | Some v -> v
  | None -> default

let parse_spool ~file ~fallback_name content =
  match Json.parse content with
  | Error m -> Error (Printf.sprintf "%s: %s" fallback_name m)
  | Ok j ->
      let p_name =
        match Option.bind (Json.member "process" j) Json.to_string_opt with
        | Some n -> n
        | None -> fallback_name
      in
      let raw =
        match Option.bind (Json.member "traceEvents" j) Json.to_list with
        | Some l -> l
        | None -> []
      in
      let parse_event ev =
        let args =
          match Json.member "args" ev with Some (Json.Obj kvs) -> kvs | _ -> []
        in
        let tracing_key k = k = "trace" || k = "span" || k = "parent" in
        {
          e_name = str ev "name";
          ph = str ~default:"X" ev "ph";
          ts = num ev "ts";
          dur = num ev "dur";
          tid = int_of_float (num ev "tid");
          file;
          trace = str (Json.Obj args) "trace";
          span = int_of_float (num (Json.Obj args) "span");
          parent = int_of_float (num (Json.Obj args) "parent");
          extra = List.filter (fun (k, _) -> not (tracing_key k)) args;
        }
      in
      Ok { p_name; sp_events = List.map parse_event raw }

(* --- clock alignment --------------------------------------------------- *)

let median l =
  let a = Array.of_list l in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then 0.
  else if n mod 2 = 1 then a.(n / 2)
  else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

(* Offsets per file such that [ts + offset.(file)] puts every event on
   file 0's clock (or its connected component's root). *)
let estimate_offsets ~n_files (all : event list) =
  let span_home = Hashtbl.create 1024 in
  List.iter
    (fun e ->
      if e.span <> 0 then
        Hashtbl.replace span_home e.span (e.file, e.ts +. (e.dur /. 2.)))
    all;
  (* samples.(child).(parent) = list of (parent_mid - child_mid) *)
  let samples = Hashtbl.create 16 in
  List.iter
    (fun e ->
      if e.parent <> 0 then
        match Hashtbl.find_opt span_home e.parent with
        | Some (pf, pmid) when pf <> e.file ->
            let key = (e.file, pf) in
            let mid = e.ts +. (e.dur /. 2.) in
            let prev =
              match Hashtbl.find_opt samples key with Some l -> l | None -> []
            in
            Hashtbl.replace samples key ((pmid -. mid) :: prev)
        | _ -> ())
    all;
  let edges = Hashtbl.fold (fun k l acc -> (k, median l) :: acc) samples [] in
  let offset = Array.make n_files 0. in
  let known = Array.make n_files false in
  (* BFS the pair graph, seeding each still-unknown component at its
     lowest file index so disconnected spools stay on their own clock
     rather than inheriting garbage. *)
  for root = 0 to n_files - 1 do
    if not known.(root) then begin
      known.(root) <- true;
      let frontier = ref [ root ] in
      while !frontier <> [] do
        let next = ref [] in
        List.iter
          (fun f ->
            List.iter
              (fun ((child, parent), delta) ->
                (* ts_child + delta ≈ ts on the parent file's clock *)
                if parent = f && not known.(child) then begin
                  known.(child) <- true;
                  offset.(child) <- offset.(f) +. delta;
                  next := child :: !next
                end;
                if child = f && not known.(parent) then begin
                  known.(parent) <- true;
                  offset.(parent) <- offset.(f) -. delta;
                  next := parent :: !next
                end)
              edges)
          !frontier;
        frontier := !next
      done
    end
  done;
  offset

(* --- merged output ----------------------------------------------------- *)

let render_merged spools offsets events =
  let b = Buffer.create 65536 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b "\n "
  in
  Array.iteri
    (fun i (sp : spool) ->
      sep ();
      Printf.bprintf b
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
        (i + 1)
        (Json.escape sp.p_name))
    spools;
  List.iter
    (fun e ->
      sep ();
      Printf.bprintf b "{\"name\":\"%s\",\"cat\":\"lcp\",\"ph\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f"
        (Json.escape e.e_name) (Json.escape e.ph) (e.file + 1) e.tid
        (e.ts +. offsets.(e.file));
      if e.ph = "X" then Printf.bprintf b ",\"dur\":%.3f" e.dur;
      if e.extra <> [] || e.trace <> "" then begin
        Buffer.add_string b ",\"args\":{";
        let first_arg = ref true in
        let comma () =
          if !first_arg then first_arg := false else Buffer.add_char b ','
        in
        List.iter
          (fun (k, v) ->
            comma ();
            Printf.bprintf b "\"%s\":" (Json.escape k);
            Json.to_buffer b v)
          e.extra;
        if e.trace <> "" then begin
          comma ();
          Printf.bprintf b "\"trace\":\"%s\",\"span\":%d,\"parent\":%d"
            (Json.escape e.trace) e.span e.parent
        end;
        Buffer.add_string b "}"
      end;
      Buffer.add_char b '}')
    events;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let compute_stats spools offsets events =
  let lanes = Hashtbl.create 64 in
  List.iter
    (fun e ->
      if e.trace <> "" then begin
        let set =
          match Hashtbl.find_opt lanes e.trace with
          | Some s -> s
          | None ->
              let s = Hashtbl.create 4 in
              Hashtbl.replace lanes e.trace s;
              s
        in
        Hashtbl.replace set e.file ()
      end)
    events;
  let traces = Hashtbl.length lanes in
  let cross = ref 0 and max_lanes = ref 0 in
  Hashtbl.iter
    (fun _ set ->
      let n = Hashtbl.length set in
      if n >= 2 then incr cross;
      if n > !max_lanes then max_lanes := n)
    lanes;
  {
    events = List.length events;
    processes =
      Array.to_list (Array.mapi (fun i sp -> (sp.p_name, offsets.(i))) spools);
    traces;
    cross_process = !cross;
    max_lanes = !max_lanes;
  }

let merge ?trace_id files =
  let rec parse_all i acc = function
    | [] -> Ok (List.rev acc)
    | (name, content) :: rest -> (
        match parse_spool ~file:i ~fallback_name:name content with
        | Error _ as e -> e
        | Ok sp -> parse_all (i + 1) (sp :: acc) rest)
  in
  match parse_all 0 [] files with
  | Error m -> Error m
  | Ok spool_list ->
      let spools = Array.of_list spool_list in
      let all = List.concat_map (fun sp -> sp.sp_events) spool_list in
      let offsets = estimate_offsets ~n_files:(Array.length spools) all in
      let kept =
        match trace_id with
        | None -> all
        | Some id ->
            let id = String.lowercase_ascii id in
            List.filter (fun e -> String.lowercase_ascii e.trace = id) all
      in
      let kept =
        List.stable_sort
          (fun a b ->
            compare (a.ts +. offsets.(a.file)) (b.ts +. offsets.(b.file)))
          kept
      in
      Ok (render_merged spools offsets kept, compute_stats spools offsets kept)

let pp_stats oc st =
  Printf.fprintf oc
    "merged %d events from %d processes: %d traces, %d cross-process, max %d lanes\n"
    st.events
    (List.length st.processes)
    st.traces st.cross_process st.max_lanes;
  List.iter
    (fun (name, off) ->
      Printf.fprintf oc "  lane %-24s clock offset %+.1f us\n" name off)
    st.processes
