(* Poll-based wall-clock profiler over the active-span stacks that
   [Trace] maintains per domain. One mutex serialises the sampler
   tick, the per-scheme accounting and the exporters — all of them are
   rare (hz per second, one per request, one per scrape) next to the
   request path, which never touches this module beyond the
   [Trace.stacks_on] flag and the [account] bracketing. *)

let enabled = ref false
let hz_ref = ref 97
let hz () = max 1 !hz_ref

let word_bytes = float_of_int (Sys.word_size / 8)

let mu = Mutex.create ()

(* Distinct observed stacks -> sample count, keyed by the collapsed
   rendering ("outer;inner;leaf"). The tree shape is recoverable from
   the keys, so we never materialise tree nodes. *)
let table : (string, int ref) Hashtbl.t = Hashtbl.create 64
let ticks = ref 0
let stack_count = ref 0

(* Exact per-scheme accounts, fed by [account] from the pool worker. *)
type acc = { mutable cpu_ns : int; mutable alloc : float; mutable n : int }

let scheme_table : (string, acc) Hashtbl.t = Hashtbl.create 16

(* Allocation-rate window: the sampler records the delta of
   domain-aggregate allocated bytes between ticks into a 60 s window,
   so the exposition can report a rolling bytes/s gauge. *)
let alloc_window = Window.create ~horizon:60 ~counters:1 ()
let last_alloc = ref (-1.0)

let allocated_bytes_of (st : Gc.stat) =
  (st.Gc.minor_words +. st.Gc.major_words -. st.Gc.promoted_words) *. word_bytes

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let sample_now () =
  let now = Clock.now_ns () in
  locked @@ fun () ->
  incr ticks;
  for id = 0 to Trace.max_stack_domains - 1 do
    let frames = Trace.stack_snapshot id in
    if Array.length frames > 0 then begin
      let key = String.concat ";" (Array.to_list frames) in
      (match Hashtbl.find_opt table key with
      | Some r -> incr r
      | None -> Hashtbl.add table key (ref 1));
      incr stack_count
    end
  done;
  let alloc = allocated_bytes_of (Gc.quick_stat ()) in
  if !last_alloc >= 0.0 then begin
    let d = alloc -. !last_alloc in
    if d > 0.0 then Window.add ~now_ns:now alloc_window 0 (int_of_float d)
  end;
  last_alloc := alloc

let samples () = locked @@ fun () -> !ticks
let stack_samples () = locked @@ fun () -> !stack_count

let account ~scheme ~cpu_ns ~alloc_bytes =
  if !enabled then
    locked @@ fun () ->
    match Hashtbl.find_opt scheme_table scheme with
    | Some a ->
        a.cpu_ns <- a.cpu_ns + cpu_ns;
        a.alloc <- a.alloc +. alloc_bytes;
        a.n <- a.n + 1
    | None ->
        Hashtbl.add scheme_table scheme
          { cpu_ns = cpu_ns; alloc = alloc_bytes; n = 1 }

let schemes () =
  let rows =
    locked @@ fun () ->
    Hashtbl.fold
      (fun s a l -> (s, a.cpu_ns, a.alloc, a.n) :: l)
      scheme_table []
  in
  List.sort
    (fun (s1, c1, _, _) (s2, c2, _, _) ->
      match compare c2 c1 with 0 -> compare s1 s2 | c -> c)
    rows

let reset () =
  locked @@ fun () ->
  Hashtbl.reset table;
  Hashtbl.reset scheme_table;
  ticks := 0;
  stack_count := 0;
  last_alloc := -1.0

(* --- sampler thread -------------------------------------------------- *)

let running = ref false
let sampler : Thread.t option ref = ref None

let rec loop () =
  if !running then begin
    sample_now ();
    Thread.delay (1.0 /. float_of_int (hz ()));
    loop ()
  end

let start ?(hz = 97) () =
  if not !enabled then begin
    hz_ref := max 1 hz;
    enabled := true;
    Trace.stacks_on := true;
    running := true;
    sampler := Some (Thread.create loop ())
  end

let stop () =
  if !enabled then begin
    running := false;
    enabled := false;
    Trace.stacks_on := false;
    (match !sampler with Some t -> Thread.join t | None -> ());
    sampler := None
  end

(* --- exports --------------------------------------------------------- *)

(* Distinct stacks sorted by descending weight, heaviest first, ties
   broken lexically so exports are deterministic. *)
let sorted_stacks () =
  let rows =
    locked @@ fun () -> Hashtbl.fold (fun k r l -> (k, !r) :: l) table []
  in
  List.sort
    (fun (k1, c1) (k2, c2) ->
      match compare c2 c1 with 0 -> compare k1 k2 | c -> c)
    rows

let collapsed () =
  let b = Buffer.create 1024 in
  List.iter
    (fun (k, c) -> Printf.bprintf b "%s %d\n" k c)
    (sorted_stacks ());
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let ns_per_sample () = 1_000_000_000 / hz ()

(* Speedscope "sampled" profile: one entry per distinct stack (frame
   indices into a shared frame table, outermost first), weighted by
   sample count x the sampling period in nanoseconds. *)
let speedscope_into b =
  let stacks = sorted_stacks () in
  let frame_ids : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let frames = Buffer.create 256 in
  let n_frames = ref 0 in
  let frame_id name =
    match Hashtbl.find_opt frame_ids name with
    | Some i -> i
    | None ->
        let i = !n_frames in
        incr n_frames;
        Hashtbl.add frame_ids name i;
        if i > 0 then Buffer.add_char frames ',';
        Printf.bprintf frames "{\"name\":\"%s\"}" (json_escape name);
        i
  in
  let samples = Buffer.create 256 in
  let weights = Buffer.create 128 in
  let total = ref 0 in
  List.iteri
    (fun i (key, count) ->
      if i > 0 then begin
        Buffer.add_char samples ',';
        Buffer.add_char weights ','
      end;
      Buffer.add_char samples '[';
      List.iteri
        (fun j name ->
          if j > 0 then Buffer.add_char samples ',';
          Buffer.add_string samples (string_of_int (frame_id name)))
        (String.split_on_char ';' key);
      Buffer.add_char samples ']';
      let w = count * ns_per_sample () in
      total := !total + w;
      Buffer.add_string weights (string_of_int w))
    stacks;
  Printf.bprintf b
    "{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\",\"exporter\":\"lcp\",\"name\":\"%s\",\"shared\":{\"frames\":[%s]},\"profiles\":[{\"type\":\"sampled\",\"name\":\"%s\",\"unit\":\"nanoseconds\",\"startValue\":0,\"endValue\":%d,\"samples\":[%s],\"weights\":[%s]}]}"
    (json_escape !Trace.process)
    (Buffer.contents frames)
    (json_escape !Trace.process)
    !total (Buffer.contents samples) (Buffer.contents weights)

let speedscope () =
  let b = Buffer.create 2048 in
  speedscope_into b;
  Buffer.contents b

let gc_json () =
  let st = Gc.quick_stat () in
  Printf.sprintf
    "{\"minor_collections\":%d,\"major_collections\":%d,\"compactions\":%d,\"promoted_words\":%.0f,\"allocated_bytes\":%.0f,\"heap_bytes\":%.0f,\"top_heap_bytes\":%.0f}"
    st.Gc.minor_collections st.Gc.major_collections st.Gc.compactions
    st.Gc.promoted_words
    (allocated_bytes_of st)
    (float_of_int st.Gc.heap_words *. word_bytes)
    (float_of_int st.Gc.top_heap_words *. word_bytes)

let export_string () =
  let b = Buffer.create 4096 in
  Printf.bprintf b
    "{\"process\":\"%s\",\"enabled\":%b,\"hz\":%d,\"samples\":%d,\"stack_samples\":%d,\"gc\":%s,\"schemes\":["
    (json_escape !Trace.process)
    !enabled (hz ()) (samples ()) (stack_samples ()) (gc_json ());
  List.iteri
    (fun i (s, cpu, alloc, n) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "{\"scheme\":\"%s\",\"cpu_ns\":%d,\"alloc_bytes\":%.0f,\"requests\":%d}"
        (json_escape s) cpu alloc n)
    (schemes ());
  Printf.bprintf b "],\"collapsed\":\"%s\",\"speedscope\":"
    (json_escape (collapsed ()));
  speedscope_into b;
  Buffer.add_char b '}';
  Buffer.contents b

let exposition e =
  let st = Gc.quick_stat () in
  Export.counter e ~help:"minor GC collections" "gc.minor_collections"
    st.Gc.minor_collections;
  Export.counter e ~help:"major GC collections" "gc.major_collections"
    st.Gc.major_collections;
  Export.counter e ~help:"heap compactions" "gc.compactions" st.Gc.compactions;
  Export.counter e ~help:"words promoted from the minor heap"
    "gc.promoted_words"
    (int_of_float st.Gc.promoted_words);
  Export.counter e ~help:"bytes allocated since start" "gc.allocated_bytes"
    (int_of_float (allocated_bytes_of st));
  Export.gauge e ~help:"major heap size in bytes" "gc.heap_bytes"
    (float_of_int st.Gc.heap_words *. word_bytes);
  Export.gauge e ~help:"largest major heap size ever reached"
    "gc.top_heap_bytes"
    (float_of_int st.Gc.top_heap_words *. word_bytes);
  Export.counter e ~help:"profiler sampling ticks" "profile.samples"
    (samples ());
  Export.counter e
    ~help:"non-idle stack samples folded into the attribution tree"
    "profile.stack_samples" (stack_samples ());
  if !enabled then begin
    let w = Window.stats ~seconds:10 alloc_window in
    let rate =
      if w.Window.seconds > 0 then
        float_of_int w.Window.counters.(0) /. float_of_int w.Window.seconds
      else 0.0
    in
    Export.gauge e
      ~help:"allocation rate over the last 10s (profiler-sampled)"
      "gc.alloc_bytes_per_s" rate
  end;
  List.iter
    (fun (s, cpu, alloc, n) ->
      let labels = [ ("scheme", s) ] in
      Export.counter e ~labels ~help:"CPU time attributed to scheme"
        "scheme_cpu_ns" cpu;
      Export.counter e ~labels ~help:"bytes allocated attributed to scheme"
        "scheme_alloc_bytes" (int_of_float alloc);
      Export.counter e ~labels ~help:"requests attributed to scheme"
        "scheme_requests" n)
    (schemes ())

let spool ~dir =
  Trace.mkdir_p dir;
  let safe =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' -> c
        | _ -> '_')
      !Trace.process
  in
  let path = Filename.concat dir (Printf.sprintf "profile-%s.json" safe) in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (export_string ()));
  path
