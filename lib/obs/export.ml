(* Prometheus text exposition (format version 0.0.4) over the repo's
   own telemetry types: a small append-only buffer that writes
   "# HELP" / "# TYPE" once per metric name, then samples. Everything
   is rendered from values the caller already holds (server atomics,
   {!Window.stats}, a {!Metrics.snapshot}) — this module never reads
   global state, so the same renderer serves the wire endpoint, the
   HTTP sidecar and the bench export.

   Metric names are sanitised to the Prometheus charset and prefixed
   "lcp_"; counters get the conventional "_total" suffix. Histograms
   from the log₂ registry render as native Prometheus histograms with
   cumulative [le] buckets at the 2^b - 1 bucket edges. *)

type t = {
  buf : Buffer.t;
  mutable typed : string list;  (* names that already have HELP/TYPE *)
}

let create () = { buf = Buffer.create 1024; typed = [] }
let contents t = Buffer.contents t.buf

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let sanitize name =
  let b = Bytes.of_string name in
  Bytes.iteri (fun i c -> if not (is_name_char c) then Bytes.set b i '_') b;
  let s = Bytes.unsafe_to_string b in
  let s = if s = "" then "_" else s in
  if is_name_char s.[0] && not (s.[0] >= '0' && s.[0] <= '9') then s
  else "_" ^ s

let full_name name = "lcp_" ^ sanitize name

(* HELP text: escape backslash and newline per the format spec. *)
let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let escape_label s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let header t ~name ~help ~kind =
  if not (List.mem name t.typed) then begin
    t.typed <- name :: t.typed;
    Buffer.add_string t.buf
      (Printf.sprintf "# HELP %s %s\n# TYPE %s %s\n" name (escape_help help)
         name kind)
  end

let labels_string = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label v))
             labels)
      ^ "}"

(* Render floats the way Prometheus expects: integers without a
   fraction, everything else with enough digits. *)
let number v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let sample t ~name ?(labels = []) v =
  Buffer.add_string t.buf
    (Printf.sprintf "%s%s %s\n" name (labels_string labels) (number v))

let counter t ?(help = "") ?labels name v =
  let base = full_name name in
  let name =
    if String.length base >= 6
       && String.sub base (String.length base - 6) 6 = "_total"
    then base
    else base ^ "_total"
  in
  header t ~name ~help ~kind:"counter";
  sample t ~name ?labels (float_of_int v)

let gauge t ?(help = "") ?labels name v =
  let name = full_name name in
  header t ~name ~help ~kind:"gauge";
  sample t ~name ?labels v

let histogram t ?(help = "") name (h : Metrics.hist) =
  let name = full_name name in
  header t ~name ~help ~kind:"histogram";
  let cum = ref 0 in
  List.iter
    (fun (b, n) ->
      cum := !cum + n;
      let le = if b <= 0 then 0 else (1 lsl b) - 1 in
      sample t ~name:(name ^ "_bucket")
        ~labels:[ ("le", string_of_int le) ]
        (float_of_int !cum))
    h.Metrics.buckets;
  sample t ~name:(name ^ "_bucket")
    ~labels:[ ("le", "+Inf") ]
    (float_of_int h.Metrics.count);
  sample t ~name:(name ^ "_sum") (float_of_int h.Metrics.sum);
  sample t ~name:(name ^ "_count") (float_of_int h.Metrics.count)

(* A {!Window.stats} as a Prometheus summary (quantile-labelled
   samples) plus rate gauges, all labelled with the window length. *)
let window_summary t ?(help = "") name (w : Window.stats) =
  let name = full_name name in
  header t ~name ~help ~kind:"summary";
  let wl = Printf.sprintf "%ds" w.Window.seconds in
  List.iter
    (fun (q, v) ->
      sample t ~name
        ~labels:[ ("window", wl); ("quantile", q) ]
        (float_of_int v))
    [ ("0.5", w.Window.p50); ("0.95", w.Window.p95); ("0.99", w.Window.p99) ];
  sample t ~name:(name ^ "_sum")
    ~labels:[ ("window", wl) ]
    (float_of_int w.Window.sum);
  sample t ~name:(name ^ "_count")
    ~labels:[ ("window", wl) ]
    (float_of_int w.Window.count)

(* The full cumulative registry: counters as _total, max-gauges as
   gauges, histograms as histograms. *)
let metrics_snapshot t (snap : Metrics.snapshot) =
  List.iter
    (fun (name, v) ->
      match v with
      | Metrics.Count n -> counter t name n
      | Metrics.Max n -> gauge t name (float_of_int n)
      | Metrics.Hist h -> histogram t name h)
    snap

(* --- a minimal sample reader ------------------------------------------ *)

(* Parses one exposition line back into (name, labels, value): enough
   for `lcp top` to scrape itself and for the tests to validate the
   output line-by-line. Comment and blank lines yield [None]. *)
let parse_sample line =
  let n = String.length line in
  if n = 0 || line.[0] = '#' then None
  else
    let i = ref 0 in
    while !i < n && is_name_char line.[!i] do incr i done;
    if !i = 0 then None
    else
      let name = String.sub line 0 !i in
      let labels = ref [] in
      let ok = ref true in
      (if !i < n && line.[!i] = '{' then begin
         incr i;
         let rec pairs () =
           let ks = !i in
           while !i < n && is_name_char line.[!i] do incr i done;
           let k = String.sub line ks (!i - ks) in
           if !i + 1 < n && line.[!i] = '=' && line.[!i + 1] = '"' then begin
             i := !i + 2;
             let b = Buffer.create 8 in
             let rec scan () =
               if !i >= n then ok := false
               else
                 match line.[!i] with
                 | '"' -> incr i
                 | '\\' when !i + 1 < n ->
                     (match line.[!i + 1] with
                     | 'n' -> Buffer.add_char b '\n'
                     | c -> Buffer.add_char b c);
                     i := !i + 2;
                     scan ()
                 | c ->
                     Buffer.add_char b c;
                     incr i;
                     scan ()
             in
             scan ();
             labels := (k, Buffer.contents b) :: !labels;
             if !i < n && line.[!i] = ',' then begin
               incr i;
               pairs ()
             end
             else if !i < n && line.[!i] = '}' then incr i
             else ok := false
           end
           else ok := false
         in
         pairs ()
       end);
      if not !ok then None
      else
        let rest = String.trim (String.sub line !i (n - !i)) in
        let value =
          match rest with
          | "+Inf" -> Some infinity
          | "-Inf" -> Some neg_infinity
          | "NaN" -> Some nan
          | _ -> float_of_string_opt rest
        in
        match value with
        | Some v -> Some (name, List.rev !labels, v)
        | None -> None

let find_sample text ~name ~labels =
  let result = ref None in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         match parse_sample line with
         | Some (n, ls, v)
           when n = name
                && List.for_all
                     (fun (k, want) -> List.assoc_opt k ls = Some want)
                     labels ->
             if !result = None then result := Some v
         | _ -> ());
  !result
