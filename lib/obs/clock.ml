external now_ns : unit -> int = "lcp_obs_monotonic_ns" [@@noalloc]

let elapsed_ns t0 = now_ns () - t0
let ns_to_s ns = float_of_int ns *. 1e-9
let ns_to_us ns = float_of_int ns *. 1e-3
let now_s () = ns_to_s (now_ns ())

let time f =
  let t0 = now_ns () in
  let r = f () in
  (r, ns_to_s (now_ns () - t0))
