let enabled = ref false

type buf = {
  mask : int;  (* capacity - 1; capacity is a power of two *)
  name : string array;
  ph : Bytes.t;
  ts : int array;  (* ns relative to [epoch] *)
  dur : int array;
  tid : int array;
  arg_name : string array;
  arg : int array;
  cursor : int Atomic.t;  (* total events ever emitted *)
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let mk capacity =
  let cap = pow2 (max 16 capacity) 16 in
  {
    mask = cap - 1;
    name = Array.make cap "";
    ph = Bytes.make cap 'X';
    ts = Array.make cap 0;
    dur = Array.make cap 0;
    tid = Array.make cap 0;
    arg_name = Array.make cap "";
    arg = Array.make cap 0;
    cursor = Atomic.make 0;
  }

let buf = ref (mk 65536)
let epoch = ref (Clock.now_ns ())

let clear () =
  buf := mk (!buf.mask + 1);
  epoch := Clock.now_ns ()

let set_capacity n =
  buf := mk n;
  epoch := Clock.now_ns ()

(* Each event claims a distinct slot via fetch-and-add; two domains
   only touch the same slot when the ring has lapped, in which case the
   older event was already forfeit. *)
let emit ph name arg_name arg ts dur =
  let b = !buf in
  let i = Atomic.fetch_and_add b.cursor 1 land b.mask in
  Array.unsafe_set b.name i name;
  Bytes.unsafe_set b.ph i ph;
  Array.unsafe_set b.ts i (ts - !epoch);
  Array.unsafe_set b.dur i dur;
  Array.unsafe_set b.tid i (Domain.self () :> int);
  Array.unsafe_set b.arg_name i arg_name;
  Array.unsafe_set b.arg i arg

let span name f =
  if not !enabled then f ()
  else begin
    let t0 = Clock.now_ns () in
    match f () with
    | r ->
        emit 'X' name "" 0 t0 (Clock.now_ns () - t0);
        r
    | exception e ->
        emit 'X' name "" 0 t0 (Clock.now_ns () - t0);
        raise e
  end

let span_arg name arg_name arg f =
  if not !enabled then f ()
  else begin
    let t0 = Clock.now_ns () in
    match f () with
    | r ->
        emit 'X' name arg_name arg t0 (Clock.now_ns () - t0);
        r
    | exception e ->
        emit 'X' name arg_name arg t0 (Clock.now_ns () - t0);
        raise e
  end

let complete ?(arg_name = "") ?(arg = 0) name ~t0_ns ~dur_ns =
  if !enabled then emit 'X' name arg_name arg t0_ns (max 0 dur_ns)

let instant ?(arg_name = "") ?(arg = 0) name =
  if !enabled then emit 'i' name arg_name arg (Clock.now_ns ()) 0

let counter_event name v =
  if !enabled then emit 'C' name "value" v (Clock.now_ns ()) 0

let recorded () =
  let b = !buf in
  min (Atomic.get b.cursor) (b.mask + 1)

let dropped () =
  let b = !buf in
  max 0 (Atomic.get b.cursor - (b.mask + 1))

let json_escape s =
  let buffer = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

(* [keep] filters on the event's relative start timestamp; the
   "dropped" footer counts ring-wrap losses, so readers of the JSON
   can tell a quiet trace from a lapped one. *)
let export_filtered oc keep =
  let b = !buf in
  let n = min (Atomic.get b.cursor) (b.mask + 1) in
  let order =
    Array.of_seq
      (Seq.filter (fun i -> keep b.ts.(i)) (Seq.init n Fun.id))
  in
  Array.sort (fun i j -> compare b.ts.(i) b.ts.(j)) order;
  output_string oc "{\"traceEvents\":[";
  Array.iteri
    (fun k i ->
      if k > 0 then output_string oc ",";
      let ph = Bytes.get b.ph i in
      Printf.fprintf oc
        "\n {\"name\":\"%s\",\"cat\":\"lcp\",\"ph\":\"%c\",\"pid\":0,\"tid\":%d,\"ts\":%.3f"
        (json_escape b.name.(i)) ph b.tid.(i)
        (Clock.ns_to_us b.ts.(i));
      if ph = 'X' then Printf.fprintf oc ",\"dur\":%.3f" (Clock.ns_to_us b.dur.(i));
      if b.arg_name.(i) <> "" then
        Printf.fprintf oc ",\"args\":{\"%s\":%d}" (json_escape b.arg_name.(i)) b.arg.(i);
      output_string oc "}")
    order;
  Printf.fprintf oc "\n],\"dropped\":%d,\"displayTimeUnit\":\"ms\"}\n" (dropped ())

let export_channel oc = export_filtered oc (fun _ -> true)

let export path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> export_channel oc)

let export_slice path ~since_ns ~until_ns =
  (* absolute -> ring-relative bounds; events are kept by their start
     timestamp, so a span straddling [since_ns] is kept iff it began
     inside the slice *)
  let lo = since_ns - !epoch and hi = until_ns - !epoch in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> export_filtered oc (fun ts -> ts >= lo && ts <= hi))
