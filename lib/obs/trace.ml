let enabled = ref false

(* Distributed-tracing identity of an event: the 126-bit trace id as
   two 63-bit halves, the event's own span id, and the span it nests
   under (0 = root). All-zero ([null_ctx]) marks an untraced event and
   keeps the exported JSON byte-identical to the pre-tracing format. *)
type ctx = { t_hi : int; t_lo : int; span : int; parent : int }

let null_ctx = { t_hi = 0; t_lo = 0; span = 0; parent = 0 }

(* The process lane name baked into every export; callers set it to
   something unique per process (e.g. "serve:7421#1234" with the pid)
   before spooling so merged timelines get distinct lanes. *)
let process = ref "lcp"

(* splitmix64-style finalizer, truncated to OCaml's 63-bit int. Pure,
   so every process hashing the same rid lands on the same value —
   that is what makes head-based sampling and rid-derived trace ids
   agree across client, router and backend without coordination. *)
let mix x =
  let h = ref (x * 0x4F1BBCDCBFA53E0B) in
  h := (!h lxor (!h lsr 30)) * 0x2545F4914F6CDD1D;
  h := (!h lxor (!h lsr 27)) * 0x7FB5D329728EA185;
  (!h lxor (!h lsr 31)) land max_int

(* 1-in-[every] head-based sampling keyed on the correlation id. *)
let sample ~every rid =
  if every <= 0 then false
  else if every = 1 then true
  else mix (rid + 0x51ED) mod every = 0

(* Trace id derived deterministically from the rid: the two halves use
   distinct tweaks so the 126-bit id is not just a repeated hash. *)
let trace_of_rid rid =
  let nz v = if v = 0 then 1 else v in
  (nz (mix (rid lxor 0x7472616365)), nz (mix (rid + 0x69645F6C6F)))

(* Span ids only need to be unique across the processes of one trace;
   a per-process seed from the monotonic clock plus a counter mixed
   through the same finalizer gets there without coordination. *)
let span_seed = Clock.now_ns ()
let span_counter = Atomic.make 1

let new_span_id () =
  let n = Atomic.fetch_and_add span_counter 1 in
  let v = mix (span_seed lxor (n * 0x9E3779B1)) in
  if v = 0 then 1 else v

let ctx_of_rid ?(parent = 0) rid =
  let t_hi, t_lo = trace_of_rid rid in
  { t_hi; t_lo; span = new_span_id (); parent }

let hex_id hi lo = Printf.sprintf "%016x%016x" hi lo

type buf = {
  mask : int;  (* capacity - 1; capacity is a power of two *)
  name : string array;
  ph : Bytes.t;
  ts : int array;  (* ns relative to [epoch] *)
  dur : int array;
  tid : int array;
  arg_name : string array;
  arg : int array;
  e_hi : int array;  (* trace id halves; 0,0 = untraced event *)
  e_lo : int array;
  span : int array;
  parent : int array;
  cursor : int Atomic.t;  (* total events ever emitted *)
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let mk capacity =
  let cap = pow2 (max 16 capacity) 16 in
  {
    mask = cap - 1;
    name = Array.make cap "";
    ph = Bytes.make cap 'X';
    ts = Array.make cap 0;
    dur = Array.make cap 0;
    tid = Array.make cap 0;
    arg_name = Array.make cap "";
    arg = Array.make cap 0;
    e_hi = Array.make cap 0;
    e_lo = Array.make cap 0;
    span = Array.make cap 0;
    parent = Array.make cap 0;
    cursor = Atomic.make 0;
  }

let buf = ref (mk 65536)
let epoch = ref (Clock.now_ns ())

let clear () =
  buf := mk (!buf.mask + 1);
  epoch := Clock.now_ns ()

let set_capacity n =
  buf := mk n;
  epoch := Clock.now_ns ()

(* Each event claims a distinct slot via fetch-and-add; two domains
   only touch the same slot when the ring has lapped, in which case the
   older event was already forfeit. *)
let emit_ctx ph name arg_name arg ctx ts dur =
  let b = !buf in
  let i = Atomic.fetch_and_add b.cursor 1 land b.mask in
  Array.unsafe_set b.name i name;
  Bytes.unsafe_set b.ph i ph;
  Array.unsafe_set b.ts i (ts - !epoch);
  Array.unsafe_set b.dur i dur;
  Array.unsafe_set b.tid i (Domain.self () :> int);
  Array.unsafe_set b.arg_name i arg_name;
  Array.unsafe_set b.arg i arg;
  Array.unsafe_set b.e_hi i ctx.t_hi;
  Array.unsafe_set b.e_lo i ctx.t_lo;
  Array.unsafe_set b.span i ctx.span;
  Array.unsafe_set b.parent i ctx.parent

let emit ph name arg_name arg ts dur =
  emit_ctx ph name arg_name arg null_ctx ts dur

(* --- per-domain active-span stacks (the profiler's raw material) ---- *)

(* Each domain owns a fixed-size stack of the span names currently
   open on it, maintained by the [span*] entry points when [stacks_on]
   is set (the profiler's switch — tracing alone never pays for it).
   The stacks are read cross-thread by the [Profile] sampler without
   any synchronisation: a torn read costs one misattributed sample,
   never a crash, because every slot always holds a valid string.
   Threads multiplexed onto one domain (the server's connection
   threads all live on domain 0) share that domain's stack; their
   interleaved pushes and pops stay depth-balanced, so the shared lane
   degrades to attribution noise while the pool domains — where the
   compute actually runs, one task at a time — stay exact. *)

let stacks_on = ref false
let max_stack_domains = 128
let max_stack_depth = 32

type dstack = { frames : string array; mutable depth : int }

let stacks =
  Array.init max_stack_domains (fun _ ->
      { frames = Array.make max_stack_depth ""; depth = 0 })

let push_frame name =
  let id = (Domain.self () :> int) in
  if id < max_stack_domains then begin
    let s = stacks.(id) in
    if s.depth >= 0 && s.depth < max_stack_depth then s.frames.(s.depth) <- name;
    s.depth <- s.depth + 1
  end

let pop_frame () =
  let id = (Domain.self () :> int) in
  if id < max_stack_domains then begin
    let s = stacks.(id) in
    if s.depth > 0 then s.depth <- s.depth - 1
  end

let stack_snapshot id =
  if id < 0 || id >= max_stack_domains then [||]
  else begin
    let s = stacks.(id) in
    let d = min s.depth max_stack_depth in
    if d <= 0 then [||] else Array.init d (fun i -> s.frames.(i))
  end

let on () = !enabled || !stacks_on

let span name f =
  if not (!enabled || !stacks_on) then f ()
  else begin
    if !stacks_on then push_frame name;
    let t0 = Clock.now_ns () in
    match f () with
    | r ->
        if !stacks_on then pop_frame ();
        if !enabled then emit 'X' name "" 0 t0 (Clock.now_ns () - t0);
        r
    | exception e ->
        if !stacks_on then pop_frame ();
        if !enabled then emit 'X' name "" 0 t0 (Clock.now_ns () - t0);
        raise e
  end

let span_arg name arg_name arg f =
  if not (!enabled || !stacks_on) then f ()
  else begin
    if !stacks_on then push_frame name;
    let t0 = Clock.now_ns () in
    match f () with
    | r ->
        if !stacks_on then pop_frame ();
        if !enabled then emit 'X' name arg_name arg t0 (Clock.now_ns () - t0);
        r
    | exception e ->
        if !stacks_on then pop_frame ();
        if !enabled then emit 'X' name arg_name arg t0 (Clock.now_ns () - t0);
        raise e
  end

let span_ctx name arg_name arg ctx f =
  if not (!enabled || !stacks_on) then f ()
  else begin
    if !stacks_on then push_frame name;
    let t0 = Clock.now_ns () in
    match f () with
    | r ->
        if !stacks_on then pop_frame ();
        if !enabled then
          emit_ctx 'X' name arg_name arg ctx t0 (Clock.now_ns () - t0);
        r
    | exception e ->
        if !stacks_on then pop_frame ();
        if !enabled then
          emit_ctx 'X' name arg_name arg ctx t0 (Clock.now_ns () - t0);
        raise e
  end

let complete ?(arg_name = "") ?(arg = 0) ?(ctx = null_ctx) name ~t0_ns ~dur_ns =
  if !enabled then emit_ctx 'X' name arg_name arg ctx t0_ns (max 0 dur_ns)

let instant ?(arg_name = "") ?(arg = 0) ?(ctx = null_ctx) name =
  if !enabled then emit_ctx 'i' name arg_name arg ctx (Clock.now_ns ()) 0

let counter_event name v =
  if !enabled then emit 'C' name "value" v (Clock.now_ns ()) 0

let recorded () =
  let b = !buf in
  min (Atomic.get b.cursor) (b.mask + 1)

let dropped () =
  let b = !buf in
  max 0 (Atomic.get b.cursor - (b.mask + 1))

let json_escape s =
  let buffer = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

(* [keep] filters on the event's relative start timestamp; the
   "dropped" footer counts ring-wrap losses, so readers of the JSON
   can tell a quiet trace from a lapped one. Traced events carry their
   identity in [args] — "trace" as 32 hex digits, "span"/"parent" as
   ints — which is what [Trace_merge] keys on. *)
let render_filtered bb keep =
  let b = !buf in
  let n = min (Atomic.get b.cursor) (b.mask + 1) in
  let order =
    Array.of_seq
      (Seq.filter (fun i -> keep b.ts.(i)) (Seq.init n Fun.id))
  in
  Array.sort (fun i j -> compare b.ts.(i) b.ts.(j)) order;
  Buffer.add_string bb "{\"traceEvents\":[";
  Array.iteri
    (fun k i ->
      if k > 0 then Buffer.add_string bb ",";
      let ph = Bytes.get b.ph i in
      Printf.bprintf bb
        "\n {\"name\":\"%s\",\"cat\":\"lcp\",\"ph\":\"%c\",\"pid\":0,\"tid\":%d,\"ts\":%.3f"
        (json_escape b.name.(i)) ph b.tid.(i)
        (Clock.ns_to_us b.ts.(i));
      if ph = 'X' then Printf.bprintf bb ",\"dur\":%.3f" (Clock.ns_to_us b.dur.(i));
      let traced = b.e_hi.(i) <> 0 || b.e_lo.(i) <> 0 in
      if b.arg_name.(i) <> "" || traced then begin
        Buffer.add_string bb ",\"args\":{";
        if b.arg_name.(i) <> "" then
          Printf.bprintf bb "\"%s\":%d" (json_escape b.arg_name.(i)) b.arg.(i);
        if traced then begin
          if b.arg_name.(i) <> "" then Buffer.add_string bb ",";
          Printf.bprintf bb "\"trace\":\"%s\",\"span\":%d,\"parent\":%d"
            (hex_id b.e_hi.(i) b.e_lo.(i))
            b.span.(i) b.parent.(i)
        end;
        Buffer.add_string bb "}"
      end;
      Buffer.add_string bb "}")
    order;
  Printf.bprintf bb
    "\n],\"dropped\":%d,\"process\":\"%s\",\"displayTimeUnit\":\"ms\"}\n"
    (dropped ())
    (json_escape !process)

let export_filtered oc keep =
  let bb = Buffer.create 65536 in
  render_filtered bb keep;
  Buffer.output_buffer oc bb

let export_channel oc = export_filtered oc (fun _ -> true)

let export_string () =
  let bb = Buffer.create 65536 in
  render_filtered bb (fun _ -> true);
  Buffer.contents bb

let export path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> export_channel oc)

let export_slice path ~since_ns ~until_ns =
  (* absolute -> ring-relative bounds; events are kept by their start
     timestamp, so a span straddling [since_ns] is kept iff it began
     inside the slice *)
  let lo = since_ns - !epoch and hi = until_ns - !epoch in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> export_filtered oc (fun ts -> ts >= lo && ts <= hi))

(* mkdir -p without the unix dependency: walk up with
   Filename.dirname, then create on the way back down. Races and
   pre-existing components surface as Sys_error and are ignored — the
   caller's subsequent open reports any real failure. *)
let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let sanitize_process () =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' -> c
      | _ -> '_')
    !process

(* One spool file per process under [dir], named after [process] so
   `lcp trace merge dir/*.json` picks up every lane. *)
let spool ~dir =
  mkdir_p dir;
  let path =
    Filename.concat dir (Printf.sprintf "trace-%s.json" (sanitize_process ()))
  in
  export path;
  path
