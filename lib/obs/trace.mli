(** Structured tracing into a preallocated ring buffer, exported as
    Chrome trace-event JSON ([chrome://tracing] / Perfetto).

    Events are recorded into parallel arrays indexed by an atomic
    cursor: recording is lock-free, allocation-free (event names must
    be preexisting strings) and safe from any domain — each event
    claims a distinct slot, and once the ring wraps the oldest events
    are overwritten (check {!dropped}). Timestamps come from
    {!Clock.now_ns} and are exported in microseconds relative to the
    moment tracing was enabled.

    When [enabled] is false every entry point is a single
    load-and-branch; [span f] degenerates to [f ()]. Hot loops that
    would have to build a closure should guard on [!enabled] at the
    call site — see [Simulator.run_verifier]. *)

val enabled : bool ref
(** Master switch, off by default; prefer {!Obs.enable}. *)

val set_capacity : int -> unit
(** Resize (and clear) the ring; rounded up to a power of two.
    Default 65536 events. *)

val clear : unit -> unit
(** Drop all events and re-zero the time origin. *)

val span : string -> (unit -> 'a) -> 'a
(** Run the thunk and record a complete ("ph":"X") event with its
    duration. The event is recorded (and the exception re-raised) even
    if the thunk raises. *)

val span_arg : string -> string -> int -> (unit -> 'a) -> 'a
(** [span_arg name key v f] — like {!span} with one integer argument
    attached (e.g. ["node", 17]). *)

val complete : ?arg_name:string -> ?arg:int -> string -> t0_ns:int -> dur_ns:int -> unit
(** Record a complete ("ph":"X") event with an explicit start and
    duration — for spans whose endpoints were observed on different
    threads (e.g. the server's queue-wait span, stamped at dequeue
    with the enqueue timestamp). *)

val instant : ?arg_name:string -> ?arg:int -> string -> unit
(** A point event ("ph":"i") — e.g. "first accepted forgery". *)

val counter_event : string -> int -> unit
(** A "ph":"C" counter sample; renders as a stacked chart in the
    trace viewer. *)

val recorded : unit -> int
(** Events currently held in the ring. *)

val dropped : unit -> int
(** Events lost to ring wrap-around since the last {!clear}. *)

val export_channel : out_channel -> unit
(** Write {["{"traceEvents":[...]}"]} JSON: events sorted by
    timestamp, each with [name], [ph], [ts], [dur], [pid], [tid] and
    optional [args]. The top-level object also carries a ["dropped"]
    footer — the {!dropped} count at export time — so a reader can
    tell a quiet trace from one the ring lapped. *)

val export : string -> unit
(** {!export_channel} to a fresh file. *)

val export_slice : string -> since_ns:int -> until_ns:int -> unit
(** {!export} restricted to events whose start timestamp (absolute
    {!Clock.now_ns} terms) falls within [since_ns, until_ns] — the
    slow-request flight recorder's dump format. *)
