(** Structured tracing into a preallocated ring buffer, exported as
    Chrome trace-event JSON ([chrome://tracing] / Perfetto).

    Events are recorded into parallel arrays indexed by an atomic
    cursor: recording is lock-free, allocation-free (event names must
    be preexisting strings) and safe from any domain — each event
    claims a distinct slot, and once the ring wraps the oldest events
    are overwritten (check {!dropped}). Timestamps come from
    {!Clock.now_ns} and are exported in microseconds relative to the
    moment tracing was enabled.

    When [enabled] is false every entry point is a single
    load-and-branch; [span f] degenerates to [f ()]. Hot loops that
    would have to build a closure should guard on [!enabled] at the
    call site — see [Simulator.run_verifier]. *)

val enabled : bool ref
(** Master switch, off by default; prefer {!Obs.enable}. *)

(** {1 Distributed-tracing identity} *)

type ctx = { t_hi : int; t_lo : int; span : int; parent : int }
(** The tracing identity an event carries: the 126-bit trace id as two
    63-bit halves, the event's own span id, and the span it nests
    under (0 = root). {!null_ctx} (all zero) marks an untraced event
    and leaves the exported JSON unchanged from the pre-tracing
    format. *)

val null_ctx : ctx

val process : string ref
(** Lane name stamped into every export (["process"] footer); set it
    to something unique per OS process — e.g. ["serve:7421#<pid>"] —
    before spooling so merged timelines get distinct lanes. *)

val sample : every:int -> int -> bool
(** [sample ~every rid] — deterministic 1-in-[every] head sampling
    keyed on the correlation id: a pure hash, so client, router and
    backend always agree on whether a given rid is traced. [every <=
    0] never samples, [every = 1] always does. *)

val trace_of_rid : int -> int * int
(** The (high, low) trace-id halves derived deterministically from a
    correlation id; never (0, 0). Used by whichever process is the
    trace head (no incoming context) so that retries and hedges of the
    same rid still land in one trace. *)

val new_span_id : unit -> int
(** A fresh nonzero span id, unique within this process and — thanks
    to a per-process clock seed — not colliding across the processes
    of one trace in practice. *)

val ctx_of_rid : ?parent:int -> int -> ctx
(** Trace id from {!trace_of_rid}, fresh span id, given parent
    (default 0 = root). *)

val hex_id : int -> int -> string
(** [hex_id hi lo] — the 32-hex-digit rendering of a trace id, as it
    appears in exported [args] and log exemplars. *)

val set_capacity : int -> unit
(** Resize (and clear) the ring; rounded up to a power of two.
    Default 65536 events. *)

val clear : unit -> unit
(** Drop all events and re-zero the time origin. *)

(** {1 Active-span stacks (profiler support)} *)

val stacks_on : bool ref
(** When set (by {!Obs.Profile}), every [span*] entry point also
    pushes its name onto the calling domain's active-span stack and
    pops it when the thunk returns — the wall-clock sampler reads
    these stacks cross-thread. Off by default; tracing alone never
    maintains the stacks. Prefer {!Obs.Profile.start}. *)

val on : unit -> bool
(** [!enabled || !stacks_on] — the guard for call sites that build a
    non-trivial span argument: the span must run if {e either} tracing
    or profiling wants it. *)

val max_stack_domains : int
(** Domains with id >= this are not stack-tracked (they still trace). *)

val stack_snapshot : int -> string array
(** [stack_snapshot domain_id] — the names currently open on that
    domain, outermost first; [[||]] when idle or out of range. Read
    without synchronisation: a concurrently-mutating stack can yield a
    frame list that never existed, which costs one misattributed
    sample and nothing else. *)

val mkdir_p : string -> unit
(** Create [dir] and any missing parents (mkdir -p semantics);
    existing components and races are silently fine. Used by every
    [--trace-dir] / [--slow-dir] / [--profile-dir] sink so a fresh
    deployment's first write cannot fail on a missing directory. *)

val span : string -> (unit -> 'a) -> 'a
(** Run the thunk and record a complete ("ph":"X") event with its
    duration. The event is recorded (and the exception re-raised) even
    if the thunk raises. *)

val span_arg : string -> string -> int -> (unit -> 'a) -> 'a
(** [span_arg name key v f] — like {!span} with one integer argument
    attached (e.g. ["node", 17]). *)

val span_ctx : string -> string -> int -> ctx -> (unit -> 'a) -> 'a
(** [span_ctx name key v ctx f] — {!span_arg} carrying a tracing
    identity; generate the ctx (and thus the span id) {e before}
    running [f] so children can parent to it. *)

val complete :
  ?arg_name:string ->
  ?arg:int ->
  ?ctx:ctx ->
  string ->
  t0_ns:int ->
  dur_ns:int ->
  unit
(** Record a complete ("ph":"X") event with an explicit start and
    duration — for spans whose endpoints were observed on different
    threads (e.g. the server's queue-wait span, stamped at dequeue
    with the enqueue timestamp). *)

val instant : ?arg_name:string -> ?arg:int -> ?ctx:ctx -> string -> unit
(** A point event ("ph":"i") — e.g. "first accepted forgery". *)

val counter_event : string -> int -> unit
(** A "ph":"C" counter sample; renders as a stacked chart in the
    trace viewer. *)

val recorded : unit -> int
(** Events currently held in the ring. *)

val dropped : unit -> int
(** Events lost to ring wrap-around since the last {!clear}. *)

val export_channel : out_channel -> unit
(** Write {["{"traceEvents":[...]}"]} JSON: events sorted by
    timestamp, each with [name], [ph], [ts], [dur], [pid], [tid] and
    optional [args]. The top-level object also carries a ["dropped"]
    footer — the {!dropped} count at export time — so a reader can
    tell a quiet trace from one the ring lapped. *)

val export : string -> unit
(** {!export_channel} to a fresh file. *)

val export_string : unit -> string
(** The same JSON as a string — the {!Wire.request.Trace_export}
    reply body. *)

val export_slice : string -> since_ns:int -> until_ns:int -> unit
(** {!export} restricted to events whose start timestamp (absolute
    {!Clock.now_ns} terms) falls within [since_ns, until_ns] — the
    slow-request flight recorder's dump format. *)

val spool : dir:string -> string
(** Export the full ring to [dir/trace-<process>.json] (creating [dir]
    if needed, process name sanitised for the filesystem) and return
    the path written — the [--trace-dir] exit hook, one file per
    process, ready for [lcp trace merge]. *)
