(** A small total JSON codec — just enough to read the trace spools
    {!Trace} writes (and hand-written fixtures) back without an
    external dependency. Numbers are floats; strings understand the
    standard escapes and [\uXXXX] (decoded to UTF-8). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Total: malformed input (including trailing bytes) is an [Error]
    with a byte offset, never an exception. *)

val member : string -> t -> t option
(** Object field lookup; [None] on a non-object. *)

val merge_objects : old:t -> fresh:t -> t
(** Shallow object merge: every key of [fresh] wins (in [fresh]'s
    order), then keys only [old] has follow in their original order.
    Values are {e not} merged recursively — a section is replaced
    wholesale. Either argument that is not an [Obj] yields [fresh]
    unchanged, so a corrupt or missing old document degrades to a
    plain overwrite. This is how the bench merges its [service] /
    [partition] / [randomized] sections into an existing
    [BENCH_lcp.json] instead of clobbering the other sections. *)

val to_list : t -> t list option
val to_string_opt : t -> string option
val to_float_opt : t -> float option

val escape : string -> string
(** JSON string-body escaping (quotes, backslashes, control bytes). *)

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Serialize. Integral numbers print without a decimal point;
    everything else with 12 significant digits — enough that a
    parse/merge/write round trip (the bench's [BENCH_lcp.json]
    section merge) preserves every value it read. *)
