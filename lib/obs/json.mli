(** A small total JSON codec — just enough to read the trace spools
    {!Trace} writes (and hand-written fixtures) back without an
    external dependency. Numbers are floats; strings understand the
    standard escapes and [\uXXXX] (decoded to UTF-8). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Total: malformed input (including trailing bytes) is an [Error]
    with a byte offset, never an exception. *)

val member : string -> t -> t option
(** Object field lookup; [None] on a non-object. *)

val to_list : t -> t list option
val to_string_opt : t -> string option
val to_float_opt : t -> float option

val escape : string -> string
(** JSON string-body escaping (quotes, backslashes, control bytes). *)

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Serialize. Integral numbers print without a decimal point;
    everything else with millisecond-of-a-microsecond (3 decimal)
    precision. *)
