let enabled = ref false

type kind = Counter | Gauge_max | Histogram
type counter = int
type gauge = int
type histogram = int

(* Histogram slab layout: [buckets] log₂ buckets, then count, sum, max. *)
let buckets = 64
let hist_count = buckets
let hist_sum = buckets + 1
let hist_max = buckets + 2
let width = function Counter | Gauge_max -> 1 | Histogram -> buckets + 3

(* --- registry -------------------------------------------------------- *)

let lock = Mutex.create ()
let defs : (string * (kind * int)) list ref = ref []
let next_slot = ref 0

let register name kind =
  Mutex.lock lock;
  let result =
    match List.assoc_opt name !defs with
    | Some (k, slot) -> if k = kind then Ok slot else Error name
    | None ->
        let slot = !next_slot in
        next_slot := slot + width kind;
        defs := (name, (kind, slot)) :: !defs;
        Ok slot
  in
  Mutex.unlock lock;
  match result with
  | Ok slot -> slot
  | Error name ->
      invalid_arg ("Metrics.register: " ^ name ^ " already has a different kind")

let counter name = register name Counter
let gauge_max name = register name Gauge_max
let histogram name = register name Histogram

(* --- per-domain shards ----------------------------------------------- *)

(* One flat int-array slab per domain, reached through DLS: recording
   never contends and never allocates (after the shard's first use in a
   domain). Slabs are kept on a global list so [snapshot] and [reset]
   can reach them; a domain that dies leaves its (already merged-able)
   slab behind, which is fine — slabs are a few hundred ints. *)

type shard = { mutable slab : int array }

let shards : shard list ref = ref []

let key =
  Domain.DLS.new_key (fun () ->
      Mutex.lock lock;
      let s = { slab = Array.make (max 64 !next_slot) 0 } in
      shards := s :: !shards;
      Mutex.unlock lock;
      s)

(* Rare slow path: a metric registered after this shard was created. *)
let grow s slot =
  let a = s.slab in
  let b = Array.make (max (slot + 1) (2 * Array.length a)) 0 in
  Array.blit a 0 b 0 (Array.length a);
  s.slab <- b

let rec bump s slot v =
  let a = s.slab in
  if slot < Array.length a then Array.unsafe_set a slot (Array.unsafe_get a slot + v)
  else begin
    grow s slot;
    bump s slot v
  end

let rec raise_to s slot v =
  let a = s.slab in
  if slot < Array.length a then begin
    if v > Array.unsafe_get a slot then Array.unsafe_set a slot v
  end
  else begin
    grow s slot;
    raise_to s slot v
  end

let add c v = if !enabled then bump (Domain.DLS.get key) c v
let incr c = if !enabled then bump (Domain.DLS.get key) c 1
let observe_max g v = if !enabled then raise_to (Domain.DLS.get key) g v

(* Bucket of v: 0 for v ≤ 0, else the number of bits of v, so bucket b
   covers [2^(b-1), 2^b). *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and x = ref v in
    while !x <> 0 do
      b := !b + 1;
      x := !x lsr 1
    done;
    !b
  end
[@@inline]

let observe h v =
  if !enabled then begin
    let s = Domain.DLS.get key in
    bump s (h + bucket_of v) 1;
    bump s (h + hist_count) 1;
    bump s (h + hist_sum) v;
    raise_to s (h + hist_max) v
  end

(* Reset guard: zeroing shards while worker domains are still
   recording would race (and silently corrupt sums), so long-lived
   pool owners — the server — take the guard for their lifetime and
   [reset] refuses while any guard is held. *)
let guards = ref ([] : string list)

let guard_reset reason =
  Mutex.lock lock;
  guards := reason :: !guards;
  Mutex.unlock lock

let unguard_reset () =
  Mutex.lock lock;
  (match !guards with [] -> () | _ :: rest -> guards := rest);
  Mutex.unlock lock

let reset () =
  Mutex.lock lock;
  let blocked = match !guards with [] -> None | r :: _ -> Some r in
  (match blocked with
  | None -> List.iter (fun s -> Array.fill s.slab 0 (Array.length s.slab) 0) !shards
  | Some _ -> ());
  Mutex.unlock lock;
  match blocked with
  | None -> ()
  | Some reason ->
      invalid_arg ("Metrics.reset: blocked while " ^ reason)

(* External read-only counters: values owned by another module (the
   trace ring's drop count) that should still appear in snapshots.
   Sampled at snapshot time; [reset] does not touch them. *)
let externals : (string * (unit -> int)) list ref = ref []

let external_counter name f =
  Mutex.lock lock;
  if not (List.mem_assoc name !externals) then
    externals := (name, f) :: !externals;
  Mutex.unlock lock

(* --- snapshots -------------------------------------------------------- *)

type hist = { count : int; sum : int; max : int; buckets : (int * int) list }
type value = Count of int | Max of int | Hist of hist
type snapshot = (string * value) list

let snapshot () =
  Mutex.lock lock;
  let defs = !defs
  and slabs = List.map (fun s -> s.slab) !shards
  and externals = !externals in
  Mutex.unlock lock;
  let read slot = List.fold_left (fun acc a -> if slot < Array.length a then acc + a.(slot) else acc) 0 slabs in
  let read_max slot =
    List.fold_left (fun acc a -> if slot < Array.length a then max acc a.(slot) else acc) 0 slabs
  in
  defs
  |> List.map (fun (name, (kind, slot)) ->
         let v =
           match kind with
           | Counter -> Count (read slot)
           | Gauge_max -> Max (read_max slot)
           | Histogram ->
               let bs = ref [] in
               for b = buckets - 1 downto 0 do
                 let n = read (slot + b) in
                 if n > 0 then bs := (b, n) :: !bs
               done;
               Hist
                 {
                   count = read (slot + hist_count);
                   sum = read (slot + hist_sum);
                   max = read_max (slot + hist_max);
                   buckets = !bs;
                 }
         in
         (name, v))
  |> List.append (List.map (fun (name, f) -> (name, Count (f ()))) externals)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let filter p = List.filter (fun (name, _) -> p name)

let deterministic snap =
  filter
    (fun name ->
      not
        (String.length name > 3
         && String.sub name (String.length name - 3) 3 = "_ns")
      && not (String.length name > 5 && String.sub name 0 5 = "pool."))
    snap

let count snap name =
  match List.assoc_opt name snap with
  | Some (Count n) -> n
  | Some (Max n) -> n
  | Some (Hist h) -> h.count
  | None -> 0

let max_value snap name =
  match List.assoc_opt name snap with
  | Some (Max n) -> n
  | Some (Hist h) -> h.max
  | Some (Count n) -> n
  | None -> 0

let pp ppf snap =
  List.iter
    (fun (name, v) ->
      match v with
      | Count n -> Format.fprintf ppf "  counter    %-34s %12d@." name n
      | Max n -> Format.fprintf ppf "  gauge-max  %-34s %12d@." name n
      | Hist { count; sum; max; buckets } ->
          Format.fprintf ppf
            "  histogram  %-34s count=%d sum=%d max=%d buckets=[%s]@." name count
            sum max
            (String.concat " "
               (List.map (fun (b, n) -> Printf.sprintf "%d:%d" b n) buckets)))
    snap

let to_json snap =
  let field (name, v) =
    match v with
    | Count n | Max n -> Printf.sprintf "\"%s\":%d" name n
    | Hist { count; sum; max; buckets } ->
        Printf.sprintf "\"%s\":{\"count\":%d,\"sum\":%d,\"max\":%d,\"buckets\":[%s]}"
          name count sum max
          (String.concat "," (List.map (fun (b, n) -> Printf.sprintf "[%d,%d]" b n) buckets))
  in
  "{" ^ String.concat "," (List.map field snap) ^ "}"
