(** Joining per-process {!Trace} spools into one Chrome-trace
    timeline, aligning clocks without an NTP assumption.

    Each spool's timestamps are relative to its own process's tracing
    epoch. Alignment uses the cross-process parent links the wire
    trace context establishes: a child span's interval (a backend's
    [server.request]) is bracketed by its parent's (the router's
    upstream-call span, which timed the round trip on its own clock),
    so matching interval midpoints is a symmetric-delay offset
    estimate. The median over all links of a process pair cancels
    queueing noise; a BFS over the pair graph chains offsets between
    processes that never talk directly. *)

type stats = {
  events : int;  (** events in the merged output *)
  processes : (string * float) list;
      (** lane name and the clock offset applied, in microseconds
          relative to the first file's clock *)
  traces : int;  (** distinct trace ids *)
  cross_process : int;  (** trace ids observed in at least 2 lanes *)
  max_lanes : int;  (** most lanes any single trace id spans *)
}

val merge :
  ?trace_id:string -> (string * string) list -> (string * stats, string) result
(** [merge [(name, content); ...]] parses each spool (the name seeds
    the lane label if the file lacks a ["process"] footer, and
    prefixes parse errors), estimates per-file clock offsets, and
    returns the merged Chrome trace JSON — one [pid] lane per input
    file, [process_name] metadata events, timestamps shifted onto the
    first file's clock — plus summary statistics. [?trace_id]
    (32 hex digits) restricts the output to one trace. *)

val pp_stats : out_channel -> stats -> unit
