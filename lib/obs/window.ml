(* Rolling-window telemetry: a ring of one-second slices, each holding
   a log₂ histogram plus a caller-defined set of counters. Recording
   stamps the current second's slice (lazily zeroing it when the ring
   position is reused for a new second), so a [stats] call can merge
   the last k seconds without ever resetting the cumulative metrics in
   {!Metrics} — the two views coexist.

   Unlike {!Metrics}, windows are explicit values owned by whoever
   records into them (the server's request path), not globally-gated
   registry entries: one [Mutex] per window serialises the per-request
   record, which is noise next to a prove/verify round trip. *)

let buckets = 64

type slice = {
  mutable stamp : int;  (* absolute second this slice describes; -1 = never *)
  hist : int array;  (* log₂ buckets, as in {!Metrics} *)
  mutable count : int;
  mutable sum : int;
  mutable max : int;
  counters : int array;
}

type t = {
  lock : Mutex.t;
  slices : slice array;  (* horizon + 1, so the horizon excludes the slot
                            currently being recycled *)
  horizon : int;
}

let create ?(horizon = 60) ?(counters = 0) () =
  if horizon < 1 then invalid_arg "Window.create: horizon < 1";
  if counters < 0 then invalid_arg "Window.create: counters < 0";
  {
    lock = Mutex.create ();
    slices =
      Array.init (horizon + 1) (fun _ ->
          {
            stamp = -1;
            hist = Array.make buckets 0;
            count = 0;
            sum = 0;
            max = 0;
            counters = Array.make (Stdlib.max 1 counters) 0;
          });
    horizon;
  }

let horizon t = t.horizon

(* Same bucketing as {!Metrics}: 0 for v <= 0, else the bit length of
   v, so bucket b covers [2^(b-1), 2^b). *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and x = ref v in
    while !x <> 0 do
      b := !b + 1;
      x := !x lsr 1
    done;
    !b
  end

(* Upper edge of a bucket — what quantiles report: every value placed
   in bucket b is <= this. *)
let bucket_upper b = if b <= 0 then 0 else (1 lsl b) - 1

(* Resolve the slice for [now_ns]'s second, zeroing it first if the
   ring slot still holds an older second. Call with the lock held. *)
let slice_for t now_ns =
  let sec = now_ns / 1_000_000_000 in
  let s = t.slices.(sec mod Array.length t.slices) in
  if s.stamp <> sec then begin
    Array.fill s.hist 0 buckets 0;
    Array.fill s.counters 0 (Array.length s.counters) 0;
    s.count <- 0;
    s.sum <- 0;
    s.max <- 0;
    s.stamp <- sec
  end;
  s

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let observe ?now_ns t v =
  let now_ns = match now_ns with Some n -> n | None -> Clock.now_ns () in
  locked t @@ fun () ->
  let s = slice_for t now_ns in
  s.hist.(bucket_of v) <- s.hist.(bucket_of v) + 1;
  s.count <- s.count + 1;
  s.sum <- s.sum + v;
  if v > s.max then s.max <- v

let add ?now_ns t c v =
  let now_ns = match now_ns with Some n -> n | None -> Clock.now_ns () in
  locked t @@ fun () ->
  let s = slice_for t now_ns in
  if c < 0 || c >= Array.length s.counters then
    invalid_arg "Window.add: counter index out of range";
  s.counters.(c) <- s.counters.(c) + v

let incr ?now_ns t c = add ?now_ns t c 1

type stats = {
  seconds : int;
  count : int;
  sum : int;
  max : int;
  rate : float;
  p50 : int;
  p95 : int;
  p99 : int;
  counters : int array;
}

(* Quantile over a merged log₂ histogram: the upper edge of the bucket
   holding the ceil(q * count)-th smallest observation. Exact for the
   bucket, pessimistic (never under-reports) within it. *)
let quantile hist count q =
  if count = 0 then 0
  else begin
    let target =
      let t = int_of_float (ceil (q *. float_of_int count)) in
      if t < 1 then 1 else if t > count then count else t
    in
    let cum = ref 0 and b = ref 0 and res = ref (bucket_upper (buckets - 1)) in
    (try
       while !b < buckets do
         cum := !cum + hist.(!b);
         if !cum >= target then begin
           res := bucket_upper !b;
           raise Exit
         end;
         b := !b + 1
       done
     with Exit -> ());
    !res
  end

let stats ?now_ns ?(seconds = 10) t =
  let now_ns = match now_ns with Some n -> n | None -> Clock.now_ns () in
  let seconds = max 1 (min seconds t.horizon) in
  let sec_now = now_ns / 1_000_000_000 in
  locked t @@ fun () ->
  let hist = Array.make buckets 0 in
  let count = ref 0 and sum = ref 0 and mx = ref 0 in
  let counters = Array.make (Array.length t.slices.(0).counters) 0 in
  Array.iter
    (fun s ->
      (* the live window is the last [seconds] seconds including the
         current (partial) one *)
      if s.stamp > sec_now - seconds && s.stamp <= sec_now then begin
        for b = 0 to buckets - 1 do
          hist.(b) <- hist.(b) + s.hist.(b)
        done;
        count := !count + s.count;
        sum := !sum + s.sum;
        if s.max > !mx then mx := s.max;
        Array.iteri (fun i v -> counters.(i) <- counters.(i) + v) s.counters
      end)
    t.slices;
  {
    seconds;
    count = !count;
    sum = !sum;
    max = !mx;
    rate = float_of_int !count /. float_of_int seconds;
    p50 = quantile hist !count 0.50;
    p95 = quantile hist !count 0.95;
    p99 = quantile hist !count 0.99;
    counters;
  }
