(** Domain-safe metrics registry: counters, max-gauges and
    log₂-bucketed histograms.

    {2 Shard / merge design}

    Every recording site writes into a {e per-domain shard} — one flat
    [int array] slab per domain, reached through [Domain.DLS] — so the
    hot path under {!Pool.parallel_for} is race-free without a single
    atomic operation and allocation-free after the shard's first use.
    Shards are merged only when {!snapshot} is called: counters and
    histogram slots sum across shards, max-gauges take the maximum.
    Because every merge operator is commutative and associative, a
    snapshot taken at a quiescent point is independent of how the work
    was split over workers — the property the test suite pins down by
    comparing snapshots at jobs ∈ {1, 4}.

    {2 Cost when disabled}

    [enabled] is a single mutable flag; every record function checks it
    first and returns immediately, so an instrumented hot loop pays one
    load-and-branch per record site. The smoke bench with observability
    off is required (and measured) to stay within noise of the
    uninstrumented engine.

    Metric handles are plain slot indices into the slab; registration
    is idempotent per name and normally happens once, at module
    initialisation of the instrumented library. *)

val enabled : bool ref
(** Master switch, off by default. Flip via {!Obs.enable} /
    {!Obs.disable} rather than directly, so tracing and metrics stay
    coherent. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Register (or look up) a summing counter. Raises [Invalid_argument]
    if [name] exists with a different kind. *)

val gauge_max : string -> gauge
(** A gauge merged by [max] — records high-water marks (queue depth,
    largest ball). *)

val histogram : string -> histogram
(** A log₂-bucketed histogram: bucket 0 counts zero values, bucket
    [b ≥ 1] counts values in [2^(b-1), 2^b). Count, sum and max ride
    along. *)

val incr : counter -> unit
val add : counter -> int -> unit
val observe_max : gauge -> int -> unit
val observe : histogram -> int -> unit

val reset : unit -> unit
(** Zero every shard.

    {b Quiescence contract}: call only when no domain can be recording
    — between bench rows, between tests — never while a worker pool is
    live. A concurrent recorder would race the zeroing and leave sums
    silently corrupted. Long-lived pool owners enforce this with
    {!guard_reset}: the server takes the guard when it spawns its pool
    and releases it only after the pool has been joined, so a [reset]
    during service raises [Invalid_argument] instead of corrupting the
    registry. ([lcp serve] itself never calls [reset] after
    startup.) *)

val guard_reset : string -> unit
(** Block {!reset} (it raises [Invalid_argument] carrying [reason])
    until the matching {!unguard_reset}. Guards nest. *)

val unguard_reset : unit -> unit

val external_counter : string -> (unit -> int) -> unit
(** Register a read-only counter whose value is owned elsewhere and
    sampled at {!snapshot} time (e.g. [trace.dropped] from the trace
    ring). Unaffected by {!reset}; idempotent per name. *)

(** {1 Snapshots} *)

type hist = {
  count : int;
  sum : int;
  max : int;
  buckets : (int * int) list;  (** non-empty (bucket index, count) *)
}

type value = Count of int | Max of int | Hist of hist
type snapshot = (string * value) list  (** sorted by metric name *)

val snapshot : unit -> snapshot
(** Merge all shards. Take it at a quiescent point: the reader does not
    synchronise with concurrently-recording domains. *)

val filter : (string -> bool) -> snapshot -> snapshot

val deterministic : snapshot -> snapshot
(** Drop metrics whose value depends on timing or worker count: names
    suffixed [_ns] (accumulated durations) and prefixed [pool.]
    (scheduling-dependent). What remains must be identical for any
    [--jobs] value on the same workload. *)

val count : snapshot -> string -> int
(** Value of a counter (or a gauge/histogram-count), 0 if absent. *)

val max_value : snapshot -> string -> int
(** Max of a gauge or histogram, 0 if absent. *)

val pp : Format.formatter -> snapshot -> unit
(** Human-readable table, one metric per line. *)

val to_json : snapshot -> string
(** One JSON object: counters/gauges as numbers, histograms as
    [{"count":..,"sum":..,"max":..,"buckets":[[b,n],..]}]. *)
