(** Prometheus text exposition, format version 0.0.4.

    An append-only buffer: each [counter] / [gauge] / [histogram] /
    [window_summary] call emits the "# HELP" and "# TYPE" preamble the
    first time a metric name appears, then one or more samples. Names
    are sanitised to the Prometheus charset ([[a-zA-Z0-9_:]]) and
    prefixed ["lcp_"]; counters gain the conventional ["_total"]
    suffix. The module reads no global state — the caller hands it the
    values (server counters, {!Window.stats}, a {!Metrics.snapshot}),
    so the wire endpoint, the HTTP sidecar and the bench export all
    share one renderer. *)

type t

val create : unit -> t
val contents : t -> string

val sanitize : string -> string
(** Replace characters outside [[a-zA-Z0-9_:]] with ['_'] (and guard a
    leading digit); [full_name] below also prefixes ["lcp_"]. *)

val full_name : string -> string

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> int -> unit
(** Monotonic counter; the rendered name ends in ["_total"]. *)

val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> float -> unit

val histogram : t -> ?help:string -> string -> Metrics.hist -> unit
(** A log₂ registry histogram as a native Prometheus histogram:
    cumulative [le] buckets at the [2^b - 1] bucket edges, then
    [le="+Inf"], [_sum] and [_count]. *)

val window_summary : t -> ?help:string -> string -> Window.stats -> unit
(** A rolling window as a summary: [quantile]-labelled samples for
    p50/p95/p99 plus [_sum] / [_count], all carrying a
    [window="<seconds>s"] label so several horizons of the same metric
    coexist. *)

val metrics_snapshot : t -> Metrics.snapshot -> unit
(** Render a full cumulative registry snapshot (counters, max-gauges,
    histograms). *)

(** {1 Reading it back} *)

val parse_sample : string -> (string * (string * string) list * float) option
(** Parse one exposition line into (name, labels, value); [None] for
    comments, blanks and anything malformed. Used by [lcp top] to
    scrape the server and by the tests to validate output
    line-by-line. *)

val find_sample :
  string -> name:string -> labels:(string * string) list -> float option
(** First sample in a whole exposition text whose name matches and
    whose labels include all of [labels]. *)
