(* Observability facade: [Obs.Clock] (monotonic timing), [Obs.Metrics]
   (domain-sharded counters / gauges / histograms) and [Obs.Trace]
   (ring-buffer spans exported as Chrome trace-event JSON).

   The whole layer is off by default and must cost a single mutable
   check per record site when disabled — instrumented code guards any
   non-trivial argument computation (clock reads, closures) behind
   [!Metrics.enabled] / [!Trace.enabled]. *)

module Clock = Clock
module Metrics = Metrics
module Trace = Trace

let enable ?(metrics = true) ?(trace = false) () =
  if metrics then Metrics.enabled := true;
  if trace then begin
    Trace.clear ();
    Trace.enabled := true
  end

let disable () =
  Metrics.enabled := false;
  Trace.enabled := false

let enabled () = !Metrics.enabled || !Trace.enabled
