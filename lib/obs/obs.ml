(* Observability facade: [Obs.Clock] (monotonic timing), [Obs.Metrics]
   (domain-sharded counters / gauges / histograms), [Obs.Trace]
   (ring-buffer spans exported as Chrome trace-event JSON),
   [Obs.Window] (rolling 1 s-bucketed telemetry), [Obs.Export]
   (Prometheus text exposition) and [Obs.Log] (sampled structured
   JSON logs).

   The globally-gated layer (Metrics, Trace) is off by default and
   must cost a single mutable check per record site when disabled —
   instrumented code guards any non-trivial argument computation
   (clock reads, closures) behind [!Metrics.enabled] /
   [!Trace.enabled]. Windows, exports and logs are explicit values:
   they cost nothing unless someone creates one and records into
   it. *)

module Clock = Clock
module Metrics = Metrics
module Trace = Trace
module Window = Window
module Export = Export
module Log = Log
module Json = Json
module Trace_merge = Trace_merge
module Profile = Profile

(* Ring-wrap losses were silent; surfacing them as an external counter
   puts them in every snapshot (and thus the Prometheus exposition)
   next to the metrics they may have cost events. *)
let () = Metrics.external_counter "trace.dropped" Trace.dropped

let enable ?(metrics = true) ?(trace = false) () =
  if metrics then Metrics.enabled := true;
  if trace then begin
    Trace.clear ();
    Trace.enabled := true
  end

let disable () =
  Metrics.enabled := false;
  Trace.enabled := false

let enabled () = !Metrics.enabled || !Trace.enabled
