(** Rolling-window telemetry: a ring of one-second slices over a log₂
    histogram and a caller-defined block of counters, answering "what
    happened in the last 1 s / 10 s / 60 s" without resetting the
    cumulative {!Metrics} registry.

    A window is an explicit value owned by its recorder — typically
    one per service endpoint — not a globally-gated registry entry:
    the {!Metrics} "one flag check per record site" contract is about
    the per-node engine hot path, whereas windows sit on per-request
    paths where one [Mutex] round trip is noise. Every entry point
    takes an optional [?now_ns] so tests can drive a virtual clock
    through bucket rotation deterministically. *)

type t

val create : ?horizon:int -> ?counters:int -> unit -> t
(** [create ~horizon ~counters ()] covers queries up to [horizon]
    seconds back (default 60) and carries [counters] auxiliary counter
    slots (default 0). Allocates [horizon + 1] slices so the slot
    being recycled for the current second never pollutes a full
    [horizon]-second query. Raises [Invalid_argument] if [horizon < 1]
    or [counters < 0]. *)

val horizon : t -> int

val observe : ?now_ns:int -> t -> int -> unit
(** Record one histogram observation (e.g. a latency in µs) into the
    current second's slice. *)

val incr : ?now_ns:int -> t -> int -> unit
(** [incr t c] bumps auxiliary counter slot [c] in the current
    second's slice. Raises [Invalid_argument] if [c] is outside the
    [counters] block declared at {!create}. *)

val add : ?now_ns:int -> t -> int -> int -> unit
(** [add t c v] — {!incr} by [v]. *)

type stats = {
  seconds : int;  (** the window actually used (clamped to horizon) *)
  count : int;  (** observations in the window *)
  sum : int;
  max : int;
  rate : float;  (** [count /. seconds] *)
  p50 : int;
  p95 : int;
  p99 : int;
      (** Quantiles reported as the upper edge [2^b - 1] of the log₂
          bucket holding the ceil(q·count)-th smallest observation —
          exact to the bucket, never under-reporting within it; 0 when
          the window is empty. *)
  counters : int array;  (** auxiliary counters summed over the window *)
}

val stats : ?now_ns:int -> ?seconds:int -> t -> stats
(** Merge the slices of the last [seconds] (default 10, clamped to
    [1, horizon]) seconds, including the current partial one. *)

val bucket_of : int -> int
(** The log₂ bucket a value lands in — bucket 0 for [v <= 0], else
    the bit length of [v] (shared with {!Metrics}; exposed for the
    oracle tests). *)

val bucket_upper : int -> int
(** Upper edge of a bucket: [2^b - 1], 0 for bucket 0. *)
