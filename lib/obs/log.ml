(* Structured logging: one JSON object per line, written to an
   [out_channel] behind a mutex. The writer is deliberately dumb — the
   caller passes a flat field list and this module only does JSON
   escaping, a monotonic timestamp and per-second sampling: at most
   [max_per_sec] lines are written in any one second, the rest are
   counted and surfaced on the next line that does get through (and in
   [dropped]), so a load spike degrades to a sampled log instead of
   turning the log device into the bottleneck. *)

type field =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type t = {
  lock : Mutex.t;
  oc : out_channel;
  owns_channel : bool;  (* close the fd on [close]? not for stderr *)
  max_per_sec : int;  (* <= 0: unlimited *)
  mutable cur_sec : int;
  mutable written_this_sec : int;
  mutable dropped_pending : int;  (* since the last written line *)
  mutable dropped_since_ns : int;  (* timestamp of the first of those *)
  mutable dropped_total : int;
  mutable closed : bool;
}

let of_channel ?(max_per_sec = 0) ~owns_channel oc =
  {
    lock = Mutex.create ();
    oc;
    owns_channel;
    max_per_sec;
    cur_sec = min_int;
    written_this_sec = 0;
    dropped_pending = 0;
    dropped_since_ns = 0;
    dropped_total = 0;
    closed = false;
  }

let to_stderr ?max_per_sec () = of_channel ?max_per_sec ~owns_channel:false stderr

let to_file ?max_per_sec path =
  of_channel ?max_per_sec ~owns_channel:true (open_out path)

let dropped t =
  Mutex.lock t.lock;
  let d = t.dropped_total in
  Mutex.unlock t.lock;
  d

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* A dropped_before marker alone does not say *when* the sampled-away
   window started, which breaks sorting when logs from several
   processes are merged — so the first dropped line's timestamp rides
   along as dropped_since_ns. *)
let render ~ts_ns ~dropped_before ~dropped_since_ns fields =
  let b = Buffer.create 160 in
  Buffer.add_string b (Printf.sprintf "{\"ts_ns\":%d" ts_ns);
  if dropped_before > 0 then
    Buffer.add_string b
      (Printf.sprintf ",\"dropped_before\":%d,\"dropped_since_ns\":%d"
         dropped_before dropped_since_ns);
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ',';
      escape b k;
      Buffer.add_char b ':';
      match v with
      | Int n -> Buffer.add_string b (string_of_int n)
      | Float f ->
          (* JSON has no NaN/Inf; clamp to null *)
          if Float.is_finite f then
            Buffer.add_string b (Printf.sprintf "%.6g" f)
          else Buffer.add_string b "null"
      | Str s -> escape b s
      | Bool v -> Buffer.add_string b (if v then "true" else "false"))
    fields;
  Buffer.add_string b "}\n";
  Buffer.contents b

let write ?now_ns t fields =
  let now_ns = match now_ns with Some n -> n | None -> Clock.now_ns () in
  Mutex.lock t.lock;
  let result =
    if t.closed then false
    else begin
      let sec = now_ns / 1_000_000_000 in
      if sec <> t.cur_sec then begin
        t.cur_sec <- sec;
        t.written_this_sec <- 0
      end;
      if t.max_per_sec > 0 && t.written_this_sec >= t.max_per_sec then begin
        if t.dropped_pending = 0 then t.dropped_since_ns <- now_ns;
        t.dropped_pending <- t.dropped_pending + 1;
        t.dropped_total <- t.dropped_total + 1;
        false
      end
      else begin
        t.written_this_sec <- t.written_this_sec + 1;
        let line =
          render ~ts_ns:now_ns ~dropped_before:t.dropped_pending
            ~dropped_since_ns:t.dropped_since_ns fields
        in
        t.dropped_pending <- 0;
        output_string t.oc line;
        flush t.oc;
        true
      end
    end
  in
  Mutex.unlock t.lock;
  result

let close t =
  Mutex.lock t.lock;
  if not t.closed then begin
    t.closed <- true;
    if t.owns_channel then close_out_noerr t.oc else flush t.oc
  end;
  Mutex.unlock t.lock
