/* Monotonic clock for the observability layer.

   CLOCK_MONOTONIC is immune to NTP slew and settimeofday jumps, which
   is what makes it safe for benchmark rows and span durations (the
   seed harness timed rows with Unix.gettimeofday, i.e. wall clock).

   The result is returned as a tagged OCaml int: 63 bits of
   nanoseconds wrap after ~146 years of uptime, so no boxing and no
   allocation — the OCaml external is [@@noalloc]. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value lcp_obs_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
    return Val_long(0);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
