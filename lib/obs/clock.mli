(** Monotonic timer facade.

    Every timestamp in the repository funnels through this module:
    bench row timings, trace span durations and the busy/idle
    accounting in {!Pool} all read the same CLOCK_MONOTONIC source, so
    they are immune to NTP skew and wall-clock jumps (unlike the
    [Unix.gettimeofday] calls they replace) and mutually comparable. *)

val now_ns : unit -> int
(** Nanoseconds since an arbitrary (boot-time) epoch. Allocation-free;
    only differences are meaningful. *)

val now_s : unit -> float
(** {!now_ns} in seconds. *)

val elapsed_ns : int -> int
(** [elapsed_ns t0] is [now_ns () - t0]. *)

val ns_to_s : int -> float
val ns_to_us : int -> float

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and also returns its monotonic duration in
    seconds. *)
