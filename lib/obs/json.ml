(* A small total JSON codec for reading trace spools back. The trace
   exporter writes JSON; the merge tool and the tests need to parse it
   without pulling in an external dependency, so the parser lives here
   next to the writer. Strict enough for our own output and for
   hand-written test fixtures: numbers are OCaml floats, strings know
   the standard escapes and \uXXXX (encoded as UTF-8), and any
   malformed input is an [Error], never an exception. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of string

let fail fmt = Printf.ksprintf (fun m -> raise (Fail m)) fmt

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail "expected '%c' at byte %d, found '%c'" ch c.pos x
  | None -> fail "expected '%c' at byte %d, found end of input" ch c.pos

let literal c word value =
  String.iter (fun ch -> expect c ch) word;
  value

let hex_digit ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> fail "invalid hex digit '%c'" ch

let add_utf8 b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let r_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail "unterminated string at byte %d" c.pos
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> fail "unterminated escape at byte %d" c.pos
        | Some esc ->
            advance c;
            (match esc with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                let code = ref 0 in
                for _ = 1 to 4 do
                  match peek c with
                  | None -> fail "truncated \\u escape at byte %d" c.pos
                  | Some h ->
                      advance c;
                      code := (!code lsl 4) lor hex_digit h
                done;
                add_utf8 b !code
            | e -> fail "invalid escape '\\%c' at byte %d" e c.pos);
            loop ())
    | Some ch ->
        advance c;
        Buffer.add_char b ch;
        loop ()
  in
  loop ();
  Buffer.contents b

let r_number c =
  let start = c.pos in
  let numeric ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec loop () =
    match peek c with
    | Some ch when numeric ch ->
        advance c;
        loop ()
    | _ -> ()
  in
  loop ();
  let text = String.sub c.s start (c.pos - start) in
  match float_of_string_opt text with
  | Some v -> v
  | None -> fail "invalid number %S at byte %d" text start

let rec r_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input at byte %d" c.pos
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          let key = r_string c in
          skip_ws c;
          expect c ':';
          let v = r_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              members ((key, v) :: acc)
          | Some '}' ->
              advance c;
              List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}' at byte %d" c.pos
        in
        Obj (members [])
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = r_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              elements (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> fail "expected ',' or ']' at byte %d" c.pos
        in
        Arr (elements [])
      end
  | Some '"' -> Str (r_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> Num (r_number c)

let parse s =
  let c = { s; pos = 0 } in
  match
    let v = r_value c in
    skip_ws c;
    if c.pos <> String.length s then
      fail "%d trailing bytes after the value" (String.length s - c.pos);
    v
  with
  | v -> Ok v
  | exception Fail m -> Error m

(* --- accessors --------------------------------------------------------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_list = function Arr l -> Some l | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None

let to_float_opt = function Num v -> Some v | _ -> None

(* Shallow two-object merge: fresh keys win and keep fresh's order,
   old-only keys follow in their original order. Anything that is not
   a pair of objects degrades to the fresh document — an unreadable
   old file must never block writing new results. *)
let merge_objects ~old ~fresh =
  match (old, fresh) with
  | Obj old_kvs, Obj fresh_kvs ->
      let old_only =
        List.filter
          (fun (k, _) -> not (List.mem_assoc k fresh_kvs))
          old_kvs
      in
      Obj (fresh_kvs @ old_only)
  | _ -> fresh

(* --- writer ------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num v ->
      if Float.is_integer v && Float.abs v < 1e15 then
        Printf.bprintf b "%.0f" v
      else
        (* 12 significant digits: enough to round-trip every value we
           write (bench walls carry 6 decimals) without the noise tail
           a full %.17g would print. *)
        Printf.bprintf b "%.12g" v
  | Str s -> Printf.bprintf b "\"%s\"" (escape s)
  | Arr l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          to_buffer b v)
        l;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Printf.bprintf b "\"%s\":" (escape k);
          to_buffer b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b
