type var = string

type t =
  | True
  | False
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Adj of var * var
  | Eq of var * var
  | In_set of int * var
  | Exists_near of var * int * t
  | Forall_near of var * int * t

type sentence = { name : string; k : int; locality : int; uses_x : bool; phi : t }

let rec locality_radius = function
  | True | False | Adj _ | Eq _ | In_set _ -> 0
  | Not f -> locality_radius f
  | And (a, b) | Or (a, b) | Implies (a, b) ->
      max (locality_radius a) (locality_radius b)
  | Exists_near (_, d, f) | Forall_near (_, d, f) -> max d (locality_radius f)

let rec free_vars_acc bound acc = function
  | True | False -> acc
  | Not f -> free_vars_acc bound acc f
  | And (a, b) | Or (a, b) | Implies (a, b) ->
      free_vars_acc bound (free_vars_acc bound acc a) b
  | Adj (a, b) | Eq (a, b) ->
      let add v acc = if List.mem v bound || List.mem v acc then acc else v :: acc in
      add a (add b acc)
  | In_set (_, v) -> if List.mem v bound || List.mem v acc then acc else v :: acc
  | Exists_near (v, _, f) | Forall_near (v, _, f) ->
      free_vars_acc (v :: bound) acc f

let free_vars f = List.sort String.compare (free_vars_acc [] [] f)

let rec max_set_index = function
  | True | False | Adj _ | Eq _ -> -1
  | In_set (i, _) -> i
  | Not f -> max_set_index f
  | And (a, b) | Or (a, b) | Implies (a, b) -> max (max_set_index a) (max_set_index b)
  | Exists_near (_, _, f) | Forall_near (_, _, f) -> max_set_index f

let rec no_shadowing = function
  | True | False | Adj _ | Eq _ | In_set _ -> true
  | Not f -> no_shadowing f
  | And (a, b) | Or (a, b) | Implies (a, b) -> no_shadowing a && no_shadowing b
  | Exists_near (v, _, f) | Forall_near (v, _, f) ->
      v <> "x" && v <> "y" && no_shadowing f

let well_formed s =
  let allowed = if s.uses_x then [ "x"; "y" ] else [ "y" ] in
  List.for_all (fun v -> List.mem v allowed) (free_vars s.phi)
  && max_set_index s.phi < s.k
  && locality_radius s.phi <= s.locality
  && s.k >= 0 && s.locality >= 0
  && no_shadowing s.phi

let rec pp ppf = function
  | True -> Format.fprintf ppf "⊤"
  | False -> Format.fprintf ppf "⊥"
  | Not f -> Format.fprintf ppf "¬%a" pp f
  | And (a, b) -> Format.fprintf ppf "(%a ∧ %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a ∨ %a)" pp a pp b
  | Implies (a, b) -> Format.fprintf ppf "(%a → %a)" pp a pp b
  | Adj (a, b) -> Format.fprintf ppf "%s~%s" a b
  | Eq (a, b) -> Format.fprintf ppf "%s=%s" a b
  | In_set (i, v) -> Format.fprintf ppf "X%d(%s)" i v
  | Exists_near (v, d, f) -> Format.fprintf ppf "∃%s≤%d.%a" v d pp f
  | Forall_near (v, d, f) -> Format.fprintf ppf "∀%s≤%d.%a" v d pp f
