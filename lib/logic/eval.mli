(** Evaluation of local first-order formulas.

    Two evaluators are provided and tested against each other:
    - a {e global} one on a whole graph (the semantics), and
    - a {e local} one on a radius-r view centred at [y], which is what
      the compiled verifier runs. Locality of φ around [y] guarantees
      they agree whenever the view radius covers the formula's
      locality. *)

type sets = int -> Graph.node -> bool
(** [sets i v]: does v belong to X_i? *)

val eval_global :
  Graph.t -> sets -> x:Graph.node option -> y:Graph.node -> Formula.t -> bool
(** Quantifier bounds are distances from [y] in the whole graph. [x]
    may be [None] for sentences with [uses_x = false]; evaluating a
    formula that mentions ["x"] then raises [Invalid_argument]. *)

val eval_local :
  View.t -> sets -> x:Graph.node option -> Formula.t -> bool
(** Evaluates around [y] = the view's centre, using only nodes, edges
    and distances of the view. [x] is an identifier that may or may not
    appear in the view — [Eq] comparisons against it still work, which
    is how the compiled scheme refers to a far-away leader. *)
