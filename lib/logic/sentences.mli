(** Worked monadic Σ¹₁ sentences (Section 7.5) and reference deciders
    for validating both the brute-force model checker and the compiled
    LogLCP schemes. *)

val two_colourable : Formula.sentence
(** ∃X ∀y ∀z~y: X(y) ⊕ X(z) — k = 1, no ∃x witness. *)

val has_triangle : Formula.sentence
(** ∃x ∀y (y = x → a triangle at y) — k = 0, uses the witness. *)

val has_degree_three : Formula.sentence
val is_cycle : Formula.sentence
(** Within the connected family: every node has exactly two
    neighbours. *)

val three_colourable : Formula.sentence
(** Two monadic sets encode three colours (the fourth combination is
    forbidden); adjacent nodes differ. *)

val two_colourable_ref : Graph.t -> bool
val has_triangle_ref : Graph.t -> bool
val has_degree_three_ref : Graph.t -> bool
val is_cycle_ref : Graph.t -> bool
val three_colourable_ref : Graph.t -> bool
