type sets = int -> Graph.node -> bool

let lookup env v =
  match List.assoc_opt v env with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Eval: unbound variable %s" v)

let rec eval ~adjacent ~within env sets (f : Formula.t) =
  match f with
  | True -> true
  | False -> false
  | Not f -> not (eval ~adjacent ~within env sets f)
  | And (a, b) -> eval ~adjacent ~within env sets a && eval ~adjacent ~within env sets b
  | Or (a, b) -> eval ~adjacent ~within env sets a || eval ~adjacent ~within env sets b
  | Implies (a, b) ->
      (not (eval ~adjacent ~within env sets a)) || eval ~adjacent ~within env sets b
  | Adj (a, b) -> adjacent (lookup env a) (lookup env b)
  | Eq (a, b) -> lookup env a = lookup env b
  | In_set (i, v) -> sets i (lookup env v)
  | Exists_near (v, d, f) ->
      List.exists
        (fun node -> eval ~adjacent ~within ((v, node) :: env) sets f)
        (within d)
  | Forall_near (v, d, f) ->
      List.for_all
        (fun node -> eval ~adjacent ~within ((v, node) :: env) sets f)
        (within d)

let eval_global g sets ~x ~y f =
  let adjacent a b = Graph.mem_node g a && Graph.mem_node g b && Graph.mem_edge g a b in
  let within d = Traversal.ball g y d in
  let env = ("y", y) :: (match x with Some a -> [ ("x", a) ] | None -> []) in
  eval ~adjacent ~within env sets f

let eval_local view sets ~x f =
  let y = View.centre view in
  let g = View.graph view in
  let adjacent a b = Graph.mem_node g a && Graph.mem_node g b && Graph.mem_edge g a b in
  let within d =
    Graph.fold_nodes
      (fun u acc -> if View.dist_to_centre view u <= d then u :: acc else acc)
      g []
  in
  let env = ("y", y) :: (match x with Some a -> [ ("x", a) ] | None -> []) in
  eval ~adjacent ~within env sets f
