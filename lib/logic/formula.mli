(** Monadic Σ¹₁ sentences in Schwentick–Barthelmann local normal form
    (Section 7.5):

    {v ϑ = ∃X₁ … ∃X_k ∃x ∀y φ(X₁, …, X_k, x, y) v}

    where φ is first order and local around [y]: every quantifier in φ
    ranges over the radius-[r] ball around [y] for a fixed [r]. The
    designated first-order variables are ["x"] (the existential
    centre) and ["y"] (the universal node). *)

type var = string

type t =
  | True
  | False
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Adj of var * var  (** The two nodes are adjacent. *)
  | Eq of var * var
  | In_set of int * var  (** X_i(z), [i] is 0-based, [i < k]. *)
  | Exists_near of var * int * t
      (** [Exists_near (z, d, φ)]: ∃z with dist(z, y) ≤ d such that φ.
          Distances are measured from the universal variable [y]. *)
  | Forall_near of var * int * t

type sentence = {
  name : string;
  k : int;  (** Number of monadic relations X₁ … X_k. *)
  locality : int;  (** The radius r that bounds every quantifier. *)
  uses_x : bool;
      (** Whether φ mentions [x]; when false the compiled scheme skips
          the spanning-tree certificate for the ∃x witness. *)
  phi : t;
}

val locality_radius : t -> int
(** Largest quantifier bound occurring in the formula. *)

val free_vars : t -> var list
(** Free variables, sorted; a well-formed φ has free vars ⊆ {x, y}. *)

val well_formed : sentence -> bool
(** Checks: free vars of φ are within {"x", "y"} (minus "x" when
    [uses_x] is false), every [In_set] index is < k, every quantifier
    bound is ≤ locality, and bound variables do not shadow x or y. *)

val pp : Format.formatter -> t -> unit
