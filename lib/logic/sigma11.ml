type witness = { sets : Graph.node -> int -> bool; x : Graph.node option }

let check_witness sentence g w =
  let sets i v = w.sets v i in
  Graph.fold_nodes
    (fun y acc -> acc && Eval.eval_global g sets ~x:w.x ~y sentence.Formula.phi)
    g true

let find_witness sentence g =
  let nodes = Array.of_list (Graph.nodes g) in
  let n = Array.length nodes in
  let k = sentence.Formula.k in
  let xs =
    if sentence.Formula.uses_x then List.map Option.some (Graph.nodes g)
    else [ None ]
  in
  (* Enumerate all k·n membership bits. *)
  let total = k * n in
  if total > 24 then
    invalid_arg "Sigma11.find_witness: instance too large for brute force";
  let rec search mask =
    if mask >= 1 lsl total then None
    else begin
      let sets v i =
        let rec index j = if nodes.(j) = v then j else index (j + 1) in
        let j = index 0 in
        mask lsr ((j * k) + i) land 1 = 1
      in
      let w_of x = { sets; x } in
      match List.find_opt (fun x -> check_witness sentence g (w_of x)) xs with
      | Some x -> Some (w_of x)
      | None -> search (mask + 1)
    end
  in
  if Graph.is_empty g then None else search 0

let holds sentence g =
  (not (Graph.is_empty g)) && find_witness sentence g <> None

(* Proof layout: k set bits; if uses_x: tree certificate ++ k bits of
   the witness node's memberships. *)
let encode_node sentence ~bits ~cert ~x_bits =
  let buf = Bits.Writer.create () in
  List.iter (Bits.Writer.bool buf) bits;
  if sentence.Formula.uses_x then begin
    (match cert with
    | Some c -> Tree_cert.write buf c
    | None -> invalid_arg "Sigma11: missing tree certificate");
    List.iter (Bits.Writer.bool buf) x_bits
  end;
  Bits.Writer.contents buf

let decode_node sentence b =
  let cur = Bits.Reader.of_bits b in
  let k = sentence.Formula.k in
  let bits = List.init k (fun _ -> Bits.Reader.bool cur) in
  let cert, x_bits =
    if sentence.Formula.uses_x then begin
      let c = Tree_cert.read cur in
      let xb = List.init k (fun _ -> Bits.Reader.bool cur) in
      (Some c, xb)
    end
    else (None, [])
  in
  Bits.Reader.expect_end cur;
  (bits, cert, x_bits)

let scheme ?find sentence =
  if not (Formula.well_formed sentence) then
    invalid_arg "Sigma11.scheme: ill-formed sentence";
  let find = Option.value ~default:(find_witness sentence) find in
  let radius = max 1 sentence.Formula.locality in
  Scheme.make
    ~name:(Printf.sprintf "sigma11-%s" sentence.Formula.name)
    ~radius
    ~size_bound:(fun n ->
      sentence.Formula.k * 2 + Tree_cert.size_bound n + 2)
    ~prover:(fun inst ->
      let g = Instance.graph inst in
      if Graph.is_empty g || not (Traversal.is_connected g) then None
      else
        match find g with
        | None -> None
        | Some w ->
            let k = sentence.Formula.k in
            let bits_of v = List.init k (w.sets v) in
            let certs =
              if sentence.Formula.uses_x then begin
                match w.x with
                | None -> invalid_arg "Sigma11: witness missing x"
                | Some a ->
                    let tbl = Hashtbl.create 64 in
                    List.iter
                      (fun (v, c) -> Hashtbl.replace tbl v c)
                      (Tree_cert.prove g ~root:a);
                    Some (tbl, bits_of a)
              end
              else None
            in
            Some
              (Graph.fold_nodes
                 (fun v p ->
                   let cert, x_bits =
                     match certs with
                     | Some (tbl, xb) -> (Some (Hashtbl.find tbl v), xb)
                     | None -> (None, [])
                   in
                   Proof.set p v
                     (encode_node sentence ~bits:(bits_of v) ~cert ~x_bits))
                 g Proof.empty))
    ~verifier:(fun view ->
      let v = View.centre view in
      let bits, cert, x_bits = decode_node sentence (View.proof_of view v) in
      let tree_ok =
        if sentence.Formula.uses_x then begin
          let cert_of u =
            match decode_node sentence (View.proof_of view u) with
            | _, Some c, _ -> c
            | _, None, _ -> raise (Bits.Reader.Decode_error "missing cert")
          in
          Tree_cert.check_at view ~cert_of
          (* Neighbours agree on the witness bits of x… *)
          && List.for_all
               (fun u ->
                 let _, _, xb = decode_node sentence (View.proof_of view u) in
                 xb = x_bits)
               (View.neighbours view v)
          (* …and at the root they coincide with its own bits. *)
          && (match cert with
             | Some c when Tree_cert.is_root c -> bits = x_bits
             | _ -> true)
        end
        else true
      in
      tree_ok
      &&
      let x =
        match cert with Some c -> Some c.Tree_cert.root | None -> None
      in
      let sets i u =
        match x with
        | Some a when u = a ->
            (* x may lie outside the view; its bits travel in every
               proof. Inside the view this agrees with u's own bits
               thanks to the root check + agreement + tree validity. *)
            List.nth x_bits i
        | _ ->
            let b, _, _ = decode_node sentence (View.proof_of view u) in
            List.nth b i
      in
      Eval.eval_local view sets ~x sentence.Formula.phi)
