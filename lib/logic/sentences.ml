(** Worked monadic Σ¹₁ sentences. On the family of connected graphs,
    each compiles to a LogLCP scheme via {!Sigma11.scheme}. *)

open Formula

let xor a b = Or (And (a, Not b), And (Not a, b))

(** 2-colourability: ∃X ∀y ∀z∈B(y,1): y~z → (X(y) ⊕ X(z)). *)
let two_colourable =
  {
    name = "two-colourable";
    k = 1;
    locality = 1;
    uses_x = false;
    phi =
      Forall_near
        ( "z", 1,
          Implies (Adj ("y", "z"), xor (In_set (0, "y")) (In_set (0, "z"))) );
  }

(** Contains a triangle: ∃x ∀y (y = x → a triangle sits at y). *)
let has_triangle =
  {
    name = "has-triangle";
    k = 0;
    locality = 1;
    uses_x = true;
    phi =
      Implies
        ( Eq ("y", "x"),
          Exists_near
            ( "z1", 1,
              And
                ( Adj ("y", "z1"),
                  Exists_near
                    ("z2", 1, And (Adj ("y", "z2"), Adj ("z1", "z2"))) ) ) );
  }

(** Some node has degree ≥ 3. *)
let has_degree_three =
  let distinct a b = Not (Eq (a, b)) in
  {
    name = "has-degree-three";
    k = 0;
    locality = 1;
    uses_x = true;
    phi =
      Implies
        ( Eq ("y", "x"),
          Exists_near
            ( "z1", 1,
              And
                ( Adj ("y", "z1"),
                  Exists_near
                    ( "z2", 1,
                      And
                        ( And (Adj ("y", "z2"), distinct "z1" "z2"),
                          Exists_near
                            ( "z3", 1,
                              And
                                ( Adj ("y", "z3"),
                                  And (distinct "z1" "z3", distinct "z2" "z3")
                                ) ) ) ) ) ) );
  }

(** The graph is a cycle (within the connected family): every node has
    exactly two neighbours. *)
let is_cycle =
  {
    name = "is-cycle";
    k = 0;
    locality = 1;
    uses_x = false;
    phi =
      Exists_near
        ( "z1", 1,
          And
            ( Adj ("y", "z1"),
              Exists_near
                ( "z2", 1,
                  And
                    ( And (Adj ("y", "z2"), Not (Eq ("z1", "z2"))),
                      Forall_near
                        ( "z3", 1,
                          Implies
                            ( Adj ("y", "z3"),
                              Or (Eq ("z3", "z1"), Eq ("z3", "z2")) ) ) ) ) ) );
  }

(** 3-colourability: two monadic sets encode the colour (00, 01, 10 —
    11 is forbidden); adjacent nodes differ. ∃X₀ X₁ ∀y: ¬(X₀ y ∧ X₁ y)
    ∧ ∀z~y: colour(y) ≠ colour(z). *)
let three_colourable =
  let same_colour a b =
    And
      ( Or (And (In_set (0, a), In_set (0, b)), And (Not (In_set (0, a)), Not (In_set (0, b)))),
        Or (And (In_set (1, a), In_set (1, b)), And (Not (In_set (1, a)), Not (In_set (1, b))))
      )
  in
  {
    name = "three-colourable";
    k = 2;
    locality = 1;
    uses_x = false;
    phi =
      And
        ( Not (And (In_set (0, "y"), In_set (1, "y"))),
          Forall_near
            ("z", 1, Implies (Adj ("y", "z"), Not (same_colour "y" "z"))) );
  }

(** Reference deciders, used by tests to validate [Sigma11.holds] and
    the compiled schemes. *)
let two_colourable_ref g = Bipartite.is_bipartite g

let has_triangle_ref g =
  Graph.fold_edges
    (fun u v acc ->
      acc
      || List.exists
           (fun w -> Graph.mem_edge g u w && Graph.mem_edge g v w)
           (Graph.nodes g))
    g false

let has_degree_three_ref g =
  Graph.fold_nodes (fun v acc -> acc || Graph.degree g v >= 3) g false

let is_cycle_ref g =
  Graph.n g >= 3
  && Traversal.is_connected g
  && Graph.fold_nodes (fun v acc -> acc && Graph.degree g v = 2) g true

let three_colourable_ref g = Coloring.is_k_colourable g 3
