(** Compilation of monadic Σ¹₁ sentences to LogLCP schemes
    (Section 7.5): on connected graphs, every monadic Σ¹₁ property has
    a locally checkable proof of O(log n) bits.

    The proof at node v consists of the k membership bits
    [A₁(v) … A_k(v)], and — when the sentence uses the existential
    centre x — a spanning-tree certificate rooted at the witness node
    a, plus a copy of a's membership bits (so that φ may test
    [In_set (i, "x")] even far from a). The verifier checks the tree,
    then evaluates φ(Ā, a, y) in its radius-r view for its own y. *)

type witness = {
  sets : Graph.node -> int -> bool;  (** A_i membership. *)
  x : Graph.node option;
}

val holds : Formula.sentence -> Graph.t -> bool
(** Brute-force model checking: ∃A₁…A_k ∃a ∀y φ — exponential in
    [k · n(G)]; for small graphs and tests. *)

val find_witness : Formula.sentence -> Graph.t -> witness option
(** The witness behind {!holds}, when one exists. *)

val scheme :
  ?find:(Graph.t -> witness option) -> Formula.sentence -> Scheme.t
(** The compiled scheme. The prover uses [find] (defaulting to
    {!find_witness}) to obtain the second-order witness. The instance
    family is connected graphs. *)
