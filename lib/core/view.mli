(** Radius-r views: what one node sees when a local verifier with
    horizon [r] runs at it. Everything a verifier may legally depend on
    is reachable from this type — the induced subgraph [G[v,r]], the
    labels and the proof restricted to it, the centre, and the global
    input. Anything else (n(G), far-away structure) is invisible, which
    is what the lower-bound gluing arguments exploit. *)

type t

val make :
  Instance.t -> Proof.t -> centre:Graph.node -> radius:int -> t
(** Direct extraction of [(G[v,r], labels[v,r], P[v,r], v)]. *)

val of_ball :
  Instance.t ->
  Proof.t ->
  centre:Graph.node ->
  radius:int ->
  ball:Graph.node list ->
  dists:(Graph.node, int) Hashtbl.t ->
  t
(** Assembly step of {!make} with the ball precomputed: [ball] must be
    the sorted radius-[radius] ball of [centre] and [dists] the exact
    distances within it. {!Simulator}'s CSR fast path computes both
    with a bounded array BFS and funnels through this constructor, so
    fast-path views are structurally identical to {!make}'s. *)

val centre : t -> Graph.node
val radius : t -> int

val graph : t -> Graph.t
(** The induced subgraph [G[v,r]] — node identifiers are the original
    ones, as the paper's model M1 allows. *)

val instance : t -> Instance.t
(** The instance restricted to the ball — graph, labels and globals
    (no proof). Scheme transformers (Section 7) use it to re-run an
    inner verifier on the same ball with a different proof or label
    assignment. *)

val proof : t -> Proof.t
(** The proof restricted to the ball. *)

val proof_of : t -> Graph.node -> Bits.t
val label_of : t -> Graph.node -> Bits.t
val edge_label_of : t -> Graph.node -> Graph.node -> Bits.t
val arc_exists : t -> Graph.node -> Graph.node -> bool
val globals : t -> Bits.t

val neighbours : t -> Graph.node -> Graph.node list
val degree_in_view : t -> Graph.node -> int

val on_boundary : t -> Graph.node -> bool
(** [on_boundary view u] is true when [u] is at distance exactly
    [radius] from the centre — such a node's own neighbourhood is not
    fully visible, and verifiers must not trust its degree. *)

val dist_to_centre : t -> Graph.node -> int

val equal : t -> t -> bool
(** Structural equality of views — used to validate the round-based
    simulator against direct extraction, and by "indistinguishability"
    assertions in the lower-bound tests. *)

val pp : Format.formatter -> t -> unit
