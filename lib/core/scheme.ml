type verdict = Accept | Reject of Graph.node list

type t = {
  name : string;
  radius : int;
  size_bound : int -> int;
  prover : Instance.t -> Proof.t option;
  verifier : View.t -> bool;
}

let make ~name ~radius ~size_bound ~prover ~verifier =
  if radius < 0 then invalid_arg "Scheme.make: negative radius";
  { name; radius; size_bound; prover; verifier }

let verifier_output s inst proof v =
  let view = View.make inst proof ~centre:v ~radius:s.radius in
  try s.verifier view with Bits.Reader.Decode_error _ -> false

let decide s inst proof =
  let rejecting =
    Graph.fold_nodes
      (fun v acc -> if verifier_output s inst proof v then acc else v :: acc)
      (Instance.graph inst) []
  in
  match rejecting with [] -> Accept | vs -> Reject (List.rev vs)

let accepts s inst proof = decide s inst proof = Accept

let prove_and_check s inst =
  match s.prover inst with
  | None -> `No_proof
  | Some proof -> (
      match decide s inst proof with
      | Accept -> `Accepted proof
      | Reject vs -> `Rejected (proof, vs))
