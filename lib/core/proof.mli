(** Proofs: an assignment [P : V(G) → {0,1}*] of a bit string to every
    node (Section 2.1). The size [|P|] is the maximum number of bits at
    any node. *)

type t

val empty : t
(** The empty proof [ε], size 0 — what LCP(0) verifiers receive. *)

val of_list : (Graph.node * Bits.t) list -> t
val bindings : t -> (Graph.node * Bits.t) list

val get : t -> Graph.node -> Bits.t
(** Unassigned nodes read the empty string, so that the empty proof is
    total on any graph. *)

val set : t -> Graph.node -> Bits.t -> t

val size : t -> int
(** [|P|]: maximum bits per node. *)

val restrict : t -> Graph.node list -> t
(** [P[v, r]] — the restriction used when building a view. *)

val union_disjoint : t -> t -> t
(** Merge proofs on disjoint node sets (gluing constructions inherit
    proof labels from several yes-instances). Raises
    [Invalid_argument] on an overlap with conflicting values. *)

val truncate : int -> t -> t
(** [truncate b p] keeps the first [b] bits at each node — an
    adversarial bit-budget restriction for lower-bound experiments. *)

val map : (Graph.node -> Bits.t -> Bits.t) -> t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
