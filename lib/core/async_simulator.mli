(** Asynchronous variant of the LOCAL gather (complementing
    {!Simulator}): messages are delivered one at a time in an
    adversarial (seeded-random) order rather than in lockstep rounds,
    and nodes forward whenever they learn something new. Verification
    by view-gathering is delivery-order independent — knowledge only
    grows — so the final views must coincide with the synchronous and
    the direct ones; the tests confirm it. What asynchrony costs is
    messages, which the transcript reports. *)

type transcript = {
  deliveries : int;  (** Point-to-point messages delivered. *)
  quiescent : bool;
      (** Whether the network reached the no-pending-messages state
          (always true unless the bound below was hit). *)
}

val gather :
  ?seed:int ->
  ?max_deliveries:int ->
  Instance.t ->
  Proof.t ->
  radius:int ->
  (Graph.node * View.t) list * transcript
(** Run to quiescence (every node's radius-[radius] knowledge can no
    longer grow), delivering messages in seeded-random order.
    [max_deliveries] (default 1_000_000) bounds runaway loops. *)

val agrees_with_synchronous :
  ?seed:int -> Instance.t -> Proof.t -> radius:int -> bool
