(** Proof labelling schemes [(f, A)] (Section 2.2): a prover [f] that
    produces a proof for every yes-instance, and a local verifier [A]
    with a constant horizon.

    A property [P] admits locally checkable proofs of size [s] when
    - completeness: every yes-instance has a proof of size at most
      [s(n)] accepted by all nodes, and
    - soundness: no-instances are rejected by at least one node under
      {e every} proof. *)

type verdict = Accept | Reject of Graph.node list
(** [Reject vs] carries the non-empty list of rejecting nodes. *)

type t = {
  name : string;
  radius : int;  (** The verifier's local horizon [r]. *)
  size_bound : int -> int;
      (** Claimed proof size [s(n)] in bits per node; checked by the
          test suite and measured by the benchmarks. *)
  prover : Instance.t -> Proof.t option;
      (** [Some proof] on yes-instances, [None] when the prover
          recognises a no-instance (no valid proof exists). *)
  verifier : View.t -> bool;
}

val make :
  name:string ->
  radius:int ->
  size_bound:(int -> int) ->
  prover:(Instance.t -> Proof.t option) ->
  verifier:(View.t -> bool) ->
  t

val decide : t -> Instance.t -> Proof.t -> verdict
(** Run the verifier at every node (decision by unanimity). The empty
    graph is accepted vacuously. A verifier that raises
    [Bits.Reader.Decode_error] — a malformed proof — rejects at that
    node. *)

val accepts : t -> Instance.t -> Proof.t -> bool

val prove_and_check : t -> Instance.t -> [ `Accepted of Proof.t | `No_proof | `Rejected of Proof.t * Graph.node list ]
(** Convenience: run the prover, then the verifier on its output. A
    correct scheme never returns [`Rejected] on a yes-instance. *)

val verifier_output : t -> Instance.t -> Proof.t -> Graph.node -> bool
(** The output of a single node — [A(G, P, v)]. *)
