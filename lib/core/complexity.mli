(** Growth-class estimation for measured proof sizes. The benchmark
    harness measures [s(n)] for each scheme over a sweep of instance
    sizes and asks which row of Table 1 the series matches:
    0, Θ(1), Θ(log n), Θ(n), Θ(n²), or Θ(n²/log n). *)

type growth =
  | Zero
  | Constant
  | Logarithmic
  | Linear
  | Quadratic
  | Quadratic_over_log

val label : growth -> string
(** "0", "Θ(1)", "Θ(log n)", "Θ(n)", "Θ(n²)", "Θ(n²/log n)". *)

val model : growth -> int -> float
(** The comparison function itself (log base 2; [Zero] maps to 0). *)

val classify : (int * int) list -> growth
(** [classify [(n, bits); …]] picks the model minimising the relative
    spread of [bits / model n] over the series. All-zero series
    classify as [Zero]; needs at least two distinct [n] for a
    meaningful answer. *)

val fit_ratio : (int * int) list -> growth -> float
(** Coefficient of variation of [bits / model n] — lower is better. *)
