module IntSet = Set.Make (Int)
module IntMap = Map.Make (Int)

type record = {
  id : Graph.node;
  adjacency : Graph.node list;
  label : Bits.t;
  proof_bits : Bits.t;
  edge_bits : (Graph.node * Bits.t) list; (* labels of incident edges *)
}

type transcript = { rounds : int; messages_sent : int; max_message_bits : int }

let record_bits r =
  Bits.length r.label + Bits.length r.proof_bits
  + List.fold_left (fun acc (_, b) -> acc + Bits.length b + 64) 64 r.edge_bits
  + (64 * (1 + List.length r.adjacency))

(* --- reference path: round-based full-knowledge exchange ------------- *)

(* This is the executable form of the paper's LOCAL-model claim and the
   semantic reference for the CSR engine below: every fast-path result
   is cross-checked against it by the test suite. It deliberately keeps
   the persistent-map implementation. *)
let gather inst proof ~radius =
  let g = Instance.graph inst in
  let initial v =
    {
      id = v;
      adjacency = Graph.neighbours g v;
      label = Instance.node_label inst v;
      proof_bits = Proof.get proof v;
      edge_bits =
        List.map (fun u -> (u, Instance.edge_label inst v u)) (Graph.neighbours g v);
    }
  in
  (* knowledge.(v) : record IntMap — everything v has heard of. *)
  let knowledge = Hashtbl.create 64 in
  Graph.iter_nodes
    (fun v -> Hashtbl.replace knowledge v (IntMap.singleton v (initial v)))
    g;
  let messages = ref 0 in
  let max_bits = ref 0 in
  for _round = 1 to radius do
    (* Synchronous: compute all outgoing messages from the current
       state, then deliver. *)
    let outgoing =
      Graph.fold_nodes
        (fun v acc -> (v, Hashtbl.find knowledge v) :: acc)
        g []
    in
    List.iter
      (fun (v, known) ->
        let payload =
          IntMap.fold (fun _ r acc -> record_bits r + acc) known 0
        in
        Graph.iter_neighbours
          (fun u ->
            incr messages;
            max_bits := max !max_bits payload;
            let k_u = Hashtbl.find knowledge u in
            let merged =
              IntMap.union (fun _ r _ -> Some r) k_u known
            in
            Hashtbl.replace knowledge u merged)
          g v)
      outgoing
  done;
  (* A node's final knowledge covers its radius-r ball; rebuild the view
     by restricting the instance to the nodes it knows within distance
     r (computable locally from the learnt adjacency lists). *)
  let views =
    Graph.fold_nodes
      (fun v acc ->
        let known = Hashtbl.find knowledge v in
        let known_ids =
          IntMap.fold (fun id _ s -> IntSet.add id s) known IntSet.empty
        in
        (* Local BFS over learnt adjacency, bounded by radius. *)
        let dist = Hashtbl.create 32 in
        Hashtbl.replace dist v 0;
        let q = Queue.create () in
        Queue.push v q;
        while not (Queue.is_empty q) do
          let x = Queue.pop q in
          let d = Hashtbl.find dist x in
          if d < radius then
            match IntMap.find_opt x known with
            | None -> ()
            | Some r ->
                List.iter
                  (fun y ->
                    if IntSet.mem y known_ids && not (Hashtbl.mem dist y) then begin
                      Hashtbl.replace dist y (d + 1);
                      Queue.push y q
                    end)
                  r.adjacency
        done;
        let ball = Hashtbl.fold (fun x _ acc -> x :: acc) dist [] in
        let ball_set = IntSet.of_list ball in
        (* Assemble a fresh instance covering exactly the ball. *)
        let sub_graph =
          IntSet.fold
            (fun x acc ->
              let r = IntMap.find x known in
              List.fold_left
                (fun acc y ->
                  if IntSet.mem y ball_set then Graph.add_edge acc x y else acc)
                (Graph.add_node acc x) r.adjacency)
            ball_set Graph.empty
        in
        let sub_inst = Instance.of_graph sub_graph in
        let sub_inst = Instance.with_globals sub_inst (Instance.globals inst) in
        let sub_inst =
          IntSet.fold
            (fun x acc ->
              let r = IntMap.find x known in
              let acc =
                if Bits.length r.label > 0 then
                  Instance.with_node_label acc x r.label
                else acc
              in
              List.fold_left
                (fun acc (y, b) ->
                  if IntSet.mem y ball_set && Bits.length b > 0 then
                    Instance.with_edge_label acc x y b
                  else acc)
                acc r.edge_bits)
            ball_set sub_inst
        in
        let sub_proof =
          IntSet.fold
            (fun x acc -> Proof.set acc x (IntMap.find x known).proof_bits)
            ball_set Proof.empty
        in
        (v, View.make sub_inst sub_proof ~centre:v ~radius) :: acc)
      g []
  in
  ( List.rev views,
    { rounds = radius; messages_sent = !messages; max_message_bits = !max_bits } )

let run_verifier_reference inst proof ~radius verifier =
  let views, transcript = gather inst proof ~radius in
  ( List.map
      (fun (v, view) ->
        (v, try verifier view with Bits.Reader.Decode_error _ -> false))
      views,
    transcript )

(* --- fast path: compiled CSR + bounded scratch BFS ------------------- *)

(* Observability. Counters and histograms shard per domain, so
   recording under [Pool.parallel_for] is race- and allocation-free;
   the [_ns] counters accumulate per-phase time (ball extraction vs
   verifier eval), which costs two monotonic clock reads per node and
   is therefore also guarded at the call site, not just inside
   [Metrics]. Per-node trace spans only fire when tracing is on. *)
let m_compiles = Obs.Metrics.counter "simulator.compiles"
let m_balls = Obs.Metrics.counter "simulator.balls_extracted"
let m_ball_size = Obs.Metrics.histogram "simulator.ball_size"
let m_ball_ns = Obs.Metrics.counter "simulator.ball_ns"
let m_calls = Obs.Metrics.counter "simulator.verifier_calls"
let m_rejects = Obs.Metrics.counter "simulator.verifier_rejects"
let m_decode_errors = Obs.Metrics.counter "simulator.decode_errors"
let m_eval_ns = Obs.Metrics.counter "simulator.eval_ns"

type compiled = {
  inst : Instance.t;
  csr : Csr.t;
  static_bits : int array;
      (* per dense index: record_bits minus the proof contribution,
         i.e. everything that does not change between proofs *)
}

let compile inst =
  let build () =
    let g = Instance.graph inst in
    let csr = Csr.of_graph g in
    let static_bits =
      Array.init (Csr.n csr) (fun i ->
          let v = Csr.node csr i in
          let edge =
            Graph.fold_neighbours
              (fun u acc -> acc + Bits.length (Instance.edge_label inst v u) + 64)
              g v 64
          in
          Bits.length (Instance.node_label inst v)
          + edge
          + (64 * (1 + Csr.degree csr i)))
    in
    { inst; csr; static_bits }
  in
  Obs.Metrics.incr m_compiles;
  if Obs.Trace.on () then Obs.Trace.span "simulator.compile" build
  else build ()

let compiled_instance c = c.inst
let compiled_csr c = c.csr
let compiled_static_bits c = c.static_bits

let compiled_of_parts inst csr static_bits =
  if Array.length static_bits <> Csr.n csr then
    invalid_arg "Simulator.compiled_of_parts: static_bits length mismatch";
  { inst; csr; static_bits }

(* Per-proof record sizes: static part + proof length at each node. *)
let record_sizes c proof =
  Array.init (Csr.n c.csr) (fun i ->
      c.static_bits.(i) + Bits.length (Proof.get proof (Csr.node c.csr i)))

let record_sizes_into c proof sizes =
  for i = 0 to Csr.n c.csr - 1 do
    sizes.(i) <- c.static_bits.(i) + Bits.length (Proof.get proof (Csr.node c.csr i))
  done

(* Sort the first [k] entries of [a] in place. Balls on the serving
   path are small, so insertion sort wins; past the cutoff fall back
   to a copying [Array.sort]. *)
let sort_prefix a k =
  if k > 48 then begin
    let tmp = Array.sub a 0 k in
    Array.sort Int.compare tmp;
    Array.blit tmp 0 a 0 k
  end
  else
    for i = 1 to k - 1 do
      let x = a.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && a.(!j) > x do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- x
    done

(* Extract one view with a bounded BFS, plus (when [payload] is given)
   the size of the knowledge payload this node would send in the final
   gather round — the sum of record sizes over its radius-(r-1) ball —
   which is what reproduces the reference transcript exactly.

   [ids_buf] / [dists_buf] are arena buffers: when given (and big
   enough) the ball's identifier prefix and distance table live in
   them instead of fresh allocations. The returned view aliases
   [dists_buf], so it is only valid until the buffer's next reuse. *)
let view_of_scratch c proof scratch ?ids_buf ?dists_buf ?payload ?sizes
    ~centre_idx ~radius () =
  let t0 = if !Obs.Metrics.enabled then Obs.Clock.now_ns () else 0 in
  let count = Csr.ball c.csr scratch ~centre:centre_idx ~radius in
  let ids =
    match ids_buf with
    | Some b when Array.length b >= count -> b
    | _ -> Array.make count 0
  in
  let dists =
    match dists_buf with
    | Some h ->
        Hashtbl.reset h;
        h
    | None -> Hashtbl.create 32
  in
  (match (payload, sizes) with
  | Some cell, Some sizes ->
      let sum = ref 0 in
      for i = 0 to count - 1 do
        let idx = Csr.visited scratch i in
        let d = Csr.dist scratch idx in
        ids.(i) <- Csr.node c.csr idx;
        Hashtbl.replace dists ids.(i) d;
        if d < radius then sum := !sum + sizes.(idx)
      done;
      cell := !sum
  | _ ->
      for i = 0 to count - 1 do
        let idx = Csr.visited scratch i in
        ids.(i) <- Csr.node c.csr idx;
        Hashtbl.replace dists ids.(i) (Csr.dist scratch idx)
      done);
  sort_prefix ids count;
  let ball = List.init count (fun i -> ids.(i)) in
  let view =
    View.of_ball c.inst proof ~centre:(Csr.node c.csr centre_idx) ~radius ~ball
      ~dists
  in
  if t0 <> 0 then begin
    Obs.Metrics.incr m_balls;
    Obs.Metrics.observe m_ball_size count;
    Obs.Metrics.add m_ball_ns (Obs.Clock.now_ns () - t0)
  end;
  view

let view_at c proof ~radius v =
  if radius < 0 then invalid_arg "Simulator.view_at: negative radius";
  let scratch = Csr.scratch c.csr in
  view_of_scratch c proof scratch ~centre_idx:(Csr.index c.csr v) ~radius ()

(* --- arena: per-domain buffers reused across verification runs ------- *)

(* Extends [Csr.scratch]'s lazy-reset idea up through the whole
   sequential sweep: one arena owns every per-run buffer (BFS scratch,
   ball ids, record sizes, verdict and payload arrays, the view's
   distance table), grown monotonically to the largest graph seen, so
   a warm [run_verifier ~arena] run allocates nothing per node beyond
   the view's own persistent sub-instance. Single-owner, like a
   scratch: never share one arena between domains. *)
type arena = {
  mutable a_scratch : Csr.scratch;
  mutable a_ids : int array;
  mutable a_sizes : int array;
  mutable a_verdicts : bool array;
  mutable a_payloads : int array;
  a_dists : (Graph.node, int) Hashtbl.t;
}

let arena () =
  {
    a_scratch = Csr.scratch_of_capacity 1;
    a_ids = [||];
    a_sizes = [||];
    a_verdicts = [||];
    a_payloads = [||];
    a_dists = Hashtbl.create 64;
  }

let arena_fit a n =
  if Csr.scratch_capacity a.a_scratch < n then
    a.a_scratch <- Csr.scratch_of_capacity n;
  if Array.length a.a_ids < n then a.a_ids <- Array.make n 0;
  if Array.length a.a_sizes < n then a.a_sizes <- Array.make n 0;
  if Array.length a.a_verdicts < n then a.a_verdicts <- Array.make n false;
  if Array.length a.a_payloads < n then a.a_payloads <- Array.make n 0

let arena_capacity a = Csr.scratch_capacity a.a_scratch

let run_verifier ?(jobs = 1) ?compiled ?arena inst proof ~radius verifier =
  if radius < 0 then invalid_arg "Simulator.run_verifier: negative radius";
  let c = match compiled with Some c -> c | None -> compile inst in
  let n = Csr.n c.csr in
  (* The arena only serves the sequential sweep: chunked workers each
     need their own scratch, so [jobs > 1] ignores it. *)
  let arena = if jobs <= 1 then arena else None in
  (match arena with Some a -> arena_fit a n | None -> ());
  let sizes =
    match arena with
    | Some a ->
        record_sizes_into c proof a.a_sizes;
        a.a_sizes
    | None -> record_sizes c proof
  in
  let verdicts =
    match arena with Some a -> a.a_verdicts | None -> Array.make n false
  in
  let payloads =
    match arena with Some a -> a.a_payloads | None -> Array.make n 0
  in
  let eval view =
    try verifier view
    with Bits.Reader.Decode_error _ ->
      Obs.Metrics.incr m_decode_errors;
      false
  in
  let process ?ids_buf ?dists_buf scratch i =
    let payload = ref 0 in
    let tracing = Obs.Trace.on () in
    let view =
      if tracing then
        Obs.Trace.span_arg "simulator.ball" "node" (Csr.node c.csr i)
          (fun () ->
            view_of_scratch c proof scratch ?ids_buf ?dists_buf ~payload ~sizes
              ~centre_idx:i ~radius ())
      else
        view_of_scratch c proof scratch ?ids_buf ?dists_buf ~payload ~sizes
          ~centre_idx:i ~radius ()
    in
    payloads.(i) <- !payload;
    let t0 = if !Obs.Metrics.enabled then Obs.Clock.now_ns () else 0 in
    let ok =
      if tracing then
        Obs.Trace.span_arg "simulator.eval" "node" (Csr.node c.csr i)
          (fun () -> eval view)
      else eval view
    in
    if t0 <> 0 then Obs.Metrics.add m_eval_ns (Obs.Clock.now_ns () - t0);
    Obs.Metrics.incr m_calls;
    if not ok then Obs.Metrics.incr m_rejects;
    verdicts.(i) <- ok
  in
  let sweep () =
    Pool.run ~jobs (fun pool ->
        match pool with
        | None -> (
            match arena with
            | Some a ->
                for i = 0 to n - 1 do
                  process ~ids_buf:a.a_ids ~dists_buf:a.a_dists a.a_scratch i
                done
            | None ->
                let scratch = Csr.scratch c.csr in
                for i = 0 to n - 1 do
                  process scratch i
                done)
        | Some pool ->
            Pool.parallel_for pool ~chunks:(Pool.size pool) ~n (fun _c lo hi ->
                let scratch = Csr.scratch c.csr in
                if Obs.Trace.on () then
                  Obs.Trace.span_arg "simulator.chunk" "nodes" (hi - lo)
                    (fun () ->
                      for i = lo to hi - 1 do
                        process scratch i
                      done)
                else
                  for i = lo to hi - 1 do
                    process scratch i
                  done))
  in
  if Obs.Trace.on () then
    Obs.Trace.span_arg "simulator.run_verifier" "nodes" n sweep
  else sweep ();
  (* Transcript of the synchronous exchange, computed in closed form:
     every node sends its whole knowledge to every neighbour each
     round, so messages = radius * Σ deg(v), and the largest message is
     the final-round payload of the best-informed sender — exactly what
     [gather] counts, without re-running the exchange. *)
  let messages_sent = radius * 2 * Csr.m c.csr in
  let max_message_bits =
    let mx = ref 0 in
    for i = 0 to n - 1 do
      if Csr.degree c.csr i > 0 && payloads.(i) > !mx then mx := payloads.(i)
    done;
    if radius = 0 then 0 else !mx
  in
  ( List.init n (fun i -> (Csr.node c.csr i, verdicts.(i))),
    { rounds = radius; messages_sent; max_message_bits } )

(* Partition shards verify only their owned nodes: same per-node path
   as [run_verifier], swept over an explicit identifier subset. No
   transcript — a shard's exchange accounting is the whole graph's
   business, not the slice's. *)
let run_verifier_on ?(jobs = 1) ?arena c proof ~radius ~nodes verifier =
  if radius < 0 then invalid_arg "Simulator.run_verifier_on: negative radius";
  let k = Array.length nodes in
  let idxs = Array.map (Csr.index c.csr) nodes in
  let n = Csr.n c.csr in
  let arena = if jobs <= 1 then arena else None in
  (match arena with Some a -> arena_fit a n | None -> ());
  let verdicts = Array.make (max k 1) false in
  let eval view =
    try verifier view
    with Bits.Reader.Decode_error _ ->
      Obs.Metrics.incr m_decode_errors;
      false
  in
  let process ?ids_buf ?dists_buf scratch j =
    let view =
      view_of_scratch c proof scratch ?ids_buf ?dists_buf
        ~centre_idx:idxs.(j) ~radius ()
    in
    Obs.Metrics.incr m_calls;
    let ok = eval view in
    if not ok then Obs.Metrics.incr m_rejects;
    verdicts.(j) <- ok
  in
  let sweep () =
    Pool.run ~jobs (fun pool ->
        match pool with
        | None -> (
            match arena with
            | Some a ->
                for j = 0 to k - 1 do
                  process ~ids_buf:a.a_ids ~dists_buf:a.a_dists a.a_scratch j
                done
            | None ->
                let scratch = Csr.scratch c.csr in
                for j = 0 to k - 1 do
                  process scratch j
                done)
        | Some pool ->
            Pool.parallel_for pool ~chunks:(Pool.size pool) ~n:k (fun _c lo hi ->
                let scratch = Csr.scratch c.csr in
                for j = lo to hi - 1 do
                  process scratch j
                done))
  in
  if !Obs.Trace.enabled then
    Obs.Trace.span_arg "simulator.run_verifier_on" "nodes" k sweep
  else sweep ();
  List.init k (fun j -> (nodes.(j), verdicts.(j)))

let all_accept c proof ~radius verifier =
  if radius < 0 then invalid_arg "Simulator.all_accept: negative radius";
  let n = Csr.n c.csr in
  let scratch = Csr.scratch c.csr in
  let rec go i =
    i = n
    ||
    let view = view_of_scratch c proof scratch ~centre_idx:i ~radius () in
    Obs.Metrics.incr m_calls;
    let ok =
      try verifier view
      with Bits.Reader.Decode_error _ ->
        Obs.Metrics.incr m_decode_errors;
        false
    in
    if not ok then Obs.Metrics.incr m_rejects;
    ok && go (i + 1)
  in
  go 0

let agrees_with_direct inst proof ~radius =
  let c = compile inst in
  let views, _ = gather inst proof ~radius in
  List.for_all
    (fun (v, view) ->
      View.equal view (View.make inst proof ~centre:v ~radius)
      && View.equal view (view_at c proof ~radius v))
    views
