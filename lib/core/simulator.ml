module IntSet = Set.Make (Int)
module IntMap = Map.Make (Int)

type record = {
  id : Graph.node;
  adjacency : Graph.node list;
  label : Bits.t;
  proof_bits : Bits.t;
  edge_bits : (Graph.node * Bits.t) list; (* labels of incident edges *)
}

type transcript = { rounds : int; messages_sent : int; max_message_bits : int }

let record_bits r =
  Bits.length r.label + Bits.length r.proof_bits
  + List.fold_left (fun acc (_, b) -> acc + Bits.length b + 64) 64 r.edge_bits
  + (64 * (1 + List.length r.adjacency))

let gather inst proof ~radius =
  let g = Instance.graph inst in
  let initial v =
    {
      id = v;
      adjacency = Graph.neighbours g v;
      label = Instance.node_label inst v;
      proof_bits = Proof.get proof v;
      edge_bits =
        List.map (fun u -> (u, Instance.edge_label inst v u)) (Graph.neighbours g v);
    }
  in
  (* knowledge.(v) : record IntMap — everything v has heard of. *)
  let knowledge = Hashtbl.create 64 in
  Graph.iter_nodes
    (fun v -> Hashtbl.replace knowledge v (IntMap.singleton v (initial v)))
    g;
  let messages = ref 0 in
  let max_bits = ref 0 in
  for _round = 1 to radius do
    (* Synchronous: compute all outgoing messages from the current
       state, then deliver. *)
    let outgoing =
      Graph.fold_nodes
        (fun v acc -> (v, Hashtbl.find knowledge v) :: acc)
        g []
    in
    List.iter
      (fun (v, known) ->
        let payload =
          IntMap.fold (fun _ r acc -> record_bits r + acc) known 0
        in
        List.iter
          (fun u ->
            incr messages;
            max_bits := max !max_bits payload;
            let k_u = Hashtbl.find knowledge u in
            let merged =
              IntMap.union (fun _ r _ -> Some r) k_u known
            in
            Hashtbl.replace knowledge u merged)
          (Graph.neighbours g v))
      outgoing
  done;
  (* A node's final knowledge covers its radius-r ball; rebuild the view
     by restricting the instance to the nodes it knows within distance
     r (computable locally from the learnt adjacency lists). *)
  let views =
    Graph.fold_nodes
      (fun v acc ->
        let known = Hashtbl.find knowledge v in
        let known_ids =
          IntMap.fold (fun id _ s -> IntSet.add id s) known IntSet.empty
        in
        (* Local BFS over learnt adjacency, bounded by radius. *)
        let dist = Hashtbl.create 32 in
        Hashtbl.replace dist v 0;
        let q = Queue.create () in
        Queue.push v q;
        while not (Queue.is_empty q) do
          let x = Queue.pop q in
          let d = Hashtbl.find dist x in
          if d < radius then
            match IntMap.find_opt x known with
            | None -> ()
            | Some r ->
                List.iter
                  (fun y ->
                    if IntSet.mem y known_ids && not (Hashtbl.mem dist y) then begin
                      Hashtbl.replace dist y (d + 1);
                      Queue.push y q
                    end)
                  r.adjacency
        done;
        let ball = Hashtbl.fold (fun x _ acc -> x :: acc) dist [] in
        let ball_set = IntSet.of_list ball in
        (* Assemble a fresh instance covering exactly the ball. *)
        let sub_graph =
          IntSet.fold
            (fun x acc ->
              let r = IntMap.find x known in
              List.fold_left
                (fun acc y ->
                  if IntSet.mem y ball_set then Graph.add_edge acc x y else acc)
                (Graph.add_node acc x) r.adjacency)
            ball_set Graph.empty
        in
        let sub_inst = Instance.of_graph sub_graph in
        let sub_inst = Instance.with_globals sub_inst (Instance.globals inst) in
        let sub_inst =
          IntSet.fold
            (fun x acc ->
              let r = IntMap.find x known in
              let acc =
                if Bits.length r.label > 0 then
                  Instance.with_node_label acc x r.label
                else acc
              in
              List.fold_left
                (fun acc (y, b) ->
                  if IntSet.mem y ball_set && Bits.length b > 0 then
                    Instance.with_edge_label acc x y b
                  else acc)
                acc r.edge_bits)
            ball_set sub_inst
        in
        let sub_proof =
          IntSet.fold
            (fun x acc -> Proof.set acc x (IntMap.find x known).proof_bits)
            ball_set Proof.empty
        in
        (v, View.make sub_inst sub_proof ~centre:v ~radius) :: acc)
      g []
  in
  ( List.rev views,
    { rounds = radius; messages_sent = !messages; max_message_bits = !max_bits } )

let run_verifier inst proof ~radius verifier =
  let views, transcript = gather inst proof ~radius in
  ( List.map
      (fun (v, view) ->
        (v, try verifier view with Bits.Reader.Decode_error _ -> false))
      views,
    transcript )

let agrees_with_direct inst proof ~radius =
  let views, _ = gather inst proof ~radius in
  List.for_all
    (fun (v, view) ->
      View.equal view (View.make inst proof ~centre:v ~radius))
    views
