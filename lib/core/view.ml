type t = {
  centre : Graph.node;
  radius : int;
  sub : Instance.t; (* instance restricted to the ball *)
  proof : Proof.t;
  dists : (Graph.node, int) Hashtbl.t;
}

(* Shared assembly: [ball] must be the sorted radius-[radius] ball of
   [centre] and [dists] its exact distance table. Both the direct
   extraction below and the CSR fast path in [Simulator] funnel through
   this single constructor, which is what keeps the two paths
   behaviourally identical. *)
let of_ball inst proof ~centre ~radius ~ball ~dists =
  let g = Instance.graph inst in
  let sub_graph = Graph.induced g ball in
  let sub = Instance.of_graph sub_graph in
  let sub = Instance.with_globals sub (Instance.globals inst) in
  let sub =
    List.fold_left
      (fun acc v ->
        let l = Instance.node_label inst v in
        if Bits.length l > 0 then Instance.with_node_label acc v l else acc)
      sub ball
  in
  let sub =
    Graph.fold_edges
      (fun u v acc ->
        let l = Instance.edge_label inst u v in
        if Bits.length l > 0 then Instance.with_edge_label acc u v l else acc)
      sub_graph sub
  in
  { centre; radius; sub; proof = Proof.restrict proof ball; dists }

let make inst proof ~centre ~radius =
  let g = Instance.graph inst in
  if not (Graph.mem_node g centre) then invalid_arg "View.make: unknown centre";
  if radius < 0 then invalid_arg "View.make: negative radius";
  let ball = Traversal.ball g centre radius in
  let dists = Hashtbl.create 32 in
  List.iter
    (fun (u, d) -> if d <= radius then Hashtbl.replace dists u d)
    (Traversal.bfs_distances g centre);
  of_ball inst proof ~centre ~radius ~ball ~dists

let centre v = v.centre
let radius v = v.radius
let graph v = Instance.graph v.sub
let instance v = v.sub
let proof v = v.proof
let proof_of v u = Proof.get v.proof u
let label_of v u = Instance.node_label v.sub u
let edge_label_of v a b = Instance.edge_label v.sub a b
let arc_exists v a b = Instance.arc_exists v.sub a b
let globals v = Instance.globals v.sub
let neighbours v u = Graph.neighbours (graph v) u
let degree_in_view v u = Graph.degree (graph v) u

let dist_to_centre v u =
  match Hashtbl.find_opt v.dists u with
  | Some d -> d
  | None -> invalid_arg "View.dist_to_centre: node not in view"

let on_boundary v u = dist_to_centre v u = v.radius

let equal v1 v2 =
  v1.centre = v2.centre && v1.radius = v2.radius
  && Instance.equal v1.sub v2.sub
  && Proof.equal v1.proof v2.proof

let pp ppf v =
  Format.fprintf ppf "@[<v 2>view centre=%d radius=%d@ %a@ %a@]" v.centre
    v.radius Graph.pp (graph v) Proof.pp v.proof
