(* Observability: queue depth is a high-water gauge, busy/idle are
   per-worker nanosecond counters (sharded per domain, so the snapshot
   shows aggregate utilisation); every task execution is a trace span
   on its worker's timeline. All recording is guarded by the metrics /
   trace enabled flags — a disabled pool pays one check per site. *)
let m_queue_depth = Obs.Metrics.gauge_max "pool.queue_depth_max"
let m_tasks = Obs.Metrics.counter "pool.tasks_completed"
let m_busy_ns = Obs.Metrics.counter "pool.busy_ns"
let m_idle_ns = Obs.Metrics.counter "pool.idle_ns"
let m_alloc_bytes = Obs.Metrics.counter "pool.task_alloc_bytes"

type t = {
  size : int;
  lock : Mutex.t;
  has_work : Condition.t; (* signalled on submit and shutdown *)
  quiescent : Condition.t; (* signalled when pending reaches 0 *)
  tasks : (unit -> unit) Queue.t;
  mutable pending : int; (* queued + running *)
  mutable stopping : bool;
  mutable error : exn option; (* first task exception, for [wait] *)
  mutable workers : unit Domain.t list;
}

let size p = p.size
let default_jobs () = Domain.recommended_domain_count ()

let pending p =
  Mutex.lock p.lock;
  let n = p.pending in
  Mutex.unlock p.lock;
  n

let rec worker_loop p =
  Mutex.lock p.lock;
  let t_wait = if !Obs.Metrics.enabled then Obs.Clock.now_ns () else 0 in
  while Queue.is_empty p.tasks && not p.stopping do
    Condition.wait p.has_work p.lock
  done;
  if t_wait <> 0 then Obs.Metrics.add m_idle_ns (Obs.Clock.now_ns () - t_wait);
  if Queue.is_empty p.tasks then (* stopping and drained *)
    Mutex.unlock p.lock
  else begin
    let task = Queue.pop p.tasks in
    Mutex.unlock p.lock;
    let t_run = if !Obs.Metrics.enabled then Obs.Clock.now_ns () else 0 in
    (* Profiler hooks: the "pool.task" span feeds the worker's
       active-span stack (so the sampler attributes this domain's time
       even with tracing off), and Gc.allocated_bytes bracketing — a
       per-domain counter, exact because the task owns this domain —
       charges the task's allocations to the pool counter. *)
    let a_run = if !Obs.Profile.enabled then Gc.allocated_bytes () else 0.0 in
    (try
       if Obs.Trace.on () then Obs.Trace.span "pool.task" task else task ()
     with e ->
       Mutex.lock p.lock;
       if p.error = None then p.error <- Some e;
       Mutex.unlock p.lock);
    if !Obs.Profile.enabled && a_run > 0.0 then
      Obs.Metrics.add m_alloc_bytes
        (int_of_float (Gc.allocated_bytes () -. a_run));
    if t_run <> 0 then Obs.Metrics.add m_busy_ns (Obs.Clock.now_ns () - t_run);
    Obs.Metrics.incr m_tasks;
    Mutex.lock p.lock;
    p.pending <- p.pending - 1;
    if p.pending = 0 then Condition.broadcast p.quiescent;
    Mutex.unlock p.lock;
    worker_loop p
  end

let create size =
  if size < 1 then invalid_arg "Pool.create: need at least one worker";
  let p =
    {
      size;
      lock = Mutex.create ();
      has_work = Condition.create ();
      quiescent = Condition.create ();
      tasks = Queue.create ();
      pending = 0;
      stopping = false;
      error = None;
      workers = [];
    }
  in
  p.workers <- List.init size (fun _ -> Domain.spawn (fun () -> worker_loop p));
  Obs.Trace.instant ~arg_name:"workers" ~arg:size "pool.create";
  p

type decline = Queue_full | Shutting_down

(* Shutdown wins over a full queue when both hold: the caller must not
   be told to "retry later" against a pool that will never come back. *)
let submit_res ?max_pending p task =
  Mutex.lock p.lock;
  let verdict =
    if p.stopping then Error Shutting_down
    else
      match max_pending with
      | Some b when p.pending >= b -> Error Queue_full
      | _ -> Ok ()
  in
  (match verdict with
  | Ok () ->
      Queue.push task p.tasks;
      p.pending <- p.pending + 1;
      Obs.Metrics.observe_max m_queue_depth (Queue.length p.tasks);
      Condition.signal p.has_work
  | Error _ -> ());
  Mutex.unlock p.lock;
  verdict

let submit_opt ?max_pending p task =
  Result.is_ok (submit_res ?max_pending p task)

let submit p task =
  if not (submit_opt p task) then invalid_arg "Pool.submit: pool is shut down"

let wait p =
  Mutex.lock p.lock;
  while p.pending > 0 do
    Condition.wait p.quiescent p.lock
  done;
  let err = p.error in
  p.error <- None;
  Mutex.unlock p.lock;
  match err with Some e -> raise e | None -> ()

let shutdown p =
  Mutex.lock p.lock;
  let already = p.stopping in
  p.stopping <- true;
  Condition.broadcast p.has_work;
  Mutex.unlock p.lock;
  if not already then begin
    List.iter Domain.join p.workers;
    p.workers <- [];
    Obs.Trace.instant ~arg_name:"workers" ~arg:p.size "pool.shutdown"
  end

let run ~jobs f =
  if jobs <= 1 then f None
  else
    let p = create jobs in
    Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f (Some p))

let parallel_for p ~chunks ~n body =
  if chunks < 1 then invalid_arg "Pool.parallel_for: chunks < 1";
  if n > 0 then begin
    let k = min chunks n in
    let base = n / k and rem = n mod k in
    let lo = ref 0 in
    for c = 0 to k - 1 do
      let width = base + if c < rem then 1 else 0 in
      let l = !lo in
      let h = l + width in
      lo := h;
      submit p (fun () -> body c l h)
    done;
    wait p
  end
