(** Scheme validation harness: executable completeness and soundness.

    Completeness is checked directly from the definition. Soundness
    ("for a no-instance, {e every} proof has a rejecting node") is
    checked three ways, in increasing strength and cost:
    random proofs, adversarial hill-climbing proof forging, and — for
    tiny instances — exhaustive enumeration of all proofs up to a bit
    budget, which is a genuine proof of soundness at that budget. *)

type completeness_report = {
  instances_checked : int;
  all_accepted : bool;
  max_proof_bits : int;
  bound_respected : bool;
  failures : string list;
}

val completeness :
  Scheme.t -> Instance.t list -> completeness_report
(** Every listed instance must be a yes-instance: the prover must
    return a proof, within the size bound, accepted by all nodes. *)

val soundness_random :
  ?seed:int ->
  ?jobs:int ->
  Scheme.t ->
  Instance.t ->
  samples:int ->
  max_bits:int ->
  bool
(** True when every sampled random proof is rejected somewhere. The
    instance is compiled to CSR once and probed via
    {!Simulator.all_accept}, stopping at the first accepted forgery.
    With [jobs > 1] the sample range is fanned out over that many
    domains; each sample then draws from its own [(seed, index)]-keyed
    stream, so the verdict is deterministic and independent of the
    worker count (though the sampled proofs differ from the sequential
    [jobs <= 1] stream, which keeps the original single-stream
    behaviour). *)

type empirical = {
  trials : int;  (** Forgery trials attempted. *)
  invalid : int;  (** Trials whose proof the {e full} verifier rejected. *)
  fooled : int;  (** Invalid proofs the sampled verifier accepted. *)
  rate : float;  (** [fooled / invalid]; 0 when nothing was invalid. *)
  wilson_low : float;  (** 95% Wilson score interval on [rate]. *)
  wilson_high : float;
}

val soundness_empirical :
  ?seed:int ->
  ?jobs:int ->
  Scheme.t ->
  Instance.t ->
  samples:int ->
  max_bits:int ->
  sampled:(seed:int -> Simulator.compiled -> Proof.t -> bool) ->
  empirical
(** Measure a sampled verifier's observed one-sided error: forge
    [samples] random proofs exactly as {!soundness_random} does, keep
    the ones the scheme's full verifier rejects, and count how many of
    those the [sampled] closure (a seeded sampled-verification run —
    see [Randomized_scheme.run]; the closure receives a per-trial
    seed) accepts anyway. The declared error budget ε is violated when
    [wilson_low] exceeds it. Trial proofs and sampled-run seeds derive
    from [(seed, index)] only, so the counts are independent of
    [jobs]. *)

val wilson : fooled:int -> invalid:int -> float * float
(** The 95% Wilson score interval on a [fooled/invalid] proportion;
    [(0, 1)] when [invalid = 0]. *)

val soundness_exhaustive :
  Scheme.t -> Instance.t -> max_bits:int -> bool
(** Enumerates {e all} proofs assigning each node a string of length
    [0..max_bits] — exponential, intended for [n·max_bits ≲ 16]. *)

val prover_refuses : Scheme.t -> Instance.t -> bool
(** The prover returns [None] (it recognises a no-instance). *)

val exhaustive_proof_count : n:int -> max_bits:int -> float
(** Number of proofs {!soundness_exhaustive} would enumerate — guard
    against accidentally expensive calls. *)
