(** Scheme validation harness: executable completeness and soundness.

    Completeness is checked directly from the definition. Soundness
    ("for a no-instance, {e every} proof has a rejecting node") is
    checked three ways, in increasing strength and cost:
    random proofs, adversarial hill-climbing proof forging, and — for
    tiny instances — exhaustive enumeration of all proofs up to a bit
    budget, which is a genuine proof of soundness at that budget. *)

type completeness_report = {
  instances_checked : int;
  all_accepted : bool;
  max_proof_bits : int;
  bound_respected : bool;
  failures : string list;
}

val completeness :
  Scheme.t -> Instance.t list -> completeness_report
(** Every listed instance must be a yes-instance: the prover must
    return a proof, within the size bound, accepted by all nodes. *)

val soundness_random :
  ?seed:int ->
  ?jobs:int ->
  Scheme.t ->
  Instance.t ->
  samples:int ->
  max_bits:int ->
  bool
(** True when every sampled random proof is rejected somewhere. The
    instance is compiled to CSR once and probed via
    {!Simulator.all_accept}, stopping at the first accepted forgery.
    With [jobs > 1] the sample range is fanned out over that many
    domains; each sample then draws from its own [(seed, index)]-keyed
    stream, so the verdict is deterministic and independent of the
    worker count (though the sampled proofs differ from the sequential
    [jobs <= 1] stream, which keeps the original single-stream
    behaviour). *)

val soundness_exhaustive :
  Scheme.t -> Instance.t -> max_bits:int -> bool
(** Enumerates {e all} proofs assigning each node a string of length
    [0..max_bits] — exponential, intended for [n·max_bits ≲ 16]. *)

val prover_refuses : Scheme.t -> Instance.t -> bool
(** The prover returns [None] (it recognises a no-instance). *)

val exhaustive_proof_count : n:int -> max_bits:int -> float
(** Number of proofs {!soundness_exhaustive} would enumerate — guard
    against accidentally expensive calls. *)
