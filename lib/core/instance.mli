(** Problem instances: a graph plus the auxiliary information the paper
    allows — node labels (s/t marks, solution bits, leader flags),
    edge labels (matching membership, orientations, weights) and a
    global input shared by all nodes (e.g. the constant [k] of the
    s–t connectivity scheme, which "is given as input to all nodes").

    Labels are bit strings; each scheme fixes its own field layout
    using {!Bits.Writer}/{!Bits.Reader}. Labels are {e inputs} visible
    to the verifier, as opposed to the proof, which is the
    nondeterministic part. *)

type t

val of_graph : Graph.t -> t
val graph : t -> Graph.t
val n : t -> int

val node_label : t -> Graph.node -> Bits.t
(** Empty when unset. *)

val edge_label : t -> Graph.node -> Graph.node -> Bits.t
(** Symmetric: queried with either endpoint order. Empty when unset. *)

val globals : t -> Bits.t

val with_node_label : t -> Graph.node -> Bits.t -> t
val with_node_labels : t -> (Graph.node * Bits.t) list -> t
val with_edge_label : t -> Graph.node -> Graph.node -> Bits.t -> t
val with_edge_labels : t -> ((Graph.node * Graph.node) * Bits.t) list -> t
val with_globals : t -> Bits.t -> t

val mark_nodes : t -> (Graph.node * bool) list -> t
(** Single-bit node labels: [(v, b)] sets node [v]'s label to the one
    bit [b]. *)

val marked_exactly_one : t -> Graph.node option
(** When exactly one node has label "1", that node; else [None].
    Convenience for s/t/leader-style promises. *)

val flag_edges : t -> (Graph.node * Graph.node) list -> t
(** Single-bit edge labels: listed edges get "1", all other edges of
    the graph get "0". Raises on non-edges. *)

val flagged_edges : t -> (Graph.node * Graph.node) list
(** Edges whose label has first bit 1, each as [(u, v)], [u < v]. *)

val of_digraph : Digraph.t -> t
(** Encodes a directed graph over its underlying undirected graph:
    each edge label is two bits [(u→v?, v→u?)] with [u < v]. *)

val arc_exists : t -> Graph.node -> Graph.node -> bool
(** Reads the {!of_digraph} encoding: is there an arc u→v? *)

val relabel : t -> (Graph.node -> Graph.node) -> t
(** Rename nodes everywhere (graph, labels); injective maps only. *)

val union_disjoint : t -> t -> t
(** Disjoint union of graphs and labels; globals must agree. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
