(** Synchronous LOCAL-model simulator (Peleg). A local verifier with
    horizon [r] "can be implemented as a distributed algorithm that
    completes in r synchronous communication rounds" (Section 2.1); this
    module implements that claim executably.

    Every node starts knowing its own identity, label, proof string,
    the global input, and its incident edges; in each round all nodes
    exchange their entire knowledge with their neighbours. After [r]
    rounds each node reconstructs its radius-[r] view, which tests
    compare against {!View.make}'s direct extraction.

    Two implementations coexist:
    - {!gather} / {!run_verifier_reference} — the persistent-map
      round-by-round exchange, kept verbatim as the semantic reference;
    - {!run_verifier} — a fast engine that compiles the instance to a
      {!Csr.t} once, extracts every ball with a bounded scratch BFS,
      reproduces the reference transcript in closed form, and can fan
      the per-node verifier loop out over a {!Pool} of domains. The
      test suite asserts verdict- and transcript-identity between the
      two on sampled graphs. *)

type transcript = {
  rounds : int;
  messages_sent : int;  (** Total knowledge records transmitted. *)
  max_message_bits : int;
      (** Upper bound on the largest single message, counting label,
          proof and adjacency payloads. *)
}

val gather : Instance.t -> Proof.t -> radius:int -> (Graph.node * View.t) list * transcript
(** Run [radius] rounds of full-knowledge exchange and build each
    node's view from what it has learnt. Reference implementation:
    cost grows like [n · ball · radius] persistent-map unions. *)

val run_verifier_reference :
  Instance.t -> Proof.t -> radius:int -> (View.t -> bool) -> (Graph.node * bool) list * transcript
(** {!gather}, then apply the verifier at every node — the seed
    implementation of [run_verifier], kept for cross-checking. *)

(** {1 Compiled fast path} *)

type compiled
(** An instance compiled for repeated verification: the CSR image of
    its graph plus per-node message-size tables. Immutable — safe to
    share across domains and reuse for any number of proofs. *)

val compile : Instance.t -> compiled
(** O(n + m); build once per instance, reuse across all nodes, proofs
    and samples. *)

val compiled_instance : compiled -> Instance.t

val compiled_csr : compiled -> Csr.t
(** The underlying CSR image — what the daemon's disk cache persists.
    Treat as read-only (a [compiled] is shared across domains). *)

val compiled_static_bits : compiled -> int array
(** Per-dense-index proof-independent record sizes (same order as the
    CSR's dense indices). Read-only, like {!compiled_csr}. *)

val compiled_of_parts : Instance.t -> Csr.t -> int array -> compiled
(** Reassemble a [compiled] from persisted parts {e without}
    recompiling. The caller warrants that [csr] is the CSR image of
    the instance's graph and [static_bits] its matching table (the
    disk cache guarantees this by rebuilding the instance from the
    CSR itself); only the array length is checked ([Invalid_argument]
    on mismatch). *)

(** {1 Arenas}

    {!Csr.scratch}'s reuse discipline extended to the whole
    verification sweep: an arena owns every buffer a sequential
    {!run_verifier} needs — BFS scratch, ball-id prefix, record-size,
    verdict and payload arrays, and the view's distance table — grown
    monotonically to the largest graph seen and reused across runs, so
    a warm batch of verifications allocates nothing per node beyond
    each view's persistent sub-instance.

    Lifetime rule: a view handed to the verifier callback {e aliases}
    arena buffers and is valid only for the duration of that call —
    a verifier must not retain views when an arena is in play. Like a
    scratch, an arena belongs to exactly one domain. *)

type arena

val arena : unit -> arena
(** An empty arena; buffers are sized on first use. *)

val arena_capacity : arena -> int
(** Largest node count the arena currently fits without growing. *)

val view_at : compiled -> Proof.t -> radius:int -> Graph.node -> View.t
(** Direct radius-r view extraction via bounded CSR BFS. Structurally
    identical to {!View.make} on the same arguments (it funnels through
    {!View.of_ball}). *)

val run_verifier :
  ?jobs:int ->
  ?compiled:compiled ->
  ?arena:arena ->
  Instance.t ->
  Proof.t ->
  radius:int ->
  (View.t -> bool) ->
  (Graph.node * bool) list * transcript
(** Gather, then apply the verifier at every node. Equivalent to
    {!run_verifier_reference} — same verdicts, same transcript — but
    runs on the compiled fast path. [?jobs] (default 1) chunks the
    per-node loop across that many worker domains; verdicts are
    independent of [jobs]. Pass [?compiled] to reuse a prior
    {!compile} of the same instance, and [?arena] (sequential runs
    only — ignored when [jobs > 1]) to reuse per-run buffers across
    calls; verdicts are also independent of the arena. *)

val run_verifier_on :
  ?jobs:int ->
  ?arena:arena ->
  compiled ->
  Proof.t ->
  radius:int ->
  nodes:Graph.node array ->
  (View.t -> bool) ->
  (Graph.node * bool) list
(** {!run_verifier} restricted to the given identifier subset — the
    partition-shard sweep: a backend holding a shard verifies exactly
    its owned nodes against views cut from the shard's graph. Verdicts
    are returned in the order of [nodes]; each equals what
    {!run_verifier} would report for that node on the same compiled
    instance. Raises [Invalid_argument] on identifiers outside the
    compiled graph. No transcript: message accounting belongs to the
    whole graph, not a slice. *)

val all_accept :
  compiled -> Proof.t -> radius:int -> (View.t -> bool) -> bool
(** True when the verifier accepts at every node; stops at the first
    rejecting node. Agrees with {!Scheme.accepts} — the soundness
    samplers use it to probe thousands of proofs against one compiled
    instance. *)

val agrees_with_direct : Instance.t -> Proof.t -> radius:int -> bool
(** True when every simulated view equals the directly extracted one —
    the executable form of the LOCAL-equivalence claim. Checks the
    round-based views against both {!View.make} and the CSR fast
    path's {!view_at}. *)
