(** Synchronous LOCAL-model simulator (Peleg). A local verifier with
    horizon [r] "can be implemented as a distributed algorithm that
    completes in r synchronous communication rounds" (Section 2.1); this
    module implements that claim executably.

    Every node starts knowing its own identity, label, proof string,
    the global input, and its incident edges; in each round all nodes
    exchange their entire knowledge with their neighbours. After [r]
    rounds each node reconstructs its radius-[r] view, which tests
    compare against {!View.make}'s direct extraction. *)

type transcript = {
  rounds : int;
  messages_sent : int;  (** Total knowledge records transmitted. *)
  max_message_bits : int;
      (** Upper bound on the largest single message, counting label,
          proof and adjacency payloads. *)
}

val gather : Instance.t -> Proof.t -> radius:int -> (Graph.node * View.t) list * transcript
(** Run [radius] rounds of full-knowledge exchange and build each
    node's view from what it has learnt. *)

val run_verifier :
  Instance.t -> Proof.t -> radius:int -> (View.t -> bool) -> (Graph.node * bool) list * transcript
(** Gather, then apply the verifier at every node. *)

val agrees_with_direct : Instance.t -> Proof.t -> radius:int -> bool
(** True when every simulated view equals the directly extracted one —
    the executable form of the LOCAL-equivalence claim. *)
