(** Adversarial proof forging. A locally checkable proof "cannot be
    fooled even by an adversarial entity" (Section 3.1) — this module
    plays that adversary: given a {e no}-instance and a bit budget, it
    searches for a proof every node accepts. Finding one falsifies
    soundness at that budget; failing to find one is evidence (the
    exhaustive checker gives certainty on tiny instances).

    The search is randomised hill-climbing on the number of rejecting
    nodes, with restarts, plus targeted bit mutations near rejecting
    nodes. *)

type outcome =
  | Fooled of Proof.t  (** All nodes accepted a proof of a no-instance. *)
  | Resisted of { best_rejections : int; attempts : int }

val forge :
  ?seed:int ->
  ?restarts:int ->
  ?steps:int ->
  Scheme.t ->
  Instance.t ->
  max_bits:int ->
  outcome
(** [forge scheme inst ~max_bits] tries to fool the verifier with
    proofs of at most [max_bits] bits per node. *)

val tamper :
  ?seed:int -> Scheme.t -> Instance.t -> Proof.t -> trials:int ->
  (Proof.t * Graph.node list) list
(** Random single-bit corruptions of a valid proof, with the rejecting
    nodes each corruption produces. Demonstrates fault detection; an
    empty rejection list in the result means the corruption went
    undetected (possible — a proof may stay valid, e.g. swapping the
    two colour classes of a 2-colouring elsewhere — but each entry
    reports it honestly). *)
