type outcome =
  | Fooled of Proof.t
  | Resisted of { best_rejections : int; attempts : int }

(* Observability: one count per candidate proof scored, across both the
   random restarts and the hill-climbing mutations. *)
let m_attempts = Obs.Metrics.counter "adversary.attempts"

let rejection_count scheme inst proof =
  match Scheme.decide scheme inst proof with
  | Scheme.Accept -> 0
  | Scheme.Reject vs -> List.length vs

let random_proof st nodes max_bits =
  List.fold_left
    (fun p v ->
      let len = Random.State.int st (max_bits + 1) in
      Proof.set p v (Bits.random st len))
    Proof.empty nodes

(* Mutate the proof string of one node: flip a bit, lengthen, shorten,
   or resample. *)
let mutate st max_bits proof v =
  let b = Proof.get proof v in
  let len = Bits.length b in
  let choice = Random.State.int st 4 in
  let b' =
    if choice = 0 && len > 0 then Bits.flip b (Random.State.int st len)
    else if choice = 1 && len < max_bits then
      Bits.append b (Bits.one_bit (Random.State.bool st))
    else if choice = 2 && len > 0 then Bits.take (len - 1) b
    else Bits.random st (Random.State.int st (max_bits + 1))
  in
  Proof.set proof v b'

let forge ?(seed = 0xBADC0DE) ?(restarts = 12) ?(steps = 400) scheme inst ~max_bits =
  let st = Random.State.make [| seed |] in
  let nodes = Graph.nodes (Instance.graph inst) in
  let attempts = ref 0 in
  let best = ref max_int in
  let exception Win of Proof.t in
  try
    for _restart = 1 to restarts do
      let proof = ref (random_proof st nodes max_bits) in
      let score = ref (rejection_count scheme inst !proof) in
      incr attempts;
      Obs.Metrics.incr m_attempts;
      if !score = 0 then raise (Win !proof);
      best := min !best !score;
      for _step = 1 to steps do
        (* Prefer mutating at or next to a rejecting node. *)
        let target =
          match Scheme.decide scheme inst !proof with
          | Scheme.Accept -> raise (Win !proof)
          | Scheme.Reject (v :: _) ->
              let g = Instance.graph inst in
              let near = v :: Traversal.ball g v scheme.Scheme.radius in
              List.nth near (Random.State.int st (List.length near))
          | Scheme.Reject [] -> assert false
        in
        let candidate = mutate st max_bits !proof target in
        let s = rejection_count scheme inst candidate in
        incr attempts;
        Obs.Metrics.incr m_attempts;
        if s <= !score then begin
          proof := candidate;
          score := s
        end;
        best := min !best !score;
        if !score = 0 then raise (Win !proof)
      done
    done;
    Resisted { best_rejections = !best; attempts = !attempts }
  with Win proof -> Fooled proof

let tamper ?(seed = 0x7A3) scheme inst proof ~trials =
  let st = Random.State.make [| seed |] in
  let candidates =
    Proof.bindings proof |> List.filter (fun (_, b) -> Bits.length b > 0)
  in
  if candidates = [] then []
  else
    List.init trials (fun _ ->
        let v, b = List.nth candidates (Random.State.int st (List.length candidates)) in
        let corrupted =
          Proof.set proof v (Bits.flip b (Random.State.int st (Bits.length b)))
        in
        let rejecting =
          match Scheme.decide scheme inst corrupted with
          | Scheme.Accept -> []
          | Scheme.Reject vs -> vs
        in
        (corrupted, rejecting))
