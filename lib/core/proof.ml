module IntMap = Map.Make (Int)

type t = Bits.t IntMap.t

let empty = IntMap.empty
let of_list l = List.fold_left (fun m (v, b) -> IntMap.add v b m) IntMap.empty l
let bindings = IntMap.bindings
let get p v = Option.value ~default:Bits.empty (IntMap.find_opt v p)
let set p v b = IntMap.add v b p
let size p = IntMap.fold (fun _ b acc -> max acc (Bits.length b)) p 0

let restrict p vs =
  List.fold_left
    (fun m v ->
      match IntMap.find_opt v p with
      | Some b -> IntMap.add v b m
      | None -> m)
    IntMap.empty vs

let union_disjoint p1 p2 =
  IntMap.union
    (fun v b1 b2 ->
      if Bits.equal b1 b2 then Some b1
      else
        invalid_arg
          (Printf.sprintf "Proof.union_disjoint: node %d assigned twice" v))
    p1 p2

let truncate b p = IntMap.map (Bits.take b) p
let map f p = IntMap.mapi f p
(* Unassigned nodes read as the empty string, so proofs are compared up
   to explicit-ε bindings. *)
let equal p1 p2 =
  let nonempty p =
    IntMap.filter (fun _ b -> Bits.length b > 0) p
  in
  IntMap.equal Bits.equal (nonempty p1) (nonempty p2)

let pp ppf p =
  Format.fprintf ppf "@[<hov 2>proof{%a}@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf (v, b) -> Format.fprintf ppf "%d↦%a" v Bits.pp b))
    (bindings p)
