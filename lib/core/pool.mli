(** A small fixed-size domain pool (stdlib [Domain] + [Mutex] /
    [Condition]; no external dependencies).

    The verification engine is embarrassingly parallel — per-node
    verifier runs and per-sample soundness probes share only immutable
    data (CSR image, instance, proof) — so all this pool provides is
    fan-out/join: submit thunks, wait for quiescence. Workers are real
    domains; keep pools short-lived and sized at most
    {!default_jobs} (oversubscribing domains degrades OCaml 5
    performance).

    When observability is enabled the pool records the queue-depth
    high-water mark ([pool.queue_depth_max]), per-worker busy/idle
    nanoseconds ([pool.busy_ns] / [pool.idle_ns], sharded per domain)
    and one trace span per executed task on the worker's timeline.
    These are scheduling-dependent, so {!Obs.Metrics.deterministic}
    excludes them from worker-count-invariant snapshots. *)

type t

val create : int -> t
(** [create jobs] spawns [jobs >= 1] worker domains that sleep on a
    condition variable until work arrives. *)

val size : t -> int

val pending : t -> int
(** Tasks queued or running right now — the saturation signal behind
    the server's readiness probe ([pending < max_queue] means a new
    request would still be accepted). *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue a task. Raises [Invalid_argument] after {!shutdown}. *)

(** Why a bounded submit was declined. [Queue_full] is transient —
    backpressure that clears as workers drain; [Shutting_down] is
    terminal for this pool. The server maps them to distinct wire
    errors ([Overloaded] vs [Unavailable]) so clients know whether to
    retry here or go elsewhere. When both conditions hold,
    [Shutting_down] wins. *)
type decline = Queue_full | Shutting_down

val submit_res :
  ?max_pending:int -> t -> (unit -> unit) -> (unit, decline) result
(** Non-raising, optionally bounded {!submit}: declines — instead of
    raising or blocking — with [Error Shutting_down] when the pool has
    been shut down, or [Error Queue_full] when [max_pending] is given
    and [pending] (queued + running) tasks are already in flight. This
    is the server's load-shedding primitive. [max_pending = 0] rejects
    every task. *)

val submit_opt : ?max_pending:int -> t -> (unit -> unit) -> bool
(** [submit_res] with the reason erased — [false] on any decline. *)

val wait : t -> unit
(** Block until every submitted task has finished. If any task raised,
    the first such exception is re-raised here (remaining tasks still
    run to completion). *)

val shutdown : t -> unit
(** Drain outstanding work, then join all worker domains. Idempotent. *)

val run : jobs:int -> (t option -> 'a) -> 'a
(** Scoped pool: [run ~jobs f] calls [f None] when [jobs <= 1]
    (sequential — no domains are ever spawned) and otherwise
    [f (Some pool)] with a fresh [jobs]-worker pool that is shut down
    when [f] returns or raises. *)

val parallel_for : t -> chunks:int -> n:int -> (int -> int -> int -> unit) -> unit
(** [parallel_for pool ~chunks ~n body] splits [0 .. n-1] into at most
    [chunks] contiguous ranges, submits [body chunk_index lo hi] for
    each (half-open [lo, hi)), and {!wait}s. Each chunk index is used
    by exactly one task, so per-chunk scratch is race-free. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [--jobs 0] resolves to
    on the command line. *)
