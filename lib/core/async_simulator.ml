module IntMap = Map.Make (Int)
module IntSet = Set.Make (Int)

type record = {
  id : Graph.node;
  adjacency : Graph.node list;
  label : Bits.t;
  proof_bits : Bits.t;
  edge_bits : (Graph.node * Bits.t) list;
  ttl : int; (* how many further hops this record may travel *)
}

type transcript = { deliveries : int; quiescent : bool }

let gather ?(seed = 0xA57) ?(max_deliveries = 1_000_000) inst proof ~radius =
  let g = Instance.graph inst in
  let st = Random.State.make [| seed |] in
  let initial v =
    {
      id = v;
      adjacency = Graph.neighbours g v;
      label = Instance.node_label inst v;
      proof_bits = Proof.get proof v;
      edge_bits =
        List.map (fun u -> (u, Instance.edge_label inst v u)) (Graph.neighbours g v);
      ttl = radius;
    }
  in
  let knowledge : (Graph.node, record IntMap.t) Hashtbl.t = Hashtbl.create 64 in
  Graph.iter_nodes
    (fun v -> Hashtbl.replace knowledge v (IntMap.singleton v (initial v)))
    g;
  (* pending messages as a growable array we sample from randomly *)
  let pending = ref [] in
  let pending_count = ref 0 in
  let push msg =
    pending := msg :: !pending;
    incr pending_count
  in
  let pop_random () =
    (* remove a uniformly random element *)
    let i = Random.State.int st !pending_count in
    let rec go k acc = function
      | [] -> assert false
      | m :: rest ->
          if k = i then begin
            pending := List.rev_append acc rest;
            decr pending_count;
            m
          end
          else go (k + 1) (m :: acc) rest
    in
    go 0 [] !pending
  in
  Graph.iter_nodes
    (fun v -> List.iter (fun u -> push (v, u)) (Graph.neighbours g v))
    g;
  let deliveries = ref 0 in
  while !pending_count > 0 && !deliveries < max_deliveries do
    let src, dst = pop_random () in
    incr deliveries;
    let k_src = Hashtbl.find knowledge src in
    let k_dst = Hashtbl.find knowledge dst in
    let improved = ref false in
    let k_dst' =
      IntMap.fold
        (fun x r acc ->
          if r.ttl <= 0 then acc
          else
            let forwarded = { r with ttl = r.ttl - 1 } in
            match IntMap.find_opt x acc with
            | Some existing when existing.ttl >= forwarded.ttl -> acc
            | _ ->
                improved := true;
                IntMap.add x forwarded acc)
        k_src k_dst
    in
    if !improved then begin
      Hashtbl.replace knowledge dst k_dst';
      List.iter (fun w -> push (dst, w)) (Graph.neighbours g dst)
    end
  done;
  let views =
    Graph.fold_nodes
      (fun v acc ->
        let known = Hashtbl.find knowledge v in
        let known_ids = IntMap.fold (fun id _ s -> IntSet.add id s) known IntSet.empty in
        (* local BFS over learnt adjacency, bounded by radius *)
        let dist = Hashtbl.create 32 in
        Hashtbl.replace dist v 0;
        let q = Queue.create () in
        Queue.push v q;
        while not (Queue.is_empty q) do
          let x = Queue.pop q in
          let d = Hashtbl.find dist x in
          if d < radius then
            match IntMap.find_opt x known with
            | None -> ()
            | Some r ->
                List.iter
                  (fun y ->
                    if IntSet.mem y known_ids && not (Hashtbl.mem dist y) then begin
                      Hashtbl.replace dist y (d + 1);
                      Queue.push y q
                    end)
                  r.adjacency
        done;
        let ball_set =
          Hashtbl.fold (fun x _ s -> IntSet.add x s) dist IntSet.empty
        in
        let sub_graph =
          IntSet.fold
            (fun x acc ->
              let r = IntMap.find x known in
              List.fold_left
                (fun acc y ->
                  if IntSet.mem y ball_set then Graph.add_edge acc x y else acc)
                (Graph.add_node acc x) r.adjacency)
            ball_set Graph.empty
        in
        let sub_inst = Instance.of_graph sub_graph in
        let sub_inst = Instance.with_globals sub_inst (Instance.globals inst) in
        let sub_inst =
          IntSet.fold
            (fun x acc ->
              let r = IntMap.find x known in
              let acc =
                if Bits.length r.label > 0 then Instance.with_node_label acc x r.label
                else acc
              in
              List.fold_left
                (fun acc (y, b) ->
                  if IntSet.mem y ball_set && Bits.length b > 0 then
                    Instance.with_edge_label acc x y b
                  else acc)
                acc r.edge_bits)
            ball_set sub_inst
        in
        let sub_proof =
          IntSet.fold
            (fun x acc -> Proof.set acc x (IntMap.find x known).proof_bits)
            ball_set Proof.empty
        in
        (v, View.make sub_inst sub_proof ~centre:v ~radius) :: acc)
      g []
  in
  ( List.rev views,
    { deliveries = !deliveries; quiescent = !pending_count = 0 } )

let agrees_with_synchronous ?seed inst proof ~radius =
  let async_views, tr = gather ?seed inst proof ~radius in
  tr.quiescent
  && List.for_all
       (fun (v, view) -> View.equal view (View.make inst proof ~centre:v ~radius))
       async_views
