type growth =
  | Zero
  | Constant
  | Logarithmic
  | Linear
  | Quadratic
  | Quadratic_over_log

let label = function
  | Zero -> "0"
  | Constant -> "Θ(1)"
  | Logarithmic -> "Θ(log n)"
  | Linear -> "Θ(n)"
  | Quadratic -> "Θ(n²)"
  | Quadratic_over_log -> "Θ(n²/log n)"

let model g n =
  let nf = float_of_int n in
  let lg = log (max 2.0 nf) /. log 2.0 in
  match g with
  | Zero -> 0.0
  | Constant -> 1.0
  | Logarithmic -> lg
  | Linear -> nf
  | Quadratic -> nf *. nf
  | Quadratic_over_log -> nf *. nf /. lg

(* Affine least squares: fit  bits ≈ a·f(n) + c  and report the root
   mean squared residual normalised by the mean of the series. The
   affine offset matters: real schemes carry constant header bits on
   top of their asymptotic payload, which would wreck a pure-ratio
   fit. *)
let affine_rmse series g =
  let xs = List.map (fun (n, _) -> model g n) series in
  let ys = List.map (fun (_, b) -> float_of_int b) series in
  let len = float_of_int (List.length series) in
  let mean l = List.fold_left ( +. ) 0.0 l /. len in
  let mx = mean xs and my = mean ys in
  let sxx = List.fold_left (fun acc x -> acc +. ((x -. mx) ** 2.0)) 0.0 xs in
  let sxy =
    List.fold_left2 (fun acc x y -> acc +. ((x -. mx) *. (y -. my))) 0.0 xs ys
  in
  let a = if sxx = 0.0 then 0.0 else sxy /. sxx in
  let a = max a 0.0 (* growth models must not be used upside-down *) in
  let c = my -. (a *. mx) in
  let rmse =
    sqrt
      (List.fold_left2
         (fun acc x y -> acc +. (((a *. x) +. c -. y) ** 2.0))
         0.0 xs ys
      /. len)
  in
  if my <= 0.0 then infinity else rmse /. my

let fit_ratio series g =
  match g with
  | Zero -> if List.for_all (fun (_, b) -> b = 0) series then 0.0 else infinity
  | Constant ->
      (* a pure constant: spread around the mean *)
      let ys = List.map (fun (_, b) -> float_of_int b) series in
      let len = float_of_int (List.length ys) in
      let my = List.fold_left ( +. ) 0.0 ys /. len in
      if my <= 0.0 then infinity
      else
        sqrt (List.fold_left (fun acc y -> acc +. ((y -. my) ** 2.0)) 0.0 ys /. len)
        /. my
  | _ -> affine_rmse series g

(* Prefer the simplest adequate model: candidates in increasing
   complexity, pick the first within 15% (absolute 0.01) of the best
   achievable residual. *)
let classify series =
  if series = [] then invalid_arg "Complexity.classify: empty series";
  if List.for_all (fun (_, b) -> b = 0) series then Zero
  else begin
    let candidates =
      [ Constant; Logarithmic; Linear; Quadratic; Quadratic_over_log ]
    in
    let scored = List.map (fun g -> (fit_ratio series g, g)) candidates in
    let best = List.fold_left (fun acc (r, _) -> min acc r) infinity scored in
    let threshold = max (best *. 1.15) (best +. 0.01) in
    match List.find_opt (fun (r, _) -> r <= threshold) scored with
    | Some (_, g) -> g
    | None -> assert false
  end
