type completeness_report = {
  instances_checked : int;
  all_accepted : bool;
  max_proof_bits : int;
  bound_respected : bool;
  failures : string list;
}

let completeness scheme instances =
  let report =
    {
      instances_checked = 0;
      all_accepted = true;
      max_proof_bits = 0;
      bound_respected = true;
      failures = [];
    }
  in
  List.fold_left
    (fun report inst ->
      let report = { report with instances_checked = report.instances_checked + 1 } in
      match Scheme.prove_and_check scheme inst with
      | `No_proof ->
          {
            report with
            all_accepted = false;
            failures =
              Printf.sprintf "%s: prover returned None on a yes-instance (n=%d)"
                scheme.Scheme.name (Instance.n inst)
              :: report.failures;
          }
      | `Rejected (_, vs) ->
          {
            report with
            all_accepted = false;
            failures =
              Printf.sprintf "%s: nodes [%s] rejected a valid proof (n=%d)"
                scheme.Scheme.name
                (String.concat "," (List.map string_of_int vs))
                (Instance.n inst)
              :: report.failures;
          }
      | `Accepted proof ->
          let bits = Proof.size proof in
          let bound = scheme.Scheme.size_bound (Instance.n inst) in
          let ok = bits <= bound in
          {
            report with
            max_proof_bits = max report.max_proof_bits bits;
            bound_respected = report.bound_respected && ok;
            failures =
              (if ok then report.failures
               else
                 Printf.sprintf "%s: proof of %d bits exceeds bound %d (n=%d)"
                   scheme.Scheme.name bits bound (Instance.n inst)
                 :: report.failures);
          })
    report instances

(* Observability: every random forgery attempt counts once, and lands
   in exactly one of the rejected/accepted counters; the first accepted
   forgery also leaves an instant on the trace timeline (the samplers
   below stop there). *)
let m_samples = Obs.Metrics.counter "checker.samples"
let m_rejected = Obs.Metrics.counter "checker.forgeries_rejected"
let m_accepted = Obs.Metrics.counter "checker.forgeries_accepted"

let soundness_random_body ~seed ~jobs scheme inst ~samples ~max_bits =
  let compiled = Simulator.compile inst in
  let nodes = Graph.nodes (Instance.graph inst) in
  let sample st =
    List.fold_left
      (fun p v ->
        let len = Random.State.int st (max_bits + 1) in
        Proof.set p v (Bits.random st len))
      Proof.empty nodes
  in
  let forged proof =
    Obs.Metrics.incr m_samples;
    let accepted =
      Simulator.all_accept compiled proof ~radius:scheme.Scheme.radius
        scheme.Scheme.verifier
    in
    if accepted then begin
      Obs.Metrics.incr m_accepted;
      Obs.Trace.instant "checker.first_accept"
    end
    else Obs.Metrics.incr m_rejected;
    accepted
  in
  if jobs <= 1 then begin
    (* Sequential: per-sample states derived from (seed, i), exactly as
       the parallel path below, so the sampled proof set — and with it
       the verdict and every deterministic metric — is identical for
       any jobs value. Stops at the first accepted forgery. *)
    let rec go i =
      i = samples
      || ((not (forged (sample (Random.State.make [| seed; i |])))) && go (i + 1))
    in
    go 0
  end
  else begin
    (* Parallel: same (seed, i) derivation; workers bail out once any
       forgery lands. *)
    let fooled = Atomic.make false in
    Pool.run ~jobs (fun pool ->
        match pool with
        | None -> assert false
        | Some pool ->
            Pool.parallel_for pool ~chunks:(Pool.size pool) ~n:samples
              (fun _c lo hi ->
                let i = ref lo in
                while (not (Atomic.get fooled)) && !i < hi do
                  if forged (sample (Random.State.make [| seed; !i |])) then
                    Atomic.set fooled true;
                  incr i
                done));
    not (Atomic.get fooled)
  end

let soundness_random ?(seed = 0xC0FFEE) ?(jobs = 1) scheme inst ~samples ~max_bits
    =
  let run () = soundness_random_body ~seed ~jobs scheme inst ~samples ~max_bits in
  if !Obs.Trace.enabled then
    Obs.Trace.span_arg "checker.soundness_random" "samples" samples run
  else run ()

(* --- empirical one-sided error of a sampled verifier ----------------- *)

type empirical = {
  trials : int;
  invalid : int;
  fooled : int;
  rate : float;
  wilson_low : float;
  wilson_high : float;
}

(* Wilson score interval at 95% (z = 1.96). Degenerates to [0, 1] when
   no trial produced an invalid proof — nothing was measured. *)
let wilson ~fooled ~invalid =
  if invalid = 0 then (0.0, 1.0)
  else begin
    let z = 1.96 in
    let n = float_of_int invalid in
    let p = float_of_int fooled /. n in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let centre = p +. (z2 /. (2.0 *. n)) in
    let half =
      z *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n)))
    in
    (max 0.0 ((centre -. half) /. denom), min 1.0 ((centre +. half) /. denom))
  end

let m_empirical_trials = Obs.Metrics.counter "checker.empirical_trials"
let m_empirical_fooled = Obs.Metrics.counter "checker.empirical_fooled"

let soundness_empirical ?(seed = 0xE9C0) ?(jobs = 1) scheme inst ~samples
    ~max_bits ~sampled =
  let compiled = Simulator.compile inst in
  let nodes = Graph.nodes (Instance.graph inst) in
  let forge st =
    List.fold_left
      (fun p v ->
        let len = Random.State.int st (max_bits + 1) in
        Proof.set p v (Bits.random st len))
      Proof.empty nodes
  in
  let invalid = Atomic.make 0 in
  let fooled = Atomic.make 0 in
  (* Per-trial proof and sampled-run seed both derive from (seed, i)
     only, so the measured counts are identical at any [jobs]. *)
  let trial i =
    Obs.Metrics.incr m_empirical_trials;
    let proof = forge (Random.State.make [| seed; i |]) in
    let valid =
      Simulator.all_accept compiled proof ~radius:scheme.Scheme.radius
        scheme.Scheme.verifier
    in
    if not valid then begin
      Atomic.incr invalid;
      if sampled ~seed:(seed lxor ((i + 1) * 0x9E3779B1)) compiled proof then begin
        Obs.Metrics.incr m_empirical_fooled;
        Atomic.incr fooled
      end
    end
  in
  (if jobs <= 1 then
     for i = 0 to samples - 1 do
       trial i
     done
   else
     Pool.run ~jobs (fun pool ->
         match pool with
         | None -> assert false
         | Some pool ->
             Pool.parallel_for pool ~chunks:(Pool.size pool) ~n:samples
               (fun _c lo hi ->
                 for i = lo to hi - 1 do
                   trial i
                 done)));
  let invalid = Atomic.get invalid and fooled = Atomic.get fooled in
  let low, high = wilson ~fooled ~invalid in
  {
    trials = samples;
    invalid;
    fooled;
    rate = (if invalid = 0 then 0.0 else float_of_int fooled /. float_of_int invalid);
    wilson_low = low;
    wilson_high = high;
  }

(* All bit strings of length 0..max_bits, shortest first. *)
let all_strings max_bits =
  let rec go len acc =
    if len > max_bits then List.rev acc
    else begin
      let count = 1 lsl len in
      let strings =
        List.init count (fun i ->
            Bits.of_bools (List.init len (fun j -> i lsr (len - 1 - j) land 1 = 1)))
      in
      go (len + 1) (List.rev_append strings acc)
    end
  in
  go 0 []

let exhaustive_proof_count ~n ~max_bits =
  let per_node = float_of_int ((1 lsl (max_bits + 1)) - 1) in
  per_node ** float_of_int n

let soundness_exhaustive scheme inst ~max_bits =
  let nodes = Array.of_list (Graph.nodes (Instance.graph inst)) in
  let n = Array.length nodes in
  let choices = Array.of_list (all_strings max_bits) in
  let k = Array.length choices in
  let rec go i proof =
    if i = n then not (Scheme.accepts scheme inst proof)
    else begin
      let rec try_choice c =
        if c = k then true
        else if go (i + 1) (Proof.set proof nodes.(i) choices.(c)) then
          try_choice (c + 1)
        else false
      in
      try_choice 0
    end
  in
  go 0 Proof.empty

let prover_refuses scheme inst = scheme.Scheme.prover inst = None
