type completeness_report = {
  instances_checked : int;
  all_accepted : bool;
  max_proof_bits : int;
  bound_respected : bool;
  failures : string list;
}

let completeness scheme instances =
  let report =
    {
      instances_checked = 0;
      all_accepted = true;
      max_proof_bits = 0;
      bound_respected = true;
      failures = [];
    }
  in
  List.fold_left
    (fun report inst ->
      let report = { report with instances_checked = report.instances_checked + 1 } in
      match Scheme.prove_and_check scheme inst with
      | `No_proof ->
          {
            report with
            all_accepted = false;
            failures =
              Printf.sprintf "%s: prover returned None on a yes-instance (n=%d)"
                scheme.Scheme.name (Instance.n inst)
              :: report.failures;
          }
      | `Rejected (_, vs) ->
          {
            report with
            all_accepted = false;
            failures =
              Printf.sprintf "%s: nodes [%s] rejected a valid proof (n=%d)"
                scheme.Scheme.name
                (String.concat "," (List.map string_of_int vs))
                (Instance.n inst)
              :: report.failures;
          }
      | `Accepted proof ->
          let bits = Proof.size proof in
          let bound = scheme.Scheme.size_bound (Instance.n inst) in
          let ok = bits <= bound in
          {
            report with
            max_proof_bits = max report.max_proof_bits bits;
            bound_respected = report.bound_respected && ok;
            failures =
              (if ok then report.failures
               else
                 Printf.sprintf "%s: proof of %d bits exceeds bound %d (n=%d)"
                   scheme.Scheme.name bits bound (Instance.n inst)
                 :: report.failures);
          })
    report instances

let soundness_random ?(seed = 0xC0FFEE) ?(jobs = 1) scheme inst ~samples ~max_bits =
  let compiled = Simulator.compile inst in
  let nodes = Graph.nodes (Instance.graph inst) in
  let sample st =
    List.fold_left
      (fun p v ->
        let len = Random.State.int st (max_bits + 1) in
        Proof.set p v (Bits.random st len))
      Proof.empty nodes
  in
  let forged proof =
    Simulator.all_accept compiled proof ~radius:scheme.Scheme.radius
      scheme.Scheme.verifier
  in
  if jobs <= 1 then begin
    (* Sequential: one stream seeded as in the original implementation,
       stopping at the first accepted forgery. *)
    let st = Random.State.make [| seed |] in
    let rec go remaining =
      remaining = 0 || ((not (forged (sample st))) && go (remaining - 1))
    in
    go samples
  end
  else begin
    (* Parallel: each sample gets its own state derived from (seed, i),
       so the sampled proof set — and hence the verdict — is the same
       for every jobs > 1. Workers bail out once any forgery lands. *)
    let fooled = Atomic.make false in
    Pool.run ~jobs (fun pool ->
        match pool with
        | None -> assert false
        | Some pool ->
            Pool.parallel_for pool ~chunks:(Pool.size pool) ~n:samples
              (fun _c lo hi ->
                let i = ref lo in
                while (not (Atomic.get fooled)) && !i < hi do
                  if forged (sample (Random.State.make [| seed; !i |])) then
                    Atomic.set fooled true;
                  incr i
                done));
    not (Atomic.get fooled)
  end

(* All bit strings of length 0..max_bits, shortest first. *)
let all_strings max_bits =
  let rec go len acc =
    if len > max_bits then List.rev acc
    else begin
      let count = 1 lsl len in
      let strings =
        List.init count (fun i ->
            Bits.of_bools (List.init len (fun j -> i lsr (len - 1 - j) land 1 = 1)))
      in
      go (len + 1) (List.rev_append strings acc)
    end
  in
  go 0 []

let exhaustive_proof_count ~n ~max_bits =
  let per_node = float_of_int ((1 lsl (max_bits + 1)) - 1) in
  per_node ** float_of_int n

let soundness_exhaustive scheme inst ~max_bits =
  let nodes = Array.of_list (Graph.nodes (Instance.graph inst)) in
  let n = Array.length nodes in
  let choices = Array.of_list (all_strings max_bits) in
  let k = Array.length choices in
  let rec go i proof =
    if i = n then not (Scheme.accepts scheme inst proof)
    else begin
      let rec try_choice c =
        if c = k then true
        else if go (i + 1) (Proof.set proof nodes.(i) choices.(c)) then
          try_choice (c + 1)
        else false
      in
      try_choice 0
    end
  in
  go 0 Proof.empty

let prover_refuses scheme inst = scheme.Scheme.prover inst = None
