module IntMap = Map.Make (Int)

module EdgeMap = Map.Make (struct
  type t = int * int

  let compare = compare
end)

type t = {
  graph : Graph.t;
  node_labels : Bits.t IntMap.t;
  edge_labels : Bits.t EdgeMap.t;
  globals : Bits.t;
}

let of_graph graph =
  { graph; node_labels = IntMap.empty; edge_labels = EdgeMap.empty; globals = Bits.empty }

let graph i = i.graph
let n i = Graph.n i.graph
let node_label i v = Option.value ~default:Bits.empty (IntMap.find_opt v i.node_labels)

let ekey u v = (min u v, max u v)

let edge_label i u v =
  Option.value ~default:Bits.empty (EdgeMap.find_opt (ekey u v) i.edge_labels)

let globals i = i.globals

let with_node_label i v b =
  if not (Graph.mem_node i.graph v) then
    invalid_arg "Instance.with_node_label: unknown node";
  { i with node_labels = IntMap.add v b i.node_labels }

let with_node_labels i l =
  List.fold_left (fun i (v, b) -> with_node_label i v b) i l

let with_edge_label i u v b =
  if not (Graph.mem_edge i.graph u v) then
    invalid_arg "Instance.with_edge_label: not an edge";
  { i with edge_labels = EdgeMap.add (ekey u v) b i.edge_labels }

let with_edge_labels i l =
  List.fold_left (fun i ((u, v), b) -> with_edge_label i u v b) i l

let with_globals i b = { i with globals = b }

let mark_nodes i l =
  with_node_labels i (List.map (fun (v, b) -> (v, Bits.one_bit b)) l)

let marked_exactly_one i =
  let marked =
    Graph.fold_nodes
      (fun v acc ->
        let l = node_label i v in
        if Bits.length l >= 1 && Bits.get l 0 then v :: acc else acc)
      i.graph []
  in
  match marked with [ v ] -> Some v | _ -> None

let flag_edges i flagged =
  let flagged = List.map (fun (u, v) -> ekey u v) flagged in
  List.iter
    (fun (u, v) ->
      if not (Graph.mem_edge i.graph u v) then
        invalid_arg "Instance.flag_edges: not an edge")
    flagged;
  Graph.fold_edges
    (fun u v acc ->
      with_edge_label acc u v (Bits.one_bit (List.mem (ekey u v) flagged)))
    i.graph i

let flagged_edges i =
  Graph.fold_edges
    (fun u v acc ->
      let l = edge_label i u v in
      if Bits.length l >= 1 && Bits.get l 0 then ekey u v :: acc else acc)
    i.graph []
  |> List.sort compare

let of_digraph d =
  let g = Digraph.underlying d in
  Graph.fold_edges
    (fun u v acc ->
      let b = Bits.of_bools [ Digraph.mem_arc d u v; Digraph.mem_arc d v u ] in
      with_edge_label acc u v b)
    g (of_graph g)

let arc_exists i u v =
  let l = edge_label i u v in
  if Bits.length l < 2 then false
  else if u < v then Bits.get l 0
  else Bits.get l 1

let relabel i f =
  let graph = Graph.relabel i.graph f in
  let node_labels =
    IntMap.fold (fun v b acc -> IntMap.add (f v) b acc) i.node_labels IntMap.empty
  in
  let edge_labels =
    EdgeMap.fold
      (fun (u, v) b acc ->
        (* The (u<v) normalisation may flip under relabelling; the
           of_digraph encoding must flip its two bits accordingly. *)
        let u' = f u and v' = f v in
        let b =
          if (u < v) = (u' < v') || Bits.length b <> 2 then b
          else Bits.of_bools [ Bits.get b 1; Bits.get b 0 ]
        in
        EdgeMap.add (ekey u' v') b acc)
      i.edge_labels EdgeMap.empty
  in
  { i with graph; node_labels; edge_labels }

let union_disjoint i1 i2 =
  if not (Bits.equal i1.globals i2.globals) then
    invalid_arg "Instance.union_disjoint: globals differ";
  {
    graph = Graph.union_disjoint i1.graph i2.graph;
    node_labels =
      IntMap.union
        (fun _ _ _ -> invalid_arg "Instance.union_disjoint: node overlap")
        i1.node_labels i2.node_labels;
    edge_labels =
      EdgeMap.union
        (fun _ _ _ -> invalid_arg "Instance.union_disjoint: edge overlap")
        i1.edge_labels i2.edge_labels;
    globals = i1.globals;
  }

let equal i1 i2 =
  Graph.equal i1.graph i2.graph
  && Bits.equal i1.globals i2.globals
  && Graph.fold_nodes
       (fun v acc -> acc && Bits.equal (node_label i1 v) (node_label i2 v))
       i1.graph true
  && Graph.fold_edges
       (fun u v acc -> acc && Bits.equal (edge_label i1 u v) (edge_label i2 u v))
       i1.graph true

let pp ppf i =
  Format.fprintf ppf "@[<v 2>instance:@ %a@ globals=%a@]" Graph.pp i.graph
    Bits.pp i.globals
