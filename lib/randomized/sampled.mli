(** The catalog of sampled scheme variants: existing deterministic
    schemes wrapped as {!Randomized_scheme.t}s whose verifiers read a
    PRG-chosen subset of neighbours / certificate cells within the
    per-node query budget. Keys are the {e registry} names ("the
    stable public identifiers"), so a [Verify_sampled] wire frame, the
    daemon's compiled-graph cache and the router's affinity key all
    agree with the deterministic paths. *)

val bipartite : Randomized_scheme.t
(** 2-colouring spot-check: read the centre's colour bit, then the
    bits of up to [q−1] sampled neighbours, requiring opposition. *)

val spanning_tree : Randomized_scheme.t
(** KKP certificate spot-check: decode the centre's certificate, check
    its root/distance sanity and its parent edge's flag, then decode
    up to [(q−2)/2] sampled neighbours' certificates and check root
    agreement, parent–distance consistency and flagged-edge
    membership pairwise. *)

val st_unreach : Randomized_scheme.t
(** Cut spot-check (undirected s–t unreachability): read the centre's
    mark and the s/t promise from its own label, then compare against
    up to [q−1] sampled neighbours' marks. *)

val all : (string * Randomized_scheme.t) list
(** [(registry name, sampled variant)] for every wrapped scheme. *)

val find : string -> Randomized_scheme.t option
(** Look up by registry name ("bipartite", "spanning-tree",
    "st-unreach"). *)
