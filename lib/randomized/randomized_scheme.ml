type t = {
  base : Scheme.t;
  epsilon : float;
  queries : int;
  probes : int;
  budget : string;
  sampled_verifier : Qview.t -> bool;
}

let make ~base ~epsilon ~queries ~probes ~sampled_verifier =
  if queries < 1 then invalid_arg "Randomized_scheme.make: queries must be >= 1";
  if probes < 0 then invalid_arg "Randomized_scheme.make: probes must be >= 0";
  if not (epsilon > 0.0 && epsilon < 1.0) then
    invalid_arg "Randomized_scheme.make: epsilon must lie in (0, 1)";
  {
    base;
    epsilon;
    queries;
    probes;
    budget = Printf.sprintf "eps%g:q%d:m%d" epsilon queries probes;
    sampled_verifier;
  }

type outcome = {
  accepted : bool;
  rejecting : Graph.node list;
  nodes_checked : int;
  bits_read : int;
  reads : (Graph.node * (Graph.node * int * int) list) list;
}

(* The probe set comes from its own PRG lane (tweaked so it never
   collides with the per-node read streams) over dense CSR indices:
   O(probes log probes), no O(n) allocation on the serving path. *)
let probe_nodes t compiled ~seed =
  let csr = Simulator.compiled_csr compiled in
  let n = Csr.n csr in
  if n = 0 then [||]
  else if t.probes = 0 || 2 * t.probes >= n then
    Array.init n (fun i -> Csr.node csr i)
  else begin
    let state = ref (Qview.mix (seed lxor 0x5EED1E55)) in
    let next () =
      state := (!state + Qview.gamma) land max_int;
      Qview.mix !state
    in
    let module IS = Set.Make (Int) in
    (* draw with replacement, dedupe; probes <= n/2 keeps the expected
       draw count under 1.4·probes, and the cap keeps it total *)
    let rec draw set k =
      if IS.cardinal set >= t.probes || k >= 16 * t.probes then set
      else draw (IS.add (next () mod n) set) (k + 1)
    in
    let set = draw IS.empty 0 in
    Array.of_list (List.map (fun i -> Csr.node csr i) (IS.elements set))
  end

let take_at_most k l =
  let rec go k acc = function
    | [] -> List.rev acc
    | _ when k = 0 -> List.rev acc
    | x :: rest -> go (k - 1) (x :: acc) rest
  in
  go k [] l

let run ?(jobs = 1) ?arena ?(collect_reads = false) t compiled proof ~seed
    ~queries =
  if queries < 1 then invalid_arg "Randomized_scheme.run: queries must be >= 1";
  let nodes = probe_nodes t compiled ~seed in
  let bits = Atomic.make 0 in
  let mu = Mutex.create () in
  let logs = ref [] in
  let verifier view =
    let qv = Qview.make view ~seed ~queries in
    let ok =
      try t.sampled_verifier qv with Bits.Reader.Decode_error _ -> false
    in
    ignore (Atomic.fetch_and_add bits (Qview.bits_read qv));
    if collect_reads then begin
      Mutex.lock mu;
      logs := (Qview.centre qv, Qview.reads qv) :: !logs;
      Mutex.unlock mu
    end;
    ok
  in
  let verdicts =
    Simulator.run_verifier_on ~jobs ?arena compiled proof
      ~radius:t.base.Scheme.radius ~nodes verifier
  in
  let rejecting =
    List.filter_map (fun (v, ok) -> if ok then None else Some v) verdicts
  in
  {
    accepted = rejecting = [];
    rejecting = take_at_most 64 rejecting;
    nodes_checked = Array.length nodes;
    bits_read = Atomic.get bits;
    reads =
      (if collect_reads then
         List.sort (fun (a, _) (b, _) -> compare a b) !logs
       else []);
  }

let soundness ?(seed = 0xBAD5EED) ?(jobs = 1) ?queries t inst ~samples
    ~max_bits =
  let queries = match queries with Some q -> q | None -> t.queries in
  Checker.soundness_empirical ~seed ~jobs t.base inst ~samples ~max_bits
    ~sampled:(fun ~seed compiled proof ->
      (run t compiled proof ~seed ~queries).accepted)
