(** Query-counting views: the randomized verifier's only window onto
    the instance.

    A [Qview.t] wraps a {!View.t} and meters every read of prover- or
    neighbour-supplied data: single proof bits, whole proof cells
    (one node's full bit string), neighbour label cells and edge-label
    cells each cost one {e query unit}. A sampled verifier declared
    with per-node bound [q] may spend at most [q] units per node —
    spending more raises {!Budget_exceeded}, a hard failure (a scheme
    bug, not a verdict), so the bound is enforced by the simulator
    rather than left as a convention.

    Structure is free: the centre, its neighbour list, degrees,
    distances, boundary flags, arc orientations, the centre's own
    input label and the global input are all part of the node's local
    input in the paper's model, not of the proof, so reading them
    costs nothing.

    Randomness comes from a splitmix-style PRG seeded by
    [(seed, centre)] only, so the bits a node chooses to read are a
    pure function of [(seed, q, graph, proof)] — identical at any
    [--jobs], which the determinism tests pin. Every charged read is
    appended to a log of [(node, kind, index)] triples for exactly
    that comparison. *)

type t

exception Budget_exceeded of { centre : Graph.node; queries : int }
(** Raised by a charged read once the per-node budget is exhausted. *)

(** Read-log entry kinds. *)
val kind_proof_bit : int

val kind_proof_cell : int
val kind_label_cell : int
val kind_edge_cell : int

val make : View.t -> seed:int -> queries:int -> t
(** Wrap a view with budget [queries] (must be ≥ 1) and a PRG derived
    from [seed] and the view's centre. *)

(** {1 Free (structural) accessors} *)

val centre : t -> Graph.node
val queries : t -> int
val neighbours : t -> Graph.node list
val degree : t -> int

val my_label : t -> Bits.t
(** The centre's own input label — local input, never charged. *)

val globals : t -> Bits.t
val arc_exists : t -> Graph.node -> Graph.node -> bool
val on_boundary : t -> Graph.node -> bool

(** {1 Charged reads — one query unit each} *)

val proof_bit : t -> Graph.node -> int -> bool option
(** Bit [i] of node [u]'s proof string; [None] when the string is
    shorter. One unit, one bit. *)

val proof_cell : t -> Graph.node -> Bits.t
(** A node's whole proof string. One unit, [length] bits. *)

val label_cell : t -> Graph.node -> Bits.t
(** A {e neighbour}'s input label. One unit. *)

val edge_cell : t -> Graph.node -> Graph.node -> Bits.t
(** The label of edge [(u, v)] inside the view. One unit. *)

(** {1 Randomness and sampling} *)

val rand_int : t -> int -> int
(** Next PRG value in [0 .. bound-1]; [bound] must be positive.
    Deterministic in [(seed, centre)] and the draw index. *)

val mix : int -> int
(** The splitmix-style finalizer behind the PRG, truncated to OCaml's
    63-bit int — exposed so the probe-set sampler and the tests share
    the exact stream construction. *)

val gamma : int
(** The PRG's additive constant (state advances by [gamma] per draw). *)

val sample_neighbours : t -> int -> Graph.node list
(** Up to [k] distinct neighbours of the centre, chosen by the PRG
    (partial Fisher–Yates). Choosing is free; reading the chosen
    nodes' data is what costs units. *)

(** {1 Accounting} *)

val units_spent : t -> int
val units_left : t -> int

val bits_read : t -> int
(** Total bits actually obtained by charged reads (cells add their
    length, single-bit reads add one). *)

val reads : t -> (Graph.node * int * int) list
(** The charged-read log, oldest first: [(node, kind, index)] where
    [index] is the bit index for {!proof_bit}, the other endpoint for
    {!edge_cell}, and [0] for whole-cell reads. *)
