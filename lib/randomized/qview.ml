exception Budget_exceeded of { centre : Graph.node; queries : int }

let kind_proof_bit = 0
let kind_proof_cell = 1
let kind_label_cell = 2
let kind_edge_cell = 3

(* splitmix64-style finalizer truncated to OCaml's 63-bit int — the
   same construction Obs.Trace uses for head sampling. Pure, so every
   worker domain computing the same (seed, centre, draw) lands on the
   same value: that is what makes the read set jobs-independent. *)
let mix x =
  let h = ref (x * 0x4F1BBCDCBFA53E0B) in
  h := (!h lxor (!h lsr 30)) * 0x2545F4914F6CDD1D;
  h := (!h lxor (!h lsr 27)) * 0x7FB5D329728EA185;
  (!h lxor (!h lsr 31)) land max_int

let gamma = 0x2545F4914F6CDD1D

type t = {
  view : View.t;
  queries : int;
  mutable state : int;
  mutable spent : int;
  mutable bits : int;
  mutable log : (Graph.node * int * int) list; (* newest first *)
}

let make view ~seed ~queries =
  if queries < 1 then invalid_arg "Qview.make: queries must be >= 1";
  {
    view;
    queries;
    state = mix (seed lxor mix (View.centre view));
    spent = 0;
    bits = 0;
    log = [];
  }

let centre t = View.centre t.view
let queries t = t.queries
let neighbours t = View.neighbours t.view (View.centre t.view)
let degree t = View.degree_in_view t.view (View.centre t.view)
let my_label t = View.label_of t.view (View.centre t.view)
let globals t = View.globals t.view
let arc_exists t u v = View.arc_exists t.view u v
let on_boundary t u = View.on_boundary t.view u

let charge t ~node ~kind ~index ~bits =
  if t.spent >= t.queries then
    raise (Budget_exceeded { centre = View.centre t.view; queries = t.queries });
  t.spent <- t.spent + 1;
  t.bits <- t.bits + bits;
  t.log <- (node, kind, index) :: t.log

let proof_bit t u i =
  let b = View.proof_of t.view u in
  charge t ~node:u ~kind:kind_proof_bit ~index:i ~bits:1;
  if Bits.length b > i then Some (Bits.get b i) else None

let proof_cell t u =
  let b = View.proof_of t.view u in
  charge t ~node:u ~kind:kind_proof_cell ~index:0 ~bits:(Bits.length b);
  b

let label_cell t u =
  let b = View.label_of t.view u in
  charge t ~node:u ~kind:kind_label_cell ~index:0 ~bits:(Bits.length b);
  b

let edge_cell t u v =
  let b = View.edge_label_of t.view u v in
  charge t ~node:u ~kind:kind_edge_cell ~index:v ~bits:(Bits.length b);
  b

let rand_int t bound =
  if bound <= 0 then invalid_arg "Qview.rand_int: bound must be positive";
  t.state <- (t.state + gamma) land max_int;
  mix t.state mod bound

let sample_neighbours t k =
  let ns = Array.of_list (neighbours t) in
  let deg = Array.length ns in
  let k = min k deg in
  if k <= 0 then []
  else begin
    (* partial Fisher–Yates over the (sorted) neighbour array: the
       chosen subset depends only on the PRG stream *)
    for i = 0 to k - 1 do
      let j = i + rand_int t (deg - i) in
      let tmp = ns.(i) in
      ns.(i) <- ns.(j);
      ns.(j) <- tmp
    done;
    Array.to_list (Array.sub ns 0 k)
  end

let units_spent t = t.spent
let units_left t = t.queries - t.spent
let bits_read t = t.bits
let reads t = List.rev t.log
