(* Sampled variants of three catalog schemes. Each verifier spends its
   query units explicitly and checks a strict subset of the base
   verifier's conditions, so completeness is exact and the only new
   failure mode is an invalid proof slipping past every probe — the
   one-sided error the ε budget covers. A check that does not fit the
   remaining budget is skipped, never force-read: small q degrades
   detection power, not safety. *)

let bipartite =
  Randomized_scheme.make ~base:Bipartite_scheme.scheme ~epsilon:0.02 ~queries:4
    ~probes:24
    ~sampled_verifier:(fun qv ->
      match Qview.proof_bit qv (Qview.centre qv) 0 with
      | None -> false
      | Some mine ->
          List.for_all
            (fun u ->
              match Qview.proof_bit qv u 0 with
              | Some b -> b <> mine
              | None -> false)
            (Qview.sample_neighbours qv (Qview.units_left qv)))

let spanning_tree =
  Randomized_scheme.make ~base:Spanning_tree_scheme.scheme ~epsilon:0.02
    ~queries:6 ~probes:24
    ~sampled_verifier:(fun qv ->
      let v = Qview.centre qv in
      let cert u = Tree_cert.decode (Qview.proof_cell qv u) in
      let flagged u =
        let l = Qview.edge_cell qv v u in
        Bits.length l >= 1 && Bits.get l 0
      in
      let c = cert v in
      let own_ok =
        match c.Tree_cert.parent with
        | None -> c.Tree_cert.root = v && c.Tree_cert.dist = 0
        | Some p ->
            c.Tree_cert.dist >= 1
            && List.mem p (Qview.neighbours qv)
            && (Qview.units_left qv < 1 || flagged p)
      in
      own_ok
      &&
      (* two units per sampled neighbour: its certificate + the
         connecting edge's flag *)
      let chosen = Qview.sample_neighbours qv (Qview.units_left qv / 2) in
      List.for_all
        (fun u ->
          let cu = cert u in
          cu.Tree_cert.root = c.Tree_cert.root
          && (cu.Tree_cert.parent <> Some v
             || cu.Tree_cert.dist = c.Tree_cert.dist + 1)
          && (c.Tree_cert.parent <> Some u
             || c.Tree_cert.dist = cu.Tree_cert.dist + 1)
          && ((not (flagged u))
             || c.Tree_cert.parent = Some u
             || cu.Tree_cert.parent = Some v))
        chosen)

let st_unreach =
  Randomized_scheme.make ~base:Reachability.undirected_unreach ~epsilon:0.02
    ~queries:4 ~probes:24
    ~sampled_verifier:(fun qv ->
      let mark u =
        match Qview.proof_bit qv u 0 with Some b -> b | None -> false
      in
      let mine = mark (Qview.centre qv) in
      let l = Qview.my_label qv in
      (if St.is_s_label l then mine else true)
      && (if St.is_t_label l then not mine else true)
      && List.for_all
           (fun u -> mark u = mine)
           (Qview.sample_neighbours qv (Qview.units_left qv)))

let all =
  [
    ("bipartite", bipartite);
    ("spanning-tree", spanning_tree);
    ("st-unreach", st_unreach);
  ]

let find name = List.assoc_opt name all
