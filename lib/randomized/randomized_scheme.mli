(** Randomized verification schemes: a deterministic {!Scheme.t}
    wrapped with an explicit one-sided error budget ε, a per-node
    query bound [q], and a node-sampling width [probes].

    Semantics (after "Distributed Local Verification using Proofs
    with(out) Errors" and the distributed-PCP line of PAPERS.md): a
    sampled run draws [probes] nodes from the seeded PRG and runs the
    query-bounded [sampled_verifier] — reading at most [q] proof
    bits / neighbour-label cells through a {!Qview.t} — at exactly
    those nodes.

    - {e Completeness is exact}: the sampled verifier checks a subset
      of the base verifier's conditions, so a valid proof is accepted
      with probability 1.
    - {e Soundness is empirical}: an invalid proof may slip through
      when every probed node happens to accept; ε bounds the observed
      one-sided error over the checker's forgery distribution, and
      {!soundness} (via {!Checker.soundness_empirical}) measures it
      with a Wilson interval — the declared budget is a tested claim,
      not a worst-case theorem.

    The serving fast path builds on this: sampled-accept answers
    immediately, sampled-reject escalates to a full verification, so
    client-visible REJECT verdicts are always exact. *)

type t = {
  base : Scheme.t;
  epsilon : float;  (** Declared one-sided error budget. *)
  queries : int;  (** Default per-node query-unit bound [q] ≥ 1. *)
  probes : int;  (** Nodes sampled per run; [0] = every node. *)
  budget : string;
      (** Stable budget identifier, e.g. ["eps0.02:q4:m24"] — what the
          wire frame's [budget_id] field names and the Prometheus
          budget gauge labels. *)
  sampled_verifier : Qview.t -> bool;
}

val make :
  base:Scheme.t ->
  epsilon:float ->
  queries:int ->
  probes:int ->
  sampled_verifier:(Qview.t -> bool) ->
  t
(** Builds the budget id from the three parameters. Raises
    [Invalid_argument] on [queries < 1], [probes < 0] or an ε outside
    (0, 1). *)

type outcome = {
  accepted : bool;  (** Sampled-ACCEPT: every probed node accepted. *)
  rejecting : Graph.node list;  (** First ≤ 64 rejecting probes. *)
  nodes_checked : int;
  bits_read : int;  (** Summed over probed nodes (jobs-independent). *)
  reads : (Graph.node * (Graph.node * int * int) list) list;
      (** Per-probe charged-read logs, sorted by node — populated only
          under [~collect_reads:true]. *)
}

val probe_nodes : t -> Simulator.compiled -> seed:int -> Graph.node array
(** The probe set a run with this seed will check: a pure function of
    [(seed, graph, probes)], independent of jobs — exposed so tests
    can pin it. All nodes when [probes = 0] or the graph is at most
    twice the probe width. *)

val run :
  ?jobs:int ->
  ?arena:Simulator.arena ->
  ?collect_reads:bool ->
  t ->
  Simulator.compiled ->
  Proof.t ->
  seed:int ->
  queries:int ->
  outcome
(** One sampled verification. [queries] overrides the scheme's
    default bound (the wire frame carries the client's choice); it
    must be ≥ 1. A [Bits.Reader.Decode_error] from the verifier
    rejects that node; {!Qview.Budget_exceeded} propagates — it means
    the sampled verifier itself is broken. *)

val soundness :
  ?seed:int ->
  ?jobs:int ->
  ?queries:int ->
  t ->
  Instance.t ->
  samples:int ->
  max_bits:int ->
  Checker.empirical
(** {!Checker.soundness_empirical} specialised to this scheme: forge
    proofs, keep the ones the base verifier rejects, and count how
    often a sampled run accepts them anyway. The declared ε is met
    when the interval's lower bound stays at or below it. *)
