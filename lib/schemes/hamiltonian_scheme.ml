(** Θ(log n): Hamiltonian cycle verification (Section 5.1 — "a
    Hamiltonian path can be interpreted as a spanning tree"). The
    flagged edges are the claimed cycle; the proof removes one cycle
    edge and certifies the rest as a spanning path rooted at one end:

    - every node has exactly two flagged incident edges;
    - the tree certificate's parent edge is flagged and positions
      (= tree distances) decrease towards the root;
    - a non-root node's second flagged neighbour is its unique child —
      or the root, making it the closing node;
    - the root's flagged neighbours are exactly one child and one
      non-child (the other end of the path).

    The certificate forces the flagged set to be a spanning path plus
    the closing edge: a Hamiltonian cycle. *)

let flagged view u w =
  let l = View.edge_label_of view u w in
  Bits.length l >= 1 && Bits.get l 0

let scheme =
  Scheme.make ~name:"hamiltonian-cycle" ~radius:1 ~size_bound:Tree_cert.size_bound
    ~prover:(fun inst ->
      let g = Instance.graph inst in
      let cycle_edges = Instance.flagged_edges inst in
      let n = Graph.n g in
      if n < 3 || List.length cycle_edges <> n then None
      else begin
        (* Walk the flagged 2-regular structure from the smallest node;
           it must be a single cycle through all nodes. *)
        let adj = Hashtbl.create 64 in
        List.iter
          (fun (u, v) ->
            Hashtbl.add adj u v;
            Hashtbl.add adj v u)
          cycle_edges;
        if not (Graph.fold_nodes (fun v acc -> acc && List.length (Hashtbl.find_all adj v) = 2) g true)
        then None
        else begin
          let start = List.hd (Graph.nodes g) in
          let rec walk acc prev v =
            if v = start then List.rev acc
            else
              match Hashtbl.find_all adj v with
              | [ a; b ] -> walk (v :: acc) v (if a = prev then b else a)
              | _ -> acc (* unreachable: degrees checked above *)
          in
          let first = List.hd (Hashtbl.find_all adj start) in
          let order = start :: walk [ ] start first in
          if List.length order <> n then None
          else begin
            let arr = Array.of_list order in
            Some
              (Array.to_list arr
              |> List.mapi (fun i v ->
                     ( v,
                       Tree_cert.encode
                         {
                           Tree_cert.root = arr.(0);
                           dist = i;
                           parent = (if i = 0 then None else Some arr.(i - 1));
                         } ))
              |> List.fold_left (fun p (v, b) -> Proof.set p v b) Proof.empty)
          end
        end
      end)
    ~verifier:(fun view ->
      let v = View.centre view in
      let cert_of u = Tree_cert.decode (View.proof_of view u) in
      let c = cert_of v in
      let flagged_nbrs = List.filter (flagged view v) (View.neighbours view v) in
      Tree_cert.check_at view ~cert_of
      && List.length flagged_nbrs = 2
      &&
      let claims_me u = (cert_of u).Tree_cert.parent = Some v in
      match c.Tree_cert.parent with
      | None ->
          (* Root: one flagged neighbour is its child, the other is the
             closing end (not a child). *)
          List.length (List.filter claims_me flagged_nbrs) = 1
      | Some p ->
          List.mem p flagged_nbrs
          &&
          let others = List.filter (fun u -> u <> p) flagged_nbrs in
          (match others with
          | [ u ] -> claims_me u || Tree_cert.is_root (cert_of u)
          | _ -> false))

let is_yes inst =
  let g = Instance.graph inst in
  let cycle_edges = Instance.flagged_edges inst in
  let n = Graph.n g in
  n >= 3
  && List.length cycle_edges = n
  &&
  let sub =
    List.fold_left
      (fun acc (u, v) -> Graph.add_edge acc u v)
      (Graph.fold_nodes (fun v acc -> Graph.add_node acc v) g Graph.empty)
      cycle_edges
  in
  Graph.fold_nodes (fun v acc -> acc && Graph.degree sub v = 2) sub true
  && Traversal.is_connected sub
