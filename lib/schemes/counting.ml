(** Counting the nodes of a connected graph with a certified spanning
    tree (Section 5.1): every node stores its subtree size alongside
    the tree certificate; the root learns n(G) and checks the desired
    predicate. Also the Θ(1) parity scheme for the family of cycles:
    a cycle is even iff it is 2-colourable. *)

type cert = { tree : Tree_cert.t; count : int }

let encode c =
  let buf = Bits.Writer.create () in
  Tree_cert.write buf c.tree;
  Bits.Writer.int_gamma buf c.count;
  Bits.Writer.contents buf

let cert_of view u =
  let cur = Bits.Reader.of_bits (View.proof_of view u) in
  let tree = Tree_cert.read cur in
  let count = Bits.Reader.int_gamma cur in
  Bits.Reader.expect_end cur;
  { tree; count }

let prove inst =
  let g = Instance.graph inst in
  if Graph.is_empty g || not (Traversal.is_connected g) then None
  else begin
    let root = List.hd (Graph.nodes g) in
    let certs = Tree_cert.prove g ~root in
    let children = Hashtbl.create 64 in
    List.iter
      (fun (v, c) ->
        match c.Tree_cert.parent with
        | Some p -> Hashtbl.add children p v
        | None -> ())
      certs;
    let rec subtree v = 1 + List.fold_left (fun acc c -> acc + subtree c) 0 (Hashtbl.find_all children v) in
    Some
      (List.fold_left
         (fun p (v, tree) -> Proof.set p v (encode { tree; count = subtree v }))
         Proof.empty certs)
  end

(** [scheme ~name ~accept_n] proves any decidable predicate of n(G) on
    connected graphs with Θ(log n) bits — used for "odd number of
    nodes" (tight by the gluing lower bound) and relatives. *)
let scheme ~name ~accept_n ~is_yes =
  Scheme.make ~name ~radius:1
    ~size_bound:(fun n -> Tree_cert.size_bound n + (2 * Bits.int_width (max 2 n)) + 2)
    ~prover:(fun inst -> if is_yes inst then prove inst else None)
    ~verifier:(fun view ->
      let v = View.centre view in
      let c = cert_of view v in
      Tree_cert.check_at view ~cert_of:(fun u -> (cert_of view u).tree)
      &&
      let child_sum =
        List.fold_left
          (fun acc u ->
            let cu = cert_of view u in
            if cu.tree.Tree_cert.parent = Some v then acc + cu.count else acc)
          0 (View.neighbours view v)
      in
      c.count = 1 + child_sum
      && (if Tree_cert.is_root c.tree then accept_n c.count else true))

let odd_n =
  scheme ~name:"odd-n" ~accept_n:(fun n -> n mod 2 = 1)
    ~is_yes:(fun inst ->
      let g = Instance.graph inst in
      Traversal.is_connected g && Graph.n g mod 2 = 1)

let even_n =
  scheme ~name:"even-n" ~accept_n:(fun n -> n mod 2 = 0)
    ~is_yes:(fun inst ->
      let g = Instance.graph inst in
      Traversal.is_connected g && Graph.n g mod 2 = 0)

let exact_n target =
  scheme
    ~name:(Printf.sprintf "n-equals-%d" target)
    ~accept_n:(fun n -> n = target)
    ~is_yes:(fun inst ->
      let g = Instance.graph inst in
      Traversal.is_connected g && Graph.n g = target)

(** Θ(1) parity on the family of cycles: even cycles are exactly the
    bipartite ones, so one alternating bit per node suffices
    (Table 1(a): "even n(G) / cycles"). *)
let even_cycle =
  Scheme.make ~name:"even-n-cycle" ~radius:1
    ~size_bound:(fun _ -> 1)
    ~prover:(fun inst ->
      let g = Instance.graph inst in
      match Bipartite.two_colouring g with
      | Some colour when Graph.n g mod 2 = 0 ->
          Some
            (Graph.fold_nodes
               (fun v p -> Proof.set p v (Bits.one_bit (colour v)))
               g Proof.empty)
      | _ -> None)
    ~verifier:(fun view ->
      let bit u =
        let b = View.proof_of view u in
        Bits.length b >= 1 && Bits.get b 0
      in
      let v = View.centre view in
      List.for_all (fun u -> bit u <> bit v) (View.neighbours view v))
