(** LCP(0): line graphs (Section 1.1). By Beineke's characterisation a
    graph is a line graph iff it has no forbidden induced subgraph from
    a fixed list of nine graphs on at most 6 nodes. Each forbidden
    pattern is connected with at most 6 nodes, hence contained in the
    radius-5 ball of any of its nodes: a radius-5 verifier that rejects
    when its ball contains a forbidden pattern is complete and sound
    with zero proof bits. *)

let radius = 5

let scheme =
  Scheme.make ~name:"line-graph" ~radius
    ~size_bound:(fun _ -> 0)
    ~prover:(fun inst ->
      if Line_graph.is_line_graph (Instance.graph inst) then Some Proof.empty
      else None)
    ~verifier:(fun view ->
      let ball = View.graph view in
      not
        (List.exists
           (fun pattern -> Subgraph_iso.contains_induced ~pattern ball)
           (Line_graph.forbidden_subgraphs ())))

let is_yes inst = Line_graph.is_line_graph (Instance.graph inst)
