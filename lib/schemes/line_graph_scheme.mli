(** LCP(0): line graphs (Section 1.1), via Beineke's nine forbidden
    induced subgraphs — each fits in a radius-5 ball, so a local
    verifier needs no proof at all. The forbidden list itself is
    {e derived} by {!Line_graph.forbidden_subgraphs}. *)

val radius : int
(** 5 — enough to contain any forbidden pattern around one of its
    nodes. *)

val scheme : Scheme.t
val is_yes : Instance.t -> bool
