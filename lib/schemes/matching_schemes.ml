(** Matching verification across the hierarchy (Section 2.3,
    Table 1(b)):

    - maximal matching ∈ LCP(0);
    - maximum matching in bipartite graphs ∈ LCP(1), via a König
      minimum vertex cover;
    - maximum-weight matching in bipartite graphs ∈ LCP(O(log W)), via
      LP-duality (complementary slackness is locally checkable);
    - maximum matching on cycles ∈ Θ(log n): a spanning tree rooted at
      the (unique, if any) unmatched node.

    Matchings are edge labels: bit 0 of an edge label flags membership.
    For the weighted scheme the edge label carries the weight after
    the flag. *)

let flagged view u w =
  let l = View.edge_label_of view u w in
  Bits.length l >= 1 && Bits.get l 0

let matched_neighbours view v =
  List.filter (flagged view v) (View.neighbours view v)

(* --- maximal matching: LCP(0), radius 2. --- *)

let maximal =
  Scheme.make ~name:"maximal-matching" ~radius:2
    ~size_bound:(fun _ -> 0)
    ~prover:(fun _ -> Some Proof.empty)
    ~verifier:(fun view ->
      let v = View.centre view in
      match matched_neighbours view v with
      | [] ->
          (* Maximality: every neighbour is matched (otherwise the
             joining edge could be added). Neighbours' matched edges
             are visible at radius 2. *)
          List.for_all
            (fun u -> matched_neighbours view u <> [])
            (View.neighbours view v)
      | [ _ ] -> true
      | _ -> false)

let maximal_is_yes inst =
  Matching.is_maximal (Instance.graph inst) (Instance.flagged_edges inst)

(* --- maximum matching in bipartite graphs: LCP(1). --- *)

let cover_bit view u =
  let b = View.proof_of view u in
  Bits.length b >= 1 && Bits.get b 0

let maximum_bipartite =
  Scheme.make ~name:"maximum-matching-bipartite" ~radius:1
    ~size_bound:(fun _ -> 1)
    ~prover:(fun inst ->
      let g = Instance.graph inst in
      let m = Instance.flagged_edges inst in
      if not (Matching.is_matching g m) then None
      else if List.length m <> List.length (Matching.maximum_bipartite g) then None
      else begin
        (* Strong scheme: certify the adversary's matching. König's
           construction from this very matching yields a cover with
           |C| = |M|, each cover node matched, each matched edge with
           exactly one covered endpoint. *)
        let cover = Matching.koenig_cover g m in
        Some
          (Graph.fold_nodes
             (fun v p -> Proof.set p v (Bits.one_bit (List.mem v cover)))
             g Proof.empty)
      end)
    ~verifier:(fun view ->
      let v = View.centre view in
      match matched_neighbours view v with
      | _ :: _ :: _ -> false
      | matched ->
          (* Cover covers every incident edge. *)
          List.for_all
            (fun u -> cover_bit view v || cover_bit view u)
            (View.neighbours view v)
          (* Matched edges have exactly one covered endpoint. *)
          && List.for_all
               (fun u -> cover_bit view v <> cover_bit view u)
               matched
          (* Covered nodes are matched. *)
          && ((not (cover_bit view v)) || matched <> []))

let maximum_bipartite_is_yes inst =
  let g = Instance.graph inst in
  let m = Instance.flagged_edges inst in
  Matching.is_matching g m
  && List.length m = List.length (Matching.maximum_bipartite g)

(* --- maximum-weight matching in bipartite graphs: LCP(O(log W)). --- *)

let weighted_edge_label ~in_matching ~weight =
  let buf = Bits.Writer.create () in
  Bits.Writer.bool buf in_matching;
  Bits.Writer.int_gamma buf weight;
  Bits.Writer.contents buf

let weight_of_label l =
  let cur = Bits.Reader.of_bits l in
  let _flag = Bits.Reader.bool cur in
  let w = Bits.Reader.int_gamma cur in
  Bits.Reader.expect_end cur;
  w

(** Build a weighted-matching instance: weights on all edges, flags on
    the matched ones. *)
let weighted_instance g (weights : Weighted_matching.weights) matching =
  Graph.fold_edges
    (fun u v acc ->
      Instance.with_edge_label acc u v
        (weighted_edge_label
           ~in_matching:(List.mem (u, v) matching)
           ~weight:(weights (u, v))))
    g (Instance.of_graph g)

let instance_weights inst (u, v) = weight_of_label (Instance.edge_label inst u v)

let maximum_weight_bipartite =
  Scheme.make ~name:"maximum-weight-matching-bipartite" ~radius:1
    ~size_bound:(fun n -> (4 * Bits.int_width (max 2 n)) + 16)
    ~prover:(fun inst ->
      let g = Instance.graph inst in
      let m = Instance.flagged_edges inst in
      match Weighted_matching.dual_certificate g (instance_weights inst) m with
      | None -> None
      | Some dual ->
          Some
            (List.fold_left
               (fun p (v, y) -> Proof.set p v (Bits.encode_int y))
               Proof.empty dual))
    ~verifier:(fun view ->
      let v = View.centre view in
      let y u = Bits.decode_int (View.proof_of view u) in
      let weight u w = weight_of_label (View.edge_label_of view u w) in
      match matched_neighbours view v with
      | _ :: _ :: _ -> false
      | matched ->
          (* Dual feasibility on incident edges. *)
          List.for_all
            (fun u -> y v + y u >= weight v u)
            (View.neighbours view v)
          (* Complementary slackness: tight on the matched edge, and
             zero at unmatched nodes. *)
          && List.for_all (fun u -> y v + y u = weight v u) matched
          && (matched <> [] || y v = 0))

let maximum_weight_is_yes inst =
  let g = Instance.graph inst in
  let m = Instance.flagged_edges inst in
  let w = instance_weights inst in
  Matching.is_matching g m
  && Weighted_matching.weight_of_matching w m
     = Weighted_matching.weight_of_matching w (Weighted_matching.maximum_weight g w)

(* --- maximum matching on cycles: Θ(log n). --- *)

let maximum_on_cycle =
  Scheme.make ~name:"maximum-matching-cycle" ~radius:1
    ~size_bound:Tree_cert.size_bound
    ~prover:(fun inst ->
      let g = Instance.graph inst in
      let m = Instance.flagged_edges inst in
      if not (Matching.is_matching g m) then None
      else begin
        let unmatched =
          let covered = Matching.matched_nodes m in
          List.filter (fun v -> not (List.mem v covered)) (Graph.nodes g)
        in
        match unmatched with
        | [] ->
            (* Perfect matching: root anywhere. *)
            let root = List.hd (Graph.nodes g) in
            Some
              (List.fold_left
                 (fun p (v, c) -> Proof.set p v (Tree_cert.encode c))
                 Proof.empty (Tree_cert.prove g ~root))
        | [ u ] ->
            Some
              (List.fold_left
                 (fun p (v, c) -> Proof.set p v (Tree_cert.encode c))
                 Proof.empty (Tree_cert.prove g ~root:u))
        | _ -> None (* more than one unmatched node: not maximum *)
      end)
    ~verifier:(fun view ->
      let v = View.centre view in
      let cert_of u = Tree_cert.decode (View.proof_of view u) in
      Tree_cert.check_at view ~cert_of
      &&
      match matched_neighbours view v with
      | [] -> Tree_cert.is_root (cert_of v)
      | [ _ ] -> true
      | _ -> false)

let maximum_on_cycle_is_yes inst =
  Matching.is_maximum_on_cycle (Instance.graph inst) (Instance.flagged_edges inst)
