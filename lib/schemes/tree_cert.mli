(** The locally checkable rooted-spanning-tree certificate of Korman,
    Kutten & Peleg, as used throughout Section 5: each node carries
    (root identity, its distance to the root, its parent pointer), all
    in O(log n) bits.

    Local checks force global correctness on connected graphs: parent
    pointers strictly decrease the distance field, so every node's
    pointer chain terminates at a distance-0 node; a distance-0 node
    must carry its own identity as the root field; and neighbours must
    agree on the root field, so there is exactly one root. The parent
    edges therefore form a spanning tree rooted at a unique,
    globally-agreed node — the versatile tool behind leader election,
    counting, acyclicity, non-bipartiteness and the LogLCP
    normalisation results. *)

type t = {
  root : Graph.node;  (** Claimed root identity. *)
  dist : int;  (** Hop distance to the root along the tree. *)
  parent : Graph.node option;  (** [None] exactly at the root. *)
}

val write : Bits.Writer.buf -> t -> unit
val read : Bits.Reader.cursor -> t
val encode : t -> Bits.t
val decode : Bits.t -> t

val size_bound : int -> int
(** Generous bit bound for graphs whose identifiers are polynomial in
    [n] (the paper's standing assumption). *)

val prove : Graph.t -> root:Graph.node -> (Graph.node * t) list
(** BFS spanning tree of the root's component. *)

val prove_tree :
  Graph.t -> edges:(Graph.node * Graph.node) list -> root:Graph.node ->
  (Graph.node * t) list option
(** Certificate for a {e given} spanning tree (strong schemes must
    certify an adversary's tree): distances measured inside the edge
    set. [None] if the edges do not connect the graph as a tree. *)

val check_at :
  View.t -> cert_of:(Graph.node -> t) -> bool
(** The local verification at the view's centre. [cert_of] decodes the
    certificate embedded in a node's proof string (it is given the
    already-parsed certificate by the calling scheme); it may raise
    [Bits.Reader.Decode_error] to reject. Requires radius ≥ 1. *)

val parent_claims : View.t -> cert_of:(Graph.node -> t) -> Graph.node -> Graph.node list
(** Neighbours of the given node (in the view) whose certificate names
    it as parent — its tree children, as far as the view can see. *)

val is_root : t -> bool
