(** The universal O(n²)-bit scheme (Section 6): on connected graphs any
    computable pure property is provable by handing every node the
    complete encoded graph; local agreement + neighbourhood-match +
    connectivity of the decoding force the encoding to be exactly G. *)

val scheme : name:string -> (Graph.t -> bool) -> Scheme.t
val of_predicate : name:string -> (Graph.t -> bool) -> Scheme.t
(** Alias of {!scheme}. *)

val symmetric : Scheme.t
(** Table 1(a): symmetric graphs — Θ(n²), tight by Section 6.1. *)

val symmetric_is_yes : Instance.t -> bool

val non_3_colourable : Scheme.t
(** Table 1(a): chromatic number > 3 — O(n²), nearly tight by the
    Ω(n²/log n) fooling set of Section 6.3. *)

val non_3_colourable_is_yes : Instance.t -> bool
