(** Θ(log n): verifying that the flagged edges form a spanning tree
    (Korman–Kutten–Peleg; Table 1(b)). A strong scheme: any spanning
    tree chosen by the adversary is certifiable. *)

val scheme : Scheme.t
val is_yes : Instance.t -> bool
