(** Section 4.1 — reachability and unreachability.

    - Undirected s–t reachability ∈ LCP(1): mark the nodes [U] of a
      chordless s–t path; local degree checks force the marked set to
      contain a path from s to t.
    - s–t unreachability ∈ LCP(1), both undirected and directed: mark
      a side [S] of a cut with no (out-going) edge to the rest.
    - Directed s–t reachability: whether it is in LCP(O(1)) is open
      (Ajtai–Fagin); the O(log Δ) upper bound stores a pointer to the
      successor along a path. *)

let marked view u =
  let b = View.proof_of view u in
  Bits.length b >= 1 && Bits.get b 0

let mark_proof g marked_nodes =
  Graph.fold_nodes
    (fun v p -> Proof.set p v (Bits.one_bit (List.mem v marked_nodes)))
    g Proof.empty

(* Keep only chordless paths so that "exactly two marked neighbours"
   holds along the path (a chord would break it). *)
let chordless_path g s t =
  match Traversal.shortest_path g s t with
  | None -> None
  | Some p -> Some p
(* Shortest paths are automatically chordless. *)

let undirected_reach =
  Scheme.make ~name:"st-reach-undirected" ~radius:1
    ~size_bound:(fun _ -> 1)
    ~prover:(fun inst ->
      match St.find inst with
      | None -> None
      | Some (s, t) -> (
          match chordless_path (Instance.graph inst) s t with
          | None -> None
          | Some path -> Some (mark_proof (Instance.graph inst) path)))
    ~verifier:(fun view ->
      let v = View.centre view in
      let marked_neighbours =
        List.filter (marked view) (View.neighbours view v)
      in
      if St.is_s view v || St.is_t view v then
        marked view v && List.length marked_neighbours = 1
      else if marked view v then List.length marked_neighbours = 2
      else true)

let undirected_unreach =
  Scheme.make ~name:"st-unreach-undirected" ~radius:1
    ~size_bound:(fun _ -> 1)
    ~prover:(fun inst ->
      match St.find inst with
      | None -> None
      | Some (s, t) ->
          let g = Instance.graph inst in
          let side = Traversal.component g s in
          if List.mem t side then None else Some (mark_proof g side))
    ~verifier:(fun view ->
      let v = View.centre view in
      let mine = marked view v in
      (if St.is_s view v then mine else true)
      && (if St.is_t view v then not mine else true)
      && List.for_all (fun u -> marked view u = mine) (View.neighbours view v))

let directed_unreach =
  Scheme.make ~name:"st-unreach-directed" ~radius:1
    ~size_bound:(fun _ -> 1)
    ~prover:(fun inst ->
      match St.find inst with
      | None -> None
      | Some (s, t) ->
          let g = Instance.graph inst in
          (* S = nodes reachable from s along arcs; no arc may leave it. *)
          let module IS = Set.Make (Int) in
          let rec grow seen = function
            | [] -> seen
            | v :: rest ->
                if IS.mem v seen then grow seen rest
                else
                  let succ =
                    List.filter (Instance.arc_exists inst v) (Graph.neighbours g v)
                  in
                  grow (IS.add v seen) (succ @ rest)
          in
          let side = grow IS.empty [ s ] in
          if IS.mem t side then None
          else Some (mark_proof g (IS.elements side)))
    ~verifier:(fun view ->
      let v = View.centre view in
      let mine = marked view v in
      (if St.is_s view v then mine else true)
      && (if St.is_t view v then not mine else true)
      && List.for_all
           (fun u ->
             (* No arc from a marked node to an unmarked one. *)
             (not (View.arc_exists view v u)) || (not mine) || marked view u)
           (View.neighbours view v))

(* Directed reachability upper bound O(log Δ): each path node stores
   {e mutual} pointers — the rank of its successor among its sorted
   out-neighbours and the rank of its predecessor among its sorted
   in-neighbours. The mutual checks make the successor relation a
   partial bijection on marked nodes, so the component of s is a
   genuine directed path; it can only terminate at t. (A one-sided
   pointer chain would be unsound: disjoint pointer cycles fool it.)
   Ranks need a radius-2 view, since computing a neighbour's
   out-neighbour list requires seeing that neighbour's edges. Whether
   O(1) bits suffice in general digraphs is the open problem the paper
   cites (Ajtai–Fagin). *)
let directed_reach_pointer =
  Scheme.make ~name:"st-reach-directed-pointer" ~radius:2
    ~size_bound:(fun n -> (4 * Bits.int_width (max 2 n)) + 8)
    ~prover:(fun inst ->
      match St.find inst with
      | None -> None
      | Some (s, t) ->
          let g = Instance.graph inst in
          (* BFS along arcs. *)
          let parent = Hashtbl.create 64 in
          Hashtbl.replace parent s s;
          let q = Queue.create () in
          Queue.push s q;
          while not (Queue.is_empty q) do
            let v = Queue.pop q in
            List.iter
              (fun u ->
                if Instance.arc_exists inst v u && not (Hashtbl.mem parent u)
                then begin
                  Hashtbl.replace parent u v;
                  Queue.push u q
                end)
              (Graph.neighbours g v)
          done;
          if not (Hashtbl.mem parent t) then None
          else begin
            let rec walk acc v =
              if v = s then v :: acc else walk (v :: acc) (Hashtbl.find parent v)
            in
            let path = Array.of_list (walk [] t) in
            let out_rank v target =
              let succs =
                List.filter (Instance.arc_exists inst v) (Graph.neighbours g v)
              in
              let rec rank k = function
                | [] -> invalid_arg "Reachability: successor not an out-neighbour"
                | x :: rest -> if x = target then k else rank (k + 1) rest
              in
              rank 0 succs
            in
            let in_rank v source =
              let preds =
                List.filter
                  (fun u -> Instance.arc_exists inst u v)
                  (Graph.neighbours g v)
              in
              let rec rank k = function
                | [] -> invalid_arg "Reachability: predecessor not an in-neighbour"
                | x :: rest -> if x = source then k else rank (k + 1) rest
              in
              rank 0 preds
            in
            let proof = ref Proof.empty in
            Graph.iter_nodes
              (fun v -> proof := Proof.set !proof v (Bits.one_bit false))
              g;
            Array.iteri
              (fun i v ->
                let buf = Bits.Writer.create () in
                Bits.Writer.bool buf true;
                (if i > 0 then begin
                   Bits.Writer.bool buf true;
                   Bits.Writer.int_gamma buf (in_rank v path.(i - 1))
                 end
                 else Bits.Writer.bool buf false);
                (if i + 1 < Array.length path then begin
                   Bits.Writer.bool buf true;
                   Bits.Writer.int_gamma buf (out_rank v path.(i + 1))
                 end
                 else Bits.Writer.bool buf false);
                proof := Proof.set !proof v (Bits.Writer.contents buf))
              path;
            Some !proof
          end)
    ~verifier:(fun view ->
      let parse u =
        let cur = Bits.Reader.of_bits (View.proof_of view u) in
        if not (Bits.Reader.bool cur) then None
        else begin
          let pred =
            if Bits.Reader.bool cur then Some (Bits.Reader.int_gamma cur) else None
          in
          let succ =
            if Bits.Reader.bool cur then Some (Bits.Reader.int_gamma cur) else None
          in
          Some (pred, succ)
        end
      in
      let out_neighbour u rank =
        let succs =
          List.filter (fun x -> View.arc_exists view u x) (View.neighbours view u)
        in
        List.nth_opt succs rank
      in
      let in_neighbour u rank =
        let preds =
          List.filter (fun x -> View.arc_exists view x u) (View.neighbours view u)
        in
        List.nth_opt preds rank
      in
      let v = View.centre view in
      match parse v with
      | None -> (not (St.is_s view v)) && not (St.is_t view v)
      | Some (pred, succ) -> (
          (match pred with
          | None -> St.is_s view v
          | Some rank -> (
              (not (St.is_s view v))
              &&
              match in_neighbour v rank with
              | None -> false
              | Some u -> (
                  (* Mutual: my predecessor's successor pointer names me. *)
                  match parse u with
                  | Some (_, Some succ_rank) -> out_neighbour u succ_rank = Some v
                  | _ -> false)))
          &&
          match succ with
          | None -> St.is_t view v
          | Some rank -> (
              (not (St.is_t view v))
              &&
              match out_neighbour v rank with
              | None -> false
              | Some u -> (
                  match parse u with
                  | Some (Some pred_rank, _) -> in_neighbour u pred_rank = Some v
                  | _ -> false))))
