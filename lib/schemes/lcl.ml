(** LCP(0) builders for locally checkable labellings (Naor–Stockmeyer;
    Table 1(b)). An LCL problem is given by a radius and a local
    constraint on labelled views; its solutions are verifiable with no
    proof at all, which is exactly the class LCP(0) of this paper
    (Section 3). *)

let of_constraint ~name ~radius ~check =
  Scheme.make ~name ~radius
    ~size_bound:(fun _ -> 0)
    ~prover:(fun _ -> Some Proof.empty)
    ~verifier:check

(** Solutions of "proper colouring with labels" — node labels carry the
    colour, no proof bits. *)
let proper_colouring =
  of_constraint ~name:"lcl-proper-colouring" ~radius:1 ~check:(fun view ->
      let v = View.centre view in
      let mine = View.label_of view v in
      List.for_all
        (fun u -> not (Bits.equal (View.label_of view u) mine))
        (View.neighbours view v))

(** Solutions of "maximal independent set": label bit 1 marks the set. *)
let maximal_independent_set =
  of_constraint ~name:"lcl-mis" ~radius:1 ~check:(fun view ->
      let in_set u =
        let l = View.label_of view u in
        Bits.length l >= 1 && Bits.get l 0
      in
      let v = View.centre view in
      let neighbours = View.neighbours view v in
      if in_set v then List.for_all (fun u -> not (in_set u)) neighbours
      else List.exists in_set neighbours)

(** The agreement problem — all nodes share one label. Trivially in
    LCP(0) in this paper's model, but {e not} solvable with empty
    proofs in the weaker proof-labelling-scheme model of Korman et al.
    (Section 3.2); the model-separation test exercises this. *)
let agreement =
  of_constraint ~name:"lcl-agreement" ~radius:1 ~check:(fun view ->
      let v = View.centre view in
      let mine = View.label_of view v in
      List.for_all
        (fun u -> Bits.equal (View.label_of view u) mine)
        (View.neighbours view v))
