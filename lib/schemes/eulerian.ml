(** LCP(0): Eulerian graphs (Section 1.1). On the family of connected
    graphs, a graph is Eulerian iff every degree is even — each node
    checks its own degree, no proof needed. *)

let scheme =
  Scheme.make ~name:"eulerian" ~radius:1
    ~size_bound:(fun _ -> 0)
    ~prover:(fun inst ->
      if Euler.is_eulerian (Instance.graph inst) then Some Proof.empty else None)
    ~verifier:(fun view ->
      View.degree_in_view view (View.centre view) mod 2 = 0)

(** Complement example used by the coLCP(0) ⊆ LogLCP construction
    (Section 7.3): [Models] turns {!scheme} into a scheme for
    non-Eulerian connected graphs. *)
let is_yes inst = Euler.is_eulerian (Instance.graph inst)
