(** Section 4.2 — s–t vertex connectivity = k, via Menger's theorem.

    The proof partitions V into S ∪ C ∪ T (2 bits) and labels the nodes
    of k vertex-disjoint chordless s–t paths with a path index and the
    distance from s modulo 3 (to orient the path). The local checks are
    the paper's (i)–(iv); floating mod-3-consistent cycles inside S or
    T can survive them, but — as the paper argues — they are harmless:
    every chain leaving s is forced to reach t (injectivity of the
    successor relation), giving k disjoint paths, and every C-node lies
    on such a chain with its predecessor in S and successor in T,
    giving a separator of size ≤ k.

    [k] is global input ("k is given as input to all nodes"). The
    general scheme stores the path index in O(log k) bits; the planar
    variant replaces indices by a 3-colouring of the path-adjacency
    conflict graph, giving O(1) bits. *)

type region = S | C | T

type label = {
  region : region;
  path : (int * int) option; (* (index-or-colour, dist-from-s mod 3) *)
}

let write_label buf l =
  Bits.Writer.int_fixed buf ~width:2
    (match l.region with S -> 0 | C -> 1 | T -> 2);
  match l.path with
  | None -> Bits.Writer.bool buf false
  | Some (i, m) ->
      Bits.Writer.bool buf true;
      Bits.Writer.int_gamma buf i;
      Bits.Writer.int_fixed buf ~width:2 m

let read_label cur =
  let region =
    match Bits.Reader.int_fixed cur ~width:2 with
    | 0 -> S
    | 1 -> C
    | 2 -> T
    | _ -> raise (Bits.Reader.Decode_error "bad region")
  in
  let path =
    if Bits.Reader.bool cur then begin
      let i = Bits.Reader.int_gamma cur in
      let m = Bits.Reader.int_fixed cur ~width:2 in
      if m > 2 then raise (Bits.Reader.Decode_error "bad mod-3 position");
      Some (i, m)
    end
    else None
  in
  { region; path }

let globals_of_k = Chromatic.globals_of_k
let k_of_globals = Chromatic.k_of_globals
let instance g ~s ~t ~k = Instance.with_globals (St.of_graph g ~s ~t) (globals_of_k k)

(* Shared prover: compute the Menger certificate, assign labels; the
   paths are chordless by construction (Flow.vertex_disjoint_paths
   shortcuts chords), which the verifier's uniqueness checks rely on.
   [colour_paths] maps the path list to per-path indices — identity
   for the general scheme, a conflict-graph 3-colouring for planar. *)
let prove ~colour_paths inst =
  match St.find inst with
  | None -> None
  | Some (s, t) ->
      let g = Instance.graph inst in
      if Graph.mem_edge g s t then None
      else begin
        let k = k_of_globals (View.make inst Proof.empty ~centre:s ~radius:0) in
        match Flow.menger_certificate g ~s ~t with
        | None -> None
        | Some (paths, separator) ->
            if List.length paths <> k then None
            else begin
              match colour_paths g paths with
              | None -> None
              | Some indices ->
                  let module IS = Set.Make (Int) in
                  let sep = IS.of_list separator in
                  let side =
                    (* S-region: source side of the min cut. *)
                    let net_side =
                      let rec collect acc = function
                        | [] -> acc
                        | p :: rest ->
                            (* everything before the separator node *)
                            let rec before acc = function
                              | [] -> acc
                              | x :: _ when IS.mem x sep -> acc
                              | x :: r -> before (IS.add x acc) r
                            in
                            collect (before acc p) rest
                      in
                      collect (IS.singleton s) paths
                    in
                    (* Non-path nodes: S iff reachable from s without
                       touching the separator. *)
                    let g' = IS.fold (fun c acc -> Graph.remove_node acc c) sep g in
                    let comp =
                      if Graph.mem_node g' s then IS.of_list (Traversal.component g' s)
                      else IS.singleton s
                    in
                    IS.union net_side comp
                  in
                  let region_of v =
                    if IS.mem v sep then C else if IS.mem v side then S else T
                  in
                  let path_pos = Hashtbl.create 64 in
                  List.iteri
                    (fun pi path ->
                      let idx = List.nth indices pi in
                      List.iteri
                        (fun pos v ->
                          if v <> s && v <> t then
                            Hashtbl.replace path_pos v (idx, pos mod 3))
                        path)
                    paths;
                  let proof =
                    Graph.fold_nodes
                      (fun v p ->
                        let l =
                          { region = region_of v; path = Hashtbl.find_opt path_pos v }
                        in
                        let buf = Bits.Writer.create () in
                        write_label buf l;
                        Proof.set p v (Bits.Writer.contents buf))
                      g Proof.empty
                  in
                  Some proof
            end
      end

let label_of view u =
  let cur = Bits.Reader.of_bits (View.proof_of view u) in
  let l = read_label cur in
  Bits.Reader.expect_end cur;
  l

(* [exact_indices]: general scheme — s and t see each index exactly
   once; planar scheme counts k path-neighbours instead. *)
let verify ~exact_indices view =
  let k = k_of_globals view in
  let v = View.centre view in
  let lv = label_of view v in
  let neighbours = View.neighbours view v in
  let path_neighbours =
    List.filter_map
      (fun u ->
        match (label_of view u).path with Some (i, m) -> Some (u, i, m) | None -> None)
      neighbours
  in
  let no_st_edge =
    List.for_all
      (fun u ->
        match (lv.region, (label_of view u).region) with
        | S, T | T, S -> false
        | _ -> true)
      neighbours
  in
  no_st_edge
  &&
  if St.is_s view v then
    lv.region = S && lv.path = None
    && List.for_all (fun (_, i, m) -> m = 1 && i < k) path_neighbours
    && (if exact_indices then
          List.for_all
            (fun i ->
              List.length (List.filter (fun (_, j, _) -> j = i) path_neighbours) = 1)
            (List.init k Fun.id)
        else List.length path_neighbours = k)
  else if St.is_t view v then
    lv.region = T && lv.path = None
    && List.for_all (fun (_, i, _) -> i < k) path_neighbours
    && (if exact_indices then
          List.for_all
            (fun i ->
              List.length (List.filter (fun (_, j, _) -> j = i) path_neighbours) = 1)
            (List.init k Fun.id)
        else List.length path_neighbours = k)
  else
    match lv.path with
    | None -> lv.region <> C
    | Some (i, m) ->
        let preds =
          List.filter (fun (_, j, m') -> j = i && m' = (m + 2) mod 3) path_neighbours
        in
        let succs =
          List.filter (fun (_, j, m') -> j = i && m' = (m + 1) mod 3) path_neighbours
        in
        let s_adj = List.exists (St.is_s view) neighbours in
        let t_adj = List.exists (St.is_t view) neighbours in
        i < k
        && (if s_adj then m = 1 && preds = [] else List.length preds = 1)
        && (if t_adj then succs = [] else List.length succs = 1)
        && (let pred_region =
              if s_adj then S
              else
                match preds with
                | [ (u, _, _) ] -> (label_of view u).region
                | _ -> S (* unreachable given the check above *)
            in
            let succ_region =
              if t_adj then T
              else
                match succs with
                | [ (u, _, _) ] -> (label_of view u).region
                | _ -> T
            in
            match lv.region with
            | S -> pred_region = S && (succ_region = S || succ_region = C)
            | C -> pred_region = S && succ_region = T
            | T -> (pred_region = C || pred_region = T) && succ_region = T)

let general =
  Scheme.make ~name:"st-connectivity-k" ~radius:1
    ~size_bound:(fun n -> (2 * Bits.int_width (max 2 n)) + 8)
    ~prover:(prove ~colour_paths:(fun _ paths -> Some (List.mapi (fun i _ -> i) paths)))
    ~verifier:(verify ~exact_indices:true)

(* Planar: 3-colour the path conflict graph (paths are adjacent when
   any of their internal nodes are adjacent in G or share a neighbour
   relationship that could confuse the per-colour uniqueness checks;
   we conservatively use node adjacency). The paper shows 3 colours
   always suffice on planar graphs; our prover verifies it on the given
   instance and fails otherwise. *)
let colour_paths_planar g paths =
  let arr = Array.of_list paths in
  let k = Array.length arr in
  let internal p = match p with [] -> [] | _ :: rest -> (
      match List.rev rest with [] -> [] | _ :: mid -> List.rev mid)
  in
  let internals = Array.map internal arr in
  let conflict = ref Graph.empty in
  for i = 0 to k - 1 do
    conflict := Graph.add_node !conflict i
  done;
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      let adjacent =
        List.exists
          (fun u -> List.exists (fun w -> Graph.mem_edge g u w) internals.(j))
          internals.(i)
      in
      if adjacent then conflict := Graph.add_edge !conflict i j
    done
  done;
  match Coloring.k_colouring !conflict 3 with
  | None -> None
  | Some colouring ->
      Some (List.init k (fun i -> List.assoc i colouring))

let planar =
  Scheme.make ~name:"st-connectivity-k-planar" ~radius:1
    ~size_bound:(fun _ -> 10)
    ~prover:(prove ~colour_paths:colour_paths_planar)
    ~verifier:(verify ~exact_indices:false)
