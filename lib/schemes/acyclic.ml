(** O(log n): acyclicity (Section 5.1 — "spanning trees can be used to
    prove that the graph is acyclic: we simply show that each component
    is a tree"). Each component carries a rooted tree certificate plus
    two aggregated counters — subtree node count and subtree degree
    sum — so the component root can check m = n - 1, i.e. that the
    spanning tree is the whole component. *)

type cert = { tree : Tree_cert.t; count : int; degree_sum : int }

let encode c =
  let buf = Bits.Writer.create () in
  Tree_cert.write buf c.tree;
  Bits.Writer.int_gamma buf c.count;
  Bits.Writer.int_gamma buf c.degree_sum;
  Bits.Writer.contents buf

let cert_of view u =
  let cur = Bits.Reader.of_bits (View.proof_of view u) in
  let tree = Tree_cert.read cur in
  let count = Bits.Reader.int_gamma cur in
  let degree_sum = Bits.Reader.int_gamma cur in
  Bits.Reader.expect_end cur;
  { tree; count; degree_sum }

let is_yes inst =
  let g = Instance.graph inst in
  List.for_all
    (fun comp -> Graph.m (Graph.induced g comp) = List.length comp - 1)
    (Traversal.components g)

let scheme =
  Scheme.make ~name:"acyclic" ~radius:1
    ~size_bound:(fun n -> Tree_cert.size_bound n + (4 * Bits.int_width (max 2 n)) + 4)
    ~prover:(fun inst ->
      let g = Instance.graph inst in
      if not (is_yes inst) then None
      else
        Some
          (List.fold_left
             (fun proof comp ->
               let root = List.hd comp in
               let certs = Tree_cert.prove g ~root in
               let children = Hashtbl.create 16 in
               List.iter
                 (fun (v, c) ->
                   match c.Tree_cert.parent with
                   | Some p -> Hashtbl.add children p v
                   | None -> ())
                 certs;
               let rec agg v =
                 List.fold_left
                   (fun (cnt, ds) c ->
                     let c1, d1 = agg c in
                     (cnt + c1, ds + d1))
                   (1, Graph.degree g v)
                   (Hashtbl.find_all children v)
               in
               List.fold_left
                 (fun proof (v, tree) ->
                   let count, degree_sum = agg v in
                   Proof.set proof v (encode { tree; count; degree_sum }))
                 proof certs)
             Proof.empty (Traversal.components g)))
    ~verifier:(fun view ->
      let v = View.centre view in
      let c = cert_of view v in
      Tree_cert.check_at view ~cert_of:(fun u -> (cert_of view u).tree)
      &&
      let children =
        List.filter
          (fun u -> (cert_of view u).tree.Tree_cert.parent = Some v)
          (View.neighbours view v)
      in
      let sum f = List.fold_left (fun acc u -> acc + f (cert_of view u)) 0 children in
      c.count = 1 + sum (fun c -> c.count)
      && c.degree_sum = View.degree_in_view view v + sum (fun c -> c.degree_sum)
      &&
      if Tree_cert.is_root c.tree then c.degree_sum = 2 * (c.count - 1) else true)
