(** Matching verification across the hierarchy (Section 2.3,
    Table 1(b)). Matchings travel as edge labels: bit 0 flags
    membership; the weighted scheme appends a gamma-coded weight. *)

val flagged : View.t -> Graph.node -> Graph.node -> bool
val matched_neighbours : View.t -> Graph.node -> Graph.node list

val maximal : Scheme.t
(** LCP(0), radius 2: validity plus local maximality. *)

val maximal_is_yes : Instance.t -> bool

val maximum_bipartite : Scheme.t
(** LCP(1): a König minimum vertex cover — one bit per node — with
    "every matched edge has exactly one covered endpoint" and "every
    covered node is matched" making |C| = |M| locally evident. *)

val maximum_bipartite_is_yes : Instance.t -> bool

val weighted_edge_label : in_matching:bool -> weight:int -> Bits.t
val weight_of_label : Bits.t -> int

val weighted_instance :
  Graph.t -> Weighted_matching.weights -> Matching.matching -> Instance.t

val instance_weights : Instance.t -> Graph.node * Graph.node -> int

val maximum_weight_bipartite : Scheme.t
(** LCP(O(log W)): LP-dual potentials; the verifier checks dual
    feasibility on incident edges and complementary slackness. *)

val maximum_weight_is_yes : Instance.t -> bool

val maximum_on_cycle : Scheme.t
(** Θ(log n) on cycles: a spanning tree rooted at the unmatched node
    (if any); every unmatched node must be the root, so at most one
    node is unmatched — maximum on a cycle. *)

val maximum_on_cycle_is_yes : Instance.t -> bool
