(** LCP(0): Eulerian graphs (Section 1.1). On connected graphs,
    Eulerian ⟺ all degrees even, which each node checks alone. *)

val scheme : Scheme.t
(** Zero proof bits, radius 1. *)

val is_yes : Instance.t -> bool
(** Ground truth on the connected family. *)
