type t = { root : Graph.node; dist : int; parent : Graph.node option }

let write buf c =
  Bits.Writer.int_gamma buf c.root;
  Bits.Writer.int_gamma buf c.dist;
  match c.parent with
  | None -> Bits.Writer.bool buf false
  | Some p ->
      Bits.Writer.bool buf true;
      Bits.Writer.int_gamma buf p

let read cur =
  let root = Bits.Reader.int_gamma cur in
  let dist = Bits.Reader.int_gamma cur in
  let parent =
    if Bits.Reader.bool cur then Some (Bits.Reader.int_gamma cur) else None
  in
  { root; dist; parent }

let encode c =
  let buf = Bits.Writer.create () in
  write buf c;
  Bits.Writer.contents buf

let decode b =
  let cur = Bits.Reader.of_bits b in
  let c = read cur in
  Bits.Reader.expect_end cur;
  c

(* root id + parent id: ids are poly(n), gamma codes cost 2·log+1 each;
   dist <= n. A wide constant absorbs the id-polynomial's degree for
   every construction in this repository (ids up to ~n^4). *)
let size_bound n = (20 * Bits.int_width (max 2 n)) + 24

let prove g ~root =
  let pairs = Traversal.spanning_tree g root in
  let dist = Hashtbl.create 64 in
  List.iter (fun (v, d) -> Hashtbl.replace dist v d) (Traversal.bfs_distances g root);
  (root, { root; dist = 0; parent = None })
  :: List.map
       (fun (v, p) -> (v, { root; dist = Hashtbl.find dist v; parent = Some p }))
       pairs

let prove_tree g ~edges ~root =
  let t = List.fold_left (fun acc (u, v) -> Graph.add_edge acc u v) Graph.empty edges in
  let t = Graph.fold_nodes (fun v acc -> Graph.add_node acc v) g t in
  if
    (not (Graph.mem_node t root))
    || Graph.m t <> Graph.n g - 1
    || (not (Traversal.is_connected t))
    || not (List.for_all (fun (u, v) -> Graph.mem_edge g u v) edges)
  then None
  else begin
    let dist = Hashtbl.create 64 in
    List.iter (fun (v, d) -> Hashtbl.replace dist v d) (Traversal.bfs_distances t root);
    let parents = Traversal.spanning_tree t root in
    Some
      ((root, { root; dist = 0; parent = None })
      :: List.map
           (fun (v, p) -> (v, { root; dist = Hashtbl.find dist v; parent = Some p }))
           parents)
  end

let check_at view ~cert_of =
  let v = View.centre view in
  let c = cert_of v in
  let neighbours = View.neighbours view v in
  let agree = List.for_all (fun u -> (cert_of u).root = c.root) neighbours in
  agree
  &&
  if c.dist = 0 then c.root = v && c.parent = None
  else
    match c.parent with
    | None -> false
    | Some p ->
        c.root <> v
        && List.mem p neighbours
        && (cert_of p).dist = c.dist - 1

let parent_claims view ~cert_of u =
  List.filter (fun w -> (cert_of w).parent = Some u) (View.neighbours view u)

let is_root c = c.dist = 0
