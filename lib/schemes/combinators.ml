(* Proof framing: gamma(|p1|) ++ p1 ++ p2 per node. *)
let frame p1 p2 =
  let buf = Bits.Writer.create () in
  Bits.Writer.int_gamma buf (Bits.length p1);
  Bits.Writer.bits buf p1;
  Bits.Writer.bits buf p2;
  Bits.Writer.contents buf

let unframe b =
  let cur = Bits.Reader.of_bits b in
  let len = Bits.Reader.int_gamma cur in
  if len > Bits.Reader.remaining cur then
    raise (Bits.Reader.Decode_error "conj frame overruns");
  let p1 = Bits.of_bools (List.init len (fun _ -> Bits.Reader.bool cur)) in
  let p2 =
    Bits.of_bools
      (List.init (Bits.Reader.remaining cur) (fun _ -> Bits.Reader.bool cur))
  in
  (p1, p2)

(* Rebuild one component's proof across the ball and run that scheme's
   verifier on the restricted view. *)
let run_component (scheme : Scheme.t) view pick =
  let ball = Graph.nodes (View.graph view) in
  let proof =
    List.fold_left
      (fun p u -> Proof.set p u (pick (View.proof_of view u)))
      Proof.empty ball
  in
  let inner_view =
    View.make (View.instance view) proof ~centre:(View.centre view)
      ~radius:scheme.Scheme.radius
  in
  try scheme.Scheme.verifier inner_view with Bits.Reader.Decode_error _ -> false

let conj ~name (s1 : Scheme.t) (s2 : Scheme.t) =
  Scheme.make ~name
    ~radius:(max s1.Scheme.radius s2.Scheme.radius)
    ~size_bound:(fun n ->
      s1.Scheme.size_bound n + s2.Scheme.size_bound n
      + (2 * Bits.int_width (max 2 (s1.Scheme.size_bound n)))
      + 4)
    ~prover:(fun inst ->
      match (s1.Scheme.prover inst, s2.Scheme.prover inst) with
      | Some p1, Some p2 ->
          Some
            (Graph.fold_nodes
               (fun v p -> Proof.set p v (frame (Proof.get p1 v) (Proof.get p2 v)))
               (Instance.graph inst) Proof.empty)
      | _ -> None)
    ~verifier:(fun view ->
      run_component s1 view (fun b -> fst (unframe b))
      && run_component s2 view (fun b -> snd (unframe b)))

let disj ~name (s1 : Scheme.t) (s2 : Scheme.t) =
  Scheme.make ~name
    ~radius:(max 1 (max s1.Scheme.radius s2.Scheme.radius))
    ~size_bound:(fun n -> max (s1.Scheme.size_bound n) (s2.Scheme.size_bound n) + 1)
    ~prover:(fun inst ->
      let tag which proof =
        Some
          (Graph.fold_nodes
             (fun v p ->
               Proof.set p v (Bits.append (Bits.one_bit which) (Proof.get proof v)))
             (Instance.graph inst) Proof.empty)
      in
      (* prefer the first disjunct whose prover succeeds *and* whose
         proof passes (a prover may be optimistic) *)
      let try_scheme which (s : Scheme.t) =
        match s.Scheme.prover inst with
        | Some proof when Scheme.accepts s inst proof -> tag which proof
        | _ -> None
      in
      match try_scheme false s1 with
      | Some p -> Some p
      | None -> try_scheme true s2)
    ~verifier:(fun view ->
      let v = View.centre view in
      let selector u =
        let b = View.proof_of view u in
        if Bits.length b < 1 then raise (Bits.Reader.Decode_error "no selector");
        Bits.get b 0
      in
      let mine = selector v in
      List.for_all (fun u -> selector u = mine) (View.neighbours view v)
      &&
      let payload b = Bits.sub b 1 (Bits.length b - 1) in
      if mine then run_component s2 view payload else run_component s1 view payload)

let restrict ~name promise (scheme : Scheme.t) =
  Scheme.make ~name ~radius:scheme.Scheme.radius ~size_bound:scheme.Scheme.size_bound
    ~prover:(fun inst -> if promise inst then scheme.Scheme.prover inst else None)
    ~verifier:scheme.Scheme.verifier
