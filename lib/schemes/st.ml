(** Conventions for the two distinguished nodes of the reachability and
    connectivity problems (Section 4): "we have the promise that there
    is exactly one node with label s and exactly one node with label
    t". Node label layout: bit 0 = "I am s", bit 1 = "I am t". *)

let s_label = Bits.of_string "10"
let t_label = Bits.of_string "01"

let mark inst ~s ~t =
  if s = t then invalid_arg "St.mark: s = t";
  Instance.with_node_labels inst [ (s, s_label); (t, t_label) ]

let of_graph g ~s ~t = mark (Instance.of_graph g) ~s ~t
let of_digraph d ~s ~t = mark (Instance.of_digraph d) ~s ~t

let is_s_label l = Bits.length l >= 1 && Bits.get l 0
let is_t_label l = Bits.length l >= 2 && Bits.get l 1
let is_s view u = is_s_label (View.label_of view u)
let is_t view u = is_t_label (View.label_of view u)

let find inst =
  let g = Instance.graph inst in
  let s =
    Graph.fold_nodes
      (fun v acc -> if is_s_label (Instance.node_label inst v) then v :: acc else acc)
      g []
  in
  let t =
    Graph.fold_nodes
      (fun v acc -> if is_t_label (Instance.node_label inst v) then v :: acc else acc)
      g []
  in
  match (s, t) with
  | [ s ], [ t ] -> Some (s, t)
  | _ -> None
