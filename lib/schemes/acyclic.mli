(** O(log n): acyclicity (Section 5.1) — each component certifies a
    rooted spanning tree plus two aggregated counters (node count and
    degree sum), letting the component root check m = n − 1. *)

type cert = { tree : Tree_cert.t; count : int; degree_sum : int }

val encode : cert -> Bits.t
val cert_of : View.t -> Graph.node -> cert
val is_yes : Instance.t -> bool
val scheme : Scheme.t
