(** Θ(log n): chromatic number > 2 on connected graphs (Section 5.1).
    The witness is an odd cycle: pick a node of the cycle as the
    leader, certify its uniqueness with a spanning tree, and propagate
    a position counter along the cycle, "starting and ending" at the
    leader. Locally: every cycle node names its successor; positions
    increase by one; predecessor pointers are unique; the closing node
    has even position, so the cycle length is odd.

    Soundness: the successor relation on cycle-marked nodes is
    injective (the predecessor-count check), positions strictly
    increase except into the root, so the functional component of the
    root is a single simple cycle of odd length — an odd closed walk,
    which cannot exist in a bipartite graph. *)

type cert = {
  tree : Tree_cert.t;
  cycle : (int * Graph.node) option; (* (position, successor id) *)
}

let encode c =
  let buf = Bits.Writer.create () in
  Tree_cert.write buf c.tree;
  (match c.cycle with
  | None -> Bits.Writer.bool buf false
  | Some (pos, succ) ->
      Bits.Writer.bool buf true;
      Bits.Writer.int_gamma buf pos;
      Bits.Writer.int_gamma buf succ);
  Bits.Writer.contents buf

let cert_of view u =
  let cur = Bits.Reader.of_bits (View.proof_of view u) in
  let tree = Tree_cert.read cur in
  let cycle =
    if Bits.Reader.bool cur then begin
      let pos = Bits.Reader.int_gamma cur in
      let succ = Bits.Reader.int_gamma cur in
      Some (pos, succ)
    end
    else None
  in
  Bits.Reader.expect_end cur;
  { tree; cycle }

let is_yes inst =
  let g = Instance.graph inst in
  Traversal.is_connected g && not (Bipartite.is_bipartite g)

let scheme =
  Scheme.make ~name:"chromatic-gt-2" ~radius:1
    ~size_bound:(fun n -> Tree_cert.size_bound n + (8 * Bits.int_width (max 2 n)) + 4)
    ~prover:(fun inst ->
      let g = Instance.graph inst in
      if not (Traversal.is_connected g) then None
      else
        match Bipartite.odd_cycle g with
        | None -> None
        | Some cycle ->
            let arr = Array.of_list cycle in
            let len = Array.length arr in
            let leader = arr.(0) in
            let certs = Tree_cert.prove g ~root:leader in
            let cycle_info = Hashtbl.create 16 in
            Array.iteri
              (fun i v -> Hashtbl.replace cycle_info v (i, arr.((i + 1) mod len)))
              arr;
            Some
              (List.fold_left
                 (fun p (v, tree) ->
                   Proof.set p v
                     (encode { tree; cycle = Hashtbl.find_opt cycle_info v }))
                 Proof.empty certs))
    ~verifier:(fun view ->
      let v = View.centre view in
      let c = cert_of view v in
      let neighbours = View.neighbours view v in
      Tree_cert.check_at view ~cert_of:(fun u -> (cert_of view u).tree)
      &&
      let on_cycle u = (cert_of view u).cycle <> None in
      let preds =
        List.filter
          (fun u ->
            match (cert_of view u).cycle with
            | Some (_, succ) -> succ = v
            | None -> false)
          neighbours
      in
      match c.cycle with
      | None ->
          (* Off-cycle nodes must not be pointed at, and the root must
             be on the cycle. *)
          preds = [] && not (Tree_cert.is_root c.tree)
      | Some (pos, succ) ->
          List.length preds = 1
          && List.mem succ neighbours
          && on_cycle succ
          && (pos = 0) = Tree_cert.is_root c.tree
          && (match (cert_of view succ).cycle with
             | Some (spos, _) ->
                 if spos = 0 then pos mod 2 = 0 && pos > 0
                 else spos = pos + 1
             | None -> false))
