(** Θ(log n): verifying that the edges labelled 1 form a spanning tree
    (Korman–Kutten–Peleg; Section 5.1 and Table 1(b)). This is a
    {e strong} scheme: the tree is chosen by the adversary and the
    prover must certify whatever it is given — any spanning tree can be
    rooted anywhere and equipped with root/distance/parent labels. *)

let cert_of view u = Tree_cert.decode (View.proof_of view u)

let scheme =
  Scheme.make ~name:"spanning-tree" ~radius:1 ~size_bound:Tree_cert.size_bound
    ~prover:(fun inst ->
      let g = Instance.graph inst in
      let edges = Instance.flagged_edges inst in
      match Graph.nodes g with
      | [] -> None
      | root :: _ -> (
          match Tree_cert.prove_tree g ~edges ~root with
          | None -> None
          | Some certs ->
              Some
                (List.fold_left
                   (fun p (v, c) -> Proof.set p v (Tree_cert.encode c))
                   Proof.empty certs)))
    ~verifier:(fun view ->
      let v = View.centre view in
      let c = cert_of view v in
      let flagged u =
        let l = View.edge_label_of view v u in
        Bits.length l >= 1 && Bits.get l 0
      in
      Tree_cert.check_at view ~cert_of:(cert_of view)
      && (match c.Tree_cert.parent with
         | None -> true
         | Some p -> flagged p)
      && List.for_all
           (fun u ->
             (* Every flagged incident edge is a parent edge in one of
                the two directions — flagged = tree edges exactly. *)
             (not (flagged u))
             || c.Tree_cert.parent = Some u
             || (cert_of view u).Tree_cert.parent = Some v)
           (View.neighbours view v))

let is_yes inst =
  let g = Instance.graph inst in
  let edges = Instance.flagged_edges inst in
  let t =
    Graph.fold_nodes
      (fun v acc -> Graph.add_node acc v)
      g
      (List.fold_left (fun acc (u, v) -> Graph.add_edge acc u v) Graph.empty edges)
  in
  (not (Graph.is_empty g))
  && Graph.m t = Graph.n g - 1
  && Traversal.is_connected t
