(** LCP(1): bipartite graphs (Section 1.2). The proof is a 2-colouring,
    one bit per node; every node checks that all its neighbours carry
    the opposite bit. Non-bipartite graphs contain an odd cycle, along
    which no bit assignment can alternate — some node always rejects. *)

let scheme =
  Scheme.make ~name:"bipartite" ~radius:1
    ~size_bound:(fun _ -> 1)
    ~prover:(fun inst ->
      match Bipartite.two_colouring (Instance.graph inst) with
      | None -> None
      | Some colour ->
          Some
            (Graph.fold_nodes
               (fun v p -> Proof.set p v (Bits.one_bit (colour v)))
               (Instance.graph inst) Proof.empty))
    ~verifier:(fun view ->
      let v = View.centre view in
      let bit u =
        let b = View.proof_of view u in
        Bits.length b >= 1 && Bits.get b 0
      in
      let mine = bit v in
      List.for_all (fun u -> bit u <> mine) (View.neighbours view v))

let is_yes inst = Bipartite.is_bipartite (Instance.graph inst)
