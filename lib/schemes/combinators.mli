(** Closure properties of the LCP classes, as scheme combinators: if
    P₁ ∈ LCP(f₁) and P₂ ∈ LCP(f₂) then P₁ ∧ P₂ ∈ LCP(f₁ + f₂ + O(log))
    (concatenate proofs, run both verifiers), and on connected families
    P₁ ∨ P₂ ∈ LCP(max + O(1)) (a globally-agreed selector bit names the
    disjunct that holds). The combinators make the hierarchy usable as
    an algebra: complex properties assemble from Table 1 pieces. *)

val conj : name:string -> Scheme.t -> Scheme.t -> Scheme.t
(** Both properties hold. Radius = max of the two; proof = gamma-length
    framed concatenation. *)

val disj : name:string -> Scheme.t -> Scheme.t -> Scheme.t
(** At least one property holds — on {e connected} instances: the
    selector bit's neighbour-agreement check only spans components, so
    the family promise matters (a disconnected instance could satisfy
    different disjuncts in different components without satisfying
    either globally). *)

val restrict : name:string -> (Instance.t -> bool) -> Scheme.t -> Scheme.t
(** Narrow the prover to a sub-family (e.g. add a structural promise);
    the verifier is unchanged. Handy for building catalogue entries. *)
