(** LCP(0) builders for locally checkable labellings (Naor–Stockmeyer;
    Section 3): solutions carried entirely by input labels, verified
    with zero proof bits. *)

val of_constraint :
  name:string -> radius:int -> check:(View.t -> bool) -> Scheme.t
(** Wrap a local constraint as an LCP(0) scheme (trivial prover). *)

val proper_colouring : Scheme.t
(** Node labels are colours; neighbours must differ. *)

val maximal_independent_set : Scheme.t
(** Label bit 1 marks the set; independence + domination checks. *)

val agreement : Scheme.t
(** All nodes carry the same label. Solvable with zero proof bits in
    this paper's LCP model but {e not} in the weaker proof labelling
    scheme model of Korman–Kutten–Peleg (Section 3.2) — see the
    model-separation tests. *)
