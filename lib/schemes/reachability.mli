(** Section 4.1: reachability and unreachability with O(1) bits.

    Instances carry the {!St} marks. The undirected reachability proof
    marks a chordless s–t path (1 bit); the unreachability proofs mark
    a closed side of a cut (1 bit). Directed reachability is {e open}
    in LCP(O(1)); {!directed_reach_pointer} is the O(log Δ) upper bound
    with mutual successor/predecessor pointers (one-sided pointers
    would be unsound — disjoint pointer cycles fool them). *)

val undirected_reach : Scheme.t
(** Θ(1): marks a shortest (hence chordless) s–t path. *)

val undirected_unreach : Scheme.t
(** Θ(1): marks the component of s; no edge may leave the marked set. *)

val directed_unreach : Scheme.t
(** Θ(1): marks the set of nodes reachable from s along arcs; no arc
    may leave it. Instances use the {!Instance.of_digraph} layout. *)

val directed_reach_pointer : Scheme.t
(** O(log Δ) bits, radius 2: each path node stores the rank of its
    successor among its out-neighbours and of its predecessor among its
    in-neighbours; mutual agreement makes the pointer relation a
    partial bijection whose s-component is a genuine directed path
    ending at t. *)
