(** The universal Θ(n)-bit scheme on trees (Section 6.2): every node of
    a tree G receives the balanced-parentheses structure code of G
    (2(n-1) bits) plus its own position in the canonical traversal
    (Θ(log n) bits).

    Each node checks that neighbours share the structure, that its
    neighbours' claimed positions are exactly (and distinctly) the
    neighbours of its own position in the decoded tree, and that the
    property holds of the decoded tree. Acceptance everywhere makes the
    position map a locally bijective homomorphism G → T; a connected
    cover of a tree is the tree itself, so G ≅ T.

    Instance property: fixpoint-free symmetry on trees, which Section
    6.2 proves needs Θ(n) bits. *)

let encode_node structure pos =
  let buf = Bits.Writer.create () in
  Bits.Writer.int_gamma buf (Bits.length structure);
  Bits.Writer.bits buf structure;
  Bits.Writer.int_gamma buf pos;
  Bits.Writer.contents buf

let decode_node b =
  let cur = Bits.Reader.of_bits b in
  let len = Bits.Reader.int_gamma cur in
  if len > Bits.Reader.remaining cur then
    raise (Bits.Reader.Decode_error "structure length overruns proof");
  let structure =
    Bits.of_bools (List.init len (fun _ -> Bits.Reader.bool cur))
  in
  let pos = Bits.Reader.int_gamma cur in
  Bits.Reader.expect_end cur;
  (structure, pos)

let scheme ~name (predicate : Tree_enum.rooted -> bool) =
  Scheme.make ~name ~radius:1
    ~size_bound:(fun n -> (2 * n) + (8 * Bits.int_width (max 2 n)) + 8)
    ~prover:(fun inst ->
      let g = Instance.graph inst in
      if not (Tree_enum.is_tree g) then None
      else begin
        let root = List.hd (Graph.nodes g) in
        let canonical = Tree_code.decode_structure (Tree_code.encode_structure g ~root) in
        if not (predicate canonical) then None
        else begin
          let structure = Tree_code.encode_structure g ~root in
          let order = Tree_code.traversal g ~root in
          Some
            (List.fold_left
               (fun (p, pos) v -> (Proof.set p v (encode_node structure pos), pos + 1))
               (Proof.empty, 0) order
            |> fst)
        end
      end)
    ~verifier:(fun view ->
      let v = View.centre view in
      let structure, pos = decode_node (View.proof_of view v) in
      let neighbours = View.neighbours view v in
      List.for_all
        (fun u -> Bits.equal (fst (decode_node (View.proof_of view u))) structure)
        neighbours
      &&
      let t = Tree_code.decode_structure structure in
      let tg = t.Tree_enum.tree in
      Graph.mem_node tg pos
      &&
      let claimed = List.map (fun u -> snd (decode_node (View.proof_of view u))) neighbours in
      let sorted = List.sort Int.compare claimed in
      (* sort_uniq = sort iff the claimed positions are distinct. *)
      List.sort_uniq Int.compare claimed = sorted
      && sorted = Graph.neighbours tg pos
      && predicate t)

let fixpoint_free_symmetry =
  scheme ~name:"tree-fixpoint-free-symmetry" (fun t ->
      Automorphism.has_fixpoint_free_symmetry t.Tree_enum.tree)

let fixpoint_free_is_yes inst =
  let g = Instance.graph inst in
  Tree_enum.is_tree g && Automorphism.has_fixpoint_free_symmetry g
