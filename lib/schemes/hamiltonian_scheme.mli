(** Θ(log n): Hamiltonian cycle verification (Section 5.1) — the
    flagged cycle minus one edge is a spanning path, certified as a
    rooted spanning tree whose every node has at most one child; the
    closing edge returns to the root. *)

val flagged : View.t -> Graph.node -> Graph.node -> bool
val scheme : Scheme.t
val is_yes : Instance.t -> bool
