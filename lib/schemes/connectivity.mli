(** Section 4.2: s–t vertex connectivity = k via Menger's theorem.

    The proof partitions V into S ∪ C ∪ T and labels k vertex-disjoint
    chordless s–t paths with a path index (O(log k) bits) and the
    distance from s mod 3. On planar graphs a 3-colouring of the
    path-adjacency conflict graph replaces the indices — O(1) bits.

    [k] is a global input ("given as input to all nodes"). *)

type region = S | C | T

type label = { region : region; path : (int * int) option }
(** [(index-or-colour, dist-from-s mod 3)] for path nodes. *)

val write_label : Bits.Writer.buf -> label -> unit
val read_label : Bits.Reader.cursor -> label

val globals_of_k : int -> Bits.t
val k_of_globals : View.t -> int

val instance : Graph.t -> s:Graph.node -> t:Graph.node -> k:int -> Instance.t
(** Terminal marks plus the global [k]. *)

val general : Scheme.t
(** O(log k) bits; exact per-index uniqueness checks at s and t. *)

val planar : Scheme.t
(** O(1) bits; the prover 3-colours the conflict graph of the Menger
    paths and fails (returns [None]) if 3 colours do not suffice —
    they always do on the planar benchmark instances, per the paper's
    observation. *)
