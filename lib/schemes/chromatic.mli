(** LCP(O(log k)): chromatic number ≤ k (Section 2.2) — the proof is a
    proper k-colouring in ⌈log k⌉ fixed-width bits per node; [k] is a
    global input. *)

val globals_of_k : int -> Bits.t
val k_of_globals : View.t -> int
val instance_with_k : Graph.t -> int -> Instance.t
val scheme : Scheme.t
val is_yes : int -> Instance.t -> bool
