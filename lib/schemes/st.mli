(** Conventions for the distinguished nodes s and t of the
    reachability/connectivity problems (Section 4): the input promise
    is that exactly one node carries each mark. Node label layout:
    bit 0 = "I am s", bit 1 = "I am t". *)

val s_label : Bits.t
val t_label : Bits.t

val mark : Instance.t -> s:Graph.node -> t:Graph.node -> Instance.t
(** Mark two distinct existing nodes. *)

val of_graph : Graph.t -> s:Graph.node -> t:Graph.node -> Instance.t
val of_digraph : Digraph.t -> s:Graph.node -> t:Graph.node -> Instance.t

val is_s_label : Bits.t -> bool
val is_t_label : Bits.t -> bool

val is_s : View.t -> Graph.node -> bool
(** Reads the mark of a node inside a view. *)

val is_t : View.t -> Graph.node -> bool

val find : Instance.t -> (Graph.node * Graph.node) option
(** [(s, t)] when the promise holds — exactly one node of each mark. *)
