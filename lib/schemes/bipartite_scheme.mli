(** LCP(1): bipartite graphs (Section 1.2). The proof is a proper
    2-colouring, one bit per node; neighbours must disagree. The
    flagship example of the paper's introduction — and the subject of
    the matching Ω(log n) lower bound for its complement (Section 5). *)

val scheme : Scheme.t
val is_yes : Instance.t -> bool
