(** Θ(log n): leader election (Section 5.1, Table 1(b)). The marked
    leader is certified unique by a spanning tree rooted at it: the
    tree certificate forces a unique, globally-agreed root, and the
    verifier insists that a node is marked leader iff it is that root.

    Both the {e strong} flavour (the leader mark is part of the input
    and may be any node) and the {e weak} flavour (the prover also
    picks the leader, which therefore travels in the proof rather than
    the input) are provided; the gluing lower bound applies to both
    (Section 7.2). *)

let leader_bit l = Bits.length l >= 1 && Bits.get l 0

let mark_leader inst v =
  Instance.with_node_labels inst
    (List.map
       (fun u -> (u, Bits.one_bit (u = v)))
       (Graph.nodes (Instance.graph inst)))

let tree_proof g root =
  List.fold_left
    (fun p (v, c) -> Proof.set p v (Tree_cert.encode c))
    Proof.empty (Tree_cert.prove g ~root)

let strong =
  Scheme.make ~name:"leader-election" ~radius:1 ~size_bound:Tree_cert.size_bound
    ~prover:(fun inst ->
      let g = Instance.graph inst in
      if not (Traversal.is_connected g) then None
      else
        match Instance.marked_exactly_one inst with
        | None -> None
        | Some leader -> Some (tree_proof g leader))
    ~verifier:(fun view ->
      let v = View.centre view in
      let cert_of u = Tree_cert.decode (View.proof_of view u) in
      Tree_cert.check_at view ~cert_of
      && Bool.equal
           (leader_bit (View.label_of view v))
           (Tree_cert.is_root (cert_of v)))

(* Weak flavour: proof = leader bit ++ tree certificate. *)
let weak_cert_of view u =
  let cur = Bits.Reader.of_bits (View.proof_of view u) in
  let is_leader = Bits.Reader.bool cur in
  let c = Tree_cert.read cur in
  Bits.Reader.expect_end cur;
  (is_leader, c)

let weak =
  Scheme.make ~name:"leader-election-weak" ~radius:1
    ~size_bound:(fun n -> Tree_cert.size_bound n + 1)
    ~prover:(fun inst ->
      let g = Instance.graph inst in
      if Graph.is_empty g || not (Traversal.is_connected g) then None
      else begin
        (* The prover picks a convenient leader: the smallest id. *)
        let leader = List.hd (Graph.nodes g) in
        Some
          (List.fold_left
             (fun p (v, c) ->
               let buf = Bits.Writer.create () in
               Bits.Writer.bool buf (v = leader);
               Tree_cert.write buf c;
               Proof.set p v (Bits.Writer.contents buf))
             Proof.empty
             (Tree_cert.prove g ~root:leader))
      end)
    ~verifier:(fun view ->
      let v = View.centre view in
      let cert_of u = snd (weak_cert_of view u) in
      Tree_cert.check_at view ~cert_of
      && Bool.equal (fst (weak_cert_of view v)) (Tree_cert.is_root (cert_of v)))
