(** Counting schemes (Section 5.1): a certified spanning tree carries
    subtree-size counters, so the root learns n(G) and checks any
    decidable predicate of it — Θ(log n) bits, tight by the gluing
    lower bound for non-trivial predicates such as parity. *)

type cert = { tree : Tree_cert.t; count : int }

val encode : cert -> Bits.t
val cert_of : View.t -> Graph.node -> cert

val scheme :
  name:string -> accept_n:(int -> bool) -> is_yes:(Instance.t -> bool) -> Scheme.t
(** Generic counting scheme on connected graphs. *)

val odd_n : Scheme.t
(** Table 1(a): odd n(G) — Θ(log n) on cycles. *)

val even_n : Scheme.t
val exact_n : int -> Scheme.t
(** [exact_n m]: every node becomes convinced that n(G) = m. *)

val even_cycle : Scheme.t
(** Table 1(a): even n(G) on the family of cycles is only Θ(1) — an
    alternating bit (even cycle ⟺ bipartite). *)
