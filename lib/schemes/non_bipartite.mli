(** Θ(log n): chromatic number > 2 on connected graphs (Section 5.1).
    The proof exhibits an odd cycle: a leader on the cycle (certified
    unique by a spanning tree) plus strictly increasing position
    counters along successor pointers; the closing position is even,
    so the certified closed walk is odd — impossible in a bipartite
    graph. Tight by the gluing lower bound. *)

type cert = { tree : Tree_cert.t; cycle : (int * Graph.node) option }

val encode : cert -> Bits.t
val cert_of : View.t -> Graph.node -> cert
val is_yes : Instance.t -> bool
val scheme : Scheme.t
