(** The universal O(n²)-bit scheme (Section 6): on connected graphs,
    {e any} computable pure graph property has a locally checkable
    proof that simply hands every node the full encoded graph. Each
    node checks that (i) its neighbours carry an identical encoding,
    (ii) the encoding is connected, (iii) its own identity and
    neighbourhood match the encoding, and (iv) the property holds of
    the decoded graph (unlimited local computation).

    Soundness: if all nodes accept, every node of G appears in the
    (shared, by connectivity of G) decoded graph H with exactly its
    real neighbourhood; as H is connected, induction along H's paths
    shows H = G, so the property genuinely holds of G.

    Section 6 instances: symmetric graphs (Θ(n²) — also the matching
    lower bound in [Lowerbounds]), and non-3-colourability
    (Ω(n²/log n) ≤ · ≤ O(n²)). *)

let scheme ~name (predicate : Graph.t -> bool) =
  Scheme.make ~name ~radius:1
    ~size_bound:(fun n ->
      (* n(n-1)/2 matrix bits + gamma-coded ids: ids ≤ poly(n). *)
      (n * (n - 1) / 2) + (6 * (n + 1) * Bits.int_width (max 2 n)) + 8)
    ~prover:(fun inst ->
      let g = Instance.graph inst in
      if (not (Traversal.is_connected g)) || Graph.is_empty g || not (predicate g)
      then None
      else begin
        let code = Graph_code.encode g in
        Some
          (Graph.fold_nodes (fun v p -> Proof.set p v code) g Proof.empty)
      end)
    ~verifier:(fun view ->
      let v = View.centre view in
      let mine = View.proof_of view v in
      List.for_all
        (fun u -> Bits.equal (View.proof_of view u) mine)
        (View.neighbours view v)
      &&
      let h = Graph_code.decode mine in
      Graph.mem_node h v
      && Traversal.is_connected h
      && Graph.neighbours h v = View.neighbours view v
      && predicate h)

(** Table 1(a): symmetric graphs — the hardest natural pure property,
    Θ(n²). *)
let symmetric = scheme ~name:"symmetric-graph" Automorphism.is_symmetric

let symmetric_is_yes inst =
  let g = Instance.graph inst in
  Traversal.is_connected g && Automorphism.is_symmetric g

(** Table 1(a): chromatic number > 3 — Ω(n²/log n) by the fooling-set
    argument, O(n²) by this scheme. *)
let non_3_colourable =
  scheme ~name:"chromatic-gt-3" (fun g -> not (Coloring.is_k_colourable g 3))

let non_3_colourable_is_yes inst =
  let g = Instance.graph inst in
  Traversal.is_connected g && not (Coloring.is_k_colourable g 3)

(** Any computable property, for the "computable properties / O(n²)"
    row. *)
let of_predicate = scheme
