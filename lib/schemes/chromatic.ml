(** LCP(O(log k)): chromatic number ≤ k (Section 2.2). The proof is a
    proper k-colouring, [⌈log k⌉] bits per node; [k] itself is global
    input shared by all nodes. *)

let globals_of_k k =
  let buf = Bits.Writer.create () in
  Bits.Writer.int_gamma buf k;
  Bits.Writer.contents buf

let k_of_globals view =
  let cur = Bits.Reader.of_bits (View.globals view) in
  let k = Bits.Reader.int_gamma cur in
  k

(** Attach the global [k] to an instance. *)
let instance_with_k g k = Instance.with_globals (Instance.of_graph g) (globals_of_k k)

let scheme =
  Scheme.make ~name:"chromatic-le-k" ~radius:1
    ~size_bound:(fun n -> (2 * Bits.int_width (max 1 n)) + 1)
    ~prover:(fun inst ->
      let cur = Bits.Reader.of_bits (Instance.globals inst) in
      let k = Bits.Reader.int_gamma cur in
      match Coloring.k_colouring (Instance.graph inst) k with
      | None -> None
      | Some colouring ->
          let width = Bits.int_width (max 1 (k - 1)) in
          Some
            (List.fold_left
               (fun p (v, c) ->
                 let buf = Bits.Writer.create () in
                 Bits.Writer.int_fixed buf ~width c;
                 Proof.set p v (Bits.Writer.contents buf))
               Proof.empty colouring))
    ~verifier:(fun view ->
      let k = k_of_globals view in
      let width = Bits.int_width (max 1 (k - 1)) in
      let colour_of u =
        let cur = Bits.Reader.of_bits (View.proof_of view u) in
        let c = Bits.Reader.int_fixed cur ~width in
        Bits.Reader.expect_end cur;
        c
      in
      let v = View.centre view in
      let mine = colour_of v in
      mine < k
      && List.for_all (fun u -> colour_of u <> mine) (View.neighbours view v))

let is_yes k inst = Coloring.is_k_colourable (Instance.graph inst) k
