(** Θ(log n): leader election (Section 5.1, Table 1(b)) — a spanning
    tree rooted at the leader certifies uniqueness. Both the strong
    flavour (adversary marks the leader) and the weak one (prover
    picks it, so the mark lives in the proof) are provided; the gluing
    lower bound applies to both (Section 7.2). *)

val leader_bit : Bits.t -> bool
val mark_leader : Instance.t -> Graph.node -> Instance.t
(** Mark one node as leader, all others as non-leaders. *)

val tree_proof : Graph.t -> Graph.node -> Proof.t
(** The rooted-spanning-tree certificate used by both flavours. *)

val strong : Scheme.t
val weak : Scheme.t
