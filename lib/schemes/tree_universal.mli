(** The universal Θ(n)-bit scheme on trees (Section 6.2): every node
    receives the balanced-parentheses structure code of the whole tree
    (2(n−1) bits) plus its own canonical traversal position. Local
    bijectivity of the position map makes it a covering G → T, and a
    connected cover of a tree is the tree. *)

val encode_node : Bits.t -> int -> Bits.t
(** [encode_node structure pos] — the per-node proof layout. *)

val decode_node : Bits.t -> Bits.t * int

val scheme : name:string -> (Tree_enum.rooted -> bool) -> Scheme.t
(** Universal scheme for any computable property of (canonically
    rooted) trees. *)

val fixpoint_free_symmetry : Scheme.t
(** Table 1(a): trees with a fixpoint-free automorphism — Θ(n), tight
    by Section 6.2. *)

val fixpoint_free_is_yes : Instance.t -> bool
