(* Codecs for the verification-service protocol. Two halves:

   - writers append fixed-width big-endian fields to a [Buffer] — the
     encoder can assume well-typed OCaml values and never fails;
   - readers walk a cursor over the received payload. Internally they
     raise a private [Fail] exception for brevity, but every public
     decoder catches it at the boundary and returns [Error reason]:
     no exception escapes towards the accept loop, whatever the bytes.

   Counts are validated against the number of bytes actually present
   before anything is allocated, so a tiny hostile frame cannot demand
   a gigabyte list.

   Version 2 prefixes every payload with a u64 correlation id (0 =
   unassigned; the server allocates one) echoed verbatim on the
   response; version 1 frames — no id, same body layout — are still
   accepted and answered in version 1, so old clients keep working
   against a v2 server.

   A v2 payload may additionally carry a trace context: bit 63 of the
   correlation-id word flags its presence, and 24 context bytes follow
   the id — trace id high half, trace id low half, parent span id,
   each a 63-bit non-negative int in a u64. Context-less v2 frames are
   byte-identical to the pre-context encoding, and peers built before
   this extension reject the flag bit with a typed Bad_request instead
   of crashing, so mixed fleets degrade to unsampled. *)

let protocol_version = 2
let min_protocol_version = 1
let header_bytes = 8
let id_bytes = 8
let max_payload = 16 * 1024 * 1024
let magic0 = 'L'
let magic1 = 'C'

type header = { version : int; tag : int; length : int }

(* Distributed-tracing context rides the v2 id prefix: a 126-bit trace
   id split across two 63-bit halves plus the sender's span id, which
   becomes the receiver's parent. All-zero means "unsampled" and is
   never encoded — senders pass [None] instead. *)
type trace_context = { trace_hi : int; trace_lo : int; parent_span : int }

(* A batch sub-operation names its graph by index into the batch's
   shared graph table, so a frame carrying 64 ops over 3 distinct
   graphs ships each graph6 payload exactly once. *)
type batch_op =
  | Op_prove of { scheme : string; graph : int }
  | Op_verify of { scheme : string; graph : int; proof : int }
  | Op_forge of { scheme : string; graph : int; max_bits : int }

type request =
  | Prove of { scheme : string; graph6 : string }
  | Verify of { scheme : string; graph6 : string; proof : Proof.t }
  | Forge of { scheme : string; graph6 : string; max_bits : int }
  | Batch of { graphs : string list; proofs : Proof.t list; ops : batch_op list }
  | Verify_partition of {
      scheme : string;
      graph6 : string;  (** Shard graph on local ids [0 .. ns-1]. *)
      ids : int array;  (** Local id → original id; strictly increasing. *)
      owned : Bits.t;  (** One bit per local id; 1 = owned, 0 = ghost. *)
      proof : Proof.t;  (** Keyed by local ids. *)
      radius : int;
      shard_index : int;
      shard_count : int;
    }
  | Verify_sampled of {
      scheme : string;
      graph6 : string;
      proof : Proof.t;
      seed : int;  (** PRG seed, 63-bit non-negative (carried as a u64). *)
      queries : int;  (** Per-node query bound, u16, ≥ 1. *)
      budget_id : string;
          (** The client's idea of the scheme's error budget
              ("eps0.02:q4:m24"); empty accepts the server's default,
              any other mismatch is a typed [Bad_request]. *)
    }
  | Stats
  | Catalog
  | Metrics_text
  | Health
  | Drain of { enable : bool }
  | Trace_export
  | Profile_export

type error_code =
  | Bad_frame
  | Unsupported_version
  | Unknown_scheme
  | Bad_graph
  | Bad_request
  | Overloaded
  | Deadline_exceeded
  | Internal
  | Unavailable

type catalog_entry = { name : string; radius : int; doc : string }

type server_stats = {
  requests : int;
  cache_hits : int;
  cache_misses : int;
  cache_entries : int;
  overloaded : int;
  deadline_exceeded : int;
  uptime_ms : int;
  metrics_json : string;
}

type health = { ready : bool; pending : int; max_queue : int; uptime_ms : int }

(* Each batch op gets its own reply slot: a success of the matching
   kind, or an error that poisons only that slot — one bad op never
   fails the frame. *)
type batch_item =
  | Item_proved of Proof.t option
  | Item_verified of { accepted : bool; rejecting : int list }
  | Item_forged of {
      fooled : Proof.t option;
      attempts : int;
      best_rejections : int;
    }
  | Item_error of { code : error_code; message : string }

type response =
  | Proved of Proof.t option
  | Verified of { accepted : bool; rejecting : int list }
  | Forged of { fooled : Proof.t option; attempts : int; best_rejections : int }
  | Partition_verified of {
      all_accept : bool;
      owned : int;  (** Owned nodes verified. *)
      rejected : int;  (** Owned nodes that rejected (full count). *)
      rejecting : int list;  (** First ≤64 rejecting original ids. *)
    }
  | Sampled_verified of {
      sampled_accept : bool;  (** The q-bounded probe run's verdict. *)
      escalated : bool;  (** Full verify ran; always [not sampled_accept]. *)
      accepted : bool;  (** Final verdict (sampled, or full if escalated). *)
      bits_read : int;  (** Proof/label bits the sampled run consumed. *)
      nodes : int;  (** Nodes the sampled run probed. *)
      rejecting : int list;  (** First ≤64 rejecting nodes; [] if accepted. *)
    }
  | Batch_reply of batch_item list
  | Stats_reply of server_stats
  | Catalog_reply of catalog_entry list
  | Metrics_text_reply of string
  | Health_reply of health
  | Drain_reply of { draining : bool; pending : int }
  | Trace_export_reply of string
  | Profile_export_reply of string
  | Error_reply of { code : error_code; message : string }

let error_code_to_int = function
  | Bad_frame -> 1
  | Unsupported_version -> 2
  | Unknown_scheme -> 3
  | Bad_graph -> 4
  | Bad_request -> 5
  | Overloaded -> 6
  | Deadline_exceeded -> 7
  | Internal -> 8
  | Unavailable -> 9

let error_code_of_int = function
  | 1 -> Some Bad_frame
  | 2 -> Some Unsupported_version
  | 3 -> Some Unknown_scheme
  | 4 -> Some Bad_graph
  | 5 -> Some Bad_request
  | 6 -> Some Overloaded
  | 7 -> Some Deadline_exceeded
  | 8 -> Some Internal
  | 9 -> Some Unavailable
  | _ -> None

let error_code_to_string = function
  | Bad_frame -> "bad-frame"
  | Unsupported_version -> "unsupported-version"
  | Unknown_scheme -> "unknown-scheme"
  | Bad_graph -> "bad-graph"
  | Bad_request -> "bad-request"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline-exceeded"
  | Internal -> "internal"
  | Unavailable -> "unavailable"

let request_tag = function
  | Prove _ -> 0x01
  | Verify _ -> 0x02
  | Forge _ -> 0x03
  | Stats -> 0x04
  | Catalog -> 0x05
  | Metrics_text -> 0x06
  | Health -> 0x07
  | Drain _ -> 0x08
  | Batch _ -> 0x09
  | Trace_export -> 0x0A
  | Verify_partition _ -> 0x0B
  | Profile_export -> 0x0C
  | Verify_sampled _ -> 0x0D

let response_tag = function
  | Proved _ -> 0x81
  | Verified _ -> 0x82
  | Forged _ -> 0x83
  | Stats_reply _ -> 0x84
  | Catalog_reply _ -> 0x85
  | Metrics_text_reply _ -> 0x86
  | Health_reply _ -> 0x87
  | Drain_reply _ -> 0x88
  | Batch_reply _ -> 0x89
  | Trace_export_reply _ -> 0x8A
  | Partition_verified _ -> 0x8B
  | Profile_export_reply _ -> 0x8C
  | Sampled_verified _ -> 0x8D
  | Error_reply _ -> 0xE0

(* --- writers ---------------------------------------------------------- *)

let w_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let w_u16 b v =
  w_u8 b (v lsr 8);
  w_u8 b v

let w_u32 b v =
  w_u8 b (v lsr 24);
  w_u8 b (v lsr 16);
  w_u8 b (v lsr 8);
  w_u8 b v

let w_string b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

(* Correlation ids are 63-bit non-negative ints carried as a u64; the
   encoder owns the range check so hostile values cannot be ours. Bit
   63 of the word is the trace-context flag, never part of the id. *)
let trace_flag_bit = 0x8000_0000

let w_id ?(flag = false) b id =
  w_u32 b ((id lsr 32) lor (if flag then trace_flag_bit else 0));
  w_u32 b id

let w_trace b { trace_hi; trace_lo; parent_span } =
  w_id b trace_hi;
  w_id b trace_lo;
  w_id b parent_span

let w_bits b bits =
  let len = Bits.length bits in
  w_u32 b len;
  let byte = ref 0 in
  for i = 0 to len - 1 do
    if Bits.get bits i then byte := !byte lor (0x80 lsr (i mod 8));
    if i mod 8 = 7 then begin
      w_u8 b !byte;
      byte := 0
    end
  done;
  if len mod 8 <> 0 then w_u8 b !byte

let w_proof b proof =
  let entries = Proof.bindings proof in
  w_u32 b (List.length entries);
  List.iter
    (fun (v, bits) ->
      w_u32 b v;
      w_bits b bits)
    entries

let w_int_list b l =
  w_u32 b (List.length l);
  List.iter (w_u32 b) l

(* Batch sub-ops carry a u8 kind, the scheme, and u16 indices into the
   frame's shared graph and proof tables; only the kind-specific tail
   differs. Hoisting both payloads into tables is what makes a frame
   of repeated ops cheap: 64 verifies of one (graph, proof) pair carry
   the bytes once and 64 eleven-byte ops. *)
let w_batch_op b = function
  | Op_prove { scheme; graph } ->
      w_u8 b 1;
      w_string b scheme;
      w_u16 b graph
  | Op_verify { scheme; graph; proof } ->
      w_u8 b 2;
      w_string b scheme;
      w_u16 b graph;
      w_u16 b proof
  | Op_forge { scheme; graph; max_bits } ->
      w_u8 b 3;
      w_string b scheme;
      w_u16 b graph;
      w_u16 b max_bits

(* --- readers ---------------------------------------------------------- *)

exception Fail of string

let fail fmt = Printf.ksprintf (fun m -> raise (Fail m)) fmt

type cursor = { s : string; mutable pos : int }

let remaining c = String.length c.s - c.pos

let r_u8 c =
  if remaining c < 1 then fail "truncated payload (wanted 1 byte)";
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let r_u16 c =
  let hi = r_u8 c in
  (hi lsl 8) lor r_u8 c

let r_u32 c =
  let v = ref 0 in
  for _ = 1 to 4 do
    v := (!v lsl 8) lor r_u8 c
  done;
  !v

let r_bool c =
  match r_u8 c with
  | 0 -> false
  | 1 -> true
  | v -> fail "invalid boolean byte %d" v

let r_id ?(what = "request id") c =
  if remaining c < id_bytes then
    fail "truncated %s (wanted %d bytes, got %d)" what id_bytes (remaining c);
  let hi = r_u32 c in
  let lo = r_u32 c in
  if hi land trace_flag_bit <> 0 then fail "%s out of the 63-bit range" what;
  (hi lsl 32) lor lo

(* The id word, plus the 24-byte trace context when the flag bit is
   set. Every failure mode of the context — truncation, a sign bit in
   any field — lands in [Fail] and therefore in [Error], never in an
   exception at the accept loop. *)
let r_id_trace c =
  if remaining c < id_bytes then
    fail "truncated request id (wanted %d bytes, got %d)" id_bytes (remaining c);
  let hi = r_u32 c in
  let lo = r_u32 c in
  let flagged = hi land trace_flag_bit <> 0 in
  let id = ((hi land lnot trace_flag_bit) lsl 32) lor lo in
  if not flagged then (id, None)
  else
    let trace_hi = r_id ~what:"trace id (high half)" c in
    let trace_lo = r_id ~what:"trace id (low half)" c in
    let parent_span = r_id ~what:"parent span id" c in
    (id, Some { trace_hi; trace_lo; parent_span })

let r_string c =
  let len = r_u32 c in
  if len > remaining c then
    fail "string length %d exceeds the %d bytes present" len (remaining c);
  let s = String.sub c.s c.pos len in
  c.pos <- c.pos + len;
  s

let r_bits c =
  let len = r_u32 c in
  let bytes = (len + 7) / 8 in
  if bytes > remaining c then
    fail "bit-string length %d exceeds the %d bytes present" len (remaining c);
  let base = c.pos in
  c.pos <- c.pos + bytes;
  Bits.of_bools
    (List.init len (fun i ->
         Char.code c.s.[base + (i / 8)] land (0x80 lsr (i mod 8)) <> 0))

(* [r_list c ~min_entry_bytes f]: a u32 count whose minimum encoded
   size is checked against the bytes actually left, then that many
   elements. *)
let r_list c ~min_entry_bytes f =
  let count = r_u32 c in
  if count * min_entry_bytes > remaining c then
    fail "list count %d exceeds the %d bytes present" count (remaining c);
  List.init count (fun _ -> f c)

let r_proof c =
  Proof.of_list
    (r_list c ~min_entry_bytes:8 (fun c ->
         let v = r_u32 c in
         (v, r_bits c)))

(* Same bound as [r_list] but with a u16 count — batch tables cap at
   65535 entries by construction. *)
let r_list16 c ~min_entry_bytes f =
  let count = r_u16 c in
  if count * min_entry_bytes > remaining c then
    fail "list count %d exceeds the %d bytes present" count (remaining c);
  List.init count (fun _ -> f c)

let r_batch_op c ~n_graphs ~n_proofs =
  let kind = r_u8 c in
  let scheme = r_string c in
  let graph = r_u16 c in
  if graph >= n_graphs then
    fail "batch op references graph %d but the frame carries %d" graph n_graphs;
  match kind with
  | 1 -> Op_prove { scheme; graph }
  | 2 ->
      let proof = r_u16 c in
      if proof >= n_proofs then
        fail "batch op references proof %d but the frame carries %d" proof
          n_proofs;
      Op_verify { scheme; graph; proof }
  | 3 -> Op_forge { scheme; graph; max_bits = r_u16 c }
  | k -> fail "unknown batch op kind %d" k

let expect_end c =
  if remaining c > 0 then fail "%d trailing bytes after the payload" (remaining c)

let decoding payload f =
  let c = { s = payload; pos = 0 } in
  match
    let v = f c in
    expect_end c;
    v
  with
  | v -> Ok v
  | exception Fail m -> Error m

(* --- frames ----------------------------------------------------------- *)

let frame ~version tag payload =
  let b = Buffer.create (header_bytes + String.length payload) in
  Buffer.add_char b magic0;
  Buffer.add_char b magic1;
  w_u8 b version;
  w_u8 b tag;
  w_u32 b (String.length payload);
  Buffer.add_string b payload;
  Buffer.contents b

let check_version version =
  if version < min_protocol_version || version > protocol_version then
    invalid_arg (Printf.sprintf "Wire: cannot encode protocol version %d" version)

let check_id id =
  if id < 0 then invalid_arg "Wire: request ids are non-negative"

let check_trace { trace_hi; trace_lo; parent_span } =
  if trace_hi < 0 || trace_lo < 0 || parent_span < 0 then
    invalid_arg "Wire: trace context fields are non-negative"

(* A v2 payload is the u64 correlation id followed by the v1 body; a
   v1 payload is the bare body. A trace context, when present and the
   version can carry one, is flagged in the id word and inserted
   between the id and the body; v1 frames silently drop it (a v1 peer
   could not parse it anyway — the hop degrades to unsampled). *)
let frame_with_id ~version ~id ?trace tag body =
  check_version version;
  check_id id;
  Option.iter check_trace trace;
  if version = 1 then frame ~version tag body
  else begin
    let b = Buffer.create (id_bytes + String.length body) in
    (match trace with
    | None -> w_id b id
    | Some t ->
        w_id ~flag:true b id;
        w_trace b t);
    Buffer.add_string b body;
    frame ~version tag (Buffer.contents b)
  end

(* Header failures split in two: [Bad_header] means the framing itself
   cannot be trusted (wrong magic, unknown version, truncation) and the
   connection must drop; [Oversized] means the frame is well-formed but
   its payload exceeds the cap — the length field is trustworthy, so a
   peer can drain exactly that many bytes, answer with a typed error,
   and keep the connection. Partition shards are the first frames big
   enough to trip the cap in normal operation. *)
type header_error =
  | Bad_header of string
  | Oversized of { version : int; tag : int; length : int }

let decode_header_err s =
  if String.length s < header_bytes then
    Error
      (Bad_header
         (Printf.sprintf "frame header needs %d bytes, got %d" header_bytes
            (String.length s)))
  else if s.[0] <> magic0 || s.[1] <> magic1 then
    Error (Bad_header "bad magic bytes")
  else if
    Char.code s.[2] < min_protocol_version
    || Char.code s.[2] > protocol_version
  then
    Error
      (Bad_header
         (Printf.sprintf "unsupported protocol version %d" (Char.code s.[2])))
  else
    let length =
      (Char.code s.[4] lsl 24)
      lor (Char.code s.[5] lsl 16)
      lor (Char.code s.[6] lsl 8)
      lor Char.code s.[7]
    in
    if length > max_payload then
      Error
        (Oversized { version = Char.code s.[2]; tag = Char.code s.[3]; length })
    else Ok { version = Char.code s.[2]; tag = Char.code s.[3]; length }

let header_error_to_string = function
  | Bad_header m -> m
  | Oversized { length; _ } ->
      Printf.sprintf "payload length %d exceeds the %d cap" length max_payload

let decode_header s =
  Result.map_error header_error_to_string (decode_header_err s)

(* --- requests --------------------------------------------------------- *)

let request_body req =
  let b = Buffer.create 64 in
  (match req with
  | Prove { scheme; graph6 } ->
      w_string b scheme;
      w_string b graph6
  | Verify { scheme; graph6; proof } ->
      w_string b scheme;
      w_string b graph6;
      w_proof b proof
  | Forge { scheme; graph6; max_bits } ->
      w_string b scheme;
      w_string b graph6;
      w_u16 b max_bits
  | Batch { graphs; proofs; ops } ->
      w_u16 b (List.length graphs);
      List.iter (w_string b) graphs;
      w_u16 b (List.length proofs);
      List.iter (w_proof b) proofs;
      w_u16 b (List.length ops);
      List.iter (w_batch_op b) ops
  | Verify_partition
      { scheme; graph6; ids; owned; proof; radius; shard_index; shard_count } ->
      w_string b scheme;
      w_string b graph6;
      w_u32 b (Array.length ids);
      Array.iter (w_u32 b) ids;
      w_bits b owned;
      w_proof b proof;
      w_u16 b radius;
      w_u16 b shard_index;
      w_u16 b shard_count
  | Verify_sampled { scheme; graph6; proof; seed; queries; budget_id } ->
      if seed < 0 then invalid_arg "Wire: sampled seeds are non-negative";
      if queries < 1 || queries > 0xffff then
        invalid_arg "Wire: sampled query bound out of the u16 range";
      w_string b scheme;
      w_string b graph6;
      w_proof b proof;
      w_id b seed;
      w_u16 b queries;
      w_string b budget_id
  | Drain { enable } -> w_u8 b (if enable then 1 else 0)
  | Stats | Catalog | Metrics_text | Health | Trace_export | Profile_export
    ->
      ());
  Buffer.contents b

let encode_request ?(version = protocol_version) ?(id = 0) ?trace req =
  frame_with_id ~version ~id ?trace (request_tag req) (request_body req)

let decode_request_payload ?(version = protocol_version) ~tag payload =
  decoding payload @@ fun c ->
  let id, trace = if version >= 2 then r_id_trace c else (0, None) in
  let req =
    match tag with
    | 0x01 ->
        let scheme = r_string c in
        Prove { scheme; graph6 = r_string c }
    | 0x02 ->
        let scheme = r_string c in
        let graph6 = r_string c in
        Verify { scheme; graph6; proof = r_proof c }
    | 0x03 ->
        let scheme = r_string c in
        let graph6 = r_string c in
        Forge { scheme; graph6; max_bits = r_u16 c }
    | 0x04 -> Stats
    | 0x05 -> Catalog
    | 0x06 -> Metrics_text
    | 0x07 -> Health
    | 0x08 -> Drain { enable = r_bool c }
    | 0x09 ->
        let graphs = r_list16 c ~min_entry_bytes:4 r_string in
        let n_graphs = List.length graphs in
        let proofs = r_list16 c ~min_entry_bytes:4 r_proof in
        let n_proofs = List.length proofs in
        let ops =
          r_list16 c ~min_entry_bytes:7 (r_batch_op ~n_graphs ~n_proofs)
        in
        Batch { graphs; proofs; ops }
    | 0x0A -> Trace_export
    | 0x0C -> Profile_export
    | 0x0B ->
        if version < 2 then
          fail "Verify_partition requires protocol version 2";
        let scheme = r_string c in
        let graph6 = r_string c in
        let ids = Array.of_list (r_list c ~min_entry_bytes:4 r_u32) in
        Array.iteri
          (fun i v ->
            if i > 0 && v <= ids.(i - 1) then
              fail "shard id table not strictly increasing at entry %d" i)
          ids;
        let owned = r_bits c in
        if Bits.length owned <> Array.length ids then
          fail "owned bitmap carries %d bits for %d shard nodes"
            (Bits.length owned) (Array.length ids);
        let proof = r_proof c in
        let radius = r_u16 c in
        let shard_index = r_u16 c in
        let shard_count = r_u16 c in
        if shard_count < 1 then fail "shard count must be positive";
        if shard_index >= shard_count then
          fail "shard index %d out of range for %d shards" shard_index
            shard_count;
        Verify_partition
          { scheme; graph6; ids; owned; proof; radius; shard_index; shard_count }
    | 0x0D ->
        if version < 2 then fail "Verify_sampled requires protocol version 2";
        let scheme = r_string c in
        let graph6 = r_string c in
        let proof = r_proof c in
        let seed = r_id ~what:"sampled seed" c in
        let queries = r_u16 c in
        if queries < 1 then fail "sampled query bound must be positive";
        Verify_sampled { scheme; graph6; proof; seed; queries; budget_id = r_string c }
    | t -> fail "unknown request tag 0x%02x" t
  in
  (id, trace, req)

(* --- responses -------------------------------------------------------- *)

(* A reply slot leads with a status byte: 0 = per-op error (code +
   message follow), 1..3 = success of the prove/verify/forge kind with
   the same body layout as the corresponding plain response. *)
let w_batch_item b = function
  | Item_error { code; message } ->
      w_u8 b 0;
      w_u8 b (error_code_to_int code);
      w_string b message
  | Item_proved None ->
      w_u8 b 1;
      w_u8 b 0
  | Item_proved (Some proof) ->
      w_u8 b 1;
      w_u8 b 1;
      w_proof b proof
  | Item_verified { accepted; rejecting } ->
      w_u8 b 2;
      w_u8 b (if accepted then 1 else 0);
      w_int_list b rejecting
  | Item_forged { fooled; attempts; best_rejections } ->
      w_u8 b 3;
      (match fooled with
      | None -> w_u8 b 0
      | Some proof ->
          w_u8 b 1;
          w_proof b proof);
      w_u32 b attempts;
      w_u32 b best_rejections

let r_batch_item c =
  match r_u8 c with
  | 0 ->
      let code_byte = r_u8 c in
      let code =
        match error_code_of_int code_byte with
        | Some code -> code
        | None -> fail "unknown error code %d in batch item" code_byte
      in
      Item_error { code; message = r_string c }
  | 1 -> Item_proved (if r_bool c then Some (r_proof c) else None)
  | 2 ->
      let accepted = r_bool c in
      Item_verified { accepted; rejecting = r_list c ~min_entry_bytes:4 r_u32 }
  | 3 ->
      let fooled = if r_bool c then Some (r_proof c) else None in
      let attempts = r_u32 c in
      Item_forged { fooled; attempts; best_rejections = r_u32 c }
  | s -> fail "unknown batch item status %d" s

let response_body resp =
  let b = Buffer.create 64 in
  (match resp with
  | Proved None -> w_u8 b 0
  | Proved (Some proof) ->
      w_u8 b 1;
      w_proof b proof
  | Verified { accepted; rejecting } ->
      w_u8 b (if accepted then 1 else 0);
      w_int_list b rejecting
  | Forged { fooled; attempts; best_rejections } ->
      (match fooled with
      | None -> w_u8 b 0
      | Some proof ->
          w_u8 b 1;
          w_proof b proof);
      w_u32 b attempts;
      w_u32 b best_rejections
  | Batch_reply items ->
      w_u16 b (List.length items);
      List.iter (w_batch_item b) items
  | Stats_reply st ->
      w_u32 b st.requests;
      w_u32 b st.cache_hits;
      w_u32 b st.cache_misses;
      w_u32 b st.cache_entries;
      w_u32 b st.overloaded;
      w_u32 b st.deadline_exceeded;
      w_u32 b st.uptime_ms;
      w_string b st.metrics_json
  | Catalog_reply entries ->
      w_u32 b (List.length entries);
      List.iter
        (fun e ->
          w_string b e.name;
          w_u16 b e.radius;
          w_string b e.doc)
        entries
  | Partition_verified { all_accept; owned; rejected; rejecting } ->
      w_u8 b (if all_accept then 1 else 0);
      w_u32 b owned;
      w_u32 b rejected;
      w_int_list b rejecting
  | Sampled_verified { sampled_accept; escalated; accepted; bits_read; nodes; rejecting }
    ->
      w_u8 b (if sampled_accept then 1 else 0);
      w_u8 b (if escalated then 1 else 0);
      w_u8 b (if accepted then 1 else 0);
      w_u32 b bits_read;
      w_u32 b nodes;
      w_int_list b rejecting
  | Metrics_text_reply text -> w_string b text
  | Health_reply { ready; pending; max_queue; uptime_ms } ->
      w_u8 b (if ready then 1 else 0);
      w_u32 b pending;
      w_u32 b max_queue;
      w_u32 b uptime_ms
  | Drain_reply { draining; pending } ->
      w_u8 b (if draining then 1 else 0);
      w_u32 b pending
  | Trace_export_reply json -> w_string b json
  | Profile_export_reply json -> w_string b json
  | Error_reply { code; message } ->
      w_u8 b (error_code_to_int code);
      w_string b message);
  Buffer.contents b

let encode_response ?(version = protocol_version) ?(id = 0) ?trace resp =
  frame_with_id ~version ~id ?trace (response_tag resp) (response_body resp)

let decode_response_payload ?(version = protocol_version) ~tag payload =
  decoding payload @@ fun c ->
  let id, trace = if version >= 2 then r_id_trace c else (0, None) in
  let resp =
    match tag with
    | 0x81 -> Proved (if r_bool c then Some (r_proof c) else None)
    | 0x82 ->
        let accepted = r_bool c in
        Verified { accepted; rejecting = r_list c ~min_entry_bytes:4 r_u32 }
    | 0x83 ->
        let fooled = if r_bool c then Some (r_proof c) else None in
        let attempts = r_u32 c in
        Forged { fooled; attempts; best_rejections = r_u32 c }
    | 0x84 ->
        let requests = r_u32 c in
        let cache_hits = r_u32 c in
        let cache_misses = r_u32 c in
        let cache_entries = r_u32 c in
        let overloaded = r_u32 c in
        let deadline_exceeded = r_u32 c in
        let uptime_ms = r_u32 c in
        Stats_reply
          {
            requests;
            cache_hits;
            cache_misses;
            cache_entries;
            overloaded;
            deadline_exceeded;
            uptime_ms;
            metrics_json = r_string c;
          }
    | 0x85 ->
        Catalog_reply
          (r_list c ~min_entry_bytes:10 (fun c ->
               let name = r_string c in
               let radius = r_u16 c in
               { name; radius; doc = r_string c }))
    | 0x86 -> Metrics_text_reply (r_string c)
    | 0x87 ->
        let ready = r_bool c in
        let pending = r_u32 c in
        let max_queue = r_u32 c in
        Health_reply { ready; pending; max_queue; uptime_ms = r_u32 c }
    | 0x88 ->
        let draining = r_bool c in
        Drain_reply { draining; pending = r_u32 c }
    | 0x89 -> Batch_reply (r_list16 c ~min_entry_bytes:2 r_batch_item)
    | 0x8A -> Trace_export_reply (r_string c)
    | 0x8C -> Profile_export_reply (r_string c)
    | 0x8B ->
        let all_accept = r_bool c in
        let owned = r_u32 c in
        let rejected = r_u32 c in
        let rejecting = r_list c ~min_entry_bytes:4 r_u32 in
        if all_accept <> (rejected = 0) then
          fail "all-accept flag disagrees with %d rejections" rejected;
        if rejected > owned then
          fail "%d rejections among %d owned nodes" rejected owned;
        if List.length rejecting > 64 then
          fail "rejecting sample carries %d ids (cap 64)"
            (List.length rejecting);
        if List.length rejecting > rejected then
          fail "rejecting sample larger than the rejection count";
        Partition_verified { all_accept; owned; rejected; rejecting }
    | 0x8D ->
        let sampled_accept = r_bool c in
        let escalated = r_bool c in
        let accepted = r_bool c in
        let bits_read = r_u32 c in
        let nodes = r_u32 c in
        let rejecting = r_list c ~min_entry_bytes:4 r_u32 in
        if escalated = sampled_accept then
          fail "escalation flag disagrees with the sampled verdict";
        if sampled_accept && not accepted then
          fail "sampled accept downgraded without escalation";
        if accepted && rejecting <> [] then
          fail "accepted verdict carries %d rejecting nodes"
            (List.length rejecting);
        if List.length rejecting > 64 then
          fail "rejecting sample carries %d ids (cap 64)"
            (List.length rejecting);
        Sampled_verified
          { sampled_accept; escalated; accepted; bits_read; nodes; rejecting }
    | 0xE0 ->
        let code_byte = r_u8 c in
        let code =
          match error_code_of_int code_byte with
          | Some code -> code
          | None -> fail "unknown error code %d" code_byte
        in
        Error_reply { code; message = r_string c }
    | t -> fail "unknown response tag 0x%02x" t
  in
  (id, trace, resp)

(* --- whole-frame convenience ------------------------------------------ *)

let split_frame decode_payload s =
  match decode_header s with
  | Error _ as e -> e
  | Ok { version; tag; length } ->
      if String.length s <> header_bytes + length then
        Error
          (Printf.sprintf "frame announces %d payload bytes but carries %d"
             length
             (String.length s - header_bytes))
      else decode_payload ~version ~tag (String.sub s header_bytes length)

let decode_request s =
  split_frame (fun ~version ~tag p -> decode_request_payload ~version ~tag p) s

let decode_response s =
  split_frame (fun ~version ~tag p -> decode_response_payload ~version ~tag p) s

(* --- equality (round-trip tests) -------------------------------------- *)

let equal_batch_op a b =
  match (a, b) with
  | Op_prove a, Op_prove b -> a.scheme = b.scheme && a.graph = b.graph
  | Op_verify a, Op_verify b ->
      a.scheme = b.scheme && a.graph = b.graph && a.proof = b.proof
  | Op_forge a, Op_forge b ->
      a.scheme = b.scheme && a.graph = b.graph && a.max_bits = b.max_bits
  | _ -> false

let equal_request a b =
  match (a, b) with
  | Prove a, Prove b -> a.scheme = b.scheme && a.graph6 = b.graph6
  | Verify a, Verify b ->
      a.scheme = b.scheme && a.graph6 = b.graph6 && Proof.equal a.proof b.proof
  | Forge a, Forge b ->
      a.scheme = b.scheme && a.graph6 = b.graph6 && a.max_bits = b.max_bits
  | Batch a, Batch b ->
      a.graphs = b.graphs
      && List.length a.proofs = List.length b.proofs
      && List.for_all2 Proof.equal a.proofs b.proofs
      && List.length a.ops = List.length b.ops
      && List.for_all2 equal_batch_op a.ops b.ops
  | Verify_partition a, Verify_partition b ->
      a.scheme = b.scheme && a.graph6 = b.graph6 && a.ids = b.ids
      && Bits.equal a.owned b.owned
      && Proof.equal a.proof b.proof
      && a.radius = b.radius
      && a.shard_index = b.shard_index
      && a.shard_count = b.shard_count
  | Verify_sampled a, Verify_sampled b ->
      a.scheme = b.scheme && a.graph6 = b.graph6
      && Proof.equal a.proof b.proof
      && a.seed = b.seed && a.queries = b.queries
      && a.budget_id = b.budget_id
  | Stats, Stats | Catalog, Catalog -> true
  | Metrics_text, Metrics_text | Health, Health -> true
  | Trace_export, Trace_export -> true
  | Profile_export, Profile_export -> true
  | Drain a, Drain b -> a.enable = b.enable
  | _ -> false

let equal_trace_context (a : trace_context) (b : trace_context) = a = b

let equal_proof_opt a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> Proof.equal a b
  | _ -> false

let equal_batch_item a b =
  match (a, b) with
  | Item_proved a, Item_proved b -> equal_proof_opt a b
  | Item_verified a, Item_verified b ->
      a.accepted = b.accepted && a.rejecting = b.rejecting
  | Item_forged a, Item_forged b ->
      equal_proof_opt a.fooled b.fooled
      && a.attempts = b.attempts
      && a.best_rejections = b.best_rejections
  | Item_error a, Item_error b -> a.code = b.code && a.message = b.message
  | _ -> false

let equal_response a b =
  match (a, b) with
  | Proved a, Proved b -> equal_proof_opt a b
  | Verified a, Verified b ->
      a.accepted = b.accepted && a.rejecting = b.rejecting
  | Forged a, Forged b ->
      equal_proof_opt a.fooled b.fooled
      && a.attempts = b.attempts
      && a.best_rejections = b.best_rejections
  | Partition_verified a, Partition_verified b ->
      a.all_accept = b.all_accept && a.owned = b.owned
      && a.rejected = b.rejected
      && a.rejecting = b.rejecting
  | Sampled_verified a, Sampled_verified b ->
      a.sampled_accept = b.sampled_accept
      && a.escalated = b.escalated && a.accepted = b.accepted
      && a.bits_read = b.bits_read && a.nodes = b.nodes
      && a.rejecting = b.rejecting
  | Batch_reply a, Batch_reply b ->
      List.length a = List.length b && List.for_all2 equal_batch_item a b
  | Stats_reply a, Stats_reply b -> a = b
  | Catalog_reply a, Catalog_reply b -> a = b
  | Metrics_text_reply a, Metrics_text_reply b -> a = b
  | Health_reply a, Health_reply b -> a = b
  | Drain_reply a, Drain_reply b ->
      a.draining = b.draining && a.pending = b.pending
  | Trace_export_reply a, Trace_export_reply b -> a = b
  | Profile_export_reply a, Profile_export_reply b -> a = b
  | Error_reply a, Error_reply b -> a.code = b.code && a.message = b.message
  | _ -> false
