(** The lcp verification-service wire protocol, versions 1 and 2.

    Length-prefixed binary frames over a byte stream:

    {v
      +-------+---------+---------+--------------------+---------....
      | 'L'   | 'C'     | version | tag                | length (u32,
      | magic byte 0    | (1 or 2)| message type       |  big-endian)
      +-------+---------+---------+--------------------+---------....
      then exactly [length] payload bytes.
    v}

    The 8-byte header is fixed for every version, so a reader can
    always frame a message before interpreting it. Payload fields are
    fixed-width big-endian integers and length-prefixed byte strings;
    graphs travel as graph6 text ({!Graph6}), proofs as per-node bit
    strings packed 8 bits per byte.

    {b Version 2} (the current default) prefixes every payload with a
    u64 {e correlation id}: a client may pick its own (any 63-bit
    non-negative value; 0 means "unassigned" and the server allocates
    one), and the server echoes the request's id on its response, so
    one request can be followed across the connection thread, the pool
    domain, the structured log and the trace. Version 1 frames — the
    same body layout, no id — are still accepted and answered in
    version 1.

    A v2 payload may additionally carry a {e trace context} for
    distributed tracing: bit 63 of the correlation-id word (otherwise
    always zero — ids are 63-bit) flags its presence, and 24 bytes
    follow the id word: the 126-bit trace id as two u64 halves, then
    the sender's span id (the receiver's parent). Context-less v2
    frames are byte-for-byte identical to the pre-context encoding,
    and a peer built before this extension rejects the flag bit as an
    out-of-range id — a typed [Bad_request], never a crash — so mixed
    fleets degrade to unsampled tracing.

    Everything that parses bytes from the peer is {e total}: malformed
    input — bad magic, unknown version or tag, oversized length,
    truncated or trailing bytes (including a truncated or
    out-of-range request id), counts that do not fit the payload —
    yields an [Error] carrying a human-readable reason, never an
    exception. This module is the trust boundary; {!Server} and
    {!Client} only ever feed it untrusted bytes. *)

val protocol_version : int
(** The newest (and default) version: 2. *)

val min_protocol_version : int
(** The oldest version still accepted: 1. *)

val header_bytes : int
(** Size of the fixed frame header: 8. *)

val id_bytes : int
(** Size of the v2 correlation-id payload prefix: 8. *)

val max_payload : int
(** Upper bound on a frame payload (16 MiB); a header announcing more
    is rejected before any payload is read. *)

type header = { version : int; tag : int; length : int }

type trace_context = { trace_hi : int; trace_lo : int; parent_span : int }
(** Distributed-tracing context carried on the v2 id prefix: the
    126-bit trace id split across two 63-bit halves, plus the sending
    span's id, which the receiver uses as the parent of its own
    request span. All-zero means "unsampled"; senders encode [None]
    instead. *)

val decode_header : string -> (header, string) result
(** Parse the first {!header_bytes} bytes of a frame. Checks magic,
    version (within [min_protocol_version ..  protocol_version]) and
    the {!max_payload} bound; the tag is {e not} checked here (the
    payload decoders own that), so a framing layer can skip messages
    it does not understand. *)

(** Typed form of a header failure. [Bad_header] means the framing is
    untrustworthy (bad magic, unknown version, truncation) and the
    connection must be dropped; [Oversized] means the frame is
    well-formed but announces a payload over {!max_payload} — the
    length is trustworthy, so the peer can drain exactly [length]
    bytes, answer a typed error naming the offending size, and keep
    the connection. *)
type header_error =
  | Bad_header of string
  | Oversized of { version : int; tag : int; length : int }

val decode_header_err : string -> (header, header_error) result
(** {!decode_header} with the typed error — what the server and router
    accept loops use to survive oversized shards. *)

val header_error_to_string : header_error -> string

(** {1 Messages} *)

(** One operation inside a {!request.Batch} frame. [graph] and
    [proof] index into the batch's shared graph and proof tables — a
    frame carrying many ops over few distinct payloads ships each
    graph6 string and each proof exactly once, and the ops themselves
    are a few bytes each. The decoder rejects out-of-range indices,
    so a well-formed batch never dangles. *)
type batch_op =
  | Op_prove of { scheme : string; graph : int }
  | Op_verify of { scheme : string; graph : int; proof : int }
  | Op_forge of { scheme : string; graph : int; max_bits : int }

type request =
  | Prove of { scheme : string; graph6 : string }
  | Verify of { scheme : string; graph6 : string; proof : Proof.t }
  | Forge of { scheme : string; graph6 : string; max_bits : int }
  | Batch of { graphs : string list; proofs : Proof.t list; ops : batch_op list }
      (** Up to 65535 sub-ops behind one header and one round trip.
          The reply is a {!response.Batch_reply} with one
          {!batch_item} per op, in op order; a bad op yields an
          [Item_error] in its slot without failing the frame. *)
  | Verify_partition of {
      scheme : string;
      graph6 : string;
      ids : int array;
      owned : Bits.t;
      proof : Proof.t;
      radius : int;
      shard_index : int;
      shard_count : int;
    }
      (** One shard of a partitioned verification (v2-only; a v1 frame
          with this tag is rejected as [Bad_request]). [graph6] is the
          shard subgraph on local ids [0 .. ns-1]; [ids] maps local ids
          back to original identifiers (strictly increasing — the
          decoder enforces it); [owned] carries one bit per local id
          (1 = this shard owns the node, 0 = radius-[radius] ghost);
          [proof] is the whole-graph proof restricted to the shard and
          rekeyed to local ids. The backend verifies {e owned} nodes
          only and answers {!response.Partition_verified} in original
          numbering. *)
  | Verify_sampled of {
      scheme : string;
      graph6 : string;
      proof : Proof.t;
      seed : int;
      queries : int;
      budget_id : string;
    }
      (** Error-budgeted sampled verification (v2-only; a v1 frame with
          this tag is rejected as [Bad_request], exactly like
          {!request.Verify_partition}). The server runs the scheme's
          sampled verifier over a [seed]-chosen probe set, each probed
          node reading at most [queries] proof/label cells
          ([queries] is a u16 the decoder requires ≥ 1; [seed] is a
          63-bit non-negative value carried as a u64 — a set sign bit
          is a typed decode error). [budget_id] pins the client's idea
          of the scheme's error budget (e.g. ["eps0.02:q4:m24"]);
          empty defers to the server's default, any other mismatch is
          answered [Bad_request] rather than silently verified under
          a different ε. A sampled rejection escalates to a full
          verify on the server, so the final verdict never has false
          {e rejects}; the reply says whether escalation happened. *)
  | Stats
  | Catalog
  | Metrics_text
      (** The telemetry exposition in Prometheus text format v0.0.4 —
          same bytes the HTTP sidecar serves on [/metrics]. *)
  | Health  (** Readiness probe: pool saturation, uptime. *)
  | Drain of { enable : bool }
      (** Backend-admin frame: [enable = true] flips the daemon into
          draining mode — it keeps answering every request but reports
          [ready = false] on {!Health}, so a routing frontend stops
          sending it new work and it can be taken down without
          dropping anything in flight. [enable = false] reinstates
          it. *)
  | Trace_export
      (** Fetch the process's trace ring as Chrome trace-event JSON —
          the same bytes a [--trace-dir] spool file holds, served over
          the wire so a merger can collect live processes without
          filesystem access. *)
  | Profile_export
      (** Fetch the process's continuous profile (attribution tree,
          GC telemetry, per-scheme cost accounts) as one JSON object
          — the {!Obs.Profile.export_string} body. Answered inline by
          daemon and router, even when profiling is off (zero-sample
          document), so a fetcher never needs to know the flag. *)

type error_code =
  | Bad_frame  (** Unparseable frame: the connection is out of sync. *)
  | Unsupported_version
  | Unknown_scheme
  | Bad_graph  (** graph6 payload rejected by {!Graph6.decode_res}. *)
  | Bad_request  (** Frame ok, payload malformed for its tag. *)
  | Overloaded  (** Shed by backpressure (queue full); retry later. *)
  | Deadline_exceeded
  | Internal
  | Unavailable
      (** The worker pool is shutting down — unlike {!Overloaded} the
          condition will not clear, so retry {e elsewhere}, not
          later. *)

type catalog_entry = { name : string; radius : int; doc : string }

type server_stats = {
  requests : int;
  cache_hits : int;
  cache_misses : int;
  cache_entries : int;
  overloaded : int;
  deadline_exceeded : int;
  uptime_ms : int;
  metrics_json : string;
      (** {!Obs.Metrics.to_json} when the server runs with metrics on,
          ["{}"] otherwise. *)
}

type health = { ready : bool; pending : int; max_queue : int; uptime_ms : int }
(** [ready] is false when the pool backlog has reached [max_queue]
    (the next compute request would be shed), the server is stopping,
    or the server is draining (see {!request.Drain}); [pending] is the
    live queued + running task count. *)

(** One reply slot of a {!response.Batch_reply}, positionally matching
    the request's op list. On the wire each slot leads with a status
    byte (0 = error, else the op kind), so a reader can tally
    failures without decoding payloads. *)
type batch_item =
  | Item_proved of Proof.t option
  | Item_verified of { accepted : bool; rejecting : int list }
  | Item_forged of {
      fooled : Proof.t option;
      attempts : int;
      best_rejections : int;
    }
  | Item_error of { code : error_code; message : string }

type response =
  | Proved of Proof.t option
      (** [None]: the prover recognised a no-instance. *)
  | Verified of { accepted : bool; rejecting : int list }
  | Forged of { fooled : Proof.t option; attempts : int; best_rejections : int }
  | Partition_verified of {
      all_accept : bool;
      owned : int;
      rejected : int;
      rejecting : int list;
    }
      (** Verdict summary for one shard's owned nodes: [owned] nodes
          verified, [rejected] of them rejecting, and the first ≤64
          rejecting node ids in {e original} numbering. The decoder
          enforces [all_accept = (rejected = 0)], [rejected <= owned],
          and the 64-entry sample cap. *)
  | Sampled_verified of {
      sampled_accept : bool;
      escalated : bool;
      accepted : bool;
      bits_read : int;
      nodes : int;
      rejecting : int list;
    }
      (** Outcome of a {!request.Verify_sampled}: the probe run's own
          verdict, whether the server escalated to a full verify
          (exactly when the probe run rejected), the final verdict,
          the proof/label bits the sampled run consumed, the number of
          nodes probed, and — when the final verdict rejects — the
          first ≤64 rejecting nodes. The decoder enforces
          [escalated = not sampled_accept], [sampled_accept ⇒
          accepted] (escalation can only {e overturn} rejections) and
          an empty [rejecting] list on acceptance. *)
  | Batch_reply of batch_item list
  | Stats_reply of server_stats
  | Catalog_reply of catalog_entry list
  | Metrics_text_reply of string
  | Health_reply of health
  | Drain_reply of { draining : bool; pending : int }
      (** Acknowledges a {!Drain} toggle: the mode now in force and
          how many tasks are still queued or running. *)
  | Trace_export_reply of string
      (** The trace ring rendered as Chrome trace-event JSON. *)
  | Profile_export_reply of string
      (** The continuous profile as JSON: sample counts, collapsed
          stacks, an embedded speedscope document, GC stats and the
          per-scheme cost table. *)
  | Error_reply of { code : error_code; message : string }

val error_code_to_string : error_code -> string

(** {1 Codecs}

    Encoders take the protocol [version] to emit (default
    {!protocol_version}) and, for v2, the correlation [id] (default 0
    = unassigned) plus an optional [trace] context. Encoding raises
    [Invalid_argument] on a version outside the supported range, a
    negative id, or a negative trace field — those are caller bugs,
    not wire input; a [trace] passed with [version = 1] is silently
    dropped (the hop degrades to unsampled). Decoders return the id
    and the trace context alongside the message; v1 frames always
    decode with id 0 and no context. *)

val encode_request :
  ?version:int -> ?id:int -> ?trace:trace_context -> request -> string
(** A complete frame: header plus payload. *)

val encode_response :
  ?version:int -> ?id:int -> ?trace:trace_context -> response -> string

val request_tag : request -> int
val response_tag : response -> int

val decode_request_payload :
  ?version:int ->
  tag:int ->
  string ->
  (int * trace_context option * request, string) result
(** Decode the payload of a frame whose header carried [tag] and
    [version]. Total; rejects unknown tags, truncated fields
    (including a short or out-of-range v2 request id and a truncated
    or out-of-range trace context) and trailing bytes. *)

val decode_response_payload :
  ?version:int ->
  tag:int ->
  string ->
  (int * trace_context option * response, string) result

val decode_request : string -> (int * trace_context option * request, string) result
(** Decode one complete frame (header and payload, nothing after). *)

val decode_response :
  string -> (int * trace_context option * response, string) result

val equal_request : request -> request -> bool
(** Structural equality (proofs via [Proof.equal]); the round-trip
    property tests pin [decode (encode m) = m] with these. *)

val equal_response : response -> response -> bool
val equal_trace_context : trace_context -> trace_context -> bool
