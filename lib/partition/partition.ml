type shard = {
  index : int;
  count : int;
  radius : int;
  graph : Graph.t;
  ids : int array;
  owned : bool array;
}

let shard_n s = Array.length s.ids

let owned_count s =
  Array.fold_left (fun acc o -> if o then acc + 1 else acc) 0 s.owned

let owned_nodes s =
  let out = ref [] in
  for i = Array.length s.ids - 1 downto 0 do
    if s.owned.(i) then out := s.ids.(i) :: !out
  done;
  Array.of_list !out

(* --- region growth ---------------------------------------------------- *)

(* Assign every dense index an owner in [0 .. k-1]: k seeds spread
   over the dense order, then round-robin BFS growth — each region in
   turn claims one unclaimed frontier neighbour, stopping at a ⌈n/k⌉
   cap so regions stay balanced even when seeds land in very different
   neighbourhoods. A per-node adjacency cursor makes the whole growth
   O(n + m): a claimed target is skipped exactly once. Components no
   frontier reaches seed the smallest under-cap region. *)
let partition_owners csr ~k =
  let n = Csr.n csr in
  let adj =
    Array.init n (fun i ->
        let l = ref [] in
        Csr.iter_neighbours csr i (fun u -> l := u :: !l);
        Array.of_list (List.rev !l))
  in
  let owner = Array.make n (-1) in
  let cap = (n + k - 1) / k in
  let sizes = Array.make k 0 in
  let queues = Array.init k (fun _ -> Queue.create ()) in
  let cursor = Array.make n 0 in
  let assigned = ref 0 in
  let claim p v =
    owner.(v) <- p;
    sizes.(p) <- sizes.(p) + 1;
    incr assigned;
    Queue.push v queues.(p)
  in
  for p = 0 to k - 1 do
    (* seeds at p*n/k are pairwise distinct for k <= n *)
    claim p (p * n / k)
  done;
  (* One claim per region per turn. [step p] pops exhausted frontier
     nodes until it can claim a neighbour, or the frontier runs dry. *)
  let rec step p =
    if Queue.is_empty queues.(p) then false
    else begin
      let v = Queue.peek queues.(p) in
      let row = adj.(v) in
      let len = Array.length row in
      let rec scan () =
        if cursor.(v) >= len then begin
          ignore (Queue.pop queues.(p));
          step p
        end
        else begin
          let u = row.(cursor.(v)) in
          cursor.(v) <- cursor.(v) + 1;
          if owner.(u) >= 0 then scan ()
          else begin
            claim p u;
            true
          end
        end
      in
      scan ()
    end
  in
  let next_unclaimed = ref 0 in
  while !assigned < n do
    let progress = ref false in
    for p = 0 to k - 1 do
      if sizes.(p) < cap && step p then progress := true
    done;
    if (not !progress) && !assigned < n then begin
      (* disconnected leftovers: seed the smallest under-cap region *)
      while owner.(!next_unclaimed) >= 0 do
        incr next_unclaimed
      done;
      let best = ref (-1) in
      for p = 0 to k - 1 do
        if sizes.(p) < cap && (!best < 0 || sizes.(p) < sizes.(!best)) then
          best := p
      done;
      claim !best !next_unclaimed
    end
  done;
  owner

(* --- halos and shard assembly ----------------------------------------- *)

(* Multi-source BFS from a shard's owned set, truncated at [radius]:
   a node is within distance r of some owned node iff it lies in some
   owned node's r-ball, so the reached set is exactly owned ∪ ghost. *)
let members_of csr owner ~p ~radius =
  let n = Csr.n csr in
  let dist = Array.make n (-1) in
  let q = Queue.create () in
  let touched = ref [] in
  for v = 0 to n - 1 do
    if owner.(v) = p then begin
      dist.(v) <- 0;
      touched := v :: !touched;
      Queue.push v q
    end
  done;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    let d = dist.(v) in
    if d < radius then
      Csr.iter_neighbours csr v (fun u ->
          if dist.(u) < 0 then begin
            dist.(u) <- d + 1;
            touched := u :: !touched;
            Queue.push u q
          end)
  done;
  Array.of_list !touched

let local_graph sub =
  let ns = Csr.n sub in
  let g = ref Graph.empty in
  for i = 0 to ns - 1 do
    g := Graph.add_node !g i
  done;
  for i = 0 to ns - 1 do
    Csr.iter_neighbours sub i (fun j -> if i < j then g := Graph.add_edge !g i j)
  done;
  !g

let make csr ~k ~radius =
  if radius < 0 then invalid_arg "Partition.make: negative radius";
  let n = Csr.n csr in
  let k = max 1 (min k (max 1 n)) in
  if n = 0 then
    [|
      {
        index = 0;
        count = 1;
        radius;
        graph = Graph.empty;
        ids = [||];
        owned = [||];
      };
    |]
  else begin
    let owner = partition_owners csr ~k in
    Array.init k (fun p ->
        let members = members_of csr owner ~p ~radius in
        let sub, old_of_new = Csr.extract_subgraph csr members in
        let ns = Csr.n sub in
        let ids = Array.init ns (fun i -> Csr.node sub i) in
        let owned = Array.map (fun old -> owner.(old) = p) old_of_new in
        { index = p; count = k; radius; graph = local_graph sub; ids; owned })
  end

let closure_ok csr s =
  match Csr.n csr with
  | 0 -> shard_n s = 0
  | _ ->
      let scratch = Csr.scratch csr in
      let in_shard = Hashtbl.create (2 * shard_n s) in
      Array.iter (fun v -> Hashtbl.replace in_shard v ()) s.ids;
      let ok = ref true in
      Array.iteri
        (fun i own ->
          if !ok && own then begin
            match Csr.index_opt csr s.ids.(i) with
            | None -> ok := false
            | Some centre ->
                let count = Csr.ball csr scratch ~centre ~radius:s.radius in
                for j = 0 to count - 1 do
                  let v = Csr.node csr (Csr.visited scratch j) in
                  if not (Hashtbl.mem in_shard v) then ok := false
                done
          end)
        s.owned;
      !ok

let check csr shards =
  let e fmt = Printf.ksprintf Result.error fmt in
  let k = Array.length shards in
  if k = 0 then e "no shards"
  else begin
    let n = Csr.n csr in
    let owner_seen = Hashtbl.create (2 * n) in
    let err = ref (Ok ()) in
    Array.iteri
      (fun p s ->
        if !err = Ok () && s.count <> k then
          err := e "shard %d claims count %d, have %d shards" p s.count k;
        if !err = Ok () && s.index <> p then
          err := e "shard at position %d claims index %d" p s.index;
        if !err = Ok () && s.radius <> shards.(0).radius then
          err := e "shard %d radius %d differs from shard 0" p s.radius;
        Array.iteri
          (fun i own ->
            if !err = Ok () && own then begin
              let v = s.ids.(i) in
              match Hashtbl.find_opt owner_seen v with
              | Some q -> err := e "node %d owned by shards %d and %d" v q p
              | None -> Hashtbl.replace owner_seen v p
            end)
          s.owned;
        if !err = Ok () && not (closure_ok csr s) then
          err := e "shard %d ghost closure is not exact" p)
      shards;
    match !err with
    | Error _ as x -> x
    | Ok () ->
        if Hashtbl.length owner_seen <> n then
          e "%d of %d nodes owned" (Hashtbl.length owner_seen) n
        else Ok ()
  end

let proof_slice s proof =
  let acc = ref Proof.empty in
  Array.iteri
    (fun i v ->
      let bits = Proof.get proof v in
      if Bits.length bits > 0 then acc := Proof.set !acc i bits)
    s.ids;
  !acc

let merge_rejecting s rejecting =
  let ns = shard_n s in
  List.map
    (fun i ->
      if i < 0 || i >= ns then
        invalid_arg
          (Printf.sprintf "Partition.merge_rejecting: local id %d out of range" i)
      else s.ids.(i))
    rejecting
  |> List.sort_uniq Int.compare

(* --- shard files ------------------------------------------------------- *)

let to_string s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "lcp-shard 1\n";
  Buffer.add_string buf (Printf.sprintf "shard %d/%d\n" s.index s.count);
  Buffer.add_string buf (Printf.sprintf "radius %d\n" s.radius);
  Buffer.add_string buf (Printf.sprintf "nodes %d\n" (shard_n s));
  Buffer.add_string buf "ids";
  Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf " %d" v)) s.ids;
  Buffer.add_char buf '\n';
  Buffer.add_string buf "owned ";
  Array.iter (fun o -> Buffer.add_char buf (if o then '1' else '0')) s.owned;
  Buffer.add_char buf '\n';
  Buffer.add_string buf "graph6 ";
  Buffer.add_string buf (Graph6.encode s.graph);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let of_string text =
  let e fmt = Printf.ksprintf Result.error fmt in
  let ( let* ) = Result.bind in
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
  in
  let field name = function
    | line :: rest ->
        let prefix = name ^ " " in
        let pl = String.length prefix in
        if String.length line >= pl && String.sub line 0 pl = prefix then
          Ok (String.sub line pl (String.length line - pl), rest)
        else e "expected %S line, got %S" name line
    | [] -> e "truncated shard file: missing %S" name
  in
  let int_of s =
    match int_of_string_opt (String.trim s) with
    | Some v -> Ok v
    | None -> e "bad integer %S" s
  in
  match lines with
  | magic :: rest when magic = "lcp-shard 1" ->
      let* pos, rest = field "shard" rest in
      let* index, count =
        match String.index_opt pos '/' with
        | Some i ->
            let* a = int_of (String.sub pos 0 i) in
            let* b =
              int_of (String.sub pos (i + 1) (String.length pos - i - 1))
            in
            Ok (a, b)
        | None -> e "bad shard position %S" pos
      in
      let* radius_s, rest = field "radius" rest in
      let* radius = int_of radius_s in
      let* nodes_s, rest = field "nodes" rest in
      let* ns = int_of nodes_s in
      let* ids_s, rest = field "ids" rest in
      let* ids =
        let parts =
          String.split_on_char ' ' ids_s |> List.filter (fun s -> s <> "")
        in
        let rec go acc = function
          | [] -> Ok (Array.of_list (List.rev acc))
          | p :: tl ->
              let* v = int_of p in
              go (v :: acc) tl
        in
        go [] parts
      in
      let* owned_s, rest = field "owned" rest in
      let* g6, rest = field "graph6" rest in
      let* () = match rest with [] -> Ok () | l :: _ -> e "trailing line %S" l in
      if count < 1 || index < 0 || index >= count then
        e "shard position %d/%d out of range" index count
      else if radius < 0 then e "negative radius"
      else if Array.length ids <> ns then
        e "ids count %d, want %d" (Array.length ids) ns
      else if String.length owned_s <> ns then
        e "owned bitmap length %d, want %d" (String.length owned_s) ns
      else begin
        let mono = ref true in
        Array.iteri
          (fun i v ->
            if v < 0 || (i > 0 && v <= ids.(i - 1)) then mono := false)
          ids;
        if not !mono then e "ids not strictly increasing"
        else begin
          let owned = Array.make ns false in
          let bad = ref None in
          String.iteri
            (fun i c ->
              match c with
              | '1' -> owned.(i) <- true
              | '0' -> ()
              | c -> if !bad = None then bad := Some c)
            owned_s;
          match !bad with
          | Some c -> e "bad owned bit %C" c
          | None ->
              let* graph = Graph6.decode_res g6 in
              if Graph.n graph <> ns then
                e "graph has %d nodes, header says %d" (Graph.n graph) ns
              else Ok { index; count; radius; graph; ids; owned }
        end
      end
  | l :: _ -> e "bad magic %S" l
  | [] -> e "empty shard file"
