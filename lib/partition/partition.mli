(** Graph partitioning for cluster-parallel verification.

    LCP verification is node-local: a radius-r verifier's verdict at
    [v] depends only on the r-ball around [v] (PAPER.md §2.1). So a
    graph can be carved into [k] {e shards} — disjoint owned-node sets
    plus a radius-r {e ghost halo} (every node within distance r of an
    owned node that is not itself owned) — and each shard verified by
    an independent backend. The induced subgraph on owned ∪ ghost
    contains every owned node's full r-ball, and shortest paths inside
    an r-ball never leave it, so the per-owned-node views (and hence
    verdicts) are bit-identical to a whole-graph run. Merging the
    owned verdicts of all shards reproduces {!Simulator.run_verifier}
    exactly; the test suite pins this property.

    Shards are wire-ready: the shard graph is relabelled to local ids
    [0 .. ns-1] (so {!Graph6.encode} accepts it) and the [ids] table
    maps local ids back to original identifiers. *)

type shard = {
  index : int;  (** Shard number, [0 .. count-1]. *)
  count : int;  (** Total shards in this partitioning. *)
  radius : int;  (** Halo radius the shard was cut for. *)
  graph : Graph.t;
      (** Induced subgraph on owned ∪ ghost, relabelled to local ids
          [0 .. ns-1] in increasing original-identifier order. *)
  ids : int array;
      (** Local id → original identifier; strictly increasing. *)
  owned : bool array;
      (** Local id → does this shard own the node (vs. ghost)? *)
}

val shard_n : shard -> int
(** Nodes in the shard (owned + ghost). *)

val owned_count : shard -> int

val owned_nodes : shard -> int array
(** Original identifiers of the owned nodes, increasing. *)

val make : Csr.t -> k:int -> radius:int -> shard array
(** Partition a compiled graph into [k] balanced shards by
    round-robin multi-source BFS region growth (k spread seeds, each
    region claiming one frontier node per turn under a ⌈n/k⌉ cap;
    leftover components seed the smallest region), then grow each
    shard's radius-[radius] ghost halo by multi-source BFS from its
    owned set. Every node is owned by exactly one shard. [k] is
    clamped to [1 .. max 1 n]; [radius < 0] raises
    [Invalid_argument]. *)

val closure_ok : Csr.t -> shard -> bool
(** Ghost-closure exactness: every owned node's radius-[radius] ball
    in the {e original} graph is contained in the shard's node set.
    [make] guarantees this by construction; the property test and
    [lcp partition] re-check it independently via {!Csr.ball}. *)

val check : Csr.t -> shard array -> (unit, string) result
(** Full partitioning validation: shards agree on [count]/[radius],
    every original node is owned by exactly one shard, and every shard
    passes {!closure_ok}. *)

val proof_slice : shard -> Proof.t -> Proof.t
(** Restrict a whole-graph proof (original identifiers) to the shard
    and rekey it to local ids — what rides the wire next to the shard
    graph. Ghost nodes keep their proof bits: owned views reach into
    the halo. *)

val merge_rejecting : shard -> int list -> int list
(** Map a backend's rejecting {e local} ids back to original
    identifiers (sorted). Out-of-range local ids raise
    [Invalid_argument]. *)

(** {1 Shard files}

    [lcp partition] writes one small text file per shard; the format
    round-trips through {!to_string}/{!of_string} and is validated on
    parse like every wire decoder. *)

val to_string : shard -> string

val of_string : string -> (shard, string) result
(** Total: malformed input yields [Error], never an exception. All
    structural invariants (ids strictly increasing, array lengths
    matching the graph, index/count/radius ranges) are re-checked. *)
