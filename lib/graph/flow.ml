module IntSet = Set.Make (Int)

(* Arc-indexed residual representation: arcs stored in pairs, arc i and
   its reverse i lxor 1. *)
type flow_network = {
  node_ids : int array;
  index_of : (int, int) Hashtbl.t;
  heads : int array;        (* arc -> head node index *)
  caps : int array;         (* arc -> residual capacity (mutable via array) *)
  out_arcs : int list array; (* node index -> arc ids *)
  orig_cap : int array;
}

let network ~nodes ~arcs =
  let node_ids = Array.of_list (List.sort_uniq Int.compare nodes) in
  let index_of = Hashtbl.create 64 in
  Array.iteri (fun i v -> Hashtbl.replace index_of v i) node_ids;
  let n = Array.length node_ids in
  let pairs = Hashtbl.create 64 in
  List.iter
    (fun (u, v, c) ->
      if c < 0 then invalid_arg "Flow.network: negative capacity";
      if not (Hashtbl.mem index_of u && Hashtbl.mem index_of v) then
        invalid_arg "Flow.network: arc endpoint not in node list";
      let key = (u, v) in
      Hashtbl.replace pairs key (c + Option.value ~default:0 (Hashtbl.find_opt pairs key)))
    arcs;
  let arc_list = Hashtbl.fold (fun (u, v) c acc -> (u, v, c) :: acc) pairs [] in
  let arc_list = List.sort compare arc_list in
  let na = 2 * List.length arc_list in
  let heads = Array.make na 0 in
  let caps = Array.make na 0 in
  let out_arcs = Array.make n [] in
  List.iteri
    (fun i (u, v, c) ->
      let ui = Hashtbl.find index_of u and vi = Hashtbl.find index_of v in
      let a = 2 * i in
      heads.(a) <- vi;
      caps.(a) <- c;
      heads.(a + 1) <- ui;
      caps.(a + 1) <- 0;
      out_arcs.(ui) <- a :: out_arcs.(ui);
      out_arcs.(vi) <- (a + 1) :: out_arcs.(vi))
    arc_list;
  { node_ids; index_of; heads; caps; out_arcs; orig_cap = Array.copy caps }

let reset net = Array.blit net.orig_cap 0 net.caps 0 (Array.length net.caps)

let bfs_augment net s t =
  let n = Array.length net.node_ids in
  let via = Array.make n (-1) in
  via.(s) <- -2;
  let q = Queue.create () in
  Queue.push s q;
  let found = ref false in
  while (not !found) && not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun a ->
        let v = net.heads.(a) in
        if net.caps.(a) > 0 && via.(v) = -1 then begin
          via.(v) <- a;
          if v = t then found := true else Queue.push v q
        end)
      net.out_arcs.(u)
  done;
  if not !found then 0
  else begin
    (* Bottleneck. *)
    let rec bottleneck v acc =
      if v = s then acc
      else
        let a = via.(v) in
        bottleneck net.heads.(a lxor 1) (min acc net.caps.(a))
    in
    let b = bottleneck t max_int in
    let rec push v =
      if v <> s then begin
        let a = via.(v) in
        net.caps.(a) <- net.caps.(a) - b;
        net.caps.(a lxor 1) <- net.caps.(a lxor 1) + b;
        push net.heads.(a lxor 1)
      end
    in
    push t;
    b
  end

let run_max_flow net ~source ~sink =
  reset net;
  let s =
    match Hashtbl.find_opt net.index_of source with
    | Some i -> i
    | None -> invalid_arg "Flow.max_flow: unknown source"
  in
  let t =
    match Hashtbl.find_opt net.index_of sink with
    | Some i -> i
    | None -> invalid_arg "Flow.max_flow: unknown sink"
  in
  if s = t then invalid_arg "Flow.max_flow: source = sink";
  let total = ref 0 in
  let continue = ref true in
  while !continue do
    let pushed = bfs_augment net s t in
    if pushed = 0 then continue := false else total := !total + pushed
  done;
  !total

let flows net =
  let res = ref [] in
  Array.iteri
    (fun a cap ->
      if a mod 2 = 0 then begin
        let f = net.orig_cap.(a) - cap in
        if f > 0 then
          let u = net.node_ids.(net.heads.(a lxor 1)) in
          let v = net.node_ids.(net.heads.(a)) in
          res := ((u, v), f) :: !res
      end)
    net.caps;
  List.sort compare !res

let max_flow net ~source ~sink =
  let v = run_max_flow net ~source ~sink in
  (v, flows net)

let min_cut_side net ~source ~sink =
  ignore (run_max_flow net ~source ~sink);
  let s = Hashtbl.find net.index_of source in
  let seen = Array.make (Array.length net.node_ids) false in
  seen.(s) <- true;
  let q = Queue.create () in
  Queue.push s q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun a ->
        let v = net.heads.(a) in
        if net.caps.(a) > 0 && not seen.(v) then begin
          seen.(v) <- true;
          Queue.push v q
        end)
      net.out_arcs.(u)
  done;
  let res = ref [] in
  Array.iteri (fun i b -> if b then res := net.node_ids.(i) :: !res) seen;
  List.sort Int.compare !res

(* --- Menger machinery on the node-split graph. ---

   Nodes of g map to v_in = 2v, v_out = 2v+1; s and t are not split
   (their in and out coincide as 2s+1 / 2t respectively). Split arcs
   v_in -> v_out have capacity 1, adjacency arcs have "infinite"
   capacity so minimum cuts consist of split arcs only. *)

let split_network g ~s ~t =
  if s = t then invalid_arg "Flow: s = t";
  if not (Graph.mem_node g s && Graph.mem_node g t) then
    invalid_arg "Flow: unknown terminal";
  if Graph.mem_edge g s t then
    invalid_arg "Flow: s and t must not be adjacent (Menger precondition)";
  let inf = Graph.n g + 1 in
  let v_in v = 2 * v and v_out v = 2 * v + 1 in
  let nodes =
    List.concat_map (fun v -> [ v_in v; v_out v ]) (Graph.nodes g)
  in
  let split_arcs =
    Graph.fold_nodes
      (fun v acc -> if v = s || v = t then acc else (v_in v, v_out v, 1) :: acc)
      g []
  in
  let adj_arcs =
    Graph.fold_edges
      (fun u v acc -> (v_out u, v_in v, inf) :: (v_out v, v_in u, inf) :: acc)
      g []
  in
  (* For the unsplit terminals, connect their in to out with infinite
     capacity so both directions work uniformly. *)
  let terminal_arcs = [ (v_in s, v_out s, inf); (v_in t, v_out t, inf) ] in
  (network ~nodes ~arcs:(split_arcs @ adj_arcs @ terminal_arcs), v_out s, v_in t)

let decompose_paths g ~s ~t flow_arcs =
  (* Follow unit flow from s: each unit leaves via some v_out u -> v_in w
     adjacency arc. Build successor multiset keyed by original node. *)
  let succ = Hashtbl.create 64 in
  List.iter
    (fun ((a, b), f) ->
      (* Adjacency arcs go from odd (out) to even (in) ids of different
         nodes. *)
      if a mod 2 = 1 && b mod 2 = 0 && a / 2 <> b / 2 then
        for _ = 1 to f do
          Hashtbl.add succ (a / 2) (b / 2)
        done)
    flow_arcs;
  let rec walk acc v =
    if v = t then List.rev (t :: acc)
    else begin
      let w = Hashtbl.find succ v in
      Hashtbl.remove succ v;
      walk (v :: acc) w
    end
  in
  let rec collect acc =
    if Hashtbl.mem succ s then collect (walk [] s :: acc) else List.rev acc
  in
  ignore g;
  collect []

(* Remove chords: if two non-consecutive path nodes are adjacent in g,
   shortcut. Keeps paths internally disjoint (only removes nodes) and
   preserves the single separator crossing (an S–T edge cannot exist). *)
let rec shortcut g path =
  let arr = Array.of_list path in
  let n = Array.length arr in
  let exception Found of int * int in
  try
    for i = 0 to n - 3 do
      for j = i + 2 to n - 1 do
        if not (i = 0 && j = n - 1) && Graph.mem_edge g arr.(i) arr.(j) then
          raise (Found (i, j))
      done
    done;
    path
  with Found (i, j) ->
    let prefix = Array.to_list (Array.sub arr 0 (i + 1)) in
    let suffix = Array.to_list (Array.sub arr j (n - j)) in
    shortcut g (prefix @ suffix)

let vertex_disjoint_paths g ~s ~t =
  let net, src, snk = split_network g ~s ~t in
  let _, fl = max_flow net ~source:src ~sink:snk in
  let paths = decompose_paths g ~s:s ~t:t fl in
  List.map (shortcut g) paths

let vertex_connectivity g ~s ~t =
  let net, src, snk = split_network g ~s ~t in
  run_max_flow net ~source:src ~sink:snk

let vertex_separator g ~s ~t =
  let net, src, snk = split_network g ~s ~t in
  let side = IntSet.of_list (min_cut_side net ~source:src ~sink:snk) in
  (* Cut arcs are split arcs v_in -> v_out with v_in inside, v_out
     outside. *)
  Graph.fold_nodes
    (fun v acc ->
      if v <> s && v <> t && IntSet.mem (2 * v) side && not (IntSet.mem ((2 * v) + 1) side)
      then v :: acc
      else acc)
    g []
  |> List.sort Int.compare

let menger_certificate g ~s ~t =
  let k = vertex_connectivity g ~s ~t in
  if k = 0 then None
  else begin
    let paths = vertex_disjoint_paths g ~s ~t in
    let sep = vertex_separator g ~s ~t in
    assert (List.length paths = k);
    assert (List.length sep = k);
    Some (paths, sep)
  end
