(** Matchings. The LCP(0) scheme for maximal matchings needs only a
    validity check; the LCP(1) scheme for maximum matchings in
    bipartite graphs (Section 2.3) needs a maximum matching and a
    König minimum vertex cover as its certificate. *)

type matching = (Graph.node * Graph.node) list
(** Each matched pair once, [u < v]. *)

val is_matching : Graph.t -> matching -> bool
(** Edges of the graph, pairwise disjoint. *)

val is_maximal : Graph.t -> matching -> bool
(** No edge of the graph has both endpoints unmatched. *)

val greedy_maximal : Graph.t -> matching
(** A maximal matching (greedy over edges in sorted order). *)

val matched_nodes : matching -> Graph.node list
val is_vertex_cover : Graph.t -> Graph.node list -> bool

val maximum_bipartite : Graph.t -> matching
(** A maximum-cardinality matching of a bipartite graph, by repeated
    augmenting paths. Raises [Invalid_argument] when the graph is not
    bipartite. *)

val koenig_cover : Graph.t -> matching -> Graph.node list
(** [koenig_cover g matching] is a minimum vertex cover with
    [|cover| = |matching|], given a {e maximum} matching of the
    bipartite graph [g] (König's theorem). Sorted. *)

val maximum_on_cycle : Graph.t -> matching
(** A maximum matching of a single cycle: [floor (n/2)] edges. Raises
    [Invalid_argument] when the graph is not a cycle. *)

val is_maximum_on_cycle : Graph.t -> matching -> bool
(** For a cycle: the matching is maximum iff it leaves at most
    [n mod 2] nodes unmatched... precisely, iff its size is
    [floor (n/2)]. *)
