(** Simple directed graphs, used for the directed s–t (un)reachability
    schemes of Section 4.1 and as the internal representation of flow
    networks. *)

type node = int
type t

val empty : t
val create : nodes:node list -> arcs:(node * node) list -> t
val of_arcs : (node * node) list -> t

val nodes : t -> node list
val n : t -> int
val arcs : t -> (node * node) list
val mem_node : t -> node -> bool
val mem_arc : t -> node -> node -> bool

val succ : t -> node -> node list
(** Out-neighbours, sorted. *)

val pred : t -> node -> node list
(** In-neighbours, sorted. *)

val out_degree : t -> node -> int
val in_degree : t -> node -> int

val add_node : t -> node -> t
val add_arc : t -> node -> node -> t
val remove_arc : t -> node -> node -> t

val reverse : t -> t
val underlying : t -> Graph.t
(** Forget orientations (antiparallel arcs merge into one edge). *)

val of_undirected : Graph.t -> t
(** Replace each edge by two antiparallel arcs. *)

val reachable : t -> node -> node list
(** Nodes reachable from the given node by directed paths (sorted,
    includes the node itself). *)

val pp : Format.formatter -> t -> unit
