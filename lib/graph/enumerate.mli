(** Exhaustive and sampled enumeration of small graphs up to
    isomorphism. Section 6.1's lower bound needs the family [F_k] of
    pairwise non-isomorphic asymmetric connected graphs on [k] nodes;
    the line-graph module derives Beineke's forbidden subgraphs from
    the set of all graphs on at most 6 nodes. *)

val all_graphs : int -> Graph.t list
(** All graphs on nodes [0..n-1] up to isomorphism (one representative
    per class). Exhaustive over the [2^(n(n-1)/2)] labelled graphs —
    intended for [n ≤ 6]. *)

val connected_graphs : int -> Graph.t list
val asymmetric_connected : int -> Graph.t list
(** The family [F_k] of Section 6.1 (exhaustive; [k ≤ 6] practical). *)

val sample_asymmetric_connected :
  Random.State.t -> n:int -> count:int -> attempts:int -> Graph.t list
(** Randomly sample pairwise non-isomorphic asymmetric connected graphs
    on [n] nodes; stops after [count] found or [attempts] tried. For
    sizes where exhaustive enumeration is infeasible — the
    lower-bound attack only needs {e many} graphs, not all. *)
