let all_degrees_even g =
  Graph.fold_nodes (fun v acc -> acc && Graph.degree g v mod 2 = 0) g true

let is_eulerian g = Traversal.is_connected g && all_degrees_even g

let eulerian_circuit g =
  if not (is_eulerian g) then None
  else if Graph.is_empty g then Some []
  else begin
    (* Hierholzer with a mutable copy of the adjacency structure. *)
    let remaining = Hashtbl.create 64 in
    Graph.iter_nodes (fun v -> Hashtbl.replace remaining v (ref (Graph.neighbours g v))) g;
    let used = Hashtbl.create 64 in
    let key u v = if u < v then (u, v) else (v, u) in
    let next_edge v =
      let cands = Hashtbl.find remaining v in
      let rec pick = function
        | [] -> None
        | u :: rest ->
            if Hashtbl.mem used (key v u) then begin
              cands := rest;
              pick rest
            end
            else begin
              cands := rest;
              Hashtbl.replace used (key v u) ();
              Some u
            end
      in
      pick !cands
    in
    let start = List.hd (Graph.nodes g) in
    (* Iterative Hierholzer: stack of the current trail. *)
    let stack = ref [ start ] in
    let circuit = ref [] in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | v :: rest -> (
          match next_edge v with
          | Some u -> stack := u :: !stack
          | None ->
              circuit := v :: !circuit;
              stack := rest)
    done;
    if List.length !circuit = Graph.m g + 1 then Some !circuit else None
  end
