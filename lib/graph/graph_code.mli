(** Binary encoding of a whole graph together with its identifier map —
    the payload of the universal O(n²)-bit scheme of Section 6: "we can
    encode the structure of G and the unique node identifiers in O(n²)
    bits".

    The encoding lists n, the sorted identifiers (gamma-coded deltas),
    and the upper-triangular adjacency matrix: n·⌈log n⌉-ish id bits
    plus n(n-1)/2 matrix bits = O(n²) for ids in [poly(n)]. *)

val encode : Graph.t -> Bits.t
val decode : Bits.t -> Graph.t
(** Raises [Bits.Reader.Decode_error] on malformed input. *)

val size_bits : Graph.t -> int
(** [Bits.length (encode g)]. *)
