type colouring = (Graph.node * int) list

let is_proper g colouring =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (v, c) -> Hashtbl.replace tbl v c) colouring;
  Graph.fold_nodes (fun v acc -> acc && Hashtbl.mem tbl v) g true
  && Graph.fold_edges
       (fun u v acc -> acc && Hashtbl.find tbl u <> Hashtbl.find tbl v)
       g true
  && List.for_all (fun (v, c) -> Graph.mem_node g v && c >= 0) colouring

let k_colouring_with g k ~pre =
  if k < 0 then invalid_arg "Coloring.k_colouring: negative k";
  let order =
    Graph.nodes g
    |> List.sort (fun a b -> compare (Graph.degree g b) (Graph.degree g a))
    |> Array.of_list
  in
  let colour = Hashtbl.create 64 in
  List.iter
    (fun (v, c) ->
      if c < 0 || c >= k then invalid_arg "Coloring.k_colouring_with: bad colour";
      Hashtbl.replace colour v c)
    pre;
  let conflict v c =
    List.exists (fun u -> Hashtbl.find_opt colour u = Some c) (Graph.neighbours g v)
  in
  (* Check the preassignment itself. *)
  let pre_ok =
    List.for_all
      (fun (v, c) ->
        List.for_all
          (fun u -> Hashtbl.find_opt colour u <> Some c)
          (Graph.neighbours g v))
      pre
  in
  if not pre_ok then None
  else begin
    let n = Array.length order in
    let rec go i =
      if i = n then true
      else
        let v = order.(i) in
        if Hashtbl.mem colour v then go (i + 1)
        else
          let rec try_colour c =
            if c = k then false
            else if conflict v c then try_colour (c + 1)
            else begin
              Hashtbl.replace colour v c;
              if go (i + 1) then true
              else begin
                Hashtbl.remove colour v;
                try_colour (c + 1)
              end
            end
          in
          try_colour 0
    in
    if go 0 then
      Some (Graph.nodes g |> List.map (fun v -> (v, Hashtbl.find colour v)))
    else None
  end

let k_colouring g k = k_colouring_with g k ~pre:[]
let is_k_colourable g k = k_colouring g k <> None

let greedy g =
  let order =
    Graph.nodes g
    |> List.sort (fun a b -> compare (Graph.degree g b) (Graph.degree g a))
  in
  let colour = Hashtbl.create 64 in
  List.iter
    (fun v ->
      let used =
        List.filter_map (fun u -> Hashtbl.find_opt colour u) (Graph.neighbours g v)
      in
      let rec first c = if List.mem c used then first (c + 1) else c in
      Hashtbl.replace colour v (first 0))
    order;
  Graph.nodes g |> List.map (fun v -> (v, Hashtbl.find colour v))

let chromatic_number g =
  if Graph.is_empty g then 0
  else begin
    let upper =
      1 + List.fold_left (fun acc (_, c) -> max acc c) 0 (greedy g)
    in
    let rec search k = if is_k_colourable g k then k else search (k + 1) in
    let lower = if Graph.m g > 0 then 2 else 1 in
    min upper (search lower)
  end
