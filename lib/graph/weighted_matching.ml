type weights = Graph.node * Graph.node -> int
type dual = (Graph.node * int) list

let edge_weight w u v = w (min u v, max u v)

let weight_of_matching w m =
  List.fold_left (fun acc (u, v) -> acc + edge_weight w u v) 0 m

(* Successive best-gain augmenting paths. We model the matching as a
   min-cost flow and find, at each step, the alternating path from an
   unmatched left node to an unmatched right node with the largest
   total gain (sum of added weights minus removed weights), by
   Bellman–Ford over "cost = -gain". Augmenting along maximum-gain
   paths yields, after each step, a maximum-weight matching among
   matchings of that cardinality; we stop when the best gain is <= 0. *)
let maximum_weight g w =
  match Bipartite.sides g with
  | None -> invalid_arg "Weighted_matching.maximum_weight: not bipartite"
  | Some (left, right) ->
      Graph.iter_edges
        (fun u v ->
          if edge_weight w u v < 0 then
            invalid_arg "Weighted_matching.maximum_weight: negative weight")
        g;
      let mate = Hashtbl.create 64 in
      let is_matched v = Hashtbl.mem mate v in
      let nodes = left @ right in
      let best_path () =
        (* dist.(v) = largest gain of an alternating path from any
           unmatched left node ending at v; for left v the path ends
           ready to leave via a non-matching edge, for right v it just
           arrived via a non-matching edge. *)
        let dist = Hashtbl.create 64 in
        let pred = Hashtbl.create 64 in
        List.iter (fun u -> if not (is_matched u) then Hashtbl.replace dist u 0) left;
        let relax v d p =
          match Hashtbl.find_opt dist v with
          | Some d' when d' >= d -> false
          | _ ->
              Hashtbl.replace dist v d;
              Hashtbl.replace pred v p;
              true
        in
        let changed = ref true in
        let rounds = ref 0 in
        while !changed && !rounds <= List.length nodes + 1 do
          changed := false;
          incr rounds;
          List.iter
            (fun u ->
              match Hashtbl.find_opt dist u with
              | None -> ()
              | Some du ->
                  List.iter
                    (fun v ->
                      if Hashtbl.find_opt mate u <> Some v then begin
                        (* Take non-matching edge u-v (gain +w). *)
                        let dv = du + edge_weight w u v in
                        if relax v dv u then changed := true;
                        ()
                      end)
                    (Graph.neighbours g u))
            left;
          List.iter
            (fun v ->
              match (Hashtbl.find_opt dist v, Hashtbl.find_opt mate v) with
              | Some dv, Some u ->
                  (* Retreat along the matching edge v-u (gain -w). *)
                  let du = dv - edge_weight w u v in
                  if relax u du v then changed := true
              | _ -> ())
            right
        done;
        (* Best endpoint: unmatched right node with positive gain. *)
        List.fold_left
          (fun best v ->
            if is_matched v then best
            else
              match Hashtbl.find_opt dist v with
              | Some d when d > 0 -> (
                  match best with
                  | Some (_, d') when d' >= d -> best
                  | _ -> Some (v, d))
              | _ -> best)
          None right
        |> Option.map (fun (v, _) ->
               let rec build acc v =
                 match Hashtbl.find_opt pred v with
                 | None -> v :: acc
                 | Some p -> build (v :: acc) p
               in
               build [] v)
      in
      let rec loop () =
        match best_path () with
        | None -> ()
        | Some path ->
            (* path alternates left, right, left, right, ...; flip
               matching along it. *)
            let rec flip = function
              | u :: v :: rest ->
                  Hashtbl.replace mate u v;
                  Hashtbl.replace mate v u;
                  (* The next pair (if any) starts with the old mate
                     relationship being overwritten as we go. *)
                  flip rest
              | _ -> ()
            in
            flip path;
            loop ()
      in
      loop ();
      let module IS = Set.Make (Int) in
      let left_set = IS.of_list left in
      Hashtbl.fold
        (fun u v acc -> if IS.mem u left_set then (min u v, max u v) :: acc else acc)
        mate []
      |> List.sort_uniq compare

(* Dual extraction by difference constraints. With the matching fixed,
   write y_b = t_b for each matched right node b and y_a = w(a, b) - t_b
   for its mate a; unmatched nodes get y = 0. Feasibility constraints
   become a longest-path system over the t variables, whose minimal
   solution we compute by Bellman–Ford. A positive cycle or a violated
   upper bound certifies that the matching was not maximum-weight. *)
let dual_certificate g w m =
  if not (Matching.is_matching g m) then None
  else
    match Bipartite.sides g with
    | None -> invalid_arg "Weighted_matching.dual_certificate: not bipartite"
    | Some (left, right) ->
        let module IS = Set.Make (Int) in
        let left_set = IS.of_list left in
        let mate = Hashtbl.create 64 in
        List.iter
          (fun (u, v) ->
            Hashtbl.replace mate u v;
            Hashtbl.replace mate v u)
          m;
        let matched_right = List.filter (Hashtbl.mem mate) right in
        (* Lower bounds: t_b >= 0; t_b >= w(a', b) for unmatched left
           a' adjacent to b. Difference arcs: t_{b'} >= t_b +
           (w(a, b') - w(a, b)) for a = mate(b) adjacent to b'. *)
        let lower = Hashtbl.create 64 in
        List.iter (fun b -> Hashtbl.replace lower b 0) matched_right;
        let ok = ref true in
        Graph.iter_edges
          (fun x y ->
            let a, b = if IS.mem x left_set then (x, y) else (y, x) in
            match (Hashtbl.find_opt mate a, Hashtbl.find_opt mate b) with
            | None, None ->
                (* Both unmatched: y_a = y_b = 0 needs w(a,b) <= 0. *)
                if edge_weight w a b > 0 then ok := false
            | None, Some _ ->
                let cur = Hashtbl.find lower b in
                Hashtbl.replace lower b (max cur (edge_weight w a b))
            | Some _, None | Some _, Some _ -> ())
          g;
        if not !ok then None
        else begin
          (* Bellman–Ford longest paths on t. *)
          let t = Hashtbl.copy lower in
          let changed = ref true in
          let rounds = ref 0 in
          let limit = List.length matched_right + 1 in
          while !changed && !rounds <= limit do
            changed := false;
            incr rounds;
            List.iter
              (fun b ->
                let a = Hashtbl.find mate b in
                let tb = Hashtbl.find t b in
                List.iter
                  (fun b' ->
                    if b' <> b then
                      match Hashtbl.find_opt mate b' with
                      | Some _ when Hashtbl.mem t b' ->
                          let cand = tb + edge_weight w a b' - edge_weight w a b in
                          if cand > Hashtbl.find t b' then begin
                            Hashtbl.replace t b' cand;
                            changed := true
                          end
                      | _ -> ())
                  (Graph.neighbours g a))
              matched_right
          done;
          if !changed then None (* positive cycle: matching not optimal *)
          else begin
            (* Upper bounds keep y_a >= 0 and cover edges from matched
               left nodes to unmatched right nodes. *)
            let violations =
              List.exists
                (fun b ->
                  let a = Hashtbl.find mate b in
                  let tb = Hashtbl.find t b in
                  tb > edge_weight w a b
                  || List.exists
                       (fun b' ->
                         b' <> b
                         && (not (Hashtbl.mem mate b'))
                         && (not (IS.mem b' left_set))
                         && tb > edge_weight w a b - edge_weight w a b')
                       (Graph.neighbours g a))
                matched_right
            in
            if violations then None
            else
              let y v =
                if IS.mem v left_set then
                  match Hashtbl.find_opt mate v with
                  | None -> 0
                  | Some b -> edge_weight w v b - Hashtbl.find t b
                else Option.value ~default:0 (Hashtbl.find_opt t v)
              in
              Some (List.map (fun v -> (v, y v)) (Graph.nodes g))
          end
        end

let check_certificate g w m dual =
  let y = Hashtbl.create 64 in
  List.iter (fun (v, yv) -> Hashtbl.replace y v yv) dual;
  let yv v = match Hashtbl.find_opt y v with Some x -> x | None -> -1 in
  let max_w =
    Graph.fold_edges (fun u v acc -> max acc (edge_weight w u v)) g 0
  in
  let matched = Hashtbl.create 64 in
  List.iter
    (fun (u, v) ->
      Hashtbl.replace matched u ();
      Hashtbl.replace matched v ())
    m;
  Matching.is_matching g m
  && List.for_all (fun v -> yv v >= 0 && yv v <= max_w) (Graph.nodes g)
  && Graph.fold_edges
       (fun u v acc -> acc && yv u + yv v >= edge_weight w u v)
       g true
  && List.for_all (fun (u, v) -> yv u + yv v = edge_weight w u v) m
  && List.for_all
       (fun v -> Hashtbl.mem matched v || yv v = 0)
       (Graph.nodes g)
