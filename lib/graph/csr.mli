(** Dense compressed-sparse-row (CSR) compilation of a {!Graph.t}.

    The persistent [IntSet.t IntMap.t] representation behind {!Graph.t}
    is the right tool for the gluing and relabelling constructions, but
    it is a poor fit for the hot loop shared by every experiment: per
    node radius-r ball extraction over the {e same} immutable graph,
    repeated for all [n] nodes (and, in the soundness samplers, for
    thousands of candidate proofs). This module compiles a graph once
    into three int arrays — row offsets, concatenated adjacency, and a
    dense-index ↔ node-id table — so that neighbour iteration is
    allocation-free and a radius-bounded BFS touches only the ball it
    returns instead of the whole graph.

    A compiled value is immutable and may be shared freely across
    domains; all mutability lives in the per-worker {!scratch}. *)

type t
(** CSR image of a graph. Nodes are renumbered to dense indices
    [0 .. n-1] in increasing identifier order; all functions below
    speak dense indices unless they say otherwise. *)

val of_graph : Graph.t -> t
(** O(n + m). The source graph is not retained. *)

val n : t -> int
val m : t -> int

val node : t -> int -> Graph.node
(** Original identifier of a dense index. Dense indices are assigned in
    increasing identifier order, so [node] is strictly increasing. *)

val index : t -> Graph.node -> int
(** Dense index of an identifier; raises [Invalid_argument] for nodes
    not in the compiled graph. *)

val index_opt : t -> Graph.node -> int option
val degree : t -> int -> int

val iter_neighbours : t -> int -> (int -> unit) -> unit
(** Allocation-free; neighbours arrive in increasing dense-index order
    (equivalently: increasing identifier order, matching
    {!Graph.neighbours}). *)

val fold_neighbours : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

(** {1 Reusable-scratch bounded BFS} *)

type scratch
(** Mutable per-worker workspace (distance array + BFS queue). One
    scratch must never be shared between domains; allocate one per
    worker with {!scratch} and reuse it across any number of calls. *)

val scratch : t -> scratch

val scratch_of_capacity : int -> scratch
(** A scratch usable with {e any} compiled graph of at most that many
    nodes — the arena primitive: one long-lived scratch per worker
    domain serves every cached graph whose [n] fits, growing (by
    reallocation) only when a bigger graph arrives. *)

val scratch_capacity : scratch -> int

val ball : t -> scratch -> centre:int -> radius:int -> int
(** [ball t s ~centre ~radius] runs a BFS from [centre] truncated at
    [radius] and returns the number of nodes in the ball. Afterwards
    [visited s i] for [i < count] lists the ball in BFS order (centre
    first) and [dist s v] is the distance of any visited dense index.
    Cost is proportional to the ball, not the graph; the scratch is
    recycled lazily so back-to-back calls stay cheap. *)

val visited : scratch -> int -> int
(** [visited s i] is the [i]-th dense index reached by the last
    {!ball} call. *)

val dist : scratch -> int -> int
(** Distance from the last centre; [-1] for unvisited indices. *)

val ball_ids : t -> scratch -> centre:int -> radius:int -> Graph.node list
(** Convenience for tests: the ball of the {e identifier}-named centre
    as a sorted identifier list, exactly like {!Traversal.ball}. *)

(** {1 Induced subgraphs} *)

val extract_subgraph : t -> int array -> t * int array
(** [extract_subgraph t sel] compiles the subgraph induced by the dense
    indices in [sel] (any order; [Invalid_argument] on duplicates or
    out-of-range entries). Kept nodes retain their original
    identifiers, so {!node}/{!index} keep working on the result. Also
    returns the remap table: entry [i'] is the {e old} dense index now
    living at new dense index [i'] (i.e. [sel] sorted increasingly).
    The partitioner carves shards with this; any future dynamic-graph
    work shares it. *)

(** {1 Raw image access}

    The disk cache persists a compiled graph as its three arrays and
    rebuilds it without re-running {!of_graph} (or the graph6 decode
    that precedes it). *)

val export : t -> int array * int array * int array
(** [(offsets, targets, ids)] — aliases of the live arrays; callers
    must not mutate them. *)

val import :
  offsets:int array ->
  targets:int array ->
  ids:int array ->
  (t, string) result
(** Rebuild a CSR image from raw arrays, re-validating every
    structural invariant ([of_graph]'s postconditions); [Error] on any
    violation, so bytes from a corrupt cache file cannot become a
    value that faults later. *)
