(* BFS 2-colouring per component; an edge within a BFS level exposes an
   odd closed walk from which we extract a simple odd cycle. *)

let colouring_or_conflict g =
  let colour = Hashtbl.create 64 in
  let parent = Hashtbl.create 64 in
  let conflict = ref None in
  let run_from s =
    Hashtbl.replace colour s false;
    Hashtbl.replace parent s s;
    let q = Queue.create () in
    Queue.push s q;
    while !conflict = None && not (Queue.is_empty q) do
      let v = Queue.pop q in
      let cv = Hashtbl.find colour v in
      List.iter
        (fun u ->
          match Hashtbl.find_opt colour u with
          | None ->
              Hashtbl.replace colour u (not cv);
              Hashtbl.replace parent u v;
              Queue.push u q
          | Some cu -> if cu = cv && !conflict = None then conflict := Some (v, u))
        (Graph.neighbours g v)
    done
  in
  Graph.iter_nodes (fun v -> if (not (Hashtbl.mem colour v)) && !conflict = None then run_from v) g;
  (colour, parent, !conflict)

let two_colouring g =
  let colour, _, conflict = colouring_or_conflict g in
  match conflict with
  | Some _ -> None
  | None -> Some (fun v -> match Hashtbl.find_opt colour v with
      | Some c -> c
      | None -> invalid_arg "Bipartite.two_colouring: unknown node")

let is_bipartite g = two_colouring g <> None

let odd_cycle g =
  let _, parent, conflict = colouring_or_conflict g in
  match conflict with
  | None -> None
  | Some (v, u) ->
      (* Walk both nodes up the BFS tree to their lowest common
         ancestor; the two tree paths plus the edge (v, u) form a
         simple odd cycle. *)
      let rec ancestors acc w =
        let p = Hashtbl.find parent w in
        if p = w then w :: acc else ancestors (w :: acc) p
      in
      let pv = ancestors [] v and pu = ancestors [] u in
      (* Drop the common prefix, keep the last common node (the LCA). *)
      let rec split lca a b =
        match (a, b) with
        | x :: a', y :: b' when x = y -> split (Some x) a' b'
        | _ -> (lca, a, b)
      in
      let lca, tail_v, tail_u = split None pv pu in
      let lca = match lca with Some x -> x | None -> assert false in
      Some ((lca :: tail_v) @ List.rev tail_u)

let sides g =
  match two_colouring g with
  | None -> None
  | Some colour ->
      let a, b =
        Graph.fold_nodes
          (fun v (a, b) -> if colour v then (v :: a, b) else (a, v :: b))
          g ([], [])
      in
      Some (List.rev b, List.rev a)
