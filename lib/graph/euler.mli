(** Eulerian graphs — the paper's canonical LCP(0) example: a connected
    graph is Eulerian iff every degree is even, a condition each node
    checks with zero communication. *)

val all_degrees_even : Graph.t -> bool

val is_eulerian : Graph.t -> bool
(** Connected and all degrees even. *)

val eulerian_circuit : Graph.t -> Graph.node list option
(** An Eulerian circuit (closed walk using each edge once) via
    Hierholzer's algorithm, or [None]. The returned walk lists the
    visited nodes, starting and ending at the same node. The circuit of
    an edgeless single node is that node alone. *)
