let encode g =
  let buf = Bits.Writer.create () in
  let nodes = Graph.nodes g in
  Bits.Writer.int_gamma buf (List.length nodes);
  (* Identifiers as gamma-coded deltas (sorted, so deltas >= 1 except
     the first which is the id itself). *)
  let _ =
    List.fold_left
      (fun prev v ->
        Bits.Writer.int_gamma buf (v - prev);
        v)
      0 nodes
  in
  let arr = Array.of_list nodes in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Bits.Writer.bool buf (Graph.mem_edge g arr.(i) arr.(j))
    done
  done;
  Bits.Writer.contents buf

let decode bits =
  let c = Bits.Reader.of_bits bits in
  let n = Bits.Reader.int_gamma c in
  let rec read_ids acc prev i =
    if i = n then List.rev acc
    else
      let v = prev + Bits.Reader.int_gamma c in
      read_ids (v :: acc) v (i + 1)
  in
  let ids = read_ids [] 0 0 in
  let arr = Array.of_list ids in
  let g = ref (List.fold_left Graph.add_node Graph.empty ids) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Bits.Reader.bool c then g := Graph.add_edge !g arr.(i) arr.(j)
    done
  done;
  Bits.Reader.expect_end c;
  !g

let size_bits g = Bits.length (encode g)
