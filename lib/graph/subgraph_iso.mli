(** Induced-subgraph isomorphism by backtracking, sufficient for the
    small patterns that matter here (Beineke's nine forbidden line
    graphs have at most 6 nodes). *)

val isomorphism : Graph.t -> Graph.t -> (Graph.node * Graph.node) list option
(** [isomorphism g h] is a bijection showing [g ≅ h], or [None]. *)

val are_isomorphic : Graph.t -> Graph.t -> bool

val find_induced : pattern:Graph.t -> Graph.t -> (Graph.node * Graph.node) list option
(** [find_induced ~pattern g] finds an injective map from the pattern's
    nodes into [g] whose image induces exactly the pattern (edges and
    non-edges both preserved), or [None]. *)

val contains_induced : pattern:Graph.t -> Graph.t -> bool
