let pairs n =
  let res = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i + 1 do
      res := (i, j) :: !res
    done
  done;
  !res

let of_mask n pair_list mask =
  let g = List.fold_left Graph.add_node Graph.empty (List.init n Fun.id) in
  List.fold_left
    (fun (g, bit) (i, j) ->
      ((if mask land (1 lsl bit) <> 0 then Graph.add_edge g i j else g), bit + 1))
    (g, 0) pair_list
  |> fst

let all_graphs n =
  if n < 0 || n > 6 then invalid_arg "Enumerate.all_graphs: supported for n <= 6";
  let pair_list = pairs n in
  let np = List.length pair_list in
  let seen = Hashtbl.create 1024 in
  let res = ref [] in
  for mask = 0 to (1 lsl np) - 1 do
    let g = of_mask n pair_list mask in
    let key = Canonical.canonical_key g in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      res := g :: !res
    end
  done;
  List.rev !res

let connected_graphs n = List.filter Traversal.is_connected (all_graphs n)

let asymmetric_connected n =
  List.filter Automorphism.is_asymmetric (connected_graphs n)

let sample_asymmetric_connected st ~n ~count ~attempts =
  let seen = Hashtbl.create 64 in
  let res = ref [] in
  let found = ref 0 in
  let tries = ref 0 in
  while !found < count && !tries < attempts do
    incr tries;
    let p = 0.3 +. Random.State.float st 0.4 in
    let g = Random_graphs.gnp st n p in
    if Traversal.is_connected g && Automorphism.is_asymmetric g then begin
      let key = Canonical.canonical_key g in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        res := g :: !res;
        incr found
      end
    end
  done;
  List.rev !res
