(* Straightforward backtracking with degree pruning. [exact] demands a
   bijection (graph isomorphism); otherwise an injective induced
   embedding. *)

let embed ~exact pattern g =
  let p_nodes = Array.of_list (Graph.nodes pattern) in
  let np = Array.length p_nodes in
  if exact && (np <> Graph.n g || Graph.m pattern <> Graph.m g) then None
  else if np > Graph.n g then None
  else begin
    (* Order pattern nodes so each (after the first) touches an earlier
       one when possible: improves pruning. *)
    let order = Array.copy p_nodes in
    let pos = Hashtbl.create 16 in
    Array.iteri (fun i v -> Hashtbl.replace pos v i) order;
    let assignment = Hashtbl.create 16 in
    let used = Hashtbl.create 16 in
    let candidates = Array.of_list (Graph.nodes g) in
    let compatible pv gv =
      let dp = Graph.degree pattern pv and dg = Graph.degree g gv in
      (if exact then dp = dg else dp <= dg)
      && Array.for_all
           (fun pu ->
             match Hashtbl.find_opt assignment pu with
             | None -> true
             | Some gu ->
                 Bool.equal (Graph.mem_edge pattern pv pu) (Graph.mem_edge g gv gu))
           order
    in
    let exception Found in
    let rec go i =
      if i = np then raise Found
      else
        let pv = order.(i) in
        Array.iter
          (fun gv ->
            if (not (Hashtbl.mem used gv)) && compatible pv gv then begin
              Hashtbl.replace assignment pv gv;
              Hashtbl.replace used gv ();
              go (i + 1);
              Hashtbl.remove assignment pv;
              Hashtbl.remove used gv
            end)
          candidates
    in
    try
      go 0;
      None
    with Found ->
      Some (Array.to_list (Array.map (fun pv -> (pv, Hashtbl.find assignment pv)) order))
  end

let isomorphism g h = embed ~exact:true g h
let are_isomorphic g h = isomorphism g h <> None
let find_induced ~pattern g = embed ~exact:false pattern g
let contains_induced ~pattern g = find_induced ~pattern g <> None
