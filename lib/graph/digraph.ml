module IntMap = Map.Make (Int)
module IntSet = Set.Make (Int)

type node = int
type t = { out : IntSet.t IntMap.t; into : IntSet.t IntMap.t }

let empty = { out = IntMap.empty; into = IntMap.empty }
let mem_node g v = IntMap.mem v g.out

let mem_arc g u v =
  match IntMap.find_opt u g.out with
  | None -> false
  | Some s -> IntSet.mem v s

let add_node g v =
  if v < 0 then invalid_arg "Digraph.add_node: negative identifier";
  if mem_node g v then g
  else
    { out = IntMap.add v IntSet.empty g.out;
      into = IntMap.add v IntSet.empty g.into }

let add_arc g u v =
  if u = v then invalid_arg "Digraph.add_arc: self-loop";
  let g = add_node (add_node g u) v in
  { out = IntMap.add u (IntSet.add v (IntMap.find u g.out)) g.out;
    into = IntMap.add v (IntSet.add u (IntMap.find v g.into)) g.into }

let remove_arc g u v =
  if not (mem_arc g u v) then g
  else
    { out = IntMap.add u (IntSet.remove v (IntMap.find u g.out)) g.out;
      into = IntMap.add v (IntSet.remove u (IntMap.find v g.into)) g.into }

let create ~nodes ~arcs =
  let g = List.fold_left add_node empty nodes in
  List.fold_left
    (fun g (u, v) ->
      if not (mem_node g u && mem_node g v) then
        invalid_arg
          (Printf.sprintf "Digraph.create: arc (%d, %d) has unknown endpoint" u v);
      add_arc g u v)
    g arcs

let of_arcs arcs = List.fold_left (fun g (u, v) -> add_arc g u v) empty arcs

let nodes g = IntMap.fold (fun v _ acc -> v :: acc) g.out [] |> List.rev
let n g = IntMap.cardinal g.out

let arcs g =
  IntMap.fold
    (fun u s acc -> IntSet.fold (fun v acc -> (u, v) :: acc) s acc)
    g.out []
  |> List.rev

let succ g v =
  match IntMap.find_opt v g.out with
  | None -> invalid_arg (Printf.sprintf "Digraph.succ: unknown node %d" v)
  | Some s -> IntSet.elements s

let pred g v =
  match IntMap.find_opt v g.into with
  | None -> invalid_arg (Printf.sprintf "Digraph.pred: unknown node %d" v)
  | Some s -> IntSet.elements s

let out_degree g v = List.length (succ g v)
let in_degree g v = List.length (pred g v)

let reverse g = { out = g.into; into = g.out }

let underlying g =
  List.fold_left
    (fun acc (u, v) -> Graph.add_edge acc u v)
    (List.fold_left Graph.add_node Graph.empty (nodes g))
    (arcs g)

let of_undirected g =
  let base = List.fold_left add_node empty (Graph.nodes g) in
  Graph.fold_edges (fun u v acc -> add_arc (add_arc acc u v) v u) g base

let reachable g s =
  if not (mem_node g s) then invalid_arg "Digraph.reachable: unknown node";
  let rec go seen = function
    | [] -> seen
    | v :: rest ->
        if IntSet.mem v seen then go seen rest
        else go (IntSet.add v seen) (succ g v @ rest)
  in
  IntSet.elements (go IntSet.empty [ s ])

let pp ppf g =
  Format.fprintf ppf "@[<hov 2>digraph{n=%d;@ arcs=[%a]}@]" (n g)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";")
       (fun ppf (u, v) -> Format.fprintf ppf "%d->%d" u v))
    (arcs g)
