(** Random instance generators for tests and benchmarks. All take an
    explicit [Random.State.t] so experiments are reproducible. *)

val gnp : Random.State.t -> int -> float -> Graph.t
(** Erdős–Rényi G(n, p) on nodes [0..n-1]. *)

val connected_gnp : Random.State.t -> int -> float -> Graph.t
(** G(n, p) patched into connectivity by adding a uniformly random
    tree edge between components until connected. *)

val tree : Random.State.t -> int -> Graph.t
(** Uniform random labelled tree on [n >= 1] nodes via Prüfer codes. *)

val bipartite : Random.State.t -> int -> int -> float -> Graph.t
(** Random bipartite graph: sides [0..a-1] and [a..a+b-1], each of the
    [a*b] candidate edges present with probability [p]. *)

val regular_even : Random.State.t -> int -> int -> Graph.t
(** Random 2k-regular graph on [n] nodes built from [k] random
    Hamiltonian cycles (simple, may merge parallel edges). *)

val permuted_ids : Random.State.t -> factor:int -> Graph.t -> Graph.t
(** Re-assign identifiers: an injective map into
    [0 .. factor * n - 1], uniformly random. Models the paper's
    [V(G) ⊆ {1, …, poly(n)}] assumption that ids need not be
    contiguous. *)

val shuffle : Random.State.t -> 'a list -> 'a list
