(** Proper node colourings. The [χ ≤ k] scheme (Section 2.2) certifies
    with an explicit colouring; the non-3-colourability work of
    Section 6.3 needs an exact solver to validate gadget graphs. *)

type colouring = (Graph.node * int) list
(** Colour per node, colours in [0 .. k-1], sorted by node. *)

val is_proper : Graph.t -> colouring -> bool
(** Every node coloured, adjacent nodes differ. *)

val k_colouring : Graph.t -> int -> colouring option
(** Exact backtracking search for a proper k-colouring (degree-ordered,
    forward-checking). Exponential in the worst case; intended for the
    moderate instance sizes of the experiments. *)

val k_colouring_with :
  Graph.t -> int -> pre:(Graph.node * int) list -> colouring option
(** Like {!k_colouring} but with some colours fixed in advance. Used to
    confirm that a gadget admits a colouring extending a given partial
    assignment. *)

val is_k_colourable : Graph.t -> int -> bool

val chromatic_number : Graph.t -> int
(** Smallest k with a proper k-colouring (0 for the empty graph). *)

val greedy : Graph.t -> colouring
(** Greedy colouring in decreasing-degree order; an upper bound used to
    prune {!chromatic_number}. *)
