type t = {
  n : int;
  m : int;
  offsets : int array; (* length n + 1 *)
  targets : int array; (* length 2m, dense indices, increasing per row *)
  ids : int array; (* dense index -> identifier, strictly increasing *)
  idx : (int, int) Hashtbl.t; (* identifier -> dense index *)
}

let n t = t.n
let m t = t.m
let node t i = t.ids.(i)

let index_opt t v = Hashtbl.find_opt t.idx v

let index t v =
  match Hashtbl.find_opt t.idx v with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Csr.index: unknown node %d" v)

let degree t i = t.offsets.(i + 1) - t.offsets.(i)

let of_graph g =
  let n = Graph.n g in
  let ids = Array.make n 0 in
  let idx = Hashtbl.create (2 * n) in
  let next = ref 0 in
  (* Graph.iter_nodes runs in increasing identifier order, so dense
     indices preserve the identifier order. *)
  Graph.iter_nodes
    (fun v ->
      ids.(!next) <- v;
      Hashtbl.replace idx v !next;
      incr next)
    g;
  let offsets = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    offsets.(i + 1) <- offsets.(i) + Graph.degree g ids.(i)
  done;
  let targets = Array.make offsets.(n) 0 in
  let fill = Array.make n 0 in
  for i = 0 to n - 1 do
    (* neighbours arrive in increasing identifier order; identifier
       order = dense order, so each row ends up sorted. *)
    Graph.iter_neighbours
      (fun u ->
        targets.(offsets.(i) + fill.(i)) <- Hashtbl.find idx u;
        fill.(i) <- fill.(i) + 1)
      g ids.(i)
  done;
  { n; m = Graph.m g; offsets; targets; ids; idx }

let iter_neighbours t i f =
  for k = t.offsets.(i) to t.offsets.(i + 1) - 1 do
    f t.targets.(k)
  done

let fold_neighbours t i f init =
  let acc = ref init in
  for k = t.offsets.(i) to t.offsets.(i + 1) - 1 do
    acc := f !acc t.targets.(k)
  done;
  !acc

type scratch = {
  dist_ : int array; (* -1 = untouched since last reset *)
  order : int array; (* BFS queue; first [count] entries are the ball *)
  mutable count : int;
}

let scratch t = { dist_ = Array.make t.n (-1); order = Array.make t.n 0; count = 0 }

let scratch_of_capacity cap =
  let cap = max cap 1 in
  { dist_ = Array.make cap (-1); order = Array.make cap 0; count = 0 }

let scratch_capacity s = Array.length s.dist_

let ball t s ~centre ~radius =
  if centre < 0 || centre >= t.n then invalid_arg "Csr.ball: bad centre";
  if radius < 0 then invalid_arg "Csr.ball: negative radius";
  (* lazy reset: only un-mark what the previous call touched *)
  for i = 0 to s.count - 1 do
    s.dist_.(s.order.(i)) <- -1
  done;
  s.order.(0) <- centre;
  s.dist_.(centre) <- 0;
  s.count <- 1;
  let head = ref 0 in
  while !head < s.count do
    let v = s.order.(!head) in
    incr head;
    let d = s.dist_.(v) in
    if d < radius then
      for k = t.offsets.(v) to t.offsets.(v + 1) - 1 do
        let u = t.targets.(k) in
        if s.dist_.(u) < 0 then begin
          s.dist_.(u) <- d + 1;
          s.order.(s.count) <- u;
          s.count <- s.count + 1
        end
      done
  done;
  s.count

let visited s i = s.order.(i)
let dist s v = s.dist_.(v)

let ball_ids t s ~centre ~radius =
  let count = ball t s ~centre:(index t centre) ~radius in
  List.init count (fun i -> t.ids.(s.order.(i))) |> List.sort Int.compare

(* --- induced subgraph extraction (partition shards) ------------------- *)

let extract_subgraph t sel =
  let k = Array.length sel in
  let sorted = Array.copy sel in
  Array.sort Int.compare sorted;
  Array.iteri
    (fun i v ->
      if v < 0 || v >= t.n then
        invalid_arg
          (Printf.sprintf "Csr.extract_subgraph: dense index %d out of range" v);
      if i > 0 && sorted.(i - 1) = v then
        invalid_arg
          (Printf.sprintf "Csr.extract_subgraph: duplicate dense index %d" v))
    sorted;
  let new_of_old = Array.make t.n (-1) in
  Array.iteri (fun i' old -> new_of_old.(old) <- i') sorted;
  let offsets = Array.make (k + 1) 0 in
  for i' = 0 to k - 1 do
    let old = sorted.(i') in
    let d = ref 0 in
    for e = t.offsets.(old) to t.offsets.(old + 1) - 1 do
      if new_of_old.(t.targets.(e)) >= 0 then incr d
    done;
    offsets.(i' + 1) <- offsets.(i') + !d
  done;
  let targets = Array.make offsets.(k) 0 in
  let pos = ref 0 in
  for i' = 0 to k - 1 do
    let old = sorted.(i') in
    (* old rows are sorted by old dense index and [new_of_old] is
       monotone over the kept indices, so new rows stay sorted. *)
    for e = t.offsets.(old) to t.offsets.(old + 1) - 1 do
      let u = new_of_old.(t.targets.(e)) in
      if u >= 0 then begin
        targets.(!pos) <- u;
        incr pos
      end
    done
  done;
  let ids = Array.map (fun old -> t.ids.(old)) sorted in
  let idx = Hashtbl.create (2 * k) in
  Array.iteri (fun i v -> Hashtbl.replace idx v i) ids;
  ({ n = k; m = Array.length targets / 2; offsets; targets; ids; idx }, sorted)

(* --- raw image access (disk-cache serialisation) ---------------------- *)

let export t = (t.offsets, t.targets, t.ids)

(* Every structural invariant of [of_graph] is re-checked, so a
   corrupt or hand-rolled image yields [Error], never a value that
   crashes [ball] later. *)
let import ~offsets ~targets ~ids =
  let n = Array.length ids in
  let e fmt = Printf.ksprintf Result.error fmt in
  if Array.length offsets <> n + 1 then
    e "offsets length %d, want %d" (Array.length offsets) (n + 1)
  else if offsets.(0) <> 0 then e "offsets must start at 0"
  else if Array.length targets mod 2 <> 0 then
    e "odd target count %d" (Array.length targets)
  else begin
    let ok = ref (Ok ()) in
    for i = 0 to n - 1 do
      if !ok = Ok () && offsets.(i + 1) < offsets.(i) then
        ok := e "offsets decrease at row %d" i;
      if !ok = Ok () && i > 0 && ids.(i) <= ids.(i - 1) then
        ok := e "ids not strictly increasing at %d" i
    done;
    if !ok = Ok () && n > 0 && ids.(0) < 0 then ok := e "negative node id";
    if !ok = Ok () && offsets.(n) <> Array.length targets then
      ok := e "offsets end at %d, want %d" offsets.(n) (Array.length targets);
    Array.iter
      (fun u -> if !ok = Ok () && (u < 0 || u >= n) then ok := e "target %d out of range" u)
      targets;
    match !ok with
    | Error _ as err -> err
    | Ok () ->
        let idx = Hashtbl.create (2 * n) in
        Array.iteri (fun i v -> Hashtbl.replace idx v i) ids;
        Ok { n; m = Array.length targets / 2; offsets; targets; ids; idx }
  end
