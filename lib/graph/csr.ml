type t = {
  n : int;
  m : int;
  offsets : int array; (* length n + 1 *)
  targets : int array; (* length 2m, dense indices, increasing per row *)
  ids : int array; (* dense index -> identifier, strictly increasing *)
  idx : (int, int) Hashtbl.t; (* identifier -> dense index *)
}

let n t = t.n
let m t = t.m
let node t i = t.ids.(i)

let index_opt t v = Hashtbl.find_opt t.idx v

let index t v =
  match Hashtbl.find_opt t.idx v with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Csr.index: unknown node %d" v)

let degree t i = t.offsets.(i + 1) - t.offsets.(i)

let of_graph g =
  let n = Graph.n g in
  let ids = Array.make n 0 in
  let idx = Hashtbl.create (2 * n) in
  let next = ref 0 in
  (* Graph.iter_nodes runs in increasing identifier order, so dense
     indices preserve the identifier order. *)
  Graph.iter_nodes
    (fun v ->
      ids.(!next) <- v;
      Hashtbl.replace idx v !next;
      incr next)
    g;
  let offsets = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    offsets.(i + 1) <- offsets.(i) + Graph.degree g ids.(i)
  done;
  let targets = Array.make offsets.(n) 0 in
  let fill = Array.make n 0 in
  for i = 0 to n - 1 do
    (* neighbours arrive in increasing identifier order; identifier
       order = dense order, so each row ends up sorted. *)
    Graph.iter_neighbours
      (fun u ->
        targets.(offsets.(i) + fill.(i)) <- Hashtbl.find idx u;
        fill.(i) <- fill.(i) + 1)
      g ids.(i)
  done;
  { n; m = Graph.m g; offsets; targets; ids; idx }

let iter_neighbours t i f =
  for k = t.offsets.(i) to t.offsets.(i + 1) - 1 do
    f t.targets.(k)
  done

let fold_neighbours t i f init =
  let acc = ref init in
  for k = t.offsets.(i) to t.offsets.(i + 1) - 1 do
    acc := f !acc t.targets.(k)
  done;
  !acc

type scratch = {
  dist_ : int array; (* -1 = untouched since last reset *)
  order : int array; (* BFS queue; first [count] entries are the ball *)
  mutable count : int;
}

let scratch t = { dist_ = Array.make t.n (-1); order = Array.make t.n 0; count = 0 }

let ball t s ~centre ~radius =
  if centre < 0 || centre >= t.n then invalid_arg "Csr.ball: bad centre";
  if radius < 0 then invalid_arg "Csr.ball: negative radius";
  (* lazy reset: only un-mark what the previous call touched *)
  for i = 0 to s.count - 1 do
    s.dist_.(s.order.(i)) <- -1
  done;
  s.order.(0) <- centre;
  s.dist_.(centre) <- 0;
  s.count <- 1;
  let head = ref 0 in
  while !head < s.count do
    let v = s.order.(!head) in
    incr head;
    let d = s.dist_.(v) in
    if d < radius then
      for k = t.offsets.(v) to t.offsets.(v + 1) - 1 do
        let u = t.targets.(k) in
        if s.dist_.(u) < 0 then begin
          s.dist_.(u) <- d + 1;
          s.order.(s.count) <- u;
          s.count <- s.count + 1
        end
      done
  done;
  s.count

let visited s i = s.order.(i)
let dist s v = s.dist_.(v)

let ball_ids t s ~centre ~radius =
  let count = ball t s ~centre:(index t centre) ~radius in
  List.init count (fun i -> t.ids.(s.order.(i))) |> List.sort Int.compare
